// Ablation benchmarks for the design choices DESIGN.md calls out:
//   A1  hash join vs sort-merge join
//   A2  CLA planner: exact statistics vs sampling estimators
//   A3  CLA co-coding: on vs off
//   A4  factorized GLM solvers: gradient descent vs closed-form Gramian,
//       factorized vs materialized
//   A5  LA executor: common-subexpression elimination on vs off
//   A6  model search: batched grid vs successive halving
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "factorized/factorized_glm.h"
#include "factorized/factorized_gramian.h"
#include "laopt/cse.h"
#include "laopt/fusion.h"
#include "laopt/executor.h"
#include "modelsel/model_selection.h"
#include "la/kernels.h"
#include "ml/metrics.h"
#include "ml/sparse_glm.h"
#include "modelsel/successive_halving.h"
#include "ps/parameter_server.h"
#include "relational/sort_merge_join.h"
#include "util/stopwatch.h"

namespace {

using namespace dmml;  // NOLINT
using bench::Fmt;
using bench::TablePrinter;

void JoinAblation() {
  std::printf("A1: hash join vs sort-merge join (nS = 30000, dS = 2, dR = 4)\n");
  TablePrinter table({"nR", "hash_ms", "sortmerge_ms", "rows_out"});
  for (size_t nr : {100, 1000, 10000}) {
    data::StarSchemaOptions options;
    options.ns = 30000;
    options.nr = nr;
    options.ds = 2;
    options.dr = 4;
    auto ds = data::MakeStarSchema(options, nr);
    Stopwatch w1;
    auto hj = relational::HashJoin(ds.s, ds.r, "fk", "rid");
    double hash_ms = w1.ElapsedMillis();
    Stopwatch w2;
    auto smj = relational::SortMergeJoin(ds.s, ds.r, "fk", "rid");
    double smj_ms = w2.ElapsedMillis();
    if (!hj.ok() || !smj.ok()) std::exit(1);
    table.Row({bench::FmtInt(static_cast<long long>(nr)), Fmt(hash_ms, 1),
               Fmt(smj_ms, 1), bench::FmtInt(static_cast<long long>(hj->num_rows()))});
  }
  table.EmitCsv("A1_join");
  std::printf("\n");
}

void PlannerAblation() {
  std::printf("A2: CLA planner — exact vs sampling estimators (n = 100000, 8 cols)\n");
  TablePrinter table({"planner", "plan+comp_ms", "ratio", "formats_match"});
  auto m = data::LowCardinalityMatrix(100000, 8, 40, false, 7);
  Stopwatch w1;
  auto exact = cla::CompressedMatrix::Compress(m);
  double exact_ms = w1.ElapsedMillis();
  cla::CompressionOptions sampled_options;
  sampled_options.sample_rows = 2000;
  Stopwatch w2;
  auto sampled = cla::CompressedMatrix::Compress(m, sampled_options);
  double sampled_ms = w2.ElapsedMillis();
  bool match = exact.groups().size() == sampled.groups().size();
  for (size_t g = 0; match && g < exact.groups().size(); ++g) {
    match = exact.groups()[g]->format() == sampled.groups()[g]->format();
  }
  table.Row({"exact", Fmt(exact_ms, 1), Fmt(exact.CompressionRatio(), 2), "-"});
  table.Row({"sampled2k", Fmt(sampled_ms, 1), Fmt(sampled.CompressionRatio(), 2),
             match ? "yes" : "no"});
  table.EmitCsv("A2_planner");
  std::printf("\n");
}

void CocodingAblation() {
  std::printf("A3: CLA co-coding — correlated column pairs (n = 50000)\n");
  // Columns come in perfectly correlated pairs.
  auto base = data::LowCardinalityMatrix(50000, 3, 6, false, 9);
  la::DenseMatrix m(50000, 6);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t p = 0; p < 3; ++p) {
      m.At(i, 2 * p) = base.At(i, p);
      m.At(i, 2 * p + 1) = base.At(i, p) * 3.0 - 1.0;
    }
  }
  TablePrinter table({"cocoding", "groups", "bytes", "ratio"});
  auto plain = cla::CompressedMatrix::Compress(m);
  cla::CompressionOptions co;
  co.enable_cocoding = true;
  auto coded = cla::CompressedMatrix::Compress(m, co);
  table.Row({"off", bench::FmtInt(static_cast<long long>(plain.groups().size())),
             bench::FmtInt(static_cast<long long>(plain.SizeInBytes())),
             Fmt(plain.CompressionRatio(), 2)});
  table.Row({"on", bench::FmtInt(static_cast<long long>(coded.groups().size())),
             bench::FmtInt(static_cast<long long>(coded.SizeInBytes())),
             Fmt(coded.CompressionRatio(), 2)});
  table.EmitCsv("A3_cocoding");
  std::printf("\n");
}

void SolverAblation() {
  std::printf("A4: GLM over a join — solver/representation matrix (nS = 40000)\n");
  data::StarSchemaOptions options;
  options.ns = 40000;
  options.nr = 2000;
  options.ds = 2;
  options.dr = 20;
  auto ds = data::MakeStarSchema(options, 11);
  auto nm = *factorized::NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});

  ml::GlmConfig gd;
  gd.learning_rate = 0.01;
  gd.max_epochs = 20;
  gd.tolerance = 0;

  TablePrinter table({"method", "ms", "loss"});
  {
    Stopwatch w;
    auto model = factorized::TrainFactorizedGlm(nm, ds.y, gd);
    double ms = w.ElapsedMillis();
    if (!model.ok()) std::exit(1);
    table.Row({"fact_bgd20", Fmt(ms, 1), Fmt(model->loss_history.back(), 4)});
  }
  {
    Stopwatch w;
    auto model = factorized::TrainMaterializedGlm(nm, ds.y, gd);
    double ms = w.ElapsedMillis();
    if (!model.ok()) std::exit(1);
    table.Row({"mat_bgd20", Fmt(ms, 1), Fmt(model->loss_history.back(), 4)});
  }
  {
    Stopwatch w;
    auto model = factorized::TrainFactorizedNormalEquations(nm, ds.y);
    double ms = w.ElapsedMillis();
    if (!model.ok()) std::exit(1);
    auto loss = ml::GlmLoss(nm.Materialize(), ds.y, model->weights, model->intercept,
                            ml::GlmFamily::kGaussian, 0.0);
    table.Row({"fact_gramian", Fmt(ms, 1), Fmt(*loss, 4)});
  }
  {
    Stopwatch w;
    auto x = nm.Materialize();
    ml::GlmConfig ne;
    ne.solver = ml::GlmSolver::kNormalEquations;
    auto model = ml::TrainGlm(x, ds.y, ne);
    double ms = w.ElapsedMillis();
    if (!model.ok()) std::exit(1);
    table.Row({"mat_gramian", Fmt(ms, 1), Fmt(model->loss_history.back(), 4)});
  }
  table.EmitCsv("A4_solvers");
  std::printf("\n");
}

void CseAblation() {
  std::printf("A5: executor — structural CSE on vs off\n");
  auto xm = std::make_shared<la::DenseMatrix>(data::GaussianMatrix(1500, 80, 13));
  // Build t(X)*X three times independently inside one expression.
  auto make_gram = [&] {
    auto x = *laopt::ExprNode::Input(xm, "X");
    return *laopt::ExprNode::MatMul(*laopt::ExprNode::Transpose(x), x);
  };
  auto expr = *laopt::ExprNode::Add(*laopt::ExprNode::Add(make_gram(), make_gram()),
                                    make_gram());

  TablePrinter table({"cse", "ops_executed", "ms"});
  {
    laopt::ExecStats stats;
    Stopwatch w;
    auto result = laopt::Execute(expr, nullptr, &stats);
    if (!result.ok()) std::exit(1);
    table.Row({"off", bench::FmtInt(static_cast<long long>(stats.ops_executed)),
               Fmt(w.ElapsedMillis(), 1)});
  }
  {
    auto deduped = laopt::EliminateCommonSubexpressions(expr);
    if (!deduped.ok()) std::exit(1);
    laopt::ExecStats stats;
    Stopwatch w;
    auto result = laopt::Execute(*deduped, nullptr, &stats);
    if (!result.ok()) std::exit(1);
    table.Row({"on", bench::FmtInt(static_cast<long long>(stats.ops_executed)),
               Fmt(w.ElapsedMillis(), 1)});
  }
  table.EmitCsv("A5_cse");
  std::printf("\n");
}

void HalvingAblation() {
  std::printf("A6: model search — batched grid vs successive halving (16 configs)\n");
  auto ds = data::MakeClassification(8000, 20, 0.05, 15);
  std::vector<ml::GlmConfig> configs;
  for (size_t i = 0; i < 16; ++i) {
    ml::GlmConfig c;
    c.family = ml::GlmFamily::kBinomial;
    c.learning_rate = 0.001 * static_cast<double>(1 << (i % 8));
    c.l2 = (i < 8) ? 0.0 : 0.01;
    c.max_epochs = 64;
    c.tolerance = 0;
    configs.push_back(c);
  }

  TablePrinter table({"strategy", "wall_ms", "epoch_equiv", "winner_lr"});
  {
    Stopwatch w;
    auto models = modelsel::BatchedTrainGlm(ds.x, ds.y, configs);
    if (!models.ok()) std::exit(1);
    // Pick by final loss.
    size_t best = 0;
    for (size_t c = 1; c < models->size(); ++c) {
      if ((*models)[c].loss_history.back() < (*models)[best].loss_history.back()) {
        best = c;
      }
    }
    table.Row({"grid_batched", Fmt(w.ElapsedMillis(), 0),
               bench::FmtInt(static_cast<long long>(16 * 64)),
               Fmt(configs[best].learning_rate, 3)});
  }
  {
    modelsel::HalvingConfig hc;
    hc.min_epochs = 8;
    hc.eta = 2.0;
    Stopwatch w;
    auto result = modelsel::SuccessiveHalving(ds.x, ds.y, configs, hc);
    if (!result.ok()) std::exit(1);
    table.Row({"halving", Fmt(w.ElapsedMillis(), 0),
               bench::FmtInt(static_cast<long long>(result->total_epoch_equivalents)),
               Fmt(configs[result->best_index].learning_rate, 3)});
  }
  table.EmitCsv("A6_halving");
}

void SparsePushAblation() {
  std::printf(
      "\nA7: PS gradient sparsification — top-k pushes with error feedback\n");
  auto ds = data::MakeClassification(6000, 100, 0.05, 17);
  TablePrinter table({"topk_frac", "coords_pushed", "final_loss", "accuracy"});
  for (double frac : {1.0, 0.25, 0.05, 0.01}) {
    ps::PsConfig config;
    config.num_workers = 2;
    config.epochs = 20;
    config.batch_size = 64;
    config.learning_rate = 0.3;
    config.family = ml::GlmFamily::kBinomial;
    config.topk_fraction = frac;
    auto result = ps::TrainGlmParameterServer(ds.x, ds.y, config);
    if (!result.ok()) std::exit(1);
    auto labels = result->model.PredictLabels(ds.x);
    double acc = labels.ok() ? *ml::Accuracy(ds.y, *labels) : 0.0;
    table.Row({Fmt(frac, 2),
               bench::FmtInt(static_cast<long long>(result->total_coordinates_pushed)),
               Fmt(result->loss_per_epoch.back(), 4), Fmt(acc, 4)});
  }
  table.EmitCsv("A7_sparse_push");
}

void SparseTrainingAblation() {
  std::printf("\nA8: GLM training — dense kernels vs CSR kernels by density\n");
  const size_t n = 10000, d = 200;
  TablePrinter table({"density", "dense_ms", "sparse_ms", "speedup"});
  for (double density : {0.01, 0.05, 0.2, 0.5}) {
    auto sparse = data::SparseGaussianMatrix(n, d, density, 19);
    auto dense = sparse.ToDense();
    Rng rng(20);
    la::DenseMatrix w_true(d, 1);
    for (size_t j = 0; j < d; ++j) w_true.At(j, 0) = rng.Normal();
    la::DenseMatrix y = la::SparseGemv(sparse, w_true);

    ml::GlmConfig config;
    config.learning_rate = 0.2;
    config.max_epochs = 15;
    config.tolerance = 0;
    Stopwatch w1;
    auto dense_model = ml::TrainGlm(dense, y, config);
    double dense_ms = w1.ElapsedMillis();
    Stopwatch w2;
    auto sparse_model = ml::TrainGlmSparse(sparse, y, config);
    double sparse_ms = w2.ElapsedMillis();
    if (!dense_model.ok() || !sparse_model.ok()) std::exit(1);
    table.Row({Fmt(density, 2), Fmt(dense_ms, 1), Fmt(sparse_ms, 1),
               Fmt(dense_ms / sparse_ms, 2)});
  }
  table.EmitCsv("A8_sparse_training");
}

void FusionAblation() {
  std::printf("\nA9: executor — elementwise fusion on vs off (5-op chain)\n");
  const size_t n = 2000, d = 500;
  auto a = std::make_shared<la::DenseMatrix>(data::GaussianMatrix(n, d, 21));
  auto b = std::make_shared<la::DenseMatrix>(data::GaussianMatrix(n, d, 22));
  auto c = std::make_shared<la::DenseMatrix>(data::GaussianMatrix(n, d, 23));
  auto ea = *laopt::ExprNode::Input(a, "A");
  auto eb = *laopt::ExprNode::Input(b, "B");
  auto ec = *laopt::ExprNode::Input(c, "C");
  // 2A + B.*C - 0.5B + A.*A : five elementwise ops, four temporaries unfused.
  auto expr = *laopt::ExprNode::Add(
      *laopt::ExprNode::Subtract(
          *laopt::ExprNode::Add(*laopt::ExprNode::ScalarMul(2.0, ea),
                                *laopt::ExprNode::ElemMul(eb, ec)),
          *laopt::ExprNode::ScalarMul(0.5, eb)),
      *laopt::ExprNode::ElemMul(ea, ea));

  constexpr int kReps = 20;
  TablePrinter table({"fusion", "ms_per_eval", "temporaries"});
  {
    Stopwatch w;
    for (int r = 0; r < kReps; ++r) {
      auto result = laopt::Execute(expr);
      if (!result.ok()) std::exit(1);
    }
    table.Row({"off", Fmt(w.ElapsedMillis() / kReps, 2), "5"});
  }
  {
    laopt::FusionStats stats;
    Stopwatch w;
    for (int r = 0; r < kReps; ++r) {
      auto result = laopt::ExecuteWithFusion(expr, &stats);
      if (!result.ok()) std::exit(1);
    }
    table.Row({"on", Fmt(w.ElapsedMillis() / kReps, 2), "0"});
  }
  table.EmitCsv("A9_fusion");
}

}  // namespace

int main() {
  dmml::bench::ObsServerScope obs_server;  // DMML_OBS_PORT exposition
  std::printf("Ablation experiments over dmml design choices\n\n");
  JoinAblation();
  PlannerAblation();
  CocodingAblation();
  SolverAblation();
  CseAblation();
  HalvingAblation();
  SparsePushAblation();
  SparseTrainingAblation();
  FusionAblation();
  dmml::bench::EmitMetrics("ablations");
  return 0;
}
