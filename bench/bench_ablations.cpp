// Ablation benchmarks for the design choices DESIGN.md calls out:
//   A1  hash join vs sort-merge join
//   A2  CLA planner: exact statistics vs sampling estimators
//   A3  CLA co-coding: on vs off
//   A4  factorized GLM solvers: gradient descent vs closed-form Gramian,
//       factorized vs materialized
//   A5  LA executor: common-subexpression elimination on vs off
//   A6  model search: batched grid vs successive halving
//   A7  PS gradient sparsification, A8 dense-vs-CSR training, A9 fusion
//
// `--smoke` shrinks every section for CI; all principal timings are emitted
// as #BENCH-JSON records (joinable by scripts/bench_compare.sh) in addition
// to the human tables.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "factorized/factorized_glm.h"
#include "factorized/factorized_gramian.h"
#include "laopt/cse.h"
#include "laopt/fusion.h"
#include "laopt/executor.h"
#include "modelsel/model_selection.h"
#include "la/kernels.h"
#include "ml/metrics.h"
#include "ml/sparse_glm.h"
#include "modelsel/successive_halving.h"
#include "ps/parameter_server.h"
#include "relational/sort_merge_join.h"
#include "util/stopwatch.h"

namespace {

using namespace dmml;  // NOLINT
using bench::Fmt;
using bench::TablePrinter;

struct BenchContext {
  bool smoke = false;
  bench::BenchJsonEmitter* json = nullptr;
};

std::string SizeLabel(size_t rows, size_t cols) {
  return std::to_string(rows) + "x" + std::to_string(cols);
}

void JoinAblation(const BenchContext& ctx) {
  const size_t ns = ctx.smoke ? 5000 : 30000;
  std::printf("A1: hash join vs sort-merge join (nS = %zu, dS = 2, dR = 4)\n", ns);
  TablePrinter table({"nR", "hash_ms", "sortmerge_ms", "rows_out"});
  for (size_t nr : {100, 1000, 10000}) {
    if (ctx.smoke && nr > 1000) continue;
    data::StarSchemaOptions options;
    options.ns = ns;
    options.nr = nr;
    options.ds = 2;
    options.dr = 4;
    auto ds = data::MakeStarSchema(options, nr);
    Stopwatch w1;
    auto hj = relational::HashJoin(ds.s, ds.r, "fk", "rid");
    double hash_ms = w1.ElapsedMillis();
    Stopwatch w2;
    auto smj = relational::SortMergeJoin(ds.s, ds.r, "fk", "rid");
    double smj_ms = w2.ElapsedMillis();
    if (!hj.ok() || !smj.ok()) std::exit(1);
    table.Row({bench::FmtInt(static_cast<long long>(nr)), Fmt(hash_ms, 1),
               Fmt(smj_ms, 1), bench::FmtInt(static_cast<long long>(hj->num_rows()))});
    const std::string size = std::to_string(ns) + "x" + std::to_string(nr);
    ctx.json->Record("ablation.join.hash", size, 1, hash_ms * 1e6, 0.0);
    ctx.json->Record("ablation.join.sortmerge", size, 1, smj_ms * 1e6, 0.0);
  }
  table.EmitCsv("A1_join");
  std::printf("\n");
}

void PlannerAblation(const BenchContext& ctx) {
  const size_t n = ctx.smoke ? 20000 : 100000;
  std::printf("A2: CLA planner — exact vs sampling estimators (n = %zu, 8 cols)\n",
              n);
  TablePrinter table({"planner", "plan+comp_ms", "ratio", "formats_match"});
  auto m = data::LowCardinalityMatrix(n, 8, 40, false, 7);
  Stopwatch w1;
  auto exact = cla::CompressedMatrix::Compress(m);
  double exact_ms = w1.ElapsedMillis();
  cla::CompressionOptions sampled_options;
  sampled_options.sample_rows = 2000;
  Stopwatch w2;
  auto sampled = cla::CompressedMatrix::Compress(m, sampled_options);
  double sampled_ms = w2.ElapsedMillis();
  bool match = exact.groups().size() == sampled.groups().size();
  for (size_t g = 0; match && g < exact.groups().size(); ++g) {
    match = exact.groups()[g]->format() == sampled.groups()[g]->format();
  }
  table.Row({"exact", Fmt(exact_ms, 1), Fmt(exact.CompressionRatio(), 2), "-"});
  table.Row({"sampled2k", Fmt(sampled_ms, 1), Fmt(sampled.CompressionRatio(), 2),
             match ? "yes" : "no"});
  table.EmitCsv("A2_planner");
  ctx.json->Record("ablation.planner.exact", SizeLabel(n, 8), 1, exact_ms * 1e6, 0.0);
  ctx.json->Record("ablation.planner.sampled2k", SizeLabel(n, 8), 1,
                   sampled_ms * 1e6, 0.0);
  std::printf("\n");
}

void CocodingAblation(const BenchContext& ctx) {
  const size_t n = ctx.smoke ? 10000 : 50000;
  std::printf("A3: CLA co-coding — correlated column pairs (n = %zu)\n", n);
  // Columns come in perfectly correlated pairs.
  auto base = data::LowCardinalityMatrix(n, 3, 6, false, 9);
  la::DenseMatrix m(n, 6);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t p = 0; p < 3; ++p) {
      m.At(i, 2 * p) = base.At(i, p);
      m.At(i, 2 * p + 1) = base.At(i, p) * 3.0 - 1.0;
    }
  }
  TablePrinter table({"cocoding", "groups", "bytes", "ratio"});
  Stopwatch w1;
  auto plain = cla::CompressedMatrix::Compress(m);
  double plain_ms = w1.ElapsedMillis();
  cla::CompressionOptions co;
  co.enable_cocoding = true;
  Stopwatch w2;
  auto coded = cla::CompressedMatrix::Compress(m, co);
  double coded_ms = w2.ElapsedMillis();
  table.Row({"off", bench::FmtInt(static_cast<long long>(plain.groups().size())),
             bench::FmtInt(static_cast<long long>(plain.SizeInBytes())),
             Fmt(plain.CompressionRatio(), 2)});
  table.Row({"on", bench::FmtInt(static_cast<long long>(coded.groups().size())),
             bench::FmtInt(static_cast<long long>(coded.SizeInBytes())),
             Fmt(coded.CompressionRatio(), 2)});
  table.EmitCsv("A3_cocoding");
  ctx.json->Record("ablation.cocoding.off", SizeLabel(n, 6), 1, plain_ms * 1e6,
                   0.0);
  ctx.json->Record("ablation.cocoding.on", SizeLabel(n, 6), 1, coded_ms * 1e6,
                   0.0);
  std::printf("\n");
}

void SolverAblation(const BenchContext& ctx) {
  const size_t ns = ctx.smoke ? 8000 : 40000;
  std::printf("A4: GLM over a join — solver/representation matrix (nS = %zu)\n",
              ns);
  data::StarSchemaOptions options;
  options.ns = ns;
  options.nr = 2000;
  options.ds = 2;
  options.dr = 20;
  auto ds = data::MakeStarSchema(options, 11);
  auto nm = *factorized::NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});
  const std::string size = SizeLabel(ns, 22);

  ml::GlmConfig gd;
  gd.learning_rate = 0.01;
  gd.max_epochs = ctx.smoke ? 5 : 20;
  gd.tolerance = 0;

  TablePrinter table({"method", "ms", "loss"});
  {
    Stopwatch w;
    auto model = factorized::TrainFactorizedGlm(nm, ds.y, gd);
    double ms = w.ElapsedMillis();
    if (!model.ok()) std::exit(1);
    table.Row({"fact_bgd", Fmt(ms, 1), Fmt(model->loss_history.back(), 4)});
    ctx.json->Record("ablation.solver.fact_bgd", size, 1, ms * 1e6, 0.0);
  }
  {
    Stopwatch w;
    auto model = factorized::TrainMaterializedGlm(nm, ds.y, gd);
    double ms = w.ElapsedMillis();
    if (!model.ok()) std::exit(1);
    table.Row({"mat_bgd", Fmt(ms, 1), Fmt(model->loss_history.back(), 4)});
    ctx.json->Record("ablation.solver.mat_bgd", size, 1, ms * 1e6, 0.0);
  }
  {
    Stopwatch w;
    auto model = factorized::TrainFactorizedNormalEquations(nm, ds.y);
    double ms = w.ElapsedMillis();
    if (!model.ok()) std::exit(1);
    auto loss = ml::GlmLoss(nm.Materialize(), ds.y, model->weights, model->intercept,
                            ml::GlmFamily::kGaussian, 0.0);
    table.Row({"fact_gramian", Fmt(ms, 1), Fmt(*loss, 4)});
    ctx.json->Record("ablation.solver.fact_gramian", size, 1, ms * 1e6, 0.0);
  }
  {
    Stopwatch w;
    auto x = nm.Materialize();
    ml::GlmConfig ne;
    ne.solver = ml::GlmSolver::kNormalEquations;
    auto model = ml::TrainGlm(x, ds.y, ne);
    double ms = w.ElapsedMillis();
    if (!model.ok()) std::exit(1);
    table.Row({"mat_gramian", Fmt(ms, 1), Fmt(model->loss_history.back(), 4)});
    ctx.json->Record("ablation.solver.mat_gramian", size, 1, ms * 1e6, 0.0);
  }
  table.EmitCsv("A4_solvers");
  std::printf("\n");
}

void CseAblation(const BenchContext& ctx) {
  std::printf("A5: executor — structural CSE on vs off\n");
  const size_t n = ctx.smoke ? 500 : 1500;
  const size_t d = ctx.smoke ? 40 : 80;
  auto xm = std::make_shared<la::DenseMatrix>(data::GaussianMatrix(n, d, 13));
  // Build t(X)*X three times independently inside one expression.
  auto make_gram = [&] {
    auto x = *laopt::ExprNode::Input(xm, "X");
    return *laopt::ExprNode::MatMul(*laopt::ExprNode::Transpose(x), x);
  };
  auto expr = *laopt::ExprNode::Add(*laopt::ExprNode::Add(make_gram(), make_gram()),
                                    make_gram());

  TablePrinter table({"cse", "ops_executed", "ms"});
  {
    laopt::ExecStats stats;
    Stopwatch w;
    auto result = laopt::Execute(expr, nullptr, &stats);
    if (!result.ok()) std::exit(1);
    double ms = w.ElapsedMillis();
    table.Row({"off", bench::FmtInt(static_cast<long long>(stats.ops_executed)),
               Fmt(ms, 1)});
    ctx.json->Record("ablation.cse.off", SizeLabel(n, d), 1, ms * 1e6, 0.0);
  }
  {
    auto deduped = laopt::EliminateCommonSubexpressions(expr);
    if (!deduped.ok()) std::exit(1);
    laopt::ExecStats stats;
    Stopwatch w;
    auto result = laopt::Execute(*deduped, nullptr, &stats);
    if (!result.ok()) std::exit(1);
    double ms = w.ElapsedMillis();
    table.Row({"on", bench::FmtInt(static_cast<long long>(stats.ops_executed)),
               Fmt(ms, 1)});
    ctx.json->Record("ablation.cse.on", SizeLabel(n, d), 1, ms * 1e6, 0.0);
  }
  table.EmitCsv("A5_cse");
  std::printf("\n");
}

void HalvingAblation(const BenchContext& ctx) {
  const size_t n = ctx.smoke ? 1500 : 8000;
  const size_t epochs = ctx.smoke ? 16 : 64;
  std::printf("A6: model search — batched grid vs successive halving (16 configs)\n");
  auto ds = data::MakeClassification(n, 20, 0.05, 15);
  std::vector<ml::GlmConfig> configs;
  for (size_t i = 0; i < 16; ++i) {
    ml::GlmConfig c;
    c.family = ml::GlmFamily::kBinomial;
    c.learning_rate = 0.001 * static_cast<double>(1 << (i % 8));
    c.l2 = (i < 8) ? 0.0 : 0.01;
    c.max_epochs = epochs;
    c.tolerance = 0;
    configs.push_back(c);
  }
  const std::string size = SizeLabel(n, 20);

  TablePrinter table({"strategy", "wall_ms", "epoch_equiv", "winner_lr"});
  {
    Stopwatch w;
    auto models = modelsel::BatchedTrainGlm(ds.x, ds.y, configs);
    if (!models.ok()) std::exit(1);
    double ms = w.ElapsedMillis();
    // Pick by final loss.
    size_t best = 0;
    for (size_t c = 1; c < models->size(); ++c) {
      if ((*models)[c].loss_history.back() < (*models)[best].loss_history.back()) {
        best = c;
      }
    }
    table.Row({"grid_batched", Fmt(ms, 0),
               bench::FmtInt(static_cast<long long>(16 * epochs)),
               Fmt(configs[best].learning_rate, 3)});
    ctx.json->Record("ablation.search.grid_batched", size, 1, ms * 1e6, 0.0);
  }
  {
    modelsel::HalvingConfig hc;
    hc.min_epochs = ctx.smoke ? 4 : 8;
    hc.eta = 2.0;
    Stopwatch w;
    auto result = modelsel::SuccessiveHalving(ds.x, ds.y, configs, hc);
    if (!result.ok()) std::exit(1);
    double ms = w.ElapsedMillis();
    table.Row({"halving", Fmt(ms, 0),
               bench::FmtInt(static_cast<long long>(result->total_epoch_equivalents)),
               Fmt(configs[result->best_index].learning_rate, 3)});
    ctx.json->Record("ablation.search.halving", size, 1, ms * 1e6, 0.0);
  }
  table.EmitCsv("A6_halving");
}

void SparsePushAblation(const BenchContext& ctx) {
  std::printf(
      "\nA7: PS gradient sparsification — top-k pushes with error feedback\n");
  const size_t n = ctx.smoke ? 1500 : 6000;
  auto ds = data::MakeClassification(n, 100, 0.05, 17);
  TablePrinter table({"topk_frac", "coords_pushed", "final_loss", "accuracy"});
  for (double frac : {1.0, 0.25, 0.05, 0.01}) {
    if (ctx.smoke && frac != 1.0 && frac != 0.05) continue;
    ps::PsConfig config;
    config.num_workers = 2;
    config.epochs = ctx.smoke ? 5 : 20;
    config.batch_size = 64;
    config.learning_rate = 0.3;
    config.family = ml::GlmFamily::kBinomial;
    config.topk_fraction = frac;
    Stopwatch w;
    auto result = ps::TrainGlmParameterServer(ds.x, ds.y, config);
    if (!result.ok()) std::exit(1);
    double ms = w.ElapsedMillis();
    auto labels = result->model.PredictLabels(ds.x);
    double acc = labels.ok() ? *ml::Accuracy(ds.y, *labels) : 0.0;
    table.Row({Fmt(frac, 2),
               bench::FmtInt(static_cast<long long>(result->total_coordinates_pushed)),
               Fmt(result->loss_per_epoch.back(), 4), Fmt(acc, 4)});
    ctx.json->Record("ablation.ps.topk_" + Fmt(frac, 2), SizeLabel(n, 100), 2,
                     ms * 1e6, 0.0);
  }
  table.EmitCsv("A7_sparse_push");
}

void SparseTrainingAblation(const BenchContext& ctx) {
  std::printf("\nA8: GLM training — dense kernels vs CSR kernels by density\n");
  const size_t n = ctx.smoke ? 2000 : 10000;
  const size_t d = ctx.smoke ? 80 : 200;
  TablePrinter table({"density", "dense_ms", "sparse_ms", "speedup"});
  for (double density : {0.01, 0.05, 0.2, 0.5}) {
    if (ctx.smoke && density > 0.05) continue;
    auto sparse = data::SparseGaussianMatrix(n, d, density, 19);
    auto dense = sparse.ToDense();
    Rng rng(20);
    la::DenseMatrix w_true(d, 1);
    for (size_t j = 0; j < d; ++j) w_true.At(j, 0) = rng.Normal();
    la::DenseMatrix y = la::SparseGemv(sparse, w_true);

    ml::GlmConfig config;
    config.learning_rate = 0.2;
    config.max_epochs = ctx.smoke ? 5 : 15;
    config.tolerance = 0;
    Stopwatch w1;
    auto dense_model = ml::TrainGlm(dense, y, config);
    double dense_ms = w1.ElapsedMillis();
    Stopwatch w2;
    auto sparse_model = ml::TrainGlmSparse(sparse, y, config);
    double sparse_ms = w2.ElapsedMillis();
    if (!dense_model.ok() || !sparse_model.ok()) std::exit(1);
    table.Row({Fmt(density, 2), Fmt(dense_ms, 1), Fmt(sparse_ms, 1),
               Fmt(dense_ms / sparse_ms, 2)});
    const std::string size = SizeLabel(n, d) + "@" + Fmt(density, 2);
    ctx.json->Record("ablation.glm.dense", size, 1, dense_ms * 1e6, 0.0);
    ctx.json->Record("ablation.glm.sparse", size, 1, sparse_ms * 1e6, 0.0);
  }
  table.EmitCsv("A8_sparse_training");
}

void FusionAblation(const BenchContext& ctx) {
  std::printf("\nA9: executor — elementwise fusion on vs off (5-op chain)\n");
  const size_t n = ctx.smoke ? 500 : 2000;
  const size_t d = ctx.smoke ? 200 : 500;
  auto a = std::make_shared<la::DenseMatrix>(data::GaussianMatrix(n, d, 21));
  auto b = std::make_shared<la::DenseMatrix>(data::GaussianMatrix(n, d, 22));
  auto c = std::make_shared<la::DenseMatrix>(data::GaussianMatrix(n, d, 23));
  auto ea = *laopt::ExprNode::Input(a, "A");
  auto eb = *laopt::ExprNode::Input(b, "B");
  auto ec = *laopt::ExprNode::Input(c, "C");
  // 2A + B.*C - 0.5B + A.*A : five elementwise ops, four temporaries unfused.
  auto expr = *laopt::ExprNode::Add(
      *laopt::ExprNode::Subtract(
          *laopt::ExprNode::Add(*laopt::ExprNode::ScalarMul(2.0, ea),
                                *laopt::ExprNode::ElemMul(eb, ec)),
          *laopt::ExprNode::ScalarMul(0.5, eb)),
      *laopt::ExprNode::ElemMul(ea, ea));

  const int reps = ctx.smoke ? 5 : 20;
  TablePrinter table({"fusion", "ms_per_eval", "temporaries"});
  {
    Stopwatch w;
    for (int r = 0; r < reps; ++r) {
      auto result = laopt::Execute(expr);
      if (!result.ok()) std::exit(1);
    }
    double ms = w.ElapsedMillis() / reps;
    table.Row({"off", Fmt(ms, 2), "5"});
    ctx.json->Record("ablation.fusion.off", SizeLabel(n, d), 1, ms * 1e6, 0.0);
  }
  {
    laopt::FusionStats stats;
    Stopwatch w;
    for (int r = 0; r < reps; ++r) {
      auto result = laopt::ExecuteWithFusion(expr, &stats);
      if (!result.ok()) std::exit(1);
    }
    double ms = w.ElapsedMillis() / reps;
    table.Row({"on", Fmt(ms, 2), "0"});
    ctx.json->Record("ablation.fusion.on", SizeLabel(n, d), 1, ms * 1e6, 0.0);
  }
  table.EmitCsv("A9_fusion");
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) ctx.smoke = true;
  }
  bench::BenchJsonEmitter json;
  ctx.json = &json;

  dmml::bench::ObsServerScope obs_server;  // DMML_OBS_PORT exposition
  std::printf("Ablation experiments over dmml design choices%s\n\n",
              ctx.smoke ? " (smoke)" : "");
  JoinAblation(ctx);
  PlannerAblation(ctx);
  CocodingAblation(ctx);
  SolverAblation(ctx);
  CseAblation(ctx);
  HalvingAblation(ctx);
  SparsePushAblation(ctx);
  SparseTrainingAblation(ctx);
  FusionAblation(ctx);
  json.Emit("ablations");
  dmml::bench::EmitMetrics("ablations");
  return 0;
}
