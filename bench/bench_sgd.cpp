// Experiment E4 — statistical vs hardware efficiency of SGD variants
// (the Hogwild / mini-batching discussion).
//
// Trains the same logistic-regression problem with batch GD, serial SGD,
// mini-batch SGD, and Hogwild at 1/2/4 threads. Reports wall time, epochs
// used, final loss and accuracy. Expected shape: SGD variants need fewer
// epochs than batch GD to reach a loss target; Hogwild matches serial SGD
// accuracy; Hogwild thread-scaling is flat on this 1-CPU host (noted in
// EXPERIMENTS.md).
//
// `--smoke` shrinks the problem and epoch budget for CI; every variant lands
// in the #BENCH-JSON block (per-epoch wall time) for bench_compare.sh.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "ml/glm.h"
#include "ml/metrics.h"
#include "util/stopwatch.h"

namespace {

using namespace dmml;  // NOLINT
using bench::BenchJsonEmitter;
using bench::Fmt;
using bench::TablePrinter;

constexpr double kLossTarget = 0.36;

void RunVariant(TablePrinter* table, BenchJsonEmitter* json,
                const std::string& size, const char* name, ml::GlmConfig config,
                const la::DenseMatrix& x, const la::DenseMatrix& y) {
  Stopwatch watch;
  auto model = ml::TrainGlm(x, y, config);
  double ms = watch.ElapsedMillis();
  if (!model.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", name, model.status().ToString().c_str());
    std::exit(1);
  }
  // Epochs needed to first reach the loss target (or '-' if never).
  std::string epochs_to_target = "-";
  for (size_t e = 0; e < model->loss_history.size(); ++e) {
    if (model->loss_history[e] <= kLossTarget) {
      epochs_to_target = std::to_string(e + 1);
      break;
    }
  }
  auto labels = model->PredictLabels(x);
  double acc = labels.ok() ? *ml::Accuracy(y, *labels) : 0.0;
  double ms_per_epoch = ms / static_cast<double>(model->epochs_run);
  table->Row({name, bench::FmtInt(static_cast<long long>(model->epochs_run)),
              epochs_to_target, Fmt(model->loss_history.back(), 4), Fmt(acc, 4),
              Fmt(ms, 0), Fmt(ms_per_epoch, 2)});
  size_t threads = config.num_threads > 0 ? config.num_threads : 1;
  json->Record(std::string("sgd_") + name + "_epoch", size, threads,
               ms_per_epoch * 1e6, 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  dmml::bench::ObsServerScope obs_server;  // DMML_OBS_PORT exposition
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const size_t n = smoke ? 4000 : 20000;
  const size_t d = smoke ? 20 : 50;
  const size_t max_epochs = smoke ? 10 : 30;
  std::printf("E4: SGD variants — statistical vs hardware efficiency%s\n",
              smoke ? " (smoke)" : "");
  std::printf("logistic regression, n = %zu, d = %zu, loss target %.2f\n\n", n, d,
              kLossTarget);

  auto ds = data::MakeClassification(n, d, 0.05, 7);

  BenchJsonEmitter json;
  const std::string size = "n" + std::to_string(n) + "_d" + std::to_string(d);

  TablePrinter table({"variant", "epochs", "to_target", "final_loss", "accuracy",
                      "total_ms", "ms_per_epoch"},
                     13);

  ml::GlmConfig base;
  base.family = ml::GlmFamily::kBinomial;
  base.max_epochs = max_epochs;
  base.tolerance = 0;
  base.learning_rate = 0.5;

  ml::GlmConfig bgd = base;
  bgd.solver = ml::GlmSolver::kBatchGd;
  RunVariant(&table, &json, size, "batch_gd", bgd, ds.x, ds.y);

  ml::GlmConfig sgd = base;
  sgd.solver = ml::GlmSolver::kSgd;
  sgd.learning_rate = 0.05;
  sgd.lr_decay = 0.05;
  RunVariant(&table, &json, size, "sgd", sgd, ds.x, ds.y);

  for (size_t bs : {8, 64, 512}) {
    ml::GlmConfig mb = base;
    mb.solver = ml::GlmSolver::kMiniBatchSgd;
    mb.batch_size = bs;
    mb.learning_rate = 0.1;
    mb.lr_decay = 0.05;
    RunVariant(&table, &json, size, ("minibatch_" + std::to_string(bs)).c_str(), mb,
               ds.x, ds.y);
  }

  for (size_t threads : {1, 2, 4}) {
    ml::GlmConfig hw = base;
    hw.solver = ml::GlmSolver::kHogwild;
    hw.num_threads = threads;
    hw.learning_rate = 0.05;
    hw.lr_decay = 0.05;
    RunVariant(&table, &json, size, ("hogwild_t" + std::to_string(threads)).c_str(),
               hw, ds.x, ds.y);
  }

  table.EmitCsv("E4_sgd");

  std::printf(
      "\nExpected shape (Hogwild, NIPS'11 & mini-batch folklore): SGD variants\n"
      "reach the loss target in far fewer epochs than batch GD; Hogwild\n"
      "matches serial SGD accuracy; with >1 hardware thread, Hogwild\n"
      "ms_per_epoch would drop near-linearly (flat on this 1-CPU host).\n");
  json.Emit("sgd");
  dmml::bench::EmitMetrics("sgd");
  return 0;
}
