// Experiment E2 — compressed linear algebra (the CLA result).
//
// Three jobs in one binary:
//
//  1. **Parity.** Compressed ops are checked against their dense twins and
//     the pooled engine against its serial self on a mixed-encoding dataset.
//     Any mismatch makes the process exit nonzero — scripts/static_checks.sh
//     runs `--smoke` as a release-build gate.
//
//  2. **E2 table.** For datasets spanning the compressibility spectrum,
//     reports the chosen encodings, compression ratio, and matrix-vector /
//     vector-matrix multiply time on compressed vs dense data. Expected
//     shape: large ratios and competitive (often faster) ops on
//     low-cardinality / sorted / sparse data; ratio ~1 with UC fallback on
//     incompressible Gaussian data; ratio decays toward 1 as cardinality
//     grows.
//
//  3. **Thread sweep.** Compress + mv/vm/mm at 1/2/4/8 threads, emitted as a
//     #BENCH-JSON block that scripts/bench_compare.sh can diff across two
//     captures.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "la/kernels.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace dmml;  // NOLINT
using bench::BenchJsonEmitter;
using bench::Fmt;
using bench::TablePrinter;
using la::DenseMatrix;

bool g_failed = false;

DenseMatrix SparseMatrixData(size_t rows, size_t cols, double density,
                             uint64_t seed) {
  DenseMatrix m(rows, cols);
  Rng rng(seed);
  for (size_t i = 0; i < m.size(); ++i) {
    if (rng.Bernoulli(density)) m.data()[i] = rng.Normal();
  }
  return m;
}

double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return std::numeric_limits<double>::infinity();
  }
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

void Check(const char* what, const DenseMatrix& got, const DenseMatrix& want,
           double tol) {
  double scale = 1.0;
  for (size_t i = 0; i < want.size(); ++i) {
    scale = std::max(scale, std::fabs(want.data()[i]));
  }
  double diff = MaxAbsDiff(got, want);
  if (!(diff <= tol * scale)) {
    std::fprintf(stderr, "PARITY FAIL %s: max |diff| = %g (scale %g)\n", what,
                 diff, scale);
    g_failed = true;
  }
}

// Compressed vs dense, and pooled vs serial, across a dataset that lands in
// every encoding (low-card DDC, sorted RLE, sparse OLE, gaussian UC).
void RunParitySuite(size_t rows) {
  DenseMatrix m(rows, 6);
  auto lowcard = data::LowCardinalityMatrix(rows, 2, 6, false, 100);
  auto sorted = data::LowCardinalityMatrix(rows, 2, 9, true, 101);
  Rng rng(102);
  for (size_t i = 0; i < rows; ++i) {
    m.At(i, 0) = lowcard.At(i, 0);
    m.At(i, 1) = lowcard.At(i, 1);
    m.At(i, 2) = sorted.At(i, 0);
    m.At(i, 3) = sorted.At(i, 1);
    if (rng.Bernoulli(0.06)) m.At(i, 4) = rng.Normal();
    m.At(i, 5) = rng.Normal();
  }

  ThreadPool pool(4);
  cla::CompressionOptions options;
  options.enable_cocoding = true;
  auto serial_cm = cla::CompressedMatrix::Compress(m, options);
  auto pooled_cm = cla::CompressedMatrix::Compress(m, options, &pool);
  if (!(serial_cm.Decompress() == m)) {
    std::fprintf(stderr, "PARITY FAIL serial decompress != input\n");
    g_failed = true;
  }
  if (!(pooled_cm.Decompress(&pool) == m)) {
    std::fprintf(stderr, "PARITY FAIL pooled decompress != input\n");
    g_failed = true;
  }
  if (serial_cm.SizeInBytes() != pooled_cm.SizeInBytes()) {
    std::fprintf(stderr, "PARITY FAIL pooled plan differs from serial plan\n");
    g_failed = true;
  }

  auto v = data::GaussianMatrix(m.cols(), 1, 103);
  auto u = data::GaussianMatrix(rows, 1, 104);
  auto rhs_m = data::GaussianMatrix(m.cols(), 8, 105);
  auto rhs_t = data::GaussianMatrix(rows, 8, 106);

  Check("mv comp vs dense", *serial_cm.MultiplyVector(v), la::Gemv(m, v), 1e-9);
  Check("vm comp vs dense", *serial_cm.VectorMultiply(u), la::Gevm(u, m), 1e-9);
  Check("mm comp vs dense", *serial_cm.MultiplyMatrix(rhs_m),
        la::Multiply(m, rhs_m), 1e-9);
  Check("tmm comp vs dense", *serial_cm.TransposeMultiplyMatrix(rhs_t),
        la::Multiply(la::Transpose(m), rhs_t), 1e-9);

  Check("mv pooled vs serial", *serial_cm.MultiplyVector(v, &pool),
        *serial_cm.MultiplyVector(v), 1e-12);
  Check("vm pooled vs serial", *serial_cm.VectorMultiply(u, &pool),
        *serial_cm.VectorMultiply(u), 1e-12);
  Check("mm pooled vs serial", *serial_cm.MultiplyMatrix(rhs_m, &pool),
        *serial_cm.MultiplyMatrix(rhs_m), 1e-12);
  Check("tmm pooled vs serial", *serial_cm.TransposeMultiplyMatrix(rhs_t, &pool),
        *serial_cm.TransposeMultiplyMatrix(rhs_t), 1e-12);
  Check("rownorms pooled vs serial", serial_cm.RowSquaredNorms(&pool),
        serial_cm.RowSquaredNorms(), 1e-12);
}

void RunDataset(TablePrinter* table, const char* name, const la::DenseMatrix& m,
                int reps) {
  Stopwatch wc;
  auto cm = cla::CompressedMatrix::Compress(m);
  double compress_ms = wc.ElapsedMillis();

  auto v = data::GaussianMatrix(m.cols(), 1, 1);
  auto u = data::GaussianMatrix(m.rows(), 1, 2);
  DenseMatrix out;

  Stopwatch w1;
  for (int r = 0; r < reps; ++r) {
    if (!cm.MultiplyVectorInto(v, &out).ok()) std::exit(1);
  }
  double mv_comp = w1.ElapsedMillis() / reps;
  Stopwatch w2;
  for (int r = 0; r < reps; ++r) la::Gemv(m, v);
  double mv_dense = w2.ElapsedMillis() / reps;

  Stopwatch w3;
  for (int r = 0; r < reps; ++r) {
    if (!cm.VectorMultiplyInto(u, &out).ok()) std::exit(1);
  }
  double vm_comp = w3.ElapsedMillis() / reps;
  Stopwatch w4;
  for (int r = 0; r < reps; ++r) la::Gevm(u, m);
  double vm_dense = w4.ElapsedMillis() / reps;

  // Dominant format for display.
  std::map<std::string, int> counts;
  for (const auto& g : cm.groups()) counts[cla::GroupFormatName(g->format())]++;
  std::string fmt;
  for (auto& [k, c] : counts) fmt += k + "x" + std::to_string(c) + " ";
  if (!fmt.empty()) fmt.pop_back();

  table->Row({name, fmt, Fmt(cm.CompressionRatio(), 2), Fmt(compress_ms, 1),
              Fmt(mv_dense, 2), Fmt(mv_comp, 2), Fmt(vm_dense, 2), Fmt(vm_comp, 2)});
}

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Times `fn`, scaling repetitions to fill ~`min_seconds`, and returns ns/op.
template <typename Fn>
double TimeNsPerOp(double min_seconds, const Fn& fn) {
  fn();  // Warm-up: faults pages, fills caches, sizes scratch buffers.
  Clock::time_point t0 = Clock::now();
  fn();
  const double once = std::max(SecondsSince(t0), 1e-9);
  const size_t reps =
      std::max<size_t>(1, static_cast<size_t>(min_seconds / once));
  t0 = Clock::now();
  for (size_t r = 0; r < reps; ++r) fn();
  return SecondsSince(t0) * 1e9 / static_cast<double>(reps);
}

// Compress + mv/vm/mm at 1/2/4/8 threads. threads=1 runs the serial path
// (null pool), so bench_compare.sh tracks serial regressions too.
void ThreadSweep(const char* name, const la::DenseMatrix& m, double min_seconds,
                 BenchJsonEmitter* json) {
  const size_t rows = m.rows(), cols = m.cols();
  const size_t k = 8;
  auto v = data::GaussianMatrix(cols, 1, 3);
  auto u = data::GaussianMatrix(rows, 1, 4);
  auto rhs = data::GaussianMatrix(cols, k, 5);
  const double mv_flops = 2.0 * static_cast<double>(rows) * static_cast<double>(cols);
  const double mm_flops = mv_flops * static_cast<double>(k);

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::unique_ptr<ThreadPool> owned;
    ThreadPool* pool = nullptr;
    if (threads > 1) {
      owned = std::make_unique<ThreadPool>(threads);
      pool = owned.get();
    }

    double ns = TimeNsPerOp(min_seconds, [&] {
      auto cm = cla::CompressedMatrix::Compress(m, {}, pool);
      if (cm.groups().empty()) g_failed = true;
    });
    json->Record("cla.compress", name, threads, ns, 0.0);

    auto cm = cla::CompressedMatrix::Compress(m, {}, pool);
    DenseMatrix out;
    ns = TimeNsPerOp(min_seconds, [&] {
      if (!cm.MultiplyVectorInto(v, &out, pool).ok()) g_failed = true;
    });
    json->Record("cla.mv", name, threads, ns, mv_flops / ns);
    ns = TimeNsPerOp(min_seconds, [&] {
      if (!cm.VectorMultiplyInto(u, &out, pool).ok()) g_failed = true;
    });
    json->Record("cla.vm", name, threads, ns, mv_flops / ns);
    ns = TimeNsPerOp(min_seconds, [&] {
      if (!cm.MultiplyMatrixInto(rhs, &out, pool).ok()) g_failed = true;
    });
    json->Record("cla.mm", name, threads, ns, mm_flops / ns);
  }
}

}  // namespace

int main(int argc, char** argv) {
  dmml::bench::ObsServerScope obs_server;  // DMML_OBS_PORT exposition
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t rows = smoke ? 8000 : 50000;
  const size_t cols = 10;
  const int reps = smoke ? 5 : 30;
  const double min_seconds = smoke ? 0.02 : 0.25;

  std::printf("== cla parity (compressed vs dense, pooled vs serial) ==\n");
  RunParitySuite(smoke ? 6000 : 20000);
  std::printf("parity: %s\n", g_failed ? "FAIL" : "ok");

  std::printf("\nE2: compressed linear algebra — ratio and op performance\n");
  std::printf("n = %zu rows, %zu columns, %d-rep averages\n\n", rows, cols, reps);

  TablePrinter table({"dataset", "formats", "ratio", "comp_ms", "mv_dense",
                      "mv_comp", "vm_dense", "vm_comp"},
                     12);
  RunDataset(&table, "card4",
             data::LowCardinalityMatrix(rows, cols, 4, false, 10), reps);
  RunDataset(&table, "card64",
             data::LowCardinalityMatrix(rows, cols, 64, false, 11), reps);
  RunDataset(&table, "card1k",
             data::LowCardinalityMatrix(rows, cols, 1024, false, 12), reps);
  RunDataset(&table, "card64k",
             data::LowCardinalityMatrix(rows, cols, 65000, false, 16), reps);
  RunDataset(&table, "sorted8",
             data::LowCardinalityMatrix(rows, cols, 8, true, 13), reps);
  RunDataset(&table, "zipf1k",
             data::SkewedCardinalityMatrix(rows, cols, 1000, 1.3, 14), reps);
  RunDataset(&table, "sparse5pct", SparseMatrixData(rows, cols, 0.05, 15), reps);
  RunDataset(&table, "gaussian", data::GaussianMatrix(rows, cols, 17), reps);
  table.EmitCsv("E2_cla");

  std::printf(
      "\nExpected shape (CLA, VLDB'16): ratios >> 1 on low-cardinality,\n"
      "sorted and sparse data with near- or better-than-dense op times;\n"
      "UC fallback and ratio <= 1.01 on Gaussian data; ratio decays toward 1\n"
      "as per-column cardinality grows.\n");

  std::printf("\n== thread sweep (compress + mv/vm/mm at 1/2/4/8 threads) ==\n");
  BenchJsonEmitter json;
  ThreadSweep("card64",
              data::LowCardinalityMatrix(rows, cols, 64, false, 11), min_seconds,
              &json);
  ThreadSweep("sorted8",
              data::LowCardinalityMatrix(rows, cols, 8, true, 13), min_seconds,
              &json);
  ThreadSweep("sparse5pct", SparseMatrixData(rows, cols, 0.05, 15), min_seconds,
              &json);
  json.Emit("bench_cla");
  dmml::bench::EmitMetrics("cla");

  if (g_failed) {
    std::fprintf(stderr, "bench_cla: FAILURES DETECTED\n");
    return 1;
  }
  std::printf("bench_cla: all checks passed\n");
  return 0;
}
