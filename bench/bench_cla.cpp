// Experiment E2 — compressed linear algebra (the CLA result).
//
// For datasets spanning the compressibility spectrum, reports the chosen
// encodings, compression ratio, and matrix-vector / vector-matrix multiply
// time on compressed vs dense data. Expected shape: large ratios and
// competitive (often faster) ops on low-cardinality / sorted / sparse data;
// ratio ~1 with UC fallback on incompressible Gaussian data; ratio decays
// toward 1 as cardinality grows.
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "la/kernels.h"
#include "util/stopwatch.h"

namespace {

using namespace dmml;  // NOLINT
using bench::Fmt;
using bench::TablePrinter;

constexpr size_t kRows = 50000;
constexpr size_t kCols = 10;
constexpr int kReps = 30;

struct DatasetSpec {
  const char* name;
  la::DenseMatrix matrix;
};

void RunDataset(TablePrinter* table, const char* name, const la::DenseMatrix& m) {
  Stopwatch wc;
  auto cm = cla::CompressedMatrix::Compress(m);
  double compress_ms = wc.ElapsedMillis();

  auto v = data::GaussianMatrix(m.cols(), 1, 1);
  auto u = data::GaussianMatrix(m.rows(), 1, 2);

  Stopwatch w1;
  for (int r = 0; r < kReps; ++r) {
    auto y = cm.MultiplyVector(v);
    if (!y.ok()) std::exit(1);
  }
  double mv_comp = w1.ElapsedMillis() / kReps;
  Stopwatch w2;
  for (int r = 0; r < kReps; ++r) la::Gemv(m, v);
  double mv_dense = w2.ElapsedMillis() / kReps;

  Stopwatch w3;
  for (int r = 0; r < kReps; ++r) {
    auto y = cm.VectorMultiply(u);
    if (!y.ok()) std::exit(1);
  }
  double vm_comp = w3.ElapsedMillis() / kReps;
  Stopwatch w4;
  for (int r = 0; r < kReps; ++r) la::Gevm(u, m);
  double vm_dense = w4.ElapsedMillis() / kReps;

  // Dominant format for display.
  std::map<std::string, int> counts;
  for (const auto& g : cm.groups()) counts[cla::GroupFormatName(g->format())]++;
  std::string fmt;
  for (auto& [k, c] : counts) fmt += k + "x" + std::to_string(c) + " ";
  if (!fmt.empty()) fmt.pop_back();

  table->Row({name, fmt, Fmt(cm.CompressionRatio(), 2), Fmt(compress_ms, 1),
              Fmt(mv_dense, 2), Fmt(mv_comp, 2), Fmt(vm_dense, 2), Fmt(vm_comp, 2)});
}

}  // namespace

int main() {
  std::printf("E2: compressed linear algebra — ratio and op performance\n");
  std::printf("n = %zu rows, %zu columns, %d-rep averages\n\n", kRows, kCols, kReps);

  TablePrinter table({"dataset", "formats", "ratio", "comp_ms", "mv_dense",
                      "mv_comp", "vm_dense", "vm_comp"},
                     12);
  RunDataset(&table, "card4",
             data::LowCardinalityMatrix(kRows, kCols, 4, false, 10));
  RunDataset(&table, "card64",
             data::LowCardinalityMatrix(kRows, kCols, 64, false, 11));
  RunDataset(&table, "card1k",
             data::LowCardinalityMatrix(kRows, kCols, 1024, false, 12));
  RunDataset(&table, "card64k",
             data::LowCardinalityMatrix(kRows, kCols, 65000, false, 16));
  RunDataset(&table, "sorted8",
             data::LowCardinalityMatrix(kRows, kCols, 8, true, 13));
  RunDataset(&table, "zipf1k",
             data::SkewedCardinalityMatrix(kRows, kCols, 1000, 1.3, 14));
  {
    // 5% dense sparse data.
    la::DenseMatrix m(kRows, kCols);
    Rng rng(15);
    for (size_t i = 0; i < m.size(); ++i) {
      if (rng.Bernoulli(0.05)) m.data()[i] = rng.Normal();
    }
    RunDataset(&table, "sparse5pct", m);
  }
  RunDataset(&table, "gaussian", data::GaussianMatrix(kRows, kCols, 17));
  table.EmitCsv("E2_cla");

  std::printf(
      "\nExpected shape (CLA, VLDB'16): ratios >> 1 on low-cardinality,\n"
      "sorted and sparse data with near- or better-than-dense op times;\n"
      "UC fallback and ratio <= 1.01 on Gaussian data; ratio decays toward 1\n"
      "as per-column cardinality grows.\n");
  dmml::bench::EmitMetrics("cla");
  return 0;
}
