// Experiment E5 — parameter-server consistency modes (BSP vs ASP vs SSP).
//
// Trains the same logistic regression with 4 workers under each consistency
// protocol, with a small artificial straggler jitter so the protocols
// actually diverge on uniform hardware. Expected shape: ASP achieves the
// highest push throughput but staler updates; BSP has zero inter-round
// staleness and the best per-epoch convergence; SSP interpolates, with
// observed staleness capped by its bound.
//
// `--smoke` shrinks the dataset and epoch count for CI; every mode lands in
// the #BENCH-JSON block (per-epoch wall time) for bench_compare.sh.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "ml/metrics.h"
#include "ps/parameter_server.h"
#include "util/stopwatch.h"

namespace {

using namespace dmml;  // NOLINT
using bench::BenchJsonEmitter;
using bench::Fmt;
using bench::TablePrinter;

void RunMode(TablePrinter* table, BenchJsonEmitter* json, const std::string& size,
             const std::string& name, ps::PsConfig config,
             const la::DenseMatrix& x, const la::DenseMatrix& y) {
  auto result = ps::TrainGlmParameterServer(x, y, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  auto labels = result->model.PredictLabels(x);
  double acc = labels.ok() ? *ml::Accuracy(y, *labels) : 0.0;
  double pushes_per_sec =
      static_cast<double>(result->total_pushes) / result->wall_seconds;
  table->Row({name, Fmt(result->wall_seconds * 1e3, 0), Fmt(pushes_per_sec, 0),
              bench::FmtInt(static_cast<long long>(result->max_observed_staleness)),
              Fmt(result->loss_per_epoch[4], 4), Fmt(result->loss_per_epoch.back(), 4),
              Fmt(acc, 4)});
  json->Record("ps_" + name + "_epoch", size, config.num_workers,
               result->wall_seconds * 1e9 / static_cast<double>(config.epochs),
               0.0);
}

}  // namespace

int main(int argc, char** argv) {
  dmml::bench::ObsServerScope obs_server;  // DMML_OBS_PORT exposition
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const size_t n = smoke ? 1500 : 8000;
  const size_t d = smoke ? 10 : 20;
  const size_t epochs = smoke ? 6 : 12;  // RunMode reads loss_per_epoch[4].
  std::printf("E5: parameter-server consistency — BSP vs ASP vs SSP%s\n",
              smoke ? " (smoke)" : "");
  std::printf("4 workers, logistic regression, straggler jitter 0.2 ms/batch\n\n");

  auto ds = data::MakeClassification(n, d, 0.05, 11);

  ps::PsConfig base;
  base.num_workers = 4;
  base.epochs = epochs;
  base.batch_size = 64;
  base.learning_rate = 0.3;
  base.family = ml::GlmFamily::kBinomial;
  base.straggler_jitter = 0.0002;

  BenchJsonEmitter json;
  const std::string size = "n" + std::to_string(n) + "_d" + std::to_string(d);

  TablePrinter table({"mode", "wall_ms", "pushes_per_s", "max_stale",
                      "loss_ep5", "loss_final", "accuracy"},
                     13);
  {
    ps::PsConfig config = base;
    config.mode = ps::ConsistencyMode::kBsp;
    RunMode(&table, &json, size, "BSP", config, ds.x, ds.y);
  }
  {
    ps::PsConfig config = base;
    config.mode = ps::ConsistencyMode::kAsync;
    RunMode(&table, &json, size, "ASP", config, ds.x, ds.y);
  }
  for (size_t bound : {1, 3}) {
    ps::PsConfig config = base;
    config.mode = ps::ConsistencyMode::kSsp;
    config.staleness_bound = bound;
    RunMode(&table, &json, size, "SSP_s" + std::to_string(bound), config, ds.x,
            ds.y);
  }
  table.EmitCsv("E5_ps");

  std::printf(
      "\nExpected shape (parameter-server literature): ASP shows the highest\n"
      "push throughput and the loosest staleness; BSP bounds staleness at 1\n"
      "with the most consistent per-epoch convergence; SSP interpolates and\n"
      "its observed staleness never exceeds bound+1.\n");
  json.Emit("ps");
  dmml::bench::EmitMetrics("ps");
  return 0;
}
