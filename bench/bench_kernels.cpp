/// \file bench_kernels.cpp
/// \brief Blocked kernel engine vs the naive reference kernels.
///
/// Two jobs in one binary:
///
///  1. **Parity.** Every blocked/parallel kernel is checked against its
///     `la::reference` twin across adversarial shapes (non-tile-multiple,
///     1xN / Nx1, zero-dim, highly sparse), serial and through a 4-thread
///     pool, plus a NaN scan. Any mismatch makes the process exit nonzero —
///     scripts/static_checks.sh runs `--smoke` as a release-build gate.
///
///  2. **Throughput.** GEMM / Gram / transpose-multiply timings at fixed
///     sizes, emitted as a #BENCH-JSON block (name, size, threads, ns/op,
///     GFLOP/s) that scripts/bench_compare.sh can diff across two captures.
///
/// `--smoke` shrinks sizes and time budgets so the whole run fits in a few
/// seconds; the default mode uses the paper-scale shapes (512^3 GEMM,
/// 100000x50 Gramian).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "la/kernels.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using dmml::Rng;
using dmml::ThreadPool;
using dmml::bench::BenchJsonEmitter;
using dmml::la::DenseMatrix;
using dmml::la::SparseMatrix;
using dmml::la::Triplet;
namespace la = dmml::la;

bool g_failed = false;

DenseMatrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  DenseMatrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Uniform(-1.0, 1.0);
  return m;
}

SparseMatrix RandomSparse(size_t rows, size_t cols, double density, Rng* rng) {
  std::vector<Triplet> triplets;
  const size_t target = static_cast<size_t>(
      density * static_cast<double>(rows) * static_cast<double>(cols));
  for (size_t e = 0; e < target; ++e) {
    triplets.push_back({rng->UniformInt(rows), rng->UniformInt(cols),
                        rng->Uniform(-1.0, 1.0)});
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return std::numeric_limits<double>::infinity();
  }
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

bool HasNaN(const DenseMatrix& a) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a.data()[i])) return true;
  }
  return false;
}

void Check(const std::string& what, const DenseMatrix& got,
           const DenseMatrix& want, double tol) {
  if (HasNaN(got)) {
    std::fprintf(stderr, "FAIL %s: NaN in result\n", what.c_str());
    g_failed = true;
    return;
  }
  const double diff = MaxAbsDiff(got, want);
  if (!(diff <= tol)) {
    std::fprintf(stderr, "FAIL %s: max abs diff %.3e (tol %.3e)\n", what.c_str(),
                 diff, tol);
    g_failed = true;
  }
}

void CheckScalar(const std::string& what, double got, double want, double tol) {
  if (std::isnan(got) || !(std::fabs(got - want) <= tol)) {
    std::fprintf(stderr, "FAIL %s: got %.17g want %.17g (tol %.3e)\n",
                 what.c_str(), got, want, tol);
    g_failed = true;
  }
}

// Parity of the blocked engine vs the reference kernels on one (m, k, n)
// shape triple, serial and through `pool`.
void ParityCase(size_t m, size_t k, size_t n, ThreadPool* pool, Rng* rng) {
  const std::string shape = std::to_string(m) + "x" + std::to_string(k) + "x" +
                            std::to_string(n) +
                            (pool != nullptr ? " pooled" : " serial");
  // Loose absolute tolerance: operands are U(-1,1) so k-length dot products
  // carry O(k * eps) reassociation error.
  const double tol = 1e-9 * static_cast<double>(std::max<size_t>(k, 1) + 16);
  DenseMatrix a = RandomMatrix(m, k, rng);
  DenseMatrix b = RandomMatrix(k, n, rng);
  DenseMatrix bt = RandomMatrix(n, k, rng);
  DenseMatrix w = RandomMatrix(k, n, rng);
  DenseMatrix xv = RandomMatrix(k, 1, rng);

  Check("multiply " + shape, la::Multiply(a, b, pool), la::reference::Multiply(a, b), tol);
  Check("transpose " + shape, la::Transpose(a, pool), la::reference::Transpose(a), 0.0);
  Check("gram " + shape, la::Gram(b, pool), la::reference::Gram(b), tol);
  Check("transpose_multiply " + shape, la::TransposeMultiply(b, w, pool),
        la::reference::TransposeMultiply(b, w), tol);
  Check("multiply_transpose_b " + shape, la::MultiplyTransposeB(a, bt, pool),
        la::reference::MultiplyTransposeB(a, bt), tol);
  Check("gevm " + shape, la::Gevm(xv, b, pool), la::reference::Gevm(xv, b), tol);
  Check("colsums " + shape, la::ColumnSums(b, pool), la::reference::ColumnSums(b), tol);
  CheckScalar("sum " + shape, la::Sum(b, pool), la::reference::Sum(b),
              tol * static_cast<double>(std::max<size_t>(n, 1)));
  CheckScalar("frobenius " + shape, la::FrobeniusNorm(b, pool),
              la::reference::FrobeniusNorm(b),
              tol * static_cast<double>(std::max<size_t>(n, 1)));

  // Dirty-buffer reuse: Into forms must fully overwrite stale contents.
  DenseMatrix out(std::max<size_t>(m, 1) + 3, std::max<size_t>(n, 1) + 5);
  out.Fill(7.25);
  la::MultiplyInto(a, b, &out, pool);
  Check("multiply_into_dirty " + shape, out, la::reference::Multiply(a, b), tol);

  SparseMatrix sp = RandomSparse(k, n, 0.05, rng);
  Check("sparse_gevm " + shape, la::SparseGevm(xv, sp, pool),
        la::reference::SparseGevm(xv, sp), tol);
  const SparseMatrix spt = la::SparseTranspose(sp);
  if (!(spt == la::reference::SparseTranspose(sp))) {
    std::fprintf(stderr, "FAIL sparse_transpose %s: CSR mismatch\n", shape.c_str());
    g_failed = true;
  }
}

void RunParitySuite(ThreadPool* pool4) {
  Rng rng(1234);
  // Adversarial shapes: tile multiples, off-by-one around every tile edge,
  // degenerate vectors, and zero dimensions.
  const size_t shapes[][3] = {
      {64, 64, 64},   {65, 129, 67}, {4, 8, 128},  {3, 7, 5},
      {1, 130, 1},    {130, 1, 130}, {1, 1, 1},    {0, 5, 5},
      {5, 0, 5},      {5, 5, 0},     {0, 0, 0},    {33, 257, 31},
      {128, 128, 9},  {9, 128, 128},
  };
  for (const auto& s : shapes) {
    ParityCase(s[0], s[1], s[2], nullptr, &rng);
    ParityCase(s[0], s[1], s[2], pool4, &rng);
  }
  // Highly sparse edge: almost-empty and fully-empty CSR transposes.
  Rng sparse_rng(99);
  SparseMatrix nearly_empty = RandomSparse(200, 300, 0.0005, &sparse_rng);
  if (!(la::SparseTranspose(nearly_empty) ==
        la::reference::SparseTranspose(nearly_empty))) {
    std::fprintf(stderr, "FAIL sparse_transpose nearly_empty\n");
    g_failed = true;
  }
  SparseMatrix empty = SparseMatrix::FromTriplets(40, 60, {});
  if (!(la::SparseTranspose(empty) == la::reference::SparseTranspose(empty))) {
    std::fprintf(stderr, "FAIL sparse_transpose empty\n");
    g_failed = true;
  }
}

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Times `fn`, scaling repetitions to fill ~`min_seconds`, and returns ns/op.
template <typename Fn>
double TimeNsPerOp(double min_seconds, const Fn& fn) {
  fn();  // Warm-up: faults pages, fills caches, sizes scratch buffers.
  Clock::time_point t0 = Clock::now();
  fn();
  const double once = std::max(SecondsSince(t0), 1e-9);
  const size_t reps =
      std::max<size_t>(1, static_cast<size_t>(min_seconds / once));
  t0 = Clock::now();
  for (size_t r = 0; r < reps; ++r) fn();
  return SecondsSince(t0) * 1e9 / static_cast<double>(reps);
}

std::string Shape3(size_t m, size_t k, size_t n) {
  return std::to_string(m) + "x" + std::to_string(k) + "x" + std::to_string(n);
}

void BenchGemm(size_t dim, double min_seconds, ThreadPool* pool4,
               BenchJsonEmitter* json) {
  Rng rng(7);
  DenseMatrix a = RandomMatrix(dim, dim, &rng);
  DenseMatrix b = RandomMatrix(dim, dim, &rng);
  DenseMatrix out;
  const double flops = 2.0 * std::pow(static_cast<double>(dim), 3);
  const std::string size = Shape3(dim, dim, dim);

  double ns = TimeNsPerOp(min_seconds, [&] {
    DenseMatrix c = la::reference::Multiply(a, b);
    if (HasNaN(c)) g_failed = true;
  });
  json->Record("gemm.naive_ikj", size, 1, ns, flops / ns);

  ns = TimeNsPerOp(min_seconds, [&] { la::MultiplyInto(a, b, &out, nullptr); });
  if (HasNaN(out)) g_failed = true;
  json->Record("gemm.blocked", size, 1, ns, flops / ns);

  ns = TimeNsPerOp(min_seconds, [&] { la::MultiplyInto(a, b, &out, pool4); });
  if (HasNaN(out)) g_failed = true;
  json->Record("gemm.blocked", size, 4, ns, flops / ns);
}

void BenchGram(size_t n, size_t d, double min_seconds, ThreadPool* pool4,
               BenchJsonEmitter* json) {
  Rng rng(11);
  DenseMatrix x = RandomMatrix(n, d, &rng);
  DenseMatrix out;
  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(d) *
                       static_cast<double>(d);
  const std::string size = std::to_string(n) + "x" + std::to_string(d);

  // Baseline: materialize Xᵀ, then a full (blocked) GEMM — what callers did
  // before the dedicated SYRK kernel existed.
  double ns = TimeNsPerOp(min_seconds, [&] {
    DenseMatrix g = la::Multiply(la::Transpose(x), x);
    if (HasNaN(g)) g_failed = true;
  });
  json->Record("gram.via_transpose_gemm", size, 1, ns, flops / ns);

  ns = TimeNsPerOp(min_seconds, [&] { la::GramInto(x, &out, nullptr); });
  if (HasNaN(out)) g_failed = true;
  json->Record("gram.blocked", size, 1, ns, flops / ns);

  ns = TimeNsPerOp(min_seconds, [&] { la::GramInto(x, &out, pool4); });
  if (HasNaN(out)) g_failed = true;
  json->Record("gram.blocked", size, 4, ns, flops / ns);

  ns = TimeNsPerOp(min_seconds, [&] {
    DenseMatrix g = la::TransposeMultiply(x, x, pool4);
    if (HasNaN(g)) g_failed = true;
  });
  json->Record("transpose_multiply", size, 4, ns, flops / ns);
}

void BenchReductions(size_t rows, size_t cols, double min_seconds,
                     ThreadPool* pool4, BenchJsonEmitter* json) {
  Rng rng(13);
  DenseMatrix a = RandomMatrix(rows, cols, &rng);
  DenseMatrix x = RandomMatrix(rows, 1, &rng);
  DenseMatrix out;
  const std::string size = std::to_string(rows) + "x" + std::to_string(cols);
  const double flops = 2.0 * static_cast<double>(rows) * static_cast<double>(cols);

  for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), pool4}) {
    const size_t threads = pool != nullptr ? 4 : 1;
    double ns = TimeNsPerOp(min_seconds, [&] { la::GevmInto(x, a, &out, pool); });
    json->Record("gevm", size, threads, ns, flops / ns);
    ns = TimeNsPerOp(min_seconds, [&] { la::ColumnSumsInto(a, &out, pool); });
    json->Record("colsums", size, threads, ns, 0.5 * flops / ns);
    volatile double sink = 0.0;
    ns = TimeNsPerOp(min_seconds, [&] { sink = la::Sum(a, pool); });
    json->Record("sum", size, threads, ns, 0.5 * flops / ns);
    ns = TimeNsPerOp(min_seconds, [&] { sink = la::FrobeniusNorm(a, pool); });
    json->Record("frobenius", size, threads, ns, flops / ns);
    (void)sink;
  }
}

void BenchSparseTranspose(size_t rows, size_t cols, double density,
                          double min_seconds, BenchJsonEmitter* json) {
  Rng rng(17);
  SparseMatrix sp = RandomSparse(rows, cols, density, &rng);
  const std::string size = std::to_string(rows) + "x" + std::to_string(cols) +
                           "@" + std::to_string(sp.nnz());
  double ns = TimeNsPerOp(min_seconds, [&] {
    SparseMatrix t = la::reference::SparseTranspose(sp);
    if (t.nnz() != sp.nnz()) g_failed = true;
  });
  json->Record("sparse_transpose.triplet_sort", size, 1, ns, 0.0);
  ns = TimeNsPerOp(min_seconds, [&] {
    SparseMatrix t = la::SparseTranspose(sp);
    if (t.nnz() != sp.nnz()) g_failed = true;
  });
  json->Record("sparse_transpose.counting", size, 1, ns, 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  dmml::bench::ObsServerScope obs_server;  // DMML_OBS_PORT exposition
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  ThreadPool pool4(4);

  std::printf("== kernel parity (blocked/parallel vs reference) ==\n");
  RunParitySuite(&pool4);
  std::printf("parity: %s\n", g_failed ? "FAIL" : "ok");

  BenchJsonEmitter json;
  const double min_seconds = smoke ? 0.02 : 0.25;
  if (smoke) {
    BenchGemm(128, min_seconds, &pool4, &json);
    BenchGram(20000, 32, min_seconds, &pool4, &json);
    BenchReductions(20000, 64, min_seconds, &pool4, &json);
    BenchSparseTranspose(20000, 5000, 0.002, min_seconds, &json);
  } else {
    BenchGemm(256, min_seconds, &pool4, &json);
    BenchGemm(512, min_seconds, &pool4, &json);
    BenchGram(100000, 50, min_seconds, &pool4, &json);
    BenchReductions(200000, 128, min_seconds, &pool4, &json);
    BenchSparseTranspose(200000, 50000, 0.0005, min_seconds, &json);
  }
  json.Emit("bench_kernels");
  dmml::bench::EmitMetrics("bench_kernels");

  if (g_failed) {
    std::fprintf(stderr, "bench_kernels: FAILURES DETECTED\n");
    return 1;
  }
  std::printf("bench_kernels: all checks passed\n");
  return 0;
}
