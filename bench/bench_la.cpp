// Experiment E8 — linear-algebra kernel microbenchmarks.
//
// The baseline everything else stands on: dense GEMM/GEMV, sparse GEMV
// across densities, transpose, reductions, and the dense solver. Emits a
// #BENCH-JSON block (name, size, threads, ns/op, GFLOP/s) so
// scripts/bench_compare.sh can diff two captures; `--smoke` shrinks sizes
// and time budgets for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "la/kernels.h"
#include "la/ops.h"

namespace {

using namespace dmml;  // NOLINT
using bench::BenchJsonEmitter;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Self-calibrating timing loop: one warm-up, one measured rep to size the
// batch, then the timed batch (same estimator bench_kernels uses).
template <typename Fn>
double TimeNsPerOp(double min_seconds, const Fn& fn) {
  fn();
  Clock::time_point t0 = Clock::now();
  fn();
  const double once = std::max(SecondsSince(t0), 1e-9);
  const size_t reps =
      std::max<size_t>(1, static_cast<size_t>(min_seconds / once));
  t0 = Clock::now();
  for (size_t r = 0; r < reps; ++r) fn();
  return SecondsSince(t0) * 1e9 / static_cast<double>(reps);
}

std::string Dim2(size_t rows, size_t cols) {
  return std::to_string(rows) + "x" + std::to_string(cols);
}

// Keeps results observable so the kernel calls cannot be optimized away.
volatile double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  dmml::bench::ObsServerScope obs_server;  // DMML_OBS_PORT exposition
  const double min_seconds = smoke ? 0.02 : 0.25;
  std::printf("E8: linear-algebra kernel microbenchmarks%s\n\n",
              smoke ? " (smoke)" : "");

  BenchJsonEmitter json;

  for (size_t n : {size_t{64}, size_t{128}, smoke ? size_t{0} : size_t{256}}) {
    if (n == 0) continue;
    auto a = data::GaussianMatrix(n, n, 1);
    auto b = data::GaussianMatrix(n, n, 2);
    const double ns = TimeNsPerOp(min_seconds, [&] {
      auto c = la::Multiply(a, b);
      g_sink = c.data()[0];
    });
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    json.Record("la.dense_gemm", Dim2(n, n), 1, ns, flops / ns);
    std::printf("dense_gemm %4zu: %10.0f ns/op  %.2f GFLOP/s\n", n, ns,
                flops / ns);
  }

  for (size_t n : {size_t{256}, smoke ? size_t{0} : size_t{1024}}) {
    if (n == 0) continue;
    auto a = data::GaussianMatrix(n, n, 3);
    auto x = data::GaussianMatrix(n, 1, 4);
    const double ns = TimeNsPerOp(min_seconds, [&] {
      auto y = la::Gemv(a, x);
      g_sink = y.data()[0];
    });
    const double flops = 2.0 * static_cast<double>(n) * n;
    json.Record("la.dense_gemv", Dim2(n, n), 1, ns, flops / ns);
    std::printf("dense_gemv %4zu: %10.0f ns/op  %.2f GFLOP/s\n", n, ns,
                flops / ns);
  }

  {
    const size_t n = smoke ? 512 : 2048;
    for (int permille : {10, 100, 500}) {  // 1%, 10%, 50% nonzeros.
      const double density = permille / 1000.0;
      auto a = data::SparseGaussianMatrix(n, n, density, 5);
      auto x = data::GaussianMatrix(n, 1, 6);
      const double ns = TimeNsPerOp(min_seconds, [&] {
        auto y = la::SparseGemv(a, x);
        g_sink = y.data()[0];
      });
      const double flops = 2.0 * static_cast<double>(a.nnz());
      json.Record("la.sparse_gemv.d" + std::to_string(permille), Dim2(n, n), 1,
                  ns, flops / ns);
      std::printf("sparse_gemv %4zu @%4.1f%%: %10.0f ns/op  %.2f GFLOP/s\n", n,
                  density * 100.0, ns, flops / ns);
    }
  }

  for (size_t n : {size_t{256}, smoke ? size_t{0} : size_t{1024}}) {
    if (n == 0) continue;
    auto a = data::GaussianMatrix(n, n, 7);
    const double ns = TimeNsPerOp(min_seconds, [&] {
      auto t = la::Transpose(a);
      g_sink = t.data()[0];
    });
    json.Record("la.transpose", Dim2(n, n), 1, ns, 0.0);
    std::printf("transpose  %4zu: %10.0f ns/op\n", n, ns);
  }

  {
    const size_t rows = smoke ? 1024 : 4096;
    const size_t cols = 256;
    auto a = data::GaussianMatrix(rows, cols, 8);
    const double ns = TimeNsPerOp(min_seconds, [&] {
      auto s = la::ColumnSums(a);
      g_sink = s.data()[0];
    });
    json.Record("la.column_sums", Dim2(rows, cols), 1, ns, 0.0);
    std::printf("column_sums %s: %10.0f ns/op\n", Dim2(rows, cols).c_str(), ns);
  }

  for (size_t n : {size_t{64}, smoke ? size_t{0} : size_t{128}}) {
    if (n == 0) continue;
    auto a = data::GaussianMatrix(n, n, 9);
    for (size_t i = 0; i < n; ++i) a.At(i, i) += static_cast<double>(n);
    auto b = data::GaussianMatrix(n, 1, 10);
    const double ns = TimeNsPerOp(min_seconds, [&] {
      auto x = la::Solve(a, b);
      if (x.ok()) g_sink = x->data()[0];
    });
    json.Record("la.solve", Dim2(n, n), 1, ns, 0.0);
    std::printf("solve      %4zu: %10.0f ns/op\n", n, ns);
  }

  {
    const size_t n = smoke ? (1u << 14) : (1u << 16);
    auto x = data::GaussianMatrix(n, 1, 11);
    auto y = data::GaussianMatrix(n, 1, 12);
    const double ns =
        TimeNsPerOp(min_seconds, [&] { g_sink = la::Dot(x, y); });
    const double flops = 2.0 * static_cast<double>(n);
    json.Record("la.dot", Dim2(n, 1), 1, ns, flops / ns);
    std::printf("dot        %zu: %10.0f ns/op  %.2f GFLOP/s\n", n, ns,
                flops / ns);
  }

  json.Emit("E8_la");
  dmml::bench::EmitMetrics("la");
  return 0;
}
