// Experiment E8 — linear-algebra kernel microbenchmarks (google-benchmark).
//
// The baseline everything else stands on: dense GEMM/GEMV, sparse GEMV
// across densities, transpose, reductions, and the dense solver.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "la/kernels.h"
#include "la/ops.h"

namespace {

using namespace dmml;  // NOLINT

void BM_DenseGemm(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = data::GaussianMatrix(n, n, 1);
  auto b = data::GaussianMatrix(n, n, 2);
  for (auto _ : state) {
    auto c = la::Multiply(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n * n * 2);
}
BENCHMARK(BM_DenseGemm)->Arg(64)->Arg(128)->Arg(256);

void BM_DenseGemv(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = data::GaussianMatrix(n, n, 3);
  auto x = data::GaussianMatrix(n, 1, 4);
  for (auto _ : state) {
    auto y = la::Gemv(a, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n * 2);
}
BENCHMARK(BM_DenseGemv)->Arg(256)->Arg(1024);

void BM_SparseGemv(benchmark::State& state) {
  const size_t n = 2048;
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  auto a = data::SparseGaussianMatrix(n, n, density, 5);
  auto x = data::GaussianMatrix(n, 1, 6);
  for (auto _ : state) {
    auto y = la::SparseGemv(a, x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.nnz()) * 2);
}
BENCHMARK(BM_SparseGemv)->Arg(10)->Arg(100)->Arg(500);  // 1%, 10%, 50%.

void BM_Transpose(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = data::GaussianMatrix(n, n, 7);
  for (auto _ : state) {
    auto t = la::Transpose(a);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_Transpose)->Arg(256)->Arg(1024);

void BM_ColumnSums(benchmark::State& state) {
  auto a = data::GaussianMatrix(4096, 256, 8);
  for (auto _ : state) {
    auto s = la::ColumnSums(a);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_ColumnSums);

void BM_Solve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = data::GaussianMatrix(n, n, 9);
  for (size_t i = 0; i < n; ++i) a.At(i, i) += static_cast<double>(n);
  auto b = data::GaussianMatrix(n, 1, 10);
  for (auto _ : state) {
    auto x = la::Solve(a, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Solve)->Arg(64)->Arg(128);

void BM_Dot(benchmark::State& state) {
  auto x = data::GaussianMatrix(1 << 16, 1, 11);
  auto y = data::GaussianMatrix(1 << 16, 1, 12);
  for (auto _ : state) {
    double d = la::Dot(x, y);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_Dot);

}  // namespace

// Expanded BENCHMARK_MAIN() so the metrics snapshot lands after the run.
int main(int argc, char** argv) {
  dmml::bench::ObsServerScope obs_server;  // DMML_OBS_PORT exposition
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dmml::bench::EmitMetrics("la");
  return 0;
}
