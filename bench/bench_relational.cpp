// Experiment E7 — MADlib-style in-engine ML pipeline and the relational
// substrate's operator throughput.
//
// Part 1: operator microbenchmarks (scan+filter, hash join, group-by,
// table->matrix export) in rows/second.
// Part 2: end-to-end "train over a join" — (a) inside the engine: join, then
// export and train; (b) matrix-native factorized path. Expected shape: the
// relational path pays a tuple-at-a-time materialization tax; the factorized
// path avoids it entirely — the motivation for in-DB ML the tutorial covers.
// Emits a #BENCH-JSON block covering both parts so bench_compare.sh can diff
// captures; `--smoke` shrinks the star schema for CI.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "factorized/factorized_glm.h"
#include "factorized/normalized_matrix.h"
#include "relational/operators.h"
#include "util/stopwatch.h"

namespace {

using namespace dmml;  // NOLINT
using bench::Fmt;
using bench::TablePrinter;

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  dmml::bench::ObsServerScope obs_server;  // DMML_OBS_PORT exposition
  std::printf("E7: relational substrate throughput and in-engine ML pipeline%s\n\n",
              smoke ? " (smoke)" : "");

  bench::BenchJsonEmitter json;
  data::StarSchemaOptions options;
  options.ns = smoke ? 8000 : 40000;
  options.nr = smoke ? 500 : 2000;
  options.ds = 4;
  options.dr = 8;
  auto ds = data::MakeStarSchema(options, 19);

  std::printf("Part 1: operator throughput (nS = %zu, nR = %zu)\n", options.ns,
              options.nr);
  {
    TablePrinter table({"operator", "out_rows", "ms", "Mrows_per_s"});
    {
      Stopwatch w;
      auto filtered = relational::Filter(
          ds.s, relational::Compare("y", relational::CompareOp::kGt, 0.0));
      double ms = w.ElapsedMillis();
      table.Row({"filter", bench::FmtInt(static_cast<long long>(filtered->num_rows())),
                 Fmt(ms, 1), Fmt(static_cast<double>(options.ns) / ms / 1e3, 2)});
      json.Record("relational.filter", std::to_string(options.ns), 1, ms * 1e6,
                  0.0);
    }
    relational::Predicate* keep_alive = nullptr;
    (void)keep_alive;
    storage::Table joined(storage::Schema{});
    {
      Stopwatch w;
      auto result = relational::HashJoin(ds.s, ds.r, "fk", "rid");
      double ms = w.ElapsedMillis();
      if (!result.ok()) return 1;
      joined = std::move(*result);
      table.Row({"hash_join", bench::FmtInt(static_cast<long long>(joined.num_rows())),
                 Fmt(ms, 1), Fmt(static_cast<double>(options.ns) / ms / 1e3, 2)});
      json.Record("relational.hash_join", std::to_string(options.ns), 1,
                  ms * 1e6, 0.0);
    }
    {
      Stopwatch w;
      auto grouped = relational::GroupBy(
          ds.s, {"fk"},
          {{relational::AggFunc::kCount, "", "n"},
           {relational::AggFunc::kAvg, "y", "avg_y"}});
      double ms = w.ElapsedMillis();
      if (!grouped.ok()) return 1;
      table.Row({"group_by", bench::FmtInt(static_cast<long long>(grouped->num_rows())),
                 Fmt(ms, 1), Fmt(static_cast<double>(options.ns) / ms / 1e3, 2)});
      json.Record("relational.group_by", std::to_string(options.ns), 1,
                  ms * 1e6, 0.0);
    }
    {
      std::vector<std::string> cols;
      for (size_t j = 0; j < options.ds; ++j) cols.push_back("xs" + std::to_string(j));
      for (size_t j = 0; j < options.dr; ++j) cols.push_back("xr" + std::to_string(j));
      Stopwatch w;
      auto m = joined.ToMatrix(cols);
      double ms = w.ElapsedMillis();
      if (!m.ok()) return 1;
      table.Row({"to_matrix", bench::FmtInt(static_cast<long long>(m->rows())),
                 Fmt(ms, 1), Fmt(static_cast<double>(options.ns) / ms / 1e3, 2)});
      json.Record("relational.to_matrix", std::to_string(options.ns), 1,
                  ms * 1e6, 0.0);
    }
    table.EmitCsv("E7A_operators");
  }

  std::printf("\nPart 2: end-to-end 'train over a join' (20-epoch linreg)\n");
  {
    ml::GlmConfig config;
    config.learning_rate = 0.01;
    config.max_epochs = 20;
    config.tolerance = 0;

    TablePrinter table({"pipeline", "prep_ms", "train_ms", "total_ms"});
    // (a) Relational: hash join -> export matrix -> train.
    {
      Stopwatch w;
      auto joined = relational::HashJoin(ds.s, ds.r, "fk", "rid");
      if (!joined.ok()) return 1;
      std::vector<std::string> cols;
      for (size_t j = 0; j < options.ds; ++j) cols.push_back("xs" + std::to_string(j));
      for (size_t j = 0; j < options.dr; ++j) cols.push_back("xr" + std::to_string(j));
      auto x = joined->ToMatrix(cols);
      auto y = joined->ToMatrix({"y"});
      if (!x.ok() || !y.ok()) return 1;
      double prep_ms = w.ElapsedMillis();
      Stopwatch wt;
      auto model = factorized::TrainDenseGlmMatrixForm(*x, *y, config);
      if (!model.ok()) return 1;
      double train_ms = wt.ElapsedMillis();
      table.Row({"sql_join_export", Fmt(prep_ms, 1), Fmt(train_ms, 1),
                 Fmt(prep_ms + train_ms, 1)});
      json.Record("relational.pipeline.sql_join_export",
                  std::to_string(options.ns), 1, (prep_ms + train_ms) * 1e6,
                  0.0);
    }
    // (b) Factorized: no join at all.
    {
      Stopwatch w;
      auto nm = factorized::NormalizedMatrix::Make(ds.xs, {{ds.xr, ds.fk}});
      if (!nm.ok()) return 1;
      double prep_ms = w.ElapsedMillis();
      Stopwatch wt;
      auto model = factorized::TrainFactorizedGlm(*nm, ds.y, config);
      if (!model.ok()) return 1;
      double train_ms = wt.ElapsedMillis();
      table.Row({"factorized", Fmt(prep_ms, 1), Fmt(train_ms, 1),
                 Fmt(prep_ms + train_ms, 1)});
      json.Record("relational.pipeline.factorized", std::to_string(options.ns),
                  1, (prep_ms + train_ms) * 1e6, 0.0);
    }
    table.EmitCsv("E7B_pipeline");
  }

  std::printf(
      "\nExpected shape: the tuple-at-a-time join/export dominates the\n"
      "relational pipeline's cost; the factorized path trains over the same\n"
      "logical join with near-zero preparation.\n");
  json.Emit("E7_relational");
  dmml::bench::EmitMetrics("relational");
  return 0;
}
