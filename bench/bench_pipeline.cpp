// Experiment E9 — declarative pipeline route choice (the Orion/Morpheus
// result through the front-end).
//
// One pipeline program — orders |><| products -> GLM — timed under both
// forced physical routes across a sweep of tuple ratios (fact rows per
// dimension row). The factorized route should win when the join is
// redundancy-heavy (tall fact table, wide dimension features) and lose when
// the dimension table dominates; the kAuto chooser should flip accordingly.
// Arms are interleaved per round and each cell is the per-arm minimum over
// the rounds, following the host protocol of EXPERIMENTS.md.
//
// `--smoke` shrinks the sweep for CI and turns on the gates: on the skewed
// workload kAuto must pick the factorized route AND factorized wall-clock
// must beat materialization; on the inverted workload kAuto must pick
// materialization; both routes must produce the same model.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "pipeline/pipeline.h"
#include "storage/catalog.h"
#include "util/stopwatch.h"

namespace {

using namespace dmml;  // NOLINT
using bench::Fmt;
using bench::TablePrinter;

struct Workload {
  size_t ns;  ///< fact (orders) rows
  size_t nr;  ///< dimension (products) rows
  size_t ds;  ///< fact-side features
  size_t dr;  ///< dimension-side features
};

storage::Catalog MakeCatalog(const Workload& w, uint64_t seed) {
  data::StarSchemaOptions options;
  options.ns = w.ns;
  options.nr = w.nr;
  options.ds = w.ds;
  options.dr = w.dr;
  options.noise_sigma = 0.1;
  auto ds = data::MakeStarSchema(options, seed);
  storage::Catalog catalog;
  catalog.PutTable("orders", std::move(ds.s));
  catalog.PutTable("products", std::move(ds.r));
  return catalog;
}

std::vector<std::string> StarFeatures(size_t ds, size_t dr) {
  std::vector<std::string> f;
  for (size_t j = 0; j < ds; ++j) f.push_back("xs" + std::to_string(j));
  for (size_t j = 0; j < dr; ++j) f.push_back("xr" + std::to_string(j));
  return f;
}

Result<pipeline::GlmFit> RunRoute(storage::Catalog* catalog, const Workload& w,
                                  pipeline::Route route, size_t epochs) {
  ml::GlmConfig config;
  config.family = ml::GlmFamily::kGaussian;
  config.learning_rate = 0.01;
  config.max_epochs = epochs;
  pipeline::PipelineOptions popts;
  popts.route = route;
  return pipeline::Pipeline::From(catalog, "orders")
      .Join("products", "fk", "rid")
      .Features(StarFeatures(w.ds, w.dr))
      .Label("y")
      .WithOptions(popts)
      .TrainGlm(config);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t epochs = smoke ? 8 : 30;
  const size_t rounds = smoke ? 2 : 3;

  std::printf("== E9: pipeline route choice, factorized vs materialized%s ==\n",
              smoke ? " (smoke)" : "");
  std::printf("GLM over orders |><| products, %zu epochs; times are per-arm "
              "minima over %zu interleaved rounds\n\n",
              epochs, rounds);

  // Sweep the tuple ratio ns/nr at fixed feature split. The last row inverts
  // the workload (dimension table taller than the fact table) so the
  // crossover is visible inside one table.
  std::vector<Workload> sweep;
  if (smoke) {
    sweep = {{6000, 50, 2, 30}, {2000, 100, 2, 20}, {100, 400, 2, 3}};
  } else {
    sweep = {{50000, 100, 2, 40},
             {20000, 200, 2, 40},
             {8000, 400, 2, 40},
             {2000, 1000, 2, 40},
             {100, 400, 2, 3}};
  }

  TablePrinter table({"ns", "nr", "dr", "ratio", "mat_ms", "fact_ms",
                      "speedup", "auto_route"});
  bench::BenchJsonEmitter json;
  bool gates_ok = true;

  for (size_t wi = 0; wi < sweep.size(); ++wi) {
    const Workload& w = sweep[wi];
    auto catalog = MakeCatalog(w, /*seed=*/7 + wi);

    double mat_ms = 1e300, fact_ms = 1e300;
    Result<pipeline::GlmFit> mat =
        Status::Internal("not run");  // filled below
    Result<pipeline::GlmFit> fact = Status::Internal("not run");
    for (size_t round = 0; round < rounds; ++round) {
      Stopwatch wm;
      mat = RunRoute(&catalog, w, pipeline::Route::kMaterialize, epochs);
      mat_ms = std::min(mat_ms, wm.ElapsedMillis());
      Stopwatch wf;
      fact = RunRoute(&catalog, w, pipeline::Route::kFactorized, epochs);
      fact_ms = std::min(fact_ms, wf.ElapsedMillis());
    }
    auto chosen = RunRoute(&catalog, w, pipeline::Route::kAuto, epochs);
    if (!mat.ok() || !fact.ok() || !chosen.ok()) {
      std::printf("pipeline failed: %s\n",
                  (!mat.ok() ? mat.status()
                             : !fact.ok() ? fact.status() : chosen.status())
                      .ToString()
                      .c_str());
      return 1;
    }

    const std::string route_name =
        pipeline::RouteName(chosen->report.chosen_route);
    const double ratio = static_cast<double>(w.ns) / static_cast<double>(w.nr);
    table.Row({std::to_string(w.ns), std::to_string(w.nr),
               std::to_string(w.dr), Fmt(ratio, 1), Fmt(mat_ms, 1),
               Fmt(fact_ms, 1), Fmt(mat_ms / fact_ms, 2), route_name});

    const std::string size = "ns=" + std::to_string(w.ns) +
                             ",nr=" + std::to_string(w.nr) +
                             ",dr=" + std::to_string(w.dr);
    json.Record("pipeline_glm_materialized", size, 1,
                mat_ms * 1e6 / static_cast<double>(epochs), 0.0);
    json.Record("pipeline_glm_factorized", size, 1,
                fact_ms * 1e6 / static_cast<double>(epochs), 0.0);

    // Gates (always checked; fatal only under --smoke so full runs on busy
    // machines still produce a table).
    if (!mat->model.weights.ApproxEquals(fact->model.weights, 1e-7)) {
      std::printf("GATE FAIL: routes disagree on weights at %s\n",
                  size.c_str());
      gates_ok = false;
    }
    const bool skewed = wi == 0;            // tallest tuple ratio in sweep
    const bool inverted = wi + 1 == sweep.size();  // dim taller than fact
    if (skewed) {
      if (chosen->report.chosen_route != pipeline::Route::kFactorized) {
        std::printf("GATE FAIL: chooser picked %s on the skewed workload\n",
                    route_name.c_str());
        gates_ok = false;
      }
      if (fact_ms >= mat_ms) {
        std::printf("GATE FAIL: factorized (%.1f ms) did not beat "
                    "materialized (%.1f ms) on the skewed workload\n",
                    fact_ms, mat_ms);
        gates_ok = false;
      }
    }
    if (inverted &&
        chosen->report.chosen_route != pipeline::Route::kMaterialize) {
      std::printf("GATE FAIL: chooser picked %s on the inverted workload\n",
                  route_name.c_str());
      gates_ok = false;
    }
  }

  table.EmitCsv("pipeline_route");
  json.Emit("pipeline");
  bench::EmitMetrics("pipeline");
  if (smoke && !gates_ok) return 1;
  std::printf("\nroute gates: %s\n", gates_ok ? "ok" : "FAILED (non-fatal outside --smoke)");
  return 0;
}
