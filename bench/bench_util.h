/// \file bench_util.h
/// \brief Shared table-printing helpers for the experiment harnesses.
///
/// Each bench binary regenerates one experiment from EXPERIMENTS.md and
/// prints a fixed-width table plus a machine-readable CSV block, so results
/// can be eyeballed and scraped.
#ifndef DMML_BENCH_BENCH_UTIL_H_
#define DMML_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::bench {

/// \brief Fixed-width table writer: header once, then one row per Row() call.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns, int width = 14)
      : columns_(std::move(columns)), width_(width) {
    for (const auto& c : columns_) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) {
      for (int j = 0; j < width_; ++j) std::printf("-");
    }
    std::printf("\n");
  }

  /// \brief Prints one row; `cells` must match the header arity.
  void Row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
    rows_.push_back(cells);
  }

  /// \brief Emits the whole table again as CSV between marker lines.
  void EmitCsv(const std::string& tag) const {
    std::printf("#CSV-BEGIN %s\n", tag.c_str());
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%s", i ? "," : "", columns_[i].c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%s", i ? "," : "", row[i].c_str());
      }
      std::printf("\n");
    }
    std::printf("#CSV-END %s\n", tag.c_str());
  }

 private:
  std::vector<std::string> columns_;
  int width_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Formats a double with the given precision.
inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(long long v) { return std::to_string(v); }

/// \brief Dumps the process-wide metrics snapshot between marker lines, and —
/// when DMML_TRACE=1 — writes the trace buffers as Chrome trace-event JSON to
/// DMML_TRACE_FILE (default `<tag>_trace.json`). Call once at the end of main.
inline void EmitMetrics(const std::string& tag) {
  std::printf("#METRICS-BEGIN %s\n", tag.c_str());
  std::printf("%s", obs::MetricsRegistry::Global().TextSnapshot().c_str());
  std::printf("#METRICS-END %s\n", tag.c_str());
  if (obs::TracingEnabled()) {
    const char* env = std::getenv("DMML_TRACE_FILE");
    std::string path = (env != nullptr && env[0] != '\0') ? env : tag + "_trace.json";
    if (obs::WriteChromeTraceFile(path)) {
      std::printf("#TRACE %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace file %s\n", path.c_str());
    }
  }
}

}  // namespace dmml::bench

#endif  // DMML_BENCH_BENCH_UTIL_H_
