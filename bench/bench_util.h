/// \file bench_util.h
/// \brief Shared table-printing helpers for the experiment harnesses.
///
/// Each bench binary regenerates one experiment from EXPERIMENTS.md and
/// prints a fixed-width table plus a machine-readable CSV block, so results
/// can be eyeballed and scraped.
#ifndef DMML_BENCH_BENCH_UTIL_H_
#define DMML_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/server.h"
#include "obs/trace.h"

namespace dmml::bench {

/// \brief Fixed-width table writer: header once, then one row per Row() call.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns, int width = 14)
      : columns_(std::move(columns)), width_(width) {
    for (const auto& c : columns_) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) {
      for (int j = 0; j < width_; ++j) std::printf("-");
    }
    std::printf("\n");
  }

  /// \brief Prints one row; `cells` must match the header arity.
  void Row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
    rows_.push_back(cells);
  }

  /// \brief Emits the whole table again as CSV between marker lines.
  void EmitCsv(const std::string& tag) const {
    std::printf("#CSV-BEGIN %s\n", tag.c_str());
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%s", i ? "," : "", columns_[i].c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%s", i ? "," : "", row[i].c_str());
      }
      std::printf("\n");
    }
    std::printf("#CSV-END %s\n", tag.c_str());
  }

 private:
  std::vector<std::string> columns_;
  int width_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Collects kernel benchmark records and emits them as a JSONL block
/// (one JSON object per line) between `#BENCH-JSON-BEGIN tag` and
/// `#BENCH-JSON-END tag` markers — flat and line-oriented on purpose, so
/// scripts/bench_compare.sh can diff two captures with awk alone.
class BenchJsonEmitter {
 public:
  /// \brief Adds one record. `size` is a free-form shape label ("512x512x512");
  /// `gflops` may be 0 for ops without a meaningful FLOP count.
  void Record(const std::string& name, const std::string& size, size_t threads,
              double ns_per_op, double gflops) {
    records_.push_back(Rec{name, size, threads, ns_per_op, gflops});
  }

  void Emit(const std::string& tag) const {
    std::printf("#BENCH-JSON-BEGIN %s\n", tag.c_str());
    for (const auto& r : records_) {
      std::printf(
          "{\"name\":\"%s\",\"size\":\"%s\",\"threads\":%zu,"
          "\"ns_per_op\":%.1f,\"gflops\":%.3f}\n",
          r.name.c_str(), r.size.c_str(), r.threads, r.ns_per_op, r.gflops);
    }
    std::printf("#BENCH-JSON-END %s\n", tag.c_str());
  }

 private:
  struct Rec {
    std::string name;
    std::string size;
    size_t threads;
    double ns_per_op;
    double gflops;
  };
  std::vector<Rec> records_;
};

/// \brief Starts the obs exposition endpoint for the lifetime of a bench run
/// when DMML_OBS_PORT is set (see obs/server.h). Declare early in main():
/// `/metrics`, `/metrics.json`, `/trace`, and `/profiles` then serve live
/// snapshots while the experiment executes. On teardown the scope can hold
/// the server open for DMML_OBS_HOLD_SECS seconds so a scraper launched
/// alongside the bench (e.g. the static_checks curl smoke) can fetch the
/// final state before the process exits.
class ObsServerScope {
 public:
  ObsServerScope() : server_(obs::ExpositionServer::StartFromEnv()) {
    if (server_) {
      std::printf("#OBS-SERVER port=%u\n",
                  static_cast<unsigned>(server_->port()));
      std::fflush(stdout);  // scrapers poll stdout for this marker
    }
  }

  ~ObsServerScope() {
    if (!server_) return;
    const char* env = std::getenv("DMML_OBS_HOLD_SECS");
    long hold = (env != nullptr && env[0] != '\0') ? std::atol(env) : 0;
    if (hold > 0) {
      std::printf("#OBS-SERVER holding %ld s on port %u\n", hold,
                  static_cast<unsigned>(server_->port()));
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::seconds(hold));
    }
    server_->Stop();
  }

  ObsServerScope(const ObsServerScope&) = delete;
  ObsServerScope& operator=(const ObsServerScope&) = delete;

  bool running() const { return server_ != nullptr && server_->running(); }

 private:
  std::unique_ptr<obs::ExpositionServer> server_;
};

/// \brief Formats a double with the given precision.
inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(long long v) { return std::to_string(v); }

/// \brief Dumps the process-wide metrics snapshot between marker lines, and —
/// when DMML_TRACE=1 — writes the trace buffers as Chrome trace-event JSON to
/// DMML_TRACE_FILE (default `<tag>_trace.json`). Call once at the end of main.
inline void EmitMetrics(const std::string& tag) {
  std::printf("#METRICS-BEGIN %s\n", tag.c_str());
  std::printf("%s", obs::MetricsRegistry::Global().TextSnapshot().c_str());
  std::printf("#METRICS-END %s\n", tag.c_str());
  if (obs::TracingEnabled()) {
    const char* env = std::getenv("DMML_TRACE_FILE");
    std::string path = (env != nullptr && env[0] != '\0') ? env : tag + "_trace.json";
    if (obs::WriteChromeTraceFile(path)) {
      std::printf("#TRACE %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace file %s\n", path.c_str());
    }
  }
}

}  // namespace dmml::bench

#endif  // DMML_BENCH_BENCH_UTIL_H_
