// Experiment E6 — batched model selection (the Columbus / MSMS result).
//
// Part 1: cross-validated grid search over k GLM configurations, run (a) one
// config at a time and (b) as one batch sharing every data scan (one GEMM
// per epoch feeds all configurations). Expected shape: batched wins grow
// with the number of configurations, because the data-access cost is
// amortized.
//
// Part 2 (E6b): the shared-scan rung engine in isolation — one rung of k
// configs trained as a d x k weight matrix (one X·W + one Xᵀ·R per epoch)
// vs the same engine run k times at width 1, under the dense and the
// CLA-compressed binding of the same data. Timings follow the host protocol
// of EXPERIMENTS.md: the A/B arms are interleaved per round and each record
// is the per-arm minimum over the rounds.
//
// `--smoke` shrinks the dataset and grid for CI and turns on the gates:
// shared-scan must be at least at parity with the sequential arm, and a
// multi-fold rung must drive the inter-node scheduler to overlap fold
// branches (laopt.sched.max_ready_width > 1). Principal timings are emitted
// as #BENCH-JSON records in addition to the human table.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "laopt/operand.h"
#include "ml/unified_trainers.h"
#include "modelsel/model_selection.h"
#include "modelsel/shared_scan.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace dmml;  // NOLINT
using bench::Fmt;
using bench::TablePrinter;

// Low-cardinality design with ~60% zeros: the compressed binding has real
// dictionary structure to pre-aggregate over.
la::DenseMatrix CompressibleDesign(size_t n, size_t d, uint64_t seed) {
  la::DenseMatrix x = data::LowCardinalityMatrix(n, d, 5, /*run_sorted=*/false, seed);
  Rng rng(seed + 99);
  for (size_t i = 0; i < x.size(); ++i) {
    if (rng.Uniform(0.0, 1.0) < 0.6) x.data()[i] = 0.0;
  }
  return x;
}

// k configurations sharing family/epochs/intercept, heterogeneous in lr,
// L2 and decay — the rung shape successive halving produces.
std::vector<ml::GlmConfig> RungConfigs(size_t k, size_t epochs) {
  std::vector<ml::GlmConfig> configs(k);
  for (size_t c = 0; c < k; ++c) {
    configs[c].family = ml::GlmFamily::kGaussian;
    configs[c].max_epochs = epochs;
    configs[c].tolerance = 0;
    configs[c].fit_intercept = true;
    configs[c].learning_rate =
        0.0005 + 0.0005 * static_cast<double>(c % 8);
    configs[c].l2 = 0.01 * static_cast<double>(c % 4);
    configs[c].lr_decay = 0.05 * static_cast<double>(c % 3);
  }
  return configs;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t n = smoke ? 4000 : 30000;
  const size_t d = smoke ? 30 : 80;
  const size_t epochs = smoke ? 5 : 15;

  dmml::bench::ObsServerScope obs_server;  // DMML_OBS_PORT exposition
  bench::BenchJsonEmitter json;
  std::printf("E6: model selection — sequential vs batched grid search%s\n",
              smoke ? " (smoke)" : "");
  std::printf("linear regression, n = %zu, d = %zu, 2-fold CV, %zu epochs/config\n\n",
              n, d, epochs);

  auto ds = data::MakeRegression(n, d, 0.1, 13);
  const std::string size = std::to_string(n) + "x" + std::to_string(d);

  TablePrinter table(
      {"num_configs", "seq_ms", "batched_ms", "speedup", "same_best"});
  for (size_t grid_side : {1, 2, 3, 4, 6}) {
    if (smoke && grid_side > 3) continue;
    modelsel::GridSpec grid;
    grid.base.family = ml::GlmFamily::kGaussian;
    grid.base.max_epochs = epochs;
    grid.base.tolerance = 0;
    grid.base.learning_rate = 0.01;
    for (size_t i = 0; i < grid_side; ++i) {
      grid.learning_rates.push_back(0.002 * static_cast<double>(i + 1));
      grid.l2_penalties.push_back(0.05 * static_cast<double>(i));
    }
    size_t num_configs = grid_side * grid_side;

    auto seq = modelsel::GridSearchSequential(ds.x, ds.y, grid, 2, 17);
    auto bat = modelsel::GridSearchBatched(ds.x, ds.y, grid, 2, 17);
    if (!seq.ok() || !bat.ok()) {
      std::fprintf(stderr, "grid search failed\n");
      return 1;
    }
    bool same_best = seq->best_index == bat->best_index;
    table.Row({bench::FmtInt(static_cast<long long>(num_configs)),
               Fmt(seq->seconds * 1e3, 0), Fmt(bat->seconds * 1e3, 0),
               Fmt(seq->seconds / bat->seconds, 2), same_best ? "yes" : "no"});
    const std::string cfg = std::to_string(num_configs) + "cfg";
    json.Record("modelsel.sequential." + cfg, size, 1, seq->seconds * 1e9, 0.0);
    json.Record("modelsel.batched." + cfg, size, 1, bat->seconds * 1e9, 0.0);
  }
  table.EmitCsv("E6_modelsel");

  // -------------------------------------------------------------------
  // E6b — shared-scan rung epochs: k-wide weight matrix vs k width-1 runs
  // of the same engine, dense and compressed bindings.
  // -------------------------------------------------------------------
  const size_t rn = smoke ? 3000 : 20000;
  const size_t rd = smoke ? 24 : 48;
  const size_t rung_epochs = smoke ? 3 : 8;
  const int rounds = 3;
  std::printf("\nE6b: shared-scan rung — one pass trains every config%s\n",
              smoke ? " (smoke)" : "");
  std::printf("rung epochs over n = %zu, d = %zu, %zu epochs, min of %d interleaved rounds\n\n",
              rn, rd, rung_epochs, rounds);

  auto xd = std::make_shared<la::DenseMatrix>(CompressibleDesign(rn, rd, 29));
  auto xc = std::make_shared<cla::CompressedMatrix>(
      cla::CompressedMatrix::Compress(*xd));
  la::DenseMatrix ry = data::GaussianMatrix(rn, 1, 30);
  const std::vector<modelsel::FoldRange> all_rows = {{rn, rn}};
  const std::string rsize = std::to_string(rn) + "x" + std::to_string(rd);
  ThreadPool* pool = GlobalThreadPool();

  struct Arm {
    const char* name;
    laopt::Operand op;
  };
  const Arm arms[] = {{"dense", laopt::Operand(xd)},
                      {"compressed", laopt::Operand(xc)}};

  double compressed_speedup_k32 = 0.0;
  TablePrinter rung_table(
      {"repr", "k", "shared_ms", "seq_ms", "speedup", "parity"});
  for (const Arm& arm : arms) {
    for (size_t k : {size_t{1}, size_t{8}, size_t{32}, size_t{128}}) {
      if (smoke && k > 32) continue;
      const std::vector<ml::GlmConfig> configs = RungConfigs(k, rung_epochs);
      double shared_s = 0.0, seq_s = 0.0;
      double worst = 0.0;
      for (int r = 0; r < rounds; ++r) {
        // Interleave the arms within each round (EXPERIMENTS.md protocol)
        // and keep the per-arm minimum across rounds.
        Stopwatch ws;
        auto shared = modelsel::SharedScanTrain(arm.op, ry, all_rows, configs, pool);
        const double st = ws.ElapsedSeconds();
        Stopwatch qs;
        std::vector<modelsel::SharedScanResult> seq;
        seq.reserve(k);
        for (size_t c = 0; c < k; ++c) {
          auto one = modelsel::SharedScanTrain(arm.op, ry, all_rows,
                                               {configs[c]}, pool);
          if (!one.ok()) {
            std::fprintf(stderr, "sequential rung failed: %s\n",
                         one.status().message().c_str());
            return 1;
          }
          seq.push_back(std::move(*one));
        }
        const double qt = qs.ElapsedSeconds();
        if (!shared.ok()) {
          std::fprintf(stderr, "shared rung failed: %s\n",
                       shared.status().message().c_str());
          return 1;
        }
        shared_s = r == 0 ? st : std::min(shared_s, st);
        seq_s = r == 0 ? qt : std::min(seq_s, qt);
        if (r == 0) {
          const la::DenseMatrix& w = shared->folds[0].weights;
          for (size_t c = 0; c < k; ++c) {
            const la::DenseMatrix& wc = seq[c].folds[0].weights;
            for (size_t j = 0; j < w.rows(); ++j) {
              worst = std::max(worst,
                               std::fabs(w.At(j, c) - wc.At(j, 0)));
            }
          }
        }
      }
      const double speedup = seq_s / shared_s;
      if (std::strcmp(arm.name, "compressed") == 0 && k == 32) {
        compressed_speedup_k32 = speedup;
      }
      if (worst > 1e-9) {
        std::fprintf(stderr,
                     "shared vs sequential rung diverged (%s, k=%zu): %g\n",
                     arm.name, k, worst);
        return 1;
      }
      rung_table.Row({arm.name, bench::FmtInt(static_cast<long long>(k)),
                      Fmt(shared_s * 1e3, 1), Fmt(seq_s * 1e3, 1),
                      Fmt(speedup, 2), worst == 0.0 ? "bit-equal" : "<=1e-9"});
      const std::string tag =
          std::string("modelsel.rung.") + arm.name + "." + std::to_string(k) + "cfg";
      json.Record(tag + ".shared", rsize, 1, shared_s * 1e9, 0.0);
      json.Record(tag + ".sequential", rsize, 1, seq_s * 1e9, 0.0);
    }
  }
  rung_table.EmitCsv("E6b_shared_scan");
  json.Emit("modelsel");

  // Multi-fold rung: the wide plan's per-fold branches must be overlapped by
  // the inter-node scheduler (several score roots ready at once).
  {
    const size_t fold_rows = rn / 4;
    std::vector<modelsel::FoldRange> folds;
    for (size_t f = 0; f < 4; ++f) {
      folds.push_back({f * fold_rows, (f + 1) * fold_rows});
    }
    auto cv = modelsel::SharedScanTrain(laopt::Operand(xd), ry, folds,
                                        RungConfigs(8, rung_epochs), pool);
    if (!cv.ok()) {
      std::fprintf(stderr, "multi-fold rung failed\n");
      return 1;
    }
  }
  const double ready_width = obs::MetricsRegistry::Global()
                                 .GetGauge("laopt.sched.max_ready_width")
                                 ->Value();
  std::printf("\nmulti-fold rung peak ready width: %.0f\n", ready_width);

  if (smoke) {
    if (compressed_speedup_k32 < 1.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: shared-scan below parity on compressed k=32 "
                   "(speedup %.2f)\n",
                   compressed_speedup_k32);
      return 1;
    }
    // The width gate asserts the inter-node scheduler overlaps fold
    // branches; if the caller disabled the scheduler via its kill switch,
    // width 0 is the expected reading, not a failure.
    const char* inter_env = std::getenv("DMML_INTER_NODE");
    const bool inter_node_off = inter_env != nullptr &&
                                std::strcmp(inter_env, "0") == 0;
    if (inter_node_off) {
      std::printf("width gate skipped: DMML_INTER_NODE=0\n");
    } else if (ready_width <= 1.0) {
      std::fprintf(stderr,
                   "SMOKE FAIL: multi-fold rung never had >1 node in flight "
                   "(max_ready_width %.0f)\n",
                   ready_width);
      return 1;
    }
    std::printf("smoke gates passed: shared >= parity at k=32 compressed "
                "(%.2fx), rung branches overlap (width %.0f)\n",
                compressed_speedup_k32, ready_width);
  }

  std::printf(
      "\nExpected shape (Columbus/MSMS): speedup ~1 with a single\n"
      "configuration, growing with the number of configurations as scans\n"
      "are shared; both grid-search strategies select the same best config,\n"
      "and the shared rung matches the sequential rung weight-for-weight.\n");
  dmml::bench::EmitMetrics("modelsel");
  return 0;
}
