// Experiment E6 — batched model selection (the Columbus / MSMS result).
//
// Cross-validated grid search over k GLM configurations, run (a) one config
// at a time and (b) as one batch sharing every data scan (one GEMM per epoch
// feeds all configurations). Expected shape: batched wins grow with the
// number of configurations, because the data-access cost is amortized.
//
// `--smoke` shrinks the dataset and grid for CI; principal timings are
// emitted as #BENCH-JSON records in addition to the human table.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "modelsel/model_selection.h"

namespace {

using namespace dmml;  // NOLINT
using bench::Fmt;
using bench::TablePrinter;

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t n = smoke ? 4000 : 30000;
  const size_t d = smoke ? 30 : 80;
  const size_t epochs = smoke ? 5 : 15;

  dmml::bench::ObsServerScope obs_server;  // DMML_OBS_PORT exposition
  bench::BenchJsonEmitter json;
  std::printf("E6: model selection — sequential vs batched grid search%s\n",
              smoke ? " (smoke)" : "");
  std::printf("linear regression, n = %zu, d = %zu, 2-fold CV, %zu epochs/config\n\n",
              n, d, epochs);

  auto ds = data::MakeRegression(n, d, 0.1, 13);
  const std::string size = std::to_string(n) + "x" + std::to_string(d);

  TablePrinter table(
      {"num_configs", "seq_ms", "batched_ms", "speedup", "same_best"});
  for (size_t grid_side : {1, 2, 3, 4, 6}) {
    if (smoke && grid_side > 3) continue;
    modelsel::GridSpec grid;
    grid.base.family = ml::GlmFamily::kGaussian;
    grid.base.max_epochs = epochs;
    grid.base.tolerance = 0;
    grid.base.learning_rate = 0.01;
    for (size_t i = 0; i < grid_side; ++i) {
      grid.learning_rates.push_back(0.002 * static_cast<double>(i + 1));
      grid.l2_penalties.push_back(0.05 * static_cast<double>(i));
    }
    size_t num_configs = grid_side * grid_side;

    auto seq = modelsel::GridSearchSequential(ds.x, ds.y, grid, 2, 17);
    auto bat = modelsel::GridSearchBatched(ds.x, ds.y, grid, 2, 17);
    if (!seq.ok() || !bat.ok()) {
      std::fprintf(stderr, "grid search failed\n");
      return 1;
    }
    bool same_best = seq->best_index == bat->best_index;
    table.Row({bench::FmtInt(static_cast<long long>(num_configs)),
               Fmt(seq->seconds * 1e3, 0), Fmt(bat->seconds * 1e3, 0),
               Fmt(seq->seconds / bat->seconds, 2), same_best ? "yes" : "no"});
    const std::string cfg = std::to_string(num_configs) + "cfg";
    json.Record("modelsel.sequential." + cfg, size, 1, seq->seconds * 1e9, 0.0);
    json.Record("modelsel.batched." + cfg, size, 1, bat->seconds * 1e9, 0.0);
  }
  table.EmitCsv("E6_modelsel");
  json.Emit("modelsel");

  std::printf(
      "\nExpected shape (Columbus/MSMS): speedup ~1 with a single\n"
      "configuration, growing with the grid size as scans are shared; both\n"
      "strategies select the same best configuration.\n");
  dmml::bench::EmitMetrics("modelsel");
  return 0;
}
