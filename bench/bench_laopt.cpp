// Experiment E3 — linear-algebra plan rewrites (the SystemML result).
//
// Times characteristic expressions with the optimizer off vs on:
//   * t(X)·X·t(X)·v evaluated left-to-right vs DP-reordered
//   * the Gram-vector pattern t(X)·(X·v) mis-associated as (t(X)·X)·v
//   * a skewed 4-matrix chain
// Expected shape: order-of-magnitude wins when the chain passes through a
// skinny intermediate; rewrites never change results.
//
// Also checks the representation-polymorphic execution overhead: the unified
// operand GLM trainer bound to a CompressedMatrix must stay within ~10% of a
// hand-coded loop over the same compressed kernels (it dispatches to the
// identical MultiplyVector / VectorMultiply ops, so the delta is pure
// executor overhead). `--smoke` shrinks every section for CI.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cla/compressed_glm.h"
#include "cla/compressed_matrix.h"
#include "data/generators.h"
#include "laopt/analysis.h"
#include "laopt/executor.h"
#include "laopt/expr.h"
#include "laopt/operand.h"
#include "laopt/optimizer.h"
#include "laopt/profile.h"
#include "ml/glm.h"
#include "ml/unified_trainers.h"
#include "util/stopwatch.h"

namespace {

using namespace dmml;  // NOLINT
using bench::Fmt;
using bench::TablePrinter;
using laopt::ExprNode;
using laopt::ExprPtr;

ExprPtr Leaf(la::DenseMatrix m, const char* name) {
  return *ExprNode::Input(std::make_shared<la::DenseMatrix>(std::move(m)), name);
}

void RunCase(TablePrinter* table, bench::BenchJsonEmitter* json,
             const std::string& size, const char* name, const ExprPtr& expr,
             int reps) {
  laopt::OptimizerReport report;
  auto optimized = laopt::Optimize(expr, {}, &report);
  if (!optimized.ok()) std::exit(1);

  Stopwatch w1;
  for (int r = 0; r < reps; ++r) {
    auto result = laopt::Execute(expr);
    if (!result.ok()) std::exit(1);
  }
  double naive_ms = w1.ElapsedMillis() / reps;
  Stopwatch w2;
  for (int r = 0; r < reps; ++r) {
    auto result = laopt::Execute(*optimized);
    if (!result.ok()) std::exit(1);
  }
  double opt_ms = w2.ElapsedMillis() / reps;

  table->Row({name, Fmt(report.flops_before / 1e6, 1), Fmt(report.flops_after / 1e6, 1),
              Fmt(naive_ms, 2), Fmt(opt_ms, 2), Fmt(naive_ms / opt_ms, 2)});
  json->Record(std::string(name) + ".naive", size, 1, naive_ms * 1e6,
               report.flops_before / (naive_ms * 1e6));
  json->Record(std::string(name) + ".optimized", size, 1, opt_ms * 1e6,
               report.flops_after / (opt_ms * 1e6));
}

// The pre-refactor hand-written compressed GLM epoch loop (Gaussian batch
// gradient on the raw CompressedMatrix kernels) — kept here as the baseline
// the unified operand trainer is measured against.
double HandCodedCompressedGlmMsPerEpoch(const cla::CompressedMatrix& x,
                                        const la::DenseMatrix& y,
                                        const ml::GlmConfig& config) {
  const size_t n = x.rows(), d = x.cols();
  const double inv_n = 1.0 / static_cast<double>(n);
  la::DenseMatrix w(d, 1);
  double intercept = 0;
  la::DenseMatrix scores;
  la::DenseMatrix grad;
  Stopwatch watch;
  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    if (!x.MultiplyVectorInto(w, &scores, nullptr).ok()) std::exit(1);
    double loss = 0;
    double bias_grad = 0;
    for (size_t i = 0; i < n; ++i) {
      double r = scores.At(i, 0) + intercept - y.At(i, 0);
      loss += 0.5 * r * r;
      scores.At(i, 0) = r;
      bias_grad += r;
    }
    loss *= inv_n;
    if (!x.VectorMultiplyInto(scores, &grad, nullptr).ok()) std::exit(1);
    double lr =
        config.learning_rate / (1.0 + config.lr_decay * static_cast<double>(epoch));
    for (size_t j = 0; j < d; ++j) {
      w.At(j, 0) -= lr * (grad.At(0, j) * inv_n + config.l2 * w.At(j, 0));
    }
    if (config.fit_intercept) intercept -= lr * bias_grad * inv_n;
    (void)loss;
  }
  return watch.ElapsedMillis() / static_cast<double>(config.max_epochs);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // The demo EXPLAIN ANALYZE profile outlives the exposition-server scope
  // below (destruction is reverse order), so a scraper arriving during the
  // DMML_OBS_HOLD_SECS window still sees `/profiles` → "bench.glm_epoch".
  auto epoch_profile = std::make_shared<laopt::PlanProfile>();
  obs::ScopedProfileRegistration epoch_profile_reg;
  bench::ObsServerScope obs_server;  // no-op unless DMML_OBS_PORT is set

  std::printf("E3: LA expression rewrites — naive plan vs optimized plan%s\n\n",
              smoke ? " (smoke)" : "");
  TablePrinter table({"expression", "mflops_pre", "mflops_post", "naive_ms",
                      "opt_ms", "speedup"},
                     13);

  const size_t n = smoke ? 1200 : 4000;
  const size_t d = smoke ? 40 : 60;
  const std::string size = std::to_string(n) + "x" + std::to_string(d);
  auto x = Leaf(data::GaussianMatrix(n, d, 1), "X");
  auto v = Leaf(data::GaussianMatrix(n, 1, 2), "v");
  auto xt = *ExprNode::Transpose(x);

  bench::BenchJsonEmitter json;

  // Gram-vector pattern mis-associated: (t(X)*X)*(t(X)*v).
  auto gram_bad = *ExprNode::MatMul(*ExprNode::MatMul(xt, x), *ExprNode::MatMul(xt, v));
  RunCase(&table, &json, size, "gram_vector", gram_bad, smoke ? 2 : 5);

  // Skewed chain: X(n x d) B(d x n) C(n x 1). Left-to-right builds an
  // n x n intermediate; the optimal order never leaves skinny shapes.
  auto b = Leaf(data::GaussianMatrix(d, n, 4), "B");
  auto c = Leaf(data::GaussianMatrix(n, 1, 5), "C");
  auto chain = *ExprNode::MatMul(*ExprNode::MatMul(x, b), c);
  RunCase(&table, &json, size, "skewed_chain", chain, smoke ? 1 : 2);

  // Scalar + transpose clutter: 2*(3*(t(t(X)) * v2)) with v2 (d x 1).
  auto v2 = Leaf(data::GaussianMatrix(d, 1, 6), "v2");
  auto cluttered = *ExprNode::ScalarMul(
      2.0, *ExprNode::ScalarMul(
               3.0, *ExprNode::MatMul(*ExprNode::Transpose(xt), v2)));
  RunCase(&table, &json, size, "scalar_clutter", cluttered, smoke ? 5 : 20);

  // Representation-polymorphic overhead: unified operand trainer bound to a
  // CompressedMatrix vs the hand-coded epoch loop over the same kernels.
  {
    const size_t gn = smoke ? 4000 : 20000;
    const size_t gd = 30;
    const size_t epochs = smoke ? 5 : 20;
    auto dense = data::LowCardinalityMatrix(gn, gd, 6, /*run_sorted=*/false, 9);
    auto y = data::GaussianMatrix(gn, 1, 10);
    auto compressed = cla::CompressedMatrix::Compress(dense);

    ml::GlmConfig config;
    config.family = ml::GlmFamily::kGaussian;
    config.learning_rate = 0.01;
    config.max_epochs = epochs;
    config.tolerance = 0;  // Fixed work: every run does `epochs` epochs.

    // Best-of-3 per variant: single 5-epoch timings are too noisy for the
    // smoke gate below, and "best" is the right estimator for pure-overhead
    // comparisons (noise only ever adds time).
    const int trials = 3;
    double hand_ms = std::numeric_limits<double>::infinity();
    double unified_ms = std::numeric_limits<double>::infinity();
    double profiled_ms = std::numeric_limits<double>::infinity();
    laopt::Operand operand(std::shared_ptr<const cla::CompressedMatrix>(
        std::shared_ptr<void>(), &compressed));
    for (int t = 0; t < trials; ++t) {
      hand_ms = std::min(hand_ms,
                         HandCodedCompressedGlmMsPerEpoch(compressed, y, config));

      Stopwatch watch;
      auto unified = cla::TrainCompressedGlm(compressed, y, config);
      if (!unified.ok()) std::exit(1);
      unified_ms = std::min(
          unified_ms, watch.ElapsedMillis() / static_cast<double>(unified->epochs_run));

      Stopwatch pwatch;
      auto profiled =
          ml::TrainGlmOnOperand(operand, y, config, nullptr, epoch_profile.get());
      if (!profiled.ok()) std::exit(1);
      profiled_ms = std::min(
          pwatch.ElapsedMillis() / static_cast<double>(profiled->epochs_run),
          profiled_ms);
    }
    epoch_profile_reg = laopt::RegisterProfile("bench.glm_epoch", epoch_profile);

    const std::string gsize = std::to_string(gn) + "x" + std::to_string(gd);
    json.Record("compressed_glm_epoch.handcoded", gsize, 1, hand_ms * 1e6, 0.0);
    json.Record("compressed_glm_epoch.unified", gsize, 1, unified_ms * 1e6, 0.0);
    json.Record("compressed_glm_epoch.profiled", gsize, 1, profiled_ms * 1e6, 0.0);
    std::printf(
        "\ncompressed GLM (%s, %zu epochs): hand-coded %.2f ms/epoch, unified\n"
        "operand path %.2f ms/epoch (overhead %+.1f%%; same MultiplyVector /\n"
        "VectorMultiply kernels, delta is executor dispatch), with EXPLAIN\n"
        "ANALYZE profiling attached %.2f ms/epoch (%+.1f%% over unified)\n",
        gsize.c_str(), epochs, hand_ms, unified_ms,
        (unified_ms / hand_ms - 1.0) * 100.0, profiled_ms,
        (profiled_ms / unified_ms - 1.0) * 100.0);

    if (smoke) {
      // CI gate: with no profile attached, the executor's per-node cost is a
      // single pointer test. The unified path carries ~10% dispatch overhead
      // over the hand-coded loop by construction (measured before the
      // profiler existed), so the bound leaves noise headroom above that and
      // trips on any real profiler-off regression stacked on top.
      const char* env = std::getenv("DMML_SMOKE_PROFILER_BOUND");
      double bound = (env != nullptr && env[0] != '\0') ? std::atof(env) : 1.25;
      double ratio = unified_ms / hand_ms;
      if (ratio > bound) {
        std::fprintf(stderr,
                     "SMOKE FAIL: profiler-disabled unified epoch %.3f ms vs "
                     "hand-coded %.3f ms (ratio %.3f > bound %.3f)\n",
                     unified_ms, hand_ms, ratio, bound);
        return 1;
      }
      std::printf("smoke: profiler-off overhead ratio %.3f within bound %.3f\n",
                  ratio, bound);
    }

    std::printf("\nEXPLAIN ANALYZE (GLM epoch plans, %" PRIu64 " profiled runs):\n%s\n",
                epoch_profile->runs(), epoch_profile->ExplainAnalyzeText().c_str());
  }

  // Liveness-driven buffer sharing: a wide add-tree over independent X*w_i
  // products has many short-lived intermediates. The static schedule
  // (laopt::ComputeSchedule) packs them into ~max_live buffers; results must
  // stay bit-identical to the dedicated-buffer executor.
  {
    const size_t bn = smoke ? 512 : 2048;
    const size_t bd = smoke ? 16 : 32;
    const int fan = 16;
    auto xm = std::make_shared<la::DenseMatrix>(data::GaussianMatrix(bn, bd, 40));
    auto xleaf = *ExprNode::Input(xm, "X");
    std::vector<ExprPtr> layer;
    std::vector<std::shared_ptr<la::DenseMatrix>> keep;
    for (int i = 0; i < fan; ++i) {
      auto w =
          std::make_shared<la::DenseMatrix>(data::GaussianMatrix(bd, 1, 41 + i));
      keep.push_back(w);
      layer.push_back(*ExprNode::MatMul(xleaf, *ExprNode::Input(w, "w")));
    }
    while (layer.size() > 1) {
      std::vector<ExprPtr> next;
      for (size_t i = 0; i + 1 < layer.size(); i += 2) {
        next.push_back(*ExprNode::Add(layer[i], layer[i + 1]));
      }
      layer = std::move(next);
    }
    ExprPtr wide = layer[0];

    laopt::BufferedExecutor dedicated;
    dedicated.set_buffer_sharing(false);
    laopt::BufferedExecutor pooled;
    auto baseline = dedicated.Run(wide);
    if (!baseline.ok()) std::exit(1);
    la::DenseMatrix expected = **baseline;
    auto pooled_out = pooled.Run(wide);
    if (!pooled_out.ok()) std::exit(1);
    for (size_t i = 0; i < expected.size(); ++i) {
      if ((*pooled_out)->data()[i] != expected.data()[i]) {
        std::fprintf(stderr,
                     "FAIL: buffer sharing changed results at element %zu\n", i);
        return 1;
      }
    }

    const int reps = smoke ? 10 : 50;
    Stopwatch wd;
    for (int r = 0; r < reps; ++r) {
      if (!dedicated.Run(wide).ok()) std::exit(1);
    }
    double dedicated_ms = wd.ElapsedMillis() / reps;
    Stopwatch ws;
    for (int r = 0; r < reps; ++r) {
      if (!pooled.Run(wide).ok()) std::exit(1);
    }
    double pooled_ms = ws.ElapsedMillis() / reps;

    auto schedule = laopt::ComputeSchedule(wide);
    if (!schedule.ok()) std::exit(1);
    const std::string bsize = std::to_string(bn) + "x" + std::to_string(bd) +
                              "x" + std::to_string(fan);
    std::printf(
        "\nbuffer sharing (wide DAG %s): dedicated %zu buffers %.3f ms/run, "
        "shared %zu buffers %.3f ms/run (levels %zu, max_live %zu)\n",
        bsize.c_str(), dedicated.num_buffers(), dedicated_ms,
        pooled.num_buffers(), pooled_ms, schedule->num_levels(),
        schedule->max_live());
    json.Record("buffer_sharing.dedicated", bsize, 1, dedicated_ms * 1e6, 0.0);
    json.Record("buffer_sharing.shared", bsize, 1, pooled_ms * 1e6, 0.0);

    // Counter-asserted acceptance gate: liveness sharing must actually reduce
    // the number of distinct buffers behind this plan.
    if (pooled.num_buffers() >= dedicated.num_buffers()) {
      std::fprintf(stderr,
                   "FAIL: buffer sharing did not reduce buffers (%zu vs %zu)\n",
                   pooled.num_buffers(), dedicated.num_buffers());
      return 1;
    }
  }

  // Inter-node DAG scheduling: 8 independent subtrees (a Gram colSums and a
  // GLM-epoch-style gradient t(X)·(X·w) each) joined by one add-tree. The
  // dataflow executor launches every ready node as its inputs complete;
  // serial and inter-node runs must stay bit-identical, and the wavefront
  // gauge must show real overlap. On a 1-CPU host the speedup column is
  // expected to hover near 1.0x — the parity and width gates still bite.
  {
    const size_t sn = smoke ? 384 : 1536;
    const size_t sd = smoke ? 24 : 48;
    const int fan = 8;
    std::vector<ExprPtr> parts;
    for (int i = 0; i < fan; ++i) {
      auto xi = Leaf(data::GaussianMatrix(sn, sd, 60 + i), "Xs");
      auto wi = Leaf(data::GaussianMatrix(sd, 1, 80 + i), "ws");
      auto xit = *ExprNode::Transpose(xi);
      auto gram = *ExprNode::MatMul(xit, xi);                       // d x d
      auto grad = *ExprNode::MatMul(xit, *ExprNode::MatMul(xi, wi));  // d x 1
      parts.push_back(*ExprNode::Add(*ExprNode::ColSums(gram),
                                     *ExprNode::Transpose(grad)));
    }
    while (parts.size() > 1) {
      std::vector<ExprPtr> next;
      for (size_t i = 0; i + 1 < parts.size(); i += 2) {
        next.push_back(*ExprNode::Add(parts[i], parts[i + 1]));
      }
      parts = std::move(next);
    }
    ExprPtr wide = parts[0];

    laopt::BufferedExecutor serial;
    serial.set_inter_node(false);
    if (!serial.Run(wide).ok()) std::exit(1);  // Warm-up: plan preparation.

    const int reps = smoke ? 5 : 30;
    Stopwatch wserial;
    for (int r = 0; r < reps; ++r) {
      if (!serial.Run(wide).ok()) std::exit(1);
    }
    double serial_ms = wserial.ElapsedMillis() / reps;
    const std::string ssize = std::to_string(sn) + "x" + std::to_string(sd) +
                              "x" + std::to_string(fan);
    json.Record("sched_wide.serial", ssize, 1, serial_ms * 1e6, 0.0);

    std::printf(
        "\ninter-node scheduling (wide DAG %s): serial %.3f ms/run\n",
        ssize.c_str(), serial_ms);
    bool parity_ok = true;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      ThreadPool pool(threads);
      // Parity gate versus the same pool with inter-node scheduling off:
      // kernel chunking depends on pool size (a morsel property that
      // predates the scheduler), but for a fixed pool the dataflow schedule
      // must not change a single bit.
      laopt::BufferedExecutor intra_only(&pool);
      intra_only.set_inter_node(false);
      auto intra_out = intra_only.Run(wide);
      if (!intra_out.ok()) std::exit(1);
      la::DenseMatrix intra_expected = **intra_out;
      laopt::BufferedExecutor sched(&pool);
      sched.set_inter_node(true);
      auto out = sched.Run(wide);
      if (!out.ok()) std::exit(1);
      for (size_t i = 0; i < intra_expected.size(); ++i) {
        if ((*out)->data()[i] != intra_expected.data()[i]) {
          std::fprintf(stderr,
                       "FAIL: inter-node run (%zu threads) diverged at "
                       "element %zu\n",
                       threads, i);
          parity_ok = false;
          break;
        }
      }
      Stopwatch wpar;
      for (int r = 0; r < reps; ++r) {
        if (!sched.Run(wide).ok()) std::exit(1);
      }
      double par_ms = wpar.ElapsedMillis() / reps;
      std::printf("  inter-node %zu threads: %.3f ms/run (%.2fx)\n", threads,
                  par_ms, serial_ms / par_ms);
      json.Record("sched_wide.inter_node", ssize, threads, par_ms * 1e6, 0.0);
    }
    const double peak_width = obs::MetricsRegistry::Global()
                                  .GetGauge("laopt.sched.max_ready_width")
                                  ->Value();
    const auto conflicts = obs::MetricsRegistry::Global()
                               .GetCounter("laopt.sched.buffer_conflicts")
                               ->Value();
    std::printf("  peak wavefront width %.0f, buffer conflicts %llu\n",
                peak_width, static_cast<unsigned long long>(conflicts));
    if (!parity_ok || peak_width <= 1.0 || conflicts != 0) {
      std::fprintf(stderr,
                   "%s: inter-node gate (parity %d, width %.0f, conflicts "
                   "%llu)\n",
                   smoke ? "SMOKE FAIL" : "FAIL", parity_ok ? 1 : 0, peak_width,
                   static_cast<unsigned long long>(conflicts));
      return 1;
    }
  }

  table.EmitCsv("E3_laopt");
  json.Emit("E3_laopt");

  // Static-analyzer throughput: shape/sparsity/footprint inference over a
  // deep elementwise DAG. Plan-time analysis must stay negligible next to
  // even one kernel launch.
  {
    ExprPtr deep = x;
    for (int i = 0; i < 200; ++i) {
      deep = *ExprNode::Add(deep, *ExprNode::ScalarMul(0.5, x));
    }
    Stopwatch w;
    auto analysis = laopt::AnalyzeDag(deep);
    double us = w.ElapsedMillis() * 1000.0;
    if (!analysis.ok()) std::exit(1);
    const auto* root_info = analysis->Find(deep.get());
    std::printf(
        "\nanalysis: %zu nodes in %.1f us (%.2f us/node), root estimate %s, "
        "%.0f MB\n",
        analysis->NumAnalyzed(), us, us / analysis->NumAnalyzed(),
        root_info->shape.ToString().c_str(),
        static_cast<double>(root_info->est_bytes) / (1024.0 * 1024.0));
  }

  std::printf(
      "\nExpected shape (SystemML): large wins whenever the optimizer routes a\n"
      "chain through skinny intermediates (gram_vector, skewed_chain);\n"
      "no regression on already-cheap plans (scalar_clutter).\n");
  dmml::bench::EmitMetrics("laopt");
  return 0;
}
