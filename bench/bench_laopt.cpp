// Experiment E3 — linear-algebra plan rewrites (the SystemML result).
//
// Times characteristic expressions with the optimizer off vs on:
//   * t(X)·X·t(X)·v evaluated left-to-right vs DP-reordered
//   * the Gram-vector pattern t(X)·(X·v) mis-associated as (t(X)·X)·v
//   * a skewed 4-matrix chain
// Expected shape: order-of-magnitude wins when the chain passes through a
// skinny intermediate; rewrites never change results.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "laopt/analysis.h"
#include "laopt/executor.h"
#include "laopt/expr.h"
#include "laopt/optimizer.h"
#include "util/stopwatch.h"

namespace {

using namespace dmml;  // NOLINT
using bench::Fmt;
using bench::TablePrinter;
using laopt::ExprNode;
using laopt::ExprPtr;

ExprPtr Leaf(la::DenseMatrix m, const char* name) {
  return *ExprNode::Input(std::make_shared<la::DenseMatrix>(std::move(m)), name);
}

void RunCase(TablePrinter* table, bench::BenchJsonEmitter* json,
             const char* name, const ExprPtr& expr, int reps) {
  laopt::OptimizerReport report;
  auto optimized = laopt::Optimize(expr, {}, &report);
  if (!optimized.ok()) std::exit(1);

  Stopwatch w1;
  for (int r = 0; r < reps; ++r) {
    auto result = laopt::Execute(expr);
    if (!result.ok()) std::exit(1);
  }
  double naive_ms = w1.ElapsedMillis() / reps;
  Stopwatch w2;
  for (int r = 0; r < reps; ++r) {
    auto result = laopt::Execute(*optimized);
    if (!result.ok()) std::exit(1);
  }
  double opt_ms = w2.ElapsedMillis() / reps;

  table->Row({name, Fmt(report.flops_before / 1e6, 1), Fmt(report.flops_after / 1e6, 1),
              Fmt(naive_ms, 2), Fmt(opt_ms, 2), Fmt(naive_ms / opt_ms, 2)});
  json->Record(std::string(name) + ".naive", "4000x60", 1, naive_ms * 1e6,
               report.flops_before / (naive_ms * 1e6));
  json->Record(std::string(name) + ".optimized", "4000x60", 1, opt_ms * 1e6,
               report.flops_after / (opt_ms * 1e6));
}

}  // namespace

int main() {
  std::printf("E3: LA expression rewrites — naive plan vs optimized plan\n\n");
  TablePrinter table({"expression", "mflops_pre", "mflops_post", "naive_ms",
                      "opt_ms", "speedup"},
                     13);

  const size_t n = 4000, d = 60;
  auto x = Leaf(data::GaussianMatrix(n, d, 1), "X");
  auto v = Leaf(data::GaussianMatrix(n, 1, 2), "v");
  auto xt = *ExprNode::Transpose(x);

  bench::BenchJsonEmitter json;

  // Gram-vector pattern mis-associated: (t(X)*X)*(t(X)*v).
  auto gram_bad = *ExprNode::MatMul(*ExprNode::MatMul(xt, x), *ExprNode::MatMul(xt, v));
  RunCase(&table, &json, "gram_vector", gram_bad, 5);

  // Skewed chain: X(4000x60) B(60x4000) C(4000x1). Left-to-right builds a
  // 4000x4000 intermediate; the optimal order never leaves skinny shapes.
  auto b = Leaf(data::GaussianMatrix(d, n, 4), "B");
  auto c = Leaf(data::GaussianMatrix(n, 1, 5), "C");
  auto chain = *ExprNode::MatMul(*ExprNode::MatMul(x, b), c);
  RunCase(&table, &json, "skewed_chain", chain, 2);

  // Scalar + transpose clutter: 2*(3*(t(t(X)) * v2)) with v2 (d x 1).
  auto v2 = Leaf(data::GaussianMatrix(d, 1, 6), "v2");
  auto cluttered = *ExprNode::ScalarMul(
      2.0, *ExprNode::ScalarMul(
               3.0, *ExprNode::MatMul(*ExprNode::Transpose(xt), v2)));
  RunCase(&table, &json, "scalar_clutter", cluttered, 20);

  table.EmitCsv("E3_laopt");
  json.Emit("E3_laopt");

  // Static-analyzer throughput: shape/sparsity/footprint inference over a
  // deep elementwise DAG. Plan-time analysis must stay negligible next to
  // even one kernel launch.
  {
    ExprPtr deep = x;
    for (int i = 0; i < 200; ++i) {
      deep = *ExprNode::Add(deep, *ExprNode::ScalarMul(0.5, x));
    }
    Stopwatch w;
    auto analysis = laopt::AnalyzeDag(deep);
    double us = w.ElapsedMillis() * 1000.0;
    if (!analysis.ok()) std::exit(1);
    const auto* root_info = analysis->Find(deep.get());
    std::printf(
        "\nanalysis: %zu nodes in %.1f us (%.2f us/node), root estimate %s, "
        "%.0f MB\n",
        analysis->NumAnalyzed(), us, us / analysis->NumAnalyzed(),
        root_info->shape.ToString().c_str(),
        static_cast<double>(root_info->est_bytes) / (1024.0 * 1024.0));
  }

  std::printf(
      "\nExpected shape (SystemML): large wins whenever the optimizer routes a\n"
      "chain through skinny intermediates (gram_vector, skewed_chain);\n"
      "no regression on already-cheap plans (scalar_clutter).\n");
  dmml::bench::EmitMetrics("laopt");
  return 0;
}
