// Experiment E1 — factorized vs materialized GLM training over normalized
// data (the Orion / Morpheus result).
//
// Sweeps the two knobs that drive the published speedups:
//   * tuple ratio   nS / nR  (entity rows per attribute row)
//   * feature ratio dR / dS  (join-side features per entity feature)
// Both training paths run the identical batch-gradient iteration; the
// materialized path additionally pays for (and then scans) the join output.
// Expected shape: speedup ~1 at ratio <= 1, growing with both ratios.
//
// `--smoke` shrinks the sweeps for CI; either way every cell lands in the
// #BENCH-JSON block (one record per training path) for bench_compare.sh.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "factorized/factorized_glm.h"
#include "factorized/normalized_matrix.h"
#include "util/stopwatch.h"

namespace {

using namespace dmml;  // NOLINT
using bench::BenchJsonEmitter;
using bench::Fmt;
using bench::TablePrinter;

struct CellResult {
  double fact_ms;
  double mat_ms;
  double redundancy;
};

CellResult RunCell(size_t ns, size_t nr, size_t ds_cols, size_t dr, size_t epochs,
                   uint64_t seed, BenchJsonEmitter* json) {
  data::StarSchemaOptions options;
  options.ns = ns;
  options.nr = nr;
  options.ds = ds_cols;
  options.dr = dr;
  auto dataset = data::MakeStarSchema(options, seed);
  auto nm = *factorized::NormalizedMatrix::Make(dataset.xs, {{dataset.xr, dataset.fk}});

  ml::GlmConfig config;
  config.family = ml::GlmFamily::kGaussian;
  config.learning_rate = 0.01;
  config.max_epochs = epochs;
  config.tolerance = 0;  // Fixed work per cell.

  Stopwatch w1;
  auto fact = factorized::TrainFactorizedGlm(nm, dataset.y, config);
  double fact_ms = w1.ElapsedMillis();
  Stopwatch w2;
  auto mat = factorized::TrainMaterializedGlm(nm, dataset.y, config);
  double mat_ms = w2.ElapsedMillis();
  if (!fact.ok() || !mat.ok()) {
    std::fprintf(stderr, "training failed: %s %s\n",
                 fact.status().ToString().c_str(), mat.status().ToString().c_str());
    std::exit(1);
  }
  std::string size = "ns" + std::to_string(ns) + "_nr" + std::to_string(nr) +
                     "_ds" + std::to_string(ds_cols) + "_dr" + std::to_string(dr);
  double inv_epochs = 1.0 / static_cast<double>(epochs);
  json->Record("factorized_glm_epoch", size, 1, fact_ms * 1e6 * inv_epochs, 0.0);
  json->Record("materialized_glm_epoch", size, 1, mat_ms * 1e6 * inv_epochs, 0.0);
  return {fact_ms, mat_ms, nm.RedundancyRatio()};
}

}  // namespace

int main(int argc, char** argv) {
  dmml::bench::ObsServerScope obs_server;  // DMML_OBS_PORT exposition
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const size_t epochs = smoke ? 5 : 20;
  const size_t base_nr = smoke ? 400 : 2000;
  std::printf("E1: factorized vs materialized GLM over a PK-FK join%s\n",
              smoke ? " (smoke)" : "");
  std::printf("Both paths: identical %zu-epoch batch-gradient linear regression.\n\n",
              epochs);

  BenchJsonEmitter json;

  std::printf("Sweep A: tuple ratio (nR = %zu, dS = 2, dR = 20 fixed)\n", base_nr);
  {
    TablePrinter table(
        {"tuple_ratio", "nS", "redundancy", "fact_ms", "mat_ms", "speedup"});
    const std::vector<size_t> ratios =
        smoke ? std::vector<size_t>{1, 5} : std::vector<size_t>{1, 2, 5, 10, 20};
    for (size_t ratio : ratios) {
      size_t nr = base_nr;
      size_t ns = nr * ratio;
      auto r = RunCell(ns, nr, 2, 20, epochs, 100 + ratio, &json);
      table.Row({Fmt(ratio, 0), bench::FmtInt(static_cast<long long>(ns)),
                 Fmt(r.redundancy, 2), Fmt(r.fact_ms, 1), Fmt(r.mat_ms, 1),
                 Fmt(r.mat_ms / r.fact_ms, 2)});
    }
    table.EmitCsv("E1A_tuple_ratio");
  }

  const size_t b_ns = smoke ? 4000 : 20000;
  std::printf("\nSweep B: feature ratio (nS = %zu, nR = %zu, dS = 4 fixed)\n", b_ns,
              base_nr);
  {
    TablePrinter table(
        {"feat_ratio", "dR", "redundancy", "fact_ms", "mat_ms", "speedup"});
    const std::vector<size_t> ratios =
        smoke ? std::vector<size_t>{1, 5} : std::vector<size_t>{1, 2, 5, 10, 25};
    for (size_t ratio : ratios) {
      size_t dr = 4 * ratio;
      auto r = RunCell(b_ns, base_nr, 4, dr, epochs, 200 + ratio, &json);
      table.Row({Fmt(ratio, 0), bench::FmtInt(static_cast<long long>(dr)),
                 Fmt(r.redundancy, 2), Fmt(r.fact_ms, 1), Fmt(r.mat_ms, 1),
                 Fmt(r.mat_ms / r.fact_ms, 2)});
    }
    table.EmitCsv("E1B_feature_ratio");
  }

  std::printf(
      "\nExpected shape (Orion/Morpheus): speedup ~1 at low ratios, growing\n"
      "with tuple ratio and feature ratio as join redundancy grows.\n");
  json.Emit("factorized");
  dmml::bench::EmitMetrics("factorized");
  return 0;
}
