// Experiment E1 — factorized vs materialized GLM training over normalized
// data (the Orion / Morpheus result).
//
// Sweeps the two knobs that drive the published speedups:
//   * tuple ratio   nS / nR  (entity rows per attribute row)
//   * feature ratio dR / dS  (join-side features per entity feature)
// Both training paths run the identical batch-gradient iteration; the
// materialized path additionally pays for (and then scans) the join output.
// Expected shape: speedup ~1 at ratio <= 1, growing with both ratios.
#include <cstdio>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "factorized/factorized_glm.h"
#include "factorized/normalized_matrix.h"
#include "util/stopwatch.h"

namespace {

using namespace dmml;  // NOLINT
using bench::Fmt;
using bench::TablePrinter;

struct CellResult {
  double fact_ms;
  double mat_ms;
  double redundancy;
};

CellResult RunCell(size_t ns, size_t nr, size_t ds_cols, size_t dr, uint64_t seed) {
  data::StarSchemaOptions options;
  options.ns = ns;
  options.nr = nr;
  options.ds = ds_cols;
  options.dr = dr;
  auto dataset = data::MakeStarSchema(options, seed);
  auto nm = *factorized::NormalizedMatrix::Make(dataset.xs, {{dataset.xr, dataset.fk}});

  ml::GlmConfig config;
  config.family = ml::GlmFamily::kGaussian;
  config.learning_rate = 0.01;
  config.max_epochs = 20;
  config.tolerance = 0;  // Fixed work per cell.

  Stopwatch w1;
  auto fact = factorized::TrainFactorizedGlm(nm, dataset.y, config);
  double fact_ms = w1.ElapsedMillis();
  Stopwatch w2;
  auto mat = factorized::TrainMaterializedGlm(nm, dataset.y, config);
  double mat_ms = w2.ElapsedMillis();
  if (!fact.ok() || !mat.ok()) {
    std::fprintf(stderr, "training failed: %s %s\n",
                 fact.status().ToString().c_str(), mat.status().ToString().c_str());
    std::exit(1);
  }
  return {fact_ms, mat_ms, nm.RedundancyRatio()};
}

}  // namespace

int main() {
  std::printf("E1: factorized vs materialized GLM over a PK-FK join\n");
  std::printf("Both paths: identical 20-epoch batch-gradient linear regression.\n\n");

  std::printf("Sweep A: tuple ratio (nR = 2000, dS = 2, dR = 20 fixed)\n");
  {
    TablePrinter table(
        {"tuple_ratio", "nS", "redundancy", "fact_ms", "mat_ms", "speedup"});
    for (size_t ratio : {1, 2, 5, 10, 20}) {
      size_t nr = 2000;
      size_t ns = nr * ratio;
      auto r = RunCell(ns, nr, 2, 20, 100 + ratio);
      table.Row({Fmt(ratio, 0), bench::FmtInt(static_cast<long long>(ns)),
                 Fmt(r.redundancy, 2), Fmt(r.fact_ms, 1), Fmt(r.mat_ms, 1),
                 Fmt(r.mat_ms / r.fact_ms, 2)});
    }
    table.EmitCsv("E1A_tuple_ratio");
  }

  std::printf("\nSweep B: feature ratio (nS = 20000, nR = 2000, dS = 4 fixed)\n");
  {
    TablePrinter table(
        {"feat_ratio", "dR", "redundancy", "fact_ms", "mat_ms", "speedup"});
    for (size_t ratio : {1, 2, 5, 10, 25}) {
      size_t dr = 4 * ratio;
      auto r = RunCell(20000, 2000, 4, dr, 200 + ratio);
      table.Row({Fmt(ratio, 0), bench::FmtInt(static_cast<long long>(dr)),
                 Fmt(r.redundancy, 2), Fmt(r.fact_ms, 1), Fmt(r.mat_ms, 1),
                 Fmt(r.mat_ms / r.fact_ms, 2)});
    }
    table.EmitCsv("E1B_feature_ratio");
  }

  std::printf(
      "\nExpected shape (Orion/Morpheus): speedup ~1 at low ratios, growing\n"
      "with tuple ratio and feature ratio as join redundancy grows.\n");
  dmml::bench::EmitMetrics("factorized");
  return 0;
}
