#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "la/kernels.h"
#include "util/logging.h"

namespace dmml::data {

using la::DenseMatrix;
using la::SparseMatrix;

DenseMatrix GaussianMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Normal();
  return m;
}

DenseMatrix UniformMatrix(size_t rows, size_t cols, double lo, double hi,
                          uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Uniform(lo, hi);
  return m;
}

SparseMatrix SparseGaussianMatrix(size_t rows, size_t cols, double density,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<la::Triplet> triplets;
  triplets.reserve(static_cast<size_t>(static_cast<double>(rows * cols) * density));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng.Bernoulli(density)) {
        double v = rng.Normal();
        if (v == 0.0) v = 1e-9;
        triplets.push_back({r, c, v});
      }
    }
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

DenseMatrix LowCardinalityMatrix(size_t rows, size_t cols, size_t cardinality,
                                 bool run_sorted, uint64_t seed) {
  DMML_CHECK_GT(cardinality, 0u);
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (size_t c = 0; c < cols; ++c) {
    // A per-column dictionary of distinct values.
    std::vector<double> dict(cardinality);
    // Continuous draws keep the requested cardinality exact (collisions are
    // measure-zero); quantizing here would silently cap it.
    for (auto& v : dict) v = rng.Uniform(-100, 100);
    std::vector<size_t> codes(rows);
    for (auto& code : codes) code = rng.UniformInt(static_cast<uint64_t>(cardinality));
    if (run_sorted) std::sort(codes.begin(), codes.end());
    for (size_t r = 0; r < rows; ++r) m.At(r, c) = dict[codes[r]];
  }
  return m;
}

DenseMatrix SkewedCardinalityMatrix(size_t rows, size_t cols, size_t cardinality,
                                    double s, uint64_t seed) {
  DMML_CHECK_GT(cardinality, 0u);
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  ZipfGenerator zipf(cardinality, s);
  for (size_t c = 0; c < cols; ++c) {
    std::vector<double> dict(cardinality);
    for (auto& v : dict) v = rng.Uniform(-100, 100);
    for (size_t r = 0; r < rows; ++r) m.At(r, c) = dict[zipf.Sample(&rng)];
  }
  return m;
}

RegressionDataset MakeRegression(size_t n, size_t d, double noise_sigma,
                                 uint64_t seed) {
  Rng rng(seed);
  RegressionDataset ds;
  ds.x = GaussianMatrix(n, d, rng.Next());
  ds.true_w = DenseMatrix(d, 1);
  for (size_t j = 0; j < d; ++j) ds.true_w.At(j, 0) = rng.Normal(0, 2.0);
  ds.y = la::Gemv(ds.x, ds.true_w);
  for (size_t i = 0; i < n; ++i) ds.y.At(i, 0) += rng.Normal(0, noise_sigma);
  return ds;
}

ClassificationDataset MakeClassification(size_t n, size_t d, double flip_prob,
                                         uint64_t seed) {
  Rng rng(seed);
  ClassificationDataset ds;
  ds.x = GaussianMatrix(n, d, rng.Next());
  ds.true_w = DenseMatrix(d, 1);
  for (size_t j = 0; j < d; ++j) ds.true_w.At(j, 0) = rng.Normal(0, 2.0);
  DenseMatrix margin = la::Gemv(ds.x, ds.true_w);
  ds.y = DenseMatrix(n, 1);
  for (size_t i = 0; i < n; ++i) {
    double p = 1.0 / (1.0 + std::exp(-margin.At(i, 0)));
    bool label = rng.Bernoulli(p);
    if (flip_prob > 0 && rng.Bernoulli(flip_prob)) label = !label;
    ds.y.At(i, 0) = label ? 1.0 : 0.0;
  }
  return ds;
}

BlobsDataset MakeBlobs(size_t n, size_t d, size_t k, double center_spread,
                       double cluster_sigma, uint64_t seed) {
  DMML_CHECK_GT(k, 0u);
  Rng rng(seed);
  BlobsDataset ds;
  ds.centers = DenseMatrix(k, d);
  for (size_t i = 0; i < ds.centers.size(); ++i) {
    ds.centers.data()[i] = rng.Normal(0, center_spread);
  }
  ds.x = DenseMatrix(n, d);
  ds.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    size_t c = i % k;  // Balanced clusters.
    ds.labels[i] = static_cast<int>(c);
    for (size_t j = 0; j < d; ++j) {
      ds.x.At(i, j) = ds.centers.At(c, j) + rng.Normal(0, cluster_sigma);
    }
  }
  return ds;
}

StarSchemaDataset MakeStarSchema(const StarSchemaOptions& options, uint64_t seed) {
  DMML_CHECK_GT(options.nr, 0u);
  Rng rng(seed);
  StarSchemaDataset ds;
  ds.ns = options.ns;
  ds.nr = options.nr;
  ds.ds = options.ds;
  ds.dr = options.dr;
  ds.xs = GaussianMatrix(options.ns, options.ds, rng.Next());
  ds.xr = GaussianMatrix(options.nr, options.dr, rng.Next());

  // Foreign keys: cycle every rid first so the join is total, then sample.
  ds.fk.resize(options.ns);
  std::unique_ptr<ZipfGenerator> zipf;
  if (options.fk_zipf_skew > 0) {
    zipf = std::make_unique<ZipfGenerator>(options.nr, options.fk_zipf_skew);
  }
  for (size_t i = 0; i < options.ns; ++i) {
    if (i < options.nr) {
      ds.fk[i] = static_cast<uint32_t>(i);
    } else if (zipf) {
      ds.fk[i] = static_cast<uint32_t>(zipf->Sample(&rng));
    } else {
      ds.fk[i] = static_cast<uint32_t>(rng.UniformInt(static_cast<uint64_t>(options.nr)));
    }
  }

  // Labels from the joined feature vector.
  DenseMatrix ws(options.ds, 1), wr(options.dr, 1);
  for (size_t j = 0; j < options.ds; ++j) ws.At(j, 0) = rng.Normal(0, 1.5);
  for (size_t j = 0; j < options.dr; ++j) wr.At(j, 0) = rng.Normal(0, 1.5);
  ds.y = DenseMatrix(options.ns, 1);
  for (size_t i = 0; i < options.ns; ++i) {
    double score = la::Dot(ds.xs.Row(i), ws.data(), options.ds) +
                   la::Dot(ds.xr.Row(ds.fk[i]), wr.data(), options.dr);
    if (options.classification) {
      double p = 1.0 / (1.0 + std::exp(-score));
      ds.y.At(i, 0) = rng.Bernoulli(p) ? 1.0 : 0.0;
    } else {
      ds.y.At(i, 0) = score + rng.Normal(0, options.noise_sigma);
    }
  }

  // Relational views of the same data.
  std::vector<storage::Field> s_fields = {
      {"sid", storage::DataType::kInt64, false},
      {"fk", storage::DataType::kInt64, false},
      {"y", storage::DataType::kDouble, false},
  };
  for (size_t j = 0; j < options.ds; ++j) {
    s_fields.push_back({"xs" + std::to_string(j), storage::DataType::kDouble, false});
  }
  storage::Table s(*storage::Schema::Make(std::move(s_fields)));
  for (size_t i = 0; i < options.ns; ++i) {
    std::vector<storage::Value> row;
    row.reserve(3 + options.ds);
    row.emplace_back(static_cast<int64_t>(i));
    row.emplace_back(static_cast<int64_t>(ds.fk[i]));
    row.emplace_back(ds.y.At(i, 0));
    for (size_t j = 0; j < options.ds; ++j) row.emplace_back(ds.xs.At(i, j));
    DMML_CHECK(s.AppendRow(row).ok());
  }
  ds.s = std::move(s);

  std::vector<storage::Field> r_fields = {{"rid", storage::DataType::kInt64, false}};
  for (size_t j = 0; j < options.dr; ++j) {
    r_fields.push_back({"xr" + std::to_string(j), storage::DataType::kDouble, false});
  }
  storage::Table r(*storage::Schema::Make(std::move(r_fields)));
  for (size_t i = 0; i < options.nr; ++i) {
    std::vector<storage::Value> row;
    row.reserve(1 + options.dr);
    row.emplace_back(static_cast<int64_t>(i));
    for (size_t j = 0; j < options.dr; ++j) row.emplace_back(ds.xr.At(i, j));
    DMML_CHECK(r.AppendRow(row).ok());
  }
  ds.r = std::move(r);
  return ds;
}

DenseMatrix MaterializeStarSchema(const StarSchemaDataset& ds) {
  DenseMatrix out(ds.ns, ds.ds + ds.dr);
  for (size_t i = 0; i < ds.ns; ++i) {
    double* row = out.Row(i);
    const double* xs = ds.xs.Row(i);
    for (size_t j = 0; j < ds.ds; ++j) row[j] = xs[j];
    const double* xr = ds.xr.Row(ds.fk[i]);
    for (size_t j = 0; j < ds.dr; ++j) row[ds.ds + j] = xr[j];
  }
  return out;
}

}  // namespace dmml::data
