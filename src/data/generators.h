/// \file generators.h
/// \brief Seeded synthetic dataset generators.
///
/// These stand in for the real-world datasets used by the systems the target
/// tutorial surveys. Each generator exposes the knob that drives the surveyed
/// result: tuple/feature ratios for factorized learning, column cardinality
/// and run structure for compressed linear algebra, margin/noise for
/// classifiers, cluster separation for k-means.
#ifndef DMML_DATA_GENERATORS_H_
#define DMML_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "storage/table.h"
#include "util/rng.h"

namespace dmml::data {

/// \brief rows x cols i.i.d. N(0,1) matrix.
la::DenseMatrix GaussianMatrix(size_t rows, size_t cols, uint64_t seed);

/// \brief rows x cols uniform [lo, hi) matrix.
la::DenseMatrix UniformMatrix(size_t rows, size_t cols, double lo, double hi,
                              uint64_t seed);

/// \brief CSR matrix with the given expected density; nonzeros are N(0,1).
la::SparseMatrix SparseGaussianMatrix(size_t rows, size_t cols, double density,
                                      uint64_t seed);

/// \brief Matrix whose columns draw from small dictionaries — the CLA sweet
/// spot. `cardinality` = distinct values per column. With `run_sorted`, values
/// appear in runs (ideal for RLE); otherwise they are shuffled (DDC/OLE).
la::DenseMatrix LowCardinalityMatrix(size_t rows, size_t cols, size_t cardinality,
                                     bool run_sorted, uint64_t seed);

/// \brief Matrix with Zipf-skewed dictionary usage per column (skew `s`).
la::DenseMatrix SkewedCardinalityMatrix(size_t rows, size_t cols, size_t cardinality,
                                        double s, uint64_t seed);

/// \brief Supervised regression problem: y = X w* + noise.
struct RegressionDataset {
  la::DenseMatrix x;        ///< n x d design matrix.
  la::DenseMatrix y;        ///< n x 1 targets.
  la::DenseMatrix true_w;   ///< d x 1 generating weights.
};

/// \brief Generates a dense regression problem with N(0, noise_sigma) noise.
RegressionDataset MakeRegression(size_t n, size_t d, double noise_sigma,
                                 uint64_t seed);

/// \brief Supervised binary classification problem with labels in {0, 1}.
struct ClassificationDataset {
  la::DenseMatrix x;        ///< n x d design matrix.
  la::DenseMatrix y;        ///< n x 1 labels (0.0 / 1.0).
  la::DenseMatrix true_w;   ///< d x 1 generating weights.
};

/// \brief Labels drawn from the logistic model sigmoid(X w*); `flip_prob`
/// additionally flips labels (noisy-label regime).
ClassificationDataset MakeClassification(size_t n, size_t d, double flip_prob,
                                         uint64_t seed);

/// \brief Gaussian blob mixture for clustering.
struct BlobsDataset {
  la::DenseMatrix x;        ///< n x d points.
  std::vector<int> labels;  ///< Ground-truth cluster of each point.
  la::DenseMatrix centers;  ///< k x d generating centers.
};

/// \brief `k` spherical Gaussian clusters with the given center spread and
/// within-cluster stddev.
BlobsDataset MakeBlobs(size_t n, size_t d, size_t k, double center_spread,
                       double cluster_sigma, uint64_t seed);

/// \brief A normalized (star-schema) learning task: entity table S with a
/// foreign key into attribute table R, as in Orion / Morpheus.
///
///   S(sid INT64, fk INT64, y DOUBLE, xs0..xs{dS-1} DOUBLE)
///   R(rid INT64, xr0..xr{dR-1} DOUBLE)
///
/// The materialized design matrix is [XS | XR[fk]] with dS + dR columns and
/// nS rows. *Tuple ratio* = nS / nR; *feature ratio* = dR / dS. Redundancy in
/// the materialized matrix grows with both — which is exactly the regime
/// where factorized learning wins.
struct StarSchemaDataset {
  storage::Table s{storage::Schema{}};  ///< Entity table (with label y).
  storage::Table r{storage::Schema{}};  ///< Attribute (dimension) table.
  size_t ns = 0, nr = 0, ds = 0, dr = 0;
  la::DenseMatrix xs;          ///< nS x dS entity features.
  la::DenseMatrix xr;          ///< nR x dR attribute features.
  std::vector<uint32_t> fk;    ///< nS foreign keys into R.
  la::DenseMatrix y;           ///< nS x 1 labels (regression targets).
};

/// \brief Options for the star-schema generator.
struct StarSchemaOptions {
  size_t ns = 1000;        ///< Entity rows.
  size_t nr = 100;         ///< Attribute rows (tuple ratio = ns / nr).
  size_t ds = 2;           ///< Entity features.
  size_t dr = 20;          ///< Attribute features (feature ratio = dr / ds).
  double noise_sigma = 0.1;
  bool classification = false;  ///< Emit 0/1 labels via logistic model instead.
  double fk_zipf_skew = 0.0;    ///< Zipf skew of FK distribution (0 = uniform).
};

/// \brief Generates a normalized dataset; every rid in R is at least
/// referenced once when ns >= nr (keys 0..nr-1 are cycled before sampling).
StarSchemaDataset MakeStarSchema(const StarSchemaOptions& options, uint64_t seed);

/// \brief Materializes the joined design matrix [XS | XR[fk]] (nS x (dS+dR)).
la::DenseMatrix MaterializeStarSchema(const StarSchemaDataset& ds);

}  // namespace dmml::data

#endif  // DMML_DATA_GENERATORS_H_
