#include "laopt/operand.h"

namespace dmml::laopt {

const char* ReprName(Repr repr) {
  switch (repr) {
    case Repr::kDense: return "dense";
    case Repr::kSparse: return "sparse";
    case Repr::kCompressed: return "compressed";
  }
  return "unknown";
}

size_t Operand::rows() const {
  if (dense_) return dense_->rows();
  if (sparse_) return sparse_->rows();
  if (compressed_) return compressed_->rows();
  return 0;
}

size_t Operand::cols() const {
  if (dense_) return dense_->cols();
  if (sparse_) return sparse_->cols();
  if (compressed_) return compressed_->cols();
  return 0;
}

const void* Operand::payload() const {
  if (dense_) return dense_.get();
  if (sparse_) return sparse_.get();
  if (compressed_) return compressed_.get();
  return nullptr;
}

double Operand::Sparsity() const {
  if (sparse_) return sparse_->Density();
  return 1.0;
}

uint64_t Operand::SizeInBytes() const {
  if (dense_) {
    return static_cast<uint64_t>(dense_->rows()) * dense_->cols() *
           sizeof(double);
  }
  if (sparse_) {
    // CSR: value + column index per nonzero, plus the row-pointer array.
    return static_cast<uint64_t>(sparse_->nnz()) *
               (sizeof(double) + sizeof(uint32_t)) +
           static_cast<uint64_t>(sparse_->rows() + 1) * sizeof(size_t);
  }
  if (compressed_) return compressed_->SizeInBytes();
  return 0;
}

la::DenseMatrix Operand::ToDense(ThreadPool* pool) const {
  if (dense_) return *dense_;
  if (sparse_) return sparse_->ToDense();
  if (compressed_) return compressed_->Decompress(pool);
  return {};
}

}  // namespace dmml::laopt
