#include "laopt/operand.h"

namespace dmml::laopt {

const char* ReprName(Repr repr) {
  switch (repr) {
    case Repr::kDense: return "dense";
    case Repr::kSparse: return "sparse";
    case Repr::kCompressed: return "compressed";
  }
  return "unknown";
}

size_t Operand::PayloadRows() const {
  if (dense_) return dense_->rows();
  if (sparse_) return sparse_->rows();
  if (compressed_) return compressed_->rows();
  return 0;
}

size_t Operand::rows() const {
  if (windowed_) return win_end_ - win_begin_;
  return PayloadRows();
}

size_t Operand::window_end() const {
  return windowed_ ? win_end_ : PayloadRows();
}

Operand Operand::Slice(size_t row_begin, size_t row_end) const {
  Operand view = *this;
  const size_t base = windowed_ ? win_begin_ : 0;
  const size_t limit = window_end();
  view.win_begin_ = base + row_begin;
  view.win_end_ = base + row_end;
  if (view.win_end_ > limit) view.win_end_ = limit;
  if (view.win_begin_ > view.win_end_) view.win_begin_ = view.win_end_;
  view.windowed_ = true;
  return view;
}

size_t Operand::cols() const {
  if (dense_) return dense_->cols();
  if (sparse_) return sparse_->cols();
  if (compressed_) return compressed_->cols();
  return 0;
}

const void* Operand::payload() const {
  if (dense_) return dense_.get();
  if (sparse_) return sparse_.get();
  if (compressed_) return compressed_.get();
  return nullptr;
}

double Operand::Sparsity() const {
  if (sparse_) return sparse_->Density();
  return 1.0;
}

uint64_t Operand::SizeInBytes() const {
  if (dense_) {
    return static_cast<uint64_t>(dense_->rows()) * dense_->cols() *
           sizeof(double);
  }
  if (sparse_) {
    // CSR: value + column index per nonzero, plus the row-pointer array.
    return static_cast<uint64_t>(sparse_->nnz()) *
               (sizeof(double) + sizeof(uint32_t)) +
           static_cast<uint64_t>(sparse_->rows() + 1) * sizeof(size_t);
  }
  if (compressed_) return compressed_->SizeInBytes();
  return 0;
}

la::DenseMatrix Operand::ToDense(ThreadPool* pool) const {
  if (windowed_) {
    if (dense_) return dense_->SliceRows(win_begin_, win_end_);
    if (sparse_) return sparse_->ToDense().SliceRows(win_begin_, win_end_);
    if (compressed_) {
      la::DenseMatrix out;
      (void)compressed_->DecompressRangeInto(win_begin_, win_end_, &out, pool);
      return out;
    }
    return {};
  }
  if (dense_) return *dense_;
  if (sparse_) return sparse_->ToDense();
  if (compressed_) return compressed_->Decompress(pool);
  return {};
}

}  // namespace dmml::laopt
