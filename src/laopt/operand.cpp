#include "laopt/operand.h"

#include "la/kernels.h"

namespace dmml::laopt {

const char* ReprName(Repr repr) {
  switch (repr) {
    case Repr::kDense: return "dense";
    case Repr::kSparse: return "sparse";
    case Repr::kCompressed: return "compressed";
    case Repr::kFactorized: return "factorized";
  }
  return "unknown";
}

Result<la::DenseMatrix> LinearOperator::Gram(ThreadPool* pool) const {
  la::DenseMatrix dense = Materialize(pool);
  la::DenseMatrix out;
  la::GramInto(dense, &out, pool);
  return out;
}

Result<la::DenseMatrix> LinearOperator::RowSquaredNorms(ThreadPool* pool) const {
  la::DenseMatrix dense = Materialize(pool);
  la::DenseMatrix out(dense.rows(), 1);
  for (size_t i = 0; i < dense.rows(); ++i) {
    const double* row = dense.Row(i);
    double acc = 0.0;
    for (size_t j = 0; j < dense.cols(); ++j) acc += row[j] * row[j];
    out.At(i, 0) = acc;
  }
  return out;
}

Result<la::DenseMatrix> LinearOperator::ColumnSums(ThreadPool* pool) const {
  la::DenseMatrix ones(rows(), 1, 1.0);
  DMML_ASSIGN_OR_RETURN(la::DenseMatrix col, TransposeMultiply(ones, pool));
  la::DenseMatrix out(1, col.rows());
  for (size_t j = 0; j < col.rows(); ++j) out.At(0, j) = col.At(j, 0);
  return out;
}

size_t Operand::PayloadRows() const {
  if (dense_) return dense_->rows();
  if (sparse_) return sparse_->rows();
  if (compressed_) return compressed_->rows();
  if (linear_) return linear_->rows();
  return 0;
}

size_t Operand::rows() const {
  if (windowed_) return win_end_ - win_begin_;
  return PayloadRows();
}

size_t Operand::window_end() const {
  return windowed_ ? win_end_ : PayloadRows();
}

Operand Operand::Slice(size_t row_begin, size_t row_end) const {
  Operand view = *this;
  const size_t base = windowed_ ? win_begin_ : 0;
  const size_t limit = window_end();
  view.win_begin_ = base + row_begin;
  view.win_end_ = base + row_end;
  if (view.win_end_ > limit) view.win_end_ = limit;
  if (view.win_begin_ > view.win_end_) view.win_begin_ = view.win_end_;
  view.windowed_ = true;
  return view;
}

size_t Operand::cols() const {
  if (dense_) return dense_->cols();
  if (sparse_) return sparse_->cols();
  if (compressed_) return compressed_->cols();
  if (linear_) return linear_->cols();
  return 0;
}

const void* Operand::payload() const {
  if (dense_) return dense_.get();
  if (sparse_) return sparse_.get();
  if (compressed_) return compressed_.get();
  if (linear_) return linear_.get();
  return nullptr;
}

double Operand::Sparsity() const {
  if (sparse_) return sparse_->Density();
  return 1.0;
}

uint64_t Operand::SizeInBytes() const {
  if (dense_) {
    return static_cast<uint64_t>(dense_->rows()) * dense_->cols() *
           sizeof(double);
  }
  if (sparse_) {
    // CSR: value + column index per nonzero, plus the row-pointer array.
    return static_cast<uint64_t>(sparse_->nnz()) *
               (sizeof(double) + sizeof(uint32_t)) +
           static_cast<uint64_t>(sparse_->rows() + 1) * sizeof(size_t);
  }
  if (compressed_) return compressed_->SizeInBytes();
  if (linear_) return linear_->SizeInBytes();
  return 0;
}

la::DenseMatrix Operand::ToDense(ThreadPool* pool) const {
  if (windowed_) {
    if (dense_) return dense_->SliceRows(win_begin_, win_end_);
    if (sparse_) return sparse_->ToDense().SliceRows(win_begin_, win_end_);
    if (compressed_) {
      la::DenseMatrix out;
      (void)compressed_->DecompressRangeInto(win_begin_, win_end_, &out, pool);
      return out;
    }
    if (linear_) return linear_->Materialize(pool).SliceRows(win_begin_, win_end_);
    return {};
  }
  if (dense_) return *dense_;
  if (sparse_) return sparse_->ToDense();
  if (compressed_) return compressed_->Decompress(pool);
  if (linear_) return linear_->Materialize(pool);
  return {};
}

}  // namespace dmml::laopt
