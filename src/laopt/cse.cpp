#include "laopt/cse.h"

#include <sstream>
#include <unordered_map>

#include "obs/metrics.h"

namespace dmml::laopt {

namespace {

// Structural key of a node given canonical ids for its children.
std::string NodeKey(const ExprNode& node, const std::vector<size_t>& child_ids) {
  std::ostringstream os;
  os << static_cast<int>(node.kind());
  if (node.kind() == OpKind::kInput) {
    // Payload identity (dense, sparse, or compressed alike); placeholders
    // have no payload, so each one is keyed by its own node address and
    // never merges with another.
    const void* payload = node.operand().payload();
    os << ":" << (payload ? payload : static_cast<const void*>(&node));
    // Distinct row windows over one payload are distinct values — never
    // merge a fold slice with the full matrix (or another fold).
    if (node.operand().windowed()) {
      os << "[" << node.operand().window_begin() << ","
         << node.operand().window_end() << ")";
    }
  }
  if (node.kind() == OpKind::kScalarMul) os << ":" << node.scalar();
  for (size_t id : child_ids) os << "," << id;
  return os.str();
}

class HashConser {
 public:
  explicit HashConser(CseReport* report) : report_(report) {}

  Result<ExprPtr> Intern(const ExprPtr& node) {
    auto memo_it = visited_.find(node.get());
    if (memo_it != visited_.end()) return memo_it->second;

    std::vector<ExprPtr> kids;
    std::vector<size_t> child_ids;
    kids.reserve(node->children().size());
    for (const auto& c : node->children()) {
      DMML_ASSIGN_OR_RETURN(ExprPtr interned, Intern(c));
      child_ids.push_back(ids_.at(interned.get()));
      kids.push_back(std::move(interned));
    }

    std::string key = NodeKey(*node, child_ids);
    auto it = table_.find(key);
    if (it != table_.end()) {
      if (it->second.get() != node.get()) DMML_COUNTER_INC("laopt.cse.merges");
      if (report_ && it->second.get() != node.get()) report_->merges++;
      visited_.emplace(node.get(), it->second);
      return it->second;
    }

    // Rebuild the node over the interned children (children may have been
    // replaced by canonical representatives).
    ExprPtr rebuilt;
    switch (node->kind()) {
      case OpKind::kInput:
        rebuilt = node;
        break;
      case OpKind::kMatMul: {
        DMML_ASSIGN_OR_RETURN(rebuilt, ExprNode::MatMul(kids[0], kids[1]));
        break;
      }
      case OpKind::kTranspose: {
        DMML_ASSIGN_OR_RETURN(rebuilt, ExprNode::Transpose(kids[0]));
        break;
      }
      case OpKind::kAdd: {
        DMML_ASSIGN_OR_RETURN(rebuilt, ExprNode::Add(kids[0], kids[1]));
        break;
      }
      case OpKind::kSubtract: {
        DMML_ASSIGN_OR_RETURN(rebuilt, ExprNode::Subtract(kids[0], kids[1]));
        break;
      }
      case OpKind::kElemMul: {
        DMML_ASSIGN_OR_RETURN(rebuilt, ExprNode::ElemMul(kids[0], kids[1]));
        break;
      }
      case OpKind::kScalarMul: {
        DMML_ASSIGN_OR_RETURN(rebuilt, ExprNode::ScalarMul(node->scalar(), kids[0]));
        break;
      }
      case OpKind::kSum: {
        DMML_ASSIGN_OR_RETURN(rebuilt, ExprNode::Sum(kids[0]));
        break;
      }
      case OpKind::kRowSums: {
        DMML_ASSIGN_OR_RETURN(rebuilt, ExprNode::RowSums(kids[0]));
        break;
      }
      case OpKind::kColSums: {
        DMML_ASSIGN_OR_RETURN(rebuilt, ExprNode::ColSums(kids[0]));
        break;
      }
      case OpKind::kScaleColumns: {
        DMML_ASSIGN_OR_RETURN(rebuilt,
                              ExprNode::ScaleColumns(kids[0], kids[1]));
        break;
      }
    }
    ids_.emplace(rebuilt.get(), next_id_++);
    table_.emplace(std::move(key), rebuilt);
    visited_.emplace(node.get(), rebuilt);
    return rebuilt;
  }

 private:
  CseReport* report_;
  std::unordered_map<std::string, ExprPtr> table_;
  std::unordered_map<const ExprNode*, ExprPtr> visited_;
  std::unordered_map<const ExprNode*, size_t> ids_;
  size_t next_id_ = 0;
};

}  // namespace

Result<ExprPtr> EliminateCommonSubexpressions(const ExprPtr& root, CseReport* report) {
  if (!root) return Status::InvalidArgument("CSE: null expression");
  if (report) {
    *report = CseReport{};
    report->nodes_before = root->NumNodes();
  }
  HashConser conser(report);
  DMML_ASSIGN_OR_RETURN(ExprPtr result, conser.Intern(root));
  // Checked-build soundness gate, with the hash-consing value-coverage
  // check: every structural value of the input must survive, produced by
  // exactly one node (the CSE invariant this pass exists to establish).
  DMML_RETURN_IF_ERROR(VerifyPassOutput("cse", root, result,
                                        /*expect_hash_consed=*/true,
                                        report ? &report->verify : nullptr));
  if (report) report->nodes_after = result->NumNodes();
  return result;
}

}  // namespace dmml::laopt
