/// \file verify.h
/// \brief Plan verifier and lint diagnostics for laopt expression DAGs.
///
/// The optimizer now rewrites plans four ways (transpose elimination, scalar
/// folding, chain reordering, CSE) and the executor reuses buffers across
/// nodes — every one of those transformations is an opportunity to silently
/// change what a plan *means*. SystemDS makes inter-op correctness a compiler
/// responsibility for exactly this reason: a rewrite pipeline without a
/// soundness gate turns optimizer bugs into wrong numbers instead of error
/// messages.
///
/// Three facilities, all producing the same structured `Diagnostic` record:
///
///  * `VerifyPlan` — structural well-formedness of one DAG: acyclicity,
///    per-kind arity, no null children, and shape metadata that matches an
///    exact re-derivation from the children (a rewrite that patches children
///    without re-deriving dims produces a *stale shape*, the classic
///    hand-rolled-rewriter bug).
///
///  * `VerifyRewrite` — pre/post conditions across one optimizer pass: the
///    output verifies, the root shape is preserved, every bound leaf of the
///    output already existed in the input (a pass must never invent data),
///    and — for hash-consing passes — every structural value class of the
///    input is produced by exactly one surviving node of the output.
///
///  * `LintPlan` — advisory diagnostics about plans that are *legal* but
///    suspicious: statically-zero subtrees, redundant `t(t(X))`, operands
///    whose static sparsity bound guarantees an all-zero product, repr
///    choices that force a densify on every run, non-finite scalars, and
///    environment bindings no leaf ever references.
///
/// Verification is a checked-build facility: `VerifyEnabled()` defaults to
/// on in debug builds and off under NDEBUG, overridable either way with
/// DMML_VERIFY=0/1. Lint is opt-in via DMML_LINT=1 and is surfaced through
/// the pipeline's DMML_EXPLAIN dump, the profiler's ExplainAnalyzeText/Json,
/// and the `laopt.verify.*` counter family.
#ifndef DMML_LAOPT_VERIFY_H_
#define DMML_LAOPT_VERIFY_H_

#include <string>
#include <vector>

#include "laopt/expr.h"
#include "util/result.h"

namespace dmml::laopt {

/// \brief Diagnostic severity, ordered: errors reject the plan, warnings and
/// infos are advisory (lint findings are never errors).
enum class Severity {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
};

/// \brief "info" / "warning" / "error".
const char* SeverityName(Severity severity);

/// \brief One verifier or lint finding.
struct Diagnostic {
  Severity severity = Severity::kInfo;
  std::string rule;     ///< Stable rule id, e.g. "verify.cycle" or
                        ///< "lint.redundant_transpose".
  std::string node;     ///< Abbreviated rendering of the offending node (or
                        ///< the binding name for environment-level rules).
  std::string message;  ///< Human-readable explanation.
};

/// \brief True iff the checked verifier should run (after optimizer passes
/// and on first execution of a plan). Controlled by DMML_VERIFY=0/1;
/// defaults to on in debug builds, off under NDEBUG. Re-reads the
/// environment on every call so tests can toggle it with setenv.
bool VerifyEnabled();

/// \brief True iff lint diagnostics should be collected (DMML_LINT=1,
/// default off). Re-reads the environment on every call.
bool LintEnabled();

/// \brief Structural well-formedness check of the DAG under `root`:
/// acyclicity, arity per kind (leaves have no children), no null children,
/// and node dimensions equal to an exact re-derivation from the children
/// (plus inner-dimension / same-shape compatibility where both sides are
/// known). Returns every finding; all findings are errors.
std::vector<Diagnostic> VerifyPlan(const ExprPtr& root);

/// \brief Cross-pass soundness check: `after` is `pass`'s rewrite of
/// `before`. Runs VerifyPlan(after) and additionally checks that the root
/// shape is preserved, that every bound leaf payload (and placeholder node)
/// of `after` already existed in `before`, and — when `expect_hash_consed`
/// (CSE) — that every structural value class of `before` survives in
/// `after` and is produced by exactly one node there. Sparsity-estimate
/// drift across the rewrite is reported as kInfo only: chain reordering
/// legitimately changes independence-model estimates.
std::vector<Diagnostic> VerifyRewrite(const std::string& pass,
                                      const ExprPtr& before,
                                      const ExprPtr& after,
                                      bool expect_hash_consed = false);

/// \brief Lint pass over the plan. Advisory only: severities are kWarning /
/// kInfo, never kError, so a linted plan always remains runnable. See the
/// file header for the rule catalog.
std::vector<Diagnostic> LintPlan(const ExprPtr& root);

/// \brief Lint pass that additionally knows the environment binding names
/// (parser front end): names in `bound_names` with no matching leaf in the
/// plan are flagged as `lint.unused_binding`.
std::vector<Diagnostic> LintPlan(const ExprPtr& root,
                                 const std::vector<std::string>& bound_names);

/// \brief Highest severity present; kInfo for an empty list.
Severity MaxSeverity(const std::vector<Diagnostic>& diags);

/// \brief One line per diagnostic: "error [verify.cycle] node: message".
std::string RenderDiagnostics(const std::vector<Diagnostic>& diags);

/// \brief OK when no diagnostic is an error; otherwise an Internal status
/// naming `pass`, the first offending node, and the full rendered list.
Status DiagnosticsToStatus(const std::string& pass,
                           const std::vector<Diagnostic>& diags);

/// \brief Convenience gate used by the optimizer passes: no-op unless
/// VerifyEnabled(); otherwise runs VerifyRewrite and fails on any error
/// diagnostic. Non-error diagnostics are appended to `*out_diags` when
/// provided (the pipeline forwards them into EXPLAIN output).
Status VerifyPassOutput(const std::string& pass, const ExprPtr& before,
                        const ExprPtr& after, bool expect_hash_consed = false,
                        std::vector<Diagnostic>* out_diags = nullptr);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_VERIFY_H_
