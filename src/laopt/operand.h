/// \file operand.h
/// \brief Representation-polymorphic leaf values for laopt plans.
///
/// An Operand is a tagged handle over one of the three physical matrix
/// representations the engine knows how to execute against:
///
///  * la::DenseMatrix      — row-major dense (the default),
///  * la::SparseMatrix     — CSR,
///  * cla::CompressedMatrix — column-compressed (DDC/RLE/OLE/UC groups).
///
/// Plans are written once against logical matrices; the binding — an
/// Environment entry or an ExprNode::InputOperand leaf — decides which
/// physical kernels the executor dispatches to (SystemML/CLA-style
/// representation transparency, Elgohary et al., VLDB'16). Operands are
/// cheap shared handles: copying one never copies matrix data.
#ifndef DMML_LAOPT_OPERAND_H_
#define DMML_LAOPT_OPERAND_H_

#include <cstdint>
#include <memory>

#include "cla/compressed_matrix.h"
#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace dmml::laopt {

/// \brief Physical representation of a bound operand (or the analyzer's
/// per-node choice of one).
enum class Repr {
  kDense,       ///< Row-major la::DenseMatrix.
  kSparse,      ///< CSR la::SparseMatrix.
  kCompressed,  ///< cla::CompressedMatrix column groups.
  kFactorized,  ///< Abstract LinearOperator (e.g. a normalized join).
};

/// \brief Abstract matrix-free operand: anything that can act as a linear
/// operator without exposing its cells. The canonical implementation is the
/// factorized (normalized-join) design matrix in `factorized/`, which
/// answers T·m and Tᵀ·m by pushing work through the join instead of
/// materializing it (Orion / Morpheus). laopt depends only on this
/// interface, so the dependency arrow stays factorized → laopt.
///
/// The executor dispatches the products its trainer programs need — T·m,
/// Tᵀ·m, Gram (TᵀT), rowSums(T⊙T), colSums(T) — to these virtuals and falls
/// back to Materialize() for anything else (the same densify-on-mismatch
/// contract the compressed representation has).
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  virtual size_t rows() const = 0;
  virtual size_t cols() const = 0;

  /// T · m for m of shape (cols() x k).
  virtual Result<la::DenseMatrix> Multiply(const la::DenseMatrix& m,
                                           ThreadPool* pool) const = 0;
  /// Tᵀ · m for m of shape (rows() x k).
  virtual Result<la::DenseMatrix> TransposeMultiply(const la::DenseMatrix& m,
                                                    ThreadPool* pool) const = 0;
  /// TᵀT (cols() x cols()). Default: materialize and multiply.
  virtual Result<la::DenseMatrix> Gram(ThreadPool* pool) const;
  /// Per-row sums of squared entries (rows() x 1). Default: materialize.
  virtual Result<la::DenseMatrix> RowSquaredNorms(ThreadPool* pool) const;
  /// Column sums as a 1 x cols() row vector. Default: Tᵀ·1 reshaped.
  virtual Result<la::DenseMatrix> ColumnSums(ThreadPool* pool) const;

  /// Dense copy of the full operator output (the densify fallback).
  virtual la::DenseMatrix Materialize(ThreadPool* pool) const = 0;

  /// Resident bytes of the operator's own storage (not the materialized
  /// size — the gap between the two is exactly what the chooser weighs).
  virtual uint64_t SizeInBytes() const = 0;

  /// Short stable name for EXPLAIN / metrics (e.g. "normalized_matrix").
  virtual const char* Name() const = 0;
};

/// \brief Stable identifier ("dense", "sparse", "compressed") usable as a
/// metric-name suffix and in EXPLAIN dumps.
const char* ReprName(Repr repr);

/// \brief A bound leaf value in any representation, or unbound (placeholder).
///
/// Implicitly constructible from a shared_ptr to any of the three matrix
/// types (const or mutable), so existing call sites that build parser
/// environments from `std::shared_ptr<la::DenseMatrix>` keep compiling
/// unchanged.
class Operand {
 public:
  /// Unbound operand (placeholder leaf).
  Operand() = default;

  // NOLINTBEGIN(google-explicit-constructor): implicit by design — an
  // Operand *is* a matrix handle, and environments/leaves accept any of the
  // three representations interchangeably.
  Operand(std::shared_ptr<const la::DenseMatrix> m) : dense_(std::move(m)) {}
  Operand(std::shared_ptr<la::DenseMatrix> m) : dense_(std::move(m)) {}
  Operand(std::shared_ptr<const la::SparseMatrix> m) : sparse_(std::move(m)) {}
  Operand(std::shared_ptr<la::SparseMatrix> m) : sparse_(std::move(m)) {}
  Operand(std::shared_ptr<const cla::CompressedMatrix> m)
      : compressed_(std::move(m)) {}
  Operand(std::shared_ptr<cla::CompressedMatrix> m) : compressed_(std::move(m)) {}
  Operand(std::shared_ptr<const LinearOperator> op) : linear_(std::move(op)) {}
  // NOLINTEND(google-explicit-constructor)

  /// \brief True iff a matrix is bound (in any representation).
  bool bound() const { return dense_ || sparse_ || compressed_ || linear_; }

  /// \brief Representation of the bound matrix; kDense when unbound.
  Repr repr() const {
    if (sparse_) return Repr::kSparse;
    if (compressed_) return Repr::kCompressed;
    if (linear_) return Repr::kFactorized;
    return Repr::kDense;
  }

  /// Logical rows: the window height when windowed, else the full height.
  size_t rows() const;
  size_t cols() const;

  // ---------------------------------------------------------------------
  // Row windows. A windowed operand is a zero-copy view of rows
  // [window_begin, window_end) of the bound matrix — the payload is shared
  // with the parent handle and the executor dispatches ranged kernels
  // (dense pointer-offset GEMM, sparse CSR slices, CLA positional seeks)
  // instead of materialising the slice. Contiguous-fold cross-validation
  // trains leave-one-fold-out through two such views per fold.
  // ---------------------------------------------------------------------

  /// \brief Zero-copy view of rows [row_begin, row_end) of *this* operand's
  /// window (offsets compose: slicing a slice re-slices the base matrix).
  Operand Slice(size_t row_begin, size_t row_end) const;

  /// \brief True iff this handle views a proper row range of its payload.
  bool windowed() const { return windowed_; }
  /// \brief First payload row of the view (0 when not windowed).
  size_t window_begin() const { return win_begin_; }
  /// \brief One past the last payload row of the view (payload rows when
  /// not windowed).
  size_t window_end() const;

  /// Typed accessors: non-null only for the matching representation.
  const la::DenseMatrix* dense() const { return dense_.get(); }
  const la::SparseMatrix* sparse() const { return sparse_.get(); }
  const cla::CompressedMatrix* compressed() const { return compressed_.get(); }
  const LinearOperator* linear() const { return linear_.get(); }

  /// \brief The dense handle (empty unless repr() == kDense). Kept as a
  /// shared_ptr so dense-only call sites (ExprNode::matrix()) can share
  /// ownership without a copy.
  const std::shared_ptr<const la::DenseMatrix>& dense_ptr() const {
    return dense_;
  }

  /// \brief Identity of the bound payload (for CSE/memo keys); null when
  /// unbound.
  const void* payload() const;

  /// \brief Nonzero fraction: exact for sparse (nnz-based), 1.0 for dense
  /// and compressed (no cheap count; the analyzer scans dense leaves itself).
  double Sparsity() const;

  /// \brief Estimated resident bytes of the bound matrix in its own
  /// representation (dense: rows*cols*8, sparse: CSR cells, compressed:
  /// exact group sizes). 0 when unbound.
  uint64_t SizeInBytes() const;

  /// \brief Materializes a dense copy (the densify-on-mismatch fallback).
  la::DenseMatrix ToDense(ThreadPool* pool = nullptr) const;

 private:
  size_t PayloadRows() const;

  std::shared_ptr<const la::DenseMatrix> dense_;
  std::shared_ptr<const la::SparseMatrix> sparse_;
  std::shared_ptr<const cla::CompressedMatrix> compressed_;
  std::shared_ptr<const LinearOperator> linear_;
  bool windowed_ = false;
  size_t win_begin_ = 0;
  size_t win_end_ = 0;
};

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_OPERAND_H_
