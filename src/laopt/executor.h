/// \file executor.h
/// \brief Evaluates LA expression DAGs with common-subexpression memoization.
#ifndef DMML_LAOPT_EXECUTOR_H_
#define DMML_LAOPT_EXECUTOR_H_

#include <cstdint>
#include <unordered_map>

#include "laopt/expr.h"
#include "util/thread_pool.h"

namespace dmml::laopt {

/// \brief Execution statistics.
struct ExecStats {
  size_t ops_executed = 0;      ///< Non-leaf nodes evaluated.
  size_t memo_hits = 0;         ///< Shared sub-DAGs reused.
};

/// \brief DAG evaluator with persistent per-node output buffers.
///
/// Every non-leaf node gets a buffer slot that survives across Run() calls;
/// ops execute through the `...Into` kernels, so re-running a program whose
/// shapes have not changed performs zero matrix allocations in steady state
/// (observable via the `la.inplace.reuses` / `la.inplace.allocs` counters).
/// Within one Run, shared sub-DAGs are evaluated once via an epoch-stamped
/// memo — same semantics as the one-shot Execute() below.
///
/// Not thread-safe; one BufferedExecutor per driving thread. The internal
/// thread pool (if any) is still used to parallelize individual kernels.
class BufferedExecutor {
 public:
  explicit BufferedExecutor(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// \brief Evaluates `root`. The returned pointer aliases executor-owned
  /// storage (or a leaf's bound matrix) and remains valid until the next
  /// Run() on this executor, Clear(), or destruction.
  Result<const la::DenseMatrix*> Run(const ExprPtr& root,
                                     ExecStats* stats = nullptr);

  /// \brief Drops all retained buffers (e.g. between unrelated programs).
  void Clear() { slots_.clear(); }

  /// \brief Number of node buffers currently retained.
  size_t num_slots() const { return slots_.size(); }

 private:
  struct Slot {
    la::DenseMatrix buf;                     ///< Output buffer (non-leaf nodes).
    uint64_t epoch = 0;                      ///< Last Run() that filled it.
    const la::DenseMatrix* out = nullptr;    ///< &buf, or the leaf's matrix.
  };

  Result<const la::DenseMatrix*> Eval(const ExprPtr& node, ExecStats* stats);

  ThreadPool* pool_ = nullptr;
  uint64_t epoch_ = 0;
  std::unordered_map<const ExprNode*, Slot> slots_;
};

/// \brief Evaluates `root`, reusing results for shared sub-DAGs (pointer
/// identity). Thread pool, if given, parallelizes large kernels. One-shot:
/// buffers die with the call — iterative callers should hold a
/// BufferedExecutor instead.
Result<la::DenseMatrix> Execute(const ExprPtr& root, ThreadPool* pool = nullptr,
                                ExecStats* stats = nullptr);

/// \brief Optimize-then-execute convenience.
Result<la::DenseMatrix> OptimizeAndExecute(const ExprPtr& root,
                                           ThreadPool* pool = nullptr);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_EXECUTOR_H_
