/// \file executor.h
/// \brief Evaluates LA expression DAGs with common-subexpression memoization.
#ifndef DMML_LAOPT_EXECUTOR_H_
#define DMML_LAOPT_EXECUTOR_H_

#include "laopt/expr.h"
#include "util/thread_pool.h"

namespace dmml::laopt {

/// \brief Execution statistics.
struct ExecStats {
  size_t ops_executed = 0;      ///< Non-leaf nodes evaluated.
  size_t memo_hits = 0;         ///< Shared sub-DAGs reused.
};

/// \brief Evaluates `root`, reusing results for shared sub-DAGs (pointer
/// identity). Thread pool, if given, parallelizes large matmuls.
Result<la::DenseMatrix> Execute(const ExprPtr& root, ThreadPool* pool = nullptr,
                                ExecStats* stats = nullptr);

/// \brief Optimize-then-execute convenience.
Result<la::DenseMatrix> OptimizeAndExecute(const ExprPtr& root,
                                           ThreadPool* pool = nullptr);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_EXECUTOR_H_
