/// \file executor.h
/// \brief Evaluates LA expression DAGs with common-subexpression memoization
/// and representation-polymorphic kernel dispatch.
///
/// Leaves may be bound (via ExprNode::InputOperand or BufferedExecutor::Bind)
/// to any of the three physical representations — dense, CSR sparse, or
/// CLA-compressed. Each DAG node is dispatched to the best physical kernel
/// for its operands:
///
///  * dense·dense matmul       → blocked GEMM; t(U)·V → TransposeMultiply,
///    t(U)·U → Gram (SYRK), U·t(V) → MultiplyTransposeB — never
///    materializing the transpose;
///  * sparse·dense matmul      → SparseGemv / SparseMultiplyDense; t(S) is
///    materialized once per run as CSR via the counting transpose;
///  * compressed·dense matmul  → the ranged cla::CompressedMatrix operators
///    (MultiplyVector / MultiplyMatrix / TransposeMultiplyMatrix), including
///    the fused rowSums(X ⊙ X) → RowSquaredNorms pattern;
///  * everything else          → densify-on-mismatch fallback: the non-dense
///    operand is materialized into an executor-owned buffer (cached per
///    node, reused across runs) and the dense kernel runs. Every fallback
///    increments `laopt.repr.densify_fallbacks`.
///
/// Per-op dispatch outcomes are observable via the `laopt.repr.dense_ops`,
/// `laopt.repr.sparse_ops`, and `laopt.repr.compressed_ops` counters.
#ifndef DMML_LAOPT_EXECUTOR_H_
#define DMML_LAOPT_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "la/sparse_matrix.h"
#include "laopt/expr.h"
#include "laopt/operand.h"
#include "util/thread_pool.h"

namespace dmml::laopt {

class PlanProfile;

/// \brief Execution statistics.
///
/// Backed by the executor's per-run tally: Run() counts into one internal
/// tally and folds it into both the caller's ExecStats (accumulating across
/// runs, as before) and the attached PlanProfile's totals — the two views
/// are projections of the same counts and can never disagree.
struct ExecStats {
  size_t ops_executed = 0;       ///< Non-leaf nodes evaluated.
  size_t memo_hits = 0;          ///< Shared sub-DAGs reused.
  size_t densify_fallbacks = 0;  ///< Operands materialized dense for dispatch.
};

/// \brief DAG evaluator with persistent per-node output buffers.
///
/// Every non-leaf node gets a buffer slot that survives across Run() calls;
/// ops execute through the `...Into` kernels, so re-running a program whose
/// shapes have not changed performs zero matrix allocations in steady state
/// (observable via the `la.inplace.reuses` / `la.inplace.allocs` counters).
/// Within one Run, shared sub-DAGs are evaluated once via an epoch-stamped
/// memo — same semantics as the one-shot Execute() below.
///
/// The first Run() of each distinct root prepares the plan: in checked
/// builds (see VerifyEnabled in laopt/verify.h) it is structurally verified,
/// and — unless set_buffer_sharing(false) — the static liveness analysis
/// (ComputeSchedule in laopt/analysis.h) assigns dense output buffers
/// register-allocation-style, so nodes whose live ranges do not overlap
/// share one buffer instead of each owning a dedicated one. The number of
/// distinct buffers backing the plan is observable via num_buffers() and the
/// laopt.executor.pool_buffers / laopt.executor.buffers_shared counters;
/// results are bit-identical to the dedicated-buffer mode because a buffer
/// is only reused after its previous value's last reader has completed.
///
/// Not thread-safe; one BufferedExecutor per driving thread. The internal
/// thread pool (if any) is still used to parallelize individual kernels.
class BufferedExecutor {
 public:
  explicit BufferedExecutor(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// \brief Evaluates `root`. The returned pointer aliases executor-owned
  /// storage (or a leaf's bound matrix) and remains valid until the next
  /// Run() on this executor, Clear(), or destruction. Non-dense root values
  /// (e.g. a bare sparse leaf) are densified into executor storage.
  Result<const la::DenseMatrix*> Run(const ExprPtr& root,
                                     ExecStats* stats = nullptr);

  /// \brief Binds (or rebinds) `leaf` to `operand` for subsequent Run()s on
  /// this executor, overriding any payload carried by the node itself. The
  /// standard way to execute one compiled plan against changing data — or
  /// against a different physical representation. Rebinding to a different
  /// shape or representation is safe: node buffers are reshaped by the
  /// `...Into` kernels and densify caches are keyed by payload identity, so
  /// stale buffer contents are never observed.
  ///
  /// Fails if `leaf` is not a kInput node, `operand` is unbound, or the
  /// operand's shape contradicts the leaf's plan-time dimensions (unknown
  /// plan dims accept anything).
  Status Bind(const ExprPtr& leaf, Operand operand);

  /// \brief Drops all retained buffers, bindings, and prepared plan state
  /// (e.g. between unrelated programs).
  void Clear() {
    slots_.clear();
    binds_.clear();
    assignments_.clear();
    pool_buffers_.clear();
    dedicated_.clear();
    current_assign_ = nullptr;
    next_buffer_id_ = 0;
  }

  /// \brief Number of node buffers currently retained.
  size_t num_slots() const { return slots_.size(); }

  /// \brief Enables/disables liveness-driven buffer sharing for plans
  /// prepared *after* the call (already-prepared roots keep their
  /// assignment). On by default; turn off to give every node a dedicated
  /// buffer (e.g. to bisect a suspected aliasing bug).
  void set_buffer_sharing(bool on) { buffer_sharing_ = on; }
  bool buffer_sharing() const { return buffer_sharing_; }

  /// \brief Number of distinct dense output buffers materialized so far:
  /// shared pool buffers plus dedicated (per-node) ones. With sharing on,
  /// this approaches the schedule's max_live() instead of the non-leaf node
  /// count.
  size_t num_buffers() const {
    size_t n = dedicated_.size();
    for (const auto& b : pool_buffers_) n += b != nullptr ? 1 : 0;
    return n;
  }

  /// \brief Attaches (or detaches, with nullptr) a runtime profile: every
  /// subsequent Run() records per-node wall time, dispatch representation,
  /// and output nnz into it (see laopt/profile.h). `profile` must outlive
  /// the executor or a later set_profile(nullptr). With no profile attached
  /// the executor takes the exact pre-profiler code path — one pointer test
  /// per node, zero profile allocations.
  void set_profile(PlanProfile* profile) { profile_ = profile; }
  PlanProfile* profile() const { return profile_; }

 private:
  /// A node's evaluated result: exactly one pointer is set. Leaves surface
  /// their bound representation; non-leaf results are dense (except
  /// transpose-of-sparse, which stays CSR).
  struct Value {
    Repr repr = Repr::kDense;
    const la::DenseMatrix* d = nullptr;
    const la::SparseMatrix* s = nullptr;
    const cla::CompressedMatrix* c = nullptr;
  };

  struct Slot {
    la::DenseMatrix* buf = nullptr;  ///< Dense output buffer (non-leaf nodes):
                                     ///< a shared pool buffer when the plan's
                                     ///< liveness assignment granted one, else
                                     ///< this node's dedicated buffer.
                                     ///< Refreshed per Run (per-root
                                     ///< assignments may differ).
    la::SparseMatrix sbuf;        ///< CSR output (transpose-of-sparse only).
    la::DenseMatrix aux;          ///< Densified copy of this node's value, or
                                  ///< kernel scratch (ones vector).
    const void* aux_src = nullptr;  ///< Payload the aux densify came from.
    uint64_t aux_epoch = 0;       ///< Last Run() that refreshed aux.
    uint64_t epoch = 0;           ///< Last Run() that filled the slot.
    Repr last_dispatch = Repr::kDense;  ///< Kernel family that last filled it.
    Value out;
  };

  Result<Value> Eval(const ExprPtr& node);
  Result<Value> EvalMatMul(const ExprPtr& node, Slot& slot);

  /// First-sighting plan preparation: structural verification (checked
  /// builds) and the liveness-driven buffer assignment for `root`. Inserts
  /// the root's (possibly empty) assignment only on success, so a rejected
  /// plan is re-verified — and re-rejected — on the next Run.
  Status PreparePlan(const ExprPtr& root);

  /// The dense output buffer `node` writes this Run: its pool buffer under
  /// the current root's assignment (materialized lazily, so fused-absorbed
  /// nodes never allocate one), else its dedicated buffer.
  la::DenseMatrix* BufferFor(const ExprNode* node);

  /// Dense view of `v` (the value of `owner`): returns it directly when
  /// dense, otherwise materializes into `owner`'s aux buffer (cached per
  /// payload per run) and counts a `laopt.repr.densify_fallbacks`.
  Result<const la::DenseMatrix*> Densify(const ExprPtr& owner, const Value& v);

  /// Bumps the laopt.repr.* dispatch counter and notes the kernel family in
  /// `slot` so the profiler can report the chosen representation.
  static void CountDispatch(Slot& slot, Repr repr);

  /// Folds one node execution (inclusive/self wall micros plus the slot's
  /// materialized output) into the attached profile.
  void RecordNodeProfile(const ExprPtr& node, const Slot& slot,
                         uint64_t incl_us, uint64_t self_us);

  ThreadPool* pool_ = nullptr;
  uint64_t epoch_ = 0;
  std::unordered_map<const ExprNode*, Slot> slots_;
  std::unordered_map<const ExprNode*, Operand> binds_;

  /// node → pool buffer id, per prepared root. Presence of a root's entry
  /// marks it prepared (an empty map = verified, dedicated buffers only).
  using BufferAssignment = std::unordered_map<const ExprNode*, size_t>;
  std::unordered_map<const ExprNode*, BufferAssignment> assignments_;
  const BufferAssignment* current_assign_ = nullptr;  ///< Run() in flight.
  std::vector<std::unique_ptr<la::DenseMatrix>> pool_buffers_;
  std::unordered_map<const ExprNode*, la::DenseMatrix> dedicated_;
  size_t next_buffer_id_ = 0;  ///< Pool ids are globally fresh across roots:
                               ///< a node shared by two plans never collides
                               ///< with either plan's other assignments.
  bool buffer_sharing_ = true;

  /// Counts for the Run() in flight; folded into caller stats and the
  /// profile at Run() end (see ExecStats doc).
  ExecStats run_tally_;

  PlanProfile* profile_ = nullptr;
  /// Inclusive micros of already-profiled children of the node currently
  /// evaluating — subtracted from the parent's inclusive time to get self
  /// time (saved/restored around each recursion level).
  uint64_t prof_child_us_ = 0;
};

/// \brief Evaluates `root`, reusing results for shared sub-DAGs (pointer
/// identity). Thread pool, if given, parallelizes large kernels. One-shot:
/// buffers die with the call — iterative callers should hold a
/// BufferedExecutor instead.
Result<la::DenseMatrix> Execute(const ExprPtr& root, ThreadPool* pool = nullptr,
                                ExecStats* stats = nullptr);

/// \brief Optimize-then-execute convenience.
Result<la::DenseMatrix> OptimizeAndExecute(const ExprPtr& root,
                                           ThreadPool* pool = nullptr);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_EXECUTOR_H_
