/// \file executor.h
/// \brief Evaluates LA expression DAGs with common-subexpression memoization
/// and representation-polymorphic kernel dispatch.
///
/// Leaves may be bound (via ExprNode::InputOperand or BufferedExecutor::Bind)
/// to any of the three physical representations — dense, CSR sparse, or
/// CLA-compressed. Each DAG node is dispatched to the best physical kernel
/// for its operands:
///
///  * dense·dense matmul       → blocked GEMM; t(U)·V → TransposeMultiply,
///    t(U)·U → Gram (SYRK), U·t(V) → MultiplyTransposeB — never
///    materializing the transpose;
///  * sparse·dense matmul      → SparseGemv / SparseMultiplyDense; t(S) is
///    materialized once per run as CSR via the counting transpose;
///  * compressed·dense matmul  → the ranged cla::CompressedMatrix operators
///    (MultiplyVector / MultiplyMatrix / TransposeMultiplyMatrix), including
///    the fused rowSums(X ⊙ X) → RowSquaredNorms pattern;
///  * factorized leaves        → the abstract LinearOperator virtuals (T·m,
///    Tᵀ·m, t(T)·T → Gram, colSums, the fused rowSums(T ⊙ T)), so a
///    normalized-join design matrix trains without ever materializing the
///    join;
///  * everything else          → densify-on-mismatch fallback: the non-dense
///    operand is materialized into an executor-owned buffer (cached per
///    node, reused across runs) and the dense kernel runs. Every fallback
///    increments `laopt.repr.densify_fallbacks`.
///
/// Per-op dispatch outcomes are observable via the `laopt.repr.dense_ops`,
/// `laopt.repr.sparse_ops`, and `laopt.repr.compressed_ops` counters.
///
/// With a thread pool attached the executor additionally runs *inter-node*
/// parallel (SystemDS-style inter-operator parallelism): PreparePlan derives
/// a dataflow task graph from the static schedule, and Run launches every
/// node whose operands have completed onto the pool — true dependency-counter
/// dataflow, not level barriers — while each node's kernel keeps using the
/// same pool for intra-node (morsel) parallelism via the pool's cooperative
/// waiting. Results are bit-identical to serial execution and ExecStats /
/// PlanProfile counts are exact. See DESIGN.md §11 and the laopt.sched.*
/// metrics. Default on when a pool is attached; DMML_INTER_NODE=0/1
/// overrides the default, set_inter_node() overrides both.
#ifndef DMML_LAOPT_EXECUTOR_H_
#define DMML_LAOPT_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "la/sparse_matrix.h"
#include "laopt/expr.h"
#include "laopt/operand.h"
#include "util/thread_pool.h"

namespace dmml::laopt {

class PlanProfile;
class PlanSchedule;

/// \brief Execution statistics.
///
/// Backed by the executor's per-run tally: Run() counts into one internal
/// tally and folds it into both the caller's ExecStats (accumulating across
/// runs, as before) and the attached PlanProfile's totals — the two views
/// are projections of the same counts and can never disagree. Inter-node
/// parallel runs produce exactly the counts the serial executor would.
struct ExecStats {
  size_t ops_executed = 0;       ///< Non-leaf nodes evaluated.
  size_t memo_hits = 0;          ///< Shared sub-DAGs reused.
  size_t densify_fallbacks = 0;  ///< Operands materialized dense for dispatch.
};

/// \brief DAG evaluator with persistent per-node output buffers.
///
/// Every non-leaf node gets a buffer slot that survives across Run() calls;
/// ops execute through the `...Into` kernels, so re-running a program whose
/// shapes have not changed performs zero matrix allocations in steady state
/// (observable via the `la.inplace.reuses` / `la.inplace.allocs` counters).
/// Within one Run, shared sub-DAGs are evaluated once via an epoch-stamped
/// memo — same semantics as the one-shot Execute() below.
///
/// The first Run() of each distinct root prepares the plan: in checked
/// builds (see VerifyEnabled in laopt/verify.h) it is structurally verified,
/// and — unless set_buffer_sharing(false) — the static liveness analysis
/// (ComputeSchedule in laopt/analysis.h) assigns dense output buffers
/// register-allocation-style, so nodes whose live ranges do not overlap
/// share one buffer instead of each owning a dedicated one. The number of
/// distinct buffers backing the plan is observable via num_buffers() and the
/// laopt.executor.pool_buffers / laopt.executor.buffers_shared counters;
/// results are bit-identical to the dedicated-buffer mode because a buffer
/// is only reused after its previous value's last reader has completed. For
/// inter-node plans the interference test is strengthened: a buffer may be
/// reused only when the candidate provably runs after every reader of the
/// previous value (live ranges overlap *or* the nodes may run concurrently
/// ⇒ no sharing), so pooled buffers are never written by two in-flight
/// nodes — asserted at runtime by the laopt.sched.buffer_conflicts counter,
/// which stays zero.
///
/// Not externally thread-safe; one BufferedExecutor per driving thread.
/// Internally, inter-node runs fan node evaluations out across the pool —
/// multiple executors may share GlobalThreadPool() concurrently.
class BufferedExecutor {
 public:
  explicit BufferedExecutor(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// \brief Evaluates `root`. The returned pointer aliases executor-owned
  /// storage (or a leaf's bound matrix) and remains valid until the next
  /// Run() on this executor, Clear(), or destruction. Non-dense root values
  /// (e.g. a bare sparse leaf) are densified into executor storage.
  Result<const la::DenseMatrix*> Run(const ExprPtr& root,
                                     ExecStats* stats = nullptr);

  /// \brief Evaluates several roots as ONE fused plan: shared sub-DAGs are
  /// evaluated once (one memo epoch spans all roots), and with a pool
  /// attached the inter-node scheduler interleaves independent branches of
  /// *different* roots — the wide-rung execution shape of shared-scan model
  /// selection, where per-fold branches share the bound X operand. Returned
  /// pointers alias executor storage exactly like Run()'s, one per root, and
  /// stay valid until the next Run()/RunMany()/Clear(). The attached
  /// profiler (per-root by construction) is suspended for the fused run.
  Result<std::vector<const la::DenseMatrix*>> RunMany(
      const std::vector<ExprPtr>& roots, ExecStats* stats = nullptr);

  /// \brief Binds (or rebinds) `leaf` to `operand` for subsequent Run()s on
  /// this executor, overriding any payload carried by the node itself. The
  /// standard way to execute one compiled plan against changing data — or
  /// against a different physical representation. Rebinding to a different
  /// shape or representation is safe: node buffers are reshaped by the
  /// `...Into` kernels and densify caches are keyed by payload identity, so
  /// stale buffer contents are never observed.
  ///
  /// Fails if `leaf` is not a kInput node, `operand` is unbound, or the
  /// operand's shape contradicts the leaf's plan-time dimensions (unknown
  /// plan dims accept anything).
  Status Bind(const ExprPtr& leaf, Operand operand);

  /// \brief Drops all retained buffers, bindings, and prepared plan state
  /// (e.g. between unrelated programs).
  void Clear() {
    slots_.clear();
    binds_.clear();
    assignments_.clear();
    multi_plans_.clear();
    pool_buffers_.clear();
    dedicated_.clear();
    current_assign_ = nullptr;
    next_buffer_id_ = 0;
    pool_writer_.reset();
    pool_writer_size_ = 0;
  }

  /// \brief Number of node buffers currently retained.
  size_t num_slots() const { return slots_.size(); }

  /// \brief Enables/disables liveness-driven buffer sharing for plans
  /// prepared *after* the call (already-prepared roots keep their
  /// assignment). On by default; turn off to give every node a dedicated
  /// buffer (e.g. to bisect a suspected aliasing bug).
  void set_buffer_sharing(bool on) { buffer_sharing_ = on; }
  bool buffer_sharing() const { return buffer_sharing_; }

  /// \brief Enables/disables inter-node (dataflow) scheduling for plans
  /// prepared *after* the call. Takes effect only with a thread pool
  /// attached; serial execution is used otherwise. Overrides the
  /// DMML_INTER_NODE environment default (which in turn overrides the
  /// built-in default of on).
  void set_inter_node(bool on) { inter_node_ = on ? 1 : 0; }

  /// \brief The effective inter-node setting for plans prepared now.
  bool inter_node() const;

  /// \brief Number of distinct dense output buffers materialized so far:
  /// shared pool buffers plus dedicated (per-node) ones. With sharing on,
  /// this approaches the schedule's max_live() instead of the non-leaf node
  /// count. (Inter-node plans pre-create dedicated buffers for the nodes
  /// fused kernels may fall through to, so the count is an upper bound on
  /// buffers actually written there.)
  size_t num_buffers() const {
    size_t n = dedicated_.size();
    for (const auto& b : pool_buffers_) n += b != nullptr ? 1 : 0;
    return n;
  }

  /// \brief Attaches (or detaches, with nullptr) a runtime profile: every
  /// subsequent Run() records per-node wall time, dispatch representation,
  /// and output nnz into it (see laopt/profile.h). `profile` must outlive
  /// the executor or a later set_profile(nullptr). With no profile attached
  /// the executor takes the exact pre-profiler code path — one pointer test
  /// per node, zero profile allocations.
  void set_profile(PlanProfile* profile) { profile_ = profile; }
  PlanProfile* profile() const { return profile_; }

 private:
  /// A node's evaluated result: exactly one pointer is set. Leaves surface
  /// their bound representation; non-leaf results are dense (except
  /// transpose-of-sparse, which stays CSR).
  struct Value {
    Repr repr = Repr::kDense;
    const la::DenseMatrix* d = nullptr;
    const la::SparseMatrix* s = nullptr;
    const cla::CompressedMatrix* c = nullptr;
    const LinearOperator* lo = nullptr;  ///< kFactorized leaves only.
    /// Row-windowed leaf values (Operand::Slice): the pointer above is the
    /// full payload and only rows [win_begin, win_end) belong to the value.
    /// Consumers dispatch ranged kernels; Densify materializes the window.
    bool windowed = false;
    size_t win_begin = 0;
    size_t win_end = 0;
  };

  struct Slot {
    la::DenseMatrix* buf = nullptr;  ///< Dense output buffer (non-leaf nodes):
                                     ///< a shared pool buffer when the plan's
                                     ///< liveness assignment granted one, else
                                     ///< this node's dedicated buffer.
                                     ///< Refreshed per Run (per-root
                                     ///< assignments may differ).
    la::SparseMatrix sbuf;        ///< CSR output (transpose-of-sparse only).
    la::DenseMatrix aux;          ///< Densified copy of this node's value, or
                                  ///< kernel scratch (ones vector).
    const void* aux_src = nullptr;  ///< Payload the aux densify came from.
    uint64_t aux_epoch = 0;       ///< Last Run() that refreshed aux.
    /// Last Run() that filled the slot. Atomic because inter-node runs
    /// publish completed values through it (release store by the evaluating
    /// thread, acquire load in the memo check); serial runs use it with
    /// relaxed ordering at identical cost.
    std::atomic<uint64_t> epoch{0};
    Repr last_dispatch = Repr::kDense;  ///< Kernel family that last filled it.
    Value out;

    // Inter-node run state, reset by the driving thread before each run.
    std::atomic<uint8_t> exec_state{0};  ///< 0 idle, 1 running, 2 done, 3 failed.
    std::atomic<uint8_t> aux_state{0};   ///< 0 unchecked, 1 filling, 2 valid.
    /// True until the first post-completion read. The serial executor's
    /// first consumer call *executes* the node (uncounted); under dataflow
    /// the node's own task executes it, so the first consumer read consumes
    /// this flag instead of counting a memo hit — keeping memo_hits exactly
    /// equal between modes.
    std::atomic<bool> first_pending{false};
  };

  /// One schedulable node of an inter-node plan.
  struct ParallelTask {
    ExprPtr node;
    Slot* slot = nullptr;
    std::vector<uint32_t> consumers;  ///< Task indices unblocked by this one.
    uint32_t num_deps = 0;            ///< Distinct task-level dependencies.
  };

  /// The dataflow shape of one prepared root: derived once in PreparePlan,
  /// reused (with per-run counter resets) by every inter-node Run.
  struct ParallelPlan {
    std::vector<ParallelTask> tasks;  ///< Schedule (completion) order.
    std::vector<std::pair<ExprPtr, Slot*>> leaves;  ///< Prefilled per run.
    std::vector<Slot*> all_slots;     ///< Every plan node, for state resets.
    Slot* root_slot = nullptr;
    std::vector<Slot*> root_slots;    ///< Multi-root plans: one per root.
    std::unique_ptr<std::atomic<uint32_t>[]> deps_remaining;  ///< Per task.
  };

  struct PreparedPlan {
    /// node → pool buffer id. An empty map = verified, dedicated buffers.
    std::unordered_map<const ExprNode*, size_t> assign;
    std::unique_ptr<ParallelPlan> par;  ///< Null when prepared serial-only.
  };
  using BufferAssignment = std::unordered_map<const ExprNode*, size_t>;

  Result<Value> Eval(const ExprPtr& node);
  Result<Value> EvalMatMul(const ExprPtr& node, Slot& slot);

  /// Memo-hit return path: counts a hit (exactly as the serial executor
  /// does) unless this is the first read of a dataflow-completed value.
  Result<Value> MemoReturn(const ExprPtr& node, Slot& slot);

  /// Another thread holds `slot`'s execution claim: spin-yield until it
  /// publishes done (→ memo semantics) or failed. Never runs pool tasks —
  /// stealing here could nest a task that waits on a claim this very stack
  /// holds. Progress is guaranteed because claim waits follow DAG edges and
  /// claim holders mark themselves with PoolClaimScope, which keeps their
  /// nested kernel waits from stealing tasks that could block on the claim.
  Result<Value> AwaitConcurrentEval(const ExprPtr& node, Slot& slot);

  /// First-sighting plan preparation: structural verification (checked
  /// builds), the liveness-driven buffer assignment for `root`, and — with a
  /// pool attached and inter-node enabled — the dataflow task graph. Inserts
  /// the root's plan only on success, so a rejected plan is re-verified —
  /// and re-rejected — on the next Run.
  Status PreparePlan(const ExprPtr& root);

  /// Multi-root preparation: verifies each root, merges the roots' sub-DAGs
  /// into one DFS postorder (shared nodes once), and builds the fused
  /// dataflow graph with dedicated buffers (liveness-driven sharing is a
  /// per-schedule analysis and is skipped for fused plans).
  Result<PreparedPlan> PrepareMultiPlan(const std::vector<ExprPtr>& roots);

  /// Builds the dataflow task graph mirroring the serial evaluation:
  /// absorbable-position nodes (a matmul's transpose operand, the G⊙G under
  /// rowSums) get no task of their own — consumers evaluate them inline
  /// through the same repr-dependent paths the serial executor takes.
  std::unique_ptr<ParallelPlan> BuildParallelPlan(
      const ExprPtr& root, const PlanSchedule& schedule,
      const std::unordered_set<const ExprNode*>& absorbable,
      const BufferAssignment& assign);

  /// Shared core of single- and multi-root plan building: `order` is any
  /// topological (children-first) order over the union of the roots'
  /// sub-DAGs.
  std::unique_ptr<ParallelPlan> BuildParallelPlanFromOrder(
      const std::vector<ExprPtr>& roots,
      const std::vector<const ExprNode*>& order,
      const std::unordered_set<const ExprNode*>& absorbable,
      const BufferAssignment& assign);

  /// Executes one prepared plan as a dataflow: prefills leaves, launches
  /// zero-dependency tasks, cooperatively waits the run out, and returns the
  /// root's value (or the first task error).
  Result<Value> RunInterNode(const ExprPtr& root, ParallelPlan& par);

  /// The dataflow drive loop shared by Run and RunMany: per-run resets, leaf
  /// prefill, task launches, cooperative wait, first-error return.
  Status DriveInterNode(ParallelPlan& par);

  void LaunchTask(ParallelPlan& par, uint32_t idx);
  void RunTaskBody(ParallelPlan& par, uint32_t idx);

  /// The dense output buffer `node` writes this Run: its pool buffer under
  /// the current root's assignment (materialized lazily, so fused-absorbed
  /// nodes never allocate one), else its dedicated buffer. `*pool_id` is set
  /// to the pool slot index, or SIZE_MAX for dedicated buffers.
  la::DenseMatrix* BufferFor(const ExprNode* node, size_t* pool_id);

  /// Dense view of `v` (the value of `owner`): returns it directly when
  /// dense, otherwise materializes into `owner`'s aux buffer (cached per
  /// payload per run) and counts a `laopt.repr.densify_fallbacks`. In
  /// inter-node runs the fill is claimed by CAS so concurrent consumers of
  /// one non-dense value get a single, fully-published copy and a single
  /// fallback count.
  Result<const la::DenseMatrix*> Densify(const ExprPtr& owner, const Value& v);

  /// Bumps the laopt.repr.* dispatch counter and notes the kernel family in
  /// `slot` so the profiler can report the chosen representation.
  static void CountDispatch(Slot& slot, Repr repr);

  /// Folds one node execution (inclusive/self wall micros plus the slot's
  /// materialized output) into the attached profile.
  void RecordNodeProfile(const ExprPtr& node, const Slot& slot,
                         uint64_t incl_us, uint64_t self_us);

  /// The profiler's accumulated-child-time cell for the current evaluation
  /// context: the member below for serial runs, a thread-local for
  /// inter-node runs (each task thread folds its own recursion).
  uint64_t& child_us_accum();

  ThreadPool* pool_ = nullptr;
  uint64_t epoch_ = 0;
  std::unordered_map<const ExprNode*, Slot> slots_;
  std::unordered_map<const ExprNode*, Operand> binds_;

  /// Prepared per-root plans. Presence of a root's entry marks it prepared.
  std::unordered_map<const ExprNode*, PreparedPlan> assignments_;
  /// Prepared fused plans, keyed by the exact root list (order-sensitive).
  std::map<std::vector<const ExprNode*>, PreparedPlan> multi_plans_;
  const BufferAssignment* current_assign_ = nullptr;  ///< Run() in flight.
  std::vector<std::unique_ptr<la::DenseMatrix>> pool_buffers_;
  std::unordered_map<const ExprNode*, la::DenseMatrix> dedicated_;
  size_t next_buffer_id_ = 0;  ///< Pool ids are globally fresh across roots:
                               ///< a node shared by two plans never collides
                               ///< with either plan's other assignments.
  bool buffer_sharing_ = true;
  int inter_node_ = -1;  ///< -1 auto (env, then default on), 0 off, 1 on.

  /// Runtime assertion backing the concurrency-aware buffer assignment: the
  /// node currently writing each pool buffer. A failed claim increments
  /// laopt.sched.buffer_conflicts (must stay zero) instead of silently
  /// racing.
  std::unique_ptr<std::atomic<const ExprNode*>[]> pool_writer_;
  size_t pool_writer_size_ = 0;

  /// Counts for the Run() in flight; folded into caller stats and the
  /// profile at Run() end (see ExecStats doc). Atomic because inter-node
  /// tasks count concurrently; relaxed increments, folded on the driving
  /// thread after the run's tasks have drained.
  struct RunTally {
    std::atomic<size_t> ops_executed{0};
    std::atomic<size_t> memo_hits{0};
    std::atomic<size_t> densify_fallbacks{0};

    void Reset() {
      ops_executed.store(0, std::memory_order_relaxed);
      memo_hits.store(0, std::memory_order_relaxed);
      densify_fallbacks.store(0, std::memory_order_relaxed);
    }
    ExecStats Snapshot() const {
      return {ops_executed.load(std::memory_order_relaxed),
              memo_hits.load(std::memory_order_relaxed),
              densify_fallbacks.load(std::memory_order_relaxed)};
    }
  };
  RunTally run_tally_;

  // Inter-node run state (valid only while a Run is in flight).
  bool par_run_ = false;  ///< True while an inter-node Run is executing.
  WaitGroup* run_wg_ = nullptr;      ///< Completion group of the run.
  std::atomic<bool> run_failed_{false};
  std::mutex err_mu_;
  Status first_error_;               ///< Guarded by err_mu_.
  std::atomic<uint32_t> sched_inflight_{0};   ///< Launched minus completed.
  std::atomic<uint32_t> sched_run_max_{0};    ///< Peak in-flight this run.

  PlanProfile* profile_ = nullptr;
  /// Inclusive micros of already-profiled children of the node currently
  /// evaluating — subtracted from the parent's inclusive time to get self
  /// time (saved/restored around each recursion level). Serial runs only;
  /// see child_us_accum().
  uint64_t prof_child_us_ = 0;
};

/// \brief Evaluates `root`, reusing results for shared sub-DAGs (pointer
/// identity). Thread pool, if given, parallelizes large kernels. One-shot:
/// buffers die with the call — iterative callers should hold a
/// BufferedExecutor instead.
Result<la::DenseMatrix> Execute(const ExprPtr& root, ThreadPool* pool = nullptr,
                                ExecStats* stats = nullptr);

/// \brief Optimize-then-execute convenience.
Result<la::DenseMatrix> OptimizeAndExecute(const ExprPtr& root,
                                           ThreadPool* pool = nullptr);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_EXECUTOR_H_
