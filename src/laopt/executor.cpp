#include "laopt/executor.h"

#include <array>
#include <string>
#include <unordered_map>

#include "la/kernels.h"
#include "laopt/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::laopt {

using la::DenseMatrix;

namespace {

constexpr size_t kNumOpKinds = static_cast<size_t>(OpKind::kColSums) + 1;

// Per-op-kind instruments, resolved once. The names double as span labels so
// metrics and trace rows line up (e.g. counter laopt.executor.ops.matmul and
// span "laopt.op.matmul").
struct OpInstruments {
  std::array<obs::Counter*, kNumOpKinds> count;
  std::array<obs::Counter*, kNumOpKinds> micros;
  // Span names must outlive the trace rings; the instance below is immortal
  // (leaked but always reachable, so LeakSanitizer stays quiet).
  std::array<std::string, kNumOpKinds> span_name;

  static const OpInstruments& Get() {
    static const OpInstruments* instruments = [] {
      auto* out = new OpInstruments();
      auto& reg = obs::MetricsRegistry::Global();
      for (size_t k = 0; k < kNumOpKinds; ++k) {
        const char* name = OpKindName(static_cast<OpKind>(k));
        out->count[k] = reg.GetCounter(std::string("laopt.executor.ops.") + name);
        out->micros[k] =
            reg.GetCounter(std::string("laopt.executor.op_us.") + name);
        out->span_name[k] = std::string("laopt.op.") + name;
      }
      return out;
    }();
    return *instruments;
  }
};

class Evaluator {
 public:
  Evaluator(ThreadPool* pool, ExecStats* stats) : pool_(pool), stats_(stats) {}

  Result<DenseMatrix> Eval(const ExprPtr& node) {
    auto it = memo_.find(node.get());
    if (it != memo_.end()) {
      if (stats_) stats_->memo_hits++;
      DMML_COUNTER_INC("laopt.executor.memo_hits");
      return it->second;
    }
    DMML_ASSIGN_OR_RETURN(DenseMatrix result, EvalUncached(node));
    memo_.emplace(node.get(), result);
    return result;
  }

 private:
  Result<DenseMatrix> EvalUncached(const ExprPtr& node) {
    if (node->kind() == OpKind::kInput) {
      if (!node->matrix()) {
        return Status::FailedPrecondition(
            "cannot execute unbound placeholder '" +
            (node->name().empty() ? std::string("_") : node->name()) + "'");
      }
      return *node->matrix();
    }
    if (stats_) stats_->ops_executed++;

    std::vector<DenseMatrix> kids;
    kids.reserve(node->children().size());
    for (const auto& c : node->children()) {
      DMML_ASSIGN_OR_RETURN(DenseMatrix k, Eval(c));
      kids.push_back(std::move(k));
    }
    const size_t kind_idx = static_cast<size_t>(node->kind());
    const OpInstruments& instruments = OpInstruments::Get();
    instruments.count[kind_idx]->Add(1);
    obs::ScopedTimerUs op_timer(instruments.micros[kind_idx]);
    DMML_TRACE_SPAN(instruments.span_name[kind_idx].c_str());
    switch (node->kind()) {
      case OpKind::kMatMul:
        return la::Multiply(kids[0], kids[1], pool_);
      case OpKind::kTranspose:
        return la::Transpose(kids[0]);
      case OpKind::kAdd:
        return la::Add(kids[0], kids[1]);
      case OpKind::kSubtract:
        return la::Subtract(kids[0], kids[1]);
      case OpKind::kElemMul:
        return la::ElementwiseMultiply(kids[0], kids[1]);
      case OpKind::kScalarMul:
        return la::Scale(kids[0], node->scalar());
      case OpKind::kSum: {
        DenseMatrix out(1, 1);
        out.At(0, 0) = la::Sum(kids[0]);
        return out;
      }
      case OpKind::kRowSums:
        return la::RowSums(kids[0]);
      case OpKind::kColSums:
        return la::ColumnSums(kids[0]);
      case OpKind::kInput:
        break;  // Handled above.
    }
    return Status::Internal("unknown op kind in executor");
  }

  ThreadPool* pool_;
  ExecStats* stats_;
  std::unordered_map<const ExprNode*, DenseMatrix> memo_;
};

}  // namespace

Result<DenseMatrix> Execute(const ExprPtr& root, ThreadPool* pool, ExecStats* stats) {
  if (!root) return Status::InvalidArgument("Execute: null expression");
  DMML_TRACE_SPAN("laopt.execute");
  Evaluator evaluator(pool, stats);
  return evaluator.Eval(root);
}

Result<DenseMatrix> OptimizeAndExecute(const ExprPtr& root, ThreadPool* pool) {
  DMML_ASSIGN_OR_RETURN(ExprPtr optimized, Optimize(root));
  return Execute(optimized, pool);
}

}  // namespace dmml::laopt
