#include "laopt/executor.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "la/kernels.h"
#include "laopt/analysis.h"
#include "laopt/optimizer.h"
#include "laopt/profile.h"
#include "laopt/verify.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::laopt {

using la::DenseMatrix;
using la::SparseMatrix;

namespace {

constexpr size_t kNumOpKinds = static_cast<size_t>(OpKind::kScaleColumns) + 1;

// Per-op-kind instruments, resolved once. The names double as span labels so
// metrics and trace rows line up (e.g. counter laopt.executor.ops.matmul and
// span "laopt.op.matmul").
struct OpInstruments {
  std::array<obs::Counter*, kNumOpKinds> count;
  std::array<obs::Counter*, kNumOpKinds> micros;
  // Span names must outlive the trace rings; the instance below is immortal
  // (leaked but always reachable, so LeakSanitizer stays quiet).
  std::array<std::string, kNumOpKinds> span_name;

  static const OpInstruments& Get() {
    static const OpInstruments* instruments = [] {
      auto* out = new OpInstruments();
      auto& reg = obs::MetricsRegistry::Global();
      for (size_t k = 0; k < kNumOpKinds; ++k) {
        const char* name = OpKindName(static_cast<OpKind>(k));
        out->count[k] = reg.GetCounter(std::string("laopt.executor.ops.") + name);
        out->micros[k] =
            reg.GetCounter(std::string("laopt.executor.op_us.") + name);
        out->span_name[k] = std::string("laopt.op.") + name;
      }
      return out;
    }();
    return *instruments;
  }
};

// Inter-node scheduler instruments.
struct SchedInstruments {
  obs::Counter* runs;              ///< Inter-node Run()s started.
  obs::Counter* nodes_launched;    ///< Dataflow tasks submitted to the pool.
  obs::Counter* pool_shared_runs;  ///< Inter-node runs on GlobalThreadPool().
  obs::Counter* buffer_conflicts;  ///< Failed pool-buffer write claims (== 0).
  obs::Gauge* max_ready_width;     ///< Peak in-flight tasks of any run so far.
  obs::Histogram* ready_width;     ///< In-flight width sampled at each launch.

  static const SchedInstruments& Get() {
    static const SchedInstruments inst = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return SchedInstruments{
          reg.GetCounter("laopt.sched.runs"),
          reg.GetCounter("laopt.sched.nodes_launched"),
          reg.GetCounter("laopt.sched.pool_shared_runs"),
          reg.GetCounter("laopt.sched.buffer_conflicts"),
          reg.GetGauge("laopt.sched.max_ready_width"),
          reg.GetHistogram("laopt.sched.ready_width",
                           obs::ExponentialBuckets(1, 2, 8)),
      };
    }();
    return inst;
  }
};

// Nonzeros actually materialized in a dense buffer — the ground truth the
// analyzer's sparsity estimate is calibrated against.
uint64_t CountDenseNnz(const DenseMatrix& m) {
  uint64_t nnz = 0;
  const double* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) nnz += data[i] != 0.0;
  return nnz;
}

// Accumulated-child-time cell for inter-node runs: tasks on pool threads
// each fold their own recursion, so the serial member cell cannot be shared.
thread_local uint64_t t_child_us = 0;  // NOLINT(misc-use-internal-linkage)

// Nodes the serial executor may absorb into a consumer's fused kernel
// instead of executing: the transpose operand of a matmul (t(U)·V, t(U)·U,
// U·t(V)) and the G⊙G under rowSums. These get no dataflow task of their
// own — whichever consumer needs the materialized value evaluates them
// inline, exactly as the serial repr-dependent fall-through does.
void AddAbsorbable(const ExprNode* n,
                   std::unordered_set<const ExprNode*>* absorbable) {
  if (n->kind() == OpKind::kMatMul && n->children().size() == 2) {
    const ExprPtr& lc = n->children()[0];
    const ExprPtr& rc = n->children()[1];
    if (lc && lc->kind() == OpKind::kTranspose && lc->children().size() == 1) {
      absorbable->insert(lc.get());
    } else if (rc && rc->kind() == OpKind::kTranspose &&
               rc->children().size() == 1) {
      absorbable->insert(rc.get());
    }
  }
  if (n->kind() == OpKind::kRowSums && !n->children().empty()) {
    const ExprPtr& c = n->children()[0];
    if (c && c->kind() == OpKind::kElemMul && c->children().size() == 2 &&
        c->children()[0] && c->children()[0].get() == c->children()[1].get()) {
      absorbable->insert(c.get());
    }
  }
}

std::unordered_set<const ExprNode*> AbsorbablePositions(
    const PlanSchedule& schedule) {
  std::unordered_set<const ExprNode*> absorbable;
  for (const ScheduleEntry& e : schedule.order()) {
    AddAbsorbable(e.node, &absorbable);
  }
  return absorbable;
}

}  // namespace

// Which kernel family executed a node — the laopt.repr.* dispatch counters.
void BufferedExecutor::CountDispatch(Slot& slot, Repr repr) {
  slot.last_dispatch = repr;
  switch (repr) {
    case Repr::kDense:
      DMML_COUNTER_INC("laopt.repr.dense_ops");
      break;
    case Repr::kSparse:
      DMML_COUNTER_INC("laopt.repr.sparse_ops");
      break;
    case Repr::kCompressed:
      DMML_COUNTER_INC("laopt.repr.compressed_ops");
      break;
    case Repr::kFactorized:
      DMML_COUNTER_INC("laopt.repr.factorized_ops");
      break;
  }
}

void BufferedExecutor::RecordNodeProfile(const ExprPtr& node, const Slot& slot,
                                         uint64_t incl_us, uint64_t self_us) {
  const Value& v = slot.out;
  size_t rows = 0;
  size_t cols = 0;
  uint64_t nnz = 0;
  switch (v.repr) {
    case Repr::kDense:
      rows = v.d->rows();
      cols = v.d->cols();
      nnz = CountDenseNnz(*v.d);
      break;
    case Repr::kSparse:
      rows = v.s->rows();
      cols = v.s->cols();
      nnz = v.s->nnz();
      break;
    case Repr::kCompressed:
      // Compressed values never carry an exact nnz without decompressing;
      // report dense (the conservative assumption, matching the analyzer).
      rows = v.c->rows();
      cols = v.c->cols();
      nnz = static_cast<uint64_t>(rows) * cols;
      break;
    case Repr::kFactorized:
      // Matrix-free operators expose only their logical shape.
      rows = v.lo->rows();
      cols = v.lo->cols();
      nnz = static_cast<uint64_t>(rows) * cols;
      break;
  }
  profile_->AddNodeSample(node.get(), incl_us, self_us, slot.last_dispatch,
                          v.repr, rows, cols, nnz);
}

uint64_t& BufferedExecutor::child_us_accum() {
  return par_run_ ? t_child_us : prof_child_us_;
}

bool BufferedExecutor::inter_node() const {
  if (inter_node_ >= 0) return inter_node_ != 0;
  static const int env_default = [] {
    const char* e = std::getenv("DMML_INTER_NODE");  // NOLINT(concurrency-mt-unsafe)
    if (e == nullptr || e[0] == '\0') return -1;
    return (e[0] == '0' && e[1] == '\0') ? 0 : 1;
  }();
  if (env_default >= 0) return env_default != 0;
  return true;
}

la::DenseMatrix* BufferedExecutor::BufferFor(const ExprNode* node,
                                             size_t* pool_id) {
  *pool_id = SIZE_MAX;
  if (current_assign_ != nullptr) {
    const auto it = current_assign_->find(node);
    if (it != current_assign_->end()) {
      if (it->second >= pool_buffers_.size()) {
        pool_buffers_.resize(it->second + 1);
      }
      auto& buf = pool_buffers_[it->second];
      if (!buf) {
        buf = std::make_unique<DenseMatrix>();
        DMML_COUNTER_INC("laopt.executor.pool_buffers");
      }
      *pool_id = it->second;
      return buf.get();
    }
  }
  return &dedicated_[node];
}

Status BufferedExecutor::PreparePlan(const ExprPtr& root) {
  if (VerifyEnabled()) {
    // Covers plans that never went through the optimizer pipeline (e.g. the
    // trainers build DAGs directly): a structurally broken plan is rejected
    // here, before any kernel touches a buffer.
    DMML_RETURN_IF_ERROR(DiagnosticsToStatus("executor", VerifyPlan(root)));
  }
  PreparedPlan plan;
  const bool want_par = pool_ != nullptr && inter_node();
  if (buffer_sharing_ || want_par) {
    // A schedule failure (e.g. in release builds with the verifier off) is
    // not an execution error — fall back to serial, dedicated buffers.
    Result<PlanSchedule> schedule = ComputeSchedule(root);
    if (schedule.ok()) {
      std::unordered_set<const ExprNode*> absorbable;
      if (want_par) absorbable = AbsorbablePositions(*schedule);
      if (buffer_sharing_) {
        // Linear-scan allocation over [def, last_use] live ranges in schedule
        // order. Expiry is strict (< def): a value read *at* this position is
        // still live, so an operand can never share with its consumer. The
        // root keeps a dedicated buffer (its value outlives the Run), and
        // leaves write no buffers at all.
        //
        // Inter-node plans strengthen the interference test: serial order no
        // longer implies temporal order, so a candidate may take over a
        // retired buffer only when the dependency closure proves it launches
        // after every task that can still read the previous value — "live
        // ranges overlap or the nodes may run concurrently" both veto
        // sharing. Absorbable nodes (executed inside a consumer's window, if
        // at all) keep dedicated buffers under inter-node plans.
        const size_t n = schedule->order().size();
        std::vector<std::vector<size_t>> eff_readers;
        if (want_par) {
          std::vector<std::vector<size_t>> readers(n);
          for (const ScheduleEntry& e : schedule->order()) {
            for (const ExprNode* read : OperandReads(e.node)) {
              const ScheduleEntry* src = schedule->Find(read);
              if (src != nullptr) readers[src->def].push_back(e.def);
            }
          }
          // Task-level readers: an absorbable reader executes inside *its*
          // readers' windows, so it expands (in reverse schedule order, as
          // readers always sit later) to the scheduled tasks above it.
          eff_readers.resize(n);
          for (size_t p = n; p-- > 0;) {
            for (const size_t d : readers[p]) {
              const ExprNode* dn = schedule->order()[d].node;
              if (dn->kind() != OpKind::kInput && absorbable.count(dn) == 0) {
                eff_readers[p].push_back(d);
              } else {
                eff_readers[p].insert(eff_readers[p].end(),
                                      eff_readers[d].begin(),
                                      eff_readers[d].end());
              }
            }
            std::sort(eff_readers[p].begin(), eff_readers[p].end());
            eff_readers[p].erase(
                std::unique(eff_readers[p].begin(), eff_readers[p].end()),
                eff_readers[p].end());
          }
        }
        struct Active {
          size_t last_use;
          size_t id;
          size_t holder;  ///< Schedule position of the buffer's last writer.
        };
        const auto later = [](const Active& a, const Active& b) {
          return a.last_use > b.last_use;  // Min-heap on last_use.
        };
        std::vector<Active> active;
        struct FreeBuf {
          size_t id;
          size_t holder;
        };
        std::vector<FreeBuf> free_bufs;
        for (const ScheduleEntry& e : schedule->order()) {
          if (e.node->kind() == OpKind::kInput) continue;
          if (e.last_use == SIZE_MAX) continue;
          if (want_par && absorbable.count(e.node) != 0) continue;
          while (!active.empty() && active.front().last_use < e.def) {
            free_bufs.push_back({active.front().id, active.front().holder});
            std::pop_heap(active.begin(), active.end(), later);
            active.pop_back();
          }
          size_t id = SIZE_MAX;
          if (!want_par) {
            if (!free_bufs.empty()) {
              id = free_bufs.back().id;
              free_bufs.pop_back();
            }
          } else {
            for (size_t f = 0; f < free_bufs.size(); ++f) {
              const std::vector<size_t>& readers = eff_readers[free_bufs[f].holder];
              const bool ordered = std::all_of(
                  readers.begin(), readers.end(), [&](size_t t) {
                    return t == e.def || schedule->DependsOnPos(e.def, t);
                  });
              if (ordered) {
                id = free_bufs[f].id;
                free_bufs[f] = free_bufs.back();
                free_bufs.pop_back();
                break;
              }
            }
          }
          if (id == SIZE_MAX) {
            id = next_buffer_id_++;
          } else {
            DMML_COUNTER_INC("laopt.executor.buffers_shared");
          }
          plan.assign.emplace(e.node, id);
          active.push_back({e.last_use, id, e.def});
          std::push_heap(active.begin(), active.end(), later);
        }
        DMML_COUNTER_ADD("laopt.executor.pooled_nodes", plan.assign.size());
      }
      if (want_par) {
        plan.par = BuildParallelPlan(root, *schedule, absorbable, plan.assign);
      }
    }
  }
  assignments_.emplace(root.get(), std::move(plan));
  return Status::OK();
}

Result<BufferedExecutor::PreparedPlan> BufferedExecutor::PrepareMultiPlan(
    const std::vector<ExprPtr>& roots) {
  if (VerifyEnabled()) {
    for (const ExprPtr& r : roots) {
      DMML_RETURN_IF_ERROR(DiagnosticsToStatus("executor", VerifyPlan(r)));
    }
  }
  PreparedPlan plan;
  if (pool_ != nullptr && inter_node()) {
    // Children-first postorder over the union of roots; shared sub-DAGs
    // (e.g. the bound X leaf every fold branch reads) appear once.
    std::vector<const ExprNode*> order;
    std::unordered_set<const ExprNode*> seen;
    std::function<void(const ExprNode*)> post =
        [&](const ExprNode* n) {  // NOLINT(misc-no-recursion)
          if (n == nullptr || !seen.insert(n).second) return;
          for (const auto& c : n->children()) post(c.get());
          order.push_back(n);
        };
    for (const ExprPtr& r : roots) post(r.get());
    std::unordered_set<const ExprNode*> absorbable;
    for (const ExprNode* n : order) AddAbsorbable(n, &absorbable);
    // A root absorbed into another root's consumer would never publish its
    // own value — roots always get a task.
    for (const ExprPtr& r : roots) absorbable.erase(r.get());
    plan.par = BuildParallelPlanFromOrder(roots, order, absorbable, plan.assign);
  }
  return plan;
}

std::unique_ptr<BufferedExecutor::ParallelPlan>
BufferedExecutor::BuildParallelPlan(
    const ExprPtr& root, const PlanSchedule& schedule,
    const std::unordered_set<const ExprNode*>& absorbable,
    const BufferAssignment& assign) {
  std::vector<const ExprNode*> order;
  order.reserve(schedule.order().size());
  for (const ScheduleEntry& e : schedule.order()) order.push_back(e.node);
  return BuildParallelPlanFromOrder({root}, order, absorbable, assign);
}

std::unique_ptr<BufferedExecutor::ParallelPlan>
BufferedExecutor::BuildParallelPlanFromOrder(
    const std::vector<ExprPtr>& roots,
    const std::vector<const ExprNode*>& order,
    const std::unordered_set<const ExprNode*>& absorbable,
    const BufferAssignment& assign) {
  auto par = std::make_unique<ParallelPlan>();

  // Shared-pointer handles for every plan node: tasks outlive the caller's
  // root references, and Eval takes ExprPtr.
  std::unordered_map<const ExprNode*, ExprPtr> ptrs;
  std::function<void(const ExprPtr&)> collect =
      [&](const ExprPtr& n) {  // NOLINT(misc-no-recursion)
        if (!n || !ptrs.emplace(n.get(), n).second) return;
        for (const auto& c : n->children()) collect(c);
      };
  for (const ExprPtr& r : roots) collect(r);

  std::unordered_map<const ExprNode*, uint32_t> task_index;
  for (const ExprNode* node : order) {
    Slot& slot = slots_[node];  // Pre-create: no rehash during the run.
    par->all_slots.push_back(&slot);
    if (node->kind() == OpKind::kInput) {
      par->leaves.emplace_back(ptrs.at(node), &slot);
      continue;
    }
    // Pre-create the dedicated entry for every node the pool did not cover
    // (including absorbable ones — a repr fall-through may execute them), so
    // BufferFor never mutates the map from a task thread.
    if (assign.count(node) == 0) dedicated_[node];
    if (absorbable.count(node) != 0) continue;
    task_index.emplace(node, static_cast<uint32_t>(par->tasks.size()));
    ParallelTask task;
    task.node = ptrs.at(node);
    task.slot = &slot;
    par->tasks.push_back(std::move(task));
  }
  par->root_slot = &slots_[roots.front().get()];
  par->root_slots.reserve(roots.size());
  for (const ExprPtr& r : roots) par->root_slots.push_back(&slots_[r.get()]);

  // Task-level dependencies: every read resolves to the task producing it —
  // leaves are prefilled (no dependency), absorbable reads dissolve into
  // their own reads (the consumer evaluates them inline, so it must wait for
  // their operands, not for them).
  par->deps_remaining =
      std::make_unique<std::atomic<uint32_t>[]>(par->tasks.size());
  for (uint32_t i = 0; i < par->tasks.size(); ++i) {
    std::set<uint32_t> deps;
    std::function<void(const ExprNode*)> add =
        [&](const ExprNode* r) {  // NOLINT(misc-no-recursion)
          if (r == nullptr || r->kind() == OpKind::kInput) return;
          const auto it = task_index.find(r);
          if (it != task_index.end()) {
            if (it->second != i) deps.insert(it->second);
            return;
          }
          for (const ExprNode* rr : OperandReads(r)) add(rr);
        };
    for (const ExprNode* r : OperandReads(par->tasks[i].node.get())) add(r);
    par->tasks[i].num_deps = static_cast<uint32_t>(deps.size());
    for (const uint32_t d : deps) par->tasks[d].consumers.push_back(i);
  }

  // Pre-size shared-buffer storage so task threads never grow containers.
  if (pool_buffers_.size() < next_buffer_id_) {
    pool_buffers_.resize(next_buffer_id_);
  }
  if (pool_writer_size_ < next_buffer_id_) {
    auto grown =
        std::make_unique<std::atomic<const ExprNode*>[]>(next_buffer_id_);
    for (size_t i = 0; i < next_buffer_id_; ++i) {
      grown[i].store(nullptr, std::memory_order_relaxed);
    }
    pool_writer_ = std::move(grown);
    pool_writer_size_ = next_buffer_id_;
  }
  return par;
}

Result<const DenseMatrix*> BufferedExecutor::Run(const ExprPtr& root,
                                                 ExecStats* stats) {
  if (!root) return Status::InvalidArgument("Execute: null expression");
  DMML_TRACE_SPAN("laopt.execute");
  auto prepared = assignments_.find(root.get());
  if (prepared == assignments_.end()) {
    DMML_RETURN_IF_ERROR(PreparePlan(root));
    prepared = assignments_.find(root.get());
  }
  PreparedPlan& plan = prepared->second;
  current_assign_ = &plan.assign;
  ++epoch_;
  run_tally_.Reset();
  if (profile_ != nullptr) {
    profile_->BeginRun(root);
    prof_child_us_ = 0;
  }
  // The tally folds into caller stats and the profile on every exit path: a
  // failed Eval/Densify still executed real ops, and BeginRun has already
  // recorded the root, so skipping EndRun on error would leave runs() and
  // the totals inconsistent with the per-node samples.
  struct RunFinalizer {
    BufferedExecutor* ex;
    ExecStats* stats;
    ~RunFinalizer() {
      const ExecStats run = ex->run_tally_.Snapshot();
      if (stats != nullptr) {
        stats->ops_executed += run.ops_executed;
        stats->memo_hits += run.memo_hits;
        stats->densify_fallbacks += run.densify_fallbacks;
      }
      if (ex->profile_ != nullptr) ex->profile_->EndRun(run);
    }
  } finalizer{this, stats};
  Value out;
  if (plan.par != nullptr && pool_ != nullptr && plan.par->tasks.size() > 1) {
    DMML_ASSIGN_OR_RETURN(out, RunInterNode(root, *plan.par));
  } else {
    DMML_ASSIGN_OR_RETURN(out, Eval(root));
  }
  // Callers receive dense results; a non-dense root (e.g. a bare sparse
  // leaf, or a transpose of one) is densified into executor storage.
  DMML_ASSIGN_OR_RETURN(const DenseMatrix* dense, Densify(root, out));
  return dense;
}

Result<std::vector<const DenseMatrix*>> BufferedExecutor::RunMany(
    const std::vector<ExprPtr>& roots, ExecStats* stats) {
  if (roots.empty()) return std::vector<const DenseMatrix*>{};
  if (roots.size() == 1) {
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* out, Run(roots[0], stats));
    return std::vector<const DenseMatrix*>{out};
  }
  for (const ExprPtr& r : roots) {
    if (!r) return Status::InvalidArgument("RunMany: null expression");
  }
  DMML_TRACE_SPAN("laopt.execute_many");
  // The profiler's run model is per-root; suspend it for the fused run
  // rather than mis-attributing every node to roots[0].
  PlanProfile* saved_profile = profile_;
  profile_ = nullptr;
  struct ProfileRestore {
    BufferedExecutor* ex;
    PlanProfile* saved;
    ~ProfileRestore() { ex->profile_ = saved; }
  } restore{this, saved_profile};

  std::vector<const ExprNode*> key;
  key.reserve(roots.size());
  for (const ExprPtr& r : roots) key.push_back(r.get());
  auto prepared = multi_plans_.find(key);
  if (prepared == multi_plans_.end()) {
    DMML_ASSIGN_OR_RETURN(PreparedPlan plan, PrepareMultiPlan(roots));
    prepared = multi_plans_.emplace(std::move(key), std::move(plan)).first;
  }
  PreparedPlan& plan = prepared->second;
  current_assign_ = &plan.assign;
  ++epoch_;
  run_tally_.Reset();
  struct RunFinalizer {
    BufferedExecutor* ex;
    ExecStats* stats;
    ~RunFinalizer() {
      if (stats != nullptr) {
        const ExecStats run = ex->run_tally_.Snapshot();
        stats->ops_executed += run.ops_executed;
        stats->memo_hits += run.memo_hits;
        stats->densify_fallbacks += run.densify_fallbacks;
      }
    }
  } finalizer{this, stats};

  std::vector<const DenseMatrix*> outs;
  outs.reserve(roots.size());
  if (plan.par != nullptr && pool_ != nullptr && plan.par->tasks.size() > 1) {
    DMML_RETURN_IF_ERROR(DriveInterNode(*plan.par));
    for (size_t i = 0; i < roots.size(); ++i) {
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* d,
                            Densify(roots[i], plan.par->root_slots[i]->out));
      outs.push_back(d);
    }
    return outs;
  }
  // Serial fallback: every root under ONE memo epoch, so shared sub-DAGs
  // still evaluate once across roots.
  for (const ExprPtr& r : roots) {
    DMML_ASSIGN_OR_RETURN(Value v, Eval(r));
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* d, Densify(r, v));
    outs.push_back(d);
  }
  return outs;
}

Result<BufferedExecutor::Value> BufferedExecutor::RunInterNode(
    const ExprPtr& /*root*/, ParallelPlan& par) {
  DMML_RETURN_IF_ERROR(DriveInterNode(par));
  return par.root_slot->out;
}

Status BufferedExecutor::DriveInterNode(ParallelPlan& par) {
  // Per-run resets happen on the driving thread, before any task exists;
  // the task launches below publish them.
  for (Slot* s : par.all_slots) {
    s->exec_state.store(0, std::memory_order_relaxed);
    s->aux_state.store(0, std::memory_order_relaxed);
    s->first_pending.store(false, std::memory_order_relaxed);
  }
  for (size_t i = 0; i < par.tasks.size(); ++i) {
    par.deps_remaining[i].store(par.tasks[i].num_deps,
                                std::memory_order_relaxed);
  }
  // Prefill every leaf (the serial kInput path, hoisted): bind errors
  // surface here, before any task launches.
  for (auto& [leaf, slot] : par.leaves) {
    const auto bound = binds_.find(leaf.get());
    const Operand& operand =
        bound != binds_.end() ? bound->second : leaf->operand();
    if (!operand.bound()) {
      return Status::FailedPrecondition(
          "cannot execute unbound placeholder '" +
          (leaf->name().empty() ? std::string("_") : leaf->name()) + "'");
    }
    switch (operand.repr()) {
      case Repr::kDense:
        slot->out = {Repr::kDense, operand.dense(), nullptr, nullptr};
        break;
      case Repr::kSparse:
        slot->out = {Repr::kSparse, nullptr, operand.sparse(), nullptr};
        break;
      case Repr::kCompressed:
        slot->out = {Repr::kCompressed, nullptr, nullptr, operand.compressed()};
        break;
      case Repr::kFactorized:
        slot->out = {Repr::kFactorized, nullptr, nullptr, nullptr,
                     operand.linear()};
        break;
    }
    slot->out.windowed = operand.windowed();
    slot->out.win_begin = operand.window_begin();
    slot->out.win_end = operand.window_end();
    slot->first_pending.store(true, std::memory_order_relaxed);
    slot->epoch.store(epoch_, std::memory_order_release);
  }
  run_failed_.store(false, std::memory_order_relaxed);
  first_error_ = Status::OK();
  sched_inflight_.store(0, std::memory_order_relaxed);
  sched_run_max_.store(0, std::memory_order_relaxed);

  const SchedInstruments& si = SchedInstruments::Get();
  si.runs->Add(1);
  if (pool_ == GlobalThreadPool()) si.pool_shared_runs->Add(1);

  WaitGroup wg;
  // Reset on every exit path: Wait rethrows the first exception a task body
  // raised (after the group has fully drained), and stale par-run state
  // would corrupt the next — serial — Run.
  struct ParRunGuard {
    BufferedExecutor* ex;
    ~ParRunGuard() {
      ex->par_run_ = false;
      ex->run_wg_ = nullptr;
    }
  } par_guard{this};
  run_wg_ = &wg;
  par_run_ = true;
  for (uint32_t i = 0; i < par.tasks.size(); ++i) {
    if (par.tasks[i].num_deps == 0) LaunchTask(par, i);
  }
  pool_->Wait(wg);

  // CAS-max: concurrent executors sharing GlobalThreadPool() finish runs
  // concurrently, and a read-then-set pair here could move the peak
  // backwards.
  si.max_ready_width->SetMax(
      static_cast<double>(sched_run_max_.load(std::memory_order_relaxed)));

  if (run_failed_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(err_mu_);
    return first_error_;
  }
  return Status::OK();
}

void BufferedExecutor::LaunchTask(ParallelPlan& par, uint32_t idx) {
  const SchedInstruments& si = SchedInstruments::Get();
  si.nodes_launched->Add(1);
  const uint32_t width =
      sched_inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint32_t cur = sched_run_max_.load(std::memory_order_relaxed);
  while (width > cur && !sched_run_max_.compare_exchange_weak(
                            cur, width, std::memory_order_relaxed)) {
  }
  si.ready_width->Observe(static_cast<double>(width));
  pool_->Submit(*run_wg_, [this, &par, idx] { RunTaskBody(par, idx); });
}

void BufferedExecutor::RunTaskBody(ParallelPlan& par, uint32_t idx) {
  ParallelTask& task = par.tasks[idx];
  if (!run_failed_.load(std::memory_order_acquire)) {
    const bool profiled = profile_ != nullptr;
    uint64_t saved_child_us = 0;
    uint64_t start_us = 0;
    if (profiled) {
      saved_child_us = t_child_us;
      t_child_us = 0;
      start_us = obs::NowMicros();
    }
    const Result<Value> r = Eval(task.node);
    if (profiled) {
      // A cooperatively-run task is child time from the viewpoint of
      // whatever profiled evaluation this thread was blocked in.
      t_child_us = saved_child_us + (obs::NowMicros() - start_us);
    }
    if (r.ok()) {
      // The serial executor's first consumer call is the one that executes
      // the node; here the task did, so the first post-completion read must
      // stay uncounted (see Slot::first_pending).
      task.slot->first_pending.store(true, std::memory_order_release);
    } else {
      std::lock_guard<std::mutex> lock(err_mu_);
      if (!run_failed_.load(std::memory_order_relaxed)) {
        first_error_ = r.status();
        run_failed_.store(true, std::memory_order_release);
      }
    }
  }
  sched_inflight_.fetch_sub(1, std::memory_order_relaxed);
  // Even after a failure the counters must drain so every consumer launches
  // (as a no-op) and the run's WaitGroup completes.
  for (const uint32_t c : task.consumers) {
    if (par.deps_remaining[c].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      LaunchTask(par, c);
    }
  }
}

Status BufferedExecutor::Bind(const ExprPtr& leaf, Operand operand) {
  if (!leaf || leaf->kind() != OpKind::kInput) {
    return Status::InvalidArgument("Bind: not an input leaf");
  }
  if (!operand.bound()) return Status::InvalidArgument("Bind: unbound operand");
  const bool rows_ok = leaf->rows() == ExprNode::kUnknownDim ||
                       leaf->rows() == operand.rows();
  const bool cols_ok = leaf->cols() == ExprNode::kUnknownDim ||
                       leaf->cols() == operand.cols();
  if (!rows_ok || !cols_ok) {
    return Status::InvalidArgument(
        "Bind: operand shape " + std::to_string(operand.rows()) + "x" +
        std::to_string(operand.cols()) + " contradicts leaf '" +
        (leaf->name().empty() ? std::string("_") : leaf->name()) + "'");
  }
  binds_[leaf.get()] = std::move(operand);
  return Status::OK();
}

Result<const DenseMatrix*> BufferedExecutor::Densify(const ExprPtr& owner,
                                                     const Value& v) {
  if (v.repr == Repr::kDense && !v.windowed) return v.d;
  Slot& slot = slots_[owner.get()];
  const void* src = v.repr == Repr::kDense        ? static_cast<const void*>(v.d)
                    : v.repr == Repr::kSparse     ? static_cast<const void*>(v.s)
                    : v.repr == Repr::kFactorized ? static_cast<const void*>(v.lo)
                                                  : static_cast<const void*>(v.c);
  PoolClaimScope steal_guard;
  if (par_run_) {
    // Claim the fill so concurrent consumers get one fully-published copy
    // (and one fallback count). Losing claimants spin-yield, never stealing
    // pool tasks — see AwaitConcurrentEval.
    for (;;) {
      if (slot.aux_state.load(std::memory_order_acquire) == 2) {
        return &slot.aux;
      }
      uint8_t expected = 0;
      if (slot.aux_state.compare_exchange_weak(expected, 1,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
        break;
      }
      std::this_thread::yield();
    }
    // The fill below may fan out on the pool (Decompress morsels); while
    // this claim is held its cooperative waits must not steal sibling node
    // tasks, which could spin on this very fill (see PoolClaimScope).
    steal_guard.Acquire();
  }
  // Publishes the claim's outcome on every exit path: valid on commit, back
  // to unchecked if the fill threw (a chunk exception rethrown by the
  // cooperative wait), so a spinning consumer retries instead of hanging.
  struct AuxClaim {
    Slot* slot = nullptr;
    bool committed = false;
    ~AuxClaim() {
      if (slot != nullptr) {
        slot->aux_state.store(committed ? 2 : 0, std::memory_order_release);
      }
    }
  } aux_claim;
  if (par_run_) aux_claim.slot = &slot;
  // One densified copy per node per run, shared by all consumers. The buffer
  // itself persists across runs; only the fill is repeated (leaf payloads
  // may be mutated in place between runs).
  if (slot.aux_epoch != epoch_ || slot.aux_src != src) {
    run_tally_.densify_fallbacks.fetch_add(1, std::memory_order_relaxed);
    DMML_COUNTER_INC("laopt.repr.densify_fallbacks");
    if (profile_ != nullptr) profile_->AddDensify(owner.get());
    if (v.windowed) {
      // Materialize only the window, window-relative. (The hot paths —
      // ranged matmuls — never come through here; this covers reductions
      // and elementwise consumers of a windowed leaf.)
      const size_t range = v.win_end - v.win_begin;
      switch (v.repr) {
        case Repr::kDense:
          slot.aux.Reshape(range, v.d->cols());
          std::copy(v.d->Row(v.win_begin), v.d->Row(v.win_begin) + range * v.d->cols(),
                    slot.aux.data());
          break;
        case Repr::kSparse:
          slot.aux.Reshape(range, v.s->cols());
          slot.aux.Fill(0.0);
          for (size_t r = v.win_begin; r < v.win_end; ++r) {
            for (size_t k = v.s->RowBegin(r); k < v.s->RowEnd(r); ++k) {
              slot.aux.At(r - v.win_begin, v.s->col_idx()[k]) = v.s->values()[k];
            }
          }
          break;
        case Repr::kCompressed:
          DMML_RETURN_IF_ERROR(
              v.c->DecompressRangeInto(v.win_begin, v.win_end, &slot.aux, pool_));
          break;
        case Repr::kFactorized:
          slot.aux = v.lo->Materialize(pool_).SliceRows(v.win_begin, v.win_end);
          break;
      }
    } else if (v.repr == Repr::kSparse) {
      slot.aux.Reshape(v.s->rows(), v.s->cols());
      slot.aux.Fill(0.0);
      for (size_t r = 0; r < v.s->rows(); ++r) {
        for (size_t k = v.s->RowBegin(r); k < v.s->RowEnd(r); ++k) {
          slot.aux.At(r, v.s->col_idx()[k]) = v.s->values()[k];
        }
      }
    } else if (v.repr == Repr::kFactorized) {
      slot.aux = v.lo->Materialize(pool_);
    } else {
      slot.aux = v.c->Decompress(pool_);
    }
    slot.aux_src = src;
    slot.aux_epoch = epoch_;
  }
  aux_claim.committed = true;
  return &slot.aux;
}

// Matmul is where representation dispatch earns its keep: beyond picking the
// kernel family from the operand representations, the transpose patterns
// t(U)·V, t(U)·U and U·t(V) are recognized structurally and routed to fused
// kernels that never materialize the transpose (SystemML-style physical
// operator selection).
Result<BufferedExecutor::Value> BufferedExecutor::EvalMatMul(
    const ExprPtr& node, Slot& slot) {
  const ExprPtr& lc = node->children()[0];
  const ExprPtr& rc = node->children()[1];

  if (lc->kind() == OpKind::kTranspose) {
    const ExprPtr& u = lc->children()[0];
    DMML_ASSIGN_OR_RETURN(Value uv, Eval(u));
    if (uv.repr == Repr::kDense) {
      if (rc.get() == u.get() && !uv.windowed) {
        // t(U) %*% U — the SYRK/Gram kernel, exactly as la::Gram computes it.
        if (profile_ != nullptr) profile_->AddFusedUse(lc.get());
        la::GramInto(*uv.d, slot.buf, pool_);
        CountDispatch(slot, Repr::kDense);
        return Value{Repr::kDense, slot.buf, nullptr, nullptr};
      }
      DMML_ASSIGN_OR_RETURN(Value vv, Eval(rc));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* vd, Densify(rc, vv));
      if (profile_ != nullptr) profile_->AddFusedUse(lc.get());
      if (uv.windowed) {
        // t(X[b:e)) %*% M with a window-relative M: the ranged fused kernel
        // reads X rows in place — the fold-training gradient path.
        la::TransposeMultiplyRangeInto(*uv.d, uv.win_begin, uv.win_end, *vd,
                                       slot.buf, pool_);
      } else {
        la::TransposeMultiplyInto(*uv.d, *vd, slot.buf, pool_);
      }
      CountDispatch(slot, Repr::kDense);
      return Value{Repr::kDense, slot.buf, nullptr, nullptr};
    }
    if (uv.repr == Repr::kCompressed) {
      DMML_ASSIGN_OR_RETURN(Value vv, Eval(rc));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* vd, Densify(rc, vv));
      if (profile_ != nullptr) profile_->AddFusedUse(lc.get());
      if (uv.windowed) {
        // Windowed t(X) %*% M (any k, including k = 1): the ranged group
        // kernels seek into [win_begin, win_end) positionally.
        DMML_RETURN_IF_ERROR(uv.c->TransposeMultiplyMatrixRangeInto(
            *vd, uv.win_begin, uv.win_end, slot.buf, pool_));
      } else if (vd->cols() == 1) {
        // t(X) %*% v == (v^T X)^T: the dictionary-pre-aggregating
        // VectorMultiply produces 1 x d; reinterpret as d x 1 (identical
        // contiguous storage).
        DMML_RETURN_IF_ERROR(uv.c->VectorMultiplyInto(*vd, slot.buf, pool_));
        slot.buf->Reshape(slot.buf->cols(), 1);
      } else {
        DMML_RETURN_IF_ERROR(
            uv.c->TransposeMultiplyMatrixInto(*vd, slot.buf, pool_));
      }
      CountDispatch(slot, Repr::kCompressed);
      return Value{Repr::kDense, slot.buf, nullptr, nullptr};
    }
    if (uv.repr == Repr::kFactorized && !uv.windowed) {
      if (rc.get() == u.get()) {
        // t(T) %*% T — the factorized Gramian (Orion's cofactor
        // computation): block decomposition over the normalized tables, no
        // materialized join.
        if (profile_ != nullptr) profile_->AddFusedUse(lc.get());
        DMML_ASSIGN_OR_RETURN(*slot.buf, uv.lo->Gram(pool_));
        CountDispatch(slot, Repr::kFactorized);
        return Value{Repr::kDense, slot.buf, nullptr, nullptr};
      }
      // t(T) %*% M: factorized RMM — rows of M group-accumulate through the
      // join keys before touching the attribute tables.
      DMML_ASSIGN_OR_RETURN(Value vv, Eval(rc));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* vd, Densify(rc, vv));
      if (profile_ != nullptr) profile_->AddFusedUse(lc.get());
      DMML_ASSIGN_OR_RETURN(*slot.buf, uv.lo->TransposeMultiply(*vd, pool_));
      CountDispatch(slot, Repr::kFactorized);
      return Value{Repr::kDense, slot.buf, nullptr, nullptr};
    }
    if (uv.repr == Repr::kSparse) {
      DMML_ASSIGN_OR_RETURN(Value vv, Eval(rc));
      if (uv.windowed) {
        DMML_ASSIGN_OR_RETURN(const DenseMatrix* vd, Densify(rc, vv));
        if (profile_ != nullptr) profile_->AddFusedUse(lc.get());
        la::SparseTransposeMultiplyRangeInto(*uv.s, uv.win_begin, uv.win_end,
                                             *vd, slot.buf, pool_);
        CountDispatch(slot, Repr::kSparse);
        return Value{Repr::kDense, slot.buf, nullptr, nullptr};
      }
      if (vv.repr == Repr::kDense && !vv.windowed && vv.d->cols() == 1) {
        // t(S) %*% v == (v^T S)^T via the CSR Gevm reduction — no
        // materialized transpose; 1 x d reinterpreted as d x 1.
        if (profile_ != nullptr) profile_->AddFusedUse(lc.get());
        la::SparseGevmInto(*vv.d, *uv.s, slot.buf, pool_);
        slot.buf->Reshape(slot.buf->cols(), 1);
        CountDispatch(slot, Repr::kSparse);
        return Value{Repr::kDense, slot.buf, nullptr, nullptr};
      }
      // General t(S) %*% M: fall through — the generic path evaluates the
      // transpose node (materialized once as CSR) and dispatches on it.
    }
  } else if (rc->kind() == OpKind::kTranspose) {
    DMML_ASSIGN_OR_RETURN(Value av, Eval(lc));
    DMML_ASSIGN_OR_RETURN(Value bv, Eval(rc->children()[0]));
    if (av.repr == Repr::kDense && bv.repr == Repr::kDense && !av.windowed &&
        !bv.windowed) {
      if (profile_ != nullptr) profile_->AddFusedUse(rc.get());
      la::MultiplyTransposeBInto(*av.d, *bv.d, slot.buf, pool_);
      CountDispatch(slot, Repr::kDense);
      return Value{Repr::kDense, slot.buf, nullptr, nullptr};
    }
    // Non-dense operands: fall through to the generic path (the transpose
    // node evaluates against the memoized grandchild).
  }

  DMML_ASSIGN_OR_RETURN(Value a, Eval(lc));
  DMML_ASSIGN_OR_RETURN(Value b, Eval(rc));
  if (a.windowed) {
    // X[b:e) %*% M — the ranged kernels touch only the window's rows; the
    // shared-scan score pass over a fold's training window.
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* bd, Densify(rc, b));
    switch (a.repr) {
      case Repr::kDense:
        la::MultiplyRangeInto(*a.d, a.win_begin, a.win_end, *bd, slot.buf,
                              pool_);
        CountDispatch(slot, Repr::kDense);
        break;
      case Repr::kSparse:
        la::SparseMultiplyDenseRangeInto(*a.s, a.win_begin, a.win_end, *bd,
                                         slot.buf, pool_);
        CountDispatch(slot, Repr::kSparse);
        break;
      case Repr::kCompressed:
        DMML_RETURN_IF_ERROR(a.c->MultiplyMatrixRangeInto(
            *bd, a.win_begin, a.win_end, slot.buf, pool_));
        CountDispatch(slot, Repr::kCompressed);
        break;
      case Repr::kFactorized: {
        // No ranged factorized kernels — densify the window and run dense.
        DMML_ASSIGN_OR_RETURN(const DenseMatrix* ad, Densify(lc, a));
        la::MultiplyInto(*ad, *bd, slot.buf, pool_);
        CountDispatch(slot, Repr::kDense);
        break;
      }
    }
    return Value{Repr::kDense, slot.buf, nullptr, nullptr};
  }
  switch (a.repr) {
    case Repr::kSparse: {
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* bd, Densify(rc, b));
      if (bd->cols() == 1) {
        la::SparseGemvInto(*a.s, *bd, slot.buf, pool_);
      } else {
        la::SparseMultiplyDenseInto(*a.s, *bd, slot.buf, pool_);
      }
      CountDispatch(slot, Repr::kSparse);
      break;
    }
    case Repr::kCompressed: {
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* bd, Densify(rc, b));
      if (bd->cols() == 1) {
        DMML_RETURN_IF_ERROR(a.c->MultiplyVectorInto(*bd, slot.buf, pool_));
      } else {
        DMML_RETURN_IF_ERROR(a.c->MultiplyMatrixInto(*bd, slot.buf, pool_));
      }
      CountDispatch(slot, Repr::kCompressed);
      break;
    }
    case Repr::kFactorized: {
      // T %*% M: factorized LMM — per-table products hit each attribute
      // table once (nR rows) and gather through the foreign keys.
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* bd, Densify(rc, b));
      DMML_ASSIGN_OR_RETURN(*slot.buf, a.lo->Multiply(*bd, pool_));
      CountDispatch(slot, Repr::kFactorized);
      break;
    }
    case Repr::kDense: {
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* bd, Densify(rc, b));
      la::MultiplyInto(*a.d, *bd, slot.buf, pool_);
      CountDispatch(slot, Repr::kDense);
      break;
    }
  }
  return Value{Repr::kDense, slot.buf, nullptr, nullptr};
}

Result<BufferedExecutor::Value> BufferedExecutor::MemoReturn(
    const ExprPtr& node, Slot& slot) {
  if (par_run_ && slot.first_pending.exchange(false, std::memory_order_relaxed)) {
    // The read standing in for the serial executor's first consumer call —
    // the call that executes the node and counts nothing.
    return slot.out;
  }
  run_tally_.memo_hits.fetch_add(1, std::memory_order_relaxed);
  DMML_COUNTER_INC("laopt.executor.memo_hits");
  if (profile_ != nullptr && node->kind() != OpKind::kInput) {
    profile_->AddMemoHit(node.get());
  }
  return slot.out;
}

Result<BufferedExecutor::Value> BufferedExecutor::AwaitConcurrentEval(
    const ExprPtr& node, Slot& slot) {
  for (;;) {
    const uint8_t s = slot.exec_state.load(std::memory_order_acquire);
    if (s == 2) return MemoReturn(node, slot);
    if (s == 3) {
      return Status::Internal(
          "laopt: operand evaluation failed on another thread");
    }
    // Never run pool tasks here: a stolen task could itself wait on a claim
    // held lower in this very stack. Pure yielding is deadlock-free: claim
    // waits follow DAG edges and claim holders' own cooperative waits are
    // steal-restricted (PoolClaimScope), so the holder of the awaited claim
    // is always making real progress.
    std::this_thread::yield();
  }
}

Result<BufferedExecutor::Value> BufferedExecutor::Eval(const ExprPtr& node) {
  // unordered_map element references are stable across the recursive inserts
  // below, so holding `slot` through child evaluation is safe. (Inter-node
  // plans pre-create every slot, so task threads never insert.)
  Slot& slot = slots_[node.get()];
  if (slot.epoch.load(std::memory_order_acquire) == epoch_) {
    return MemoReturn(node, slot);
  }

  if (node->kind() == OpKind::kInput) {
    auto bound = binds_.find(node.get());
    const Operand& operand =
        bound != binds_.end() ? bound->second : node->operand();
    if (!operand.bound()) {
      return Status::FailedPrecondition(
          "cannot execute unbound placeholder '" +
          (node->name().empty() ? std::string("_") : node->name()) + "'");
    }
    switch (operand.repr()) {
      case Repr::kDense:
        slot.out = {Repr::kDense, operand.dense(), nullptr, nullptr};
        break;
      case Repr::kSparse:
        slot.out = {Repr::kSparse, nullptr, operand.sparse(), nullptr};
        break;
      case Repr::kCompressed:
        slot.out = {Repr::kCompressed, nullptr, nullptr, operand.compressed()};
        break;
      case Repr::kFactorized:
        slot.out = {Repr::kFactorized, nullptr, nullptr, nullptr,
                    operand.linear()};
        break;
    }
    slot.out.windowed = operand.windowed();
    slot.out.win_begin = operand.window_begin();
    slot.out.win_end = operand.window_end();
    slot.epoch.store(epoch_, std::memory_order_release);
    return slot.out;
  }

  // Publishes the slot's final execution state on every exit path: done on
  // commit, failed otherwise (so concurrent waiters never hang on an
  // error), releasing the pool-buffer write claim either way.
  struct ExecClaim {
    Slot* slot = nullptr;
    std::atomic<const ExprNode*>* writer = nullptr;
    bool committed = false;
    ~ExecClaim() {
      if (slot == nullptr) return;
      if (writer != nullptr) writer->store(nullptr, std::memory_order_release);
      slot->exec_state.store(committed ? 2 : 3, std::memory_order_release);
    }
  };
  ExecClaim claim;
  PoolClaimScope steal_guard;
  if (par_run_) {
    uint8_t expected = 0;
    if (!slot.exec_state.compare_exchange_strong(expected, 1,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
      return AwaitConcurrentEval(node, slot);
    }
    claim.slot = &slot;
    // While this claim is held, cooperative waits inside the node's kernel
    // (ParallelForChunks morsels) may only run the kernel's own chunk tasks:
    // a stolen sibling node task could wait on this very claim, and the
    // frame holding it — below the thief on this stack — could never resume.
    steal_guard.Acquire();
  }
  run_tally_.ops_executed.fetch_add(1, std::memory_order_relaxed);

  const size_t kind_idx = static_cast<size_t>(node->kind());
  const OpInstruments& instruments = OpInstruments::Get();
  instruments.count[kind_idx]->Add(1);
  obs::ScopedTimerUs op_timer(instruments.micros[kind_idx]);
  DMML_TRACE_SPAN(instruments.span_name[kind_idx].c_str());

  // Profiling prologue: note the wall clock and open a fresh child-time
  // scope, so inclusive minus accumulated-child time yields self time.
  const bool profiled = profile_ != nullptr;
  uint64_t prof_start_us = 0;
  uint64_t saved_child_us = 0;
  if (profiled) {
    prof_start_us = obs::NowMicros();
    saved_child_us = child_us_accum();
    child_us_accum() = 0;
  }

  // Resolve the node's output buffer for this Run: assignments are
  // per-root, so a node shared between plans may write different storage
  // under each.
  size_t pool_id = SIZE_MAX;
  slot.buf = BufferFor(node.get(), &pool_id);
  if (par_run_ && pool_id != SIZE_MAX && pool_id < pool_writer_size_) {
    // Runtime check of the concurrency-aware assignment: exactly one
    // in-flight writer per pool buffer, or the conflict counter moves.
    const ExprNode* expected = nullptr;
    if (pool_writer_[pool_id].compare_exchange_strong(
            expected, node.get(), std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      claim.writer = &pool_writer_[pool_id];
    } else {
      SchedInstruments::Get().buffer_conflicts->Add(1);
    }
  }
  slot.out = {Repr::kDense, slot.buf, nullptr, nullptr};
  switch (node->kind()) {
    case OpKind::kMatMul: {
      DMML_ASSIGN_OR_RETURN(slot.out, EvalMatMul(node, slot));
      break;
    }
    case OpKind::kTranspose: {
      DMML_ASSIGN_OR_RETURN(Value a, Eval(node->children()[0]));
      if (a.repr == Repr::kSparse && !a.windowed) {
        // Transposes of sparse values stay CSR (O(nnz) counting transpose),
        // so t(S) %*% M downstream still runs sparse kernels. Windowed CSR
        // densifies instead (window-relative) before the dense transpose.
        slot.sbuf = la::SparseTranspose(*a.s);
        slot.out = {Repr::kSparse, nullptr, &slot.sbuf, nullptr};
        CountDispatch(slot, Repr::kSparse);
      } else {
        DMML_ASSIGN_OR_RETURN(const DenseMatrix* ad,
                              Densify(node->children()[0], a));
        la::TransposeInto(*ad, slot.buf, pool_);
        CountDispatch(slot, Repr::kDense);
      }
      break;
    }
    case OpKind::kAdd:
    case OpKind::kSubtract:
    case OpKind::kElemMul: {
      DMML_ASSIGN_OR_RETURN(Value a, Eval(node->children()[0]));
      DMML_ASSIGN_OR_RETURN(Value b, Eval(node->children()[1]));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* ad,
                            Densify(node->children()[0], a));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* bd,
                            Densify(node->children()[1], b));
      if (node->kind() == OpKind::kAdd) {
        la::AddInto(*ad, *bd, slot.buf);
      } else if (node->kind() == OpKind::kSubtract) {
        la::SubtractInto(*ad, *bd, slot.buf);
      } else {
        la::ElementwiseMultiplyInto(*ad, *bd, slot.buf);
      }
      CountDispatch(slot, Repr::kDense);
      break;
    }
    case OpKind::kScalarMul: {
      DMML_ASSIGN_OR_RETURN(Value a, Eval(node->children()[0]));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* ad,
                            Densify(node->children()[0], a));
      la::ScaleInto(*ad, node->scalar(), slot.buf);
      CountDispatch(slot, Repr::kDense);
      break;
    }
    case OpKind::kSum: {
      DMML_ASSIGN_OR_RETURN(Value a, Eval(node->children()[0]));
      slot.buf->Reshape(1, 1);
      if (a.windowed) {
        // Window-relative reductions run over the densified window copy; the
        // repr-native kernels below sum the full payload.
        DMML_ASSIGN_OR_RETURN(const DenseMatrix* ad,
                              Densify(node->children()[0], a));
        slot.buf->At(0, 0) = la::Sum(*ad, pool_);
        CountDispatch(slot, Repr::kDense);
      } else if (a.repr == Repr::kSparse) {
        slot.buf->At(0, 0) = la::SparseSum(*a.s);
        CountDispatch(slot, Repr::kSparse);
      } else if (a.repr == Repr::kCompressed) {
        slot.buf->At(0, 0) = a.c->Sum(pool_);
        CountDispatch(slot, Repr::kCompressed);
      } else if (a.repr == Repr::kFactorized) {
        // sum(T) == sum(colSums(T)): d values instead of n·d cells.
        DMML_ASSIGN_OR_RETURN(slot.aux, a.lo->ColumnSums(pool_));
        slot.buf->At(0, 0) = la::Sum(slot.aux, pool_);
        CountDispatch(slot, Repr::kFactorized);
      } else {
        slot.buf->At(0, 0) = la::Sum(*a.d, pool_);
        CountDispatch(slot, Repr::kDense);
      }
      break;
    }
    case OpKind::kRowSums: {
      const ExprPtr& ch = node->children()[0];
      // Fused squared-norms pattern: rowSums(G ⊙ G) over a non-dense G maps
      // to the representation's native row-squared-norms kernel — the k-means
      // distance expansion never decompresses X.
      if (ch->kind() == OpKind::kElemMul &&
          ch->children()[0].get() == ch->children()[1].get()) {
        DMML_ASSIGN_OR_RETURN(Value g, Eval(ch->children()[0]));
        if (g.windowed) {
          // Windowed G: the native row-squared-norms kernels read the full
          // payload; take the generic (densifying) path instead.
        } else if (g.repr == Repr::kCompressed) {
          if (profile_ != nullptr) profile_->AddFusedUse(ch.get());
          DMML_RETURN_IF_ERROR(g.c->RowSquaredNormsInto(slot.buf, pool_));
          CountDispatch(slot, Repr::kCompressed);
          break;
        } else if (g.repr == Repr::kSparse) {
          if (profile_ != nullptr) profile_->AddFusedUse(ch.get());
          la::SparseRowSquaredNormsInto(*g.s, slot.buf);
          CountDispatch(slot, Repr::kSparse);
          break;
        } else if (g.repr == Repr::kFactorized) {
          // rowSums(T ⊙ T) — per-table squared norms gathered through the
          // keys; the k-means distance expansion stays factorized.
          if (profile_ != nullptr) profile_->AddFusedUse(ch.get());
          DMML_ASSIGN_OR_RETURN(*slot.buf, g.lo->RowSquaredNorms(pool_));
          CountDispatch(slot, Repr::kFactorized);
          break;
        }
        // Dense G: the generic path below is already one fused pass short of
        // optimal but keeps op accounting unchanged.
      }
      DMML_ASSIGN_OR_RETURN(Value a, Eval(ch));
      if (a.windowed) {
        DMML_ASSIGN_OR_RETURN(const DenseMatrix* ad, Densify(ch, a));
        la::RowSumsInto(*ad, slot.buf, pool_);
        CountDispatch(slot, Repr::kDense);
      } else if (a.repr == Repr::kSparse) {
        la::SparseRowSumsInto(*a.s, slot.buf);
        CountDispatch(slot, Repr::kSparse);
      } else if (a.repr == Repr::kCompressed) {
        // rowSums(X) == X %*% 1: reuse this node's aux as the ones vector.
        slot.aux.Reshape(a.c->cols(), 1);
        slot.aux.Fill(1.0);
        DMML_RETURN_IF_ERROR(a.c->MultiplyVectorInto(slot.aux, slot.buf, pool_));
        CountDispatch(slot, Repr::kCompressed);
      } else if (a.repr == Repr::kFactorized) {
        // rowSums(T) == T %*% 1 through the factorized LMM.
        slot.aux.Reshape(a.lo->cols(), 1);
        slot.aux.Fill(1.0);
        DMML_ASSIGN_OR_RETURN(*slot.buf, a.lo->Multiply(slot.aux, pool_));
        CountDispatch(slot, Repr::kFactorized);
      } else {
        la::RowSumsInto(*a.d, slot.buf, pool_);
        CountDispatch(slot, Repr::kDense);
      }
      break;
    }
    case OpKind::kColSums: {
      DMML_ASSIGN_OR_RETURN(Value a, Eval(node->children()[0]));
      if (a.windowed) {
        DMML_ASSIGN_OR_RETURN(const DenseMatrix* ad,
                              Densify(node->children()[0], a));
        la::ColumnSumsInto(*ad, slot.buf, pool_);
        CountDispatch(slot, Repr::kDense);
      } else if (a.repr == Repr::kSparse) {
        la::SparseColumnSumsInto(*a.s, slot.buf);
        CountDispatch(slot, Repr::kSparse);
      } else if (a.repr == Repr::kCompressed) {
        // colSums(X) == 1^T X via the pre-aggregating VectorMultiply.
        slot.aux.Reshape(a.c->rows(), 1);
        slot.aux.Fill(1.0);
        DMML_RETURN_IF_ERROR(a.c->VectorMultiplyInto(slot.aux, slot.buf, pool_));
        CountDispatch(slot, Repr::kCompressed);
      } else if (a.repr == Repr::kFactorized) {
        // colSums(T) decomposes per table (Tᵀ1 block sums).
        DMML_ASSIGN_OR_RETURN(*slot.buf, a.lo->ColumnSums(pool_));
        CountDispatch(slot, Repr::kFactorized);
      } else {
        la::ColumnSumsInto(*a.d, slot.buf, pool_);
        CountDispatch(slot, Repr::kDense);
      }
      break;
    }
    case OpKind::kScaleColumns: {
      // out(i, j) = a(i, j) * s(0, j): per-column scaling of a dense value
      // by a 1 x cols row vector — the per-config step-size kernel of the
      // shared-scan trainer (column c carries config c's learning rate).
      DMML_ASSIGN_OR_RETURN(Value a, Eval(node->children()[0]));
      DMML_ASSIGN_OR_RETURN(Value s, Eval(node->children()[1]));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* ad,
                            Densify(node->children()[0], a));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* sd,
                            Densify(node->children()[1], s));
      la::ScaleColumnsInto(*ad, *sd, slot.buf);
      CountDispatch(slot, Repr::kDense);
      break;
    }
    case OpKind::kInput:
      return Status::Internal("unknown op kind in executor");
  }
  slot.epoch.store(epoch_, std::memory_order_release);
  claim.committed = true;
  if (profiled) {
    const uint64_t incl_us = obs::NowMicros() - prof_start_us;
    const uint64_t child_us = child_us_accum();
    RecordNodeProfile(node, slot, incl_us,
                      incl_us > child_us ? incl_us - child_us : 0);
    // This node's inclusive time is child time from the parent's viewpoint.
    child_us_accum() = saved_child_us + incl_us;
  }
  return slot.out;
}

Result<DenseMatrix> Execute(const ExprPtr& root, ThreadPool* pool, ExecStats* stats) {
  BufferedExecutor executor(pool);
  DMML_ASSIGN_OR_RETURN(const DenseMatrix* out, executor.Run(root, stats));
  return *out;  // Copies out of the executor's transient buffers.
}

Result<DenseMatrix> OptimizeAndExecute(const ExprPtr& root, ThreadPool* pool) {
  DMML_ASSIGN_OR_RETURN(ExprPtr optimized, Optimize(root));
  return Execute(optimized, pool);
}

}  // namespace dmml::laopt
