#include "laopt/executor.h"

#include <array>
#include <string>
#include <vector>

#include "la/kernels.h"
#include "laopt/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::laopt {

using la::DenseMatrix;

namespace {

constexpr size_t kNumOpKinds = static_cast<size_t>(OpKind::kColSums) + 1;

// Per-op-kind instruments, resolved once. The names double as span labels so
// metrics and trace rows line up (e.g. counter laopt.executor.ops.matmul and
// span "laopt.op.matmul").
struct OpInstruments {
  std::array<obs::Counter*, kNumOpKinds> count;
  std::array<obs::Counter*, kNumOpKinds> micros;
  // Span names must outlive the trace rings; the instance below is immortal
  // (leaked but always reachable, so LeakSanitizer stays quiet).
  std::array<std::string, kNumOpKinds> span_name;

  static const OpInstruments& Get() {
    static const OpInstruments* instruments = [] {
      auto* out = new OpInstruments();
      auto& reg = obs::MetricsRegistry::Global();
      for (size_t k = 0; k < kNumOpKinds; ++k) {
        const char* name = OpKindName(static_cast<OpKind>(k));
        out->count[k] = reg.GetCounter(std::string("laopt.executor.ops.") + name);
        out->micros[k] =
            reg.GetCounter(std::string("laopt.executor.op_us.") + name);
        out->span_name[k] = std::string("laopt.op.") + name;
      }
      return out;
    }();
    return *instruments;
  }
};

}  // namespace

Result<const DenseMatrix*> BufferedExecutor::Run(const ExprPtr& root,
                                                 ExecStats* stats) {
  if (!root) return Status::InvalidArgument("Execute: null expression");
  DMML_TRACE_SPAN("laopt.execute");
  ++epoch_;
  return Eval(root, stats);
}

Result<const DenseMatrix*> BufferedExecutor::Eval(const ExprPtr& node,
                                                  ExecStats* stats) {
  // unordered_map element references are stable across the recursive inserts
  // below, so holding `slot` through child evaluation is safe.
  Slot& slot = slots_[node.get()];
  if (slot.epoch == epoch_) {
    if (stats) stats->memo_hits++;
    DMML_COUNTER_INC("laopt.executor.memo_hits");
    return slot.out;
  }

  if (node->kind() == OpKind::kInput) {
    if (!node->matrix()) {
      return Status::FailedPrecondition(
          "cannot execute unbound placeholder '" +
          (node->name().empty() ? std::string("_") : node->name()) + "'");
    }
    slot.epoch = epoch_;
    slot.out = node->matrix().get();
    return slot.out;
  }
  if (stats) stats->ops_executed++;

  std::vector<const DenseMatrix*> kids;
  kids.reserve(node->children().size());
  for (const auto& c : node->children()) {
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* k, Eval(c, stats));
    kids.push_back(k);
  }

  const size_t kind_idx = static_cast<size_t>(node->kind());
  const OpInstruments& instruments = OpInstruments::Get();
  instruments.count[kind_idx]->Add(1);
  obs::ScopedTimerUs op_timer(instruments.micros[kind_idx]);
  DMML_TRACE_SPAN(instruments.span_name[kind_idx].c_str());
  switch (node->kind()) {
    case OpKind::kMatMul:
      la::MultiplyInto(*kids[0], *kids[1], &slot.buf, pool_);
      break;
    case OpKind::kTranspose:
      la::TransposeInto(*kids[0], &slot.buf, pool_);
      break;
    case OpKind::kAdd:
      la::AddInto(*kids[0], *kids[1], &slot.buf);
      break;
    case OpKind::kSubtract:
      la::SubtractInto(*kids[0], *kids[1], &slot.buf);
      break;
    case OpKind::kElemMul:
      la::ElementwiseMultiplyInto(*kids[0], *kids[1], &slot.buf);
      break;
    case OpKind::kScalarMul:
      la::ScaleInto(*kids[0], node->scalar(), &slot.buf);
      break;
    case OpKind::kSum:
      slot.buf.Reshape(1, 1);
      slot.buf.At(0, 0) = la::Sum(*kids[0], pool_);
      break;
    case OpKind::kRowSums:
      la::RowSumsInto(*kids[0], &slot.buf, pool_);
      break;
    case OpKind::kColSums:
      la::ColumnSumsInto(*kids[0], &slot.buf, pool_);
      break;
    case OpKind::kInput:
      return Status::Internal("unknown op kind in executor");
  }
  slot.epoch = epoch_;
  slot.out = &slot.buf;
  return slot.out;
}

Result<DenseMatrix> Execute(const ExprPtr& root, ThreadPool* pool, ExecStats* stats) {
  BufferedExecutor executor(pool);
  DMML_ASSIGN_OR_RETURN(const DenseMatrix* out, executor.Run(root, stats));
  return *out;  // Copies out of the executor's transient buffers.
}

Result<DenseMatrix> OptimizeAndExecute(const ExprPtr& root, ThreadPool* pool) {
  DMML_ASSIGN_OR_RETURN(ExprPtr optimized, Optimize(root));
  return Execute(optimized, pool);
}

}  // namespace dmml::laopt
