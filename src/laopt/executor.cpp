#include "laopt/executor.h"

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "la/kernels.h"
#include "laopt/analysis.h"
#include "laopt/optimizer.h"
#include "laopt/profile.h"
#include "laopt/verify.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::laopt {

using la::DenseMatrix;
using la::SparseMatrix;

namespace {

constexpr size_t kNumOpKinds = static_cast<size_t>(OpKind::kColSums) + 1;

// Per-op-kind instruments, resolved once. The names double as span labels so
// metrics and trace rows line up (e.g. counter laopt.executor.ops.matmul and
// span "laopt.op.matmul").
struct OpInstruments {
  std::array<obs::Counter*, kNumOpKinds> count;
  std::array<obs::Counter*, kNumOpKinds> micros;
  // Span names must outlive the trace rings; the instance below is immortal
  // (leaked but always reachable, so LeakSanitizer stays quiet).
  std::array<std::string, kNumOpKinds> span_name;

  static const OpInstruments& Get() {
    static const OpInstruments* instruments = [] {
      auto* out = new OpInstruments();
      auto& reg = obs::MetricsRegistry::Global();
      for (size_t k = 0; k < kNumOpKinds; ++k) {
        const char* name = OpKindName(static_cast<OpKind>(k));
        out->count[k] = reg.GetCounter(std::string("laopt.executor.ops.") + name);
        out->micros[k] =
            reg.GetCounter(std::string("laopt.executor.op_us.") + name);
        out->span_name[k] = std::string("laopt.op.") + name;
      }
      return out;
    }();
    return *instruments;
  }
};

// Nonzeros actually materialized in a dense buffer — the ground truth the
// analyzer's sparsity estimate is calibrated against.
uint64_t CountDenseNnz(const DenseMatrix& m) {
  uint64_t nnz = 0;
  const double* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) nnz += data[i] != 0.0;
  return nnz;
}

}  // namespace

// Which kernel family executed a node — the laopt.repr.* dispatch counters.
void BufferedExecutor::CountDispatch(Slot& slot, Repr repr) {
  slot.last_dispatch = repr;
  switch (repr) {
    case Repr::kDense:
      DMML_COUNTER_INC("laopt.repr.dense_ops");
      break;
    case Repr::kSparse:
      DMML_COUNTER_INC("laopt.repr.sparse_ops");
      break;
    case Repr::kCompressed:
      DMML_COUNTER_INC("laopt.repr.compressed_ops");
      break;
  }
}

void BufferedExecutor::RecordNodeProfile(const ExprPtr& node, const Slot& slot,
                                         uint64_t incl_us, uint64_t self_us) {
  const Value& v = slot.out;
  size_t rows = 0;
  size_t cols = 0;
  uint64_t nnz = 0;
  switch (v.repr) {
    case Repr::kDense:
      rows = v.d->rows();
      cols = v.d->cols();
      nnz = CountDenseNnz(*v.d);
      break;
    case Repr::kSparse:
      rows = v.s->rows();
      cols = v.s->cols();
      nnz = v.s->nnz();
      break;
    case Repr::kCompressed:
      // Compressed values never carry an exact nnz without decompressing;
      // report dense (the conservative assumption, matching the analyzer).
      rows = v.c->rows();
      cols = v.c->cols();
      nnz = static_cast<uint64_t>(rows) * cols;
      break;
  }
  profile_->AddNodeSample(node.get(), incl_us, self_us, slot.last_dispatch,
                          v.repr, rows, cols, nnz);
}

la::DenseMatrix* BufferedExecutor::BufferFor(const ExprNode* node) {
  if (current_assign_ != nullptr) {
    const auto it = current_assign_->find(node);
    if (it != current_assign_->end()) {
      if (it->second >= pool_buffers_.size()) {
        pool_buffers_.resize(it->second + 1);
      }
      auto& buf = pool_buffers_[it->second];
      if (!buf) {
        buf = std::make_unique<DenseMatrix>();
        DMML_COUNTER_INC("laopt.executor.pool_buffers");
      }
      return buf.get();
    }
  }
  return &dedicated_[node];
}

Status BufferedExecutor::PreparePlan(const ExprPtr& root) {
  if (VerifyEnabled()) {
    // Covers plans that never went through the optimizer pipeline (e.g. the
    // trainers build DAGs directly): a structurally broken plan is rejected
    // here, before any kernel touches a buffer.
    DMML_RETURN_IF_ERROR(DiagnosticsToStatus("executor", VerifyPlan(root)));
  }
  BufferAssignment assign;
  if (buffer_sharing_) {
    // A schedule failure (e.g. in release builds with the verifier off) is
    // not an execution error — fall back to dedicated per-node buffers.
    Result<PlanSchedule> schedule = ComputeSchedule(root);
    if (schedule.ok()) {
      // Linear-scan allocation over [def, last_use] live ranges in schedule
      // order. Expiry is strict (< def): a value read *at* this position is
      // still live, so an operand can never share with its consumer. The
      // root keeps a dedicated buffer (its value outlives the Run), and
      // leaves write no buffers at all.
      struct Active {
        size_t last_use;
        size_t id;
      };
      const auto later = [](const Active& a, const Active& b) {
        return a.last_use > b.last_use;  // Min-heap on last_use.
      };
      std::vector<Active> active;
      std::vector<size_t> free_ids;
      for (const ScheduleEntry& e : schedule->order()) {
        if (e.node->kind() == OpKind::kInput) continue;
        if (e.last_use == SIZE_MAX) continue;
        while (!active.empty() && active.front().last_use < e.def) {
          free_ids.push_back(active.front().id);
          std::pop_heap(active.begin(), active.end(), later);
          active.pop_back();
        }
        size_t id = 0;
        if (free_ids.empty()) {
          id = next_buffer_id_++;
        } else {
          id = free_ids.back();
          free_ids.pop_back();
          DMML_COUNTER_INC("laopt.executor.buffers_shared");
        }
        assign.emplace(e.node, id);
        active.push_back({e.last_use, id});
        std::push_heap(active.begin(), active.end(), later);
      }
      DMML_COUNTER_ADD("laopt.executor.pooled_nodes", assign.size());
    }
  }
  assignments_.emplace(root.get(), std::move(assign));
  return Status::OK();
}

Result<const DenseMatrix*> BufferedExecutor::Run(const ExprPtr& root,
                                                 ExecStats* stats) {
  if (!root) return Status::InvalidArgument("Execute: null expression");
  DMML_TRACE_SPAN("laopt.execute");
  auto prepared = assignments_.find(root.get());
  if (prepared == assignments_.end()) {
    DMML_RETURN_IF_ERROR(PreparePlan(root));
    prepared = assignments_.find(root.get());
  }
  current_assign_ = &prepared->second;
  ++epoch_;
  run_tally_ = ExecStats{};
  if (profile_ != nullptr) {
    profile_->BeginRun(root);
    prof_child_us_ = 0;
  }
  // The tally folds into caller stats and the profile on every exit path: a
  // failed Eval/Densify still executed real ops, and BeginRun has already
  // recorded the root, so skipping EndRun on error would leave runs() and
  // the totals inconsistent with the per-node samples.
  struct RunFinalizer {
    BufferedExecutor* ex;
    ExecStats* stats;
    ~RunFinalizer() {
      if (stats != nullptr) {
        stats->ops_executed += ex->run_tally_.ops_executed;
        stats->memo_hits += ex->run_tally_.memo_hits;
        stats->densify_fallbacks += ex->run_tally_.densify_fallbacks;
      }
      if (ex->profile_ != nullptr) ex->profile_->EndRun(ex->run_tally_);
    }
  } finalizer{this, stats};
  DMML_ASSIGN_OR_RETURN(Value out, Eval(root));
  // Callers receive dense results; a non-dense root (e.g. a bare sparse
  // leaf, or a transpose of one) is densified into executor storage.
  DMML_ASSIGN_OR_RETURN(const DenseMatrix* dense, Densify(root, out));
  return dense;
}

Status BufferedExecutor::Bind(const ExprPtr& leaf, Operand operand) {
  if (!leaf || leaf->kind() != OpKind::kInput) {
    return Status::InvalidArgument("Bind: not an input leaf");
  }
  if (!operand.bound()) return Status::InvalidArgument("Bind: unbound operand");
  const bool rows_ok = leaf->rows() == ExprNode::kUnknownDim ||
                       leaf->rows() == operand.rows();
  const bool cols_ok = leaf->cols() == ExprNode::kUnknownDim ||
                       leaf->cols() == operand.cols();
  if (!rows_ok || !cols_ok) {
    return Status::InvalidArgument(
        "Bind: operand shape " + std::to_string(operand.rows()) + "x" +
        std::to_string(operand.cols()) + " contradicts leaf '" +
        (leaf->name().empty() ? std::string("_") : leaf->name()) + "'");
  }
  binds_[leaf.get()] = std::move(operand);
  return Status::OK();
}

Result<const DenseMatrix*> BufferedExecutor::Densify(const ExprPtr& owner,
                                                     const Value& v) {
  if (v.repr == Repr::kDense) return v.d;
  Slot& slot = slots_[owner.get()];
  const void* src = v.repr == Repr::kSparse ? static_cast<const void*>(v.s)
                                            : static_cast<const void*>(v.c);
  // One densified copy per node per run, shared by all consumers. The buffer
  // itself persists across runs; only the fill is repeated (leaf payloads
  // may be mutated in place between runs).
  if (slot.aux_epoch != epoch_ || slot.aux_src != src) {
    run_tally_.densify_fallbacks++;
    DMML_COUNTER_INC("laopt.repr.densify_fallbacks");
    if (profile_ != nullptr) profile_->AddDensify(owner.get());
    if (v.repr == Repr::kSparse) {
      slot.aux.Reshape(v.s->rows(), v.s->cols());
      slot.aux.Fill(0.0);
      for (size_t r = 0; r < v.s->rows(); ++r) {
        for (size_t k = v.s->RowBegin(r); k < v.s->RowEnd(r); ++k) {
          slot.aux.At(r, v.s->col_idx()[k]) = v.s->values()[k];
        }
      }
    } else {
      slot.aux = v.c->Decompress(pool_);
    }
    slot.aux_src = src;
    slot.aux_epoch = epoch_;
  }
  return &slot.aux;
}

// Matmul is where representation dispatch earns its keep: beyond picking the
// kernel family from the operand representations, the transpose patterns
// t(U)·V, t(U)·U and U·t(V) are recognized structurally and routed to fused
// kernels that never materialize the transpose (SystemML-style physical
// operator selection).
Result<BufferedExecutor::Value> BufferedExecutor::EvalMatMul(
    const ExprPtr& node, Slot& slot) {
  const ExprPtr& lc = node->children()[0];
  const ExprPtr& rc = node->children()[1];

  if (lc->kind() == OpKind::kTranspose) {
    const ExprPtr& u = lc->children()[0];
    DMML_ASSIGN_OR_RETURN(Value uv, Eval(u));
    if (uv.repr == Repr::kDense) {
      if (rc.get() == u.get()) {
        // t(U) %*% U — the SYRK/Gram kernel, exactly as la::Gram computes it.
        if (profile_ != nullptr) profile_->AddFusedUse(lc.get());
        la::GramInto(*uv.d, slot.buf, pool_);
        CountDispatch(slot, Repr::kDense);
        return Value{Repr::kDense, slot.buf, nullptr, nullptr};
      }
      DMML_ASSIGN_OR_RETURN(Value vv, Eval(rc));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* vd, Densify(rc, vv));
      if (profile_ != nullptr) profile_->AddFusedUse(lc.get());
      la::TransposeMultiplyInto(*uv.d, *vd, slot.buf, pool_);
      CountDispatch(slot, Repr::kDense);
      return Value{Repr::kDense, slot.buf, nullptr, nullptr};
    }
    if (uv.repr == Repr::kCompressed) {
      DMML_ASSIGN_OR_RETURN(Value vv, Eval(rc));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* vd, Densify(rc, vv));
      if (profile_ != nullptr) profile_->AddFusedUse(lc.get());
      if (vd->cols() == 1) {
        // t(X) %*% v == (v^T X)^T: the dictionary-pre-aggregating
        // VectorMultiply produces 1 x d; reinterpret as d x 1 (identical
        // contiguous storage).
        DMML_RETURN_IF_ERROR(uv.c->VectorMultiplyInto(*vd, slot.buf, pool_));
        slot.buf->Reshape(slot.buf->cols(), 1);
      } else {
        DMML_RETURN_IF_ERROR(
            uv.c->TransposeMultiplyMatrixInto(*vd, slot.buf, pool_));
      }
      CountDispatch(slot, Repr::kCompressed);
      return Value{Repr::kDense, slot.buf, nullptr, nullptr};
    }
    if (uv.repr == Repr::kSparse) {
      DMML_ASSIGN_OR_RETURN(Value vv, Eval(rc));
      if (vv.repr == Repr::kDense && vv.d->cols() == 1) {
        // t(S) %*% v == (v^T S)^T via the CSR Gevm reduction — no
        // materialized transpose; 1 x d reinterpreted as d x 1.
        if (profile_ != nullptr) profile_->AddFusedUse(lc.get());
        la::SparseGevmInto(*vv.d, *uv.s, slot.buf, pool_);
        slot.buf->Reshape(slot.buf->cols(), 1);
        CountDispatch(slot, Repr::kSparse);
        return Value{Repr::kDense, slot.buf, nullptr, nullptr};
      }
      // General t(S) %*% M: fall through — the generic path evaluates the
      // transpose node (materialized once as CSR) and dispatches on it.
    }
  } else if (rc->kind() == OpKind::kTranspose) {
    DMML_ASSIGN_OR_RETURN(Value av, Eval(lc));
    DMML_ASSIGN_OR_RETURN(Value bv, Eval(rc->children()[0]));
    if (av.repr == Repr::kDense && bv.repr == Repr::kDense) {
      if (profile_ != nullptr) profile_->AddFusedUse(rc.get());
      la::MultiplyTransposeBInto(*av.d, *bv.d, slot.buf, pool_);
      CountDispatch(slot, Repr::kDense);
      return Value{Repr::kDense, slot.buf, nullptr, nullptr};
    }
    // Non-dense operands: fall through to the generic path (the transpose
    // node evaluates against the memoized grandchild).
  }

  DMML_ASSIGN_OR_RETURN(Value a, Eval(lc));
  DMML_ASSIGN_OR_RETURN(Value b, Eval(rc));
  switch (a.repr) {
    case Repr::kSparse: {
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* bd, Densify(rc, b));
      if (bd->cols() == 1) {
        la::SparseGemvInto(*a.s, *bd, slot.buf, pool_);
      } else {
        la::SparseMultiplyDenseInto(*a.s, *bd, slot.buf, pool_);
      }
      CountDispatch(slot, Repr::kSparse);
      break;
    }
    case Repr::kCompressed: {
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* bd, Densify(rc, b));
      if (bd->cols() == 1) {
        DMML_RETURN_IF_ERROR(a.c->MultiplyVectorInto(*bd, slot.buf, pool_));
      } else {
        DMML_RETURN_IF_ERROR(a.c->MultiplyMatrixInto(*bd, slot.buf, pool_));
      }
      CountDispatch(slot, Repr::kCompressed);
      break;
    }
    case Repr::kDense: {
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* bd, Densify(rc, b));
      la::MultiplyInto(*a.d, *bd, slot.buf, pool_);
      CountDispatch(slot, Repr::kDense);
      break;
    }
  }
  return Value{Repr::kDense, slot.buf, nullptr, nullptr};
}

Result<BufferedExecutor::Value> BufferedExecutor::Eval(const ExprPtr& node) {
  // unordered_map element references are stable across the recursive inserts
  // below, so holding `slot` through child evaluation is safe.
  Slot& slot = slots_[node.get()];
  if (slot.epoch == epoch_) {
    run_tally_.memo_hits++;
    DMML_COUNTER_INC("laopt.executor.memo_hits");
    if (profile_ != nullptr && node->kind() != OpKind::kInput) {
      profile_->AddMemoHit(node.get());
    }
    return slot.out;
  }

  if (node->kind() == OpKind::kInput) {
    auto bound = binds_.find(node.get());
    const Operand& operand =
        bound != binds_.end() ? bound->second : node->operand();
    if (!operand.bound()) {
      return Status::FailedPrecondition(
          "cannot execute unbound placeholder '" +
          (node->name().empty() ? std::string("_") : node->name()) + "'");
    }
    slot.epoch = epoch_;
    switch (operand.repr()) {
      case Repr::kDense:
        slot.out = {Repr::kDense, operand.dense(), nullptr, nullptr};
        break;
      case Repr::kSparse:
        slot.out = {Repr::kSparse, nullptr, operand.sparse(), nullptr};
        break;
      case Repr::kCompressed:
        slot.out = {Repr::kCompressed, nullptr, nullptr, operand.compressed()};
        break;
    }
    return slot.out;
  }
  run_tally_.ops_executed++;

  const size_t kind_idx = static_cast<size_t>(node->kind());
  const OpInstruments& instruments = OpInstruments::Get();
  instruments.count[kind_idx]->Add(1);
  obs::ScopedTimerUs op_timer(instruments.micros[kind_idx]);
  DMML_TRACE_SPAN(instruments.span_name[kind_idx].c_str());

  // Profiling prologue: note the wall clock and open a fresh child-time
  // scope, so inclusive minus accumulated-child time yields self time.
  const bool profiled = profile_ != nullptr;
  uint64_t prof_start_us = 0;
  uint64_t saved_child_us = 0;
  if (profiled) {
    prof_start_us = obs::NowMicros();
    saved_child_us = prof_child_us_;
    prof_child_us_ = 0;
  }

  // Resolve the node's output buffer for this Run: assignments are
  // per-root, so a node shared between plans may write different storage
  // under each.
  slot.buf = BufferFor(node.get());
  slot.out = {Repr::kDense, slot.buf, nullptr, nullptr};
  switch (node->kind()) {
    case OpKind::kMatMul: {
      DMML_ASSIGN_OR_RETURN(slot.out, EvalMatMul(node, slot));
      break;
    }
    case OpKind::kTranspose: {
      DMML_ASSIGN_OR_RETURN(Value a, Eval(node->children()[0]));
      if (a.repr == Repr::kSparse) {
        // Transposes of sparse values stay CSR (O(nnz) counting transpose),
        // so t(S) %*% M downstream still runs sparse kernels.
        slot.sbuf = la::SparseTranspose(*a.s);
        slot.out = {Repr::kSparse, nullptr, &slot.sbuf, nullptr};
        CountDispatch(slot, Repr::kSparse);
      } else {
        DMML_ASSIGN_OR_RETURN(const DenseMatrix* ad,
                              Densify(node->children()[0], a));
        la::TransposeInto(*ad, slot.buf, pool_);
        CountDispatch(slot, Repr::kDense);
      }
      break;
    }
    case OpKind::kAdd:
    case OpKind::kSubtract:
    case OpKind::kElemMul: {
      DMML_ASSIGN_OR_RETURN(Value a, Eval(node->children()[0]));
      DMML_ASSIGN_OR_RETURN(Value b, Eval(node->children()[1]));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* ad,
                            Densify(node->children()[0], a));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* bd,
                            Densify(node->children()[1], b));
      if (node->kind() == OpKind::kAdd) {
        la::AddInto(*ad, *bd, slot.buf);
      } else if (node->kind() == OpKind::kSubtract) {
        la::SubtractInto(*ad, *bd, slot.buf);
      } else {
        la::ElementwiseMultiplyInto(*ad, *bd, slot.buf);
      }
      CountDispatch(slot, Repr::kDense);
      break;
    }
    case OpKind::kScalarMul: {
      DMML_ASSIGN_OR_RETURN(Value a, Eval(node->children()[0]));
      DMML_ASSIGN_OR_RETURN(const DenseMatrix* ad,
                            Densify(node->children()[0], a));
      la::ScaleInto(*ad, node->scalar(), slot.buf);
      CountDispatch(slot, Repr::kDense);
      break;
    }
    case OpKind::kSum: {
      DMML_ASSIGN_OR_RETURN(Value a, Eval(node->children()[0]));
      slot.buf->Reshape(1, 1);
      if (a.repr == Repr::kSparse) {
        slot.buf->At(0, 0) = la::SparseSum(*a.s);
        CountDispatch(slot, Repr::kSparse);
      } else if (a.repr == Repr::kCompressed) {
        slot.buf->At(0, 0) = a.c->Sum(pool_);
        CountDispatch(slot, Repr::kCompressed);
      } else {
        slot.buf->At(0, 0) = la::Sum(*a.d, pool_);
        CountDispatch(slot, Repr::kDense);
      }
      break;
    }
    case OpKind::kRowSums: {
      const ExprPtr& ch = node->children()[0];
      // Fused squared-norms pattern: rowSums(G ⊙ G) over a non-dense G maps
      // to the representation's native row-squared-norms kernel — the k-means
      // distance expansion never decompresses X.
      if (ch->kind() == OpKind::kElemMul &&
          ch->children()[0].get() == ch->children()[1].get()) {
        DMML_ASSIGN_OR_RETURN(Value g, Eval(ch->children()[0]));
        if (g.repr == Repr::kCompressed) {
          if (profile_ != nullptr) profile_->AddFusedUse(ch.get());
          DMML_RETURN_IF_ERROR(g.c->RowSquaredNormsInto(slot.buf, pool_));
          CountDispatch(slot, Repr::kCompressed);
          break;
        }
        if (g.repr == Repr::kSparse) {
          if (profile_ != nullptr) profile_->AddFusedUse(ch.get());
          la::SparseRowSquaredNormsInto(*g.s, slot.buf);
          CountDispatch(slot, Repr::kSparse);
          break;
        }
        // Dense G: the generic path below is already one fused pass short of
        // optimal but keeps op accounting unchanged.
      }
      DMML_ASSIGN_OR_RETURN(Value a, Eval(ch));
      if (a.repr == Repr::kSparse) {
        la::SparseRowSumsInto(*a.s, slot.buf);
        CountDispatch(slot, Repr::kSparse);
      } else if (a.repr == Repr::kCompressed) {
        // rowSums(X) == X %*% 1: reuse this node's aux as the ones vector.
        slot.aux.Reshape(a.c->cols(), 1);
        slot.aux.Fill(1.0);
        DMML_RETURN_IF_ERROR(a.c->MultiplyVectorInto(slot.aux, slot.buf, pool_));
        CountDispatch(slot, Repr::kCompressed);
      } else {
        la::RowSumsInto(*a.d, slot.buf, pool_);
        CountDispatch(slot, Repr::kDense);
      }
      break;
    }
    case OpKind::kColSums: {
      DMML_ASSIGN_OR_RETURN(Value a, Eval(node->children()[0]));
      if (a.repr == Repr::kSparse) {
        la::SparseColumnSumsInto(*a.s, slot.buf);
        CountDispatch(slot, Repr::kSparse);
      } else if (a.repr == Repr::kCompressed) {
        // colSums(X) == 1^T X via the pre-aggregating VectorMultiply.
        slot.aux.Reshape(a.c->rows(), 1);
        slot.aux.Fill(1.0);
        DMML_RETURN_IF_ERROR(a.c->VectorMultiplyInto(slot.aux, slot.buf, pool_));
        CountDispatch(slot, Repr::kCompressed);
      } else {
        la::ColumnSumsInto(*a.d, slot.buf, pool_);
        CountDispatch(slot, Repr::kDense);
      }
      break;
    }
    case OpKind::kInput:
      return Status::Internal("unknown op kind in executor");
  }
  slot.epoch = epoch_;
  if (profiled) {
    const uint64_t incl_us = obs::NowMicros() - prof_start_us;
    const uint64_t child_us = prof_child_us_;
    RecordNodeProfile(node, slot, incl_us,
                      incl_us > child_us ? incl_us - child_us : 0);
    // This node's inclusive time is child time from the parent's viewpoint.
    prof_child_us_ = saved_child_us + incl_us;
  }
  return slot.out;
}

Result<DenseMatrix> Execute(const ExprPtr& root, ThreadPool* pool, ExecStats* stats) {
  BufferedExecutor executor(pool);
  DMML_ASSIGN_OR_RETURN(const DenseMatrix* out, executor.Run(root, stats));
  return *out;  // Copies out of the executor's transient buffers.
}

Result<DenseMatrix> OptimizeAndExecute(const ExprPtr& root, ThreadPool* pool) {
  DMML_ASSIGN_OR_RETURN(ExprPtr optimized, Optimize(root));
  return Execute(optimized, pool);
}

}  // namespace dmml::laopt
