#include "laopt/pipeline.h"

#include <cstdlib>
#include <cstring>

#include "laopt/executor.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace dmml::laopt {

namespace {

bool ExplainEnvEnabled() {
  const char* v = std::getenv("DMML_EXPLAIN");  // NOLINT(concurrency-mt-unsafe)
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

// Shared body of CompilePlan / CompileAndExecute: `analysis` (may be null
// when options.run_analysis is false) outlives the call so the executor's
// fusion guard can keep consulting it.
Result<ExprPtr> CompilePlanImpl(const ExprPtr& root, const PipelineOptions& options,
                                PlanReport* report, DagAnalysis* analysis) {
  if (!root) return Status::InvalidArgument("CompilePlan: null expression");
  if (report) {
    *report = PlanReport{};
    report->estimated_flops_in = EstimateFlops(root);
  }
  // Validate before rewriting: deferred-checked programs fail here with a
  // node-level diagnostic instead of inside a rewrite or the executor.
  if (analysis) {
    DMML_RETURN_IF_ERROR(analysis->Ensure(root).status());
    DMML_COUNTER_INC("laopt.analysis.runs");
    DMML_COUNTER_ADD("laopt.analysis.nodes", analysis->NumAnalyzed());
  }
  // Verifier pass over the *input* plan (checked builds / DMML_VERIFY=1).
  // Runs after the analyzer so shape-inconsistent programs keep their
  // established analyzer diagnostics; the verifier additionally catches what
  // the analyzer can't reject — cycles, arity violations, stale cached
  // shapes on hand-corrupted nodes.
  std::vector<Diagnostic> diags;
  if (VerifyEnabled()) {
    std::vector<Diagnostic> input = VerifyPlan(root);
    DMML_RETURN_IF_ERROR(DiagnosticsToStatus("input", input));
    diags.insert(diags.end(), input.begin(), input.end());
  }

  DMML_ASSIGN_OR_RETURN(
      ExprPtr plan,
      Optimize(root, options.rewrites, report ? &report->rewriter : nullptr,
               analysis));
  if (report) {
    diags.insert(diags.end(), report->rewriter.verify.begin(),
                 report->rewriter.verify.end());
  }
  if (options.run_cse) {
    DMML_ASSIGN_OR_RETURN(
        plan, EliminateCommonSubexpressions(plan, report ? &report->cse : nullptr));
    if (report) {
      diags.insert(diags.end(), report->cse.verify.begin(),
                   report->cse.verify.end());
    }
  }
  if (report) report->estimated_flops_out = EstimateFlops(plan);

  // Lint the final plan (opt-in via DMML_LINT=1): style/efficiency findings,
  // never fatal. Logged so they surface even without a report.
  if (LintEnabled()) {
    std::vector<Diagnostic> lint = LintPlan(plan);
    if (!lint.empty()) {
      DMML_LOG(Info) << "DMML_LINT\n" << RenderDiagnostics(lint);
    }
    diags.insert(diags.end(), lint.begin(), lint.end());
  }

  if (analysis) {
    DMML_ASSIGN_OR_RETURN(NodeAnalysis out, analysis->Ensure(plan));
    if (report) {
      report->analysis_nodes = analysis->NumAnalyzed();
      report->output_sparsity = out.sparsity;
      report->output_bytes_known = out.bytes_known;
      report->output_est_bytes = out.est_bytes;
    }
    const bool env_explain = ExplainEnvEnabled();
    if ((report && options.capture_explain) || env_explain) {
      std::string dump = analysis->Explain(plan);
      if (VerifyEnabled() || LintEnabled()) {
        dump += diags.empty() ? "diagnostics: none\n"
                              : "diagnostics:\n" + RenderDiagnostics(diags);
      }
      if (env_explain) DMML_LOG(Info) << "DMML_EXPLAIN\n" << dump;
      if (report && options.capture_explain) report->explain = std::move(dump);
    }
  }
  if (report) report->diagnostics = std::move(diags);
  return plan;
}

}  // namespace

Result<ExprPtr> CompilePlan(const ExprPtr& root, const PipelineOptions& options,
                            PlanReport* report) {
  DagAnalysis analysis(options.analysis);
  return CompilePlanImpl(root, options, report,
                         options.run_analysis ? &analysis : nullptr);
}

Result<la::DenseMatrix> CompileAndExecute(const ExprPtr& root,
                                          const PipelineOptions& options,
                                          PlanReport* report) {
  DagAnalysis analysis(options.analysis);
  DagAnalysis* ap = options.run_analysis ? &analysis : nullptr;
  DMML_ASSIGN_OR_RETURN(ExprPtr plan, CompilePlanImpl(root, options, report, ap));
  if (options.run_fusion) {
    FusionStats local_stats;
    FusionStats* stats = report ? &report->fusion : &local_stats;
    return ExecuteWithFusion(plan, options.fusion, stats, ap);
  }
  return Execute(plan);
}

}  // namespace dmml::laopt
