#include "laopt/pipeline.h"

#include "laopt/executor.h"

namespace dmml::laopt {

Result<ExprPtr> CompilePlan(const ExprPtr& root, const PipelineOptions& options,
                            PlanReport* report) {
  if (!root) return Status::InvalidArgument("CompilePlan: null expression");
  if (report) {
    *report = PlanReport{};
    report->estimated_flops_in = EstimateFlops(root);
  }
  DMML_ASSIGN_OR_RETURN(
      ExprPtr plan,
      Optimize(root, options.rewrites, report ? &report->rewriter : nullptr));
  if (options.run_cse) {
    DMML_ASSIGN_OR_RETURN(
        plan, EliminateCommonSubexpressions(plan, report ? &report->cse : nullptr));
  }
  if (report) report->estimated_flops_out = EstimateFlops(plan);
  return plan;
}

Result<la::DenseMatrix> CompileAndExecute(const ExprPtr& root,
                                          const PipelineOptions& options,
                                          PlanReport* report) {
  DMML_ASSIGN_OR_RETURN(ExprPtr plan, CompilePlan(root, options, report));
  if (options.run_fusion) {
    return ExecuteWithFusion(plan, report ? &report->fusion : nullptr);
  }
  return Execute(plan);
}

}  // namespace dmml::laopt
