/// \file parser.h
/// \brief A small declarative expression language over matrices — the
/// SystemML-DML-style front end to the laopt DAG.
///
/// Grammar (R/DML-flavored):
///
///   expr     := term (('+' | '-') term)*
///   term     := factor (('%*%' | '*') factor)*        // %*% = matmul,
///                                                     // '*'  = elementwise
///                                                     // or scalar multiply
///   factor   := NUMBER | IDENT | 't' '(' expr ')' | '(' expr ')'
///               | ('-') factor
///
/// Identifiers are resolved against a caller-supplied environment of named
/// matrices. Numeric literals act as scalars and may appear on either side
/// of '*'; scalar-scalar arithmetic is folded at parse time.
///
///   auto expr = ParseExpression("t(X) %*% (X %*% v) + 0.5 * v", env);
///
/// The result is an ordinary ExprPtr: optimize it, CSE it, execute it.
#ifndef DMML_LAOPT_PARSER_H_
#define DMML_LAOPT_PARSER_H_

#include <map>
#include <memory>
#include <string>

#include "la/dense_matrix.h"
#include "laopt/expr.h"
#include "laopt/operand.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace dmml::laopt {

/// \brief Named matrices visible to a parsed expression. Each entry may be
/// bound to any physical representation — dense, CSR sparse, or
/// CLA-compressed (laopt/operand.h); the same program source executes
/// against whichever representation the environment supplies, and the
/// executor picks matching kernels. Plain
/// `std::shared_ptr<la::DenseMatrix>` values keep working unchanged
/// (Operand converts implicitly).
using Environment = std::map<std::string, Operand>;

/// \brief Parser knobs.
struct ParseOptions {
  /// Build operator nodes without eager shape validation: the parse always
  /// succeeds structurally, and shape errors are reported by the plan-time
  /// analyzer (laopt/analysis.h) with a diagnostic naming the offending node
  /// and both operand shapes — instead of a terse combinator error here.
  bool defer_shape_checks = false;
};

/// \brief Parses `source` into an expression DAG over `env`.
///
/// Errors (syntax, unknown identifiers, shape mismatches) are reported with
/// the offending position; with ParseOptions::defer_shape_checks the shape
/// check moves to plan time.
Result<ExprPtr> ParseExpression(const std::string& source, const Environment& env);
Result<ExprPtr> ParseExpression(const std::string& source, const Environment& env,
                                const ParseOptions& options);

/// \brief Parse + optimize + execute in one call. The thread pool, if
/// given, parallelizes the executed kernels (it is threaded through to
/// OptimizeAndExecute — programs evaluated through the parser run on the
/// caller's pool, not serially).
Result<la::DenseMatrix> EvalExpression(const std::string& source,
                                       const Environment& env,
                                       ThreadPool* pool = nullptr);

class PlanProfile;

/// \brief EvalExpression with EXPLAIN ANALYZE instrumentation: the optimized
/// plan executes with `profile` attached (laopt/profile.h), so the caller
/// can render per-node actual time and estimate-vs-actual calibration for
/// the parsed program. A null `profile` behaves exactly like the overload
/// above.
Result<la::DenseMatrix> EvalExpression(const std::string& source,
                                       const Environment& env, ThreadPool* pool,
                                       PlanProfile* profile);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_PARSER_H_
