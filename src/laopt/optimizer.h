/// \file optimizer.h
/// \brief Logical rewrites over LA expression DAGs.
///
/// Implements the classic SystemML-style logical optimizations:
///  * transpose elimination: t(t(X)) → X
///  * scalar folding: α(βX) → (αβ)X, and scalar hoisting out of matmuls
///  * optimal matrix-chain ordering: flatten A·B·C·…, dynamic-programming
///    parenthesization by flop cost, rebuild. This turns e.g.
///    t(X)·(X·v) evaluated as (t(X)·X)·v — O(n·d²) — into the
///    O(n·d) two-gemv order automatically (and vice versa when profitable).
#ifndef DMML_LAOPT_OPTIMIZER_H_
#define DMML_LAOPT_OPTIMIZER_H_

#include <vector>

#include "laopt/analysis.h"
#include "laopt/expr.h"
#include "laopt/verify.h"

namespace dmml::laopt {

/// \brief Optimizer pass selection.
struct OptimizerOptions {
  bool eliminate_transposes = true;
  bool fold_scalars = true;
  bool reorder_chains = true;
};

/// \brief Rewrite statistics, for diagnostics and benchmarks.
struct OptimizerReport {
  size_t transposes_eliminated = 0;
  size_t scalars_folded = 0;
  size_t chains_reordered = 0;
  size_t chains_costed = 0;  ///< Chains run through the analyzer-backed DP.
  double flops_before = 0;
  double flops_after = 0;

  /// Non-fatal verifier diagnostics from the post-pass soundness check
  /// (checked builds; see laopt/verify.h). Error-severity findings abort
  /// Optimize with a Status instead of landing here.
  std::vector<Diagnostic> verify;
};

/// \brief Applies the enabled rewrites bottom-up; returns the rewritten DAG.
///
/// Matrix-chain reordering costs candidate orders with shapes and sparsity
/// estimates from `analysis` (laopt/analysis.h); when none is supplied a
/// private one is built on the fly. Chains containing unknown-dimension
/// factors are left in source order (no sizes to reason with).
Result<ExprPtr> Optimize(const ExprPtr& root, const OptimizerOptions& options = {},
                         OptimizerReport* report = nullptr,
                         DagAnalysis* analysis = nullptr);

/// \brief One matrix-chain factor as the DP sees it.
struct ChainFactor {
  size_t rows = 0;
  size_t cols = 0;
  double sparsity = 1.0;
};

/// \brief Optimal parenthesization cost (flops) of multiplying matrices with
/// the given (rows, cols) shapes in sequence, all assumed dense — exposed
/// for testing the DP.
double OptimalChainCost(const std::vector<std::pair<size_t, size_t>>& shapes);

/// \brief Sparsity-aware variant: gemm cost is discounted by the estimated
/// sparsity of the left operand (sparse-aware kernels skip zero cells), and
/// intermediate sparsities are propagated with the analyzer's matmul formula.
double OptimalSparseChainCost(const std::vector<ChainFactor>& factors);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_OPTIMIZER_H_
