/// \file optimizer.h
/// \brief Logical rewrites over LA expression DAGs.
///
/// Implements the classic SystemML-style logical optimizations:
///  * transpose elimination: t(t(X)) → X
///  * scalar folding: α(βX) → (αβ)X, and scalar hoisting out of matmuls
///  * optimal matrix-chain ordering: flatten A·B·C·…, dynamic-programming
///    parenthesization by flop cost, rebuild. This turns e.g.
///    t(X)·(X·v) evaluated as (t(X)·X)·v — O(n·d²) — into the
///    O(n·d) two-gemv order automatically (and vice versa when profitable).
#ifndef DMML_LAOPT_OPTIMIZER_H_
#define DMML_LAOPT_OPTIMIZER_H_

#include "laopt/expr.h"

namespace dmml::laopt {

/// \brief Optimizer pass selection.
struct OptimizerOptions {
  bool eliminate_transposes = true;
  bool fold_scalars = true;
  bool reorder_chains = true;
};

/// \brief Rewrite statistics, for diagnostics and benchmarks.
struct OptimizerReport {
  size_t transposes_eliminated = 0;
  size_t scalars_folded = 0;
  size_t chains_reordered = 0;
  double flops_before = 0;
  double flops_after = 0;
};

/// \brief Applies the enabled rewrites bottom-up; returns the rewritten DAG.
Result<ExprPtr> Optimize(const ExprPtr& root, const OptimizerOptions& options = {},
                         OptimizerReport* report = nullptr);

/// \brief Optimal parenthesization cost (flops) of multiplying matrices with
/// the given (rows, cols) shapes in sequence — exposed for testing the DP.
double OptimalChainCost(const std::vector<std::pair<size_t, size_t>>& shapes);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_OPTIMIZER_H_
