#include "laopt/profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "laopt/analysis.h"
#include "laopt/executor.h"
#include "obs/metrics.h"

namespace dmml::laopt {

namespace {

/// CSR-style footprint: values + column indices + row offsets, ~16 bytes per
/// stored nonzero — the same constant the plan-time analyzer uses, so the
/// est-vs-actual bytes comparison is apples to apples.
constexpr uint64_t kSparseBytesPerNnz = 16;

std::string FormatDouble3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string FormatMs(uint64_t us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(us) / 1000.0);
  return buf;
}

std::string FormatPct(double frac) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", frac * 100.0);
  return buf;
}

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Plan-time work estimate for one node, in the same units the optimizer's
/// chain costing thinks in (flops over estimated shapes, discounted by the
/// operand sparsity when the chosen representation skips zeros). Unknown
/// shapes cost 0 — they contribute nothing to the cost-share denominator.
double EstimatedFlops(const ExprNode* node, const DagAnalysis& analysis) {
  const NodeAnalysis* self = analysis.Find(node);
  if (self == nullptr || !self->shape.FullyKnown()) return 0.0;
  const double m = static_cast<double>(self->shape.rows.value);
  const double n = static_cast<double>(self->shape.cols.value);
  if (node->kind() == OpKind::kMatMul) {
    const NodeAnalysis* left = analysis.Find(node->children()[0].get());
    if (left == nullptr || !left->shape.cols.known) return 0.0;
    const double k = static_cast<double>(left->shape.cols.value);
    double discount =
        left->chosen_repr != Repr::kDense ? std::max(left->sparsity, 1e-6) : 1.0;
    return 2.0 * m * n * k * discount;
  }
  // Elementwise ops, transposes, and reductions all touch each output (or
  // input) cell once.
  return m * n;
}

/// The per-node calibration row shared by the text and JSON renderers.
struct CalibratedNode {
  const ExprNode* node = nullptr;
  const NodeProfile* prof = nullptr;   // nullptr: never executed
  const PlanEstimate* est = nullptr;   // nullptr: analysis failed / not seen
  double time_share = 0.0;  // self_us / sum(self_us) within the root
  double cost_share = 0.0;  // est_flops / sum(est_flops) within the root
};

/// Post-order walk collecting each distinct node of `root`'s sub-DAG once.
void CollectPostOrder(const ExprNode* node,
                      std::unordered_set<const ExprNode*>* seen,
                      std::vector<const ExprNode*>* out) {
  if (!seen->insert(node).second) return;
  for (const ExprPtr& child : node->children()) {
    CollectPostOrder(child.get(), seen, out);
  }
  out->push_back(node);
}

}  // namespace

uint64_t NodeProfile::ActualBytes() const {
  if (out_repr == Repr::kSparse) return out_nnz * kSparseBytesPerNnz;
  return static_cast<uint64_t>(out_rows) * out_cols * sizeof(double);
}

void PlanProfile::BeginRun(const ExprPtr& root) {
  DMML_COUNTER_INC("laopt.profile.runs");
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool known = false;
    for (const ExprPtr& r : roots_) known = known || r.get() == root.get();
    if (known) return;
  }

  // First sighting of this root: capture the estimate side now, while the
  // imminent Run() guarantees every bound operand is alive. Renders join
  // against this cache and never touch operands again — a later scrape must
  // stay safe even after non-owning leaf referents have died.
  Result<DagAnalysis> analysis = AnalyzeDag(root);
  std::unordered_map<const ExprNode*, PlanEstimate> captured;
  std::string error;
  if (analysis.ok()) {
    std::unordered_set<const ExprNode*> seen;
    std::vector<const ExprNode*> order;
    CollectPostOrder(root.get(), &seen, &order);
    for (const ExprNode* node : order) {
      const NodeAnalysis* info = analysis->Find(node);
      if (info == nullptr) continue;
      PlanEstimate est;
      est.shape = info->shape.ToString();
      est.sparsity = info->sparsity;
      est.bytes_known = info->bytes_known;
      est.est_bytes = info->est_bytes;
      est.chosen_repr = info->chosen_repr;
      est.est_flops = EstimatedFlops(node, *analysis);
      captured.emplace(node, std::move(est));
    }
  } else {
    error = analysis.status().ToString();
  }

  // Static diagnostics ride along with the runtime evidence: verifier
  // findings always matter when verification is on, lint findings only when
  // the user opted in.
  std::vector<Diagnostic> diags;
  if (VerifyEnabled()) {
    std::vector<Diagnostic> v = VerifyPlan(root);
    diags.insert(diags.end(), v.begin(), v.end());
  }
  if (LintEnabled()) {
    std::vector<Diagnostic> l = LintPlan(root);
    diags.insert(diags.end(), l.begin(), l.end());
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (const ExprPtr& r : roots_) {
    if (r.get() == root.get()) return;  // lost a race with another executor
  }
  roots_.push_back(root);
  root_errors_.push_back(std::move(error));
  root_diags_.push_back(std::move(diags));
  for (auto& [node, est] : captured) est_.insert_or_assign(node, std::move(est));
}

NodeProfile& PlanProfile::EnsureNodeLocked(const ExprNode* node) {
  auto [it, inserted] = nodes_.try_emplace(node);
  if (inserted) {
    DMML_COUNTER_INC("laopt.profile.nodes_tracked");
    it->second.kind = node->kind();
    it->second.name =
        node->name().empty() ? OpKindName(node->kind()) : node->name();
  }
  return it->second;
}

void PlanProfile::AddNodeSample(const ExprNode* node, uint64_t incl_us,
                                uint64_t self_us, Repr dispatch, Repr out_repr,
                                size_t out_rows, size_t out_cols,
                                uint64_t out_nnz) {
  DMML_COUNTER_INC("laopt.profile.samples");
  std::lock_guard<std::mutex> lock(mu_);
  NodeProfile& p = EnsureNodeLocked(node);
  p.invocations++;
  p.total_us += incl_us;
  p.self_us += self_us;
  p.last_dispatch = dispatch;
  p.out_repr = out_repr;
  p.out_rows = out_rows;
  p.out_cols = out_cols;
  p.out_nnz = out_nnz;
}

void PlanProfile::AddDensify(const ExprNode* node) {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureNodeLocked(node).densify_fallbacks++;
}

void PlanProfile::AddMemoHit(const ExprNode* node) {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureNodeLocked(node).memo_hits++;
}

void PlanProfile::AddFusedUse(const ExprNode* node) {
  std::lock_guard<std::mutex> lock(mu_);
  EnsureNodeLocked(node).fused_uses++;
}

void PlanProfile::EndRun(const ExecStats& run_tally) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.runs++;
  totals_.ops_executed += run_tally.ops_executed;
  totals_.memo_hits += run_tally.memo_hits;
  totals_.densify_fallbacks += run_tally.densify_fallbacks;
}

uint64_t PlanProfile::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_.runs;
}

size_t PlanProfile::NumNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

ExecStats PlanProfile::TotalStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExecStats stats;
  stats.ops_executed = totals_.ops_executed;
  stats.memo_hits = totals_.memo_hits;
  stats.densify_fallbacks = totals_.densify_fallbacks;
  return stats;
}

const NodeProfile* PlanProfile::Find(const ExprNode* node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

void PlanProfile::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  totals_ = Totals();
  nodes_.clear();
  roots_.clear();
  root_errors_.clear();
  root_diags_.clear();
  est_.clear();
}

namespace {

/// Joins the profile snapshot against the captured estimate rows of `root`
/// and computes the two share columns. A node absent from `est` (analysis
/// failed at capture time) keeps est == nullptr; the report still carries
/// the actuals.
std::vector<CalibratedNode> Calibrate(
    const ExprNode* root,
    const std::unordered_map<const ExprNode*, NodeProfile>& nodes,
    const std::unordered_map<const ExprNode*, PlanEstimate>& est) {
  std::unordered_set<const ExprNode*> seen;
  std::vector<const ExprNode*> order;
  CollectPostOrder(root, &seen, &order);

  std::vector<CalibratedNode> out;
  out.reserve(order.size());
  double total_self_us = 0.0;
  double total_flops = 0.0;
  for (const ExprNode* node : order) {
    CalibratedNode row;
    row.node = node;
    auto it = nodes.find(node);
    row.prof = it == nodes.end() ? nullptr : &it->second;
    auto eit = est.find(node);
    row.est = eit == est.end() ? nullptr : &eit->second;
    if (node->kind() != OpKind::kInput) {
      if (row.prof != nullptr) total_self_us += static_cast<double>(row.prof->self_us);
      if (row.est != nullptr) total_flops += row.est->est_flops;
    }
    out.push_back(row);
  }
  for (CalibratedNode& row : out) {
    if (row.node->kind() == OpKind::kInput) continue;
    if (row.prof != nullptr && total_self_us > 0.0) {
      row.time_share = static_cast<double>(row.prof->self_us) / total_self_us;
    }
    if (row.est != nullptr && total_flops > 0.0) {
      row.cost_share = row.est->est_flops / total_flops;
    }
  }
  return out;
}

void RenderNodeText(const ExprNode* node,
                    const std::unordered_map<const ExprNode*, CalibratedNode>& rows,
                    std::unordered_set<const ExprNode*>* printed, int depth,
                    std::ostringstream& os) {
  for (int i = 0; i < depth; ++i) os << "  ";
  if (depth > 0) os << "-> ";
  const CalibratedNode& row = rows.at(node);
  if (!printed->insert(node).second) {
    os << "[" << (row.prof ? row.prof->name : OpKindName(node->kind()))
       << " — shared, shown above]\n";
    return;
  }

  if (node->kind() == OpKind::kInput) {
    os << "Input '" << (node->name().empty() ? "_" : node->name()) << "'";
    if (row.est != nullptr) {
      os << " " << row.est->shape << " repr=" << ReprName(row.est->chosen_repr)
         << " est_sparsity=" << FormatDouble3(row.est->sparsity);
    }
    os << "\n";
    return;
  }

  os << OpKindName(node->kind());
  if (row.prof != nullptr && row.prof->invocations == 0 &&
      row.prof->fused_uses > 0) {
    // Absorbed by the consumer's fused kernel: its time is charged to the
    // parent; there is no standalone execution to report.
    os << " (fused into consumer, " << row.prof->fused_uses << " uses)";
    if (row.est != nullptr) {
      os << " sparsity est=" << FormatDouble3(row.est->sparsity);
    }
    os << "\n";
    for (const ExprPtr& child : node->children()) {
      RenderNodeText(child.get(), rows, printed, depth + 1, os);
    }
    return;
  }
  if (row.prof != nullptr && row.prof->invocations > 0) {
    const NodeProfile& p = *row.prof;
    os << " (actual " << FormatMs(p.total_us) << " self " << FormatMs(p.self_us)
       << ", " << p.invocations << " inv";
    if (p.memo_hits) os << ", " << p.memo_hits << " memo";
    if (p.densify_fallbacks) os << ", " << p.densify_fallbacks << " densify";
    os << ") repr=" << ReprName(p.last_dispatch) << " out=" << p.out_rows << "x"
       << p.out_cols;
    double est_sp = row.est != nullptr ? row.est->sparsity : 1.0;
    double act_sp = p.ActualSparsity();
    os << " sparsity est=" << FormatDouble3(est_sp)
       << " actual=" << FormatDouble3(act_sp)
       << " err=" << FormatDouble3(act_sp - est_sp);
    if (row.est != nullptr && row.est->bytes_known) {
      os << " bytes est=" << row.est->est_bytes << " actual=" << p.ActualBytes();
    }
    os << " time_share=" << FormatPct(row.time_share)
       << " cost_share=" << FormatPct(row.cost_share);
  } else {
    os << " (never executed)";
  }
  os << "\n";
  for (const ExprPtr& child : node->children()) {
    RenderNodeText(child.get(), rows, printed, depth + 1, os);
  }
}

}  // namespace

std::string PlanProfile::ExplainAnalyzeText() const {
  // Snapshot under the lock, render outside it: a concurrent scrape must
  // not block Run(). Estimates come from the BeginRun capture — rendering
  // touches only immutable DAG metadata, never live operands.
  std::unordered_map<const ExprNode*, NodeProfile> nodes;
  std::unordered_map<const ExprNode*, PlanEstimate> est;
  std::vector<ExprPtr> roots;
  std::vector<std::string> root_errors;
  std::vector<std::vector<Diagnostic>> root_diags;
  Totals totals;
  {
    std::lock_guard<std::mutex> lock(mu_);
    nodes = nodes_;
    est = est_;
    roots = roots_;
    root_errors = root_errors_;
    root_diags = root_diags_;
    totals = totals_;
  }

  std::ostringstream os;
  os << "EXPLAIN ANALYZE: runs=" << totals.runs
     << " ops_executed=" << totals.ops_executed
     << " memo_hits=" << totals.memo_hits
     << " densify_fallbacks=" << totals.densify_fallbacks << "\n";
  if (roots.empty()) {
    os << "(no profiled runs)\n";
    return os.str();
  }
  for (size_t i = 0; i < roots.size(); ++i) {
    const ExprNode* root = roots[i].get();
    os << "plan " << i << ":\n";
    if (i < root_errors.size() && !root_errors[i].empty()) {
      os << "  (analysis failed: " << root_errors[i] << ")\n";
    }
    if (i < root_diags.size() && !root_diags[i].empty()) {
      for (const Diagnostic& d : root_diags[i]) {
        os << "  diag: " << SeverityName(d.severity) << " [" << d.rule << "] "
           << d.node << ": " << d.message << "\n";
      }
    }
    std::vector<CalibratedNode> cal = Calibrate(root, nodes, est);
    std::unordered_map<const ExprNode*, CalibratedNode> by_node;
    for (const CalibratedNode& row : cal) by_node[row.node] = row;
    std::unordered_set<const ExprNode*> printed;
    RenderNodeText(root, by_node, &printed, 1, os);
  }
  return os.str();
}

std::string PlanProfile::ExplainAnalyzeJson() const {
  std::unordered_map<const ExprNode*, NodeProfile> nodes;
  std::unordered_map<const ExprNode*, PlanEstimate> est;
  std::vector<ExprPtr> roots;
  std::vector<std::vector<Diagnostic>> root_diags;
  Totals totals;
  {
    std::lock_guard<std::mutex> lock(mu_);
    nodes = nodes_;
    est = est_;
    roots = roots_;
    root_diags = root_diags_;
    totals = totals_;
  }

  std::ostringstream os;
  os << "{\"runs\":" << totals.runs << ",\"totals\":{\"ops_executed\":"
     << totals.ops_executed << ",\"memo_hits\":" << totals.memo_hits
     << ",\"densify_fallbacks\":" << totals.densify_fallbacks
     << "},\"roots\":[";
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i) os << ",";
    const ExprNode* root = roots[i].get();
    std::vector<CalibratedNode> cal = Calibrate(root, nodes, est);
    // Stable per-root ids so "children" can reference rows.
    std::unordered_map<const ExprNode*, size_t> ids;
    for (const CalibratedNode& row : cal) ids.emplace(row.node, ids.size());
    os << "{\"diagnostics\":[";
    if (i < root_diags.size()) {
      for (size_t d = 0; d < root_diags[i].size(); ++d) {
        const Diagnostic& diag = root_diags[i][d];
        if (d) os << ",";
        os << "{\"severity\":\"" << SeverityName(diag.severity)
           << "\",\"rule\":\"" << obs::JsonEscape(diag.rule) << "\",\"node\":\""
           << obs::JsonEscape(diag.node) << "\",\"message\":\""
           << obs::JsonEscape(diag.message) << "\"}";
      }
    }
    os << "],\"nodes\":[";
    for (size_t j = 0; j < cal.size(); ++j) {
      const CalibratedNode& row = cal[j];
      if (j) os << ",";
      os << "{\"id\":" << ids[row.node] << ",\"op\":\""
         << obs::JsonEscape(OpKindName(row.node->kind())) << "\",\"name\":\""
         << obs::JsonEscape(row.node->name().empty()
                                ? OpKindName(row.node->kind())
                                : row.node->name())
         << "\",\"children\":[";
      for (size_t c = 0; c < row.node->children().size(); ++c) {
        if (c) os << ",";
        os << ids[row.node->children()[c].get()];
      }
      os << "]";
      if (row.est != nullptr) {
        os << ",\"est\":{\"shape\":\"" << obs::JsonEscape(row.est->shape)
           << "\",\"sparsity\":" << JsonDouble(row.est->sparsity)
           << ",\"bytes\":" << row.est->est_bytes << ",\"repr\":\""
           << ReprName(row.est->chosen_repr) << "\"}";
      }
      if (row.prof != nullptr) {
        const NodeProfile& p = *row.prof;
        os << ",\"actual\":{\"invocations\":" << p.invocations
           << ",\"fused_uses\":" << p.fused_uses
           << ",\"memo_hits\":" << p.memo_hits << ",\"total_us\":" << p.total_us
           << ",\"self_us\":" << p.self_us
           << ",\"densify_fallbacks\":" << p.densify_fallbacks
           << ",\"dispatch\":\"" << ReprName(p.last_dispatch)
           << "\",\"out_repr\":\"" << ReprName(p.out_repr)
           << "\",\"rows\":" << p.out_rows << ",\"cols\":" << p.out_cols
           << ",\"nnz\":" << p.out_nnz
           << ",\"sparsity\":" << JsonDouble(p.ActualSparsity())
           << ",\"bytes\":" << p.ActualBytes() << "}"
           << ",\"time_share\":" << JsonDouble(row.time_share)
           << ",\"cost_share\":" << JsonDouble(row.cost_share);
      }
      os << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

obs::ScopedProfileRegistration RegisterProfile(
    const std::string& name, std::shared_ptr<const PlanProfile> profile) {
  return obs::ScopedProfileRegistration(
      name, [profile = std::move(profile)]() -> std::string {
        return profile ? profile->ExplainAnalyzeJson() : std::string();
      });
}

}  // namespace dmml::laopt
