/// \file analysis.h
/// \brief Static analysis over LA expression DAGs: shape, sparsity, and
/// memory inference at plan time (SystemML/SystemDS-style).
///
/// Before any rewrite or execution touches data, AnalyzeDag walks the DAG
/// and derives, per node:
///
///  * the output shape, with symbolic unknown-dimension propagation
///    (Placeholder leaves may declare ExprNode::kUnknownDim dims);
///  * a sparsity estimate in [0, 1], propagated with the standard
///    independence formulas (add: sA+sB−sA·sB, elementwise multiply: sA·sB,
///    matmul: 1−(1−sA·sB)^k over inner dimension k);
///  * an estimated output memory footprint in bytes, computed with
///    overflow-checked 64-bit arithmetic (saturating, never wrapping), both
///    for a dense layout and for the cheaper of dense/CSR given the
///    estimated sparsity.
///
/// Shape-inconsistent DAGs (possible via ExprNode::MakeUnchecked or the
/// parser's deferred-check mode) are rejected here — at plan time — with a
/// diagnostic naming the offending node and both operand shapes.
///
/// Consumers: the optimizer's matrix-chain DP costs candidate orders with
/// analyzer shapes and sparsities (laopt/optimizer.h), and the fusion
/// executor declines regions whose estimated working set exceeds a memory
/// budget (laopt/fusion.h). `DagAnalysis::Explain` renders the per-node
/// table as a DMML_EXPLAIN-style dump.
#ifndef DMML_LAOPT_ANALYSIS_H_
#define DMML_LAOPT_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "laopt/expr.h"
#include "laopt/operand.h"
#include "util/result.h"

namespace dmml::laopt {

/// \brief A possibly-unknown matrix dimension.
struct Dim {
  bool known = false;
  size_t value = 0;

  static Dim Known(size_t v) { return {true, v}; }
  static Dim Unknown() { return {}; }

  /// \brief From an ExprNode dimension (kUnknownDim → Unknown).
  static Dim FromNode(size_t v) {
    return v == ExprNode::kUnknownDim ? Unknown() : Known(v);
  }

  /// \brief "123" or "?".
  std::string ToString() const;
};

/// \brief An inferred (rows, cols) shape.
struct Shape {
  Dim rows;
  Dim cols;

  bool FullyKnown() const { return rows.known && cols.known; }

  /// \brief "100x10", "?x10", ...
  std::string ToString() const;
};

/// \brief Everything the analyzer derives for one node.
struct NodeAnalysis {
  Shape shape;

  /// Estimated fraction of nonzero cells in [0, 1]; 1.0 when nothing better
  /// is known (dense is the conservative assumption for memory and cost).
  double sparsity = 1.0;

  /// True iff the footprint estimates below are meaningful (shape fully
  /// known). `bytes_saturated` marks estimates clamped at UINT64_MAX because
  /// rows×cols×8 overflowed 64-bit arithmetic.
  bool bytes_known = false;
  bool bytes_saturated = false;

  /// Dense row-major footprint: rows × cols × sizeof(double).
  uint64_t dense_bytes = 0;

  /// Footprint of the cheaper plausible representation: dense, or a
  /// CSR-style sparse layout (~16 bytes per estimated nonzero) when the
  /// sparsity estimate makes that smaller.
  uint64_t est_bytes = 0;

  /// The physical representation the planner would pick for this node's
  /// value. Bound leaves report the representation they actually carry
  /// (dense / CSR / CLA-compressed); derived nodes and placeholders pick
  /// CSR when the estimated CSR footprint undercuts dense, else dense.
  /// Surfaced in Explain() and the laopt.repr.chosen_* counters; the
  /// optimizer's chain costing uses it to gate sparsity discounts to nodes
  /// that actually execute on a zero-skipping representation.
  Repr chosen_repr = Repr::kDense;
};

/// \brief Analyzer knobs.
struct AnalysisOptions {
  /// Sparsity assumed for Placeholder leaves (no data to inspect).
  double default_placeholder_sparsity = 1.0;

  /// Count exact nonzeros of bound input matrices (one O(size) scan per
  /// distinct leaf). When false, inputs are assumed dense.
  bool exact_input_nnz = true;
};

/// \brief Per-node analysis results for one DAG, memoized by node identity.
///
/// Obtained from AnalyzeDag. `Ensure` analyzes nodes on demand, so passes
/// that rewrite the DAG (optimizer, CSE) can keep querying one DagAnalysis
/// for nodes they create — each node is analyzed at most once.
class DagAnalysis {
 public:
  explicit DagAnalysis(AnalysisOptions options = {});

  /// \brief Analysis for `node`, computing (and validating) it and any
  /// unvisited descendants first. Fails on a shape-inconsistent node with a
  /// diagnostic naming the node and both operand shapes.
  Result<NodeAnalysis> Ensure(const ExprPtr& node);

  /// \brief Already-computed analysis for `node`, or nullptr.
  const NodeAnalysis* Find(const ExprNode* node) const;

  /// \brief Number of nodes analyzed so far.
  size_t NumAnalyzed() const { return info_.size(); }

  /// \brief DMML_EXPLAIN-style dump of `root`'s sub-DAG: one line per node
  /// in topological order with shape, sparsity, and footprint, children
  /// referenced by line id. Analyzes unvisited nodes; on a shape error the
  /// dump contains the diagnostic instead of rows for the invalid region.
  std::string Explain(const ExprPtr& root);

 private:
  AnalysisOptions options_;
  std::unordered_map<const ExprNode*, NodeAnalysis> info_;
};

/// \brief Validates and analyzes the whole DAG under `root`. This is the
/// plan-time gate: a shape-mismatched program fails here with a node-level
/// diagnostic instead of failing (or asserting) mid-execution.
///
/// Metrics: increments laopt.analysis.runs and laopt.analysis.nodes on
/// success, laopt.analysis.shape_rejects on rejection.
Result<DagAnalysis> AnalyzeDag(const ExprPtr& root,
                               const AnalysisOptions& options = {});

/// \brief rows × cols × sizeof(double) with overflow-checked 64-bit math;
/// saturates to UINT64_MAX and sets *saturated on overflow.
uint64_t DenseFootprintBytes(uint64_t rows, uint64_t cols, bool* saturated);

/// \brief Independence-model sparsity of A·B: 1 − (1 − sa·sb)^inner. Used by
/// the analyzer and by the optimizer's sparsity-aware chain costing.
double MatMulSparsityEstimate(double sa, double sb, size_t inner);

// ---------------------------------------------------------------------------
// Static concurrency + liveness analysis.
//
// ComputeSchedule derives, per node, the position at which the sequential
// executor completes it (`def`), the last position at which any consumer
// still reads its value (`last_use`), and its topological wavefront level
// (leaves are level 0; a node is one past its deepest child). Two facts
// follow statically:
//
//  * nodes whose wavefront levels are independent — neither reachable from
//    the other — may run concurrently (MayRunConcurrently), which is what a
//    parallel node scheduler (ROADMAP item 5) needs;
//  * two values whose [def, last_use] live ranges do not overlap can share
//    one output buffer (Interferes is the register-allocation interference
//    relation), which BufferedExecutor uses to reuse buffers across
//    non-overlapping live ranges.
//
// The completion order deliberately mirrors BufferedExecutor's evaluation
// order — including its one deviation from plain post-order: the transpose
// left child of a matmul is completed *after* the right operand, because the
// fused t(U)·V kernels evaluate it late or absorb it entirely. Liveness
// derived from this order is therefore conservative for the executor's real
// buffer writes.
// ---------------------------------------------------------------------------

/// \brief One node's static schedule facts.
struct ScheduleEntry {
  const ExprNode* node = nullptr;
  size_t level = 0;     ///< Wavefront level: 0 for leaves, 1 + max child level.
  size_t def = 0;       ///< Completion position in the executor's order.
  size_t last_use = 0;  ///< Last position reading the value; SIZE_MAX for the
                        ///< root (its buffer survives until the next Run()).
};

/// \brief Static schedule + liveness for one plan. Built by ComputeSchedule;
/// immutable afterwards. Holds shared ownership of the root so the node
/// pointers inside stay valid.
class PlanSchedule {
 public:
  /// Entries in executor completion order (leaves included).
  const std::vector<ScheduleEntry>& order() const { return order_; }

  /// Entry for `node`, or nullptr if it is not part of this plan.
  const ScheduleEntry* Find(const ExprNode* node) const;

  /// Number of wavefront levels (max level + 1); 0 for an empty schedule.
  size_t num_levels() const { return num_levels_; }

  /// Peak number of simultaneously-live non-leaf values — a lower bound on
  /// the buffers any executor needs, and the slot-sharing target.
  size_t max_live() const { return max_live_; }

  /// \brief True iff the live ranges of `a` and `b` overlap (they touch
  /// buffers at the same time, so they must not share one).
  bool Interferes(const ExprNode* a, const ExprNode* b) const;

  /// \brief True iff neither node is reachable from the other, so a parallel
  /// scheduler may dispatch them concurrently.
  bool MayRunConcurrently(const ExprNode* a, const ExprNode* b) const;

  /// \brief True iff `consumer` transitively depends on `producer`'s value
  /// through the executor's real read edges (OperandReads — children plus
  /// fused-through grandchildren). In a dataflow scheduler this is the
  /// happens-after relation: `producer` is guaranteed complete before
  /// `consumer` launches. O(1) per query from bitsets precomputed by
  /// ComputeSchedule. False when either node is outside the plan or when
  /// consumer == producer.
  bool DependsOn(const ExprNode* consumer, const ExprNode* producer) const;

  /// \brief DependsOn by schedule position (order() indices), for callers
  /// that iterate the schedule and already hold positions.
  bool DependsOnPos(size_t consumer_pos, size_t producer_pos) const;

 private:
  friend Result<PlanSchedule> ComputeSchedule(const ExprPtr& root);

  std::vector<ScheduleEntry> order_;
  std::unordered_map<const ExprNode*, size_t> index_;  ///< node → order_ pos.
  size_t num_levels_ = 0;
  size_t max_live_ = 0;
  ExprPtr root_;

  /// Transitive-dependency closure over OperandReads edges: row i holds one
  /// bit per schedule position j with "node i depends on node j". N²/8 bytes
  /// for an N-node plan — plans are compiler-sized, not data-sized.
  size_t closure_words_ = 0;
  std::vector<uint64_t> closure_;
};

/// \brief The operands whose *values* `node` reads when it executes,
/// mirroring the executor's fused kernels: a matmul with a transpose child
/// reads the grandchild directly (t(U)·V never materializes t(U)), and
/// rowSums(G ⊙ G) reads G. Conservative superset: both the fused-through
/// node and its source are reported.
std::vector<const ExprNode*> OperandReads(const ExprNode* node);

/// \brief Builds the schedule for the plan under `root`. Fails on a cyclic
/// or structurally broken plan (null/missing children) instead of crashing.
///
/// Metrics: increments laopt.analysis.schedules on success.
Result<PlanSchedule> ComputeSchedule(const ExprPtr& root);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_ANALYSIS_H_
