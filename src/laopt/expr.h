/// \file expr.h
/// \brief Lazy linear-algebra expression DAG (SystemML-style logical plans).
///
/// Expressions are built with overloaded combinators, carry inferred shapes,
/// and are evaluated by the executor in laopt/executor.h — optionally after
/// the rewrites in laopt/optimizer.h (transpose elimination, scalar folding,
/// optimal matrix-chain ordering).
#ifndef DMML_LAOPT_EXPR_H_
#define DMML_LAOPT_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "la/dense_matrix.h"
#include "laopt/operand.h"
#include "util/result.h"

namespace dmml::laopt {

/// Operator kind of an expression node.
enum class OpKind {
  kInput,      ///< Leaf matrix.
  kMatMul,     ///< A · B.
  kTranspose,  ///< Aᵀ.
  kAdd,        ///< A + B (same shape).
  kSubtract,   ///< A − B.
  kElemMul,    ///< A ⊙ B.
  kScalarMul,  ///< α · A.
  kSum,        ///< Full sum as a 1x1 matrix.
  kRowSums,    ///< Per-row sums (n x 1).
  kColSums,    ///< Per-column sums (1 x n).
  kScaleColumns,  ///< A · diag(s): out(i,j) = A(i,j) · s(0,j), s is 1 x cols.
};

/// \brief Stable identifier for an op kind ("matmul", "transpose", ...),
/// usable as a metric-name suffix.
const char* OpKindName(OpKind kind);

class ExprNode;
using ExprPtr = std::shared_ptr<const ExprNode>;

/// \brief Immutable expression node. Shapes are inferred at construction.
///
/// Dimensions may be *unknown* (kUnknownDim) when the node is — or derives
/// from — a Placeholder leaf whose data arrives after planning. Checked
/// factories validate whatever is known at construction; the static analyzer
/// in laopt/analysis.h re-derives and validates the full DAG at plan time,
/// which is the only check deferred-constructed nodes (MakeUnchecked) get.
class ExprNode {
 public:
  /// Sentinel for a dimension that is not known until execution time.
  static constexpr size_t kUnknownDim = static_cast<size_t>(-1);

  OpKind kind() const { return kind_; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  double scalar() const { return scalar_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// \brief True iff both dimensions are known at plan time.
  bool HasKnownShape() const {
    return rows_ != kUnknownDim && cols_ != kUnknownDim;
  }

  /// \brief Leaf payload in any representation (kInput only; unbound for
  /// Placeholder leaves). Non-leaf nodes carry an unbound operand.
  const Operand& operand() const { return operand_; }

  /// \brief Dense leaf payload (kInput only; null for Placeholder leaves and
  /// for leaves bound to a sparse or compressed operand — use operand() for
  /// representation-polymorphic access).
  const std::shared_ptr<const la::DenseMatrix>& matrix() const {
    return operand_.dense_ptr();
  }

  /// \brief Total node count of the sub-DAG (duplicates counted once).
  size_t NumNodes() const;

  /// \brief Rendering like "((t(X) * X) * v)".
  std::string ToString() const;

  // Factories (validated).
  static Result<ExprPtr> Input(std::shared_ptr<const la::DenseMatrix> m,
                               std::string name = "");

  /// \brief Leaf bound to an operand in any representation (dense, CSR, or
  /// CLA-compressed). The executor dispatches to representation-specific
  /// kernels; the plan itself is representation-agnostic.
  static Result<ExprPtr> InputOperand(Operand operand, std::string name = "");

  /// \brief Data-less leaf with a declared (possibly kUnknownDim) shape —
  /// plans can be compiled and costed before the matrix exists. Executing a
  /// plan containing an unbound placeholder is an error.
  static Result<ExprPtr> Placeholder(size_t rows, size_t cols,
                                     std::string name = "");

  /// \brief Constructs a node WITHOUT shape validation; output dimensions are
  /// derived best-effort from the children. Used by front ends that defer
  /// shape checking to the plan-time analyzer (laopt/analysis.h), which then
  /// reports mismatches with full operand shapes instead of failing inside a
  /// combinator. Not valid for kInput; `scalar` only read for kScalarMul.
  static Result<ExprPtr> MakeUnchecked(OpKind kind, std::vector<ExprPtr> children,
                                       double scalar = 1.0);
  static Result<ExprPtr> MatMul(ExprPtr a, ExprPtr b);
  static Result<ExprPtr> Transpose(ExprPtr a);
  static Result<ExprPtr> Add(ExprPtr a, ExprPtr b);
  static Result<ExprPtr> Subtract(ExprPtr a, ExprPtr b);
  static Result<ExprPtr> ElemMul(ExprPtr a, ExprPtr b);
  static Result<ExprPtr> ScalarMul(double alpha, ExprPtr a);
  static Result<ExprPtr> Sum(ExprPtr a);
  static Result<ExprPtr> RowSums(ExprPtr a);
  static Result<ExprPtr> ColSums(ExprPtr a);

  /// \brief Column-wise scaling A · diag(s) with s a (1 x cols) row vector:
  /// out(i,j) = A(i,j) · s(0,j). Lets shared-scan model selection apply k
  /// per-config step sizes to the columns of a d x k weight matrix in one
  /// node instead of k ScalarMul branches.
  static Result<ExprPtr> ScaleColumns(ExprPtr a, ExprPtr s);

  const std::string& name() const { return name_; }

 protected:
  ExprNode() = default;

 private:
  // Test-only corruption hook: the plan-verifier tests (laopt_verify_test)
  // need to manufacture ill-formed DAGs — cycles, wrong arity, stale cached
  // shapes — that the public factories correctly refuse to build.
  friend struct ExprNodeTestAccess;

  OpKind kind_ = OpKind::kInput;
  size_t rows_ = 0, cols_ = 0;
  double scalar_ = 1.0;
  std::string name_;
  Operand operand_;
  std::vector<ExprPtr> children_;
};

/// \brief Estimated floating-point operations to evaluate `e` naively
/// (no common-subexpression sharing; multiplications dominate). Nodes with
/// unknown dimensions contribute zero.
double EstimateFlops(const ExprPtr& e);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_EXPR_H_
