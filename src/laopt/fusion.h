/// \file fusion.h
/// \brief Fused elementwise execution (SystemML-style operator fusion).
///
/// A chain of elementwise operators (+, −, ⊙, scalar·) evaluated node by
/// node materializes one temporary matrix per operator. Fusion compiles the
/// maximal elementwise subtree into a single cell-at-a-time program executed
/// in one pass over the inputs — no intermediates, one write.
#ifndef DMML_LAOPT_FUSION_H_
#define DMML_LAOPT_FUSION_H_

#include <functional>

#include "laopt/expr.h"
#include "util/result.h"

namespace dmml::laopt {

/// \brief True iff `node` roots a fusible elementwise region of depth >= 2
/// (at least two elementwise ops, all over same-shaped operands).
bool IsFusibleRegion(const ExprPtr& node);

/// \brief Evaluates a fusible elementwise region in one pass over its leaf
/// matrices. `leaves` maps each distinct leaf node encountered to its
/// evaluated matrix; all must share the region's shape.
///
/// Precondition: IsFusibleRegion(node). Non-elementwise children must have
/// been evaluated and passed via `leaves` (keyed by node pointer).
Result<la::DenseMatrix> ExecuteFused(
    const ExprPtr& node,
    const std::function<Result<la::DenseMatrix>(const ExprPtr&)>& eval_child);

/// \brief Statistics from a fused execution.
struct FusionStats {
  size_t regions_fused = 0;
  size_t ops_fused = 0;  ///< Elementwise operators folded into fused loops.
};

/// \brief Executes `root` like laopt::Execute but with elementwise fusion;
/// results are identical, temporaries are fewer.
Result<la::DenseMatrix> ExecuteWithFusion(const ExprPtr& root,
                                          FusionStats* stats = nullptr);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_FUSION_H_
