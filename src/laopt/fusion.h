/// \file fusion.h
/// \brief Fused elementwise execution (SystemML-style operator fusion).
///
/// A chain of elementwise operators (+, −, ⊙, scalar·) evaluated node by
/// node materializes one temporary matrix per operator. Fusion compiles the
/// maximal elementwise subtree into a single cell-at-a-time program executed
/// in one pass over the inputs — no intermediates, one write.
#ifndef DMML_LAOPT_FUSION_H_
#define DMML_LAOPT_FUSION_H_

#include <cstdint>
#include <functional>

#include "laopt/analysis.h"
#include "laopt/expr.h"
#include "util/result.h"

namespace dmml::laopt {

/// \brief True iff `node` roots a fusible elementwise region of depth >= 2
/// (at least two elementwise ops, all over same-shaped operands).
bool IsFusibleRegion(const ExprPtr& node);

/// \brief Evaluates a fusible elementwise region in one pass over its leaf
/// matrices. `leaves` maps each distinct leaf node encountered to its
/// evaluated matrix; all must share the region's shape.
///
/// Precondition: IsFusibleRegion(node). Non-elementwise children must have
/// been evaluated and passed via `leaves` (keyed by node pointer).
Result<la::DenseMatrix> ExecuteFused(
    const ExprPtr& node,
    const std::function<Result<la::DenseMatrix>(const ExprPtr&)>& eval_child);

/// \brief Statistics from a fused execution.
struct FusionStats {
  size_t regions_fused = 0;
  size_t ops_fused = 0;  ///< Elementwise operators folded into fused loops.
  size_t regions_declined = 0;  ///< Fusible regions skipped by the memory guard.
};

/// \brief Fusion execution knobs.
struct FusionOptions {
  /// Maximum estimated working set of one fused region — all distinct
  /// boundary inputs plus the output, sized by the static analyzer — before
  /// the region is executed node by node instead. 0 disables the guard.
  uint64_t memory_budget_bytes = 0;
};

/// \brief Executes `root` like laopt::Execute but with elementwise fusion;
/// results are identical, temporaries are fewer. Regions whose estimated
/// working set exceeds `options.memory_budget_bytes` are declined (counted
/// in stats->regions_declined and metric laopt.fusion.budget_declines) and
/// evaluated unfused; their fusible sub-regions are still considered.
/// `analysis` supplies footprint estimates; a private one is built when
/// null.
Result<la::DenseMatrix> ExecuteWithFusion(const ExprPtr& root,
                                          const FusionOptions& options,
                                          FusionStats* stats = nullptr,
                                          DagAnalysis* analysis = nullptr);

/// \brief Back-compat overload: no memory guard.
Result<la::DenseMatrix> ExecuteWithFusion(const ExprPtr& root,
                                          FusionStats* stats = nullptr);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_FUSION_H_
