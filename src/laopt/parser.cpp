#include "laopt/parser.h"

#include <cctype>
#include <optional>
#include <vector>

#include "laopt/executor.h"
#include "laopt/optimizer.h"
#include "laopt/verify.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace dmml::laopt {

namespace {

enum class TokenKind { kNumber, kIdent, kPlus, kMinus, kStar, kMatMul, kLParen,
                       kRParen, kEnd };

struct Token {
  TokenKind kind;
  std::string text;
  double number = 0;
  size_t pos = 0;
};

Result<std::vector<Token>> Tokenize(const std::string& src) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < src.size()) {
    char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (c == '+') {
      tokens.push_back({TokenKind::kPlus, "+", 0, start});
      ++i;
    } else if (c == '-') {
      tokens.push_back({TokenKind::kMinus, "-", 0, start});
      ++i;
    } else if (c == '(') {
      tokens.push_back({TokenKind::kLParen, "(", 0, start});
      ++i;
    } else if (c == ')') {
      tokens.push_back({TokenKind::kRParen, ")", 0, start});
      ++i;
    } else if (c == '%') {
      if (src.compare(i, 3, "%*%") == 0) {
        tokens.push_back({TokenKind::kMatMul, "%*%", 0, start});
        i += 3;
      } else {
        return Status::InvalidArgument("unexpected '%' at position " +
                                       std::to_string(start));
      }
    } else if (c == '*') {
      tokens.push_back({TokenKind::kStar, "*", 0, start});
      ++i;
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      size_t j = i;
      while (j < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[j])) || src[j] == '.' ||
              src[j] == 'e' || src[j] == 'E' ||
              ((src[j] == '+' || src[j] == '-') && j > i &&
               (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      DMML_ASSIGN_OR_RETURN(double value, ParseDouble(src.substr(i, j - i)));
      tokens.push_back({TokenKind::kNumber, src.substr(i, j - i), value, start});
      i = j;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < src.size() && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                                src[j] == '_' || src[j] == '.')) {
        ++j;
      }
      tokens.push_back({TokenKind::kIdent, src.substr(i, j - i), 0, start});
      i = j;
    } else {
      return Status::InvalidArgument("unexpected character '" + std::string(1, c) +
                                     "' at position " + std::to_string(start));
    }
  }
  tokens.push_back({TokenKind::kEnd, "", 0, src.size()});
  return tokens;
}

// A parsed value is a matrix expression or a scalar (folded until it touches
// a matrix via '*', '+', or '-' with another scalar).
struct ParsedValue {
  ExprPtr expr;            // Null when scalar.
  double scalar = 0;
  bool is_scalar = false;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Environment& env,
         const ParseOptions& options)
      : tokens_(std::move(tokens)), env_(env), options_(options) {}

  // Routes through the checked factories normally, or through MakeUnchecked
  // when shape checking is deferred to the plan-time analyzer.
  Result<ExprPtr> Build(OpKind kind, std::vector<ExprPtr> children,
                        double scalar = 1.0) {
    if (options_.defer_shape_checks) {
      return ExprNode::MakeUnchecked(kind, std::move(children), scalar);
    }
    switch (kind) {
      case OpKind::kMatMul:
        return ExprNode::MatMul(children[0], children[1]);
      case OpKind::kTranspose:
        return ExprNode::Transpose(children[0]);
      case OpKind::kAdd:
        return ExprNode::Add(children[0], children[1]);
      case OpKind::kSubtract:
        return ExprNode::Subtract(children[0], children[1]);
      case OpKind::kElemMul:
        return ExprNode::ElemMul(children[0], children[1]);
      case OpKind::kScalarMul:
        return ExprNode::ScalarMul(scalar, children[0]);
      case OpKind::kSum:
        return ExprNode::Sum(children[0]);
      case OpKind::kRowSums:
        return ExprNode::RowSums(children[0]);
      case OpKind::kColSums:
        return ExprNode::ColSums(children[0]);
      case OpKind::kScaleColumns:
        return ExprNode::ScaleColumns(children[0], children[1]);
      case OpKind::kInput:
        break;
    }
    return Status::Internal("parser: unexpected op kind");
  }

  Result<ParsedValue> ParseExpr() {
    DMML_ASSIGN_OR_RETURN(ParsedValue lhs, ParseTerm());
    while (Peek().kind == TokenKind::kPlus || Peek().kind == TokenKind::kMinus) {
      bool plus = Take().kind == TokenKind::kPlus;
      DMML_ASSIGN_OR_RETURN(ParsedValue rhs, ParseTerm());
      if (lhs.is_scalar && rhs.is_scalar) {
        lhs.scalar = plus ? lhs.scalar + rhs.scalar : lhs.scalar - rhs.scalar;
        continue;
      }
      if (lhs.is_scalar || rhs.is_scalar) {
        return Status::InvalidArgument(
            "cannot add a scalar to a matrix; use elementwise tricks explicitly");
      }
      DMML_ASSIGN_OR_RETURN(
          lhs.expr, Build(plus ? OpKind::kAdd : OpKind::kSubtract,
                          {lhs.expr, rhs.expr}));
    }
    return lhs;
  }

  Result<ParsedValue> ParseTerm() {
    DMML_ASSIGN_OR_RETURN(ParsedValue lhs, ParseFactor());
    while (Peek().kind == TokenKind::kStar || Peek().kind == TokenKind::kMatMul) {
      bool matmul = Take().kind == TokenKind::kMatMul;
      DMML_ASSIGN_OR_RETURN(ParsedValue rhs, ParseFactor());
      if (matmul) {
        if (lhs.is_scalar || rhs.is_scalar) {
          return Status::InvalidArgument("%*% requires matrix operands");
        }
        DMML_ASSIGN_OR_RETURN(lhs.expr,
                              Build(OpKind::kMatMul, {lhs.expr, rhs.expr}));
        continue;
      }
      // '*': scalar folding, scalar*matrix, or elementwise matrix product.
      if (lhs.is_scalar && rhs.is_scalar) {
        lhs.scalar *= rhs.scalar;
      } else if (lhs.is_scalar) {
        DMML_ASSIGN_OR_RETURN(rhs.expr,
                              Build(OpKind::kScalarMul, {rhs.expr}, lhs.scalar));
        lhs = rhs;
      } else if (rhs.is_scalar) {
        DMML_ASSIGN_OR_RETURN(lhs.expr,
                              Build(OpKind::kScalarMul, {lhs.expr}, rhs.scalar));
      } else {
        DMML_ASSIGN_OR_RETURN(lhs.expr,
                              Build(OpKind::kElemMul, {lhs.expr, rhs.expr}));
      }
    }
    return lhs;
  }

  Result<ParsedValue> ParseFactor() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kNumber: {
        Take();
        ParsedValue value;
        value.is_scalar = true;
        value.scalar = token.number;
        return value;
      }
      case TokenKind::kMinus: {
        Take();
        DMML_ASSIGN_OR_RETURN(ParsedValue inner, ParseFactor());
        if (inner.is_scalar) {
          inner.scalar = -inner.scalar;
        } else {
          DMML_ASSIGN_OR_RETURN(inner.expr,
                                Build(OpKind::kScalarMul, {inner.expr}, -1.0));
        }
        return inner;
      }
      case TokenKind::kIdent: {
        Take();
        // Builtins: t(...), sum(...), rowSums(...), colSums(...).
        const bool is_builtin = token.text == "t" || token.text == "sum" ||
                                token.text == "rowSums" || token.text == "colSums";
        if (is_builtin && Peek().kind == TokenKind::kLParen) {
          Take();
          DMML_ASSIGN_OR_RETURN(ParsedValue inner, ParseExpr());
          DMML_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          if (inner.is_scalar) {
            return Status::InvalidArgument(token.text + "() requires a matrix operand");
          }
          ParsedValue value;
          OpKind kind = OpKind::kTranspose;
          if (token.text == "sum") kind = OpKind::kSum;
          else if (token.text == "rowSums") kind = OpKind::kRowSums;
          else if (token.text == "colSums") kind = OpKind::kColSums;
          DMML_ASSIGN_OR_RETURN(value.expr, Build(kind, {inner.expr}));
          return value;
        }
        auto it = env_.find(token.text);
        if (it == env_.end()) {
          return Status::NotFound("unknown identifier '" + token.text +
                                  "' at position " + std::to_string(token.pos));
        }
        ParsedValue value;
        DMML_ASSIGN_OR_RETURN(value.expr,
                              ExprNode::InputOperand(it->second, token.text));
        return value;
      }
      case TokenKind::kLParen: {
        Take();
        DMML_ASSIGN_OR_RETURN(ParsedValue inner, ParseExpr());
        DMML_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return inner;
      }
      default:
        return Status::InvalidArgument("unexpected token '" + token.text +
                                       "' at position " + std::to_string(token.pos));
    }
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument("expected ')' at position " +
                                     std::to_string(Peek().pos));
    }
    Take();
    return Status::OK();
  }

  const Token& Peek() const { return tokens_[cursor_]; }
  const Token& Take() { return tokens_[cursor_++]; }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

 private:
  std::vector<Token> tokens_;
  const Environment& env_;
  ParseOptions options_;
  size_t cursor_ = 0;
};

}  // namespace

Result<ExprPtr> ParseExpression(const std::string& source, const Environment& env) {
  return ParseExpression(source, env, ParseOptions{});
}

Result<ExprPtr> ParseExpression(const std::string& source, const Environment& env,
                                const ParseOptions& options) {
  DMML_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens), env, options);
  DMML_ASSIGN_OR_RETURN(ParsedValue value, parser.ParseExpr());
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("trailing input after expression");
  }
  if (value.is_scalar) {
    return Status::InvalidArgument("expression evaluates to a scalar, not a matrix");
  }
  // Under DMML_LINT=1 the parser is where binding names are known, so this
  // is the one place lint.unused_binding can fire: environment entries the
  // expression never references.
  if (LintEnabled()) {
    std::vector<std::string> bound_names;
    bound_names.reserve(env.size());
    for (const auto& kv : env) bound_names.push_back(kv.first);
    std::vector<Diagnostic> lint = LintPlan(value.expr, bound_names);
    if (!lint.empty()) {
      DMML_LOG(Info) << "DMML_LINT (parser)\n" << RenderDiagnostics(lint);
    }
  }
  return value.expr;
}

Result<la::DenseMatrix> EvalExpression(const std::string& source,
                                       const Environment& env, ThreadPool* pool) {
  return EvalExpression(source, env, pool, nullptr);
}

Result<la::DenseMatrix> EvalExpression(const std::string& source,
                                       const Environment& env, ThreadPool* pool,
                                       PlanProfile* profile) {
  DMML_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression(source, env));
  if (profile == nullptr) return OptimizeAndExecute(expr, pool);
  DMML_ASSIGN_OR_RETURN(ExprPtr optimized, Optimize(expr));
  BufferedExecutor executor(pool);
  executor.set_profile(profile);
  DMML_ASSIGN_OR_RETURN(const la::DenseMatrix* out, executor.Run(optimized));
  return *out;  // Copies out of the executor's transient buffers.
}

}  // namespace dmml::laopt
