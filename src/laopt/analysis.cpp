#include "laopt/analysis.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::laopt {

namespace {

// Bytes per stored nonzero in a CSR-style layout: 8 for the value plus 8 for
// the column index (kept at 64-bit so the estimate stays conservative).
constexpr uint64_t kSparseCellBytes = 16;

// Diagnostics embed the offending node's rendering; cap it so a deep DAG
// does not turn one error line into pages.
std::string Abbreviate(const ExprNode& node) {
  std::string s = node.ToString();
  constexpr size_t kMax = 120;
  if (s.size() > kMax) s = s.substr(0, kMax) + "...";
  return s;
}

// a × b, saturating at UINT64_MAX instead of wrapping.
uint64_t SatMul(uint64_t a, uint64_t b, bool* saturated) {
  uint64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    *saturated = true;
    return UINT64_MAX;
  }
  return out;
}

uint64_t SatAdd(uint64_t a, uint64_t b, bool* saturated) {
  uint64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    *saturated = true;
    return UINT64_MAX;
  }
  return out;
}

double ClampSparsity(double s) { return std::min(1.0, std::max(0.0, s)); }

// Sparsity of A·B, or dense when the inner dimension is unknown.
double MatMulSparsity(double sa, double sb, const Dim& inner) {
  if (ClampSparsity(sa * sb) == 0.0) return 0.0;
  if (!inner.known) return 1.0;  // No k to reason with: assume dense.
  return MatMulSparsityEstimate(sa, sb, inner.value);
}

// Sparsity of a length-k reduction of cells with sparsity s (a row/col sum
// is nonzero if any summand is).
double ReduceSparsity(double s, const Dim& length) {
  if (s == 0.0) return 0.0;
  if (!length.known) return 1.0;
  return ClampSparsity(1.0 - std::pow(1.0 - s, static_cast<double>(length.value)));
}

double ExactSparsity(const la::DenseMatrix& m) {
  if (m.size() == 0) return 0.0;
  size_t nnz = 0;
  const double* data = m.data();
  for (size_t i = 0; i < m.size(); ++i) nnz += (data[i] != 0.0) ? 1 : 0;
  return static_cast<double>(nnz) / static_cast<double>(m.size());
}

Status ShapeError(const ExprNode& node, const char* what, const Shape& left,
                  const Shape& right) {
  DMML_COUNTER_INC("laopt.analysis.shape_rejects");
  return Status::InvalidArgument(
      std::string("plan-time shape error at node ") + Abbreviate(node) + ": " +
      what + ": left operand is " + left.ToString() + ", right operand is " +
      right.ToString());
}

void FillFootprint(NodeAnalysis* info) {
  if (!info->shape.FullyKnown()) return;
  info->bytes_known = true;
  bool saturated = false;
  const uint64_t rows = info->shape.rows.value;
  const uint64_t cols = info->shape.cols.value;
  info->dense_bytes = DenseFootprintBytes(rows, cols, &saturated);

  // CSR-style alternative: ~16 bytes per estimated nonzero plus one 8-byte
  // row pointer per row (+1). Only cheaper when the matrix is quite sparse.
  const uint64_t cells = SatMul(rows, cols, &saturated);
  const auto nnz = static_cast<uint64_t>(
      std::ceil(info->sparsity * static_cast<double>(cells)));
  uint64_t sparse = SatMul(nnz, kSparseCellBytes, &saturated);
  sparse = SatAdd(sparse, SatMul(rows + 1, sizeof(uint64_t), &saturated),
                  &saturated);
  info->est_bytes = std::min(info->dense_bytes, sparse);
  info->bytes_saturated = saturated;
  if (saturated) DMML_COUNTER_INC("laopt.analysis.footprint_saturations");
}

std::string HumanBytes(uint64_t bytes) {
  std::ostringstream os;
  if (bytes >= (1ull << 30)) {
    os << static_cast<double>(bytes) / static_cast<double>(1ull << 30) << "GiB";
  } else if (bytes >= (1ull << 20)) {
    os << static_cast<double>(bytes) / static_cast<double>(1ull << 20) << "MiB";
  } else if (bytes >= (1ull << 10)) {
    os << static_cast<double>(bytes) / static_cast<double>(1ull << 10) << "KiB";
  } else {
    os << bytes << "B";
  }
  return os.str();
}

}  // namespace

std::string Dim::ToString() const {
  return known ? std::to_string(value) : std::string("?");
}

std::string Shape::ToString() const {
  return rows.ToString() + "x" + cols.ToString();
}

double MatMulSparsityEstimate(double sa, double sb, size_t inner) {
  // A result cell is nonzero unless all `inner` products a_ir·b_rc vanish;
  // under independence each product is nonzero with probability sa·sb.
  const double cell = ClampSparsity(sa * sb);
  if (cell == 0.0 || inner == 0) return 0.0;
  return ClampSparsity(1.0 - std::pow(1.0 - cell, static_cast<double>(inner)));
}

uint64_t DenseFootprintBytes(uint64_t rows, uint64_t cols, bool* saturated) {
  bool sat = false;
  uint64_t bytes = SatMul(SatMul(rows, cols, &sat), sizeof(double), &sat);
  if (saturated) *saturated = sat;
  return bytes;
}

DagAnalysis::DagAnalysis(AnalysisOptions options) : options_(options) {}

const NodeAnalysis* DagAnalysis::Find(const ExprNode* node) const {
  auto it = info_.find(node);
  return it == info_.end() ? nullptr : &it->second;
}

Result<NodeAnalysis> DagAnalysis::Ensure(const ExprPtr& node) {
  if (!node) return Status::InvalidArgument("analysis: null expression");
  if (const NodeAnalysis* cached = Find(node.get())) return *cached;

  // Children first (memoized, so shared sub-DAGs are analyzed once).
  std::vector<NodeAnalysis> kids;
  kids.reserve(node->children().size());
  for (const auto& c : node->children()) {
    DMML_ASSIGN_OR_RETURN(NodeAnalysis k, Ensure(c));
    kids.push_back(k);
  }

  NodeAnalysis info;
  info.shape.rows = Dim::FromNode(node->rows());
  info.shape.cols = Dim::FromNode(node->cols());

  switch (node->kind()) {
    case OpKind::kInput: {
      const Operand& op = node->operand();
      if (op.bound()) {
        switch (op.repr()) {
          case Repr::kDense:
            info.sparsity = options_.exact_input_nnz
                                ? ExactSparsity(*op.dense())
                                : 1.0;
            break;
          case Repr::kSparse:
            // CSR carries its nnz — exact sparsity for free, no scan.
            info.sparsity = op.Sparsity();
            break;
          case Repr::kCompressed:
            // Compressed groups don't expose nnz cheaply; cost it as dense
            // cells but with its actual (compressed) footprint below.
            info.sparsity = 1.0;
            break;
          case Repr::kFactorized:
            // Matrix-free operators are costed as dense cells but with
            // their own (normalized) footprint below — the gap is the
            // redundancy the factorized route avoids.
            info.sparsity = 1.0;
            break;
        }
      } else {
        info.sparsity = ClampSparsity(options_.default_placeholder_sparsity);
        DMML_COUNTER_INC("laopt.analysis.placeholders");
      }
      break;
    }
    case OpKind::kMatMul: {
      const Dim& inner_l = kids[0].shape.cols;
      const Dim& inner_r = kids[1].shape.rows;
      if (inner_l.known && inner_r.known && inner_l.value != inner_r.value) {
        return ShapeError(*node, "matmul inner dimension mismatch",
                          kids[0].shape, kids[1].shape);
      }
      info.shape.rows = kids[0].shape.rows;
      info.shape.cols = kids[1].shape.cols;
      info.sparsity = MatMulSparsity(kids[0].sparsity, kids[1].sparsity,
                                     inner_l.known ? inner_l : inner_r);
      break;
    }
    case OpKind::kTranspose:
      info.shape.rows = kids[0].shape.cols;
      info.shape.cols = kids[0].shape.rows;
      info.sparsity = kids[0].sparsity;
      break;
    case OpKind::kAdd:
    case OpKind::kSubtract:
    case OpKind::kElemMul: {
      const Shape& a = kids[0].shape;
      const Shape& b = kids[1].shape;
      if ((a.rows.known && b.rows.known && a.rows.value != b.rows.value) ||
          (a.cols.known && b.cols.known && a.cols.value != b.cols.value)) {
        return ShapeError(*node, "elementwise operand shape mismatch", a, b);
      }
      info.shape.rows = a.rows.known ? a.rows : b.rows;
      info.shape.cols = a.cols.known ? a.cols : b.cols;
      const double sa = kids[0].sparsity, sb = kids[1].sparsity;
      info.sparsity = node->kind() == OpKind::kElemMul
                          ? ClampSparsity(sa * sb)
                          : ClampSparsity(sa + sb - sa * sb);
      break;
    }
    case OpKind::kScalarMul:
      info.shape = kids[0].shape;
      info.sparsity = node->scalar() == 0.0 ? 0.0 : kids[0].sparsity;
      break;
    case OpKind::kSum:
      info.sparsity = kids[0].sparsity > 0.0 ? 1.0 : 0.0;
      break;
    case OpKind::kRowSums:
      info.shape.rows = kids[0].shape.rows;
      info.sparsity = ReduceSparsity(kids[0].sparsity, kids[0].shape.cols);
      break;
    case OpKind::kColSums:
      info.shape.cols = kids[0].shape.cols;
      info.sparsity = ReduceSparsity(kids[0].sparsity, kids[0].shape.rows);
      break;
    case OpKind::kScaleColumns: {
      const Shape& a = kids[0].shape;
      const Shape& s = kids[1].shape;
      if (s.rows.known && s.rows.value != 1) {
        return ShapeError(*node, "scale_columns scale must be a row vector", a,
                          s);
      }
      if (a.cols.known && s.cols.known && a.cols.value != s.cols.value) {
        return ShapeError(*node, "scale_columns column-count mismatch", a, s);
      }
      info.shape.rows = a.rows;
      info.shape.cols = a.cols.known ? a.cols : s.cols;
      // Zeros in either factor survive as zeros (same model as elem_mul).
      info.sparsity = ClampSparsity(kids[0].sparsity * kids[1].sparsity);
      break;
    }
  }

  FillFootprint(&info);

  // Representation choice. Bound leaves keep the representation they carry
  // (re-encoding an input is not this planner's call); everything else picks
  // CSR exactly when the estimated CSR footprint beats dense.
  if (node->kind() == OpKind::kInput && node->operand().bound()) {
    info.chosen_repr = node->operand().repr();
    if ((info.chosen_repr == Repr::kCompressed ||
         info.chosen_repr == Repr::kFactorized) &&
        info.bytes_known) {
      // The actual compressed/normalized size is known — report it instead
      // of the dense/CSR estimate.
      info.est_bytes = std::min<uint64_t>(node->operand().SizeInBytes(),
                                          info.dense_bytes);
    }
  } else {
    info.chosen_repr = (info.bytes_known && info.est_bytes < info.dense_bytes)
                           ? Repr::kSparse
                           : Repr::kDense;
  }
  switch (info.chosen_repr) {
    case Repr::kDense: DMML_COUNTER_INC("laopt.repr.chosen_dense"); break;
    case Repr::kSparse: DMML_COUNTER_INC("laopt.repr.chosen_sparse"); break;
    case Repr::kCompressed:
      DMML_COUNTER_INC("laopt.repr.chosen_compressed");
      break;
    case Repr::kFactorized:
      DMML_COUNTER_INC("laopt.repr.chosen_factorized");
      break;
  }

  if (!info.shape.FullyKnown()) DMML_COUNTER_INC("laopt.analysis.unknown_shapes");
  info_.emplace(node.get(), info);
  return info;
}

std::string DagAnalysis::Explain(const ExprPtr& root) {
  std::ostringstream os;
  if (!root) return "EXPLAIN: <null plan>\n";

  Status error = Status::OK();
  std::unordered_map<const ExprNode*, size_t> ids;
  std::vector<ExprPtr> order;
  // Iterative post-order so the dump is topological (children before users).
  std::vector<std::pair<ExprPtr, bool>> stack{{root, false}};
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    if (ids.count(node.get())) continue;
    if (expanded) {
      ids.emplace(node.get(), order.size());
      order.push_back(node);
      continue;
    }
    stack.push_back({node, true});
    for (const auto& c : node->children()) stack.push_back({c, false});
  }

  os << "EXPLAIN plan: " << order.size() << " nodes\n";
  for (const ExprPtr& node : order) {
    auto analyzed = Ensure(node);
    os << "  [" << ids[node.get()] << "] " << OpKindName(node->kind());
    if (node->kind() == OpKind::kInput) {
      os << " " << (node->name().empty() ? "_" : node->name());
      if (!node->operand().bound()) os << " (placeholder)";
    } else {
      os << "(";
      for (size_t i = 0; i < node->children().size(); ++i) {
        os << (i ? ", " : "") << "[" << ids[node->children()[i].get()] << "]";
      }
      os << ")";
    }
    if (node->kind() == OpKind::kScalarMul) os << " alpha=" << node->scalar();
    if (!analyzed.ok()) {
      os << ": " << analyzed.status().message() << "\n";
      error = analyzed.status();
      break;  // Everything above this node is equally unanalyzable.
    }
    const NodeAnalysis& a = *analyzed;
    os << ": " << a.shape.ToString() << ", sparsity " << a.sparsity
       << ", repr " << ReprName(a.chosen_repr);
    if (a.bytes_known) {
      os << ", est " << HumanBytes(a.est_bytes) << " (dense "
         << HumanBytes(a.dense_bytes) << ")";
      if (a.bytes_saturated) os << " [saturated]";
    } else {
      os << ", est ?";
    }
    os << "\n";
  }
  if (!error.ok()) os << "  plan rejected: " << error.message() << "\n";
  return os.str();
}

Result<DagAnalysis> AnalyzeDag(const ExprPtr& root, const AnalysisOptions& options) {
  if (!root) return Status::InvalidArgument("AnalyzeDag: null expression");
  DMML_TRACE_SPAN("laopt.analyze");
  DagAnalysis analysis(options);
  DMML_RETURN_IF_ERROR(analysis.Ensure(root).status());
  DMML_COUNTER_INC("laopt.analysis.runs");
  DMML_COUNTER_ADD("laopt.analysis.nodes", analysis.NumAnalyzed());
  return analysis;
}

// ---------------------------------------------------------------------------
// Static concurrency + liveness analysis.
// ---------------------------------------------------------------------------

std::vector<const ExprNode*> OperandReads(const ExprNode* node) {
  std::vector<const ExprNode*> reads;
  if (node == nullptr) return reads;
  for (const auto& c : node->children()) {
    if (c) reads.push_back(c.get());
  }
  // Fused kernels read *through* a child: report the grandchild as well so
  // liveness covers both the fused and the generic dispatch.
  if (node->kind() == OpKind::kMatMul && node->children().size() == 2) {
    for (const auto& c : node->children()) {
      if (c && c->kind() == OpKind::kTranspose && !c->children().empty() &&
          c->children()[0]) {
        reads.push_back(c->children()[0].get());
      }
    }
  }
  if (node->kind() == OpKind::kRowSums && !node->children().empty()) {
    const auto& c = node->children()[0];
    if (c && c->kind() == OpKind::kElemMul && c->children().size() == 2 &&
        c->children()[0] && c->children()[0].get() == c->children()[1].get()) {
      reads.push_back(c->children()[0].get());
    }
  }
  return reads;
}

namespace {

// Recursive builder mirroring BufferedExecutor's evaluation order. The one
// deviation from plain post-order: a matmul whose left child is a transpose
// evaluates the transpose's *source* first, then the right operand, and only
// then (if the fused kernel declined) the transpose itself — so the
// transpose completes after the right operand here, never before.
struct ScheduleBuilder {
  std::vector<ScheduleEntry> order;
  std::unordered_map<const ExprNode*, size_t> index;
  std::unordered_set<const ExprNode*> visiting;

  bool Done(const ExprNode* n) const { return index.count(n) != 0; }

  void Complete(const ExprNode* n) {
    if (Done(n)) return;
    size_t level = 0;
    for (const auto& c : n->children()) {
      const auto it = index.find(c.get());
      const size_t child_level = it == index.end() ? 0 : order[it->second].level;
      level = std::max(level, child_level + 1);
    }
    index.emplace(n, order.size());
    order.push_back({n, level, order.size(), order.size()});
  }

  Status Visit(const ExprPtr& n) {  // NOLINT(misc-no-recursion)
    if (!n) return Status::InvalidArgument("schedule: null child in plan");
    if (Done(n.get())) return Status::OK();
    if (!visiting.insert(n.get()).second) {
      return Status::InvalidArgument("schedule: plan is not a DAG (cycle)");
    }
    const auto& kids = n->children();
    const ExprPtr* lc = kids.size() == 2 ? &kids[0] : nullptr;
    if (n->kind() == OpKind::kMatMul && lc != nullptr && *lc &&
        (*lc)->kind() == OpKind::kTranspose && !Done(lc->get()) &&
        (*lc)->children().size() == 1) {
      if (!visiting.insert(lc->get()).second) {
        visiting.erase(n.get());
        return Status::InvalidArgument("schedule: plan is not a DAG (cycle)");
      }
      DMML_RETURN_IF_ERROR(Visit((*lc)->children()[0]));
      DMML_RETURN_IF_ERROR(Visit(kids[1]));
      Complete(lc->get());
      visiting.erase(lc->get());
    } else {
      for (const auto& c : kids) DMML_RETURN_IF_ERROR(Visit(c));
    }
    Complete(n.get());
    visiting.erase(n.get());
    return Status::OK();
  }
};

}  // namespace

const ScheduleEntry* PlanSchedule::Find(const ExprNode* node) const {
  const auto it = index_.find(node);
  return it == index_.end() ? nullptr : &order_[it->second];
}

bool PlanSchedule::Interferes(const ExprNode* a, const ExprNode* b) const {
  const ScheduleEntry* ea = Find(a);
  const ScheduleEntry* eb = Find(b);
  if (ea == nullptr || eb == nullptr) return false;
  return ea->def <= eb->last_use && eb->def <= ea->last_use;
}

bool PlanSchedule::DependsOnPos(size_t consumer_pos, size_t producer_pos) const {
  if (consumer_pos >= order_.size() || producer_pos >= order_.size()) {
    return false;
  }
  const uint64_t word =
      closure_[consumer_pos * closure_words_ + producer_pos / 64];
  return (word >> (producer_pos % 64) & 1) != 0;
}

bool PlanSchedule::DependsOn(const ExprNode* consumer,
                             const ExprNode* producer) const {
  const auto ci = index_.find(consumer);
  const auto pi = index_.find(producer);
  if (ci == index_.end() || pi == index_.end()) return false;
  return DependsOnPos(ci->second, pi->second);
}

bool PlanSchedule::MayRunConcurrently(const ExprNode* a, const ExprNode* b) const {
  if (a == nullptr || b == nullptr || a == b) return false;
  if (Find(a) == nullptr || Find(b) == nullptr) return false;
  // Neither may be a (transitive) operand of the other. The OperandReads
  // closure subsumes plain child reachability: every child edge is a read
  // edge, and the fused-through extras are transitively implied.
  return !DependsOn(a, b) && !DependsOn(b, a);
}

Result<PlanSchedule> ComputeSchedule(const ExprPtr& root) {
  if (!root) return Status::InvalidArgument("ComputeSchedule: null plan");
  ScheduleBuilder builder;
  DMML_RETURN_IF_ERROR(builder.Visit(root));

  PlanSchedule schedule;
  schedule.root_ = root;
  schedule.order_ = std::move(builder.order);
  schedule.index_ = std::move(builder.index);
  for (const ScheduleEntry& e : schedule.order_) {
    schedule.num_levels_ = std::max(schedule.num_levels_, e.level + 1);
  }

  // Transitive-dependency closure over OperandReads edges. The schedule is a
  // valid completion order (every read precedes its reader), so one
  // front-to-back pass OR-ing each read's row into the reader's row closes
  // the relation.
  const size_t n = schedule.order_.size();
  schedule.closure_words_ = (n + 63) / 64;
  schedule.closure_.assign(n * schedule.closure_words_, 0);
  for (const ScheduleEntry& e : schedule.order_) {
    uint64_t* bits = schedule.closure_.data() + e.def * schedule.closure_words_;
    for (const ExprNode* read : OperandReads(e.node)) {
      const auto it = schedule.index_.find(read);
      if (it == schedule.index_.end()) continue;
      const size_t src = it->second;
      bits[src / 64] |= uint64_t{1} << (src % 64);
      const uint64_t* src_bits =
          schedule.closure_.data() + src * schedule.closure_words_;
      for (size_t w = 0; w < schedule.closure_words_; ++w) bits[w] |= src_bits[w];
    }
  }

  // last_use: the latest completion position that still reads the value.
  for (const ScheduleEntry& e : schedule.order_) {
    for (const ExprNode* read : OperandReads(e.node)) {
      const auto it = schedule.index_.find(read);
      if (it != schedule.index_.end()) {
        ScheduleEntry& src = schedule.order_[it->second];
        src.last_use = std::max(src.last_use, e.def);
      }
    }
  }
  // The root's value is the Run() result: live until the next Run().
  schedule.order_.back().last_use = SIZE_MAX;

  // Peak simultaneous liveness of non-leaf values (the buffer lower bound),
  // by line sweep over [def, last_use] intervals.
  std::vector<int64_t> delta(schedule.order_.size() + 1, 0);
  for (const ScheduleEntry& e : schedule.order_) {
    if (e.node->kind() == OpKind::kInput) continue;
    ++delta[e.def];
    const size_t end = e.last_use == SIZE_MAX ? schedule.order_.size()
                                              : e.last_use + 1;
    if (end < delta.size()) --delta[end];
  }
  int64_t live = 0;
  for (const int64_t d : delta) {
    live += d;
    schedule.max_live_ =
        std::max(schedule.max_live_, static_cast<size_t>(std::max<int64_t>(live, 0)));
  }

  DMML_COUNTER_INC("laopt.analysis.schedules");
  DMML_COUNTER_ADD("laopt.analysis.schedule_nodes", schedule.order_.size());
  return schedule;
}

}  // namespace dmml::laopt
