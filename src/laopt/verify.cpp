#include "laopt/verify.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "laopt/analysis.h"
#include "laopt/operand.h"
#include "obs/metrics.h"

namespace dmml::laopt {
namespace {

bool Known(size_t dim) { return dim != ExprNode::kUnknownDim; }

std::string DimStr(size_t dim) {
  return Known(dim) ? std::to_string(dim) : std::string("?");
}

std::string ShapeStr(size_t rows, size_t cols) {
  return DimStr(rows) + "x" + DimStr(cols);
}

// Compatible = equal or at least one side unknown (mirrors expr.cpp).
bool DimsCompatible(size_t a, size_t b) {
  return !Known(a) || !Known(b) || a == b;
}

size_t MergeDims(size_t a, size_t b) { return Known(a) ? a : b; }

constexpr size_t kAbbrevLimit = 120;
constexpr int kAbbrevDepth = 6;

// Depth-limited rendering in ExprNode::ToString's style. The verifier must
// be able to name a node inside a *cyclic* plan, where ToString itself would
// recurse forever — the depth cap bounds both output size and cycles.
void RenderNode(const ExprNode* node, int depth, std::string* out) {
  if (node == nullptr) {
    *out += "<null>";
    return;
  }
  if (depth >= kAbbrevDepth || out->size() > kAbbrevLimit) {
    *out += "...";
    return;
  }
  const auto& kids = node->children();
  switch (node->kind()) {
    case OpKind::kInput:
      *out += node->name().empty() ? "_" : node->name();
      return;
    case OpKind::kScalarMul: {
      std::ostringstream s;
      s << node->scalar();
      *out += "(" + s.str() + " * ";
      RenderNode(kids.empty() ? nullptr : kids[0].get(), depth + 1, out);
      *out += ")";
      return;
    }
    case OpKind::kTranspose:
    case OpKind::kSum:
    case OpKind::kRowSums:
    case OpKind::kColSums: {
      const char* fn = node->kind() == OpKind::kTranspose  ? "t"
                       : node->kind() == OpKind::kSum      ? "sum"
                       : node->kind() == OpKind::kRowSums  ? "rowSums"
                                                           : "colSums";
      *out += std::string(fn) + "(";
      RenderNode(kids.empty() ? nullptr : kids[0].get(), depth + 1, out);
      *out += ")";
      return;
    }
    default: {
      const char* op = node->kind() == OpKind::kMatMul     ? " %*% "
                       : node->kind() == OpKind::kAdd      ? " + "
                       : node->kind() == OpKind::kSubtract ? " - "
                                                           : " * ";
      *out += "(";
      RenderNode(kids.empty() ? nullptr : kids[0].get(), depth + 1, out);
      *out += op;
      RenderNode(kids.size() < 2 ? nullptr : kids[1].get(), depth + 1, out);
      *out += ")";
      return;
    }
  }
}

std::string Abbreviate(const ExprNode* node) {
  if (node == nullptr) return "<null>";
  std::string s;
  RenderNode(node, 0, &s);
  if (s.size() > kAbbrevLimit) {
    s.resize(kAbbrevLimit - 3);
    s += "...";
  }
  return s;
}

bool EnvFlag(const char* name, bool default_value) {
  // Read-only env access; the process never calls setenv concurrently with
  // plan compilation (tests toggle it single-threaded).
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || v[0] == '\0') return default_value;
  return !(v[0] == '0' && v[1] == '\0');
}

size_t ExpectedArity(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return 0;
    case OpKind::kMatMul:
    case OpKind::kAdd:
    case OpKind::kSubtract:
    case OpKind::kElemMul:
    case OpKind::kScaleColumns:
      return 2;
    default:
      return 1;
  }
}

void AddDiag(std::vector<Diagnostic>* diags, Severity severity,
             std::string rule, const ExprNode* node, std::string message) {
  diags->push_back(
      {severity, std::move(rule), Abbreviate(node), std::move(message)});
}

// Per-node structural checks: arity, null children, operand/shape
// consistency, and an exact shape re-derivation mirroring the checked
// factories in expr.cpp. A node whose recorded dims differ from the
// derivation is a *stale shape* — the signature of a rewrite that patched
// children without rebuilding the node.
void CheckNode(const ExprNode* node, std::vector<Diagnostic>* diags) {
  const auto& kids = node->children();
  const size_t arity = ExpectedArity(node->kind());
  if (kids.size() != arity) {
    AddDiag(diags, Severity::kError, "verify.arity", node,
            std::string(OpKindName(node->kind())) + " node has " +
                std::to_string(kids.size()) + " children, expected " +
                std::to_string(arity));
    return;  // Shape derivation below indexes children by arity.
  }
  for (const auto& c : kids) {
    if (!c) {
      AddDiag(diags, Severity::kError, "verify.null_child", node,
              "node has a null child");
      return;
    }
  }

  size_t want_rows = node->rows();
  size_t want_cols = node->cols();
  switch (node->kind()) {
    case OpKind::kInput:
      if (node->operand().bound()) {
        want_rows = node->operand().rows();
        want_cols = node->operand().cols();
      }
      break;
    case OpKind::kMatMul:
      if (Known(kids[0]->cols()) && Known(kids[1]->rows()) &&
          kids[0]->cols() != kids[1]->rows()) {
        AddDiag(diags, Severity::kError, "verify.shape_mismatch", node,
                "matmul inner dimensions disagree: " +
                    std::to_string(kids[0]->cols()) + " vs " +
                    std::to_string(kids[1]->rows()));
      }
      want_rows = kids[0]->rows();
      want_cols = kids[1]->cols();
      break;
    case OpKind::kTranspose:
      want_rows = kids[0]->cols();
      want_cols = kids[0]->rows();
      break;
    case OpKind::kAdd:
    case OpKind::kSubtract:
    case OpKind::kElemMul:
      if (!DimsCompatible(kids[0]->rows(), kids[1]->rows()) ||
          !DimsCompatible(kids[0]->cols(), kids[1]->cols())) {
        AddDiag(diags, Severity::kError, "verify.shape_mismatch", node,
                std::string(OpKindName(node->kind())) +
                    " operand shapes disagree: " +
                    ShapeStr(kids[0]->rows(), kids[0]->cols()) + " vs " +
                    ShapeStr(kids[1]->rows(), kids[1]->cols()));
      }
      want_rows = MergeDims(kids[0]->rows(), kids[1]->rows());
      want_cols = MergeDims(kids[0]->cols(), kids[1]->cols());
      break;
    case OpKind::kScalarMul:
      want_rows = kids[0]->rows();
      want_cols = kids[0]->cols();
      break;
    case OpKind::kSum:
      want_rows = 1;
      want_cols = 1;
      break;
    case OpKind::kRowSums:
      want_rows = kids[0]->rows();
      want_cols = 1;
      break;
    case OpKind::kColSums:
      want_rows = 1;
      want_cols = kids[0]->cols();
      break;
    case OpKind::kScaleColumns:
      if (Known(kids[1]->rows()) && kids[1]->rows() != 1) {
        AddDiag(diags, Severity::kError, "verify.shape_mismatch", node,
                "scale_columns scale operand is " +
                    ShapeStr(kids[1]->rows(), kids[1]->cols()) +
                    ", expected a row vector");
      }
      if (!DimsCompatible(kids[0]->cols(), kids[1]->cols())) {
        AddDiag(diags, Severity::kError, "verify.shape_mismatch", node,
                "scale_columns column counts disagree: " +
                    std::to_string(kids[0]->cols()) + " vs " +
                    std::to_string(kids[1]->cols()));
      }
      want_rows = kids[0]->rows();
      want_cols = MergeDims(kids[0]->cols(), kids[1]->cols());
      break;
  }
  if (node->rows() != want_rows || node->cols() != want_cols) {
    AddDiag(diags, Severity::kError, "verify.stale_shape", node,
            "node records shape " + ShapeStr(node->rows(), node->cols()) +
                " but " +
                (node->kind() == OpKind::kInput ? "its bound operand is "
                                                : "its children derive ") +
                ShapeStr(want_rows, want_cols));
  }
}

// Collects every distinct node under `root` (cycle-tolerant: a back edge is
// simply not re-walked).
std::vector<const ExprNode*> CollectNodes(const ExprPtr& root) {
  std::vector<const ExprNode*> order;
  if (!root) return order;
  std::unordered_set<const ExprNode*> seen;
  std::vector<const ExprNode*> stack{root.get()};
  while (!stack.empty()) {
    const ExprNode* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    order.push_back(node);
    for (const auto& c : node->children()) {
      if (c) stack.push_back(c.get());
    }
  }
  return order;
}

size_t CountErrors(const std::vector<Diagnostic>& diags) {
  size_t n = 0;
  for (const auto& d : diags) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

// Canonical structural value identity shared across two DAGs: two nodes get
// the same id iff they compute the same value under the CSE equivalence
// (same kind, same scalar, payload-identical leaves, same child ids).
// Mirrors cse.cpp's NodeKey so the soundness check and the pass agree on
// what "the same value" means.
class ValueIdTable {
 public:
  size_t Intern(const ExprNode* node) {
    if (node == nullptr) return 0;
    auto it = memo_.find(node);
    if (it != memo_.end()) return it->second;
    if (!visiting_.insert(node).second) return 0;  // Cycle sentinel.
    std::ostringstream key;
    key << OpKindName(node->kind());
    if (node->kind() == OpKind::kInput) {
      // Bound leaves are equal iff they wrap the same payload; placeholder
      // leaves only equal themselves.
      const void* identity = node->operand().bound()
                                 ? node->operand().payload()
                                 : static_cast<const void*>(node);
      key << "@" << identity;
      // Row-windowed views of one payload are distinct values per window.
      if (node->operand().windowed()) {
        key << "[" << node->operand().window_begin() << ","
            << node->operand().window_end() << ")";
      }
    } else if (node->kind() == OpKind::kScalarMul) {
      key << "#" << std::hexfloat << node->scalar();
    }
    for (const auto& c : node->children()) {
      key << ":" << Intern(c.get());
    }
    visiting_.erase(node);
    auto [slot, inserted] = ids_.emplace(key.str(), ids_.size() + 1);
    memo_[node] = slot->second;
    return slot->second;
  }

 private:
  std::map<std::string, size_t> ids_;
  std::unordered_map<const ExprNode*, size_t> memo_;
  std::unordered_set<const ExprNode*> visiting_;
};

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

bool VerifyEnabled() {
#ifdef NDEBUG
  constexpr bool kDefault = false;
#else
  constexpr bool kDefault = true;
#endif
  return EnvFlag("DMML_VERIFY", kDefault);
}

bool LintEnabled() { return EnvFlag("DMML_LINT", false); }

std::vector<Diagnostic> VerifyPlan(const ExprPtr& root) {
  DMML_COUNTER_INC("laopt.verify.runs");
  std::vector<Diagnostic> diags;
  if (!root) {
    AddDiag(&diags, Severity::kError, "verify.null_root", nullptr,
            "plan root is null");
    DMML_COUNTER_INC("laopt.verify.errors");
    return diags;
  }

  // Iterative DFS with gray/black coloring: a gray-to-gray edge is a cycle.
  enum Color : uint8_t { kGray, kBlack };
  std::unordered_map<const ExprNode*, Color> color;
  std::vector<std::pair<const ExprNode*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  color[root.get()] = kGray;
  bool cycle_reported = false;
  while (!stack.empty()) {
    auto& top = stack.back();
    const ExprNode* node = top.first;
    if (top.second < node->children().size()) {
      const ExprNode* child = node->children()[top.second].get();
      ++top.second;
      if (child == nullptr) continue;  // Reported by CheckNode.
      auto it = color.find(child);
      if (it == color.end()) {
        color[child] = kGray;
        stack.emplace_back(child, 0);
      } else if (it->second == kGray && !cycle_reported) {
        AddDiag(&diags, Severity::kError, "verify.cycle", child,
                "plan is not a DAG: node is reachable from itself");
        cycle_reported = true;
      }
    } else {
      color[node] = kBlack;
      CheckNode(node, &diags);
      stack.pop_back();
    }
  }

  DMML_COUNTER_ADD("laopt.verify.errors", CountErrors(diags));
  return diags;
}

std::vector<Diagnostic> VerifyRewrite(const std::string& pass,
                                      const ExprPtr& before,
                                      const ExprPtr& after,
                                      bool expect_hash_consed) {
  DMML_COUNTER_INC("laopt.verify.rewrites");
  std::vector<Diagnostic> diags = VerifyPlan(after);
  if (!before) {
    AddDiag(&diags, Severity::kError, "verify.null_root", nullptr,
            "pre-rewrite plan root is null (pass '" + pass + "')");
  }
  if (!before || !after) {
    DMML_COUNTER_ADD("laopt.verify.errors", before ? 0 : 1);
    return diags;
  }
  const size_t prior_errors = CountErrors(diags);

  if (before->rows() != after->rows() || before->cols() != after->cols()) {
    AddDiag(&diags, Severity::kError, "verify.root_shape", after.get(),
            "pass '" + pass + "' changed the root shape from " +
                ShapeStr(before->rows(), before->cols()) + " to " +
                ShapeStr(after->rows(), after->cols()));
  }

  // Leaf provenance: a rewrite may drop inputs (dead code) but must never
  // invent a bound payload or substitute a different placeholder node.
  std::unordered_set<const void*> before_payloads;
  std::unordered_set<const ExprNode*> before_placeholders;
  for (const ExprNode* n : CollectNodes(before)) {
    if (n->kind() != OpKind::kInput) continue;
    if (n->operand().bound()) {
      before_payloads.insert(n->operand().payload());
    } else {
      before_placeholders.insert(n);
    }
  }
  const std::vector<const ExprNode*> after_nodes = CollectNodes(after);
  for (const ExprNode* n : after_nodes) {
    if (n->kind() != OpKind::kInput) continue;
    if (n->operand().bound()) {
      if (before_payloads.count(n->operand().payload()) == 0) {
        AddDiag(&diags, Severity::kError, "verify.foreign_leaf", n,
                "pass '" + pass +
                    "' introduced a bound leaf absent from the input plan");
      }
    } else if (before_placeholders.count(n) == 0) {
      AddDiag(&diags, Severity::kError, "verify.foreign_leaf", n,
              "pass '" + pass +
                  "' replaced a placeholder leaf (bindings would no longer "
                  "attach)");
    }
  }

  // CSE/fusion soundness: every structural value class of the input is still
  // produced, by exactly one survivor. Only meaningful for hash-consing
  // passes — rewrites like chain reordering legitimately retire value
  // classes. Skipped when the output already failed structurally (a cyclic
  // `after` has no well-defined value classes).
  if (expect_hash_consed && prior_errors == 0) {
    ValueIdTable table;
    std::unordered_map<size_t, const ExprNode*> before_by_id;
    for (const ExprNode* n : CollectNodes(before)) {
      before_by_id.emplace(table.Intern(n), n);
    }
    std::unordered_map<size_t, size_t> after_count;
    for (const ExprNode* n : after_nodes) ++after_count[table.Intern(n)];
    for (const auto& [id, node] : before_by_id) {
      auto it = after_count.find(id);
      if (it == after_count.end()) {
        AddDiag(&diags, Severity::kError, "verify.value_lost", node,
                "pass '" + pass +
                    "' no longer produces this value of the input plan");
      } else if (it->second != 1) {
        AddDiag(&diags, Severity::kError, "verify.duplicate_value", node,
                "pass '" + pass + "' left " + std::to_string(it->second) +
                    " structurally identical producers of this value");
      }
    }
  }

  // Estimate drift is informational: chain reordering changes the
  // independence-model sparsity estimate without changing the value.
  if (CountErrors(diags) == 0) {
    AnalysisOptions cheap;
    cheap.exact_input_nnz = false;
    auto ab = AnalyzeDag(before, cheap);
    auto aa = AnalyzeDag(after, cheap);
    if (ab.ok() && aa.ok()) {
      const NodeAnalysis* nb = ab->Find(before.get());
      const NodeAnalysis* na = aa->Find(after.get());
      if (nb != nullptr && na != nullptr &&
          std::abs(nb->sparsity - na->sparsity) > 1e-9) {
        AddDiag(&diags, Severity::kInfo, "verify.sparsity_drift", after.get(),
                "pass '" + pass + "' moved the root sparsity estimate from " +
                    std::to_string(nb->sparsity) + " to " +
                    std::to_string(na->sparsity));
      }
    }
  }

  DMML_COUNTER_ADD("laopt.verify.errors", CountErrors(diags) - prior_errors);
  return diags;
}

namespace {

std::vector<Diagnostic> LintImpl(const ExprPtr& root,
                                 const std::vector<std::string>* bound_names) {
  DMML_COUNTER_INC("laopt.verify.lint_runs");
  std::vector<Diagnostic> diags;
  if (!root) return diags;

  const std::vector<const ExprNode*> nodes = CollectNodes(root);
  std::unordered_map<const ExprNode*, std::vector<const ExprNode*>> consumers;
  for (const ExprNode* n : nodes) {
    for (const auto& c : n->children()) {
      if (c) consumers[c.get()].push_back(n);
    }
  }

  DagAnalysis analysis;
  const bool have_analysis = analysis.Ensure(root).ok();
  if (!have_analysis) {
    AddDiag(&diags, Severity::kWarning, "lint.analysis_failed", root.get(),
            "plan-time analysis failed; sparsity-based lint rules skipped");
  }

  // The representation a node's value actually has at run time, mirroring
  // the executor's dispatch: bound leaves keep their repr, a transpose of a
  // runtime-sparse value stays sparse (native CSR transpose), everything
  // else materializes dense.
  std::unordered_map<const ExprNode*, Repr> repr_memo;
  auto runtime_repr = [&](const ExprNode* n, auto&& self) -> Repr {
    auto it = repr_memo.find(n);
    if (it != repr_memo.end()) return it->second;
    Repr r = Repr::kDense;
    if (n->kind() == OpKind::kInput) {
      if (n->operand().bound()) r = n->operand().repr();
    } else if (n->kind() == OpKind::kTranspose && !n->children().empty()) {
      if (self(n->children()[0].get(), self) == Repr::kSparse) {
        r = Repr::kSparse;
      }
    }
    repr_memo.emplace(n, r);
    return r;
  };
  auto repr_of = [&](const ExprNode* n) { return runtime_repr(n, runtime_repr); };

  // True when the executor's fused kernels absorb `n` so it never evaluates
  // standalone: the ⊙ inside rowSums(G ⊙ G), or a t(X) consumed only as the
  // left factor of matmuls (t(U)·V family, native for every repr).
  auto absorbed_by_fusion = [&](const ExprNode* n) {
    const auto it = consumers.find(n);
    if (it == consumers.end() || it->second.empty()) return false;
    if (n->kind() == OpKind::kElemMul && n->children().size() == 2 &&
        n->children()[0].get() == n->children()[1].get()) {
      for (const ExprNode* p : it->second) {
        if (p->kind() != OpKind::kRowSums) return false;
      }
      return true;
    }
    if (n->kind() == OpKind::kTranspose) {
      for (const ExprNode* p : it->second) {
        if (p->kind() != OpKind::kMatMul || p->children().empty() ||
            p->children()[0].get() != n) {
          return false;
        }
      }
      return true;
    }
    return false;
  };

  for (const ExprNode* n : nodes) {
    const auto& kids = n->children();
    switch (n->kind()) {
      case OpKind::kScalarMul:
        if (n->scalar() == 0.0) {
          AddDiag(&diags, Severity::kWarning, "lint.dead_zero_scalar", n,
                  "multiplies by a statically-zero scalar: the operand "
                  "subtree is dead and the result is all zeros");
        } else if (!std::isfinite(n->scalar())) {
          AddDiag(&diags, Severity::kWarning, "lint.nonfinite_scalar", n,
                  "scalar factor is not finite: the result is NaN/Inf "
                  "everywhere the operand is nonzero");
        }
        break;
      case OpKind::kTranspose:
        if (!kids.empty() && kids[0] &&
            kids[0]->kind() == OpKind::kTranspose) {
          AddDiag(&diags, Severity::kWarning, "lint.redundant_transpose", n,
                  "t(t(X)) is the identity; the optimizer's transpose "
                  "elimination removes this pair");
        }
        break;
      case OpKind::kSubtract:
        if (kids.size() == 2 && kids[0] && kids[0].get() == kids[1].get()) {
          AddDiag(&diags, Severity::kWarning, "lint.self_subtract", n,
                  "subtracts an expression from itself: statically zero");
        }
        break;
      default:
        break;
    }

    if (have_analysis &&
        (n->kind() == OpKind::kMatMul || n->kind() == OpKind::kElemMul)) {
      for (const auto& c : kids) {
        const NodeAnalysis* ca = c ? analysis.Find(c.get()) : nullptr;
        if (ca != nullptr && ca->sparsity == 0.0) {
          AddDiag(&diags, Severity::kWarning, "lint.zero_operand", n,
                  "operand's static sparsity bound is 0 (all zeros), so the "
                  "product is statically zero");
          break;
        }
      }
    }

    // Always-densifying repr choices: a non-dense value reaching a kernel
    // family that only runs dense costs one densify per Run(), forever.
    const ExprNode* densified = nullptr;
    switch (n->kind()) {
      case OpKind::kMatMul:
        // The generic matmul path densifies its right operand; every fused
        // left-side pattern (t(U)·V, gram, compressed/sparse gevm) keeps the
        // left factor native.
        if (kids.size() == 2 && kids[1] && repr_of(kids[1].get()) != Repr::kDense) {
          densified = kids[1].get();
        }
        break;
      case OpKind::kAdd:
      case OpKind::kSubtract:
      case OpKind::kElemMul:
      case OpKind::kScalarMul:
        if (!absorbed_by_fusion(n)) {
          for (const auto& c : kids) {
            if (c && repr_of(c.get()) != Repr::kDense) {
              densified = c.get();
              break;
            }
          }
        }
        break;
      case OpKind::kTranspose:
        if (!kids.empty() && kids[0] &&
            (repr_of(kids[0].get()) == Repr::kCompressed ||
             repr_of(kids[0].get()) == Repr::kFactorized) &&
            !absorbed_by_fusion(n)) {
          densified = kids[0].get();
        }
        break;
      default:
        break;  // sum/rowSums/colSums execute natively on every repr.
    }
    if (densified != nullptr) {
      AddDiag(&diags, Severity::kWarning, "lint.densify_bound", n,
              "operand " + Abbreviate(densified) + " (" +
                  ReprName(repr_of(densified)) +
                  ") is densified on every run by this " +
                  OpKindName(n->kind()) + " node");
    }
  }

  if (bound_names != nullptr) {
    std::unordered_set<std::string> leaf_names;
    for (const ExprNode* n : nodes) {
      if (n->kind() == OpKind::kInput && !n->name().empty()) {
        leaf_names.insert(n->name());
      }
    }
    for (const std::string& name : *bound_names) {
      if (leaf_names.count(name) == 0) {
        diags.push_back({Severity::kWarning, "lint.unused_binding", name,
                         "bound in the environment but never referenced by "
                         "the plan"});
      }
    }
  }

  DMML_COUNTER_ADD("laopt.verify.lint_findings", diags.size());
  return diags;
}

}  // namespace

std::vector<Diagnostic> LintPlan(const ExprPtr& root) {
  return LintImpl(root, nullptr);
}

std::vector<Diagnostic> LintPlan(const ExprPtr& root,
                                 const std::vector<std::string>& bound_names) {
  return LintImpl(root, &bound_names);
}

Severity MaxSeverity(const std::vector<Diagnostic>& diags) {
  Severity max = Severity::kInfo;
  for (const auto& d : diags) {
    if (d.severity > max) max = d.severity;
  }
  return max;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  for (const auto& d : diags) {
    os << SeverityName(d.severity) << " [" << d.rule << "] " << d.node << ": "
       << d.message << "\n";
  }
  return os.str();
}

Status DiagnosticsToStatus(const std::string& pass,
                           const std::vector<Diagnostic>& diags) {
  for (const auto& d : diags) {
    if (d.severity != Severity::kError) continue;
    DMML_COUNTER_INC("laopt.verify.pass_failures");
    return Status::Internal("plan verification failed in pass '" + pass +
                            "' at node " + d.node + ": " + d.message + "\n" +
                            RenderDiagnostics(diags));
  }
  return Status::OK();
}

Status VerifyPassOutput(const std::string& pass, const ExprPtr& before,
                        const ExprPtr& after, bool expect_hash_consed,
                        std::vector<Diagnostic>* out_diags) {
  if (!VerifyEnabled()) return Status::OK();
  std::vector<Diagnostic> diags =
      VerifyRewrite(pass, before, after, expect_hash_consed);
  if (out_diags != nullptr) {
    out_diags->insert(out_diags->end(), diags.begin(), diags.end());
  }
  return DiagnosticsToStatus(pass, diags);
}

}  // namespace dmml::laopt
