#include "laopt/optimizer.h"

#include <limits>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::laopt {

namespace {

// Flattens a left/right-nested MatMul tree into its ordered factor list.
void FlattenChain(const ExprPtr& node, std::vector<ExprPtr>* factors) {
  if (node->kind() == OpKind::kMatMul) {
    FlattenChain(node->children()[0], factors);
    FlattenChain(node->children()[1], factors);
  } else {
    factors->push_back(node);
  }
}

// Estimated flops of the gemm (rows x inner, sparsity s_left) · (inner x
// cols): sparse-aware kernels skip the left operand's zero cells, so the
// dense 2·rows·inner·cols is discounted by s_left.
double GemmCost(size_t rows, size_t inner, size_t cols, double s_left) {
  return 2.0 * static_cast<double>(rows) * static_cast<double>(inner) *
         static_cast<double>(cols) * s_left;
}

// O(m^3) matrix-chain DP over analyzer factor estimates (shape + sparsity);
// intermediate sparsities are propagated with the analyzer's matmul formula
// so downstream gemms of a sparse partial product get cheaper. Returns split
// points; splits[i][j] is the optimal split index for factors [i, j].
double ChainDp(const std::vector<ChainFactor>& factors,
               std::vector<std::vector<size_t>>* splits) {
  const size_t m = factors.size();
  std::vector<std::vector<double>> cost(m, std::vector<double>(m, 0.0));
  std::vector<std::vector<double>> sparsity(m, std::vector<double>(m, 1.0));
  splits->assign(m, std::vector<size_t>(m, 0));
  for (size_t i = 0; i < m; ++i) sparsity[i][i] = factors[i].sparsity;
  for (size_t len = 2; len <= m; ++len) {
    for (size_t i = 0; i + len <= m; ++i) {
      size_t j = i + len - 1;
      cost[i][j] = std::numeric_limits<double>::infinity();
      for (size_t k = i; k < j; ++k) {
        double c = cost[i][k] + cost[k + 1][j] +
                   GemmCost(factors[i].rows, factors[k].cols, factors[j].cols,
                            sparsity[i][k]);
        if (c < cost[i][j]) {
          cost[i][j] = c;
          (*splits)[i][j] = k;
          sparsity[i][j] = MatMulSparsityEstimate(
              sparsity[i][k], sparsity[k + 1][j], factors[k].cols);
        }
      }
    }
  }
  return m >= 2 ? cost[0][m - 1] : 0.0;
}

Result<ExprPtr> RebuildChain(const std::vector<ExprPtr>& factors,
                             const std::vector<std::vector<size_t>>& splits, size_t i,
                             size_t j) {
  if (i == j) return factors[i];
  size_t k = splits[i][j];
  DMML_ASSIGN_OR_RETURN(ExprPtr left, RebuildChain(factors, splits, i, k));
  DMML_ASSIGN_OR_RETURN(ExprPtr right, RebuildChain(factors, splits, k + 1, j));
  return ExprNode::MatMul(std::move(left), std::move(right));
}

// Sparsity a factor contributes to chain costing. A zero-skipping kernel
// only runs when the planner keeps the factor on a sparse representation;
// a dense kernel multiplies the zeros too, so a dense-chosen factor costs
// as fully dense regardless of its nnz.
double EffectiveChainSparsity(const NodeAnalysis& a) {
  return a.chosen_repr == Repr::kDense ? 1.0 : a.sparsity;
}

// Cost of the chain as currently parenthesized, under the same sparsity-
// aware model as ChainDp, used to decide whether reordering is profitable.
Result<double> CurrentChainCost(const ExprPtr& node, DagAnalysis* analysis) {
  if (node->kind() != OpKind::kMatMul) return 0.0;
  const ExprPtr& left = node->children()[0];
  const ExprPtr& right = node->children()[1];
  DMML_ASSIGN_OR_RETURN(double cl, CurrentChainCost(left, analysis));
  DMML_ASSIGN_OR_RETURN(double cr, CurrentChainCost(right, analysis));
  DMML_ASSIGN_OR_RETURN(NodeAnalysis la, analysis->Ensure(left));
  return cl + cr + GemmCost(left->rows(), left->cols(), right->cols(),
                            EffectiveChainSparsity(la));
}

class Rewriter {
 public:
  Rewriter(const OptimizerOptions& options, OptimizerReport* report,
           DagAnalysis* analysis)
      : options_(options), report_(report), analysis_(analysis) {}

  Result<ExprPtr> Rewrite(const ExprPtr& node) {
    auto it = memo_.find(node.get());
    if (it != memo_.end()) return it->second;
    DMML_ASSIGN_OR_RETURN(ExprPtr result, RewriteUncached(node));
    memo_.emplace(node.get(), result);
    return result;
  }

 private:
  Result<ExprPtr> RewriteUncached(const ExprPtr& node) {
    // Rewrite children first (bottom-up).
    std::vector<ExprPtr> kids;
    kids.reserve(node->children().size());
    for (const auto& c : node->children()) {
      DMML_ASSIGN_OR_RETURN(ExprPtr k, Rewrite(c));
      kids.push_back(std::move(k));
    }

    switch (node->kind()) {
      case OpKind::kInput:
        return node;
      case OpKind::kTranspose: {
        // t(t(X)) -> X.
        if (options_.eliminate_transposes &&
            kids[0]->kind() == OpKind::kTranspose) {
          if (report_) report_->transposes_eliminated++;
          DMML_COUNTER_INC("laopt.rewrite.transposes_eliminated");
          return kids[0]->children()[0];
        }
        return ExprNode::Transpose(kids[0]);
      }
      case OpKind::kScalarMul: {
        // a*(b*X) -> (a*b)*X.
        if (options_.fold_scalars && kids[0]->kind() == OpKind::kScalarMul) {
          if (report_) report_->scalars_folded++;
          DMML_COUNTER_INC("laopt.rewrite.scalars_folded");
          return ExprNode::ScalarMul(node->scalar() * kids[0]->scalar(),
                                     kids[0]->children()[0]);
        }
        return ExprNode::ScalarMul(node->scalar(), kids[0]);
      }
      case OpKind::kMatMul: {
        // Hoist scalars out of products: (aX)·Y -> a(X·Y).
        double scalar = 1.0;
        if (options_.fold_scalars) {
          for (auto& k : kids) {
            while (k->kind() == OpKind::kScalarMul) {
              scalar *= k->scalar();
              k = k->children()[0];
              if (report_) report_->scalars_folded++;
              DMML_COUNTER_INC("laopt.rewrite.scalars_folded");
            }
          }
        }
        DMML_ASSIGN_OR_RETURN(ExprPtr mm, ExprNode::MatMul(kids[0], kids[1]));
        if (options_.reorder_chains) {
          std::vector<ExprPtr> factors;
          FlattenChain(mm, &factors);
          bool all_known = true;
          for (const auto& f : factors) all_known &= f->HasKnownShape();
          if (factors.size() > 2 && all_known) {
            // Cost candidate orders with the analyzer's shape and sparsity
            // estimates instead of raw node dimensions.
            std::vector<ChainFactor> chain;
            chain.reserve(factors.size());
            for (const auto& f : factors) {
              DMML_ASSIGN_OR_RETURN(NodeAnalysis fa, analysis_->Ensure(f));
              chain.push_back({f->rows(), f->cols(), EffectiveChainSparsity(fa)});
            }
            std::vector<std::vector<size_t>> splits;
            double optimal = ChainDp(chain, &splits);
            DMML_ASSIGN_OR_RETURN(double current, CurrentChainCost(mm, analysis_));
            if (report_) report_->chains_costed++;
            DMML_COUNTER_INC("laopt.optimize.chains_costed");
            if (optimal + 0.5 < current) {
              DMML_ASSIGN_OR_RETURN(
                  mm, RebuildChain(factors, splits, 0, factors.size() - 1));
              if (report_) report_->chains_reordered++;
              DMML_COUNTER_INC("laopt.rewrite.chains_reordered");
            }
          }
        }
        if (scalar != 1.0) return ExprNode::ScalarMul(scalar, mm);
        return mm;
      }
      case OpKind::kAdd:
        return ExprNode::Add(kids[0], kids[1]);
      case OpKind::kSubtract:
        return ExprNode::Subtract(kids[0], kids[1]);
      case OpKind::kElemMul:
        return ExprNode::ElemMul(kids[0], kids[1]);
      case OpKind::kSum: {
        // sum(a * X) -> a * sum(X).
        if (options_.fold_scalars && kids[0]->kind() == OpKind::kScalarMul) {
          if (report_) report_->scalars_folded++;
          DMML_ASSIGN_OR_RETURN(ExprPtr inner,
                                ExprNode::Sum(kids[0]->children()[0]));
          return ExprNode::ScalarMul(kids[0]->scalar(), inner);
        }
        // sum(A %*% B) -> colSums(A) %*% rowSums(B): O(nmk) -> O(nk + km).
        if (options_.reorder_chains && kids[0]->kind() == OpKind::kMatMul) {
          if (report_) report_->chains_reordered++;
          DMML_COUNTER_INC("laopt.rewrite.chains_reordered");
          DMML_ASSIGN_OR_RETURN(ExprPtr cs,
                                ExprNode::ColSums(kids[0]->children()[0]));
          DMML_ASSIGN_OR_RETURN(ExprPtr rs,
                                ExprNode::RowSums(kids[0]->children()[1]));
          return ExprNode::MatMul(std::move(cs), std::move(rs));
        }
        return ExprNode::Sum(kids[0]);
      }
      case OpKind::kRowSums:
        return ExprNode::RowSums(kids[0]);
      case OpKind::kColSums:
        return ExprNode::ColSums(kids[0]);
      case OpKind::kScaleColumns:
        return ExprNode::ScaleColumns(kids[0], kids[1]);
    }
    return Status::Internal("unknown op kind");
  }

  const OptimizerOptions& options_;
  OptimizerReport* report_;
  DagAnalysis* analysis_;
  std::unordered_map<const ExprNode*, ExprPtr> memo_;
};

}  // namespace

Result<ExprPtr> Optimize(const ExprPtr& root, const OptimizerOptions& options,
                         OptimizerReport* report, DagAnalysis* analysis) {
  if (!root) return Status::InvalidArgument("Optimize: null expression");
  DMML_TRACE_SPAN("laopt.optimize");
  if (report) {
    *report = OptimizerReport{};
    report->flops_before = EstimateFlops(root);
  }
  DagAnalysis local_analysis;
  Rewriter rewriter(options, report, analysis ? analysis : &local_analysis);
  DMML_ASSIGN_OR_RETURN(ExprPtr result, rewriter.Rewrite(root));
  // Checked-build soundness gate: the rewritten DAG must verify and preserve
  // the root's value shape; a failure names this pass and the node.
  DMML_RETURN_IF_ERROR(VerifyPassOutput("optimizer", root, result,
                                        /*expect_hash_consed=*/false,
                                        report ? &report->verify : nullptr));
  if (report) report->flops_after = EstimateFlops(result);
  return result;
}

double OptimalChainCost(const std::vector<std::pair<size_t, size_t>>& shapes) {
  std::vector<ChainFactor> factors;
  factors.reserve(shapes.size());
  for (const auto& s : shapes) factors.push_back({s.first, s.second, 1.0});
  return OptimalSparseChainCost(factors);
}

double OptimalSparseChainCost(const std::vector<ChainFactor>& factors) {
  std::vector<std::vector<size_t>> splits;
  return ChainDp(factors, &splits);
}

}  // namespace dmml::laopt
