/// \file pipeline.h
/// \brief The full compilation pipeline: logical rewrites → structural CSE →
/// fused execution, with a consolidated plan report.
///
/// This is the "SystemML in one call" entry point: callers hand over a DAG
/// (hand-built or parsed from the expression language) and get the optimized
/// result plus a report of everything the compiler did.
#ifndef DMML_LAOPT_PIPELINE_H_
#define DMML_LAOPT_PIPELINE_H_

#include "laopt/cse.h"
#include "laopt/expr.h"
#include "laopt/fusion.h"
#include "laopt/optimizer.h"

namespace dmml::laopt {

/// \brief Pipeline configuration.
struct PipelineOptions {
  OptimizerOptions rewrites;   ///< Pass selection for the rewriter.
  bool run_cse = true;
  bool run_fusion = true;
};

/// \brief Everything the compiler did to the plan.
struct PlanReport {
  OptimizerReport rewriter;
  CseReport cse;
  FusionStats fusion;
  double estimated_flops_in = 0;
  double estimated_flops_out = 0;
};

/// \brief Compiles `root` through all enabled passes; returns the final DAG.
Result<ExprPtr> CompilePlan(const ExprPtr& root, const PipelineOptions& options = {},
                            PlanReport* report = nullptr);

/// \brief Compile + execute in one call (fused execution when enabled).
Result<la::DenseMatrix> CompileAndExecute(const ExprPtr& root,
                                          const PipelineOptions& options = {},
                                          PlanReport* report = nullptr);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_PIPELINE_H_
