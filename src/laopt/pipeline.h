/// \file pipeline.h
/// \brief The full compilation pipeline: logical rewrites → structural CSE →
/// fused execution, with a consolidated plan report.
///
/// This is the "SystemML in one call" entry point: callers hand over a DAG
/// (hand-built or parsed from the expression language) and get the optimized
/// result plus a report of everything the compiler did.
#ifndef DMML_LAOPT_PIPELINE_H_
#define DMML_LAOPT_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "laopt/analysis.h"
#include "laopt/cse.h"
#include "laopt/expr.h"
#include "laopt/fusion.h"
#include "laopt/optimizer.h"
#include "laopt/verify.h"

namespace dmml::laopt {

/// \brief Pipeline configuration.
struct PipelineOptions {
  OptimizerOptions rewrites;   ///< Pass selection for the rewriter.
  AnalysisOptions analysis;    ///< Static-analyzer knobs.
  FusionOptions fusion;        ///< Fusion memory guard.
  bool run_analysis = true;    ///< Shape/sparsity/memory inference + validation.
  bool run_cse = true;
  bool run_fusion = true;
  /// Capture the analyzer's per-node dump of the final plan in
  /// PlanReport::explain (also printed to the log when the DMML_EXPLAIN
  /// environment variable is set non-empty).
  bool capture_explain = false;
};

/// \brief Everything the compiler did to the plan.
struct PlanReport {
  OptimizerReport rewriter;
  CseReport cse;
  FusionStats fusion;
  double estimated_flops_in = 0;
  double estimated_flops_out = 0;

  // Static-analysis summary of the final plan (valid when run_analysis).
  size_t analysis_nodes = 0;        ///< Nodes the analyzer visited.
  double output_sparsity = 1.0;     ///< Estimated sparsity of the result.
  bool output_bytes_known = false;  ///< Shape fully known at plan time.
  uint64_t output_est_bytes = 0;    ///< Estimated result footprint.
  std::string explain;              ///< Per-node dump (capture_explain only).

  /// Consolidated non-fatal verifier diagnostics (input plan + every pass)
  /// and — under DMML_LINT=1 — lint findings on the final plan. Also
  /// appended to `explain` and the DMML_EXPLAIN log dump, so diagnostics are
  /// never silently dropped. Error-severity verifier findings abort
  /// CompilePlan with a Status naming the pass and node instead.
  std::vector<Diagnostic> diagnostics;
};

/// \brief Compiles `root` through all enabled passes; returns the final DAG.
///
/// The static analyzer runs first: a shape-inconsistent program is rejected
/// here — before any rewrite or execution — with a diagnostic naming the
/// offending node and both operand shapes. Analyzer estimates then feed the
/// optimizer's chain costing and (via CompileAndExecute) the fusion memory
/// guard.
Result<ExprPtr> CompilePlan(const ExprPtr& root, const PipelineOptions& options = {},
                            PlanReport* report = nullptr);

/// \brief Compile + execute in one call (fused execution when enabled).
Result<la::DenseMatrix> CompileAndExecute(const ExprPtr& root,
                                          const PipelineOptions& options = {},
                                          PlanReport* report = nullptr);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_PIPELINE_H_
