#include "laopt/fusion.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "la/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::laopt {

using la::DenseMatrix;

namespace {

bool IsElementwise(OpKind kind) {
  return kind == OpKind::kAdd || kind == OpKind::kSubtract ||
         kind == OpKind::kElemMul || kind == OpKind::kScalarMul;
}

size_t CountElementwiseOps(const ExprPtr& node) {
  if (!IsElementwise(node->kind())) return 0;
  size_t count = 1;
  for (const auto& c : node->children()) count += CountElementwiseOps(c);
  return count;
}

// Number of distinct non-elementwise boundary nodes feeding the region —
// each is materialized for the whole fused loop, so each contributes one
// region-shaped matrix to the working set.
void CountRegionInputs(const ExprPtr& node,
                       std::unordered_set<const ExprNode*>* inputs) {
  if (!IsElementwise(node->kind())) {
    inputs->insert(node.get());
    return;
  }
  for (const auto& c : node->children()) CountRegionInputs(c, inputs);
}

// A compiled cell program in postfix form, executed on a small stack.
struct Instruction {
  enum Kind { kLoad, kAdd, kSub, kMul, kScale } kind;
  size_t input = 0;    // kLoad: index into the inputs array.
  double alpha = 1.0;  // kScale.
};

// Compiles the elementwise region into postfix instructions; `inputs`
// collects the region's non-elementwise boundary nodes (deduplicated).
void CompileRegion(const ExprPtr& node, std::vector<Instruction>* program,
                   std::vector<ExprPtr>* inputs,
                   std::unordered_map<const ExprNode*, size_t>* input_index) {
  if (!IsElementwise(node->kind())) {
    auto [it, inserted] = input_index->emplace(node.get(), inputs->size());
    if (inserted) inputs->push_back(node);
    program->push_back({Instruction::kLoad, it->second, 0});
    return;
  }
  for (const auto& c : node->children()) {
    CompileRegion(c, program, inputs, input_index);
  }
  switch (node->kind()) {
    case OpKind::kAdd:
      program->push_back({Instruction::kAdd, 0, 0});
      break;
    case OpKind::kSubtract:
      program->push_back({Instruction::kSub, 0, 0});
      break;
    case OpKind::kElemMul:
      program->push_back({Instruction::kMul, 0, 0});
      break;
    case OpKind::kScalarMul:
      program->push_back({Instruction::kScale, 0, node->scalar()});
      break;
    default:
      break;  // Unreachable: guarded by IsElementwise.
  }
}

}  // namespace

bool IsFusibleRegion(const ExprPtr& node) {
  return node && CountElementwiseOps(node) >= 2;
}

Result<DenseMatrix> ExecuteFused(
    const ExprPtr& node,
    const std::function<Result<DenseMatrix>(const ExprPtr&)>& eval_child) {
  if (!IsFusibleRegion(node)) {
    return Status::InvalidArgument("ExecuteFused: not a fusible region");
  }
  std::vector<Instruction> program;
  std::vector<ExprPtr> input_nodes;
  std::unordered_map<const ExprNode*, size_t> input_index;
  CompileRegion(node, &program, &input_nodes, &input_index);

  std::vector<DenseMatrix> inputs;
  inputs.reserve(input_nodes.size());
  for (const auto& in : input_nodes) {
    DMML_ASSIGN_OR_RETURN(DenseMatrix m, eval_child(in));
    if (m.rows() != node->rows() || m.cols() != node->cols()) {
      return Status::Internal("fused region input shape mismatch");
    }
    inputs.push_back(std::move(m));
  }

  DenseMatrix out(node->rows(), node->cols());
  const size_t cells = out.size();
  std::vector<double> stack(program.size());
  for (size_t i = 0; i < cells; ++i) {
    size_t top = 0;
    for (const Instruction& ins : program) {
      switch (ins.kind) {
        case Instruction::kLoad:
          stack[top++] = inputs[ins.input].data()[i];
          break;
        case Instruction::kAdd:
          --top;
          stack[top - 1] += stack[top];
          break;
        case Instruction::kSub:
          --top;
          stack[top - 1] -= stack[top];
          break;
        case Instruction::kMul:
          --top;
          stack[top - 1] *= stack[top];
          break;
        case Instruction::kScale:
          stack[top - 1] *= ins.alpha;
          break;
      }
    }
    out.data()[i] = stack[0];
  }
  return out;
}

namespace {

class FusingEvaluator {
 public:
  FusingEvaluator(const FusionOptions& options, FusionStats* stats,
                  DagAnalysis* analysis)
      : options_(options), stats_(stats), analysis_(analysis) {}

  Result<DenseMatrix> Eval(const ExprPtr& node) {
    auto it = memo_.find(node.get());
    if (it != memo_.end()) return it->second;
    DMML_ASSIGN_OR_RETURN(DenseMatrix result, EvalUncached(node));
    memo_.emplace(node.get(), result);
    return result;
  }

 private:
  // Memory guard: estimated bytes live while the fused loop runs — every
  // distinct boundary input plus the output, each region-shaped. True (fuse)
  // when no budget is set or the estimate fits.
  Result<bool> RegionFitsBudget(const ExprPtr& node) {
    if (options_.memory_budget_bytes == 0) return true;
    DMML_ASSIGN_OR_RETURN(NodeAnalysis info, analysis_->Ensure(node));
    if (!info.bytes_known) return true;  // Nothing to reason with.
    std::unordered_set<const ExprNode*> inputs;
    CountRegionInputs(node, &inputs);
    bool saturated = info.bytes_saturated;
    uint64_t working_set = info.dense_bytes;
    for (size_t i = 0; i < inputs.size() && !saturated; ++i) {
      if (__builtin_add_overflow(working_set, info.dense_bytes, &working_set)) {
        saturated = true;
      }
    }
    if (saturated) working_set = UINT64_MAX;
    return working_set <= options_.memory_budget_bytes;
  }

  Result<DenseMatrix> EvalUncached(const ExprPtr& node) {
    if (IsFusibleRegion(node)) {
      DMML_ASSIGN_OR_RETURN(bool fuse, RegionFitsBudget(node));
      if (!fuse) {
        if (stats_) stats_->regions_declined++;
        DMML_COUNTER_INC("laopt.fusion.budget_declines");
        return EvalOperator(node);
      }
      if (stats_) {
        stats_->regions_fused++;
        stats_->ops_fused += CountElementwiseOps(node);
      }
      DMML_COUNTER_INC("laopt.fusion.regions_fused");
      DMML_COUNTER_ADD("laopt.fusion.ops_fused", CountElementwiseOps(node));
      return ExecuteFused(node, [this](const ExprPtr& c) { return Eval(c); });
    }
    return EvalOperator(node);
  }

  Result<DenseMatrix> EvalOperator(const ExprPtr& node) {
    if (node->kind() == OpKind::kInput) {
      const Operand& op = node->operand();
      if (!op.bound()) {
        return Status::FailedPrecondition(
            "cannot execute unbound placeholder '" +
            (node->name().empty() ? std::string("_") : node->name()) + "'");
      }
      if (op.repr() == Repr::kDense) return *op.dense();
      // The fusion interpreter is a dense-value engine; non-dense leaves are
      // densified on entry (the buffered executor is the representation-
      // native path).
      DMML_COUNTER_INC("laopt.repr.densify_fallbacks");
      return op.ToDense(nullptr);
    }
    std::vector<DenseMatrix> kids;
    kids.reserve(node->children().size());
    for (const auto& c : node->children()) {
      DMML_ASSIGN_OR_RETURN(DenseMatrix k, Eval(c));
      kids.push_back(std::move(k));
    }
    switch (node->kind()) {
      case OpKind::kMatMul:
        return la::Multiply(kids[0], kids[1]);
      case OpKind::kTranspose:
        return la::Transpose(kids[0]);
      case OpKind::kAdd:
        return la::Add(kids[0], kids[1]);
      case OpKind::kSubtract:
        return la::Subtract(kids[0], kids[1]);
      case OpKind::kElemMul:
        return la::ElementwiseMultiply(kids[0], kids[1]);
      case OpKind::kScalarMul:
        return la::Scale(kids[0], node->scalar());
      case OpKind::kSum: {
        DenseMatrix out(1, 1);
        out.At(0, 0) = la::Sum(kids[0]);
        return out;
      }
      case OpKind::kRowSums:
        return la::RowSums(kids[0]);
      case OpKind::kColSums:
        return la::ColumnSums(kids[0]);
      case OpKind::kScaleColumns:
        return la::ScaleColumns(kids[0], kids[1]);
      case OpKind::kInput:
        break;
    }
    return Status::Internal("unknown op kind in fusing executor");
  }

  const FusionOptions options_;
  FusionStats* stats_;
  DagAnalysis* analysis_;
  std::unordered_map<const ExprNode*, DenseMatrix> memo_;
};

}  // namespace

Result<DenseMatrix> ExecuteWithFusion(const ExprPtr& root,
                                      const FusionOptions& options,
                                      FusionStats* stats, DagAnalysis* analysis) {
  if (!root) return Status::InvalidArgument("ExecuteWithFusion: null expression");
  DMML_TRACE_SPAN("laopt.execute_fused");
  DagAnalysis local_analysis;
  FusingEvaluator evaluator(options, stats,
                            analysis ? analysis : &local_analysis);
  return evaluator.Eval(root);
}

Result<DenseMatrix> ExecuteWithFusion(const ExprPtr& root, FusionStats* stats) {
  return ExecuteWithFusion(root, FusionOptions{}, stats);
}

}  // namespace dmml::laopt
