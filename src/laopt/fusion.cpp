#include "laopt/fusion.h"

#include <unordered_map>
#include <vector>

#include "la/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::laopt {

using la::DenseMatrix;

namespace {

bool IsElementwise(OpKind kind) {
  return kind == OpKind::kAdd || kind == OpKind::kSubtract ||
         kind == OpKind::kElemMul || kind == OpKind::kScalarMul;
}

size_t CountElementwiseOps(const ExprPtr& node) {
  if (!IsElementwise(node->kind())) return 0;
  size_t count = 1;
  for (const auto& c : node->children()) count += CountElementwiseOps(c);
  return count;
}

// A compiled cell program in postfix form, executed on a small stack.
struct Instruction {
  enum Kind { kLoad, kAdd, kSub, kMul, kScale } kind;
  size_t input = 0;    // kLoad: index into the inputs array.
  double alpha = 1.0;  // kScale.
};

// Compiles the elementwise region into postfix instructions; `inputs`
// collects the region's non-elementwise boundary nodes (deduplicated).
void CompileRegion(const ExprPtr& node, std::vector<Instruction>* program,
                   std::vector<ExprPtr>* inputs,
                   std::unordered_map<const ExprNode*, size_t>* input_index) {
  if (!IsElementwise(node->kind())) {
    auto [it, inserted] = input_index->emplace(node.get(), inputs->size());
    if (inserted) inputs->push_back(node);
    program->push_back({Instruction::kLoad, it->second, 0});
    return;
  }
  for (const auto& c : node->children()) {
    CompileRegion(c, program, inputs, input_index);
  }
  switch (node->kind()) {
    case OpKind::kAdd:
      program->push_back({Instruction::kAdd, 0, 0});
      break;
    case OpKind::kSubtract:
      program->push_back({Instruction::kSub, 0, 0});
      break;
    case OpKind::kElemMul:
      program->push_back({Instruction::kMul, 0, 0});
      break;
    case OpKind::kScalarMul:
      program->push_back({Instruction::kScale, 0, node->scalar()});
      break;
    default:
      break;  // Unreachable: guarded by IsElementwise.
  }
}

}  // namespace

bool IsFusibleRegion(const ExprPtr& node) {
  return node && CountElementwiseOps(node) >= 2;
}

Result<DenseMatrix> ExecuteFused(
    const ExprPtr& node,
    const std::function<Result<DenseMatrix>(const ExprPtr&)>& eval_child) {
  if (!IsFusibleRegion(node)) {
    return Status::InvalidArgument("ExecuteFused: not a fusible region");
  }
  std::vector<Instruction> program;
  std::vector<ExprPtr> input_nodes;
  std::unordered_map<const ExprNode*, size_t> input_index;
  CompileRegion(node, &program, &input_nodes, &input_index);

  std::vector<DenseMatrix> inputs;
  inputs.reserve(input_nodes.size());
  for (const auto& in : input_nodes) {
    DMML_ASSIGN_OR_RETURN(DenseMatrix m, eval_child(in));
    if (m.rows() != node->rows() || m.cols() != node->cols()) {
      return Status::Internal("fused region input shape mismatch");
    }
    inputs.push_back(std::move(m));
  }

  DenseMatrix out(node->rows(), node->cols());
  const size_t cells = out.size();
  std::vector<double> stack(program.size());
  for (size_t i = 0; i < cells; ++i) {
    size_t top = 0;
    for (const Instruction& ins : program) {
      switch (ins.kind) {
        case Instruction::kLoad:
          stack[top++] = inputs[ins.input].data()[i];
          break;
        case Instruction::kAdd:
          --top;
          stack[top - 1] += stack[top];
          break;
        case Instruction::kSub:
          --top;
          stack[top - 1] -= stack[top];
          break;
        case Instruction::kMul:
          --top;
          stack[top - 1] *= stack[top];
          break;
        case Instruction::kScale:
          stack[top - 1] *= ins.alpha;
          break;
      }
    }
    out.data()[i] = stack[0];
  }
  return out;
}

namespace {

class FusingEvaluator {
 public:
  explicit FusingEvaluator(FusionStats* stats) : stats_(stats) {}

  Result<DenseMatrix> Eval(const ExprPtr& node) {
    auto it = memo_.find(node.get());
    if (it != memo_.end()) return it->second;
    DMML_ASSIGN_OR_RETURN(DenseMatrix result, EvalUncached(node));
    memo_.emplace(node.get(), result);
    return result;
  }

 private:
  Result<DenseMatrix> EvalUncached(const ExprPtr& node) {
    if (IsFusibleRegion(node)) {
      if (stats_) {
        stats_->regions_fused++;
        stats_->ops_fused += CountElementwiseOps(node);
      }
      DMML_COUNTER_INC("laopt.fusion.regions_fused");
      DMML_COUNTER_ADD("laopt.fusion.ops_fused", CountElementwiseOps(node));
      return ExecuteFused(node, [this](const ExprPtr& c) { return Eval(c); });
    }
    if (node->kind() == OpKind::kInput) return *node->matrix();
    std::vector<DenseMatrix> kids;
    kids.reserve(node->children().size());
    for (const auto& c : node->children()) {
      DMML_ASSIGN_OR_RETURN(DenseMatrix k, Eval(c));
      kids.push_back(std::move(k));
    }
    switch (node->kind()) {
      case OpKind::kMatMul:
        return la::Multiply(kids[0], kids[1]);
      case OpKind::kTranspose:
        return la::Transpose(kids[0]);
      case OpKind::kAdd:
        return la::Add(kids[0], kids[1]);
      case OpKind::kSubtract:
        return la::Subtract(kids[0], kids[1]);
      case OpKind::kElemMul:
        return la::ElementwiseMultiply(kids[0], kids[1]);
      case OpKind::kScalarMul:
        return la::Scale(kids[0], node->scalar());
      case OpKind::kSum: {
        DenseMatrix out(1, 1);
        out.At(0, 0) = la::Sum(kids[0]);
        return out;
      }
      case OpKind::kRowSums:
        return la::RowSums(kids[0]);
      case OpKind::kColSums:
        return la::ColumnSums(kids[0]);
      case OpKind::kInput:
        break;
    }
    return Status::Internal("unknown op kind in fusing executor");
  }

  FusionStats* stats_;
  std::unordered_map<const ExprNode*, DenseMatrix> memo_;
};

}  // namespace

Result<DenseMatrix> ExecuteWithFusion(const ExprPtr& root, FusionStats* stats) {
  if (!root) return Status::InvalidArgument("ExecuteWithFusion: null expression");
  DMML_TRACE_SPAN("laopt.execute_fused");
  FusingEvaluator evaluator(stats);
  return evaluator.Eval(root);
}

}  // namespace dmml::laopt
