/// \file cse.h
/// \brief Structural common-subexpression elimination for LA DAGs.
///
/// The executor already reuses results for *pointer-identical* sub-DAGs;
/// this pass hash-conses the expression tree so structurally identical
/// subtrees built independently (e.g. t(X)·X appearing in two formulas)
/// become the same node and are computed once.
#ifndef DMML_LAOPT_CSE_H_
#define DMML_LAOPT_CSE_H_

#include <vector>

#include "laopt/expr.h"
#include "laopt/verify.h"

namespace dmml::laopt {

/// \brief CSE statistics.
struct CseReport {
  size_t nodes_before = 0;
  size_t nodes_after = 0;
  size_t merges = 0;  ///< Structurally duplicate subtrees unified.

  /// Non-fatal verifier diagnostics from the post-pass soundness check —
  /// including the hash-consing value-coverage check (every input value
  /// class produced by exactly one survivor). Error findings abort the pass.
  std::vector<Diagnostic> verify;
};

/// \brief Rewrites the DAG so equal subtrees share one node. Leaves are
/// considered equal only when they wrap the same matrix buffer (pointer
/// identity on the payload), so no data comparison is needed.
Result<ExprPtr> EliminateCommonSubexpressions(const ExprPtr& root,
                                              CseReport* report = nullptr);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_CSE_H_
