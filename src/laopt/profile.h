/// \file profile.h
/// \brief Runtime plan profiler: per-node execution evidence and the
/// EXPLAIN ANALYZE estimate-vs-actual calibration report.
///
/// `DagAnalysis` (analysis.h) predicts shapes, sparsities, and footprints at
/// plan time; the optimizer trusts those predictions when it orders chains
/// and picks representations. A PlanProfile records what actually happened —
/// per-node wall time, invocation counts, the kernel family that dispatched,
/// densify fallbacks, and the materialized output's nnz — aggregated across
/// every Run() of a BufferedExecutor that has the profile attached via
/// `set_profile`. SystemDS ships a built-in `stats` facility for exactly
/// this reason: per-operator runtime evidence is what keeps a cost model
/// honest across the ML lifecycle.
///
/// `ExplainAnalyzeText` / `ExplainAnalyzeJson` join the recorded actuals
/// against a fresh DagAnalysis of each profiled root and render a
/// Postgres-EXPLAIN-ANALYZE-style report: per node, estimated vs actual
/// sparsity (and the error), estimated vs actual output bytes, and the
/// node's share of actual self time next to its share of the plan-time cost
/// model — the two columns whose disagreement tells you the optimizer is
/// being lied to.
///
/// Profiling is strictly opt-in. An executor without a profile attached
/// executes the exact pre-profiler code path (one pointer test per node);
/// with a profile attached, each node costs two clock reads and one mutex-
/// guarded map update. All PlanProfile methods are thread-safe, so one
/// profile can aggregate across executors and be scraped concurrently via
/// obs::ProfileRegistry (see RegisterProfile below).
#ifndef DMML_LAOPT_PROFILE_H_
#define DMML_LAOPT_PROFILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "laopt/expr.h"
#include "laopt/operand.h"
#include "laopt/verify.h"
#include "obs/profile_registry.h"

namespace dmml::laopt {

struct ExecStats;

/// \brief Accumulated runtime evidence for one DAG node.
struct NodeProfile {
  OpKind kind = OpKind::kInput;
  std::string name;  ///< Leaf name when present, else OpKindName(kind).

  uint64_t invocations = 0;        ///< Times the node actually executed.
  uint64_t memo_hits = 0;          ///< Times a consumer reused the memo.
  uint64_t fused_uses = 0;         ///< Times a consumer's fused kernel absorbed
                                   ///< this node (e.g. t(X) inside t(X)·r) —
                                   ///< it never executes on its own.
  uint64_t total_us = 0;           ///< Inclusive wall micros (children included).
  uint64_t self_us = 0;            ///< Exclusive wall micros (children removed).
  uint64_t densify_fallbacks = 0;  ///< Densifications charged to this node.

  Repr last_dispatch = Repr::kDense;  ///< Kernel family of the last execution.
  Repr out_repr = Repr::kDense;       ///< Representation of the last output.
  size_t out_rows = 0;
  size_t out_cols = 0;
  uint64_t out_nnz = 0;  ///< Nonzeros in the last materialized output.

  /// \brief Measured output sparsity in [0, 1]; 1.0 for an empty output.
  double ActualSparsity() const {
    uint64_t cells = static_cast<uint64_t>(out_rows) * out_cols;
    return cells ? static_cast<double>(out_nnz) / static_cast<double>(cells) : 1.0;
  }

  /// \brief Measured output footprint under `out_repr` (CSR-style ~16 bytes
  /// per nonzero when sparse, dense row-major otherwise).
  uint64_t ActualBytes() const;
};

/// \brief Estimate-side calibration row, captured once per plan at its first
/// profiled Run() — the only moment the profiler can trust the plan's bound
/// operands to be alive. The ExplainAnalyze renderers join against this
/// cache and never touch live operands, so a `/profiles` scrape stays safe
/// even while the plan's owner is mid-training (or long gone).
struct PlanEstimate {
  std::string shape;     ///< Estimated output shape, e.g. "4000x30" or "?x30".
  double sparsity = 1.0; ///< Estimated output sparsity in [0, 1].
  bool bytes_known = false;
  uint64_t est_bytes = 0;       ///< Chosen-representation footprint estimate.
  Repr chosen_repr = Repr::kDense;
  double est_flops = 0.0;  ///< Plan-time work estimate (cost-share numerator).
};

/// \brief Per-node runtime profile for one or more executed plans.
///
/// Attach to a BufferedExecutor with `executor.set_profile(&profile)`; every
/// subsequent Run() adds its per-node samples here. The profile also notes
/// each distinct root it has seen (plus a PlanEstimate snapshot of its
/// analysis) so the ExplainAnalyze renderers are self-contained.
class PlanProfile {
 public:
  PlanProfile() = default;
  PlanProfile(const PlanProfile&) = delete;
  PlanProfile& operator=(const PlanProfile&) = delete;

  // --- write side (called by BufferedExecutor) ---

  /// \brief Marks the start of one Run() over `root`. The first time a root
  /// is seen it is remembered (shared ownership, deduplicated) and its
  /// plan-time analysis is captured into PlanEstimate rows while the bound
  /// operands are still alive.
  void BeginRun(const ExprPtr& root);

  /// \brief Folds one node execution into the profile.
  void AddNodeSample(const ExprNode* node, uint64_t incl_us, uint64_t self_us,
                     Repr dispatch, Repr out_repr, size_t out_rows,
                     size_t out_cols, uint64_t out_nnz);

  /// \brief Charges a densify fallback to `node` (the operand's owner).
  void AddDensify(const ExprNode* node);

  /// \brief Records a memo reuse of `node`'s value.
  void AddMemoHit(const ExprNode* node);

  /// \brief Records that a consumer's fused kernel absorbed `node` (it was
  /// never evaluated as a standalone op — e.g. the transpose inside t(X)·r,
  /// or the ⊙ inside the fused rowSums(G ⊙ G) squared-norms kernel).
  void AddFusedUse(const ExprNode* node);

  /// \brief Marks the end of the Run(); folds the run's ExecStats tally into
  /// the profile-level totals (the public ExecStats is derived from the same
  /// tally, so the two views can never disagree).
  void EndRun(const ExecStats& run_tally);

  // --- read side ---

  uint64_t runs() const;
  size_t NumNodes() const;

  /// \brief Accumulated ExecStats over every profiled run.
  ExecStats TotalStats() const;

  /// \brief Profile for `node`, or nullptr if it never executed. The pointer
  /// stays valid until Reset(); fields may keep advancing under profiling.
  const NodeProfile* Find(const ExprNode* node) const;

  /// \brief Postgres-style EXPLAIN ANALYZE tree over every profiled root:
  /// per node, actual time / invocations / dispatch repr joined against the
  /// captured PlanEstimate row (estimated sparsity and bytes) with the
  /// calibration columns described in the file header.
  std::string ExplainAnalyzeText() const;

  /// \brief The same report as one JSON object:
  /// {"runs":N,"totals":{...},"roots":[{"nodes":[{...}]}]}.
  std::string ExplainAnalyzeJson() const;

  /// \brief Drops all samples and noted roots.
  void Reset();

 private:
  struct Totals {
    uint64_t runs = 0;
    uint64_t ops_executed = 0;
    uint64_t memo_hits = 0;
    uint64_t densify_fallbacks = 0;
  };

  NodeProfile& EnsureNodeLocked(const ExprNode* node);

  mutable std::mutex mu_;
  Totals totals_;
  std::unordered_map<const ExprNode*, NodeProfile> nodes_;
  std::vector<ExprPtr> roots_;  ///< Distinct profiled roots, insertion order.
  std::vector<std::string> root_errors_;  ///< Parallel: analysis failure text.
  /// Parallel: verifier + lint findings captured at first sighting (only
  /// when DMML_VERIFY / DMML_LINT are active), rendered into both
  /// ExplainAnalyze reports so static diagnostics ride along with the
  /// runtime evidence.
  std::vector<std::vector<Diagnostic>> root_diags_;
  std::unordered_map<const ExprNode*, PlanEstimate> est_;  ///< Capture cache.
};

/// \brief Publishes `profile` on the obs exposition endpoint (`/profiles`)
/// under `name` until the returned registration leaves scope. The provider
/// holds shared ownership, so a scrape racing the owner's teardown is safe.
/// A caller that cannot grant shared ownership (it only borrows the profile)
/// may pass a non-owning aliasing shared_ptr, provided the registration is
/// destroyed while the profile is still alive: unregistration blocks until
/// in-flight scrapes of the provider return (ProfileRegistry::Unregister).
obs::ScopedProfileRegistration RegisterProfile(
    const std::string& name, std::shared_ptr<const PlanProfile> profile);

}  // namespace dmml::laopt

#endif  // DMML_LAOPT_PROFILE_H_
