#include "laopt/expr.h"

#include <sstream>
#include <unordered_set>

namespace dmml::laopt {

namespace {
// Private-constructor helper: make_shared cannot reach ExprNode's private
// constructor, so allocate through a local subclass.
struct NodeMaker : ExprNode {};

std::shared_ptr<ExprNode> NewNode() {
  return std::static_pointer_cast<ExprNode>(std::make_shared<NodeMaker>());
}

bool Known(size_t dim) { return dim != ExprNode::kUnknownDim; }

std::string DimStr(size_t dim) {
  return Known(dim) ? std::to_string(dim) : std::string("?");
}

// a == b, treating unknown as compatible with anything.
bool DimsCompatible(size_t a, size_t b) {
  return !Known(a) || !Known(b) || a == b;
}

// The common value of two compatible dims; a known dim wins over an unknown
// one (the unknown operand must match it at bind time or execution fails).
size_t MergeDims(size_t a, size_t b) { return Known(a) ? a : b; }
}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "input";
    case OpKind::kMatMul: return "matmul";
    case OpKind::kTranspose: return "transpose";
    case OpKind::kAdd: return "add";
    case OpKind::kSubtract: return "subtract";
    case OpKind::kElemMul: return "elem_mul";
    case OpKind::kScalarMul: return "scalar_mul";
    case OpKind::kSum: return "sum";
    case OpKind::kRowSums: return "row_sums";
    case OpKind::kColSums: return "col_sums";
    case OpKind::kScaleColumns: return "scale_columns";
  }
  return "unknown";
}

size_t ExprNode::NumNodes() const {
  std::unordered_set<const ExprNode*> seen;
  std::vector<const ExprNode*> stack{this};
  while (!stack.empty()) {
    const ExprNode* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    for (const auto& c : node->children_) stack.push_back(c.get());
  }
  return seen.size();
}

std::string ExprNode::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case OpKind::kInput:
      os << (name_.empty() ? "M" : name_) << "[" << DimStr(rows_) << "x"
         << DimStr(cols_) << "]";
      break;
    case OpKind::kMatMul:
      os << "(" << children_[0]->ToString() << " * " << children_[1]->ToString()
         << ")";
      break;
    case OpKind::kTranspose:
      os << "t(" << children_[0]->ToString() << ")";
      break;
    case OpKind::kAdd:
      os << "(" << children_[0]->ToString() << " + " << children_[1]->ToString()
         << ")";
      break;
    case OpKind::kSubtract:
      os << "(" << children_[0]->ToString() << " - " << children_[1]->ToString()
         << ")";
      break;
    case OpKind::kElemMul:
      os << "(" << children_[0]->ToString() << " .* " << children_[1]->ToString()
         << ")";
      break;
    case OpKind::kScalarMul:
      os << "(" << scalar_ << " * " << children_[0]->ToString() << ")";
      break;
    case OpKind::kSum:
      os << "sum(" << children_[0]->ToString() << ")";
      break;
    case OpKind::kRowSums:
      os << "rowSums(" << children_[0]->ToString() << ")";
      break;
    case OpKind::kColSums:
      os << "colSums(" << children_[0]->ToString() << ")";
      break;
    case OpKind::kScaleColumns:
      os << "scaleCols(" << children_[0]->ToString() << ", "
         << children_[1]->ToString() << ")";
      break;
  }
  return os.str();
}

Result<ExprPtr> ExprNode::Input(std::shared_ptr<const la::DenseMatrix> m,
                                std::string name) {
  if (!m) return Status::InvalidArgument("Input: null matrix");
  return InputOperand(Operand(std::move(m)), std::move(name));
}

Result<ExprPtr> ExprNode::InputOperand(Operand operand, std::string name) {
  if (!operand.bound()) {
    return Status::InvalidArgument("InputOperand: unbound operand");
  }
  auto node = NewNode();
  node->kind_ = OpKind::kInput;
  node->rows_ = operand.rows();
  node->cols_ = operand.cols();
  node->operand_ = std::move(operand);
  node->name_ = std::move(name);
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::Placeholder(size_t rows, size_t cols, std::string name) {
  auto node = NewNode();
  node->kind_ = OpKind::kInput;
  node->rows_ = rows;
  node->cols_ = cols;
  node->name_ = std::move(name);
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::MatMul(ExprPtr a, ExprPtr b) {
  if (!a || !b) return Status::InvalidArgument("MatMul: null operand");
  if (!DimsCompatible(a->cols(), b->rows())) {
    return Status::InvalidArgument("MatMul: inner dimension mismatch (" +
                                   std::to_string(a->cols()) + " vs " +
                                   std::to_string(b->rows()) + ")");
  }
  auto node = NewNode();
  node->kind_ = OpKind::kMatMul;
  node->rows_ = a->rows();
  node->cols_ = b->cols();
  node->children_ = {std::move(a), std::move(b)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::Transpose(ExprPtr a) {
  if (!a) return Status::InvalidArgument("Transpose: null operand");
  auto node = NewNode();
  node->kind_ = OpKind::kTranspose;
  node->rows_ = a->cols();
  node->cols_ = a->rows();
  node->children_ = {std::move(a)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::Add(ExprPtr a, ExprPtr b) {
  if (!a || !b) return Status::InvalidArgument("Add: null operand");
  if (!DimsCompatible(a->rows(), b->rows()) ||
      !DimsCompatible(a->cols(), b->cols())) {
    return Status::InvalidArgument("Add: shape mismatch");
  }
  auto node = NewNode();
  node->kind_ = OpKind::kAdd;
  node->rows_ = MergeDims(a->rows(), b->rows());
  node->cols_ = MergeDims(a->cols(), b->cols());
  node->children_ = {std::move(a), std::move(b)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::Subtract(ExprPtr a, ExprPtr b) {
  if (!a || !b) return Status::InvalidArgument("Subtract: null operand");
  if (!DimsCompatible(a->rows(), b->rows()) ||
      !DimsCompatible(a->cols(), b->cols())) {
    return Status::InvalidArgument("Subtract: shape mismatch");
  }
  auto node = NewNode();
  node->kind_ = OpKind::kSubtract;
  node->rows_ = MergeDims(a->rows(), b->rows());
  node->cols_ = MergeDims(a->cols(), b->cols());
  node->children_ = {std::move(a), std::move(b)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::ElemMul(ExprPtr a, ExprPtr b) {
  if (!a || !b) return Status::InvalidArgument("ElemMul: null operand");
  if (!DimsCompatible(a->rows(), b->rows()) ||
      !DimsCompatible(a->cols(), b->cols())) {
    return Status::InvalidArgument("ElemMul: shape mismatch");
  }
  auto node = NewNode();
  node->kind_ = OpKind::kElemMul;
  node->rows_ = MergeDims(a->rows(), b->rows());
  node->cols_ = MergeDims(a->cols(), b->cols());
  node->children_ = {std::move(a), std::move(b)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::ScalarMul(double alpha, ExprPtr a) {
  if (!a) return Status::InvalidArgument("ScalarMul: null operand");
  auto node = NewNode();
  node->kind_ = OpKind::kScalarMul;
  node->rows_ = a->rows();
  node->cols_ = a->cols();
  node->scalar_ = alpha;
  node->children_ = {std::move(a)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::Sum(ExprPtr a) {
  if (!a) return Status::InvalidArgument("Sum: null operand");
  auto node = NewNode();
  node->kind_ = OpKind::kSum;
  node->rows_ = 1;
  node->cols_ = 1;
  node->children_ = {std::move(a)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::RowSums(ExprPtr a) {
  if (!a) return Status::InvalidArgument("RowSums: null operand");
  auto node = NewNode();
  node->kind_ = OpKind::kRowSums;
  node->rows_ = a->rows();
  node->cols_ = 1;
  node->children_ = {std::move(a)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::ColSums(ExprPtr a) {
  if (!a) return Status::InvalidArgument("ColSums: null operand");
  auto node = NewNode();
  node->kind_ = OpKind::kColSums;
  node->rows_ = 1;
  node->cols_ = a->cols();
  node->children_ = {std::move(a)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::ScaleColumns(ExprPtr a, ExprPtr s) {
  if (!a || !s) return Status::InvalidArgument("ScaleColumns: null operand");
  if (Known(s->rows()) && s->rows() != 1) {
    return Status::InvalidArgument("ScaleColumns: scale must be a row vector");
  }
  if (!DimsCompatible(a->cols(), s->cols())) {
    return Status::InvalidArgument("ScaleColumns: column-count mismatch (" +
                                   std::to_string(a->cols()) + " vs " +
                                   std::to_string(s->cols()) + ")");
  }
  auto node = NewNode();
  node->kind_ = OpKind::kScaleColumns;
  node->rows_ = a->rows();
  node->cols_ = MergeDims(a->cols(), s->cols());
  node->children_ = {std::move(a), std::move(s)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::MakeUnchecked(OpKind kind, std::vector<ExprPtr> children,
                                        double scalar) {
  if (kind == OpKind::kInput) {
    return Status::InvalidArgument("MakeUnchecked: use Input/Placeholder for leaves");
  }
  const size_t arity =
      (kind == OpKind::kMatMul || kind == OpKind::kAdd ||
       kind == OpKind::kSubtract || kind == OpKind::kElemMul ||
       kind == OpKind::kScaleColumns)
          ? 2
          : 1;
  if (children.size() != arity) {
    return Status::InvalidArgument("MakeUnchecked: wrong arity for " +
                                   std::string(OpKindName(kind)));
  }
  for (const auto& c : children) {
    if (!c) return Status::InvalidArgument("MakeUnchecked: null operand");
  }
  auto node = NewNode();
  node->kind_ = kind;
  node->scalar_ = scalar;
  const ExprPtr& a = children[0];
  switch (kind) {
    case OpKind::kMatMul:
      node->rows_ = a->rows();
      node->cols_ = children[1]->cols();
      break;
    case OpKind::kTranspose:
      node->rows_ = a->cols();
      node->cols_ = a->rows();
      break;
    case OpKind::kAdd:
    case OpKind::kSubtract:
    case OpKind::kElemMul:
      node->rows_ = MergeDims(a->rows(), children[1]->rows());
      node->cols_ = MergeDims(a->cols(), children[1]->cols());
      break;
    case OpKind::kScalarMul:
      node->rows_ = a->rows();
      node->cols_ = a->cols();
      break;
    case OpKind::kSum:
      node->rows_ = 1;
      node->cols_ = 1;
      break;
    case OpKind::kRowSums:
      node->rows_ = a->rows();
      node->cols_ = 1;
      break;
    case OpKind::kColSums:
      node->rows_ = 1;
      node->cols_ = a->cols();
      break;
    case OpKind::kScaleColumns:
      node->rows_ = a->rows();
      node->cols_ = MergeDims(a->cols(), children[1]->cols());
      break;
    case OpKind::kInput:
      break;  // Rejected above.
  }
  node->children_ = std::move(children);
  return ExprPtr(node);
}

namespace {
// Product of two dims as flops, zero when either is unknown.
double DimArea(size_t rows, size_t cols) {
  if (!Known(rows) || !Known(cols)) return 0.0;
  return static_cast<double>(rows) * static_cast<double>(cols);
}
}  // namespace

double EstimateFlops(const ExprPtr& e) {
  double acc = 0;
  switch (e->kind()) {
    case OpKind::kInput:
      return 0;
    case OpKind::kMatMul:
      acc = Known(e->children()[1]->cols())
                ? 2.0 * DimArea(e->children()[0]->rows(),
                                e->children()[0]->cols()) *
                      static_cast<double>(e->children()[1]->cols())
                : 0.0;
      break;
    case OpKind::kTranspose:
    case OpKind::kScalarMul:
    case OpKind::kAdd:
    case OpKind::kSubtract:
    case OpKind::kElemMul:
    case OpKind::kScaleColumns:
      acc = DimArea(e->rows(), e->cols());
      break;
    case OpKind::kSum:
    case OpKind::kRowSums:
    case OpKind::kColSums:
      acc = DimArea(e->children()[0]->rows(), e->children()[0]->cols());
      break;
  }
  for (const auto& c : e->children()) acc += EstimateFlops(c);
  return acc;
}

}  // namespace dmml::laopt
