#include "laopt/expr.h"

#include <sstream>
#include <unordered_set>

namespace dmml::laopt {

namespace {
// Private-constructor helper: make_shared cannot reach ExprNode's private
// constructor, so allocate through a local subclass.
struct NodeMaker : ExprNode {};

std::shared_ptr<ExprNode> NewNode() {
  return std::static_pointer_cast<ExprNode>(std::make_shared<NodeMaker>());
}
}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "input";
    case OpKind::kMatMul: return "matmul";
    case OpKind::kTranspose: return "transpose";
    case OpKind::kAdd: return "add";
    case OpKind::kSubtract: return "subtract";
    case OpKind::kElemMul: return "elem_mul";
    case OpKind::kScalarMul: return "scalar_mul";
    case OpKind::kSum: return "sum";
    case OpKind::kRowSums: return "row_sums";
    case OpKind::kColSums: return "col_sums";
  }
  return "unknown";
}

size_t ExprNode::NumNodes() const {
  std::unordered_set<const ExprNode*> seen;
  std::vector<const ExprNode*> stack{this};
  while (!stack.empty()) {
    const ExprNode* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    for (const auto& c : node->children_) stack.push_back(c.get());
  }
  return seen.size();
}

std::string ExprNode::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case OpKind::kInput:
      os << (name_.empty() ? "M" : name_) << "[" << rows_ << "x" << cols_ << "]";
      break;
    case OpKind::kMatMul:
      os << "(" << children_[0]->ToString() << " * " << children_[1]->ToString()
         << ")";
      break;
    case OpKind::kTranspose:
      os << "t(" << children_[0]->ToString() << ")";
      break;
    case OpKind::kAdd:
      os << "(" << children_[0]->ToString() << " + " << children_[1]->ToString()
         << ")";
      break;
    case OpKind::kSubtract:
      os << "(" << children_[0]->ToString() << " - " << children_[1]->ToString()
         << ")";
      break;
    case OpKind::kElemMul:
      os << "(" << children_[0]->ToString() << " .* " << children_[1]->ToString()
         << ")";
      break;
    case OpKind::kScalarMul:
      os << "(" << scalar_ << " * " << children_[0]->ToString() << ")";
      break;
    case OpKind::kSum:
      os << "sum(" << children_[0]->ToString() << ")";
      break;
    case OpKind::kRowSums:
      os << "rowSums(" << children_[0]->ToString() << ")";
      break;
    case OpKind::kColSums:
      os << "colSums(" << children_[0]->ToString() << ")";
      break;
  }
  return os.str();
}

Result<ExprPtr> ExprNode::Input(std::shared_ptr<const la::DenseMatrix> m,
                                std::string name) {
  if (!m) return Status::InvalidArgument("Input: null matrix");
  auto node = NewNode();
  node->kind_ = OpKind::kInput;
  node->rows_ = m->rows();
  node->cols_ = m->cols();
  node->matrix_ = std::move(m);
  node->name_ = std::move(name);
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::MatMul(ExprPtr a, ExprPtr b) {
  if (!a || !b) return Status::InvalidArgument("MatMul: null operand");
  if (a->cols() != b->rows()) {
    return Status::InvalidArgument("MatMul: inner dimension mismatch (" +
                                   std::to_string(a->cols()) + " vs " +
                                   std::to_string(b->rows()) + ")");
  }
  auto node = NewNode();
  node->kind_ = OpKind::kMatMul;
  node->rows_ = a->rows();
  node->cols_ = b->cols();
  node->children_ = {std::move(a), std::move(b)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::Transpose(ExprPtr a) {
  if (!a) return Status::InvalidArgument("Transpose: null operand");
  auto node = NewNode();
  node->kind_ = OpKind::kTranspose;
  node->rows_ = a->cols();
  node->cols_ = a->rows();
  node->children_ = {std::move(a)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::Add(ExprPtr a, ExprPtr b) {
  if (!a || !b) return Status::InvalidArgument("Add: null operand");
  if (a->rows() != b->rows() || a->cols() != b->cols()) {
    return Status::InvalidArgument("Add: shape mismatch");
  }
  auto node = NewNode();
  node->kind_ = OpKind::kAdd;
  node->rows_ = a->rows();
  node->cols_ = a->cols();
  node->children_ = {std::move(a), std::move(b)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::Subtract(ExprPtr a, ExprPtr b) {
  if (!a || !b) return Status::InvalidArgument("Subtract: null operand");
  if (a->rows() != b->rows() || a->cols() != b->cols()) {
    return Status::InvalidArgument("Subtract: shape mismatch");
  }
  auto node = NewNode();
  node->kind_ = OpKind::kSubtract;
  node->rows_ = a->rows();
  node->cols_ = a->cols();
  node->children_ = {std::move(a), std::move(b)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::ElemMul(ExprPtr a, ExprPtr b) {
  if (!a || !b) return Status::InvalidArgument("ElemMul: null operand");
  if (a->rows() != b->rows() || a->cols() != b->cols()) {
    return Status::InvalidArgument("ElemMul: shape mismatch");
  }
  auto node = NewNode();
  node->kind_ = OpKind::kElemMul;
  node->rows_ = a->rows();
  node->cols_ = a->cols();
  node->children_ = {std::move(a), std::move(b)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::ScalarMul(double alpha, ExprPtr a) {
  if (!a) return Status::InvalidArgument("ScalarMul: null operand");
  auto node = NewNode();
  node->kind_ = OpKind::kScalarMul;
  node->rows_ = a->rows();
  node->cols_ = a->cols();
  node->scalar_ = alpha;
  node->children_ = {std::move(a)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::Sum(ExprPtr a) {
  if (!a) return Status::InvalidArgument("Sum: null operand");
  auto node = NewNode();
  node->kind_ = OpKind::kSum;
  node->rows_ = 1;
  node->cols_ = 1;
  node->children_ = {std::move(a)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::RowSums(ExprPtr a) {
  if (!a) return Status::InvalidArgument("RowSums: null operand");
  auto node = NewNode();
  node->kind_ = OpKind::kRowSums;
  node->rows_ = a->rows();
  node->cols_ = 1;
  node->children_ = {std::move(a)};
  return ExprPtr(node);
}

Result<ExprPtr> ExprNode::ColSums(ExprPtr a) {
  if (!a) return Status::InvalidArgument("ColSums: null operand");
  auto node = NewNode();
  node->kind_ = OpKind::kColSums;
  node->rows_ = 1;
  node->cols_ = a->cols();
  node->children_ = {std::move(a)};
  return ExprPtr(node);
}

double EstimateFlops(const ExprPtr& e) {
  double acc = 0;
  switch (e->kind()) {
    case OpKind::kInput:
      return 0;
    case OpKind::kMatMul:
      acc = 2.0 * static_cast<double>(e->children()[0]->rows()) *
            static_cast<double>(e->children()[0]->cols()) *
            static_cast<double>(e->children()[1]->cols());
      break;
    case OpKind::kTranspose:
    case OpKind::kScalarMul:
      acc = static_cast<double>(e->rows()) * static_cast<double>(e->cols());
      break;
    case OpKind::kAdd:
    case OpKind::kSubtract:
    case OpKind::kElemMul:
      acc = static_cast<double>(e->rows()) * static_cast<double>(e->cols());
      break;
    case OpKind::kSum:
    case OpKind::kRowSums:
    case OpKind::kColSums:
      acc = static_cast<double>(e->children()[0]->rows()) *
            static_cast<double>(e->children()[0]->cols());
      break;
  }
  for (const auto& c : e->children()) acc += EstimateFlops(c);
  return acc;
}

}  // namespace dmml::laopt
