#include "pipeline/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "cla/compressed_matrix.h"
#include "factorized/factorized_operand.h"
#include "factorized/normalized_matrix.h"
#include "laopt/analysis.h"
#include "laopt/expr.h"
#include "ml/encoding.h"
#include "ml/unified_trainers.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace dmml::pipeline {

using la::DenseMatrix;
using laopt::ExprNode;
using laopt::ExprPtr;
using relational::LogicalNode;
using relational::LogicalPlan;
using storage::Column;
using storage::DataType;
using storage::Table;

const char* RouteName(Route route) {
  switch (route) {
    case Route::kAuto: return "auto";
    case Route::kMaterialize: return "materialized";
    case Route::kFactorized: return "factorized";
  }
  return "?";
}

const char* BindingName(Binding binding) {
  switch (binding) {
    case Binding::kAuto: return "auto";
    case Binding::kDense: return "dense";
    case Binding::kCsr: return "csr";
    case Binding::kCla: return "cla";
  }
  return "?";
}

namespace {

bool ExplainEnvEnabled() {
  const char* v = std::getenv("DMML_EXPLAIN");  // NOLINT(concurrency-mt-unsafe)
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

// Cost-model constants, in flop-equivalents. Materializing a join writes
// every output cell through a hash probe and a row copy; the factorized
// route instead pays per-epoch gather traffic and a one-time key-map build.
constexpr double kJoinCostPerCell = 8.0;
constexpr double kGatherCostPerRowTable = 6.0;
constexpr double kBuildCostPerKey = 2.0;

// The representative epoch core both trainers share: Xᵀ·(X·w). Flop and
// memory estimates of this program are what the route chooser compares.
Result<ExprPtr> EpochProgram(ExprPtr x, size_t d) {
  DMML_ASSIGN_OR_RETURN(ExprPtr w, ExprNode::Placeholder(d, 1, "w"));
  DMML_ASSIGN_OR_RETURN(ExprPtr xw, ExprNode::MatMul(x, std::move(w)));
  DMML_ASSIGN_OR_RETURN(ExprPtr xt, ExprNode::Transpose(std::move(x)));
  return ExprNode::MatMul(std::move(xt), std::move(xw));
}

Status StageError(const std::string& stage, const Status& cause) {
  return Status(cause.code(), "pipeline stage " + stage + ": " + cause.message());
}

}  // namespace

std::string PipelineReport::ExplainText() const {
  std::ostringstream os;
  os << "== pipeline plan ==\n";
  os << "route: " << RouteName(chosen_route) << " (" << route_reason << ")";
  if (materialized_cost > 0 && factorized_cost > 0) {
    os << std::setprecision(3) << " — cost materialized " << materialized_cost
       << " vs factorized " << factorized_cost << " flop-eq";
  }
  os << "\nbinding: " << BindingName(chosen_binding) << ", feature matrix "
     << actual_rows << " x " << feature_cols;
  if (materialized_bytes > 0 || factorized_bytes > 0) {
    os << " (est bytes: materialized " << materialized_bytes << ", factorized "
       << factorized_bytes << ")";
  }
  os << "\nrelational prefix (operator, est rows vs actual rows):\n";
  for (const relational::OperatorObservation& op : relational_ops) {
    os << "  " << std::left << std::setw(40) << op.op_name << " est "
       << std::setw(12) << op.estimated_rows << " actual " << std::setw(10)
       << op.actual_rows;
    os << std::setprecision(1) << std::fixed << " (misest "
       << op.MisestimatePct() << "%)";
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
    if (chosen_route == Route::kFactorized &&
        op.op_name.rfind("Join(", 0) == 0) {
      os << "  [factorized: join not materialized]";
    }
    os << "\n";
  }
  os << "laopt epoch program (" << RouteName(chosen_route) << " binding):\n"
     << laopt_explain;
  return os.str();
}

Pipeline Pipeline::From(const storage::Catalog* catalog, std::string table) {
  Pipeline p;
  p.catalog_ = catalog;
  p.base_table_ = table;
  p.plan_ = LogicalNode::Scan(table);
  p.base_plan_ = p.plan_;
  return p;
}

Pipeline& Pipeline::Filter(relational::PredicatePtr pred) {
  plan_ = LogicalNode::Filter(plan_, pred);
  if (joins_.empty()) {
    base_plan_ = plan_;
  } else {
    // A filter over the join output cannot be pushed below the join by the
    // factorized lowering (it may reference columns from several tables).
    star_shape_ = false;
  }
  return *this;
}

Pipeline& Pipeline::Join(std::string table, std::string left_key,
                         std::string right_key) {
  plan_ = LogicalNode::Join(plan_, LogicalNode::Scan(table), left_key,
                            right_key);
  joins_.push_back(JoinSpec{std::move(table), std::move(left_key),
                            std::move(right_key), plan_});
  return *this;
}

Pipeline& Pipeline::Features(std::vector<std::string> columns) {
  for (std::string& c : columns) features_.push_back(std::move(c));
  return *this;
}

Pipeline& Pipeline::CategoricalFeatures(std::vector<std::string> columns) {
  for (std::string& c : columns) categoricals_.push_back(std::move(c));
  return *this;
}

Pipeline& Pipeline::Label(std::string column) {
  label_ = std::move(column);
  return *this;
}

Pipeline& Pipeline::WithOptions(PipelineOptions options) {
  options_ = options;
  return *this;
}

struct Pipeline::LoweredProgram {
  laopt::Operand x;
  DenseMatrix y;  ///< n x 1 when a label was extracted, else 0 x 0.
};

namespace {

/// How the factorized lowering sees the declared features: grouped by the
/// table that owns each column (base first, then join order).
struct FeatureGroups {
  std::vector<std::string> base;               ///< Base-table features.
  std::vector<std::vector<std::string>> dims;  ///< Per joined table.
  bool resolvable = true;  ///< Every feature owned by exactly one table.
};

double CellValue(const Column& col, size_t row) {
  if (!col.IsValid(row)) return 0.0;
  return col.type() == DataType::kInt64
             ? static_cast<double>(col.GetInt64(row))
             : col.GetDouble(row);
}

}  // namespace

Result<Pipeline::LoweredProgram> Pipeline::Lower(size_t epochs,
                                                 bool need_label,
                                                 ThreadPool* pool,
                                                 PipelineReport* report) const {
  if (catalog_ == nullptr || !plan_) {
    return Status::InvalidArgument("pipeline: empty (use Pipeline::From)");
  }
  if (features_.empty() && categoricals_.empty()) {
    return StageError("Features",
                      Status::InvalidArgument("no feature columns declared"));
  }
  if (need_label && label_.empty()) {
    return StageError("Label",
                      Status::InvalidArgument("no label column declared"));
  }
  const size_t epochs_clamped = std::max<size_t>(epochs, 1);

  // ---- Validate: schemas, features, label — before anything executes. ----
  DMML_ASSIGN_OR_RETURN(storage::Schema joined,
                        relational::OutputSchema(*plan_, *catalog_));
  for (const std::string& c : features_) {
    Result<size_t> idx = joined.RequireField(c);
    if (!idx.ok()) return StageError("Features", idx.status());
    const DataType t = joined.field(idx.ValueOrDie()).type;
    if (t != DataType::kDouble && t != DataType::kInt64) {
      return StageError("Features", Status::InvalidArgument(
                                        "column " + c + " is not numeric"));
    }
  }
  for (const std::string& c : categoricals_) {
    Result<size_t> idx = joined.RequireField(c);
    if (!idx.ok()) return StageError("CategoricalFeatures", idx.status());
    if (joined.field(idx.ValueOrDie()).type != DataType::kString) {
      return StageError(
          "CategoricalFeatures",
          Status::InvalidArgument("column " + c + " is not a string column"));
    }
  }
  if (need_label) {
    Result<size_t> idx = joined.RequireField(label_);
    if (!idx.ok()) return StageError("Label", idx.status());
  }

  // ---- Resolve feature ownership for the factorized lowering. ----
  DMML_ASSIGN_OR_RETURN(std::shared_ptr<const Table> base_table,
                        catalog_->GetTable(base_table_));
  std::vector<std::shared_ptr<const Table>> dim_tables;
  dim_tables.reserve(joins_.size());
  for (const JoinSpec& j : joins_) {
    DMML_ASSIGN_OR_RETURN(std::shared_ptr<const Table> t,
                          catalog_->GetTable(j.table));
    dim_tables.push_back(std::move(t));
  }
  FeatureGroups groups;
  groups.dims.resize(joins_.size());
  for (const std::string& c : features_) {
    size_t owners = 0;
    const bool in_base = base_table->schema().FieldIndex(c).has_value();
    if (in_base) ++owners;
    size_t dim_owner = joins_.size();
    for (size_t j = 0; j < dim_tables.size(); ++j) {
      if (dim_tables[j]->schema().FieldIndex(c).has_value()) {
        ++owners;
        dim_owner = j;
      }
    }
    if (owners != 1) {
      groups.resolvable = false;
      break;
    }
    if (in_base) {
      groups.base.push_back(c);
    } else {
      groups.dims[dim_owner].push_back(c);
    }
  }

  // Canonical feature order shared by both routes (base block first, then
  // each joined table's block) so the two physical lowerings produce the
  // same logical matrix column-for-column and the fitted weights line up.
  std::vector<std::string> ordered;
  if (groups.resolvable) {
    ordered = groups.base;
    for (const auto& g : groups.dims) {
      ordered.insert(ordered.end(), g.begin(), g.end());
    }
  } else {
    ordered = features_;
  }
  report->feature_names = ordered;

  // ---- Factorized eligibility (structure only; key checks come later). ----
  std::string ineligible_reason;
  if (joins_.empty()) {
    ineligible_reason = "no joins to factorize";
  } else if (!star_shape_) {
    ineligible_reason = "filter over join output";
  } else if (!categoricals_.empty()) {
    ineligible_reason = "categorical features need the CSR assembly";
  } else if (!groups.resolvable) {
    ineligible_reason = "feature not owned by exactly one table";
  } else if (need_label &&
             !base_table->schema().FieldIndex(label_).has_value()) {
    ineligible_reason = "label not on the base table";
  }
  if (ineligible_reason.empty()) {
    for (size_t j = 0; j < joins_.size(); ++j) {
      const std::optional<size_t> lk =
          base_table->schema().FieldIndex(joins_[j].left_key);
      const std::optional<size_t> rk =
          dim_tables[j]->schema().FieldIndex(joins_[j].right_key);
      if (!lk.has_value() ||
          base_table->schema().field(*lk).type != DataType::kInt64 ||
          !rk.has_value() ||
          dim_tables[j]->schema().field(*rk).type != DataType::kInt64) {
        ineligible_reason = "join keys not int64 base-to-dimension";
        break;
      }
    }
  }

  // ---- Cardinality estimates + route cost model. ----
  relational::StatisticsCache stats(catalog_);
  DMML_ASSIGN_OR_RETURN(double est_rows,
                        relational::EstimateCardinality(*plan_, &stats));
  const size_t d_numeric = ordered.size();
  report->est_rows = est_rows;

  Route route = options_.route;
  if (!ineligible_reason.empty()) {
    if (route == Route::kFactorized) {
      return StageError("Join", Status::InvalidArgument(
                                    "factorized route forced but ineligible: " +
                                    ineligible_reason));
    }
    route = Route::kMaterialize;
    report->route_reason = ineligible_reason;
  }

  if (route == Route::kAuto || ineligible_reason.empty()) {
    // Cost both routes even when the route is forced, so EXPLAIN always
    // shows the comparison the chooser would have made.
    DMML_ASSIGN_OR_RETURN(double base_rows,
                          relational::EstimateCardinality(*base_plan_, &stats));
    const size_t n_est =
        static_cast<size_t>(std::llround(std::max(est_rows, 1.0)));
    DMML_ASSIGN_OR_RETURN(
        ExprPtr xph, ExprNode::Placeholder(n_est, std::max<size_t>(d_numeric, 1),
                                           "X"));
    DMML_ASSIGN_OR_RETURN(ExprPtr dense_epoch,
                          EpochProgram(xph, std::max<size_t>(d_numeric, 1)));
    const double dense_epoch_flops = laopt::EstimateFlops(dense_epoch);
    {
      laopt::DagAnalysis analysis;
      DMML_ASSIGN_OR_RETURN(laopt::NodeAnalysis xinfo, analysis.Ensure(xph));
      report->materialized_bytes = xinfo.bytes_known ? xinfo.est_bytes : 0;
    }
    report->materialized_cost =
        kJoinCostPerCell * est_rows * static_cast<double>(d_numeric) +
        static_cast<double>(epochs_clamped) * dense_epoch_flops;

    // Factorized: per-epoch work touches each block once plus a per-table
    // gather over the entity rows; the one-time cost is the key-map build.
    double block_flops = 4.0 * base_rows * groups.base.size();
    double fact_bytes = base_rows * groups.base.size() * sizeof(double);
    double build_keys = 0;
    for (size_t j = 0; j < joins_.size(); ++j) {
      const double nr = static_cast<double>(dim_tables[j]->num_rows());
      block_flops += 4.0 * nr * groups.dims[j].size() +
                     kGatherCostPerRowTable * base_rows;
      fact_bytes += nr * groups.dims[j].size() * sizeof(double) +
                    base_rows * sizeof(uint32_t);
      build_keys += nr + base_rows;
    }
    report->factorized_bytes = static_cast<uint64_t>(fact_bytes);
    report->factorized_cost =
        kBuildCostPerKey * build_keys +
        static_cast<double>(epochs_clamped) * block_flops;

    if (route == Route::kAuto) {
      route = report->factorized_cost < report->materialized_cost
                  ? Route::kFactorized
                  : Route::kMaterialize;
      report->route_reason = "cost";
    } else if (report->route_reason.empty()) {
      report->route_reason = "forced";
    }
  } else if (report->route_reason.empty()) {
    report->route_reason = "forced";
  }

  // ---- Execute the chosen route. ----
  LoweredProgram out;
  bool factorized_fallback = false;
  if (route == Route::kFactorized) {
    // Execute only the base chain (scan + pre-join filters); the joins are
    // replaced by the normalized-matrix binding.
    std::vector<relational::OperatorObservation> ops;
    Result<Table> entity_r =
        relational::ExecutePlan(*base_plan_, *catalog_, &stats, &ops);
    if (!entity_r.ok()) return entity_r.status();
    Table entity = std::move(entity_r).ValueOrDie();
    const size_t ns = entity.num_rows();

    // Dimension scans (estimates are exact by construction, like Scan).
    for (size_t j = 0; j < joins_.size(); ++j) {
      ops.push_back({"Scan(" + joins_[j].table + ")",
                     static_cast<double>(dim_tables[j]->num_rows()),
                     dim_tables[j]->num_rows()});
    }

    // Key maps: pk value -> dimension row. Duplicate keys mean the "dim"
    // side is not a PK side — the normalized form cannot represent the
    // multiplicity, so fall back to materializing.
    std::vector<std::unordered_map<int64_t, uint32_t>> keymaps(joins_.size());
    for (size_t j = 0; j < joins_.size() && !factorized_fallback; ++j) {
      DMML_ASSIGN_OR_RETURN(const Column* key,
                            dim_tables[j]->ColumnByName(joins_[j].right_key));
      keymaps[j].reserve(dim_tables[j]->num_rows());
      for (size_t i = 0; i < dim_tables[j]->num_rows(); ++i) {
        if (!key->IsValid(i)) continue;
        if (!keymaps[j].emplace(key->GetInt64(i), static_cast<uint32_t>(i))
                 .second) {
          factorized_fallback = true;  // Duplicate PK.
          break;
        }
      }
    }

    if (!factorized_fallback) {
      // Inner-join semantics without the join: a row survives iff every
      // foreign key matches. Per-join actual cardinalities fall out of the
      // cumulative keep count.
      std::vector<char> keep(ns, 1);
      std::vector<std::vector<uint32_t>> fks(
          joins_.size(), std::vector<uint32_t>(ns, 0));
      for (size_t j = 0; j < joins_.size(); ++j) {
        DMML_ASSIGN_OR_RETURN(const Column* fkcol,
                              entity.ColumnByName(joins_[j].left_key));
        size_t kept = 0;
        for (size_t i = 0; i < ns; ++i) {
          if (!keep[i]) continue;
          auto it = fkcol->IsValid(i)
                        ? keymaps[j].find(fkcol->GetInt64(i))
                        : keymaps[j].end();
          if (it == keymaps[j].end()) {
            keep[i] = 0;
          } else {
            fks[j][i] = it->second;
            ++kept;
          }
        }
        DMML_ASSIGN_OR_RETURN(
            double join_est,
            relational::EstimateCardinality(*joins_[j].prefix, &stats));
        ops.push_back({joins_[j].prefix->Describe(), join_est, kept});
      }

      std::vector<size_t> kept_rows;
      kept_rows.reserve(ns);
      for (size_t i = 0; i < ns; ++i) {
        if (keep[i]) kept_rows.push_back(i);
      }
      const size_t n = kept_rows.size();

      // Entity feature block + compacted per-table key vectors.
      DenseMatrix xs(n, groups.base.size());
      std::vector<const Column*> base_cols;
      for (const std::string& c : groups.base) {
        DMML_ASSIGN_OR_RETURN(const Column* col, entity.ColumnByName(c));
        base_cols.push_back(col);
      }
      for (size_t r = 0; r < n; ++r) {
        for (size_t j = 0; j < base_cols.size(); ++j) {
          xs.At(r, j) = CellValue(*base_cols[j], kept_rows[r]);
        }
      }
      std::vector<factorized::AttributeTable> tables;
      tables.reserve(joins_.size());
      for (size_t j = 0; j < joins_.size(); ++j) {
        factorized::AttributeTable t;
        Result<DenseMatrix> xr = dim_tables[j]->ToMatrix(groups.dims[j]);
        if (!xr.ok()) return StageError("Features", xr.status());
        t.features = std::move(xr).ValueOrDie();
        t.fk.resize(n);
        for (size_t r = 0; r < n; ++r) t.fk[r] = fks[j][kept_rows[r]];
        tables.push_back(std::move(t));
      }
      Result<factorized::NormalizedMatrix> nm =
          factorized::NormalizedMatrix::Make(std::move(xs), std::move(tables));
      if (!nm.ok()) return StageError("Join", nm.status());
      out.x = factorized::MakeFactorizedOperand(std::move(nm).ValueOrDie());

      if (need_label) {
        DMML_ASSIGN_OR_RETURN(const Column* ycol, entity.ColumnByName(label_));
        out.y = DenseMatrix(n, 1);
        for (size_t r = 0; r < n; ++r) {
          out.y.At(r, 0) = CellValue(*ycol, kept_rows[r]);
        }
      }
      report->relational_ops = std::move(ops);
      report->chosen_route = Route::kFactorized;
      report->chosen_binding = Binding::kAuto;
      DMML_COUNTER_INC("pipeline.route.factorized");
    } else {
      route = Route::kMaterialize;
      report->route_reason = "duplicate dimension keys (fell back)";
    }
  }

  if (route == Route::kMaterialize) {
    std::vector<relational::OperatorObservation> ops;
    Result<Table> joined_r =
        relational::ExecutePlan(*plan_, *catalog_, &stats, &ops);
    if (!joined_r.ok()) return joined_r.status();
    Table joined_t = std::move(joined_r).ValueOrDie();
    report->relational_ops = std::move(ops);

    Binding binding = options_.binding;
    if (binding == Binding::kAuto) {
      binding = categoricals_.empty() ? Binding::kDense : Binding::kCsr;
    }
    if (binding == Binding::kDense && !categoricals_.empty()) {
      return StageError("CategoricalFeatures",
                        Status::InvalidArgument(
                            "dense binding cannot hold one-hot blocks; use "
                            "Binding::kCsr (or kAuto)"));
    }
    if (binding == Binding::kCsr) {
      Result<ml::AssembledFeatures> asm_r =
          ml::AssembleFeaturesCsr(joined_t, ordered, categoricals_);
      if (!asm_r.ok()) return StageError("Features", asm_r.status());
      ml::AssembledFeatures assembled = std::move(asm_r).ValueOrDie();
      report->feature_names = assembled.feature_names;
      out.x = laopt::Operand(std::make_shared<const la::SparseMatrix>(
          std::move(assembled.matrix)));
    } else {
      Result<DenseMatrix> x = joined_t.ToMatrix(ordered);
      if (!x.ok()) return StageError("Features", x.status());
      if (binding == Binding::kCla) {
        out.x = laopt::Operand(std::make_shared<const cla::CompressedMatrix>(
            cla::CompressedMatrix::Compress(x.ValueOrDie(), {}, pool)));
      } else {
        out.x = laopt::Operand(std::make_shared<const DenseMatrix>(
            std::move(x).ValueOrDie()));
      }
    }
    if (need_label) {
      Result<DenseMatrix> y = joined_t.ColumnToVector(label_);
      if (!y.ok()) return StageError("Label", y.status());
      out.y = std::move(y).ValueOrDie();
    }
    report->chosen_route = Route::kMaterialize;
    report->chosen_binding = binding;
    DMML_COUNTER_INC("pipeline.route.materialized");
  }

  report->feature_cols = out.x.cols();
  report->actual_rows = out.x.rows();

  // ---- EXPLAIN: the laopt epoch program over the actual binding. ----
  {
    DMML_ASSIGN_OR_RETURN(ExprPtr xleaf, ExprNode::InputOperand(out.x, "X"));
    DMML_ASSIGN_OR_RETURN(ExprPtr program,
                          EpochProgram(xleaf, out.x.cols()));
    laopt::DagAnalysis analysis;
    report->laopt_explain = analysis.Explain(program);
    if (const laopt::NodeAnalysis* info = analysis.Find(xleaf.get())) {
      if (info->bytes_known) {
        if (report->chosen_route == Route::kFactorized) {
          report->factorized_bytes = info->est_bytes;
        } else {
          report->materialized_bytes = info->est_bytes;
        }
      }
    }
  }
  if (ExplainEnvEnabled()) {
    DMML_LOG(Info) << "DMML_EXPLAIN pipeline\n" << report->ExplainText();
  }
  return out;
}

Result<GlmFit> Pipeline::TrainGlm(const ml::GlmConfig& config,
                                  ThreadPool* pool) const {
  GlmFit fit;
  DMML_ASSIGN_OR_RETURN(
      LoweredProgram lp,
      Lower(config.max_epochs, /*need_label=*/true, pool, &fit.report));
  DMML_ASSIGN_OR_RETURN(fit.model,
                        ml::TrainGlmOnOperand(lp.x, lp.y, config, pool));
  return fit;
}

Result<GlmFit> Pipeline::NormalEquations(const ml::GlmConfig& config,
                                         ThreadPool* pool) const {
  GlmFit fit;
  DMML_ASSIGN_OR_RETURN(
      LoweredProgram lp,
      Lower(/*epochs=*/1, /*need_label=*/true, pool, &fit.report));
  DMML_RETURN_IF_ERROR(
      ml::RunNormalEquationsOnOperand(lp.x, lp.y, config, pool, &fit.model));
  return fit;
}

Result<KMeansFit> Pipeline::TrainKMeans(const ml::KMeansConfig& config,
                                        ThreadPool* pool) const {
  KMeansFit fit;
  DMML_ASSIGN_OR_RETURN(
      LoweredProgram lp,
      Lower(config.max_iters, /*need_label=*/false, pool, &fit.report));
  DMML_ASSIGN_OR_RETURN(fit.model,
                        ml::TrainKMeansOnOperand(lp.x, config, pool));
  return fit;
}

}  // namespace dmml::pipeline
