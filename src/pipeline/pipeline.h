/// \file pipeline.h
/// \brief Declarative pipeline front-end: one optimizer from tables to
/// trained models.
///
/// The builder composes the whole analysis — base table, filters, PK-FK
/// joins, feature/label selection, trainer — into a single logical plan
/// before anything executes:
///
///   auto fit = Pipeline::From(&catalog, "orders")
///                  .Filter(relational::Compare("xs0", CompareOp::kGt, -2.0))
///                  .Join("products", /*left_key=*/"fk", /*right_key=*/"rid")
///                  .Features({"xs0", "xs1", "xr0", ...})
///                  .Label("y")
///                  .TrainGlm(config, &pool);
///
/// A physical chooser then lowers the plan one of two ways:
///
///  * kMaterialize — execute the relational prefix eagerly (Filter /
///    HashJoin), bind the joined feature matrix to a laopt leaf (dense, CSR
///    via ml::AssembleFeaturesCsr, or CLA-compressed), and train.
///  * kFactorized — never materialize the join: build a
///    factorized::NormalizedMatrix over the filtered entity table and the
///    dimension tables and bind it through factorized::MakeFactorizedOperand,
///    so every epoch's X·w / Xᵀ·r / XᵀX runs factorized (Orion/Morpheus).
///
/// Both routes execute the *same* ml/unified_trainers laopt program — the
/// route only changes the leaf binding — so the fitted models agree to
/// floating-point noise. The chooser costs the routes with the relational
/// cardinality estimates (relational/logical_plan.h) and laopt's
/// DagAnalysis/EstimateFlops machinery, and the whole decision is rendered
/// by PipelineReport::ExplainText() (logged when DMML_EXPLAIN=1): relational
/// prefix with estimated-vs-actual cardinalities on top, the laopt epoch
/// program underneath.
#ifndef DMML_PIPELINE_PIPELINE_H_
#define DMML_PIPELINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/glm.h"
#include "ml/kmeans.h"
#include "relational/logical_plan.h"
#include "relational/operators.h"
#include "relational/predicate.h"
#include "storage/catalog.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace dmml::pipeline {

/// Physical route for the relational prefix.
enum class Route {
  kAuto,         ///< Cost-based choice (the default).
  kMaterialize,  ///< Execute the join, bind the materialized matrix.
  kFactorized,   ///< Bind the normalized (factorized) matrix; no join.
};

/// Physical representation of the materialized feature matrix.
enum class Binding {
  kAuto,   ///< Dense, or CSR when categorical features are present.
  kDense,  ///< Row-major la::DenseMatrix.
  kCsr,    ///< CSR via ml::AssembleFeaturesCsr.
  kCla,    ///< CLA column compression of the dense matrix.
};

const char* RouteName(Route route);
const char* BindingName(Binding binding);

/// \brief Pipeline-level options (route forcing is how tests pin a route).
struct PipelineOptions {
  Route route = Route::kAuto;
  Binding binding = Binding::kAuto;
};

/// \brief What the optimizer decided and what actually happened.
struct PipelineReport {
  Route chosen_route = Route::kMaterialize;
  Binding chosen_binding = Binding::kDense;
  /// Why the chooser picked `chosen_route` ("forced", "cost", a fallback
  /// reason like "categorical features", ...).
  std::string route_reason;

  /// Estimated join-output rows (relational cardinality estimate) and the
  /// feature-matrix width.
  double est_rows = 0;
  size_t feature_cols = 0;
  size_t actual_rows = 0;  ///< Rows the chosen route actually trained on.

  /// Cost-model totals in flop-equivalents (one-time lowering cost plus
  /// per-epoch work x epochs). Both populated only when the chooser ran.
  double materialized_cost = 0;
  double factorized_cost = 0;
  /// Estimated resident bytes of the bound feature operand per route, from
  /// DagAnalysis over the candidate epoch programs.
  uint64_t materialized_bytes = 0;
  uint64_t factorized_bytes = 0;

  /// Canonical feature order used by both routes (base-table features first,
  /// then each joined table's, preserving the declared relative order). The
  /// fitted weight at index j corresponds to feature_names[j].
  std::vector<std::string> feature_names;

  /// Estimated vs. actual cardinality per executed relational operator.
  std::vector<relational::OperatorObservation> relational_ops;

  /// DagAnalysis dump of the epoch program over the chosen binding.
  std::string laopt_explain;

  /// \brief Full EXPLAIN: route + relational prefix (operator, est vs
  /// actual rows, chosen route) above the laopt node tree.
  std::string ExplainText() const;
};

/// \brief A fitted GLM plus the optimizer's report.
struct GlmFit {
  ml::GlmModel model;
  PipelineReport report;
};

/// \brief A fitted k-means clustering plus the optimizer's report.
struct KMeansFit {
  ml::KMeansModel model;
  PipelineReport report;
};

/// \brief Builder for a declarative table-to-model pipeline.
///
/// Stages compose left to right; nothing executes until a terminal Train*
/// call. Errors (unknown table/column, key type mismatch, non-numeric
/// feature) surface from the terminal call with the offending pipeline
/// stage named.
class Pipeline {
 public:
  /// \brief Starts a pipeline reading `table` from `catalog` (borrowed; must
  /// outlive the terminal call).
  static Pipeline From(const storage::Catalog* catalog, std::string table);

  /// \brief Keeps rows satisfying `pred`. Filters declared before any Join
  /// apply to the base table (and keep the factorized route eligible);
  /// filters after a Join apply to the join output and force materialization.
  Pipeline& Filter(relational::PredicatePtr pred);

  /// \brief PK-FK equi-joins `table` (dimension side, unique key) into the
  /// pipeline on `left_key` = `right_key`.
  Pipeline& Join(std::string table, std::string left_key,
                 std::string right_key);

  /// \brief Numeric feature columns (resolved against the joined schema).
  Pipeline& Features(std::vector<std::string> columns);

  /// \brief Categorical (string) feature columns, one-hot encoded into the
  /// CSR feature assembly. Forces the materialized route.
  Pipeline& CategoricalFeatures(std::vector<std::string> columns);

  /// \brief Label column (required for GLM terminals; must live on the base
  /// table for the factorized route).
  Pipeline& Label(std::string column);

  /// \brief Route/binding overrides.
  Pipeline& WithOptions(PipelineOptions options);

  /// \brief Gradient-descent GLM through the chosen route.
  Result<GlmFit> TrainGlm(const ml::GlmConfig& config,
                          ThreadPool* pool = nullptr) const;

  /// \brief Closed-form ridge (normal equations) through the chosen route.
  Result<GlmFit> NormalEquations(const ml::GlmConfig& config,
                                 ThreadPool* pool = nullptr) const;

  /// \brief Lloyd's k-means through the chosen route (no Label needed).
  Result<KMeansFit> TrainKMeans(const ml::KMeansConfig& config,
                                ThreadPool* pool = nullptr) const;

  /// \brief The composed logical plan (for inspection / EXPLAIN tests).
  const relational::LogicalPlan& plan() const { return plan_; }

 private:
  struct JoinSpec {
    std::string table;
    std::string left_key;
    std::string right_key;
    /// Plan prefix ending at this join (for per-join cardinality estimates).
    relational::LogicalPlan prefix;
  };

  Pipeline() = default;

  /// Everything a terminal call needs: the bound operand (chosen route and
  /// binding), the label vector, and the filled report.
  struct LoweredProgram;

  /// \brief Validates the plan, runs the chooser, executes the chosen route
  /// and binds the feature operand. `epochs` scales the per-epoch cost in
  /// the route cost model; `need_label` gates label extraction.
  Result<LoweredProgram> Lower(size_t epochs, bool need_label,
                               ThreadPool* pool, PipelineReport* report) const;

  const storage::Catalog* catalog_ = nullptr;
  std::string base_table_;
  relational::LogicalPlan plan_;       ///< Full prefix including joins.
  relational::LogicalPlan base_plan_;  ///< Base scan + pre-join filters.
  std::vector<JoinSpec> joins_;
  bool star_shape_ = true;  ///< Scan(+filters) ⋈ scans only, so far.
  std::vector<std::string> features_;
  std::vector<std::string> categoricals_;
  std::string label_;
  PipelineOptions options_;
};

}  // namespace dmml::pipeline

#endif  // DMML_PIPELINE_PIPELINE_H_
