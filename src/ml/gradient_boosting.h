/// \file gradient_boosting.h
/// \brief Gradient-boosted CART ensembles (squared loss and logistic loss).
///
/// Boosting fits each new tree to the negative gradient of the loss at the
/// current ensemble's predictions: residuals for regression, residual
/// probabilities for binary classification. Together with bagging
/// (random_forest.h) this covers the ensembling techniques the target
/// tutorial calls out for accuracy under noisy data.
#ifndef DMML_ML_GRADIENT_BOOSTING_H_
#define DMML_ML_GRADIENT_BOOSTING_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "ml/decision_tree.h"
#include "util/result.h"

namespace dmml::ml {

/// \brief Boosting hyperparameters.
struct BoostingConfig {
  size_t num_rounds = 50;
  double learning_rate = 0.1;  ///< Shrinkage applied to each tree.
  TreeConfig tree;             ///< Weak-learner settings (depth 3 by default).
  /// Row subsampling per round (stochastic gradient boosting); 1 = all rows.
  double subsample = 1.0;
  uint64_t seed = 42;

  BoostingConfig() { tree.max_depth = 3; }
};

/// \brief A fitted boosted ensemble.
struct GradientBoostingModel {
  bool is_classifier = false;
  double base_score = 0.0;  ///< Initial prediction (mean / prior log-odds).
  double learning_rate = 0.1;
  std::vector<DecisionTreeModel> trees;
  std::vector<double> train_loss;  ///< Loss after each boosting round.

  /// \brief Raw additive scores F(x) (log-odds for classifiers).
  Result<la::DenseMatrix> DecisionFunction(const la::DenseMatrix& x) const;

  /// \brief Regression: scores; classification: probabilities.
  Result<la::DenseMatrix> Predict(const la::DenseMatrix& x) const;

  /// \brief Classification only: 0/1 labels at `threshold`.
  Result<la::DenseMatrix> PredictLabels(const la::DenseMatrix& x,
                                        double threshold = 0.5) const;
};

/// \brief Boosted regression with squared loss.
Result<GradientBoostingModel> TrainBoostedRegressor(const la::DenseMatrix& x,
                                                    const la::DenseMatrix& y,
                                                    const BoostingConfig& config = {});

/// \brief Boosted binary classification (0/1 labels) with logistic loss.
Result<GradientBoostingModel> TrainBoostedClassifier(const la::DenseMatrix& x,
                                                     const la::DenseMatrix& y,
                                                     const BoostingConfig& config = {});

}  // namespace dmml::ml

#endif  // DMML_ML_GRADIENT_BOOSTING_H_
