/// \file sparse_glm.h
/// \brief GLM training over CSR design matrices.
///
/// Sparse feature matrices (one-hot encodings, text features) are the other
/// half of ML-system workloads; batch-gradient training over CSR costs
/// O(nnz) per epoch instead of O(n·d). Produces the same GlmModel as the
/// dense trainer.
#ifndef DMML_ML_SPARSE_GLM_H_
#define DMML_ML_SPARSE_GLM_H_

#include "la/sparse_matrix.h"
#include "ml/glm.h"
#include "util/result.h"

namespace dmml::ml {

/// \brief Trains a GLM on a CSR design matrix with batch gradient descent
/// (solver field of `config` is ignored; BGD is the sparse path here).
Result<GlmModel> TrainGlmSparse(const la::SparseMatrix& x, const la::DenseMatrix& y,
                                const GlmConfig& config);

/// \brief Mean family loss on sparse data (mirrors ml::GlmLoss).
Result<double> GlmLossSparse(const la::SparseMatrix& x, const la::DenseMatrix& y,
                             const la::DenseMatrix& w, double intercept,
                             GlmFamily family, double l2);

}  // namespace dmml::ml

#endif  // DMML_ML_SPARSE_GLM_H_
