/// \file scaler.h
/// \brief Feature standardization (zero mean, unit variance per column).
#ifndef DMML_ML_SCALER_H_
#define DMML_ML_SCALER_H_

#include "la/dense_matrix.h"
#include "util/result.h"

namespace dmml::ml {

/// \brief Per-column standardizer: x' = (x - mean) / std.
///
/// Columns with zero variance are passed through unshifted-scale (std treated
/// as 1) so constant/intercept columns survive scaling.
class StandardScaler {
 public:
  /// \brief Learns per-column means and standard deviations.
  Status Fit(const la::DenseMatrix& x);

  /// \brief Applies the learned transform; InvalidArgument on width mismatch
  /// or if Fit has not run.
  Result<la::DenseMatrix> Transform(const la::DenseMatrix& x) const;

  /// \brief Fit + Transform in one step.
  Result<la::DenseMatrix> FitTransform(const la::DenseMatrix& x);

  /// \brief Reverses the transform.
  Result<la::DenseMatrix> InverseTransform(const la::DenseMatrix& x) const;

  bool fitted() const { return fitted_; }
  const la::DenseMatrix& means() const { return means_; }
  const la::DenseMatrix& stds() const { return stds_; }

 private:
  bool fitted_ = false;
  la::DenseMatrix means_;  // 1 x d
  la::DenseMatrix stds_;   // 1 x d
};

}  // namespace dmml::ml

#endif  // DMML_ML_SCALER_H_
