/// \file kmeans.h
/// \brief Lloyd's k-means with k-means++ initialization.
#ifndef DMML_ML_KMEANS_H_
#define DMML_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace dmml::ml {

/// \brief k-means hyperparameters.
struct KMeansConfig {
  size_t k = 8;
  size_t max_iters = 100;
  double tolerance = 1e-6;  ///< Relative inertia-improvement stop criterion.
  uint64_t seed = 42;
  bool kmeanspp_init = true;  ///< Otherwise: uniform random point init.
};

/// \brief A fitted k-means clustering.
struct KMeansModel {
  la::DenseMatrix centers;   ///< k x d centroids.
  std::vector<int> labels;   ///< Training assignment.
  double inertia = 0.0;      ///< Final within-cluster SSE.
  size_t iters_run = 0;
  std::vector<double> inertia_history;

  /// \brief Assigns each row of `x` to its nearest centroid.
  Result<std::vector<int>> Predict(const la::DenseMatrix& x) const;
};

/// \brief Runs Lloyd's algorithm on (n x d) data.
///
/// The assignment step runs through one X·Cᵀ matmul per iteration (blocked,
/// parallel over the optional pool) with per-iteration buffers hoisted out of
/// the loop. Empty clusters are re-seeded with the point farthest from its
/// centroid.
Result<KMeansModel> TrainKMeans(const la::DenseMatrix& x, const KMeansConfig& config,
                                ThreadPool* pool = nullptr);

}  // namespace dmml::ml

#endif  // DMML_ML_KMEANS_H_
