#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/kernels.h"

namespace dmml::ml {

using la::DenseMatrix;

namespace {
Status CheckVectors(const DenseMatrix& a, const DenseMatrix& b) {
  if (!a.IsVector() || !b.IsVector() || a.size() != b.size() || a.size() == 0) {
    return Status::InvalidArgument("metrics require equal-length non-empty vectors");
  }
  return Status::OK();
}
}  // namespace

Result<double> Rmse(const DenseMatrix& y_true, const DenseMatrix& y_pred) {
  DMML_RETURN_IF_ERROR(CheckVectors(y_true, y_pred));
  double acc = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    double d = y_true.data()[i] - y_pred.data()[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(y_true.size()));
}

Result<double> Mae(const DenseMatrix& y_true, const DenseMatrix& y_pred) {
  DMML_RETURN_IF_ERROR(CheckVectors(y_true, y_pred));
  double acc = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    acc += std::fabs(y_true.data()[i] - y_pred.data()[i]);
  }
  return acc / static_cast<double>(y_true.size());
}

Result<double> R2(const DenseMatrix& y_true, const DenseMatrix& y_pred) {
  DMML_RETURN_IF_ERROR(CheckVectors(y_true, y_pred));
  const size_t n = y_true.size();
  double mean = la::Sum(y_true) / static_cast<double>(n);
  double ss_res = 0, ss_tot = 0;
  for (size_t i = 0; i < n; ++i) {
    double r = y_true.data()[i] - y_pred.data()[i];
    double t = y_true.data()[i] - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot == 0) return Status::FailedPrecondition("R2 undefined for constant y");
  return 1.0 - ss_res / ss_tot;
}

Result<double> Accuracy(const DenseMatrix& y_true, const DenseMatrix& y_pred) {
  DMML_RETURN_IF_ERROR(CheckVectors(y_true, y_pred));
  size_t hits = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true.data()[i] == y_pred.data()[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(y_true.size());
}

Result<double> LogLoss(const DenseMatrix& y_true, const DenseMatrix& y_prob,
                       double eps) {
  DMML_RETURN_IF_ERROR(CheckVectors(y_true, y_prob));
  double acc = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    double p = std::clamp(y_prob.data()[i], eps, 1.0 - eps);
    double y = y_true.data()[i];
    acc += -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
  }
  return acc / static_cast<double>(y_true.size());
}

Result<PrecisionRecallF1> BinaryPrf(const DenseMatrix& y_true,
                                    const DenseMatrix& y_pred) {
  DMML_RETURN_IF_ERROR(CheckVectors(y_true, y_pred));
  size_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    bool t = y_true.data()[i] == 1.0;
    bool p = y_pred.data()[i] == 1.0;
    if (t && p) ++tp;
    else if (!t && p) ++fp;
    else if (t && !p) ++fn;
  }
  PrecisionRecallF1 out{0, 0, 0};
  if (tp + fp > 0) out.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
  if (tp + fn > 0) out.recall = static_cast<double>(tp) / static_cast<double>(tp + fn);
  if (out.precision + out.recall > 0) {
    out.f1 = 2 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

Result<double> RocAuc(const DenseMatrix& y_true, const DenseMatrix& y_score) {
  DMML_RETURN_IF_ERROR(CheckVectors(y_true, y_score));
  const size_t n = y_true.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return y_score.data()[a] < y_score.data()[b];
  });
  // Rank-sum with average ranks for ties.
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n &&
           y_score.data()[order[j + 1]] == y_score.data()[order[i]]) {
      ++j;
    }
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }
  double pos_rank_sum = 0;
  size_t num_pos = 0;
  for (size_t k = 0; k < n; ++k) {
    if (y_true.data()[k] == 1.0) {
      pos_rank_sum += rank[k];
      ++num_pos;
    }
  }
  size_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) {
    return Status::FailedPrecondition("AUC undefined with a single class");
  }
  double auc = (pos_rank_sum - static_cast<double>(num_pos) *
                                   (static_cast<double>(num_pos) + 1) / 2.0) /
               (static_cast<double>(num_pos) * static_cast<double>(num_neg));
  return auc;
}

double KMeansInertia(const DenseMatrix& x, const DenseMatrix& centers,
                     const std::vector<int>& assignment) {
  double acc = 0;
  for (size_t i = 0; i < x.rows(); ++i) {
    acc += la::RowSquaredDistance(x, i, centers, static_cast<size_t>(assignment[i]));
  }
  return acc;
}

}  // namespace dmml::ml
