#include "ml/pca.h"

#include <cmath>

#include "la/kernels.h"
#include "util/rng.h"

namespace dmml::ml {

using la::DenseMatrix;

namespace {

// Power iteration for the dominant eigenpair of symmetric `cov`.
std::pair<DenseMatrix, double> DominantEigenpair(const DenseMatrix& cov,
                                                 const PcaConfig& config,
                                                 uint64_t seed) {
  const size_t d = cov.rows();
  Rng rng(seed);
  DenseMatrix v(d, 1);
  for (size_t j = 0; j < d; ++j) v.At(j, 0) = rng.Normal();
  double norm = la::FrobeniusNorm(v);
  for (size_t j = 0; j < d; ++j) v.At(j, 0) /= norm;

  double eigenvalue = 0;
  for (size_t iter = 0; iter < config.max_iters; ++iter) {
    DenseMatrix next = la::Gemv(cov, v);
    double next_norm = la::FrobeniusNorm(next);
    if (next_norm == 0) break;  // Null space; keep the current vector.
    for (size_t j = 0; j < d; ++j) next.At(j, 0) /= next_norm;
    double delta = 0;
    for (size_t j = 0; j < d; ++j) {
      delta = std::max(delta, std::fabs(next.At(j, 0) - v.At(j, 0)));
    }
    v = std::move(next);
    eigenvalue = next_norm;
    if (delta < config.tolerance) break;
  }
  // Rayleigh quotient for a clean eigenvalue estimate.
  DenseMatrix cv = la::Gemv(cov, v);
  eigenvalue = la::Dot(v, cv);
  return {std::move(v), eigenvalue};
}

}  // namespace

Result<PcaModel> TrainPca(const DenseMatrix& x, const PcaConfig& config) {
  const size_t n = x.rows(), d = x.cols();
  if (n < 2 || d == 0) return Status::InvalidArgument("PCA: need n >= 2 rows");
  if (config.num_components == 0 || config.num_components > d) {
    return Status::InvalidArgument("PCA: num_components must be in [1, d]");
  }

  PcaModel model;
  model.mean = DenseMatrix(1, d);
  for (size_t i = 0; i < n; ++i) {
    la::Axpy(1.0, x.Row(i), model.mean.data(), d);
  }
  for (size_t j = 0; j < d; ++j) model.mean.At(0, j) /= static_cast<double>(n);

  // Covariance (d x d), formed once. O(n d^2).
  DenseMatrix cov(d, d);
  std::vector<double> centered(d);
  for (size_t i = 0; i < n; ++i) {
    const double* row = x.Row(i);
    for (size_t j = 0; j < d; ++j) centered[j] = row[j] - model.mean.At(0, j);
    for (size_t a = 0; a < d; ++a) {
      if (centered[a] == 0.0) continue;
      la::Axpy(centered[a], centered.data(), cov.Row(a), d);
    }
  }
  double inv = 1.0 / static_cast<double>(n - 1);
  for (size_t i = 0; i < cov.size(); ++i) cov.data()[i] *= inv;

  double total_variance = 0;
  for (size_t j = 0; j < d; ++j) total_variance += cov.At(j, j);

  model.components = DenseMatrix(config.num_components, d);
  for (size_t c = 0; c < config.num_components; ++c) {
    auto [v, eigenvalue] = DominantEigenpair(cov, config, config.seed + c);
    for (size_t j = 0; j < d; ++j) model.components.At(c, j) = v.At(j, 0);
    model.explained_variance.push_back(std::max(0.0, eigenvalue));
    // Hotelling deflation: cov -= lambda v v^T.
    for (size_t a = 0; a < d; ++a) {
      la::Axpy(-eigenvalue * v.At(a, 0), v.data(), cov.Row(a), d);
    }
  }
  for (double ev : model.explained_variance) {
    model.explained_variance_ratio.push_back(
        total_variance > 0 ? ev / total_variance : 0.0);
  }
  return model;
}

Result<DenseMatrix> PcaModel::Transform(const DenseMatrix& x) const {
  const size_t d = components.cols();
  if (x.cols() != d) return Status::InvalidArgument("PCA: dimensionality mismatch");
  const size_t k = components.rows();
  DenseMatrix z(x.rows(), k);
  std::vector<double> centered(d);
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.Row(i);
    for (size_t j = 0; j < d; ++j) centered[j] = row[j] - mean.At(0, j);
    for (size_t c = 0; c < k; ++c) {
      z.At(i, c) = la::Dot(centered.data(), components.Row(c), d);
    }
  }
  return z;
}

Result<DenseMatrix> PcaModel::InverseTransform(const DenseMatrix& z) const {
  const size_t k = components.rows(), d = components.cols();
  if (z.cols() != k) return Status::InvalidArgument("PCA: component-count mismatch");
  DenseMatrix x(z.rows(), d);
  for (size_t i = 0; i < z.rows(); ++i) {
    double* row = x.Row(i);
    for (size_t j = 0; j < d; ++j) row[j] = mean.At(0, j);
    for (size_t c = 0; c < k; ++c) {
      la::Axpy(z.At(i, c), components.Row(c), row, d);
    }
  }
  return x;
}

}  // namespace dmml::ml
