/// \file unified_trainers.h
/// \brief Representation-polymorphic trainers: GLM and k-means expressed
/// once against a laopt::Operand and executed by the buffered executor's
/// representation dispatch.
///
/// These are the unified path the representation-specific front doors sit
/// on: `ml::TrainGlm` (normal equations) routes its dense design matrix
/// here, and `cla::TrainCompressedGlm` / `cla::TrainCompressedKMeans` are
/// thin bindings that wrap a CompressedMatrix in an Operand and call these
/// functions. The matrix products of every epoch — X·w, Xᵀ·g, X·Cᵀ, Xᵀ·A,
/// XᵀX, rowSums(X ⊙ X) — run through one BufferedExecutor, which dispatches
/// each to the dense, CSR, or compressed kernel matching the binding
/// (laopt/executor.h). The scalar epoch bookkeeping (residuals, losses,
/// argmin assignment, center/weight updates) is representation-independent
/// and identical to the hand-written trainers it replaces.
#ifndef DMML_ML_UNIFIED_TRAINERS_H_
#define DMML_ML_UNIFIED_TRAINERS_H_

#include "la/dense_matrix.h"
#include "laopt/operand.h"
#include "ml/glm.h"
#include "ml/kmeans.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace dmml::laopt {
class PlanProfile;
}  // namespace dmml::laopt

namespace dmml::ml {

/// \brief Non-owning Operand over a caller-held dense matrix — the standard
/// way to run an existing `DenseMatrix` through the operand-based trainers
/// (and the modelsel shared-scan engine) without copying or transferring
/// ownership. The caller must outlive every executor run that reads it.
laopt::Operand BorrowOperand(const la::DenseMatrix& m);

/// \brief Full-batch gradient-descent GLM training on a design matrix in
/// any physical representation. The per-epoch X·w and Xᵀ·r products run on
/// the representation's native kernels (dense GEMM, CSR gemv/gevm, or the
/// compressed dictionary-pre-aggregating operators); buffers are executor
/// slots reused across epochs, so steady-state epochs allocate nothing.
///
/// Profiling (all three trainers): pass a `profile` to accumulate per-node
/// EXPLAIN ANALYZE evidence across every epoch's executor runs
/// (laopt/profile.h). With a null `profile`, setting the
/// DMML_EXPLAIN_ANALYZE environment variable to a truthy value makes the
/// trainer profile into a local PlanProfile and log the calibration report
/// at the end of training. While training runs, the active profile is
/// published on the obs `/profiles` endpoint under the trainer's span name
/// (e.g. "ml.glm.train_operand").
Result<GlmModel> TrainGlmOnOperand(const laopt::Operand& x,
                                   const la::DenseMatrix& y,
                                   const GlmConfig& config,
                                   ThreadPool* pool = nullptr,
                                   laopt::PlanProfile* profile = nullptr);

/// \brief Closed-form ridge solve (XᵀX + nλI) w = Xᵀy over any
/// representation of X (Gaussian family). XᵀX, Xᵀy and the intercept
/// border's colSums(X) are evaluated through the executor: dense bindings
/// hit the SYRK/fused-transpose kernels bit-identically to the historical
/// dense path; sparse and compressed bindings use their native operators
/// where they exist and the densify fallback where they do not. Fills
/// `model` (weights, intercept, one loss_history entry, epochs_run = 1).
Status RunNormalEquationsOnOperand(const laopt::Operand& x,
                                   const la::DenseMatrix& y,
                                   const GlmConfig& config, ThreadPool* pool,
                                   GlmModel* model,
                                   laopt::PlanProfile* profile = nullptr);

/// \brief Lloyd's k-means on a design matrix in any representation
/// (uniform random-row init, expanded-distance assignment). Per-iteration
/// X·Cᵀ and Xᵀ·A products and the one-off rowSums(X ⊙ X) run on the
/// binding's native kernels; the compressed binding never decompresses X.
Result<KMeansModel> TrainKMeansOnOperand(const laopt::Operand& x,
                                         const KMeansConfig& config,
                                         ThreadPool* pool = nullptr,
                                         laopt::PlanProfile* profile = nullptr);

}  // namespace dmml::ml

#endif  // DMML_ML_UNIFIED_TRAINERS_H_
