/// \file glm.h
/// \brief Generalized linear models with a family of solvers.
///
/// Families: Gaussian (linear regression) and Binomial (logistic regression),
/// both with optional L2 regularization and intercept. Solvers span the
/// statistical-vs-hardware-efficiency spectrum the target tutorial discusses:
/// full-batch gradient descent, serial SGD, mini-batch SGD, lock-free
/// parallel SGD (Hogwild-style), and closed-form normal equations (Gaussian
/// family only).
#ifndef DMML_ML_GLM_H_
#define DMML_ML_GLM_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace dmml::ml {

/// GLM response family.
enum class GlmFamily {
  kGaussian,  ///< Identity link; squared loss (linear regression).
  kBinomial,  ///< Logit link; log loss (logistic regression).
};

/// Training algorithm.
enum class GlmSolver {
  kBatchGd,          ///< Full-batch gradient descent.
  kSgd,              ///< Single-example serial SGD with shuffling.
  kMiniBatchSgd,     ///< Mini-batch SGD.
  kHogwild,          ///< Lock-free parallel mini-SGD over a thread pool.
  kNormalEquations,  ///< (X^T X + λI)^-1 X^T y; Gaussian family only.
  kAdagrad,          ///< Mini-batch SGD with per-coordinate Adagrad scaling.
  kAdam,             ///< Mini-batch SGD with Adam moment estimates.
};

/// \brief GLM hyperparameters.
struct GlmConfig {
  GlmFamily family = GlmFamily::kGaussian;
  GlmSolver solver = GlmSolver::kBatchGd;
  double learning_rate = 0.1;
  double l2 = 0.0;              ///< L2 penalty λ (not applied to intercept).
  size_t max_epochs = 100;
  double tolerance = 1e-7;      ///< Relative loss-improvement stop criterion.
  size_t batch_size = 32;       ///< For kMiniBatchSgd.
  bool fit_intercept = true;
  size_t num_threads = 1;       ///< For kHogwild.
  uint64_t seed = 42;           ///< Shuffling / initialization seed.
  double lr_decay = 0.0;        ///< lr_t = lr / (1 + decay * epoch).
  double adam_beta1 = 0.9;      ///< Adam first-moment decay.
  double adam_beta2 = 0.999;    ///< Adam second-moment decay.
  double adaptive_eps = 1e-8;   ///< Adagrad/Adam denominator floor.
};

/// \brief A fitted GLM.
struct GlmModel {
  GlmFamily family = GlmFamily::kGaussian;
  la::DenseMatrix weights;  ///< d x 1.
  double intercept = 0.0;
  std::vector<double> loss_history;  ///< Training loss per epoch.
  size_t epochs_run = 0;

  /// \brief Linear scores X w + b as (n x 1).
  Result<la::DenseMatrix> DecisionFunction(const la::DenseMatrix& x) const;

  /// \brief Gaussian: scores; Binomial: probabilities sigmoid(scores).
  Result<la::DenseMatrix> Predict(const la::DenseMatrix& x) const;

  /// \brief Binomial only: 0/1 labels at `threshold`.
  Result<la::DenseMatrix> PredictLabels(const la::DenseMatrix& x,
                                        double threshold = 0.5) const;
};

/// \brief Trains a GLM on (x: n x d, y: n x 1) per `config`.
Result<GlmModel> TrainGlm(const la::DenseMatrix& x, const la::DenseMatrix& y,
                          const GlmConfig& config, ThreadPool* pool = nullptr);

/// \brief Mean loss of the family at parameters (w, b): MSE/2 for Gaussian,
/// log loss for Binomial, plus the L2 term. Exposed for convergence studies.
Result<double> GlmLoss(const la::DenseMatrix& x, const la::DenseMatrix& y,
                       const la::DenseMatrix& w, double intercept, GlmFamily family,
                       double l2);

/// \brief Inverse link: identity (Gaussian) or sigmoid (Binomial).
double GlmInverseLink(double score, GlmFamily family);

}  // namespace dmml::ml

#endif  // DMML_ML_GLM_H_
