#include "ml/validation.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "util/rng.h"

namespace dmml::ml {

using la::DenseMatrix;

Result<TrainTestSplit> SplitTrainTest(const DenseMatrix& x, const DenseMatrix& y,
                                      double test_fraction, uint64_t seed) {
  const size_t n = x.rows();
  if (y.rows() != n) return Status::InvalidArgument("split: x/y row mismatch");
  if (test_fraction <= 0 || test_fraction >= 1) {
    return Status::InvalidArgument("split: test_fraction must be in (0, 1)");
  }
  size_t test_size = static_cast<size_t>(test_fraction * static_cast<double>(n));
  if (test_size == 0 || test_size == n) {
    return Status::InvalidArgument("split: both sides need at least one row");
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&order);

  auto gather = [&](size_t begin, size_t end, const DenseMatrix& m) {
    DenseMatrix out(end - begin, m.cols());
    for (size_t i = begin; i < end; ++i) {
      std::copy(m.Row(order[i]), m.Row(order[i]) + m.cols(), out.Row(i - begin));
    }
    return out;
  };

  TrainTestSplit split;
  split.x_test = gather(0, test_size, x);
  split.y_test = gather(0, test_size, y);
  split.x_train = gather(test_size, n, x);
  split.y_train = gather(test_size, n, y);
  return split;
}

Result<ConfusionMatrix> BuildConfusionMatrix(const std::vector<int>& y_true,
                                             const std::vector<int>& y_pred) {
  if (y_true.size() != y_pred.size() || y_true.empty()) {
    return Status::InvalidArgument("confusion matrix: label size mismatch");
  }
  std::map<int, size_t> index;
  for (int label : y_true) index.emplace(label, 0);
  for (int label : y_pred) index.emplace(label, 0);
  size_t next = 0;
  for (auto& [_, idx] : index) idx = next++;

  ConfusionMatrix cm;
  cm.classes.resize(index.size());
  for (const auto& [label, idx] : index) cm.classes[idx] = label;
  cm.counts = DenseMatrix(index.size(), index.size());
  for (size_t i = 0; i < y_true.size(); ++i) {
    cm.counts.At(index[y_true[i]], index[y_pred[i]]) += 1.0;
  }
  return cm;
}

double ConfusionMatrix::Accuracy() const {
  double diag = 0, total = 0;
  for (size_t i = 0; i < counts.rows(); ++i) {
    diag += counts.At(i, i);
    for (size_t j = 0; j < counts.cols(); ++j) total += counts.At(i, j);
  }
  return total > 0 ? diag / total : 0.0;
}

Result<double> ConfusionMatrix::Recall(int label) const {
  auto it = std::find(classes.begin(), classes.end(), label);
  if (it == classes.end()) return Status::NotFound("unknown class label");
  size_t c = static_cast<size_t>(it - classes.begin());
  double row_sum = 0;
  for (size_t j = 0; j < counts.cols(); ++j) row_sum += counts.At(c, j);
  if (row_sum == 0) return Status::FailedPrecondition("class has no true examples");
  return counts.At(c, c) / row_sum;
}

Result<double> ConfusionMatrix::Precision(int label) const {
  auto it = std::find(classes.begin(), classes.end(), label);
  if (it == classes.end()) return Status::NotFound("unknown class label");
  size_t c = static_cast<size_t>(it - classes.begin());
  double col_sum = 0;
  for (size_t i = 0; i < counts.rows(); ++i) col_sum += counts.At(i, c);
  if (col_sum == 0) return Status::FailedPrecondition("class never predicted");
  return counts.At(c, c) / col_sum;
}

std::string ConfusionMatrix::ToString() const {
  std::ostringstream os;
  os << "true\\pred";
  for (int c : classes) os << "\t" << c;
  os << "\n";
  for (size_t i = 0; i < counts.rows(); ++i) {
    os << classes[i];
    for (size_t j = 0; j < counts.cols(); ++j) {
      os << "\t" << static_cast<long long>(counts.At(i, j));
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace dmml::ml
