#include "ml/encoding.h"

#include <functional>

namespace dmml::ml {

using la::SparseMatrix;
using la::Triplet;
using storage::Column;
using storage::DataType;
using storage::Table;

namespace {

Result<const Column*> RequireStringColumn(const Table& table,
                                          const std::string& name) {
  DMML_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(name));
  if (col->type() != DataType::kString) {
    return Status::InvalidArgument("column '" + name + "' is not a string column");
  }
  return col;
}

}  // namespace

Status OneHotEncoder::Fit(const Table& table, const std::vector<std::string>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("one-hot encoder needs >= 1 column");
  }
  columns_ = columns;
  dictionaries_.assign(columns.size(), {});
  for (size_t c = 0; c < columns.size(); ++c) {
    DMML_ASSIGN_OR_RETURN(const Column* col, RequireStringColumn(table, columns[c]));
    // std::map keeps values sorted; slots assigned in sorted order below.
    for (size_t i = 0; i < table.num_rows(); ++i) {
      if (col->IsValid(i)) dictionaries_[c].emplace(col->GetString(i), 0);
    }
    size_t slot = 0;
    for (auto& [_, s] : dictionaries_[c]) s = slot++;
  }
  offsets_.assign(columns.size(), 0);
  size_t offset = 0;
  for (size_t c = 0; c < columns.size(); ++c) {
    offsets_[c] = offset;
    offset += dictionaries_[c].size();
  }
  fitted_ = true;
  return Status::OK();
}

size_t OneHotEncoder::TotalWidth() const {
  size_t width = 0;
  for (const auto& dict : dictionaries_) width += dict.size();
  return width;
}

std::vector<std::string> OneHotEncoder::FeatureNames() const {
  std::vector<std::string> names(TotalWidth());
  for (size_t c = 0; c < columns_.size(); ++c) {
    for (const auto& [value, slot] : dictionaries_[c]) {
      names[offsets_[c] + slot] = columns_[c] + "=" + value;
    }
  }
  return names;
}

Result<SparseMatrix> OneHotEncoder::Transform(const Table& table) const {
  if (!fitted_) return Status::FailedPrecondition("one-hot encoder is not fitted");
  std::vector<Triplet> triplets;
  triplets.reserve(table.num_rows() * columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    DMML_ASSIGN_OR_RETURN(const Column* col, RequireStringColumn(table, columns_[c]));
    for (size_t i = 0; i < table.num_rows(); ++i) {
      if (!col->IsValid(i)) continue;  // NULL -> all-zero block.
      auto it = dictionaries_[c].find(col->GetString(i));
      if (it == dictionaries_[c].end()) continue;  // Unseen -> all-zero.
      triplets.push_back({i, offsets_[c] + it->second, 1.0});
    }
  }
  return SparseMatrix::FromTriplets(table.num_rows(), TotalWidth(),
                                    std::move(triplets));
}

Result<SparseMatrix> OneHotEncoder::FitTransform(
    const Table& table, const std::vector<std::string>& columns) {
  DMML_RETURN_IF_ERROR(Fit(table, columns));
  return Transform(table);
}

Result<SparseMatrix> HashEncode(const Table& table,
                                const std::vector<std::string>& columns,
                                size_t num_buckets, uint64_t seed) {
  if (num_buckets == 0) {
    return Status::InvalidArgument("hash encoding needs >= 1 bucket");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("hash encoding needs >= 1 column");
  }
  std::vector<Triplet> triplets;
  std::hash<std::string> hasher;
  for (const auto& name : columns) {
    DMML_ASSIGN_OR_RETURN(const Column* col, RequireStringColumn(table, name));
    for (size_t i = 0; i < table.num_rows(); ++i) {
      if (!col->IsValid(i)) continue;
      // Namespaced key so equal values in different columns hash apart.
      size_t h = hasher(name + "\x1f" + col->GetString(i)) ^ seed;
      size_t bucket = h % num_buckets;
      // Sign hash halves collision bias (Weinberger et al.).
      double sign = ((h >> 17) & 1) ? 1.0 : -1.0;
      triplets.push_back({i, bucket, sign});
    }
  }
  return SparseMatrix::FromTriplets(table.num_rows(), num_buckets,
                                    std::move(triplets));
}

Result<AssembledFeatures> AssembleFeaturesCsr(
    const Table& table, const std::vector<std::string>& numeric_columns,
    const std::vector<std::string>& categorical_columns) {
  const size_t n = table.num_rows();
  const size_t dn = numeric_columns.size();

  std::vector<const Column*> numeric;
  numeric.reserve(dn);
  for (const auto& name : numeric_columns) {
    DMML_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(name));
    if (col->type() != storage::DataType::kDouble &&
        col->type() != storage::DataType::kInt64) {
      return Status::InvalidArgument("numeric feature column " + name +
                                     " is not numeric");
    }
    numeric.push_back(col);
  }

  AssembledFeatures out;
  out.feature_names = numeric_columns;
  SparseMatrix onehot;
  if (!categorical_columns.empty()) {
    DMML_ASSIGN_OR_RETURN(onehot,
                          out.encoder.FitTransform(table, categorical_columns));
    for (std::string& name : out.encoder.FeatureNames()) {
      out.feature_names.push_back(std::move(name));
    }
  }
  const size_t d = dn + (categorical_columns.empty() ? 0 : onehot.cols());

  // Direct CSR build: numeric block entries first (indices 0..dn-1 in the
  // given column order), then the one-hot row shifted by dn — both already
  // strictly increasing, so no triplet sort is needed.
  std::vector<size_t> row_ptr(n + 1, 0);
  std::vector<uint32_t> col_idx;
  std::vector<double> values;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dn; ++j) {
      const Column* col = numeric[j];
      if (!col->IsValid(i)) continue;
      const double v = col->type() == storage::DataType::kDouble
                           ? col->GetDouble(i)
                           : static_cast<double>(col->GetInt64(i));
      if (v == 0.0) continue;
      col_idx.push_back(static_cast<uint32_t>(j));
      values.push_back(v);
    }
    if (!categorical_columns.empty()) {
      for (size_t e = onehot.RowBegin(i); e < onehot.RowEnd(i); ++e) {
        col_idx.push_back(static_cast<uint32_t>(dn + onehot.col_idx()[e]));
        values.push_back(onehot.values()[e]);
      }
    }
    row_ptr[i + 1] = col_idx.size();
  }
  out.matrix = SparseMatrix::FromCsr(n, d, std::move(row_ptr),
                                     std::move(col_idx), std::move(values));
  return out;
}

}  // namespace dmml::ml
