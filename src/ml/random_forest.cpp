#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "util/rng.h"

namespace dmml::ml {

using la::DenseMatrix;

namespace {

// Gathers selected rows/columns of x into a dense sub-matrix.
DenseMatrix GatherSubMatrix(const DenseMatrix& x, const std::vector<size_t>& rows,
                            const std::vector<size_t>& cols) {
  DenseMatrix out(rows.size(), cols.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const double* src = x.Row(rows[i]);
    double* dst = out.Row(i);
    for (size_t j = 0; j < cols.size(); ++j) dst[j] = src[cols[j]];
  }
  return out;
}

Result<RandomForestModel> TrainForest(const DenseMatrix& x, const DenseMatrix& y,
                                      const ForestConfig& config, bool classifier,
                                      ThreadPool* pool) {
  const size_t n = x.rows(), d = x.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("forest: empty data");
  if (y.rows() != n || y.cols() != 1) {
    return Status::InvalidArgument("forest: y must be n x 1");
  }
  if (config.num_trees == 0) return Status::InvalidArgument("forest: num_trees >= 1");
  if (config.bootstrap_fraction <= 0 || config.bootstrap_fraction > 1.0) {
    return Status::InvalidArgument("forest: bootstrap_fraction in (0, 1]");
  }

  size_t max_features = config.max_features;
  if (max_features == 0) {
    max_features = classifier
                       ? static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(d))))
                       : std::max<size_t>(1, d / 3);
  }
  max_features = std::min(max_features, d);
  size_t sample_size =
      std::max<size_t>(1, static_cast<size_t>(config.bootstrap_fraction *
                                              static_cast<double>(n)));

  RandomForestModel model;
  model.is_classifier = classifier;
  model.trees.resize(config.num_trees);
  model.feature_subsets.resize(config.num_trees);
  std::vector<Status> statuses(config.num_trees, Status::OK());

  auto train_one = [&](size_t t) {
    Rng rng(config.seed + 0x9e3779b9ULL * (t + 1));
    // Bootstrap rows (with replacement).
    std::vector<size_t> rows(sample_size);
    for (auto& r : rows) r = rng.UniformInt(static_cast<uint64_t>(n));
    // Feature subset (without replacement).
    std::vector<size_t> cols(d);
    std::iota(cols.begin(), cols.end(), 0);
    rng.Shuffle(&cols);
    cols.resize(max_features);
    std::sort(cols.begin(), cols.end());

    DenseMatrix xt = GatherSubMatrix(x, rows, cols);
    DenseMatrix yt(rows.size(), 1);
    for (size_t i = 0; i < rows.size(); ++i) yt.At(i, 0) = y.At(rows[i], 0);

    auto tree = classifier ? TrainTreeClassifier(xt, yt, config.tree)
                           : TrainTreeRegressor(xt, yt, config.tree);
    if (!tree.ok()) {
      statuses[t] = tree.status();
      return;
    }
    model.trees[t] = std::move(*tree);
    model.feature_subsets[t] = std::move(cols);
  };

  if (pool != nullptr && pool->num_threads() > 1) {
    std::vector<std::future<void>> futures;
    for (size_t t = 0; t < config.num_trees; ++t) {
      futures.push_back(pool->Submit([&train_one, t] { train_one(t); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (size_t t = 0; t < config.num_trees; ++t) train_one(t);
  }
  for (const auto& status : statuses) {
    DMML_RETURN_IF_ERROR(status);
  }
  return model;
}

// Per-tree predictions projected through the tree's feature subset.
Result<DenseMatrix> TreePredictSubset(const DecisionTreeModel& tree,
                                      const std::vector<size_t>& subset,
                                      const DenseMatrix& x) {
  std::vector<size_t> all_rows(x.rows());
  std::iota(all_rows.begin(), all_rows.end(), 0);
  DenseMatrix xs = GatherSubMatrix(x, all_rows, subset);
  return tree.Predict(xs);
}

}  // namespace

Result<DenseMatrix> RandomForestModel::Predict(const DenseMatrix& x) const {
  if (trees.empty()) return Status::FailedPrecondition("forest is not trained");
  const size_t n = x.rows();
  if (is_classifier) {
    // Majority vote over arbitrary label values.
    std::vector<std::map<double, int>> votes(n);
    for (size_t t = 0; t < trees.size(); ++t) {
      DMML_ASSIGN_OR_RETURN(DenseMatrix pred,
                            TreePredictSubset(trees[t], feature_subsets[t], x));
      for (size_t i = 0; i < n; ++i) votes[i][pred.At(i, 0)]++;
    }
    DenseMatrix out(n, 1);
    for (size_t i = 0; i < n; ++i) {
      double best_label = 0;
      int best_count = -1;
      for (const auto& [label, count] : votes[i]) {
        if (count > best_count) {
          best_count = count;
          best_label = label;
        }
      }
      out.At(i, 0) = best_label;
    }
    return out;
  }
  DenseMatrix out(n, 1);
  for (size_t t = 0; t < trees.size(); ++t) {
    DMML_ASSIGN_OR_RETURN(DenseMatrix pred,
                          TreePredictSubset(trees[t], feature_subsets[t], x));
    for (size_t i = 0; i < n; ++i) out.At(i, 0) += pred.At(i, 0);
  }
  double inv = 1.0 / static_cast<double>(trees.size());
  for (size_t i = 0; i < n; ++i) out.At(i, 0) *= inv;
  return out;
}

Result<DenseMatrix> RandomForestModel::PredictProba(const DenseMatrix& x) const {
  if (!is_classifier) {
    return Status::FailedPrecondition("PredictProba requires a classifier forest");
  }
  if (trees.empty()) return Status::FailedPrecondition("forest is not trained");
  DenseMatrix out(x.rows(), 1);
  for (size_t t = 0; t < trees.size(); ++t) {
    DMML_ASSIGN_OR_RETURN(DenseMatrix pred,
                          TreePredictSubset(trees[t], feature_subsets[t], x));
    for (size_t i = 0; i < x.rows(); ++i) {
      if (pred.At(i, 0) == 1.0) out.At(i, 0) += 1.0;
    }
  }
  double inv = 1.0 / static_cast<double>(trees.size());
  for (size_t i = 0; i < x.rows(); ++i) out.At(i, 0) *= inv;
  return out;
}

Result<RandomForestModel> TrainForestClassifier(const DenseMatrix& x,
                                                const DenseMatrix& y,
                                                const ForestConfig& config,
                                                ThreadPool* pool) {
  return TrainForest(x, y, config, true, pool);
}

Result<RandomForestModel> TrainForestRegressor(const DenseMatrix& x,
                                               const DenseMatrix& y,
                                               const ForestConfig& config,
                                               ThreadPool* pool) {
  return TrainForest(x, y, config, false, pool);
}

}  // namespace dmml::ml
