#include "ml/gmm.h"

#include <cmath>
#include <limits>

#include "la/kernels.h"
#include "util/rng.h"

namespace dmml::ml {

using la::DenseMatrix;

namespace {

// Log density of x (row) under component c with diagonal covariance.
double LogDensity(const double* x, const GmmModel& model, size_t c, size_t d) {
  double acc = 0;
  for (size_t j = 0; j < d; ++j) {
    double var = model.variances.At(c, j);
    double delta = x[j] - model.means.At(c, j);
    acc += -0.5 * (std::log(2.0 * M_PI * var) + delta * delta / var);
  }
  return acc;
}

// Fills `resp` (n x k) with responsibilities; returns the mean log-likelihood.
double EStep(const DenseMatrix& x, const GmmModel& model, DenseMatrix* resp) {
  const size_t n = x.rows(), d = x.cols(), k = model.weights.size();
  double total_ll = 0;
  for (size_t i = 0; i < n; ++i) {
    double* row = resp->Row(i);
    double mx = -std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      row[c] = std::log(model.weights[c]) + LogDensity(x.Row(i), model, c, d);
      mx = std::max(mx, row[c]);
    }
    double total = 0;
    for (size_t c = 0; c < k; ++c) {
      row[c] = std::exp(row[c] - mx);
      total += row[c];
    }
    for (size_t c = 0; c < k; ++c) row[c] /= total;
    total_ll += mx + std::log(total);
  }
  return total_ll / static_cast<double>(n);
}

}  // namespace

Result<GmmModel> TrainGmm(const DenseMatrix& x, const GmmConfig& config) {
  const size_t n = x.rows(), d = x.cols(), k = config.num_components;
  if (n == 0 || d == 0) return Status::InvalidArgument("GMM: empty data");
  if (k == 0 || k > n) return Status::InvalidArgument("GMM: k must be in [1, n]");
  if (config.var_floor <= 0) {
    return Status::InvalidArgument("GMM: var_floor must be positive");
  }

  // Initialize means at random points, variances at the global per-dimension
  // variance, weights uniform.
  Rng rng(config.seed);
  GmmModel model;
  model.means = DenseMatrix(k, d);
  for (size_t c = 0; c < k; ++c) {
    size_t pick = rng.UniformInt(static_cast<uint64_t>(n));
    std::copy(x.Row(pick), x.Row(pick) + d, model.means.Row(c));
  }
  model.variances = DenseMatrix(k, d);
  {
    std::vector<double> mean(d, 0.0), var(d, 0.0);
    for (size_t i = 0; i < n; ++i) la::Axpy(1.0, x.Row(i), mean.data(), d);
    for (size_t j = 0; j < d; ++j) mean[j] /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      const double* row = x.Row(i);
      for (size_t j = 0; j < d; ++j) {
        double delta = row[j] - mean[j];
        var[j] += delta * delta;
      }
    }
    for (size_t j = 0; j < d; ++j) {
      var[j] = std::max(config.var_floor, var[j] / static_cast<double>(n));
    }
    for (size_t c = 0; c < k; ++c) {
      std::copy(var.begin(), var.end(), model.variances.Row(c));
    }
  }
  model.weights.assign(k, 1.0 / static_cast<double>(k));

  DenseMatrix resp(n, k);
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < config.max_iters; ++iter) {
    double ll = EStep(x, model, &resp);
    model.log_likelihood_history.push_back(ll);
    model.iters_run = iter + 1;

    // M step.
    for (size_t c = 0; c < k; ++c) {
      double nk = 0;
      for (size_t i = 0; i < n; ++i) nk += resp.At(i, c);
      if (nk < 1e-12) {
        // Dead component: re-seed it at a random point.
        size_t pick = rng.UniformInt(static_cast<uint64_t>(n));
        std::copy(x.Row(pick), x.Row(pick) + d, model.means.Row(c));
        model.weights[c] = 1.0 / static_cast<double>(n);
        continue;
      }
      for (size_t j = 0; j < d; ++j) model.means.At(c, j) = 0;
      for (size_t i = 0; i < n; ++i) {
        la::Axpy(resp.At(i, c), x.Row(i), model.means.Row(c), d);
      }
      for (size_t j = 0; j < d; ++j) model.means.At(c, j) /= nk;

      for (size_t j = 0; j < d; ++j) model.variances.At(c, j) = 0;
      for (size_t i = 0; i < n; ++i) {
        const double r = resp.At(i, c);
        const double* row = x.Row(i);
        for (size_t j = 0; j < d; ++j) {
          double delta = row[j] - model.means.At(c, j);
          model.variances.At(c, j) += r * delta * delta;
        }
      }
      for (size_t j = 0; j < d; ++j) {
        model.variances.At(c, j) =
            std::max(config.var_floor, model.variances.At(c, j) / nk);
      }
      model.weights[c] = nk / static_cast<double>(n);
    }
    // Renormalize weights (dead-component reseeding can unbalance them).
    double wsum = 0;
    for (double w : model.weights) wsum += w;
    for (double& w : model.weights) w /= wsum;

    if (std::isfinite(prev_ll) &&
        std::fabs(ll - prev_ll) <= config.tolerance * std::max(1.0, std::fabs(prev_ll))) {
      break;
    }
    prev_ll = ll;
  }
  return model;
}

Result<DenseMatrix> GmmModel::PredictProba(const DenseMatrix& x) const {
  if (x.cols() != means.cols()) {
    return Status::InvalidArgument("GMM: dimensionality mismatch");
  }
  DenseMatrix resp(x.rows(), weights.size());
  EStep(x, *this, &resp);
  return resp;
}

Result<std::vector<int>> GmmModel::Predict(const DenseMatrix& x) const {
  DMML_ASSIGN_OR_RETURN(DenseMatrix resp, PredictProba(x));
  std::vector<int> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    size_t best = 0;
    for (size_t c = 1; c < resp.cols(); ++c) {
      if (resp.At(i, c) > resp.At(i, best)) best = c;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

Result<double> GmmModel::ScoreSamples(const DenseMatrix& x) const {
  if (x.cols() != means.cols()) {
    return Status::InvalidArgument("GMM: dimensionality mismatch");
  }
  DenseMatrix resp(x.rows(), weights.size());
  return EStep(x, *this, &resp);
}

}  // namespace dmml::ml
