#include "ml/scaler.h"

#include <cmath>

namespace dmml::ml {

using la::DenseMatrix;

Status StandardScaler::Fit(const DenseMatrix& x) {
  if (x.rows() == 0) return Status::InvalidArgument("cannot fit scaler on empty data");
  const size_t n = x.rows(), d = x.cols();
  means_ = DenseMatrix(1, d);
  stds_ = DenseMatrix(1, d);
  for (size_t j = 0; j < d; ++j) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) sum += x.At(i, j);
    means_.At(0, j) = sum / static_cast<double>(n);
  }
  for (size_t j = 0; j < d; ++j) {
    double acc = 0;
    for (size_t i = 0; i < n; ++i) {
      double dlt = x.At(i, j) - means_.At(0, j);
      acc += dlt * dlt;
    }
    double var = acc / static_cast<double>(n);
    stds_.At(0, j) = var > 0 ? std::sqrt(var) : 1.0;
  }
  fitted_ = true;
  return Status::OK();
}

Result<DenseMatrix> StandardScaler::Transform(const DenseMatrix& x) const {
  if (!fitted_) return Status::FailedPrecondition("scaler is not fitted");
  if (x.cols() != means_.cols()) {
    return Status::InvalidArgument("scaler width mismatch");
  }
  DenseMatrix out(x.rows(), x.cols());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      out.At(i, j) = (x.At(i, j) - means_.At(0, j)) / stds_.At(0, j);
    }
  }
  return out;
}

Result<DenseMatrix> StandardScaler::FitTransform(const DenseMatrix& x) {
  DMML_RETURN_IF_ERROR(Fit(x));
  return Transform(x);
}

Result<DenseMatrix> StandardScaler::InverseTransform(const DenseMatrix& x) const {
  if (!fitted_) return Status::FailedPrecondition("scaler is not fitted");
  if (x.cols() != means_.cols()) {
    return Status::InvalidArgument("scaler width mismatch");
  }
  DenseMatrix out(x.rows(), x.cols());
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      out.At(i, j) = x.At(i, j) * stds_.At(0, j) + means_.At(0, j);
    }
  }
  return out;
}

}  // namespace dmml::ml
