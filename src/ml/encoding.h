/// \file encoding.h
/// \brief Categorical feature encoding: one-hot (dictionary) and feature
/// hashing — the bridge from string table columns to trainable matrices.
#ifndef DMML_ML_ENCODING_H_
#define DMML_ML_ENCODING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "la/sparse_matrix.h"
#include "storage/table.h"
#include "util/result.h"

namespace dmml::ml {

/// \brief Dictionary-based one-hot encoder over string columns.
///
/// Fit learns per-column dictionaries (sorted for determinism); Transform
/// produces a CSR matrix with one indicator block per column. Values unseen
/// at fit time (and NULLs) encode as all-zero within their block.
class OneHotEncoder {
 public:
  /// \brief Learns dictionaries for the named string columns of `table`.
  Status Fit(const storage::Table& table, const std::vector<std::string>& columns);

  /// \brief Encodes the same columns of `table` (any table with matching
  /// column names/types) into an (n x TotalWidth) CSR indicator matrix.
  Result<la::SparseMatrix> Transform(const storage::Table& table) const;

  /// \brief Fit + Transform.
  Result<la::SparseMatrix> FitTransform(const storage::Table& table,
                                        const std::vector<std::string>& columns);

  /// \brief Sum of dictionary sizes = encoded width.
  size_t TotalWidth() const;

  /// \brief Output column name ("col=value") for each encoded position.
  std::vector<std::string> FeatureNames() const;

  bool fitted() const { return fitted_; }

 private:
  bool fitted_ = false;
  std::vector<std::string> columns_;
  std::vector<std::map<std::string, size_t>> dictionaries_;  ///< value -> slot.
  std::vector<size_t> offsets_;  ///< Block start per column.
};

/// \brief Stateless feature hashing ("hashing trick"): maps (column, value)
/// pairs into `num_buckets` dimensions with a sign hash, so no dictionary —
/// and no fit pass — is needed. Collisions are tolerated by the learner.
Result<la::SparseMatrix> HashEncode(const storage::Table& table,
                                    const std::vector<std::string>& columns,
                                    size_t num_buckets, uint64_t seed = 42);

/// \brief A combined numeric + one-hot feature matrix assembled as one CSR.
struct AssembledFeatures {
  la::SparseMatrix matrix;                 ///< n x feature_names.size().
  std::vector<std::string> feature_names;  ///< Numeric names, then "col=value".
  OneHotEncoder encoder;                   ///< Fitted over the categoricals.
};

/// \brief Assembles the named numeric columns (leading block, in the given
/// order) and one-hot indicator blocks for the categorical columns into a
/// single CSR matrix, without ever allocating the dense (n x d) intermediate
/// — wide categorical encodings stay sparse end-to-end, ready to bind to a
/// laopt leaf as-is. NULL numerics encode as 0 (Table::ToMatrix semantics);
/// NULL / unseen categoricals encode as an all-zero block (OneHotEncoder
/// semantics). `categorical_columns` may be empty (pure numeric CSR).
Result<AssembledFeatures> AssembleFeaturesCsr(
    const storage::Table& table,
    const std::vector<std::string>& numeric_columns,
    const std::vector<std::string>& categorical_columns);

}  // namespace dmml::ml

#endif  // DMML_ML_ENCODING_H_
