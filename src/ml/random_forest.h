/// \file random_forest.h
/// \brief Bagged ensembles of CART trees with per-tree feature subsampling.
///
/// The tutorial's "ensembling" answer to noisy data and variance reduction:
/// each tree trains on a bootstrap resample using a random subset of the
/// features; classification aggregates by majority vote, regression by mean.
#ifndef DMML_ML_RANDOM_FOREST_H_
#define DMML_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "ml/decision_tree.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace dmml::ml {

/// \brief Random-forest hyperparameters.
struct ForestConfig {
  size_t num_trees = 20;
  TreeConfig tree;                 ///< Per-tree CART settings.
  /// Features per tree; 0 = sqrt(d) for classifiers, d/3 for regressors.
  size_t max_features = 0;
  double bootstrap_fraction = 1.0; ///< Sample size as a fraction of n.
  uint64_t seed = 42;
};

/// \brief A fitted forest; trees see only their `feature_subsets` columns.
struct RandomForestModel {
  bool is_classifier = true;
  std::vector<DecisionTreeModel> trees;
  std::vector<std::vector<size_t>> feature_subsets;  ///< Global column ids.

  /// \brief Majority vote (classifier) or mean (regressor) per row.
  Result<la::DenseMatrix> Predict(const la::DenseMatrix& x) const;

  /// \brief Classifier only: fraction of trees voting 1.0 per row.
  Result<la::DenseMatrix> PredictProba(const la::DenseMatrix& x) const;
};

/// \brief Trains a classification forest (labels encoded as doubles).
Result<RandomForestModel> TrainForestClassifier(const la::DenseMatrix& x,
                                                const la::DenseMatrix& y,
                                                const ForestConfig& config = {},
                                                ThreadPool* pool = nullptr);

/// \brief Trains a regression forest.
Result<RandomForestModel> TrainForestRegressor(const la::DenseMatrix& x,
                                               const la::DenseMatrix& y,
                                               const ForestConfig& config = {},
                                               ThreadPool* pool = nullptr);

}  // namespace dmml::ml

#endif  // DMML_ML_RANDOM_FOREST_H_
