/// \file validation.h
/// \brief Train/test splitting and confusion-matrix utilities.
#ifndef DMML_ML_VALIDATION_H_
#define DMML_ML_VALIDATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "la/dense_matrix.h"
#include "util/result.h"

namespace dmml::ml {

/// \brief A shuffled train/test partition of (x, y).
struct TrainTestSplit {
  la::DenseMatrix x_train, y_train;
  la::DenseMatrix x_test, y_test;
};

/// \brief Splits (x, y) with `test_fraction` of the rows held out, after a
/// seeded shuffle. Requires at least one row on each side.
Result<TrainTestSplit> SplitTrainTest(const la::DenseMatrix& x,
                                      const la::DenseMatrix& y,
                                      double test_fraction, uint64_t seed);

/// \brief A k x k confusion matrix over integer class labels.
struct ConfusionMatrix {
  std::vector<int> classes;        ///< Sorted distinct labels.
  la::DenseMatrix counts;          ///< counts(true, predicted).

  /// \brief Overall accuracy.
  double Accuracy() const;

  /// \brief Recall of class `label` (diagonal over row sum).
  Result<double> Recall(int label) const;

  /// \brief Precision of class `label` (diagonal over column sum).
  Result<double> Precision(int label) const;

  /// \brief Fixed-width text rendering for reports.
  std::string ToString() const;
};

/// \brief Builds the confusion matrix of two equal-length label sequences.
Result<ConfusionMatrix> BuildConfusionMatrix(const std::vector<int>& y_true,
                                             const std::vector<int>& y_pred);

}  // namespace dmml::ml

#endif  // DMML_ML_VALIDATION_H_
