/// \file softmax.h
/// \brief Multinomial (softmax) logistic regression.
///
/// Multi-class GLM trained with full-batch gradient descent on the
/// cross-entropy loss; the multi-class companion to the Binomial family in
/// glm.h, and the classifier whose per-epoch cost is one X·W GEMM — the same
/// access pattern the batched model-selection trainer exploits.
#ifndef DMML_ML_SOFTMAX_H_
#define DMML_ML_SOFTMAX_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "util/result.h"

namespace dmml::ml {

/// \brief Softmax-regression hyperparameters.
struct SoftmaxConfig {
  double learning_rate = 0.5;
  double l2 = 0.0;
  size_t max_epochs = 200;
  double tolerance = 1e-7;
  bool fit_intercept = true;
  uint64_t seed = 42;
};

/// \brief A fitted softmax regression.
struct SoftmaxModel {
  std::vector<int> classes;    ///< Distinct labels, sorted.
  la::DenseMatrix weights;     ///< d x k (one column per class).
  la::DenseMatrix intercepts;  ///< 1 x k.
  std::vector<double> loss_history;
  size_t epochs_run = 0;

  /// \brief Class probabilities (n x k), rows summing to 1.
  Result<la::DenseMatrix> PredictProba(const la::DenseMatrix& x) const;

  /// \brief Most probable class label per row.
  Result<std::vector<int>> Predict(const la::DenseMatrix& x) const;
};

/// \brief Trains softmax regression on (n x d) features and integer labels
/// (any distinct values; >= 2 classes required).
Result<SoftmaxModel> TrainSoftmax(const la::DenseMatrix& x, const std::vector<int>& y,
                                  const SoftmaxConfig& config = {});

}  // namespace dmml::ml

#endif  // DMML_ML_SOFTMAX_H_
