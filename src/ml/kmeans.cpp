#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "la/kernels.h"
#include "ml/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace dmml::ml {

using la::DenseMatrix;

namespace {

// Index of the nearest center for row i, plus its squared distance.
std::pair<int, double> Nearest(const DenseMatrix& x, size_t i,
                               const DenseMatrix& centers) {
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centers.rows(); ++c) {
    double d = la::RowSquaredDistance(x, i, centers, c);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return {best, best_d};
}

// Assignment step via the expanded form ‖x−c‖² = ‖x‖² − 2·x·c + ‖c‖²: one
// blocked X·Cᵀ matmul per iteration instead of n·k row scans. `scores` and
// `cnorm` are caller-owned so repeated iterations reuse their allocations.
// Exact when a point coincides with its center: the three dot products are
// computed in identical order, so the expansion cancels to 0.0 exactly.
double AssignLabels(const DenseMatrix& x, const DenseMatrix& centers,
                    const std::vector<double>& xnorm, ThreadPool* pool,
                    DenseMatrix* scores, std::vector<double>* cnorm,
                    std::vector<int>* labels) {
  const size_t n = x.rows(), d = x.cols(), k = centers.rows();
  cnorm->resize(k);
  for (size_t c = 0; c < k; ++c) {
    (*cnorm)[c] = la::Dot(centers.Row(c), centers.Row(c), d);
  }
  la::MultiplyTransposeBInto(x, centers, scores, pool);
  double inertia = 0;
  for (size_t i = 0; i < n; ++i) {
    const double* srow = scores->Row(i);
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      const double dd = xnorm[i] - 2.0 * srow[c] + (*cnorm)[c];
      if (dd < best_d) {
        best_d = dd;
        best = static_cast<int>(c);
      }
    }
    (*labels)[i] = best;
    inertia += std::max(0.0, best_d);  // Expansion can round slightly below 0.
  }
  return inertia;
}

DenseMatrix InitCenters(const DenseMatrix& x, const KMeansConfig& config, Rng* rng) {
  const size_t n = x.rows(), d = x.cols(), k = config.k;
  DenseMatrix centers(k, d);
  if (!config.kmeanspp_init) {
    for (size_t c = 0; c < k; ++c) {
      size_t i = rng->UniformInt(static_cast<uint64_t>(n));
      std::copy(x.Row(i), x.Row(i) + d, centers.Row(c));
    }
    return centers;
  }
  // k-means++: first center uniform, then D^2-weighted sampling.
  size_t first = rng->UniformInt(static_cast<uint64_t>(n));
  std::copy(x.Row(first), x.Row(first) + d, centers.Row(0));
  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  for (size_t c = 1; c < k; ++c) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      double dd = la::RowSquaredDistance(x, i, centers, c - 1);
      dist2[i] = std::min(dist2[i], dd);
      total += dist2[i];
    }
    size_t chosen = 0;
    if (total > 0) {
      double r = rng->Uniform() * total;
      double acc = 0;
      for (size_t i = 0; i < n; ++i) {
        acc += dist2[i];
        if (r < acc) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng->UniformInt(static_cast<uint64_t>(n));
    }
    std::copy(x.Row(chosen), x.Row(chosen) + d, centers.Row(c));
  }
  return centers;
}

}  // namespace

Result<std::vector<int>> KMeansModel::Predict(const DenseMatrix& x) const {
  if (x.cols() != centers.cols()) {
    return Status::InvalidArgument("k-means model dimensionality mismatch");
  }
  std::vector<int> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) out[i] = Nearest(x, i, centers).first;
  return out;
}

Result<KMeansModel> TrainKMeans(const DenseMatrix& x, const KMeansConfig& config,
                                ThreadPool* pool) {
  const size_t n = x.rows(), d = x.cols(), k = config.k;
  if (n == 0 || d == 0) return Status::InvalidArgument("k-means: empty data");
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k-means: k must be in [1, n]");
  }
  DMML_TRACE_SPAN("ml.kmeans.train");
  Rng rng(config.seed);
  KMeansModel model;
  model.centers = InitCenters(x, config, &rng);
  model.labels.assign(n, 0);

  // Per-iteration scratch, hoisted so the loop allocates nothing.
  std::vector<double> xnorm(n);
  for (size_t i = 0; i < n; ++i) xnorm[i] = la::Dot(x.Row(i), x.Row(i), d);
  DenseMatrix scores;
  std::vector<double> cnorm;

  std::vector<size_t> counts(k);
  double prev_inertia = std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < config.max_iters; ++iter) {
    const uint64_t iter_start_us = obs::NowMicros();
    // Assignment step.
    double inertia =
        AssignLabels(x, model.centers, xnorm, pool, &scores, &cnorm, &model.labels);
    // Update step.
    model.centers.Fill(0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      size_t c = static_cast<size_t>(model.labels[i]);
      la::Axpy(1.0, x.Row(i), model.centers.Row(c), d);
      counts[c]++;
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty cluster at the point farthest from its center.
        size_t far_i = 0;
        double far_d = -1;
        for (size_t i = 0; i < n; ++i) {
          double dd = la::RowSquaredDistance(
              x, i, model.centers, static_cast<size_t>(model.labels[i]));
          if (dd > far_d) {
            far_d = dd;
            far_i = i;
          }
        }
        std::copy(x.Row(far_i), x.Row(far_i) + d, model.centers.Row(c));
        continue;
      }
      double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t j = 0; j < d; ++j) model.centers.At(c, j) *= inv;
    }

    model.inertia = inertia;
    model.inertia_history.push_back(inertia);
    model.iters_run = iter + 1;
    DMML_HISTOGRAM_OBSERVE("ml.kmeans.iter_us", obs::ExponentialBuckets(32, 4, 10),
                           static_cast<double>(obs::NowMicros() - iter_start_us));
    if (std::isfinite(prev_inertia) &&
        std::fabs(prev_inertia - inertia) <=
        config.tolerance * std::max(1.0, prev_inertia)) {
      break;
    }
    prev_inertia = inertia;
  }
  // Final assignment against the last centers.
  model.inertia =
      AssignLabels(x, model.centers, xnorm, pool, &scores, &cnorm, &model.labels);
  return model;
}

}  // namespace dmml::ml
