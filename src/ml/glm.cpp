#include "ml/glm.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "la/kernels.h"
#include "la/ops.h"
#include "ml/unified_trainers.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dmml::ml {

using la::DenseMatrix;

double GlmInverseLink(double score, GlmFamily family) {
  if (family == GlmFamily::kGaussian) return score;
  // Numerically-stable sigmoid.
  if (score >= 0) {
    double z = std::exp(-score);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(score);
  return z / (1.0 + z);
}

Result<DenseMatrix> GlmModel::DecisionFunction(const DenseMatrix& x) const {
  if (x.cols() != weights.rows()) {
    return Status::InvalidArgument("model expects " + std::to_string(weights.rows()) +
                                   " features, got " + std::to_string(x.cols()));
  }
  DenseMatrix scores = la::Gemv(x, weights);
  if (intercept != 0.0) {
    for (size_t i = 0; i < scores.rows(); ++i) scores.At(i, 0) += intercept;
  }
  return scores;
}

Result<DenseMatrix> GlmModel::Predict(const DenseMatrix& x) const {
  DMML_ASSIGN_OR_RETURN(DenseMatrix scores, DecisionFunction(x));
  if (family == GlmFamily::kGaussian) return scores;
  for (size_t i = 0; i < scores.rows(); ++i) {
    scores.At(i, 0) = GlmInverseLink(scores.At(i, 0), family);
  }
  return scores;
}

Result<DenseMatrix> GlmModel::PredictLabels(const DenseMatrix& x,
                                            double threshold) const {
  if (family != GlmFamily::kBinomial) {
    return Status::FailedPrecondition("PredictLabels requires the Binomial family");
  }
  DMML_ASSIGN_OR_RETURN(DenseMatrix probs, Predict(x));
  for (size_t i = 0; i < probs.rows(); ++i) {
    probs.At(i, 0) = probs.At(i, 0) >= threshold ? 1.0 : 0.0;
  }
  return probs;
}

Result<double> GlmLoss(const DenseMatrix& x, const DenseMatrix& y,
                       const DenseMatrix& w, double intercept, GlmFamily family,
                       double l2) {
  if (x.rows() != y.rows() || y.cols() != 1 || x.cols() != w.rows()) {
    return Status::InvalidArgument("GlmLoss: shape mismatch");
  }
  const size_t n = x.rows();
  if (n == 0) return Status::InvalidArgument("GlmLoss: empty data");
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    double score = la::Dot(x.Row(i), w.data(), x.cols()) + intercept;
    if (family == GlmFamily::kGaussian) {
      double r = score - y.At(i, 0);
      acc += 0.5 * r * r;
    } else {
      // log(1 + exp(-margin)) with the stable formulation.
      double yi = y.At(i, 0) > 0.5 ? 1.0 : -1.0;
      double m = yi * score;
      acc += m > 0 ? std::log1p(std::exp(-m)) : -m + std::log1p(std::exp(m));
    }
  }
  double loss = acc / static_cast<double>(n);
  if (l2 > 0) {
    double w2 = 0;
    for (size_t j = 0; j < w.rows(); ++j) w2 += w.At(j, 0) * w.At(j, 0);
    loss += 0.5 * l2 * w2;
  }
  return loss;
}

namespace {

// Residual of one example under the family: dLoss/dScore.
inline double ScoreGradient(double score, double y, GlmFamily family) {
  return GlmInverseLink(score, family) - y;
}

// Observes one epoch's wall time into ml.glm.epoch_us on scope exit, so
// convergence breaks still record the final (partial) epoch.
class EpochScope {
 public:
  EpochScope() : start_(obs::NowMicros()) {}
  ~EpochScope() {
    DMML_HISTOGRAM_OBSERVE("ml.glm.epoch_us", obs::ExponentialBuckets(32, 4, 10),
                           static_cast<double>(obs::NowMicros() - start_));
  }
  EpochScope(const EpochScope&) = delete;
  EpochScope& operator=(const EpochScope&) = delete;

 private:
  uint64_t start_;
};

// Full-batch gradient descent.
void RunBatchGd(const DenseMatrix& x, const DenseMatrix& y, const GlmConfig& config,
                GlmModel* model) {
  const size_t n = x.rows(), d = x.cols();
  DenseMatrix grad(d, 1);
  double prev_loss = std::numeric_limits<double>::infinity();
  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    EpochScope epoch_scope;
    grad.Fill(0.0);
    double bias_grad = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double score = la::Dot(x.Row(i), model->weights.data(), d) + model->intercept;
      double g = ScoreGradient(score, y.At(i, 0), config.family);
      la::Axpy(g, x.Row(i), grad.data(), d);
      bias_grad += g;
    }
    double inv_n = 1.0 / static_cast<double>(n);
    double lr = config.learning_rate / (1.0 + config.lr_decay * static_cast<double>(epoch));
    for (size_t j = 0; j < d; ++j) {
      double gj = grad.At(j, 0) * inv_n + config.l2 * model->weights.At(j, 0);
      model->weights.At(j, 0) -= lr * gj;
    }
    if (config.fit_intercept) model->intercept -= lr * bias_grad * inv_n;

    double loss = *GlmLoss(x, y, model->weights, model->intercept, config.family,
                           config.l2);
    model->loss_history.push_back(loss);
    model->epochs_run = epoch + 1;
    if (std::isfinite(prev_loss) &&
        std::fabs(prev_loss - loss) <= config.tolerance * std::max(1.0, prev_loss)) {
      break;
    }
    prev_loss = loss;
  }
}

// Serial SGD / mini-batch SGD (batch = 1 for plain SGD).
void RunSgd(const DenseMatrix& x, const DenseMatrix& y, const GlmConfig& config,
            size_t batch_size, GlmModel* model) {
  const size_t n = x.rows(), d = x.cols();
  Rng rng(config.seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  DenseMatrix grad(d, 1);
  double prev_loss = std::numeric_limits<double>::infinity();

  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    EpochScope epoch_scope;
    rng.Shuffle(&order);
    double lr = config.learning_rate / (1.0 + config.lr_decay * static_cast<double>(epoch));
    for (size_t start = 0; start < n; start += batch_size) {
      size_t end = std::min(start + batch_size, n);
      grad.Fill(0.0);
      double bias_grad = 0.0;
      for (size_t k = start; k < end; ++k) {
        size_t i = order[k];
        double score = la::Dot(x.Row(i), model->weights.data(), d) + model->intercept;
        double g = ScoreGradient(score, y.At(i, 0), config.family);
        la::Axpy(g, x.Row(i), grad.data(), d);
        bias_grad += g;
      }
      double inv_b = 1.0 / static_cast<double>(end - start);
      for (size_t j = 0; j < d; ++j) {
        double gj = grad.At(j, 0) * inv_b + config.l2 * model->weights.At(j, 0);
        model->weights.At(j, 0) -= lr * gj;
      }
      if (config.fit_intercept) model->intercept -= lr * bias_grad * inv_b;
    }
    double loss = *GlmLoss(x, y, model->weights, model->intercept, config.family,
                           config.l2);
    model->loss_history.push_back(loss);
    model->epochs_run = epoch + 1;
    if (std::isfinite(prev_loss) &&
        std::fabs(prev_loss - loss) <= config.tolerance * std::max(1.0, prev_loss)) {
      break;
    }
    prev_loss = loss;
  }
}

// Mini-batch SGD with per-coordinate adaptive step sizes (Adagrad or Adam).
void RunAdaptive(const DenseMatrix& x, const DenseMatrix& y, const GlmConfig& config,
                 bool adam, GlmModel* model) {
  const size_t n = x.rows(), d = x.cols();
  const size_t batch_size = std::max<size_t>(1, config.batch_size);
  Rng rng(config.seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  DenseMatrix grad(d, 1);

  // Accumulators: Adagrad uses g2 only; Adam uses m (first) and g2 (second).
  std::vector<double> m(d + 1, 0.0);
  std::vector<double> g2(d + 1, 0.0);
  size_t step = 0;
  double prev_loss = std::numeric_limits<double>::infinity();

  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    EpochScope epoch_scope;
    rng.Shuffle(&order);
    for (size_t start = 0; start < n; start += batch_size) {
      size_t end = std::min(start + batch_size, n);
      grad.Fill(0.0);
      double bias_grad = 0.0;
      for (size_t k = start; k < end; ++k) {
        size_t i = order[k];
        double score = la::Dot(x.Row(i), model->weights.data(), d) + model->intercept;
        double g = ScoreGradient(score, y.At(i, 0), config.family);
        la::Axpy(g, x.Row(i), grad.data(), d);
        bias_grad += g;
      }
      double inv_b = 1.0 / static_cast<double>(end - start);
      ++step;
      auto update = [&](size_t j, double gj, double* param) {
        if (adam) {
          m[j] = config.adam_beta1 * m[j] + (1 - config.adam_beta1) * gj;
          g2[j] = config.adam_beta2 * g2[j] + (1 - config.adam_beta2) * gj * gj;
          double m_hat =
              m[j] / (1 - std::pow(config.adam_beta1, static_cast<double>(step)));
          double v_hat =
              g2[j] / (1 - std::pow(config.adam_beta2, static_cast<double>(step)));
          *param -= config.learning_rate * m_hat /
                    (std::sqrt(v_hat) + config.adaptive_eps);
        } else {
          g2[j] += gj * gj;
          *param -=
              config.learning_rate * gj / (std::sqrt(g2[j]) + config.adaptive_eps);
        }
      };
      for (size_t j = 0; j < d; ++j) {
        double gj = grad.At(j, 0) * inv_b + config.l2 * model->weights.At(j, 0);
        update(j, gj, &model->weights.At(j, 0));
      }
      if (config.fit_intercept) update(d, bias_grad * inv_b, &model->intercept);
    }
    double loss = *GlmLoss(x, y, model->weights, model->intercept, config.family,
                           config.l2);
    model->loss_history.push_back(loss);
    model->epochs_run = epoch + 1;
    if (std::isfinite(prev_loss) &&
        std::fabs(prev_loss - loss) <= config.tolerance * std::max(1.0, prev_loss)) {
      break;
    }
    prev_loss = loss;
  }
}

// Hogwild-style lock-free parallel SGD: each worker samples examples and
// applies unsynchronized updates to the shared weight vector. Races are
// benign for sparse-conflict workloads (Niu et al., NIPS'11).
void RunHogwild(const DenseMatrix& x, const DenseMatrix& y, const GlmConfig& config,
                ThreadPool* pool, GlmModel* model) {
  const size_t n = x.rows(), d = x.cols();
  size_t num_threads = std::max<size_t>(1, config.num_threads);
  std::unique_ptr<ThreadPool> local_pool;
  if (pool == nullptr && num_threads > 1) {
    local_pool = std::make_unique<ThreadPool>(num_threads);
    pool = local_pool.get();
  }

  // Shared parameters; updates are intentionally unsynchronized.
  std::vector<double> w(d, 0.0);
  std::atomic<double> intercept{0.0};

  double prev_loss = std::numeric_limits<double>::infinity();
  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    EpochScope epoch_scope;
    double lr = config.learning_rate / (1.0 + config.lr_decay * static_cast<double>(epoch));
    auto worker = [&](size_t tid, size_t begin, size_t end) {
      Rng rng(config.seed + epoch * 1315423911ULL + tid);
      size_t steps = end - begin;
      for (size_t s = 0; s < steps; ++s) {
        size_t i = rng.UniformInt(static_cast<uint64_t>(n));
        double b = intercept.load(std::memory_order_relaxed);
        const double* xi = x.Row(i);
        // All shared-weight accesses go through relaxed atomic_ref: no
        // ordering, no locks (plain loads/stores on x86), but no torn
        // values and no formal data race — the Hogwild contract.
        double score = b;
        for (size_t j = 0; j < d; ++j) {
          score +=
              xi[j] * std::atomic_ref<double>(w[j]).load(std::memory_order_relaxed);
        }
        double g = ScoreGradient(score, y.At(i, 0), config.family);
        for (size_t j = 0; j < d; ++j) {
          std::atomic_ref<double> wj(w[j]);
          double cur = wj.load(std::memory_order_relaxed);
          wj.store(cur - lr * (g * xi[j] + config.l2 * cur),
                   std::memory_order_relaxed);
        }
        if (config.fit_intercept) {
          intercept.store(b - lr * g, std::memory_order_relaxed);
        }
      }
    };

    if (pool == nullptr || num_threads <= 1) {
      worker(0, 0, n);
    } else {
      std::vector<std::future<void>> futures;
      size_t chunk = (n + num_threads - 1) / num_threads;
      for (size_t t = 0; t < num_threads; ++t) {
        size_t begin = t * chunk, end = std::min(begin + chunk, n);
        if (begin >= end) break;
        futures.push_back(pool->Submit([&, t, begin, end] { worker(t, begin, end); }));
      }
      for (auto& f : futures) f.get();
    }

    for (size_t j = 0; j < d; ++j) model->weights.At(j, 0) = w[j];
    model->intercept = intercept.load();
    double loss = *GlmLoss(x, y, model->weights, model->intercept, config.family,
                           config.l2);
    model->loss_history.push_back(loss);
    model->epochs_run = epoch + 1;
    if (std::isfinite(prev_loss) &&
        std::fabs(prev_loss - loss) <= config.tolerance * std::max(1.0, prev_loss)) {
      break;
    }
    prev_loss = loss;
  }
}

// Closed-form ridge solution (X^T X + n*lambda*I) w = X^T y, with optional
// intercept handled by augmenting a ones column. Delegates to the
// representation-polymorphic normal-equations path (ml/unified_trainers.h):
// a dense binding routes t(X)%*%X to the SYRK kernel, t(X)%*%y to the fused
// transpose-multiply and colSums to the column reduction -- the exact
// kernels (and bit pattern) this function used to call directly.
Status RunNormalEquations(const DenseMatrix& x, const DenseMatrix& y,
                          const GlmConfig& config, ThreadPool* pool,
                          GlmModel* model) {
  return RunNormalEquationsOnOperand(
      laopt::Operand(
          std::shared_ptr<const DenseMatrix>(std::shared_ptr<void>(), &x)),
      y, config, pool, model);
}

}  // namespace

Result<GlmModel> TrainGlm(const DenseMatrix& x, const DenseMatrix& y,
                          const GlmConfig& config, ThreadPool* pool) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("TrainGlm: empty design matrix");
  }
  if (y.rows() != x.rows() || y.cols() != 1) {
    return Status::InvalidArgument("TrainGlm: y must be n x 1 matching x");
  }
  if (config.family == GlmFamily::kBinomial) {
    for (size_t i = 0; i < y.rows(); ++i) {
      double v = y.At(i, 0);
      if (v != 0.0 && v != 1.0) {
        return Status::InvalidArgument("Binomial family requires 0/1 labels");
      }
    }
  }
  if (config.solver == GlmSolver::kNormalEquations &&
      config.family != GlmFamily::kGaussian) {
    return Status::InvalidArgument("normal equations require the Gaussian family");
  }
  if (config.learning_rate <= 0 && config.solver != GlmSolver::kNormalEquations) {
    return Status::InvalidArgument("learning_rate must be positive");
  }

  GlmModel model;
  model.family = config.family;
  model.weights = DenseMatrix(x.cols(), 1);

  DMML_TRACE_SPAN("ml.glm.train");
  switch (config.solver) {
    case GlmSolver::kBatchGd:
      RunBatchGd(x, y, config, &model);
      break;
    case GlmSolver::kSgd:
      RunSgd(x, y, config, 1, &model);
      break;
    case GlmSolver::kMiniBatchSgd:
      RunSgd(x, y, config, std::max<size_t>(1, config.batch_size), &model);
      break;
    case GlmSolver::kHogwild:
      RunHogwild(x, y, config, pool, &model);
      break;
    case GlmSolver::kNormalEquations:
      DMML_RETURN_IF_ERROR(RunNormalEquations(x, y, config, pool, &model));
      break;
    case GlmSolver::kAdagrad:
      RunAdaptive(x, y, config, /*adam=*/false, &model);
      break;
    case GlmSolver::kAdam:
      RunAdaptive(x, y, config, /*adam=*/true, &model);
      break;
  }
  return model;
}

}  // namespace dmml::ml
