#include "ml/softmax.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "la/kernels.h"

namespace dmml::ml {

using la::DenseMatrix;

namespace {

// In-place row-wise softmax of an (n x k) score matrix.
void RowSoftmax(DenseMatrix* scores) {
  const size_t k = scores->cols();
  for (size_t i = 0; i < scores->rows(); ++i) {
    double* row = scores->Row(i);
    double mx = row[0];
    for (size_t c = 1; c < k; ++c) mx = std::max(mx, row[c]);
    double total = 0;
    for (size_t c = 0; c < k; ++c) {
      row[c] = std::exp(row[c] - mx);
      total += row[c];
    }
    for (size_t c = 0; c < k; ++c) row[c] /= total;
  }
}

}  // namespace

Result<SoftmaxModel> TrainSoftmax(const DenseMatrix& x, const std::vector<int>& y,
                                  const SoftmaxConfig& config) {
  const size_t n = x.rows(), d = x.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("softmax: empty data");
  if (y.size() != n) return Status::InvalidArgument("softmax: |y| != n");
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("softmax: learning_rate must be positive");
  }

  std::map<int, size_t> class_index;
  for (int label : y) class_index.emplace(label, 0);
  size_t next = 0;
  for (auto& [_, idx] : class_index) idx = next++;
  const size_t k = class_index.size();
  if (k < 2) return Status::InvalidArgument("softmax needs >= 2 classes");

  SoftmaxModel model;
  model.classes.resize(k);
  for (const auto& [label, idx] : class_index) model.classes[idx] = label;
  model.weights = DenseMatrix(d, k);
  model.intercepts = DenseMatrix(1, k);

  std::vector<size_t> yc(n);
  for (size_t i = 0; i < n; ++i) yc[i] = class_index[y[i]];

  const double inv_n = 1.0 / static_cast<double>(n);
  double prev_loss = std::numeric_limits<double>::infinity();
  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    // Probabilities via one GEMM, then the gradient via one transposed GEMM.
    DenseMatrix probs = la::Multiply(x, model.weights);  // n x k.
    for (size_t i = 0; i < n; ++i) {
      la::Axpy(1.0, model.intercepts.data(), probs.Row(i), k);
    }
    RowSoftmax(&probs);

    double loss = 0;
    for (size_t i = 0; i < n; ++i) {
      loss += -std::log(std::max(probs.At(i, yc[i]), 1e-300));
      probs.At(i, yc[i]) -= 1.0;  // probs becomes the residual matrix.
    }
    loss *= inv_n;
    if (config.l2 > 0) {
      double w2 = 0;
      for (size_t e = 0; e < model.weights.size(); ++e) {
        w2 += model.weights.data()[e] * model.weights.data()[e];
      }
      loss += 0.5 * config.l2 * w2;
    }

    // grad = Xᵀ residual (d x k), accumulated without forming Xᵀ.
    DenseMatrix grad(d, k);
    DenseMatrix bias_grad(1, k);
    for (size_t i = 0; i < n; ++i) {
      const double* xi = x.Row(i);
      const double* ri = probs.Row(i);
      for (size_t j = 0; j < d; ++j) la::Axpy(xi[j], ri, grad.Row(j), k);
      la::Axpy(1.0, ri, bias_grad.data(), k);
    }
    for (size_t j = 0; j < d; ++j) {
      for (size_t c = 0; c < k; ++c) {
        model.weights.At(j, c) -=
            config.learning_rate *
            (grad.At(j, c) * inv_n + config.l2 * model.weights.At(j, c));
      }
    }
    if (config.fit_intercept) {
      for (size_t c = 0; c < k; ++c) {
        model.intercepts.At(0, c) -=
            config.learning_rate * bias_grad.At(0, c) * inv_n;
      }
    }

    model.loss_history.push_back(loss);
    model.epochs_run = epoch + 1;
    if (std::isfinite(prev_loss) &&
        std::fabs(prev_loss - loss) <= config.tolerance * std::max(1.0, prev_loss)) {
      break;
    }
    prev_loss = loss;
  }
  return model;
}

Result<DenseMatrix> SoftmaxModel::PredictProba(const DenseMatrix& x) const {
  if (x.cols() != weights.rows()) {
    return Status::InvalidArgument("softmax: dimensionality mismatch");
  }
  DenseMatrix probs = la::Multiply(x, weights);
  for (size_t i = 0; i < probs.rows(); ++i) {
    la::Axpy(1.0, intercepts.data(), probs.Row(i), probs.cols());
  }
  RowSoftmax(&probs);
  return probs;
}

Result<std::vector<int>> SoftmaxModel::Predict(const DenseMatrix& x) const {
  DMML_ASSIGN_OR_RETURN(DenseMatrix probs, PredictProba(x));
  std::vector<int> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    size_t best = 0;
    for (size_t c = 1; c < probs.cols(); ++c) {
      if (probs.At(i, c) > probs.At(i, best)) best = c;
    }
    out[i] = classes[best];
  }
  return out;
}

}  // namespace dmml::ml
