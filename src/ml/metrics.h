/// \file metrics.h
/// \brief Evaluation metrics for regression, classification and clustering.
#ifndef DMML_ML_METRICS_H_
#define DMML_ML_METRICS_H_

#include <vector>

#include "la/dense_matrix.h"
#include "util/result.h"

namespace dmml::ml {

/// \brief Root mean squared error between (n x 1) vectors.
Result<double> Rmse(const la::DenseMatrix& y_true, const la::DenseMatrix& y_pred);

/// \brief Mean absolute error.
Result<double> Mae(const la::DenseMatrix& y_true, const la::DenseMatrix& y_pred);

/// \brief Coefficient of determination R^2.
Result<double> R2(const la::DenseMatrix& y_true, const la::DenseMatrix& y_pred);

/// \brief Fraction of exact matches between 0/1 label vectors.
Result<double> Accuracy(const la::DenseMatrix& y_true, const la::DenseMatrix& y_pred);

/// \brief Binary log loss given predicted probabilities (clipped to [eps,1-eps]).
Result<double> LogLoss(const la::DenseMatrix& y_true, const la::DenseMatrix& y_prob,
                       double eps = 1e-12);

/// \brief Precision / recall / F1 for the positive (1.0) class.
struct PrecisionRecallF1 {
  double precision;
  double recall;
  double f1;
};
Result<PrecisionRecallF1> BinaryPrf(const la::DenseMatrix& y_true,
                                    const la::DenseMatrix& y_pred);

/// \brief Area under the ROC curve from predicted scores (rank-based,
/// tie-aware Mann–Whitney formulation).
Result<double> RocAuc(const la::DenseMatrix& y_true, const la::DenseMatrix& y_score);

/// \brief Sum of squared distances of points to their assigned centroids.
double KMeansInertia(const la::DenseMatrix& x, const la::DenseMatrix& centers,
                     const std::vector<int>& assignment);

}  // namespace dmml::ml

#endif  // DMML_ML_METRICS_H_
