#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace dmml::ml {

using la::DenseMatrix;

Result<NaiveBayesModel> TrainNaiveBayes(const DenseMatrix& x, const std::vector<int>& y,
                                        const NaiveBayesConfig& config) {
  const size_t n = x.rows(), d = x.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("naive Bayes: empty data");
  if (y.size() != n) return Status::InvalidArgument("naive Bayes: |y| != n");

  std::map<int, size_t> class_index;
  for (int label : y) class_index.emplace(label, class_index.size());
  // Re-number in sorted order for determinism.
  size_t idx = 0;
  for (auto& [label, i] : class_index) i = idx++;
  const size_t k = class_index.size();
  if (k < 2) return Status::InvalidArgument("naive Bayes needs >= 2 classes");

  NaiveBayesModel model;
  model.classes.resize(k);
  for (const auto& [label, i] : class_index) model.classes[i] = label;
  model.means = DenseMatrix(k, d);
  model.variances = DenseMatrix(k, d);
  model.log_priors.assign(k, 0.0);

  std::vector<size_t> counts(k, 0);
  for (size_t i = 0; i < n; ++i) {
    size_t c = class_index[y[i]];
    counts[c]++;
    la::DenseMatrix* unused = nullptr;
    (void)unused;
    for (size_t j = 0; j < d; ++j) model.means.At(c, j) += x.At(i, j);
  }
  for (size_t c = 0; c < k; ++c) {
    double inv = 1.0 / static_cast<double>(counts[c]);
    for (size_t j = 0; j < d; ++j) model.means.At(c, j) *= inv;
    model.log_priors[c] =
        std::log(static_cast<double>(counts[c]) / static_cast<double>(n));
  }
  for (size_t i = 0; i < n; ++i) {
    size_t c = class_index[y[i]];
    for (size_t j = 0; j < d; ++j) {
      double delta = x.At(i, j) - model.means.At(c, j);
      model.variances.At(c, j) += delta * delta;
    }
  }
  for (size_t c = 0; c < k; ++c) {
    double inv = 1.0 / static_cast<double>(counts[c]);
    for (size_t j = 0; j < d; ++j) {
      model.variances.At(c, j) =
          model.variances.At(c, j) * inv + config.var_smoothing;
    }
  }
  return model;
}

Result<DenseMatrix> NaiveBayesModel::JointLogLikelihood(const DenseMatrix& x) const {
  const size_t k = classes.size(), d = means.cols();
  if (x.cols() != d) {
    return Status::InvalidArgument("naive Bayes dimensionality mismatch");
  }
  DenseMatrix jll(x.rows(), k);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t c = 0; c < k; ++c) {
      double acc = log_priors[c];
      for (size_t j = 0; j < d; ++j) {
        double var = variances.At(c, j);
        double delta = x.At(i, j) - means.At(c, j);
        acc += -0.5 * (std::log(2.0 * M_PI * var) + delta * delta / var);
      }
      jll.At(i, c) = acc;
    }
  }
  return jll;
}

Result<std::vector<int>> NaiveBayesModel::Predict(const DenseMatrix& x) const {
  DMML_ASSIGN_OR_RETURN(DenseMatrix jll, JointLogLikelihood(x));
  std::vector<int> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    size_t best = 0;
    for (size_t c = 1; c < classes.size(); ++c) {
      if (jll.At(i, c) > jll.At(i, best)) best = c;
    }
    out[i] = classes[best];
  }
  return out;
}

Result<DenseMatrix> NaiveBayesModel::PredictProba(const DenseMatrix& x) const {
  DMML_ASSIGN_OR_RETURN(DenseMatrix jll, JointLogLikelihood(x));
  const size_t k = classes.size();
  for (size_t i = 0; i < x.rows(); ++i) {
    double mx = jll.At(i, 0);
    for (size_t c = 1; c < k; ++c) mx = std::max(mx, jll.At(i, c));
    double total = 0;
    for (size_t c = 0; c < k; ++c) {
      jll.At(i, c) = std::exp(jll.At(i, c) - mx);
      total += jll.At(i, c);
    }
    for (size_t c = 0; c < k; ++c) jll.At(i, c) /= total;
  }
  return jll;
}

}  // namespace dmml::ml
