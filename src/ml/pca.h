/// \file pca.h
/// \brief Principal component analysis via power iteration with deflation.
#ifndef DMML_ML_PCA_H_
#define DMML_ML_PCA_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "util/result.h"

namespace dmml::ml {

/// \brief PCA hyperparameters.
struct PcaConfig {
  size_t num_components = 2;
  size_t max_iters = 300;       ///< Power iterations per component.
  double tolerance = 1e-9;      ///< Eigenvector-change stop criterion.
  uint64_t seed = 42;           ///< Power-iteration start vector.
};

/// \brief A fitted PCA model.
struct PcaModel {
  la::DenseMatrix components;        ///< num_components x d (rows are PCs).
  la::DenseMatrix mean;              ///< 1 x d column means.
  std::vector<double> explained_variance;        ///< Eigenvalues, descending.
  std::vector<double> explained_variance_ratio;  ///< Fractions of total var.

  /// \brief Projects (n x d) data into (n x num_components).
  Result<la::DenseMatrix> Transform(const la::DenseMatrix& x) const;

  /// \brief Back-projects (n x num_components) into the original space.
  Result<la::DenseMatrix> InverseTransform(const la::DenseMatrix& z) const;
};

/// \brief Fits PCA on (n x d) data: centers, forms the covariance, extracts
/// the top components by power iteration with Hotelling deflation.
///
/// Suitable for the moderate d (< a few thousand) this library targets;
/// requires num_components <= d and n >= 2.
Result<PcaModel> TrainPca(const la::DenseMatrix& x, const PcaConfig& config);

}  // namespace dmml::ml

#endif  // DMML_ML_PCA_H_
