#include "ml/unified_trainers.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "la/kernels.h"
#include "la/ops.h"
#include "laopt/executor.h"
#include "laopt/expr.h"
#include "laopt/profile.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dmml::ml {

using la::DenseMatrix;
using laopt::BufferedExecutor;
using laopt::ExprNode;
using laopt::ExprPtr;
using laopt::Operand;

namespace {

// Non-owning Operand over a caller-held matrix (the trainer outlives every
// executor run that reads it).
Operand Borrow(const DenseMatrix& m) {
  return Operand(
      std::shared_ptr<const DenseMatrix>(std::shared_ptr<void>(), &m));
}

bool ExplainAnalyzeEnvEnabled() {
  const char* v = std::getenv("DMML_EXPLAIN_ANALYZE");  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return false;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "false") != 0 &&
         std::strcmp(v, "FALSE") != 0 && std::strcmp(v, "off") != 0;
}

// Resolves the profile a trainer invocation records into: the caller's, or —
// when DMML_EXPLAIN_ANALYZE asks for a report and the caller passed none — a
// trainer-local PlanProfile whose calibration report is logged on scope
// exit. Whichever is active gets published on the obs `/profiles` endpoint
// under the trainer's span name for the duration of training.
class ScopedTrainerProfile {
 public:
  ScopedTrainerProfile(laopt::PlanProfile* caller_profile, const char* name)
      : caller_profile_(caller_profile), name_(name) {
    if (caller_profile_ == nullptr && ExplainAnalyzeEnvEnabled()) {
      local_ = std::make_shared<laopt::PlanProfile>();
    }
    if (local_ != nullptr) {
      // The provider takes shared ownership, so a /profiles scrape racing
      // this scope's teardown can never see a destroyed profile.
      registration_ = laopt::RegisterProfile(name_, local_);
    } else if (caller_profile_ != nullptr) {
      // The caller owns this profile, so shared ownership is unavailable;
      // the non-owning alias is still safe because unregistration (the
      // registration_ member destructs before anything else here, and
      // before the trainer returns) blocks until in-flight scrapes of this
      // provider return — see ProfileRegistry::Unregister.
      registration_ = laopt::RegisterProfile(
          name_, std::shared_ptr<const laopt::PlanProfile>(
                     std::shared_ptr<void>(), caller_profile_));
    }
  }

  ~ScopedTrainerProfile() {
    if (local_) {
      DMML_LOG(Info) << "DMML_EXPLAIN_ANALYZE " << name_ << "\n"
                     << local_->ExplainAnalyzeText();
    }
  }

  ScopedTrainerProfile(const ScopedTrainerProfile&) = delete;
  ScopedTrainerProfile& operator=(const ScopedTrainerProfile&) = delete;

  laopt::PlanProfile* active() const {
    return local_ ? local_.get() : caller_profile_;
  }

 private:
  laopt::PlanProfile* caller_profile_;
  const char* name_;
  std::shared_ptr<laopt::PlanProfile> local_;
  // Declared last: destructs first, draining in-flight scrapes before the
  // profile they read (local_ or the caller's) can go away.
  obs::ScopedProfileRegistration registration_;
};

}  // namespace

Operand BorrowOperand(const DenseMatrix& m) { return Borrow(m); }

Result<GlmModel> TrainGlmOnOperand(const Operand& x, const DenseMatrix& y,
                                   const GlmConfig& config, ThreadPool* pool,
                                   laopt::PlanProfile* profile) {
  if (!x.bound()) return Status::InvalidArgument("GLM: unbound design operand");
  const size_t n = x.rows(), d = x.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("GLM: empty data");
  if (y.rows() != n || y.cols() != 1) {
    return Status::InvalidArgument("GLM: y must be n x 1");
  }
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (config.family == GlmFamily::kBinomial) {
    for (size_t i = 0; i < n; ++i) {
      double v = y.At(i, 0);
      if (v != 0.0 && v != 1.0) {
        return Status::InvalidArgument("Binomial family requires 0/1 labels");
      }
    }
  }
  DMML_TRACE_SPAN("ml.glm.train_operand");

  // The whole epoch's linear algebra is two executor programs over shared
  // leaves: scores = X %*% w and grad = t(X) %*% r. Representation dispatch
  // picks the kernels; w and r are payloads this loop mutates in place.
  auto w = std::make_shared<DenseMatrix>(d, 1);
  auto r = std::make_shared<DenseMatrix>(n, 1);
  DMML_ASSIGN_OR_RETURN(ExprPtr xleaf, ExprNode::InputOperand(x, "X"));
  DMML_ASSIGN_OR_RETURN(ExprPtr wleaf, ExprNode::InputOperand(Operand(w), "w"));
  DMML_ASSIGN_OR_RETURN(ExprPtr rleaf, ExprNode::InputOperand(Operand(r), "r"));
  DMML_ASSIGN_OR_RETURN(ExprPtr xt, ExprNode::Transpose(xleaf));
  DMML_ASSIGN_OR_RETURN(ExprPtr scores_expr, ExprNode::MatMul(xleaf, wleaf));
  DMML_ASSIGN_OR_RETURN(ExprPtr grad_expr, ExprNode::MatMul(xt, rleaf));
  ScopedTrainerProfile prof(profile, "ml.glm.train_operand");
  BufferedExecutor executor(pool);
  executor.set_profile(prof.active());

  GlmModel model;
  model.family = config.family;
  const double inv_n = 1.0 / static_cast<double>(n);
  double prev_loss = std::numeric_limits<double>::infinity();

  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* scores,
                          executor.Run(scores_expr));
    double loss = 0;
    double bias_grad = 0;
    for (size_t i = 0; i < n; ++i) {
      double s = scores->At(i, 0) + model.intercept;
      double yi = y.At(i, 0);
      if (config.family == GlmFamily::kGaussian) {
        double resid = s - yi;
        loss += 0.5 * resid * resid;
        r->At(i, 0) = resid;
      } else {
        double sign_y = yi > 0.5 ? 1.0 : -1.0;
        double m = sign_y * s;
        loss += m > 0 ? std::log1p(std::exp(-m)) : -m + std::log1p(std::exp(m));
        r->At(i, 0) = GlmInverseLink(s, config.family) - yi;
      }
      bias_grad += r->At(i, 0);
    }
    loss *= inv_n;
    if (config.l2 > 0) {
      double w2 = 0;
      for (size_t j = 0; j < d; ++j) w2 += w->At(j, 0) * w->At(j, 0);
      loss += 0.5 * config.l2 * w2;
    }

    DMML_ASSIGN_OR_RETURN(const DenseMatrix* grad, executor.Run(grad_expr));
    double lr = config.learning_rate /
                (1.0 + config.lr_decay * static_cast<double>(epoch));
    for (size_t j = 0; j < d; ++j) {
      // grad is d x 1 in every dispatch (the 1 x d gevm outputs are
      // reinterpreted by the executor); same contiguous values either way.
      w->At(j, 0) -= lr * (grad->At(j, 0) * inv_n + config.l2 * w->At(j, 0));
    }
    if (config.fit_intercept) model.intercept -= lr * bias_grad * inv_n;

    model.loss_history.push_back(loss);
    model.epochs_run = epoch + 1;
    if (std::isfinite(prev_loss) &&
        std::fabs(prev_loss - loss) <=
            config.tolerance * std::max(1.0, prev_loss)) {
      break;
    }
    prev_loss = loss;
  }
  model.weights = *w;
  return model;
}

Status RunNormalEquationsOnOperand(const Operand& x, const DenseMatrix& y,
                                   const GlmConfig& config, ThreadPool* pool,
                                   GlmModel* model, laopt::PlanProfile* profile) {
  if (!x.bound()) return Status::InvalidArgument("GLM: unbound design operand");
  const size_t n = x.rows(), d = x.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("GLM: empty data");
  if (y.rows() != n || y.cols() != 1) {
    return Status::InvalidArgument("GLM: y must be n x 1");
  }
  if (config.family != GlmFamily::kGaussian) {
    return Status::InvalidArgument("normal equations require the Gaussian family");
  }
  const size_t da = config.fit_intercept ? d + 1 : d;

  // One program per product of the augmented system. On a dense binding
  // t(X)%*%X routes to the SYRK kernel, t(X)%*%y to the fused transpose-
  // multiply and colSums to the column reduction — the exact kernels (and
  // bit pattern) of the historical dense-only path. Sparse and compressed
  // bindings swap in their native operators per laopt/executor.h.
  DMML_ASSIGN_OR_RETURN(ExprPtr xleaf, ExprNode::InputOperand(x, "X"));
  DMML_ASSIGN_OR_RETURN(ExprPtr yleaf, ExprNode::InputOperand(Borrow(y), "y"));
  DMML_ASSIGN_OR_RETURN(ExprPtr xt, ExprNode::Transpose(xleaf));
  DMML_ASSIGN_OR_RETURN(ExprPtr gram_expr, ExprNode::MatMul(xt, xleaf));
  DMML_ASSIGN_OR_RETURN(ExprPtr xty_expr, ExprNode::MatMul(xt, yleaf));
  ScopedTrainerProfile prof(profile, "ml.glm.normal_equations");
  BufferedExecutor executor(pool);
  executor.set_profile(prof.active());

  DenseMatrix xtx(da, da);
  DenseMatrix xty(da, 1);
  {
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* gram, executor.Run(gram_expr));
    for (size_t a = 0; a < d; ++a) {
      std::copy(gram->Row(a), gram->Row(a) + d, xtx.Row(a));
    }
  }
  {
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* xty_data, executor.Run(xty_expr));
    for (size_t a = 0; a < d; ++a) xty.At(a, 0) = xty_data->At(a, 0);
  }
  if (config.fit_intercept) {
    DMML_ASSIGN_OR_RETURN(ExprPtr colsums_expr, ExprNode::ColSums(xleaf));
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* colsums,
                          executor.Run(colsums_expr));
    for (size_t j = 0; j < d; ++j) {
      xtx.At(j, d) = colsums->At(0, j);
      xtx.At(d, j) = colsums->At(0, j);
    }
    xtx.At(d, d) = static_cast<double>(n);
    xty.At(d, 0) = la::Sum(y, pool);
  }
  // L2 penalty (matching the per-example-mean loss convention: λ * n).
  if (config.l2 > 0) {
    for (size_t j = 0; j < d; ++j) {
      xtx.At(j, j) += config.l2 * static_cast<double>(n);
    }
  }
  DMML_ASSIGN_OR_RETURN(DenseMatrix sol, la::Solve(xtx, xty));
  model->family = config.family;
  model->weights = DenseMatrix(d, 1);
  for (size_t j = 0; j < d; ++j) model->weights.At(j, 0) = sol.At(j, 0);
  model->intercept = config.fit_intercept ? sol.At(d, 0) : 0.0;
  model->epochs_run = 1;

  double loss = 0;
  if (x.repr() == laopt::Repr::kDense) {
    DMML_ASSIGN_OR_RETURN(loss,
                          GlmLoss(*x.dense(), y, model->weights,
                                  model->intercept, config.family, config.l2));
  } else {
    // Non-dense X: score through the executor instead of row dot products.
    DMML_ASSIGN_OR_RETURN(ExprPtr wleaf,
                          ExprNode::InputOperand(Borrow(model->weights), "w"));
    DMML_ASSIGN_OR_RETURN(ExprPtr scores_expr, ExprNode::MatMul(xleaf, wleaf));
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* scores,
                          executor.Run(scores_expr));
    for (size_t i = 0; i < n; ++i) {
      double resid = scores->At(i, 0) + model->intercept - y.At(i, 0);
      loss += 0.5 * resid * resid;
    }
    loss /= static_cast<double>(n);
    if (config.l2 > 0) {
      double w2 = 0;
      for (size_t j = 0; j < d; ++j) {
        w2 += model->weights.At(j, 0) * model->weights.At(j, 0);
      }
      loss += 0.5 * config.l2 * w2;
    }
  }
  model->loss_history.push_back(loss);
  return Status::OK();
}

Result<KMeansModel> TrainKMeansOnOperand(const Operand& x,
                                         const KMeansConfig& config,
                                         ThreadPool* pool,
                                         laopt::PlanProfile* profile) {
  if (!x.bound()) {
    return Status::InvalidArgument("k-means: unbound design operand");
  }
  const size_t n = x.rows(), d = x.cols(), k = config.k;
  if (k == 0 || k > n) return Status::InvalidArgument("k must be in [1, n]");
  DMML_TRACE_SPAN("ml.kmeans.train_operand");

  DMML_ASSIGN_OR_RETURN(ExprPtr xleaf, ExprNode::InputOperand(x, "X"));
  DMML_ASSIGN_OR_RETURN(ExprPtr xt, ExprNode::Transpose(xleaf));
  ScopedTrainerProfile prof(profile, "ml.kmeans.train_operand");
  BufferedExecutor executor(pool);
  executor.set_profile(prof.active());

  // Initial centers: k sampled rows, extracted via a one-hot
  // transpose-multiply so no representation needs decompressing.
  KMeansModel model;
  {
    Rng rng(config.seed);
    auto onehots = std::make_shared<DenseMatrix>(n, k);
    for (size_t c = 0; c < k; ++c) {
      onehots->At(rng.UniformInt(static_cast<uint64_t>(n)), c) = 1.0;
    }
    DMML_ASSIGN_OR_RETURN(ExprPtr oleaf,
                          ExprNode::InputOperand(Operand(onehots), "onehots"));
    DMML_ASSIGN_OR_RETURN(ExprPtr cols_expr, ExprNode::MatMul(xt, oleaf));
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* cols, executor.Run(cols_expr));
    model.centers = la::Transpose(*cols);  // k x d.
  }
  model.labels.assign(n, 0);

  // rowSums(X ⊙ X): the executor fuses this into the representation's
  // row-squared-norms kernel. Copied out, since the slot buffer is only
  // stable until the next Run().
  DenseMatrix row_norms;
  {
    DMML_ASSIGN_OR_RETURN(ExprPtr xx, ExprNode::ElemMul(xleaf, xleaf));
    DMML_ASSIGN_OR_RETURN(ExprPtr norms_expr, ExprNode::RowSums(xx));
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* norms, executor.Run(norms_expr));
    row_norms = *norms;
  }

  // Per-iteration programs over payloads mutated in place: the assignment's
  // cross products X·Cᵀ and the update's Xᵀ·A.
  auto centers = std::make_shared<DenseMatrix>();
  auto assign = std::make_shared<DenseMatrix>(n, k);
  *centers = model.centers;
  DMML_ASSIGN_OR_RETURN(ExprPtr cleaf,
                        ExprNode::InputOperand(Operand(centers), "centers"));
  DMML_ASSIGN_OR_RETURN(ExprPtr aleaf,
                        ExprNode::InputOperand(Operand(assign), "assign"));
  DMML_ASSIGN_OR_RETURN(ExprPtr ct, ExprNode::Transpose(cleaf));
  DMML_ASSIGN_OR_RETURN(ExprPtr cross_expr, ExprNode::MatMul(xleaf, ct));
  DMML_ASSIGN_OR_RETURN(ExprPtr sums_expr, ExprNode::MatMul(xt, aleaf));

  std::vector<double> center_norms(k);
  std::vector<size_t> counts(k);
  double prev_inertia = std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < config.max_iters; ++iter) {
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* cross, executor.Run(cross_expr));

    for (size_t c = 0; c < k; ++c) {
      center_norms[c] = la::Dot(centers->Row(c), centers->Row(c), d);
    }

    double inertia = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        double dist =
            row_norms.At(i, 0) - 2.0 * cross->At(i, c) + center_norms[c];
        if (dist < best_d) {
          best_d = dist;
          best = c;
        }
      }
      model.labels[i] = static_cast<int>(best);
      inertia += std::max(0.0, best_d);
    }

    assign->Fill(0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      assign->At(i, static_cast<size_t>(model.labels[i])) = 1.0;
      counts[static_cast<size_t>(model.labels[i])]++;
    }
    DMML_ASSIGN_OR_RETURN(const DenseMatrix* sums, executor.Run(sums_expr));
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // Keep the stale center.
      double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t j = 0; j < d; ++j) {
        centers->At(c, j) = sums->At(j, c) * inv;
      }
    }

    model.inertia = inertia;
    model.inertia_history.push_back(inertia);
    model.iters_run = iter + 1;
    if (std::isfinite(prev_inertia) &&
        std::fabs(prev_inertia - inertia) <=
            config.tolerance * std::max(1.0, prev_inertia)) {
      break;
    }
    prev_inertia = inertia;
  }
  model.centers = *centers;
  return model;
}

}  // namespace dmml::ml
