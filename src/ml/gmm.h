/// \file gmm.h
/// \brief Gaussian mixture models with diagonal covariance, fit by EM.
///
/// The expectation-maximization workhorse of in-database analytics suites
/// (MADlib ships it as a UDA): soft clustering with per-component means,
/// per-dimension variances and mixing weights; the log-likelihood is
/// guaranteed non-decreasing across EM iterations.
#ifndef DMML_ML_GMM_H_
#define DMML_ML_GMM_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "util/result.h"

namespace dmml::ml {

/// \brief GMM hyperparameters.
struct GmmConfig {
  size_t num_components = 3;
  size_t max_iters = 100;
  double tolerance = 1e-6;      ///< Relative log-likelihood improvement stop.
  double var_floor = 1e-6;      ///< Lower bound on per-dimension variances.
  uint64_t seed = 42;           ///< k-means-style initialization seed.
};

/// \brief A fitted mixture.
struct GmmModel {
  la::DenseMatrix means;       ///< k x d.
  la::DenseMatrix variances;   ///< k x d (diagonal covariances).
  std::vector<double> weights; ///< Mixing proportions, sum to 1.
  std::vector<double> log_likelihood_history;  ///< Mean LL per iteration.
  size_t iters_run = 0;

  /// \brief Per-point responsibilities (n x k), rows summing to 1.
  Result<la::DenseMatrix> PredictProba(const la::DenseMatrix& x) const;

  /// \brief Hard assignment: argmax responsibility per row.
  Result<std::vector<int>> Predict(const la::DenseMatrix& x) const;

  /// \brief Mean log-likelihood of `x` under the mixture.
  Result<double> ScoreSamples(const la::DenseMatrix& x) const;
};

/// \brief Fits a diagonal-covariance GMM on (n x d) data with EM.
Result<GmmModel> TrainGmm(const la::DenseMatrix& x, const GmmConfig& config);

}  // namespace dmml::ml

#endif  // DMML_ML_GMM_H_
