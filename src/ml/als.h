/// \file als.h
/// \brief Low-rank matrix factorization by alternating least squares —
/// the collaborative-filtering workload of the tutorial's motivating
/// applications (recommendations), and a second consumer of the dense
/// solver substrate.
#ifndef DMML_ML_ALS_H_
#define DMML_ML_ALS_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "util/result.h"

namespace dmml::ml {

/// \brief ALS hyperparameters.
struct AlsConfig {
  size_t rank = 8;
  double l2 = 0.1;          ///< Tikhonov regularization per solve.
  size_t max_iters = 20;
  double tolerance = 1e-5;  ///< Relative training-RMSE improvement stop.
  uint64_t seed = 42;
};

/// \brief A fitted factorization R ≈ U Vᵀ over the observed entries.
struct AlsModel {
  la::DenseMatrix user_factors;  ///< n x rank.
  la::DenseMatrix item_factors;  ///< m x rank.
  std::vector<double> rmse_history;  ///< Training RMSE per iteration.
  size_t iters_run = 0;

  /// \brief Predicted rating for (user, item).
  Result<double> Predict(size_t user, size_t item) const;

  /// \brief RMSE over the observed entries of `ratings`.
  Result<double> Rmse(const la::SparseMatrix& ratings) const;
};

/// \brief Factorizes the observed entries of `ratings` (CSR; zeros are
/// treated as *unobserved*, not as ratings of zero).
///
/// Each iteration solves, for every user then every item, the rank x rank
/// ridge system over that row's observed entries — the textbook ALS sweep.
Result<AlsModel> TrainAls(const la::SparseMatrix& ratings, const AlsConfig& config);

}  // namespace dmml::ml

#endif  // DMML_ML_ALS_H_
