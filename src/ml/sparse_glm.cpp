#include "ml/sparse_glm.h"

#include <cmath>
#include <limits>

#include "la/kernels.h"

namespace dmml::ml {

using la::DenseMatrix;
using la::SparseMatrix;

Result<double> GlmLossSparse(const SparseMatrix& x, const DenseMatrix& y,
                             const DenseMatrix& w, double intercept,
                             GlmFamily family, double l2) {
  const size_t n = x.rows();
  if (n == 0) return Status::InvalidArgument("GlmLossSparse: empty data");
  if (y.rows() != n || y.cols() != 1 || w.rows() != x.cols()) {
    return Status::InvalidArgument("GlmLossSparse: shape mismatch");
  }
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    double score = intercept;
    for (size_t k = x.RowBegin(i); k < x.RowEnd(i); ++k) {
      score += x.values()[k] * w.At(x.col_idx()[k], 0);
    }
    if (family == GlmFamily::kGaussian) {
      double r = score - y.At(i, 0);
      acc += 0.5 * r * r;
    } else {
      double sign_y = y.At(i, 0) > 0.5 ? 1.0 : -1.0;
      double m = sign_y * score;
      acc += m > 0 ? std::log1p(std::exp(-m)) : -m + std::log1p(std::exp(m));
    }
  }
  double loss = acc / static_cast<double>(n);
  if (l2 > 0) {
    double w2 = 0;
    for (size_t j = 0; j < w.rows(); ++j) w2 += w.At(j, 0) * w.At(j, 0);
    loss += 0.5 * l2 * w2;
  }
  return loss;
}

Result<GlmModel> TrainGlmSparse(const SparseMatrix& x, const DenseMatrix& y,
                                const GlmConfig& config) {
  const size_t n = x.rows(), d = x.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("TrainGlmSparse: empty data");
  if (y.rows() != n || y.cols() != 1) {
    return Status::InvalidArgument("TrainGlmSparse: y must be n x 1");
  }
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (config.family == GlmFamily::kBinomial) {
    for (size_t i = 0; i < n; ++i) {
      double v = y.At(i, 0);
      if (v != 0.0 && v != 1.0) {
        return Status::InvalidArgument("Binomial family requires 0/1 labels");
      }
    }
  }

  GlmModel model;
  model.family = config.family;
  model.weights = DenseMatrix(d, 1);
  DenseMatrix grad(d, 1);
  const double inv_n = 1.0 / static_cast<double>(n);
  double prev_loss = std::numeric_limits<double>::infinity();

  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    grad.Fill(0.0);
    double bias_grad = 0;
    double loss = 0;
    for (size_t i = 0; i < n; ++i) {
      double score = model.intercept;
      for (size_t k = x.RowBegin(i); k < x.RowEnd(i); ++k) {
        score += x.values()[k] * model.weights.At(x.col_idx()[k], 0);
      }
      double yi = y.At(i, 0);
      double g;
      if (config.family == GlmFamily::kGaussian) {
        g = score - yi;
        loss += 0.5 * g * g;
      } else {
        double sign_y = yi > 0.5 ? 1.0 : -1.0;
        double m = sign_y * score;
        loss += m > 0 ? std::log1p(std::exp(-m)) : -m + std::log1p(std::exp(m));
        g = GlmInverseLink(score, config.family) - yi;
      }
      // Gradient scatter touches only the row's nonzeros: O(nnz) total.
      for (size_t k = x.RowBegin(i); k < x.RowEnd(i); ++k) {
        grad.At(x.col_idx()[k], 0) += g * x.values()[k];
      }
      bias_grad += g;
    }
    loss *= inv_n;
    if (config.l2 > 0) {
      double w2 = 0;
      for (size_t j = 0; j < d; ++j) w2 += model.weights.At(j, 0) * model.weights.At(j, 0);
      loss += 0.5 * config.l2 * w2;
    }

    double lr =
        config.learning_rate / (1.0 + config.lr_decay * static_cast<double>(epoch));
    for (size_t j = 0; j < d; ++j) {
      model.weights.At(j, 0) -=
          lr * (grad.At(j, 0) * inv_n + config.l2 * model.weights.At(j, 0));
    }
    if (config.fit_intercept) model.intercept -= lr * bias_grad * inv_n;

    model.loss_history.push_back(loss);
    model.epochs_run = epoch + 1;
    if (std::isfinite(prev_loss) &&
        std::fabs(prev_loss - loss) <= config.tolerance * std::max(1.0, prev_loss)) {
      break;
    }
    prev_loss = loss;
  }
  return model;
}

}  // namespace dmml::ml
