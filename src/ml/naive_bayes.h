/// \file naive_bayes.h
/// \brief Gaussian naive Bayes classifier for multi-class problems.
#ifndef DMML_ML_NAIVE_BAYES_H_
#define DMML_ML_NAIVE_BAYES_H_

#include <vector>

#include "la/dense_matrix.h"
#include "util/result.h"

namespace dmml::ml {

/// \brief Gaussian NB hyperparameters.
struct NaiveBayesConfig {
  double var_smoothing = 1e-9;  ///< Added to per-feature variances.
};

/// \brief A fitted Gaussian naive Bayes model.
struct NaiveBayesModel {
  std::vector<int> classes;      ///< Distinct labels in training order.
  la::DenseMatrix means;         ///< num_classes x d.
  la::DenseMatrix variances;     ///< num_classes x d.
  std::vector<double> log_priors;

  /// \brief Per-class joint log-likelihoods (n x num_classes).
  Result<la::DenseMatrix> JointLogLikelihood(const la::DenseMatrix& x) const;

  /// \brief Most probable class per row.
  Result<std::vector<int>> Predict(const la::DenseMatrix& x) const;

  /// \brief Posterior probabilities (n x num_classes), softmax-normalized.
  Result<la::DenseMatrix> PredictProba(const la::DenseMatrix& x) const;
};

/// \brief Fits Gaussian NB on (n x d) features and integer labels.
Result<NaiveBayesModel> TrainNaiveBayes(const la::DenseMatrix& x,
                                        const std::vector<int>& y,
                                        const NaiveBayesConfig& config = {});

}  // namespace dmml::ml

#endif  // DMML_ML_NAIVE_BAYES_H_
