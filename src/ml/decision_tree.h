/// \file decision_tree.h
/// \brief CART decision trees (classification by Gini, regression by variance).
#ifndef DMML_ML_DECISION_TREE_H_
#define DMML_ML_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "la/dense_matrix.h"
#include "util/result.h"

namespace dmml::ml {

/// \brief Decision-tree hyperparameters.
struct TreeConfig {
  size_t max_depth = 8;
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  double min_impurity_decrease = 0.0;
};

/// \brief One node of the trained tree (array-encoded).
struct TreeNode {
  bool is_leaf = true;
  size_t feature = 0;      ///< Split feature (internal nodes).
  double threshold = 0.0;  ///< Go left if x[feature] <= threshold.
  int left = -1;           ///< Child indices into the node array.
  int right = -1;
  double value = 0.0;      ///< Leaf prediction (class id or mean target).
  size_t num_samples = 0;
};

/// \brief A fitted CART tree.
struct DecisionTreeModel {
  bool is_classifier = true;
  std::vector<TreeNode> nodes;  ///< nodes[0] is the root.

  /// \brief Predicted value per row (class id for classifiers).
  Result<la::DenseMatrix> Predict(const la::DenseMatrix& x) const;

  /// \brief Depth of the trained tree (root = depth 0).
  size_t Depth() const;

  size_t NumLeaves() const;
};

/// \brief Trains a classification tree on integer labels encoded as doubles.
Result<DecisionTreeModel> TrainTreeClassifier(const la::DenseMatrix& x,
                                              const la::DenseMatrix& y,
                                              const TreeConfig& config = {});

/// \brief Trains a regression tree (variance-reduction splits).
Result<DecisionTreeModel> TrainTreeRegressor(const la::DenseMatrix& x,
                                             const la::DenseMatrix& y,
                                             const TreeConfig& config = {});

}  // namespace dmml::ml

#endif  // DMML_ML_DECISION_TREE_H_
