#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace dmml::ml {

using la::DenseMatrix;

namespace {

// Impurity abstraction: Gini for classification, variance for regression.
struct SplitResult {
  bool found = false;
  size_t feature = 0;
  double threshold = 0.0;
  double impurity_decrease = 0.0;
};

double GiniFromCounts(const std::map<double, size_t>& counts, size_t total) {
  if (total == 0) return 0.0;
  double acc = 1.0;
  for (const auto& [_, c] : counts) {
    double p = static_cast<double>(c) / static_cast<double>(total);
    acc -= p * p;
  }
  return acc;
}

double Gini(const DenseMatrix& y, const std::vector<size_t>& idx) {
  std::map<double, size_t> counts;
  for (size_t i : idx) counts[y.At(i, 0)]++;
  return GiniFromCounts(counts, idx.size());
}

double Variance(const DenseMatrix& y, const std::vector<size_t>& idx) {
  if (idx.empty()) return 0.0;
  double mean = 0;
  for (size_t i : idx) mean += y.At(i, 0);
  mean /= static_cast<double>(idx.size());
  double acc = 0;
  for (size_t i : idx) {
    double d = y.At(i, 0) - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(idx.size());
}

// Finds the best (feature, threshold) split via per-feature sorted sweeps.
SplitResult FindBestSplit(const DenseMatrix& x, const DenseMatrix& y,
                          const std::vector<size_t>& idx, bool classifier,
                          const TreeConfig& config) {
  const size_t n = idx.size();
  SplitResult best;
  if (n < config.min_samples_split) return best;

  double parent_impurity = classifier ? Gini(y, idx) : Variance(y, idx);
  if (parent_impurity == 0.0) return best;

  std::vector<size_t> sorted = idx;
  for (size_t f = 0; f < x.cols(); ++f) {
    std::sort(sorted.begin(), sorted.end(),
              [&](size_t a, size_t b) { return x.At(a, f) < x.At(b, f); });

    if (classifier) {
      // Incremental class counts for O(n log n + n*k) per feature.
      std::map<double, size_t> left_counts, right_counts;
      for (size_t i : sorted) right_counts[y.At(i, 0)]++;
      for (size_t pos = 0; pos + 1 < n; ++pos) {
        double label = y.At(sorted[pos], 0);
        left_counts[label]++;
        if (--right_counts[label] == 0) right_counts.erase(label);
        double v = x.At(sorted[pos], f);
        double next = x.At(sorted[pos + 1], f);
        if (v == next) continue;  // Can't split between equal values.
        size_t nl = pos + 1, nr = n - nl;
        if (nl < config.min_samples_leaf || nr < config.min_samples_leaf) continue;
        double gl = GiniFromCounts(left_counts, nl);
        double gr = GiniFromCounts(right_counts, nr);
        double weighted = (static_cast<double>(nl) * gl + static_cast<double>(nr) * gr) /
                          static_cast<double>(n);
        double decrease = parent_impurity - weighted;
        if (decrease > best.impurity_decrease) {
          best = {true, f, (v + next) / 2.0, decrease};
        }
      }
    } else {
      // Incremental sums for variance.
      double right_sum = 0, right_sq = 0;
      for (size_t i : sorted) {
        right_sum += y.At(i, 0);
        right_sq += y.At(i, 0) * y.At(i, 0);
      }
      double left_sum = 0, left_sq = 0;
      for (size_t pos = 0; pos + 1 < n; ++pos) {
        double yv = y.At(sorted[pos], 0);
        left_sum += yv;
        left_sq += yv * yv;
        right_sum -= yv;
        right_sq -= yv * yv;
        double v = x.At(sorted[pos], f);
        double next = x.At(sorted[pos + 1], f);
        if (v == next) continue;
        size_t nl = pos + 1, nr = n - nl;
        if (nl < config.min_samples_leaf || nr < config.min_samples_leaf) continue;
        double vl = left_sq / nl - (left_sum / nl) * (left_sum / nl);
        double vr = right_sq / nr - (right_sum / nr) * (right_sum / nr);
        double weighted = (static_cast<double>(nl) * vl + static_cast<double>(nr) * vr) /
                          static_cast<double>(n);
        double decrease = parent_impurity - weighted;
        if (decrease > best.impurity_decrease) {
          best = {true, f, (v + next) / 2.0, decrease};
        }
      }
    }
  }
  if (best.impurity_decrease <= config.min_impurity_decrease) best.found = false;
  return best;
}

double LeafValue(const DenseMatrix& y, const std::vector<size_t>& idx,
                 bool classifier) {
  if (classifier) {
    std::map<double, size_t> counts;
    for (size_t i : idx) counts[y.At(i, 0)]++;
    double best_label = 0;
    size_t best_count = 0;
    for (const auto& [label, c] : counts) {
      if (c > best_count) {
        best_count = c;
        best_label = label;
      }
    }
    return best_label;
  }
  double mean = 0;
  for (size_t i : idx) mean += y.At(i, 0);
  return idx.empty() ? 0.0 : mean / static_cast<double>(idx.size());
}

// Recursive builder; returns the index of the created node.
int BuildNode(const DenseMatrix& x, const DenseMatrix& y, std::vector<size_t> idx,
              size_t depth, bool classifier, const TreeConfig& config,
              std::vector<TreeNode>* nodes) {
  int node_id = static_cast<int>(nodes->size());
  nodes->push_back({});
  (*nodes)[node_id].num_samples = idx.size();
  (*nodes)[node_id].value = LeafValue(y, idx, classifier);

  if (depth >= config.max_depth || idx.size() < config.min_samples_split) {
    return node_id;
  }
  SplitResult split = FindBestSplit(x, y, idx, classifier, config);
  if (!split.found) return node_id;

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : idx) {
    if (x.At(i, split.feature) <= split.threshold) left_idx.push_back(i);
    else right_idx.push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  idx.clear();
  idx.shrink_to_fit();
  int left = BuildNode(x, y, std::move(left_idx), depth + 1, classifier, config, nodes);
  int right =
      BuildNode(x, y, std::move(right_idx), depth + 1, classifier, config, nodes);
  TreeNode& node = (*nodes)[node_id];
  node.is_leaf = false;
  node.feature = split.feature;
  node.threshold = split.threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

Result<DecisionTreeModel> TrainTree(const DenseMatrix& x, const DenseMatrix& y,
                                    const TreeConfig& config, bool classifier) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("decision tree: empty data");
  }
  if (y.rows() != x.rows() || y.cols() != 1) {
    return Status::InvalidArgument("decision tree: y must be n x 1");
  }
  DecisionTreeModel model;
  model.is_classifier = classifier;
  std::vector<size_t> idx(x.rows());
  std::iota(idx.begin(), idx.end(), 0);
  BuildNode(x, y, std::move(idx), 0, classifier, config, &model.nodes);
  return model;
}

}  // namespace

Result<DenseMatrix> DecisionTreeModel::Predict(const DenseMatrix& x) const {
  if (nodes.empty()) return Status::FailedPrecondition("tree is not trained");
  DenseMatrix out(x.rows(), 1);
  for (size_t i = 0; i < x.rows(); ++i) {
    int cur = 0;
    while (!nodes[cur].is_leaf) {
      const TreeNode& node = nodes[cur];
      if (node.feature >= x.cols()) {
        return Status::InvalidArgument("tree dimensionality mismatch");
      }
      cur = x.At(i, node.feature) <= node.threshold ? node.left : node.right;
    }
    out.At(i, 0) = nodes[cur].value;
  }
  return out;
}

size_t DecisionTreeModel::Depth() const {
  // Iterative depth computation over the array encoding.
  std::vector<std::pair<int, size_t>> stack{{0, 0}};
  size_t depth = 0;
  while (!stack.empty()) {
    auto [id, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    const TreeNode& node = nodes[id];
    if (!node.is_leaf) {
      stack.push_back({node.left, d + 1});
      stack.push_back({node.right, d + 1});
    }
  }
  return depth;
}

size_t DecisionTreeModel::NumLeaves() const {
  size_t count = 0;
  for (const auto& node : nodes) count += node.is_leaf ? 1 : 0;
  return count;
}

Result<DecisionTreeModel> TrainTreeClassifier(const DenseMatrix& x,
                                              const DenseMatrix& y,
                                              const TreeConfig& config) {
  return TrainTree(x, y, config, true);
}

Result<DecisionTreeModel> TrainTreeRegressor(const DenseMatrix& x,
                                             const DenseMatrix& y,
                                             const TreeConfig& config) {
  return TrainTree(x, y, config, false);
}

}  // namespace dmml::ml
