#include "ml/als.h"

#include <cmath>
#include <limits>

#include "la/kernels.h"
#include "la/ops.h"
#include "util/rng.h"

namespace dmml::ml {

using la::DenseMatrix;
using la::SparseMatrix;

namespace {

// Solves the per-row ridge system: factors for one side given the other.
// For row entries {(j, r_ij)}: (Σ v_j v_jᵀ + λI) u_i = Σ r_ij v_j.
Status SolveSide(const SparseMatrix& ratings, const DenseMatrix& fixed,
                 double l2, DenseMatrix* out) {
  const size_t rank = fixed.cols();
  DenseMatrix a(rank, rank);
  DenseMatrix b(rank, 1);
  for (size_t i = 0; i < ratings.rows(); ++i) {
    const size_t begin = ratings.RowBegin(i), end = ratings.RowEnd(i);
    if (begin == end) continue;  // No observations: keep the current factor.
    a.Fill(0.0);
    b.Fill(0.0);
    for (size_t k = begin; k < end; ++k) {
      const double* v = fixed.Row(ratings.col_idx()[k]);
      const double r = ratings.values()[k];
      for (size_t p = 0; p < rank; ++p) {
        b.At(p, 0) += r * v[p];
        la::Axpy(v[p], v, a.Row(p), rank);
      }
    }
    for (size_t p = 0; p < rank; ++p) a.At(p, p) += l2;
    DMML_ASSIGN_OR_RETURN(DenseMatrix u, la::Solve(a, b));
    for (size_t p = 0; p < rank; ++p) out->At(i, p) = u.At(p, 0);
  }
  return Status::OK();
}

double TrainingRmse(const SparseMatrix& ratings, const DenseMatrix& u,
                    const DenseMatrix& v) {
  double acc = 0;
  size_t count = 0;
  const size_t rank = u.cols();
  for (size_t i = 0; i < ratings.rows(); ++i) {
    for (size_t k = ratings.RowBegin(i); k < ratings.RowEnd(i); ++k) {
      double pred = la::Dot(u.Row(i), v.Row(ratings.col_idx()[k]), rank);
      double err = pred - ratings.values()[k];
      acc += err * err;
      ++count;
    }
  }
  return count ? std::sqrt(acc / static_cast<double>(count)) : 0.0;
}

}  // namespace

Result<AlsModel> TrainAls(const SparseMatrix& ratings, const AlsConfig& config) {
  const size_t n = ratings.rows(), m = ratings.cols();
  if (n == 0 || m == 0) return Status::InvalidArgument("ALS: empty rating matrix");
  if (ratings.nnz() == 0) return Status::InvalidArgument("ALS: no observed ratings");
  if (config.rank == 0) return Status::InvalidArgument("ALS: rank must be >= 1");
  if (config.l2 < 0) return Status::InvalidArgument("ALS: l2 must be >= 0");
  if (config.l2 == 0.0) {
    // Unregularized per-row systems are singular whenever a row has fewer
    // observations than the rank; require a ridge.
    return Status::InvalidArgument("ALS: l2 must be positive");
  }

  Rng rng(config.seed);
  AlsModel model;
  model.user_factors = DenseMatrix(n, config.rank);
  model.item_factors = DenseMatrix(m, config.rank);
  for (size_t e = 0; e < model.user_factors.size(); ++e) {
    model.user_factors.data()[e] = rng.Normal(0, 0.1);
  }
  for (size_t e = 0; e < model.item_factors.size(); ++e) {
    model.item_factors.data()[e] = rng.Normal(0, 0.1);
  }

  SparseMatrix ratings_t = la::SparseTranspose(ratings);
  double prev_rmse = std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < config.max_iters; ++iter) {
    DMML_RETURN_IF_ERROR(
        SolveSide(ratings, model.item_factors, config.l2, &model.user_factors));
    DMML_RETURN_IF_ERROR(
        SolveSide(ratings_t, model.user_factors, config.l2, &model.item_factors));

    double rmse = TrainingRmse(ratings, model.user_factors, model.item_factors);
    model.rmse_history.push_back(rmse);
    model.iters_run = iter + 1;
    if (std::isfinite(prev_rmse) &&
        std::fabs(prev_rmse - rmse) <= config.tolerance * std::max(1.0, prev_rmse)) {
      break;
    }
    prev_rmse = rmse;
  }
  return model;
}

Result<double> AlsModel::Predict(size_t user, size_t item) const {
  if (user >= user_factors.rows() || item >= item_factors.rows()) {
    return Status::OutOfRange("ALS: user or item index out of range");
  }
  return la::Dot(user_factors.Row(user), item_factors.Row(item),
                 user_factors.cols());
}

Result<double> AlsModel::Rmse(const SparseMatrix& ratings) const {
  if (ratings.rows() != user_factors.rows() ||
      ratings.cols() != item_factors.rows()) {
    return Status::InvalidArgument("ALS: rating matrix shape mismatch");
  }
  if (ratings.nnz() == 0) return Status::InvalidArgument("ALS: no observed ratings");
  return TrainingRmse(ratings, user_factors, item_factors);
}

}  // namespace dmml::ml
