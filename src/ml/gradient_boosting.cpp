#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/glm.h"
#include "util/rng.h"

namespace dmml::ml {

using la::DenseMatrix;

namespace {

Result<GradientBoostingModel> TrainBoosted(const DenseMatrix& x, const DenseMatrix& y,
                                           const BoostingConfig& config,
                                           bool classifier) {
  const size_t n = x.rows(), d = x.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("boosting: empty data");
  if (y.rows() != n || y.cols() != 1) {
    return Status::InvalidArgument("boosting: y must be n x 1");
  }
  if (config.num_rounds == 0) {
    return Status::InvalidArgument("boosting: num_rounds >= 1");
  }
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("boosting: learning_rate must be positive");
  }
  if (config.subsample <= 0 || config.subsample > 1.0) {
    return Status::InvalidArgument("boosting: subsample in (0, 1]");
  }
  if (classifier) {
    for (size_t i = 0; i < n; ++i) {
      double v = y.At(i, 0);
      if (v != 0.0 && v != 1.0) {
        return Status::InvalidArgument("boosted classifier requires 0/1 labels");
      }
    }
  }

  GradientBoostingModel model;
  model.is_classifier = classifier;
  model.learning_rate = config.learning_rate;

  // Base score: mean target (regression) or prior log-odds (classification).
  double mean = 0;
  for (size_t i = 0; i < n; ++i) mean += y.At(i, 0);
  mean /= static_cast<double>(n);
  if (classifier) {
    double p = std::clamp(mean, 1e-6, 1.0 - 1e-6);
    model.base_score = std::log(p / (1.0 - p));
  } else {
    model.base_score = mean;
  }

  // Current additive scores F(x_i).
  std::vector<double> f(n, model.base_score);
  DenseMatrix residual(n, 1);
  Rng rng(config.seed);
  std::vector<size_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0);
  size_t sample_size =
      std::max<size_t>(1, static_cast<size_t>(config.subsample * static_cast<double>(n)));

  for (size_t round = 0; round < config.num_rounds; ++round) {
    // Negative gradient of the loss at the current scores.
    for (size_t i = 0; i < n; ++i) {
      if (classifier) {
        double p = GlmInverseLink(f[i], GlmFamily::kBinomial);
        residual.At(i, 0) = y.At(i, 0) - p;
      } else {
        residual.At(i, 0) = y.At(i, 0) - f[i];
      }
    }

    // Optional row subsampling (stochastic gradient boosting).
    DenseMatrix xt, rt;
    if (sample_size < n) {
      rng.Shuffle(&all_rows);
      xt = DenseMatrix(sample_size, d);
      rt = DenseMatrix(sample_size, 1);
      for (size_t s = 0; s < sample_size; ++s) {
        std::copy(x.Row(all_rows[s]), x.Row(all_rows[s]) + d, xt.Row(s));
        rt.At(s, 0) = residual.At(all_rows[s], 0);
      }
    }
    const DenseMatrix& x_fit = sample_size < n ? xt : x;
    const DenseMatrix& r_fit = sample_size < n ? rt : residual;

    DMML_ASSIGN_OR_RETURN(DecisionTreeModel tree,
                          TrainTreeRegressor(x_fit, r_fit, config.tree));
    DMML_ASSIGN_OR_RETURN(DenseMatrix update, tree.Predict(x));
    for (size_t i = 0; i < n; ++i) {
      f[i] += config.learning_rate * update.At(i, 0);
    }
    model.trees.push_back(std::move(tree));

    // Track training loss.
    double loss = 0;
    for (size_t i = 0; i < n; ++i) {
      if (classifier) {
        double sign_y = y.At(i, 0) > 0.5 ? 1.0 : -1.0;
        double m = sign_y * f[i];
        loss += m > 0 ? std::log1p(std::exp(-m)) : -m + std::log1p(std::exp(m));
      } else {
        double r = y.At(i, 0) - f[i];
        loss += 0.5 * r * r;
      }
    }
    model.train_loss.push_back(loss / static_cast<double>(n));
  }
  return model;
}

}  // namespace

Result<DenseMatrix> GradientBoostingModel::DecisionFunction(
    const DenseMatrix& x) const {
  if (trees.empty()) return Status::FailedPrecondition("boosting model not trained");
  DenseMatrix f(x.rows(), 1, base_score);
  for (const auto& tree : trees) {
    DMML_ASSIGN_OR_RETURN(DenseMatrix update, tree.Predict(x));
    for (size_t i = 0; i < x.rows(); ++i) {
      f.At(i, 0) += learning_rate * update.At(i, 0);
    }
  }
  return f;
}

Result<DenseMatrix> GradientBoostingModel::Predict(const DenseMatrix& x) const {
  DMML_ASSIGN_OR_RETURN(DenseMatrix f, DecisionFunction(x));
  if (!is_classifier) return f;
  for (size_t i = 0; i < f.rows(); ++i) {
    f.At(i, 0) = GlmInverseLink(f.At(i, 0), GlmFamily::kBinomial);
  }
  return f;
}

Result<DenseMatrix> GradientBoostingModel::PredictLabels(const DenseMatrix& x,
                                                         double threshold) const {
  if (!is_classifier) {
    return Status::FailedPrecondition("PredictLabels requires a classifier");
  }
  DMML_ASSIGN_OR_RETURN(DenseMatrix probs, Predict(x));
  for (size_t i = 0; i < probs.rows(); ++i) {
    probs.At(i, 0) = probs.At(i, 0) >= threshold ? 1.0 : 0.0;
  }
  return probs;
}

Result<GradientBoostingModel> TrainBoostedRegressor(const DenseMatrix& x,
                                                    const DenseMatrix& y,
                                                    const BoostingConfig& config) {
  return TrainBoosted(x, y, config, false);
}

Result<GradientBoostingModel> TrainBoostedClassifier(const DenseMatrix& x,
                                                     const DenseMatrix& y,
                                                     const BoostingConfig& config) {
  return TrainBoosted(x, y, config, true);
}

}  // namespace dmml::ml
