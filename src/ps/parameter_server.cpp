#include "ps/parameter_server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>

#include "la/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace dmml::ps {

using la::DenseMatrix;

namespace {

// Staleness is small-integer valued; wait times span micros to seconds.
std::vector<double> StalenessBounds() { return {0, 1, 2, 4, 8, 16, 32}; }
std::vector<double> WaitBounds() { return obs::ExponentialBuckets(16, 4, 10); }

}  // namespace

const char* ConsistencyModeName(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kBsp: return "BSP";
    case ConsistencyMode::kAsync: return "ASP";
    case ConsistencyMode::kSsp: return "SSP";
  }
  return "?";
}

ParameterServer::ParameterServer(size_t dim, size_t num_workers)
    : weights_(dim, 0.0), clocks_(num_workers, 0) {}

void ParameterServer::Pull(std::vector<double>* w, double* intercept) const {
  DMML_COUNTER_INC("ps.pulls");
  std::lock_guard<std::mutex> lock(mu_);
  *w = weights_;
  *intercept = intercept_;
}

void ParameterServer::Push(const std::vector<double>& grad, double bias_grad,
                           double lr) {
  DMML_COUNTER_INC("ps.pushes");
  DMML_COUNTER_ADD("ps.coordinates_pushed", grad.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t j = 0; j < weights_.size(); ++j) weights_[j] -= lr * grad[j];
  intercept_ -= lr * bias_grad;
}

void ParameterServer::PushSparse(const std::vector<uint32_t>& indices,
                                 const std::vector<double>& values, double bias_grad,
                                 double lr) {
  DMML_COUNTER_INC("ps.sparse_pushes");
  DMML_COUNTER_ADD("ps.coordinates_pushed", indices.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t k = 0; k < indices.size(); ++k) {
    weights_[indices[k]] -= lr * values[k];
  }
  intercept_ -= lr * bias_grad;
}

size_t ParameterServer::MinClockLocked() const {
  return *std::min_element(clocks_.begin(), clocks_.end());
}

void ParameterServer::AdvanceClock(size_t worker) {
  size_t staleness;
  {
    std::lock_guard<std::mutex> lock(mu_);
    clocks_[worker]++;
    size_t max_clock = *std::max_element(clocks_.begin(), clocks_.end());
    staleness = max_clock - MinClockLocked();
    max_staleness_ = std::max(max_staleness_, staleness);
    cv_.notify_all();
  }
  DMML_HISTOGRAM_OBSERVE("ps.staleness", StalenessBounds(),
                         static_cast<double>(staleness));
}

void ParameterServer::WaitForSlowest(size_t worker, size_t bound) {
  DMML_TRACE_SPAN("ps.wait_for_slowest");
  Stopwatch wait;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return clocks_[worker] <= MinClockLocked() + bound; });
  }
  DMML_HISTOGRAM_OBSERVE("ps.wait_us", WaitBounds(),
                         static_cast<double>(wait.ElapsedMicros()));
}

void ParameterServer::Barrier(size_t epoch) {
  DMML_TRACE_SPAN("ps.barrier");
  Stopwatch wait;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return MinClockLocked() >= epoch; });
  }
  DMML_HISTOGRAM_OBSERVE("ps.wait_us", WaitBounds(),
                         static_cast<double>(wait.ElapsedMicros()));
}

size_t ParameterServer::max_observed_staleness() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_staleness_;
}

DenseMatrix ParameterServer::SnapshotWeights() const {
  std::lock_guard<std::mutex> lock(mu_);
  DenseMatrix w(weights_.size(), 1);
  for (size_t j = 0; j < weights_.size(); ++j) w.At(j, 0) = weights_[j];
  return w;
}

double ParameterServer::SnapshotIntercept() const {
  std::lock_guard<std::mutex> lock(mu_);
  return intercept_;
}

Result<PsResult> TrainGlmParameterServer(const DenseMatrix& x, const DenseMatrix& y,
                                         const PsConfig& config) {
  const size_t n = x.rows(), d = x.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("PS training: empty data");
  if (y.rows() != n || y.cols() != 1) {
    return Status::InvalidArgument("PS training: y must be n x 1");
  }
  if (config.num_workers == 0) {
    return Status::InvalidArgument("PS training: need >= 1 worker");
  }
  if (config.family == ml::GlmFamily::kBinomial) {
    for (size_t i = 0; i < n; ++i) {
      double v = y.At(i, 0);
      if (v != 0.0 && v != 1.0) {
        return Status::InvalidArgument("Binomial family requires 0/1 labels");
      }
    }
  }

  if (config.topk_fraction <= 0 || config.topk_fraction > 1.0) {
    return Status::InvalidArgument("PS training: topk_fraction in (0, 1]");
  }

  const size_t workers = std::min(config.num_workers, n);
  ParameterServer server(d, workers);
  DMML_TRACE_SPAN("ps.train");
  Stopwatch watch;
  const bool sparse_push = config.topk_fraction < 1.0;
  const size_t topk = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(config.topk_fraction * static_cast<double>(d))));

  std::atomic<size_t> total_pushes{0};
  std::atomic<size_t> total_coordinates{0};
  std::mutex loss_mu;
  std::vector<double> loss_per_epoch(config.epochs,
                                     std::numeric_limits<double>::quiet_NaN());
  std::vector<size_t> epoch_completions(config.epochs, 0);

  auto worker_fn = [&](size_t wid) {
    // Contiguous shard of the examples.
    size_t chunk = (n + workers - 1) / workers;
    size_t begin = wid * chunk, end = std::min(begin + chunk, n);
    if (begin >= end) {
      for (size_t e = 0; e < config.epochs; ++e) server.AdvanceClock(wid);
      return;
    }
    Rng rng(config.seed + 77771ULL * wid);
    std::vector<size_t> order(end - begin);
    std::iota(order.begin(), order.end(), begin);
    std::vector<double> w(d);
    std::vector<double> grad(d);
    // Error-feedback residual for sparsified pushes.
    std::vector<double> residual(sparse_push ? d : 0, 0.0);
    std::vector<uint32_t> push_idx;
    std::vector<double> push_val;
    std::vector<uint32_t> coord_order(sparse_push ? d : 0);
    double intercept = 0;

    for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
      DMML_TRACE_SPAN("ps.worker_epoch");
      if (config.mode == ConsistencyMode::kSsp) {
        server.WaitForSlowest(wid, config.staleness_bound);
      }
      rng.Shuffle(&order);
      for (size_t start = 0; start < order.size(); start += config.batch_size) {
        size_t stop = std::min(start + config.batch_size, order.size());
        server.Pull(&w, &intercept);
        std::fill(grad.begin(), grad.end(), 0.0);
        double bias_grad = 0;
        for (size_t k = start; k < stop; ++k) {
          size_t i = order[k];
          double score = la::Dot(x.Row(i), w.data(), d) + intercept;
          double g = ml::GlmInverseLink(score, config.family) - y.At(i, 0);
          la::Axpy(g, x.Row(i), grad.data(), d);
          bias_grad += g;
        }
        double inv_b = 1.0 / static_cast<double>(stop - start);
        for (size_t j = 0; j < d; ++j) {
          grad[j] = grad[j] * inv_b + config.l2 * w[j];
        }
        if (sparse_push) {
          // Error feedback: fold the untransmitted remainder of previous
          // pushes into this gradient, then transmit only the top-k
          // coordinates by magnitude.
          for (size_t j = 0; j < d; ++j) grad[j] += residual[j];
          std::iota(coord_order.begin(), coord_order.end(), 0u);
          std::nth_element(coord_order.begin(), coord_order.begin() + (topk - 1),
                           coord_order.end(), [&](uint32_t a, uint32_t b) {
                             return std::fabs(grad[a]) > std::fabs(grad[b]);
                           });
          push_idx.assign(coord_order.begin(), coord_order.begin() + topk);
          push_val.clear();
          for (uint32_t j : push_idx) push_val.push_back(grad[j]);
          for (size_t j = 0; j < d; ++j) residual[j] = grad[j];
          for (uint32_t j : push_idx) residual[j] = 0.0;
          server.PushSparse(push_idx, push_val,
                            config.fit_intercept ? bias_grad * inv_b : 0.0,
                            config.learning_rate);
          total_coordinates.fetch_add(topk, std::memory_order_relaxed);
        } else {
          server.Push(grad, config.fit_intercept ? bias_grad * inv_b : 0.0,
                      config.learning_rate);
          total_coordinates.fetch_add(d, std::memory_order_relaxed);
        }
        total_pushes.fetch_add(1, std::memory_order_relaxed);
        if (config.straggler_jitter > 0) {
          // Scale with the worker id so one worker is a systematic straggler,
          // as on heterogeneous clusters; ASP/SSP then visibly run ahead.
          double delay =
              rng.Uniform() * config.straggler_jitter * static_cast<double>(1 + wid);
          std::this_thread::sleep_for(std::chrono::duration<double>(delay));
        }
      }
      server.AdvanceClock(wid);
      if (config.mode == ConsistencyMode::kBsp) server.Barrier(epoch + 1);

      // The last worker to finish round `epoch` records the global loss.
      bool record = false;
      {
        std::lock_guard<std::mutex> lock(loss_mu);
        if (++epoch_completions[epoch] == workers) record = true;
      }
      if (record) {
        DenseMatrix snapshot = server.SnapshotWeights();
        double b = server.SnapshotIntercept();
        auto loss = ml::GlmLoss(x, y, snapshot, b, config.family, config.l2);
        if (loss.ok()) {
          std::lock_guard<std::mutex> lock(loss_mu);
          loss_per_epoch[epoch] = *loss;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t wid = 0; wid < workers; ++wid) threads.emplace_back(worker_fn, wid);
  for (auto& t : threads) t.join();

  PsResult result;
  result.model.family = config.family;
  result.model.weights = server.SnapshotWeights();
  result.model.intercept = server.SnapshotIntercept();
  result.model.epochs_run = config.epochs;
  result.model.loss_history = loss_per_epoch;
  result.loss_per_epoch = std::move(loss_per_epoch);
  result.total_pushes = total_pushes.load();
  result.total_coordinates_pushed = total_coordinates.load();
  result.max_observed_staleness = server.max_observed_staleness();
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace dmml::ps
