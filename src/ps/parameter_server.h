/// \file parameter_server.h
/// \brief Shared-memory parameter server with BSP / ASP / SSP consistency.
///
/// Simulates the distributed parameter-server architectures the target
/// tutorial surveys. Workers run data-parallel mini-batch SGD over shards of
/// the training set and exchange updates through a central versioned
/// parameter store:
///
///   * BSP  — bulk-synchronous: a barrier after every epoch; gradients are
///     never stale. Best statistical efficiency per epoch, worst stall time.
///   * ASP  — fully asynchronous: no coordination; highest throughput,
///     stalest gradients.
///   * SSP  — stale-synchronous: a worker may run ahead of the slowest
///     worker by at most `staleness_bound` epochs.
///
/// The consistency/staleness semantics — not the network — produce the
/// convergence trade-offs, so a shared-memory simulation preserves the
/// surveyed behaviour.
#ifndef DMML_PS_PARAMETER_SERVER_H_
#define DMML_PS_PARAMETER_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "la/dense_matrix.h"
#include "ml/glm.h"
#include "util/result.h"

namespace dmml::ps {

/// Consistency protocol between workers and the server.
enum class ConsistencyMode { kBsp, kAsync, kSsp };

/// \brief Name of a mode ("BSP", "ASP", "SSP").
const char* ConsistencyModeName(ConsistencyMode mode);

/// \brief Versioned central parameter store.
///
/// Thread-safe. Keeps per-worker logical clocks (completed epochs) to
/// implement SSP blocking and to report observed staleness.
class ParameterServer {
 public:
  /// \param dim        number of model weights (excluding intercept).
  /// \param num_workers worker count for clock tracking.
  ParameterServer(size_t dim, size_t num_workers);

  /// \brief Copies the current parameters into `w`/`intercept`.
  void Pull(std::vector<double>* w, double* intercept) const;

  /// \brief Applies a scaled gradient: w -= lr * grad, b -= lr * bias_grad.
  void Push(const std::vector<double>& grad, double bias_grad, double lr);

  /// \brief Sparse push: applies only the given (index, value) gradient
  /// coordinates — the communication-compressed update path.
  void PushSparse(const std::vector<uint32_t>& indices,
                  const std::vector<double>& values, double bias_grad, double lr);

  /// \brief Marks `worker` as having completed one more epoch.
  void AdvanceClock(size_t worker);

  /// \brief Blocks until clock(worker) <= min_clock + bound (SSP condition).
  void WaitForSlowest(size_t worker, size_t bound);

  /// \brief Blocks until every worker reaches `epoch` (BSP barrier).
  void Barrier(size_t epoch);

  /// \brief Largest clock spread (fastest - slowest) observed so far.
  size_t max_observed_staleness() const;

  /// \brief Snapshot of the parameters as a GLM weight vector.
  la::DenseMatrix SnapshotWeights() const;
  double SnapshotIntercept() const;

 private:
  size_t MinClockLocked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
  std::vector<size_t> clocks_;
  size_t max_staleness_ = 0;
};

/// \brief Parameter-server training configuration.
struct PsConfig {
  ConsistencyMode mode = ConsistencyMode::kBsp;
  size_t num_workers = 4;
  size_t staleness_bound = 2;   ///< SSP only.
  size_t batch_size = 32;
  size_t epochs = 20;
  double learning_rate = 0.1;
  double l2 = 0.0;
  ml::GlmFamily family = ml::GlmFamily::kBinomial;
  bool fit_intercept = true;
  uint64_t seed = 42;
  /// Artificial per-batch compute jitter (seconds): worker w sleeps
  /// uniform[0, x*(1+w)] after each batch, making the highest-id worker a
  /// systematic straggler — exposes consistency-mode differences even on
  /// uniform hardware. 0 disables.
  double straggler_jitter = 0.0;
  /// Gradient sparsification: each push transmits only the top
  /// ceil(d * topk_fraction) coordinates by magnitude; the untransmitted
  /// remainder accumulates locally (error feedback) and joins later pushes.
  /// 1.0 = dense pushes (off).
  double topk_fraction = 1.0;
};

/// \brief Result of a parameter-server training run.
struct PsResult {
  ml::GlmModel model;
  std::vector<double> loss_per_epoch;  ///< Global loss after each epoch round.
  size_t total_pushes = 0;
  /// Gradient coordinates actually transmitted (the communication volume;
  /// equals total_pushes * d for dense pushes).
  size_t total_coordinates_pushed = 0;
  size_t max_observed_staleness = 0;
  double wall_seconds = 0;
};

/// \brief Trains a GLM with `config.num_workers` threads against a central
/// parameter server under the configured consistency mode.
Result<PsResult> TrainGlmParameterServer(const la::DenseMatrix& x,
                                         const la::DenseMatrix& y,
                                         const PsConfig& config);

}  // namespace dmml::ps

#endif  // DMML_PS_PARAMETER_SERVER_H_
