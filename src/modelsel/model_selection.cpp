#include "modelsel/model_selection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/kernels.h"
#include "ml/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace dmml::modelsel {

using la::DenseMatrix;
using ml::GlmConfig;
using ml::GlmFamily;
using ml::GlmModel;

std::vector<GlmConfig> GridSpec::Expand() const {
  std::vector<GlmConfig> configs;
  configs.reserve(learning_rates.size() * l2_penalties.size());
  for (double lr : learning_rates) {
    for (double l2 : l2_penalties) {
      GlmConfig c = base;
      c.learning_rate = lr;
      c.l2 = l2;
      configs.push_back(c);
    }
  }
  return configs;
}

Result<KFold> KFold::Make(size_t n, size_t k, uint64_t seed) {
  if (k < 2 || k > n) return Status::InvalidArgument("k-fold: need 2 <= k <= n");
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&order);
  KFold kf;
  kf.folds_.resize(k);
  for (size_t i = 0; i < n; ++i) kf.folds_[i % k].push_back(order[i]);
  return kf;
}

std::vector<size_t> KFold::TrainingIndices(size_t f) const {
  std::vector<size_t> out;
  for (size_t g = 0; g < folds_.size(); ++g) {
    if (g == f) continue;
    out.insert(out.end(), folds_[g].begin(), folds_[g].end());
  }
  return out;
}

DenseMatrix GatherRows(const DenseMatrix& m, const std::vector<size_t>& rows) {
  DenseMatrix out(rows.size(), m.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::copy(m.Row(rows[i]), m.Row(rows[i]) + m.cols(), out.Row(i));
  }
  return out;
}

namespace {

// Higher-is-better score of a trained model on held-out data.
Result<double> ScoreModel(const GlmModel& model, const DenseMatrix& x,
                          const DenseMatrix& y) {
  if (model.family == GlmFamily::kBinomial) {
    DMML_ASSIGN_OR_RETURN(DenseMatrix labels, model.PredictLabels(x));
    return ml::Accuracy(y, labels);
  }
  DMML_ASSIGN_OR_RETURN(DenseMatrix pred, model.Predict(x));
  DMML_ASSIGN_OR_RETURN(double rmse, ml::Rmse(y, pred));
  return -rmse;
}

CvScore Summarize(const GlmConfig& config, std::vector<double> fold_scores) {
  CvScore score;
  score.config = config;
  score.fold_scores = std::move(fold_scores);
  double sum = 0;
  for (double s : score.fold_scores) sum += s;
  score.mean_score = sum / static_cast<double>(score.fold_scores.size());
  double var = 0;
  for (double s : score.fold_scores) {
    double d = s - score.mean_score;
    var += d * d;
  }
  score.std_score =
      std::sqrt(var / static_cast<double>(score.fold_scores.size()));
  return score;
}

size_t ArgBest(const std::vector<CvScore>& scores) {
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i].mean_score > scores[best].mean_score) best = i;
  }
  return best;
}

}  // namespace

Result<CvScore> CrossValidate(const DenseMatrix& x, const DenseMatrix& y,
                              const GlmConfig& config, size_t k, uint64_t seed) {
  DMML_ASSIGN_OR_RETURN(KFold kf, KFold::Make(x.rows(), k, seed));
  std::vector<double> fold_scores;
  fold_scores.reserve(k);
  for (size_t f = 0; f < k; ++f) {
    auto train_idx = kf.TrainingIndices(f);
    DenseMatrix xt = GatherRows(x, train_idx);
    DenseMatrix yt = GatherRows(y, train_idx);
    DenseMatrix xv = GatherRows(x, kf.ValidationIndices(f));
    DenseMatrix yv = GatherRows(y, kf.ValidationIndices(f));
    DMML_ASSIGN_OR_RETURN(GlmModel model, ml::TrainGlm(xt, yt, config));
    DMML_ASSIGN_OR_RETURN(double score, ScoreModel(model, xv, yv));
    fold_scores.push_back(score);
  }
  return Summarize(config, std::move(fold_scores));
}

Result<GridSearchResult> GridSearchSequential(const DenseMatrix& x,
                                              const DenseMatrix& y,
                                              const GridSpec& grid, size_t k,
                                              uint64_t seed) {
  DMML_TRACE_SPAN("modelsel.grid_search");
  Stopwatch watch;
  GridSearchResult result;
  for (const GlmConfig& config : grid.Expand()) {
    DMML_ASSIGN_OR_RETURN(CvScore score, CrossValidate(x, y, config, k, seed));
    DMML_COUNTER_INC("modelsel.configs_evaluated");
    result.scores.push_back(std::move(score));
  }
  if (result.scores.empty()) {
    return Status::InvalidArgument("grid search: empty grid");
  }
  result.best_index = ArgBest(result.scores);
  result.seconds = watch.ElapsedSeconds();
  return result;
}

Result<std::vector<GlmModel>> BatchedTrainGlm(const DenseMatrix& x,
                                              const DenseMatrix& y,
                                              const std::vector<GlmConfig>& configs) {
  if (configs.empty()) return Status::InvalidArgument("batched train: no configs");
  DMML_TRACE_SPAN("modelsel.batched_train");
  DMML_COUNTER_ADD("modelsel.configs_evaluated", configs.size());
  const size_t n = x.rows(), d = x.cols(), m = configs.size();
  if (n == 0 || d == 0) return Status::InvalidArgument("batched train: empty data");
  if (y.rows() != n || y.cols() != 1) {
    return Status::InvalidArgument("batched train: y must be n x 1");
  }
  const GlmConfig& base = configs.front();
  for (const auto& c : configs) {
    if (c.family != base.family || c.max_epochs != base.max_epochs ||
        c.fit_intercept != base.fit_intercept) {
      return Status::InvalidArgument(
          "batched train: configs must share family, epochs and intercept");
    }
    if (c.learning_rate <= 0) {
      return Status::InvalidArgument("learning_rate must be positive");
    }
  }
  if (base.family == GlmFamily::kBinomial) {
    for (size_t i = 0; i < n; ++i) {
      double v = y.At(i, 0);
      if (v != 0.0 && v != 1.0) {
        return Status::InvalidArgument("Binomial family requires 0/1 labels");
      }
    }
  }

  // One weight column per configuration; shared scans via GEMM.
  DenseMatrix w(d, m);
  std::vector<double> intercepts(m, 0.0);
  std::vector<std::vector<double>> loss_histories(m);
  const double inv_n = 1.0 / static_cast<double>(n);

  for (size_t epoch = 0; epoch < base.max_epochs; ++epoch) {
    DenseMatrix scores = la::Multiply(x, w);  // n x m — one scan for all models.
    // Residuals and losses per model.
    std::vector<double> losses(m, 0.0);
    std::vector<double> bias_grads(m, 0.0);
    for (size_t i = 0; i < n; ++i) {
      double* srow = scores.Row(i);
      const double yi = y.At(i, 0);
      for (size_t c = 0; c < m; ++c) {
        double s = srow[c] + intercepts[c];
        if (base.family == GlmFamily::kGaussian) {
          double r = s - yi;
          losses[c] += 0.5 * r * r;
          srow[c] = r;
        } else {
          double sign_y = yi > 0.5 ? 1.0 : -1.0;
          double margin = sign_y * s;
          losses[c] += margin > 0 ? std::log1p(std::exp(-margin))
                                  : -margin + std::log1p(std::exp(margin));
          srow[c] = ml::GlmInverseLink(s, base.family) - yi;
        }
        bias_grads[c] += srow[c];
      }
    }
    // Gradients for all models in one GEMM: G = Xᵀ R (d x m).
    DenseMatrix grads(d, m);
    for (size_t i = 0; i < n; ++i) {
      const double* xi = x.Row(i);
      const double* ri = scores.Row(i);
      for (size_t j = 0; j < d; ++j) la::Axpy(xi[j], ri, grads.Row(j), m);
    }
    for (size_t c = 0; c < m; ++c) {
      const GlmConfig& cfg = configs[c];
      double lr = cfg.learning_rate /
                  (1.0 + cfg.lr_decay * static_cast<double>(epoch));
      for (size_t j = 0; j < d; ++j) {
        w.At(j, c) -= lr * (grads.At(j, c) * inv_n + cfg.l2 * w.At(j, c));
      }
      if (cfg.fit_intercept) intercepts[c] -= lr * bias_grads[c] * inv_n;
      double loss = losses[c] * inv_n;
      if (cfg.l2 > 0) {
        double w2 = 0;
        for (size_t j = 0; j < d; ++j) w2 += w.At(j, c) * w.At(j, c);
        loss += 0.5 * cfg.l2 * w2;
      }
      loss_histories[c].push_back(loss);
    }
  }

  std::vector<GlmModel> models(m);
  for (size_t c = 0; c < m; ++c) {
    models[c].family = base.family;
    models[c].weights = w.Column(c);
    models[c].intercept = intercepts[c];
    models[c].loss_history = std::move(loss_histories[c]);
    models[c].epochs_run = base.max_epochs;
  }
  return models;
}

Result<GridSearchResult> GridSearchBatched(const DenseMatrix& x, const DenseMatrix& y,
                                           const GridSpec& grid, size_t k,
                                           uint64_t seed) {
  DMML_TRACE_SPAN("modelsel.grid_search_batched");
  Stopwatch watch;
  std::vector<GlmConfig> configs = grid.Expand();
  if (configs.empty()) return Status::InvalidArgument("grid search: empty grid");
  DMML_ASSIGN_OR_RETURN(KFold kf, KFold::Make(x.rows(), k, seed));

  std::vector<std::vector<double>> fold_scores(configs.size());
  for (size_t f = 0; f < k; ++f) {
    auto train_idx = kf.TrainingIndices(f);
    DenseMatrix xt = GatherRows(x, train_idx);
    DenseMatrix yt = GatherRows(y, train_idx);
    DenseMatrix xv = GatherRows(x, kf.ValidationIndices(f));
    DenseMatrix yv = GatherRows(y, kf.ValidationIndices(f));
    DMML_ASSIGN_OR_RETURN(std::vector<GlmModel> models,
                          BatchedTrainGlm(xt, yt, configs));
    for (size_t c = 0; c < configs.size(); ++c) {
      DMML_ASSIGN_OR_RETURN(double score, ScoreModel(models[c], xv, yv));
      fold_scores[c].push_back(score);
    }
  }

  GridSearchResult result;
  for (size_t c = 0; c < configs.size(); ++c) {
    result.scores.push_back(Summarize(configs[c], std::move(fold_scores[c])));
  }
  result.best_index = ArgBest(result.scores);
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace dmml::modelsel
