#include "modelsel/model_selection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "la/kernels.h"
#include "ml/metrics.h"
#include "ml/unified_trainers.h"
#include "modelsel/shared_scan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace dmml::modelsel {

using la::DenseMatrix;
using ml::GlmConfig;
using ml::GlmFamily;
using ml::GlmModel;

std::vector<GlmConfig> GridSpec::Expand() const {
  std::vector<GlmConfig> configs;
  configs.reserve(learning_rates.size() * l2_penalties.size());
  for (double lr : learning_rates) {
    for (double l2 : l2_penalties) {
      GlmConfig c = base;
      c.learning_rate = lr;
      c.l2 = l2;
      configs.push_back(c);
    }
  }
  return configs;
}

Result<KFold> KFold::Make(size_t n, size_t k, uint64_t seed) {
  if (k < 2 || k > n) return Status::InvalidArgument("k-fold: need 2 <= k <= n");
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&order);
  KFold kf;
  kf.folds_.resize(k);
  for (size_t i = 0; i < n; ++i) kf.folds_[i % k].push_back(order[i]);
  return kf;
}

std::vector<size_t> KFold::TrainingIndices(size_t f) const {
  std::vector<size_t> out;
  for (size_t g = 0; g < folds_.size(); ++g) {
    if (g == f) continue;
    out.insert(out.end(), folds_[g].begin(), folds_[g].end());
  }
  return out;
}

DenseMatrix GatherRows(const DenseMatrix& m, const std::vector<size_t>& rows) {
  DenseMatrix out(rows.size(), m.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::copy(m.Row(rows[i]), m.Row(rows[i]) + m.cols(), out.Row(i));
  }
  return out;
}

namespace {

// Higher-is-better score of a trained model on held-out data.
Result<double> ScoreModel(const GlmModel& model, const DenseMatrix& x,
                          const DenseMatrix& y) {
  if (model.family == GlmFamily::kBinomial) {
    DMML_ASSIGN_OR_RETURN(DenseMatrix labels, model.PredictLabels(x));
    return ml::Accuracy(y, labels);
  }
  DMML_ASSIGN_OR_RETURN(DenseMatrix pred, model.Predict(x));
  DMML_ASSIGN_OR_RETURN(double rmse, ml::Rmse(y, pred));
  return -rmse;
}

CvScore Summarize(const GlmConfig& config, std::vector<double> fold_scores) {
  CvScore score;
  score.config = config;
  score.fold_scores = std::move(fold_scores);
  double sum = 0;
  for (double s : score.fold_scores) sum += s;
  score.mean_score = sum / static_cast<double>(score.fold_scores.size());
  double var = 0;
  for (double s : score.fold_scores) {
    double d = s - score.mean_score;
    var += d * d;
  }
  score.std_score =
      std::sqrt(var / static_cast<double>(score.fold_scores.size()));
  return score;
}

size_t ArgBest(const std::vector<CvScore>& scores) {
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i].mean_score > scores[best].mean_score) best = i;
  }
  return best;
}

}  // namespace

Result<CvScore> CrossValidate(const DenseMatrix& x, const DenseMatrix& y,
                              const GlmConfig& config, size_t k, uint64_t seed,
                              ThreadPool* pool) {
  DMML_ASSIGN_OR_RETURN(KFold kf, KFold::Make(x.rows(), k, seed));
  std::vector<double> fold_scores;
  fold_scores.reserve(k);
  for (size_t f = 0; f < k; ++f) {
    auto train_idx = kf.TrainingIndices(f);
    DenseMatrix xt = GatherRows(x, train_idx);
    DenseMatrix yt = GatherRows(y, train_idx);
    DenseMatrix xv = GatherRows(x, kf.ValidationIndices(f));
    DenseMatrix yv = GatherRows(y, kf.ValidationIndices(f));
    DMML_ASSIGN_OR_RETURN(GlmModel model, ml::TrainGlm(xt, yt, config, pool));
    DMML_ASSIGN_OR_RETURN(double score, ScoreModel(model, xv, yv));
    fold_scores.push_back(score);
  }
  return Summarize(config, std::move(fold_scores));
}

Result<GridSearchResult> GridSearchSequential(const DenseMatrix& x,
                                              const DenseMatrix& y,
                                              const GridSpec& grid, size_t k,
                                              uint64_t seed, ThreadPool* pool) {
  DMML_TRACE_SPAN("modelsel.grid_search");
  Stopwatch watch;
  GridSearchResult result;
  for (const GlmConfig& config : grid.Expand()) {
    DMML_ASSIGN_OR_RETURN(CvScore score,
                          CrossValidate(x, y, config, k, seed, pool));
    DMML_COUNTER_INC("modelsel.configs_evaluated");
    result.scores.push_back(std::move(score));
  }
  if (result.scores.empty()) {
    return Status::InvalidArgument("grid search: empty grid");
  }
  result.best_index = ArgBest(result.scores);
  result.seconds = watch.ElapsedSeconds();
  return result;
}

Result<std::vector<GlmModel>> BatchedTrainGlm(const DenseMatrix& x,
                                              const DenseMatrix& y,
                                              const std::vector<GlmConfig>& configs,
                                              ThreadPool* pool) {
  return BatchedTrainGlm(ml::BorrowOperand(x), y, configs, pool);
}

Result<std::vector<GlmModel>> BatchedTrainGlm(const laopt::Operand& x,
                                              const DenseMatrix& y,
                                              const std::vector<GlmConfig>& configs,
                                              ThreadPool* pool) {
  if (configs.empty()) return Status::InvalidArgument("batched train: no configs");
  DMML_TRACE_SPAN("modelsel.batched_train");
  DMML_COUNTER_ADD("modelsel.configs_evaluated", configs.size());
  // One degenerate "fold" whose validation range is empty: every row is a
  // training row, and the shared-scan engine runs one X·W and one Xᵀ·R per
  // epoch for all configurations (one weight column each).
  const std::vector<FoldRange> all_rows = {{x.rows(), x.rows()}};
  DMML_ASSIGN_OR_RETURN(SharedScanResult trained,
                        SharedScanTrain(x, y, all_rows, configs, pool));
  SharedScanFold& fold = trained.folds.front();
  const size_t m = configs.size();
  std::vector<GlmModel> models(m);
  for (size_t c = 0; c < m; ++c) {
    models[c].family = configs.front().family;
    models[c].weights = fold.weights.Column(c);
    models[c].intercept = fold.intercepts[c];
    models[c].loss_history = std::move(fold.loss_histories[c]);
    models[c].epochs_run = trained.epochs_run;
  }
  return models;
}

Result<GridSearchResult> GridSearchBatched(const DenseMatrix& x, const DenseMatrix& y,
                                           const GridSpec& grid, size_t k,
                                           uint64_t seed, ThreadPool* pool) {
  DMML_TRACE_SPAN("modelsel.grid_search_batched");
  Stopwatch watch;
  std::vector<GlmConfig> configs = grid.Expand();
  if (configs.empty()) return Status::InvalidArgument("grid search: empty grid");
  DMML_ASSIGN_OR_RETURN(KFold kf, KFold::Make(x.rows(), k, seed));
  DMML_COUNTER_ADD("modelsel.configs_evaluated", configs.size() * k);

  // Permute once so every fold is a contiguous row range, then train all
  // folds × all configs as one shared-scan rung: leave-one-fold-out training
  // reads X through zero-copy row windows — the per-fold GatherRows of the
  // historical implementation is gone from the hot path.
  const ContiguousFolds cf = MakeContiguousFolds(kf);
  const DenseMatrix xp = GatherRows(x, cf.order);
  const DenseMatrix yp = GatherRows(y, cf.order);
  const laopt::Operand xp_op = ml::BorrowOperand(xp);
  DMML_ASSIGN_OR_RETURN(SharedScanResult trained,
                        SharedScanTrain(xp_op, yp, cf.folds, configs, pool));

  const bool binomial = grid.base.family == GlmFamily::kBinomial;
  const FoldMetric metric =
      binomial ? FoldMetric::kAccuracy : FoldMetric::kNegRmse;
  std::vector<std::vector<double>> fold_scores(configs.size());
  for (size_t f = 0; f < k; ++f) {
    const SharedScanFold& fold = trained.folds[f];
    DMML_ASSIGN_OR_RETURN(
        std::vector<double> scores,
        ScoreConfigsOnWindow(xp_op, yp, cf.folds[f].begin, cf.folds[f].end,
                             fold.weights, fold.intercepts, grid.base.family,
                             metric, pool));
    for (size_t c = 0; c < configs.size(); ++c) {
      fold_scores[c].push_back(scores[c]);
    }
  }

  GridSearchResult result;
  for (size_t c = 0; c < configs.size(); ++c) {
    result.scores.push_back(Summarize(configs[c], std::move(fold_scores[c])));
  }
  result.best_index = ArgBest(result.scores);
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace dmml::modelsel
