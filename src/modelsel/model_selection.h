/// \file model_selection.h
/// \brief Model-selection management: hyperparameter grids, k-fold
/// cross-validation, and batched multi-configuration training.
///
/// The batched trainer implements the Columbus/MSMS observation the target
/// tutorial presents: exploring k model configurations as one *batch* shares
/// every scan of the training data — scores for all models come from one
/// X·W GEMM (W holding one weight column per configuration) instead of k
/// separate GEMVs, and gradients from one Xᵀ·R GEMM. The speedup over
/// sequential exploration grows with k.
///
/// Batched training and batched grid search run on the shared-scan rung
/// engine (modelsel/shared_scan.h): X may be bound to any physical
/// representation via a laopt::Operand, folds are contiguous row ranges of a
/// once-permuted copy (no per-fold GatherRows), and every epoch's linear
/// algebra executes as wide multi-root laopt plans on a shared thread pool.
#ifndef DMML_MODELSEL_MODEL_SELECTION_H_
#define DMML_MODELSEL_MODEL_SELECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "la/dense_matrix.h"
#include "laopt/operand.h"
#include "ml/glm.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace dmml::modelsel {

/// \brief A hyperparameter grid over GLM learning rates and L2 strengths.
struct GridSpec {
  ml::GlmConfig base;                 ///< Family, epochs, solver etc.
  std::vector<double> learning_rates;
  std::vector<double> l2_penalties;

  /// \brief Cartesian-product expansion into concrete configs.
  std::vector<ml::GlmConfig> Expand() const;
};

/// \brief Deterministic k-fold index split.
struct KFold {
  /// \param n examples, \param k folds (2 <= k <= n), \param seed shuffle seed.
  static Result<KFold> Make(size_t n, size_t k, uint64_t seed);

  /// \brief Row indices of fold `f` (the validation part).
  const std::vector<size_t>& ValidationIndices(size_t f) const { return folds_[f]; }

  /// \brief All row indices not in fold `f`.
  std::vector<size_t> TrainingIndices(size_t f) const;

  size_t num_folds() const { return folds_.size(); }

 private:
  std::vector<std::vector<size_t>> folds_;
};

/// \brief Gathers the given rows of x (and y) into dense copies.
la::DenseMatrix GatherRows(const la::DenseMatrix& m, const std::vector<size_t>& rows);

/// \brief Cross-validation outcome of one configuration.
struct CvScore {
  ml::GlmConfig config;
  double mean_score = 0;  ///< Higher is better (negated RMSE for Gaussian).
  double std_score = 0;
  std::vector<double> fold_scores;
};

/// \brief k-fold CV of one config. Score = accuracy (Binomial) or -RMSE
/// (Gaussian), so that higher is always better. Fold models train on `pool`.
Result<CvScore> CrossValidate(const la::DenseMatrix& x, const la::DenseMatrix& y,
                              const ml::GlmConfig& config, size_t k, uint64_t seed,
                              ThreadPool* pool = GlobalThreadPool());

/// \brief Result of a grid search.
struct GridSearchResult {
  std::vector<CvScore> scores;  ///< One per config, input order.
  size_t best_index = 0;
  double seconds = 0;
};

/// \brief Sequential baseline: CV of each configuration independently.
Result<GridSearchResult> GridSearchSequential(const la::DenseMatrix& x,
                                              const la::DenseMatrix& y,
                                              const GridSpec& grid, size_t k,
                                              uint64_t seed,
                                              ThreadPool* pool = GlobalThreadPool());

/// \brief Trains many GLM configurations *simultaneously* with shared data
/// scans (one GEMM per epoch for all models). All configs must share family,
/// max_epochs and fit_intercept; lr, l2 and lr_decay may differ per config.
Result<std::vector<ml::GlmModel>> BatchedTrainGlm(
    const la::DenseMatrix& x, const la::DenseMatrix& y,
    const std::vector<ml::GlmConfig>& configs,
    ThreadPool* pool = GlobalThreadPool());

/// \brief Representation-polymorphic batched training: X may be bound
/// dense, CSR-sparse, or CLA-compressed; the shared scans run on the
/// binding's native kernels through the laopt executor.
Result<std::vector<ml::GlmModel>> BatchedTrainGlm(
    const laopt::Operand& x, const la::DenseMatrix& y,
    const std::vector<ml::GlmConfig>& configs,
    ThreadPool* pool = GlobalThreadPool());

/// \brief Batched grid search on the shared-scan engine: X and y are
/// permuted once so every fold is a contiguous row range, then each epoch
/// trains every configuration of every fold through wide multi-root laopt
/// plans — one shared scan per epoch per fold, no per-fold row gathers.
Result<GridSearchResult> GridSearchBatched(const la::DenseMatrix& x,
                                           const la::DenseMatrix& y,
                                           const GridSpec& grid, size_t k,
                                           uint64_t seed,
                                           ThreadPool* pool = GlobalThreadPool());

}  // namespace dmml::modelsel

#endif  // DMML_MODELSEL_MODEL_SELECTION_H_
