/// \file successive_halving.h
/// \brief Bandit-style hyperparameter search (TuPAQ / Hyperband family).
///
/// Instead of giving every configuration the full epoch budget (grid
/// search), successive halving trains all survivors for a small budget,
/// keeps the best 1/eta fraction, multiplies the budget by eta and repeats.
/// Each rung trains its survivors *as one batch* on the shared-scan engine
/// (modelsel/shared_scan.h): the data is permuted once so the validation
/// split is a contiguous row range, and every rung epoch is one X·W plus one
/// Xᵀ·R over the training window — compounding the Columbus-style win with
/// the bandit-style win.
#ifndef DMML_MODELSEL_SUCCESSIVE_HALVING_H_
#define DMML_MODELSEL_SUCCESSIVE_HALVING_H_

#include <vector>

#include "la/dense_matrix.h"
#include "ml/glm.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace dmml::modelsel {

/// \brief Successive-halving controls.
struct HalvingConfig {
  size_t min_epochs = 4;    ///< Budget of the first rung.
  double eta = 2.0;         ///< Keep top 1/eta per rung; budget *= eta.
  double validation_fraction = 0.2;  ///< Held-out fraction for rung scoring.
  uint64_t seed = 42;
};

/// \brief One rung of the schedule, for reporting.
struct HalvingRung {
  size_t epochs;                  ///< Budget each survivor received so far.
  std::vector<size_t> survivors;  ///< Indices into the original config list.
  std::vector<double> scores;     ///< Validation score per survivor.
};

/// \brief Search outcome.
struct HalvingResult {
  size_t best_index = 0;          ///< Winner in the original config list.
  ml::GlmModel best_model;        ///< Winner retrained on all data.
  std::vector<HalvingRung> rungs;
  size_t total_epoch_equivalents = 0;  ///< Σ (configs alive × epochs granted).
};

/// \brief Runs successive halving over GLM configurations (all must share
/// family and fit_intercept; max_epochs is overridden by the schedule).
/// Rung training and scoring run on `pool` via the shared-scan engine.
Result<HalvingResult> SuccessiveHalving(const la::DenseMatrix& x,
                                        const la::DenseMatrix& y,
                                        std::vector<ml::GlmConfig> configs,
                                        const HalvingConfig& config = {},
                                        ThreadPool* pool = GlobalThreadPool());

}  // namespace dmml::modelsel

#endif  // DMML_MODELSEL_SUCCESSIVE_HALVING_H_
