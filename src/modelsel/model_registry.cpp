#include "modelsel/model_registry.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <sstream>

#include "util/string_utils.h"

namespace dmml::modelsel {

namespace {

Status EnsureDir(const std::string& path) {
  struct stat st;
  if (stat(path.c_str(), &st) == 0) {
    if (S_ISDIR(st.st_mode)) return Status::OK();
    return Status::IOError("not a directory: " + path);
  }
  if (mkdir(path.c_str(), 0755) != 0) {
    return Status::IOError("cannot create directory: " + path);
  }
  return Status::OK();
}

bool ValidName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') {
      return false;
    }
  }
  return true;
}

std::vector<std::string> ListDir(const std::string& path) {
  std::vector<std::string> out;
  DIR* dir = opendir(path.c_str());
  if (!dir) return out;
  while (dirent* entry = readdir(dir)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") out.push_back(name);
  }
  closedir(dir);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Result<ModelRegistry> ModelRegistry::Open(const std::string& root) {
  DMML_RETURN_IF_ERROR(EnsureDir(root));
  return ModelRegistry(root);
}

std::string ModelRegistry::ModelDir(const std::string& name) const {
  return root_ + "/" + name;
}

std::string ModelRegistry::VersionPath(const std::string& name, size_t version) const {
  return ModelDir(name) + "/v" + std::to_string(version) + ".model";
}

std::vector<std::string> ModelRegistry::ListModels() const { return ListDir(root_); }

std::vector<size_t> ModelRegistry::ListVersions(const std::string& name) const {
  std::vector<size_t> versions;
  for (const auto& file : ListDir(ModelDir(name))) {
    if (StartsWith(file, "v") && file.size() > 7 &&
        file.substr(file.size() - 6) == ".model") {
      auto v = ParseInt64(file.substr(1, file.size() - 7));
      if (v.ok() && *v > 0) versions.push_back(static_cast<size_t>(*v));
    }
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

Result<size_t> ModelRegistry::Save(const std::string& name, const ml::GlmModel& model,
                                   const std::map<std::string, std::string>& tags) {
  if (!ValidName(name)) {
    return Status::InvalidArgument("model names must be [A-Za-z0-9_-]+: " + name);
  }
  if (model.weights.rows() == 0) {
    return Status::InvalidArgument("refusing to save an untrained model");
  }
  DMML_RETURN_IF_ERROR(EnsureDir(ModelDir(name)));
  auto versions = ListVersions(name);
  size_t version = versions.empty() ? 1 : versions.back() + 1;

  std::ofstream out(VersionPath(name, version));
  if (!out) return Status::IOError("cannot write model file");
  out.precision(17);
  out << "format dmml-glm-1\n";
  out << "name " << name << "\n";
  out << "version " << version << "\n";
  out << "family "
      << (model.family == ml::GlmFamily::kBinomial ? "binomial" : "gaussian") << "\n";
  out << "num_features " << model.weights.rows() << "\n";
  out << "intercept " << model.intercept << "\n";
  for (const auto& [key, value] : tags) {
    if (key.find(' ') != std::string::npos || value.find('\n') != std::string::npos) {
      return Status::InvalidArgument("tag keys must not contain spaces; values "
                                     "must be single-line");
    }
    out << "tag " << key << " " << value << "\n";
  }
  out << "weights";
  for (size_t j = 0; j < model.weights.rows(); ++j) {
    out << " " << model.weights.At(j, 0);
  }
  out << "\n";
  if (!out) return Status::IOError("model write failed");
  return version;
}

namespace {

struct ParsedModel {
  ModelRecord record;
  ml::GlmModel model;
};

Result<ParsedModel> ParseModelFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("no model file: " + path);
  ParsedModel out;
  std::string line;
  bool got_weights = false;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "format") {
      std::string fmt;
      ls >> fmt;
      if (fmt != "dmml-glm-1") return Status::InvalidArgument("unknown format " + fmt);
    } else if (key == "name") {
      ls >> out.record.name;
    } else if (key == "version") {
      ls >> out.record.version;
    } else if (key == "family") {
      std::string family;
      ls >> family;
      out.record.family = family == "binomial" ? ml::GlmFamily::kBinomial
                                               : ml::GlmFamily::kGaussian;
      out.model.family = out.record.family;
    } else if (key == "num_features") {
      ls >> out.record.num_features;
    } else if (key == "intercept") {
      ls >> out.model.intercept;
    } else if (key == "tag") {
      std::string tag_key;
      ls >> tag_key;
      std::string value;
      std::getline(ls, value);
      out.record.tags[tag_key] = std::string(Trim(value));
    } else if (key == "weights") {
      std::vector<double> w;
      double v;
      while (ls >> v) w.push_back(v);
      out.model.weights = la::DenseMatrix::ColumnVector(std::move(w));
      got_weights = true;
    }
  }
  if (!got_weights || out.model.weights.rows() != out.record.num_features) {
    return Status::InvalidArgument("corrupt model file: " + path);
  }
  return out;
}

}  // namespace

Result<ml::GlmModel> ModelRegistry::Load(const std::string& name,
                                         size_t version) const {
  DMML_ASSIGN_OR_RETURN(ModelRecord record, GetRecord(name, version));
  DMML_ASSIGN_OR_RETURN(ParsedModel parsed,
                        ParseModelFile(VersionPath(name, record.version)));
  return parsed.model;
}

Result<ModelRecord> ModelRegistry::GetRecord(const std::string& name,
                                             size_t version) const {
  auto versions = ListVersions(name);
  if (versions.empty()) return Status::NotFound("no model named " + name);
  size_t resolved = version == 0 ? versions.back() : version;
  if (std::find(versions.begin(), versions.end(), resolved) == versions.end()) {
    return Status::NotFound("no version " + std::to_string(resolved) + " of " + name);
  }
  DMML_ASSIGN_OR_RETURN(ParsedModel parsed,
                        ParseModelFile(VersionPath(name, resolved)));
  return parsed.record;
}

}  // namespace dmml::modelsel
