/// \file shared_scan.h
/// \brief The shared-scan rung engine: one pass over X trains every
/// configuration in the rung, over any physical representation of X.
///
/// This is the Columbus/MSMS observation taken to its laopt conclusion. A
/// rung of k GLM configurations (shared family / epoch budget / intercept
/// flag; heterogeneous learning rate, L2 and lr-decay) trains as ONE
/// d x k weight matrix W: an epoch costs one X·W product and one Xᵀ·R
/// product per fold — dense GEMM, CSR, or CLA ranged kernels, picked by the
/// representation X is bound to — instead of k separate passes. Per-config
/// hyperparameter heterogeneity is column-wise scaling (laopt's
/// kScaleColumns node), so W stays dense and the update is pure linear
/// algebra:
///
///   W' = W − ( G · diag(lr ∘ 1/n)  +  W · diag(lr ∘ λ) )
///
/// Cross-validation folds are contiguous row ranges of a once-permuted X:
/// fold f's validation rows are [begin, end), its training rows the two
/// windows [0, begin) and [end, n). Leave-one-fold-out training binds those
/// windows as zero-copy laopt::Operand row slices — the executor's ranged
/// kernels read X in place; no GatherRows on the hot path. Each rung is a
/// wide multi-root laopt plan (per-fold score and update roots sharing the
/// bound X payload) executed by BufferedExecutor::RunMany, so the
/// inter-node scheduler overlaps fold branches on one thread pool.
///
/// Observability: `modelsel.shared.rungs`, `modelsel.shared.configs_per_scan`
/// and `modelsel.shared.epochs_saved` counters, plus the
/// `modelsel.rung_width` histogram.
#ifndef DMML_MODELSEL_SHARED_SCAN_H_
#define DMML_MODELSEL_SHARED_SCAN_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "laopt/operand.h"
#include "ml/glm.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace dmml::modelsel {

struct KFold;

/// \brief One fold's validation rows as a contiguous range [begin, end) of
/// the (pre-permuted) data. Training rows are the complement windows
/// [0, begin) and [end, n). An empty range (begin == end) means "no held-out
/// rows": the fold trains on all n rows (the train-everything degenerate
/// case BatchedTrainGlm uses).
struct FoldRange {
  size_t begin = 0;
  size_t end = 0;
};

/// \brief Per-fold output of a shared-scan rung: one weight column, one
/// intercept and one loss history per configuration.
struct SharedScanFold {
  la::DenseMatrix weights;                          ///< d x k, column c = config c.
  std::vector<double> intercepts;                   ///< k entries.
  std::vector<std::vector<double>> loss_histories;  ///< k histories.
};

/// \brief Result of one shared-scan rung over every fold.
struct SharedScanResult {
  std::vector<SharedScanFold> folds;  ///< One per input FoldRange, in order.
  size_t epochs_run = 0;              ///< == configs' shared max_epochs.
};

/// \brief Trains every configuration of the rung simultaneously on each
/// fold's training windows (full-batch gradient descent, exactly the
/// BatchedTrainGlm recurrence). All configs must share family, max_epochs
/// and fit_intercept; learning_rate, l2 and lr_decay may differ per config.
/// `x` may be bound to any representation; `y` is n x 1 in the same (already
/// permuted) row order. Steady-state epochs are allocation-free: leaf
/// payloads are mutated in place and executor buffers persist across epochs.
Result<SharedScanResult> SharedScanTrain(const laopt::Operand& x,
                                         const la::DenseMatrix& y,
                                         const std::vector<FoldRange>& folds,
                                         const std::vector<ml::GlmConfig>& configs,
                                         ThreadPool* pool = GlobalThreadPool());

/// \brief Higher-is-better validation metric for rung/fold scoring.
enum class FoldMetric {
  kAccuracy,    ///< Binomial label accuracy at threshold 0.5 (CV scoring).
  kNegLogLoss,  ///< Negated binary log loss (halving rung scoring).
  kNegRmse,     ///< Negated RMSE (Gaussian scoring).
};

/// \brief Scores all k configurations on validation rows [row_begin,
/// row_end) of `x` without gathering: one ranged X·W product feeds every
/// config's predictions. Returns one score per config (weights column).
Result<std::vector<double>> ScoreConfigsOnWindow(
    const laopt::Operand& x, const la::DenseMatrix& y, size_t row_begin,
    size_t row_end, const la::DenseMatrix& weights,
    const std::vector<double>& intercepts, ml::GlmFamily family,
    FoldMetric metric, ThreadPool* pool = GlobalThreadPool());

/// \brief The once-up-front permutation that makes a KFold's folds
/// contiguous: `order` concatenates the validation index lists of folds
/// 0..k-1, so after gathering rows in `order`, fold f's validation rows are
/// exactly `folds[f]` and its training rows — the windows around them — are
/// the same rows, in the same order, as KFold::TrainingIndices(f).
struct ContiguousFolds {
  std::vector<size_t> order;     ///< Permuted row i holds original row order[i].
  std::vector<FoldRange> folds;  ///< Validation ranges, one per fold.
};

/// \brief Builds the contiguous-fold permutation of `kf`.
ContiguousFolds MakeContiguousFolds(const KFold& kf);

}  // namespace dmml::modelsel

#endif  // DMML_MODELSEL_SHARED_SCAN_H_
