/// \file model_registry.h
/// \brief Disk-backed model management (the ModelDB / ModelHub concern the
/// target tutorial surveys): versioned storage of trained GLMs with
/// metadata, listing, and retrieval.
#ifndef DMML_MODELSEL_MODEL_REGISTRY_H_
#define DMML_MODELSEL_MODEL_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "ml/glm.h"
#include "util/result.h"

namespace dmml::modelsel {

/// \brief Metadata stored next to every model version.
struct ModelRecord {
  std::string name;
  size_t version = 0;
  ml::GlmFamily family = ml::GlmFamily::kGaussian;
  size_t num_features = 0;
  std::map<std::string, std::string> tags;  ///< Free-form key/value pairs
                                            ///< (dataset, metric scores, ...).
};

/// \brief A directory of versioned GLM models.
///
/// Layout: <root>/<name>/v<k>.model — a line-oriented text format holding
/// the record and the parameters. Versions are append-only; saving a name
/// again creates version latest+1.
class ModelRegistry {
 public:
  /// \brief Opens (creating if needed) a registry rooted at `root`.
  static Result<ModelRegistry> Open(const std::string& root);

  /// \brief Persists a model under `name`; returns the assigned version.
  Result<size_t> Save(const std::string& name, const ml::GlmModel& model,
                      const std::map<std::string, std::string>& tags = {});

  /// \brief Loads version `version` of `name` (0 = latest).
  Result<ml::GlmModel> Load(const std::string& name, size_t version = 0) const;

  /// \brief Metadata of a stored version (0 = latest).
  Result<ModelRecord> GetRecord(const std::string& name, size_t version = 0) const;

  /// \brief All model names in the registry, sorted.
  std::vector<std::string> ListModels() const;

  /// \brief Stored versions of `name`, ascending (empty if unknown).
  std::vector<size_t> ListVersions(const std::string& name) const;

  const std::string& root() const { return root_; }

 private:
  explicit ModelRegistry(std::string root) : root_(std::move(root)) {}

  std::string ModelDir(const std::string& name) const;
  std::string VersionPath(const std::string& name, size_t version) const;

  std::string root_;
};

}  // namespace dmml::modelsel

#endif  // DMML_MODELSEL_MODEL_REGISTRY_H_
