#include "modelsel/successive_halving.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/metrics.h"
#include "modelsel/model_selection.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace dmml::modelsel {

using la::DenseMatrix;
using ml::GlmConfig;
using ml::GlmFamily;
using ml::GlmModel;

namespace {

// Rung score (higher is better). Binomial uses negative log-loss rather
// than accuracy: early-rung models trained with different learning rates
// often share the same decision *direction* (and thus the same accuracy),
// while their probability calibration — which log-loss sees — already
// separates them.
Result<double> ScoreModel(const GlmModel& model, const DenseMatrix& x,
                          const DenseMatrix& y) {
  if (model.family == GlmFamily::kBinomial) {
    DMML_ASSIGN_OR_RETURN(DenseMatrix probs, model.Predict(x));
    DMML_ASSIGN_OR_RETURN(double loss, ml::LogLoss(y, probs));
    return -loss;
  }
  DMML_ASSIGN_OR_RETURN(DenseMatrix pred, model.Predict(x));
  DMML_ASSIGN_OR_RETURN(double rmse, ml::Rmse(y, pred));
  return -rmse;
}

}  // namespace

Result<HalvingResult> SuccessiveHalving(const DenseMatrix& x, const DenseMatrix& y,
                                        std::vector<GlmConfig> configs,
                                        const HalvingConfig& config) {
  if (configs.empty()) {
    return Status::InvalidArgument("successive halving: no configurations");
  }
  if (config.eta <= 1.0) {
    return Status::InvalidArgument("successive halving: eta must exceed 1");
  }
  if (config.min_epochs == 0) {
    return Status::InvalidArgument("successive halving: min_epochs >= 1");
  }
  DMML_TRACE_SPAN("modelsel.halving");
  if (config.validation_fraction <= 0 || config.validation_fraction >= 1) {
    return Status::InvalidArgument("successive halving: validation_fraction in (0,1)");
  }
  const size_t n = x.rows();
  if (n < 4) return Status::InvalidArgument("successive halving: too few rows");

  // Shuffled train/validation split.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(config.seed);
  rng.Shuffle(&order);
  size_t val_size = std::max<size_t>(
      1, static_cast<size_t>(config.validation_fraction * static_cast<double>(n)));
  std::vector<size_t> val_idx(order.begin(), order.begin() + val_size);
  std::vector<size_t> train_idx(order.begin() + val_size, order.end());
  DenseMatrix xt = GatherRows(x, train_idx);
  DenseMatrix yt = GatherRows(y, train_idx);
  DenseMatrix xv = GatherRows(x, val_idx);
  DenseMatrix yv = GatherRows(y, val_idx);

  HalvingResult result;
  std::vector<size_t> alive(configs.size());
  std::iota(alive.begin(), alive.end(), 0);

  size_t epochs = config.min_epochs;
  while (true) {
    // Batched training of all survivors from scratch at this rung's budget.
    std::vector<GlmConfig> rung_configs;
    rung_configs.reserve(alive.size());
    for (size_t idx : alive) {
      GlmConfig c = configs[idx];
      c.max_epochs = epochs;
      c.tolerance = 0;
      rung_configs.push_back(c);
    }
    DMML_ASSIGN_OR_RETURN(std::vector<GlmModel> models,
                          BatchedTrainGlm(xt, yt, rung_configs));
    result.total_epoch_equivalents += alive.size() * epochs;

    HalvingRung rung;
    rung.epochs = epochs;
    rung.survivors = alive;
    for (const auto& model : models) {
      DMML_ASSIGN_OR_RETURN(double score, ScoreModel(model, xv, yv));
      rung.scores.push_back(score);
    }
    result.rungs.push_back(rung);

    if (alive.size() == 1) break;

    // Keep the top ceil(|alive| / eta).
    std::vector<size_t> rank(alive.size());
    std::iota(rank.begin(), rank.end(), 0);
    std::sort(rank.begin(), rank.end(), [&](size_t a, size_t b) {
      return rung.scores[a] > rung.scores[b];
    });
    size_t keep = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(static_cast<double>(alive.size()) / config.eta)));
    std::vector<size_t> next;
    next.reserve(keep);
    for (size_t r = 0; r < keep; ++r) next.push_back(alive[rank[r]]);
    DMML_COUNTER_ADD("modelsel.configs_pruned", alive.size() - keep);
    alive = std::move(next);
    epochs = static_cast<size_t>(
        std::ceil(static_cast<double>(epochs) * config.eta));
  }

  result.best_index = alive.front();
  GlmConfig final_config = configs[result.best_index];
  final_config.max_epochs = epochs;
  final_config.tolerance = 0;
  DMML_ASSIGN_OR_RETURN(std::vector<GlmModel> final_models,
                        BatchedTrainGlm(x, y, {final_config}));
  result.best_model = std::move(final_models.front());
  return result;
}

}  // namespace dmml::modelsel
