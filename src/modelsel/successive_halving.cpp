#include "modelsel/successive_halving.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/unified_trainers.h"
#include "modelsel/model_selection.h"
#include "modelsel/shared_scan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace dmml::modelsel {

using la::DenseMatrix;
using ml::GlmConfig;
using ml::GlmFamily;
using ml::GlmModel;

Result<HalvingResult> SuccessiveHalving(const DenseMatrix& x, const DenseMatrix& y,
                                        std::vector<GlmConfig> configs,
                                        const HalvingConfig& config,
                                        ThreadPool* pool) {
  if (configs.empty()) {
    return Status::InvalidArgument("successive halving: no configurations");
  }
  if (config.eta <= 1.0) {
    return Status::InvalidArgument("successive halving: eta must exceed 1");
  }
  if (config.min_epochs == 0) {
    return Status::InvalidArgument("successive halving: min_epochs >= 1");
  }
  DMML_TRACE_SPAN("modelsel.halving");
  if (config.validation_fraction <= 0 || config.validation_fraction >= 1) {
    return Status::InvalidArgument("successive halving: validation_fraction in (0,1)");
  }
  const size_t n = x.rows();
  if (n < 4) return Status::InvalidArgument("successive halving: too few rows");

  // Shuffled split, laid out as one permuted copy: validation rows first as
  // the contiguous range [0, val_size), training rows after it. Every rung
  // then trains through the [val_size, n) window and scores through the
  // [0, val_size) window of the same operand — no per-rung row gathers.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(config.seed);
  rng.Shuffle(&order);
  size_t val_size = std::max<size_t>(
      1, static_cast<size_t>(config.validation_fraction * static_cast<double>(n)));
  DenseMatrix xp = GatherRows(x, order);
  DenseMatrix yp = GatherRows(y, order);
  const laopt::Operand xp_op = ml::BorrowOperand(xp);
  const std::vector<FoldRange> split = {{0, val_size}};
  // Binomial rungs score by negative log-loss rather than accuracy:
  // early-rung models trained with different learning rates often share the
  // same decision *direction* (and thus the same accuracy), while their
  // probability calibration — which log-loss sees — already separates them.
  const GlmFamily family = configs.front().family;
  const FoldMetric metric = family == GlmFamily::kBinomial
                                ? FoldMetric::kNegLogLoss
                                : FoldMetric::kNegRmse;

  HalvingResult result;
  std::vector<size_t> alive(configs.size());
  std::iota(alive.begin(), alive.end(), 0);

  size_t epochs = config.min_epochs;
  while (true) {
    // Shared-scan training of all survivors from scratch at this rung's
    // budget: one wide plan per epoch covers every survivor.
    std::vector<GlmConfig> rung_configs;
    rung_configs.reserve(alive.size());
    for (size_t idx : alive) {
      GlmConfig c = configs[idx];
      c.max_epochs = epochs;
      c.tolerance = 0;
      rung_configs.push_back(c);
    }
    DMML_ASSIGN_OR_RETURN(SharedScanResult trained,
                          SharedScanTrain(xp_op, yp, split, rung_configs, pool));
    result.total_epoch_equivalents += alive.size() * epochs;

    HalvingRung rung;
    rung.epochs = epochs;
    rung.survivors = alive;
    const SharedScanFold& fold = trained.folds.front();
    DMML_ASSIGN_OR_RETURN(
        rung.scores,
        ScoreConfigsOnWindow(xp_op, yp, 0, val_size, fold.weights,
                             fold.intercepts, family, metric, pool));
    result.rungs.push_back(rung);

    if (alive.size() == 1) break;

    // Keep the top ceil(|alive| / eta).
    std::vector<size_t> rank(alive.size());
    std::iota(rank.begin(), rank.end(), 0);
    std::sort(rank.begin(), rank.end(), [&](size_t a, size_t b) {
      return rung.scores[a] > rung.scores[b];
    });
    size_t keep = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(static_cast<double>(alive.size()) / config.eta)));
    std::vector<size_t> next;
    next.reserve(keep);
    for (size_t r = 0; r < keep; ++r) next.push_back(alive[rank[r]]);
    DMML_COUNTER_ADD("modelsel.configs_pruned", alive.size() - keep);
    alive = std::move(next);
    epochs = static_cast<size_t>(
        std::ceil(static_cast<double>(epochs) * config.eta));
  }

  result.best_index = alive.front();
  GlmConfig final_config = configs[result.best_index];
  final_config.max_epochs = epochs;
  final_config.tolerance = 0;
  DMML_ASSIGN_OR_RETURN(std::vector<GlmModel> final_models,
                        BatchedTrainGlm(x, y, {final_config}, pool));
  result.best_model = std::move(final_models.front());
  return result;
}

}  // namespace dmml::modelsel
