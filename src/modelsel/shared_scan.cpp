#include "modelsel/shared_scan.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "la/kernels.h"
#include "laopt/executor.h"
#include "laopt/expr.h"
#include "ml/metrics.h"
#include "modelsel/model_selection.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::modelsel {

using la::DenseMatrix;
using laopt::BufferedExecutor;
using laopt::ExprNode;
using laopt::ExprPtr;
using laopt::Operand;
using laopt::Repr;
using ml::GlmConfig;
using ml::GlmFamily;

namespace {

// The compiled per-fold slice of the rung's wide plan. Leaf payloads (W, the
// residual windows, the per-config step/decay row vectors) are mutated in
// place between executor runs; the expression nodes are built once per rung.
struct FoldProgram {
  std::shared_ptr<DenseMatrix> w;      // d x k weight matrix.
  std::shared_ptr<DenseMatrix> r_lo;   // Window-relative residuals, [0, begin).
  std::shared_ptr<DenseMatrix> r_hi;   // Window-relative residuals, [end, n).
  std::shared_ptr<DenseMatrix> step;   // 1 x k: lr_c / n_train.
  std::shared_ptr<DenseMatrix> decay;  // 1 x k: lr_c * l2_c.
  ExprPtr score_lo;                    // Phase A root: X[0,b) %*% W.
  ExprPtr score_hi;                    // Phase A root: X[e,n) %*% W.
  ExprPtr update;                      // Phase B root: W'.
  int a_lo = -1, a_hi = -1;            // Indices into the phase A root list.
  size_t lo_rows = 0;                  // begin.
  size_t hi_begin = 0, hi_rows = 0;    // end, n - end.
  double inv_n = 0;                    // 1 / n_train.
};

Status ValidateRung(const Operand& x, const DenseMatrix& y,
                    const std::vector<FoldRange>& folds,
                    const std::vector<GlmConfig>& configs) {
  if (!x.bound()) return Status::InvalidArgument("shared scan: unbound X");
  const size_t n = x.rows(), d = x.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("shared scan: empty data");
  if (y.rows() != n || y.cols() != 1) {
    return Status::InvalidArgument("shared scan: y must be n x 1");
  }
  if (folds.empty()) return Status::InvalidArgument("shared scan: no folds");
  for (const FoldRange& f : folds) {
    if (f.begin > f.end || f.end > n) {
      return Status::InvalidArgument("shared scan: bad fold range");
    }
    if (f.end - f.begin >= n) {
      return Status::InvalidArgument("shared scan: fold leaves no training rows");
    }
  }
  if (configs.empty()) return Status::InvalidArgument("shared scan: no configs");
  const GlmConfig& base = configs.front();
  for (const auto& c : configs) {
    if (c.family != base.family || c.max_epochs != base.max_epochs ||
        c.fit_intercept != base.fit_intercept) {
      return Status::InvalidArgument(
          "shared scan: configs must share family, epochs and intercept");
    }
    if (c.learning_rate <= 0) {
      return Status::InvalidArgument("learning_rate must be positive");
    }
  }
  if (base.family == GlmFamily::kBinomial) {
    for (size_t i = 0; i < n; ++i) {
      double v = y.At(i, 0);
      if (v != 0.0 && v != 1.0) {
        return Status::InvalidArgument("Binomial family requires 0/1 labels");
      }
    }
  }
  return Status::OK();
}

// Builds one fold's leaves and roots. Training windows are zero-copy row
// slices of the shared X operand, so every fold's branch of the rung plan
// reads the same bound payload through ranged kernels.
Result<FoldProgram> BuildFoldProgram(const Operand& x, const FoldRange& fold,
                                     size_t d, size_t k, size_t fold_id) {
  const size_t n = x.rows();
  FoldProgram p;
  p.lo_rows = fold.begin;
  p.hi_begin = fold.end;
  p.hi_rows = n - fold.end;
  p.inv_n = 1.0 / static_cast<double>(p.lo_rows + p.hi_rows);
  const std::string tag = std::to_string(fold_id);

  p.w = std::make_shared<DenseMatrix>(d, k);
  p.step = std::make_shared<DenseMatrix>(1, k);
  p.decay = std::make_shared<DenseMatrix>(1, k);
  DMML_ASSIGN_OR_RETURN(ExprPtr wleaf,
                        ExprNode::InputOperand(Operand(p.w), "W" + tag));
  DMML_ASSIGN_OR_RETURN(ExprPtr step_leaf,
                        ExprNode::InputOperand(Operand(p.step), "step" + tag));
  DMML_ASSIGN_OR_RETURN(ExprPtr decay_leaf,
                        ExprNode::InputOperand(Operand(p.decay), "decay" + tag));

  ExprPtr grad;
  if (p.lo_rows > 0) {
    DMML_ASSIGN_OR_RETURN(
        ExprPtr xlo, ExprNode::InputOperand(x.Slice(0, p.lo_rows), "Xlo" + tag));
    p.r_lo = std::make_shared<DenseMatrix>(p.lo_rows, k);
    DMML_ASSIGN_OR_RETURN(ExprPtr rlo,
                          ExprNode::InputOperand(Operand(p.r_lo), "Rlo" + tag));
    DMML_ASSIGN_OR_RETURN(p.score_lo, ExprNode::MatMul(xlo, wleaf));
    DMML_ASSIGN_OR_RETURN(ExprPtr xlo_t, ExprNode::Transpose(xlo));
    DMML_ASSIGN_OR_RETURN(grad, ExprNode::MatMul(xlo_t, rlo));
  }
  if (p.hi_rows > 0) {
    DMML_ASSIGN_OR_RETURN(
        ExprPtr xhi, ExprNode::InputOperand(x.Slice(p.hi_begin, n), "Xhi" + tag));
    p.r_hi = std::make_shared<DenseMatrix>(p.hi_rows, k);
    DMML_ASSIGN_OR_RETURN(ExprPtr rhi,
                          ExprNode::InputOperand(Operand(p.r_hi), "Rhi" + tag));
    DMML_ASSIGN_OR_RETURN(p.score_hi, ExprNode::MatMul(xhi, wleaf));
    DMML_ASSIGN_OR_RETURN(ExprPtr xhi_t, ExprNode::Transpose(xhi));
    DMML_ASSIGN_OR_RETURN(ExprPtr ghi, ExprNode::MatMul(xhi_t, rhi));
    if (grad) {
      DMML_ASSIGN_OR_RETURN(grad, ExprNode::Add(grad, ghi));
    } else {
      grad = std::move(ghi);
    }
  }
  // W' = W - (G . diag(step) + W . diag(decay)): the per-config lr / L2
  // heterogeneity enters as column-wise scaling, so W stays one dense GEMM
  // operand for every config in the rung.
  DMML_ASSIGN_OR_RETURN(ExprPtr g_step, ExprNode::ScaleColumns(grad, step_leaf));
  DMML_ASSIGN_OR_RETURN(ExprPtr w_decay,
                        ExprNode::ScaleColumns(wleaf, decay_leaf));
  DMML_ASSIGN_OR_RETURN(ExprPtr delta, ExprNode::Add(g_step, w_decay));
  DMML_ASSIGN_OR_RETURN(p.update, ExprNode::Subtract(wleaf, delta));
  return p;
}

// Turns one score window into residuals (written into `resid`, window-
// relative) while accumulating per-config losses and bias gradients — the
// representation-independent scalar middle of the epoch, identical to the
// historical BatchedTrainGlm row loop.
void ConsumeScores(const DenseMatrix& scores, const DenseMatrix& y,
                   size_t y_begin, GlmFamily family,
                   const std::vector<double>& intercepts, DenseMatrix* resid,
                   std::vector<double>* losses, std::vector<double>* bias) {
  const size_t rows = scores.rows(), k = scores.cols();
  for (size_t i = 0; i < rows; ++i) {
    const double* srow = scores.Row(i);
    double* rrow = resid->Row(i);
    const double yi = y.At(y_begin + i, 0);
    for (size_t c = 0; c < k; ++c) {
      double s = srow[c] + intercepts[c];
      if (family == GlmFamily::kGaussian) {
        double r = s - yi;
        (*losses)[c] += 0.5 * r * r;
        rrow[c] = r;
      } else {
        double sign_y = yi > 0.5 ? 1.0 : -1.0;
        double margin = sign_y * s;
        (*losses)[c] += margin > 0 ? std::log1p(std::exp(-margin))
                                   : -margin + std::log1p(std::exp(margin));
        rrow[c] = ml::GlmInverseLink(s, family) - yi;
      }
      (*bias)[c] += rrow[c];
    }
  }
}

}  // namespace

Result<SharedScanResult> SharedScanTrain(const Operand& x, const DenseMatrix& y,
                                         const std::vector<FoldRange>& folds,
                                         const std::vector<GlmConfig>& configs,
                                         ThreadPool* pool) {
  DMML_RETURN_IF_ERROR(ValidateRung(x, y, folds, configs));
  DMML_TRACE_SPAN("modelsel.shared_scan");
  const size_t d = x.cols(), k = configs.size();
  const GlmConfig& base = configs.front();

  DMML_COUNTER_INC("modelsel.shared.rungs");
  DMML_COUNTER_ADD("modelsel.shared.configs_per_scan", k);
  DMML_HISTOGRAM_OBSERVE("modelsel.rung_width", obs::ExponentialBuckets(1, 2, 9),
                         static_cast<double>(k));
  // A sequential explorer scans the fold's training rows once per config per
  // epoch; the shared rung scans them once per epoch, period.
  DMML_COUNTER_ADD("modelsel.shared.epochs_saved",
                   (k - 1) * base.max_epochs * folds.size());

  // Compile the rung: one multi-root plan per phase, all folds' branches
  // sharing the bound X payload through windowed leaves.
  std::vector<FoldProgram> programs;
  programs.reserve(folds.size());
  std::vector<ExprPtr> score_roots;
  std::vector<ExprPtr> update_roots;
  for (size_t f = 0; f < folds.size(); ++f) {
    DMML_ASSIGN_OR_RETURN(FoldProgram p,
                          BuildFoldProgram(x, folds[f], d, k, f));
    if (p.score_lo) {
      p.a_lo = static_cast<int>(score_roots.size());
      score_roots.push_back(p.score_lo);
    }
    if (p.score_hi) {
      p.a_hi = static_cast<int>(score_roots.size());
      score_roots.push_back(p.score_hi);
    }
    update_roots.push_back(p.update);
    programs.push_back(std::move(p));
  }

  BufferedExecutor executor(pool);
  SharedScanResult result;
  result.epochs_run = base.max_epochs;
  result.folds.resize(programs.size());
  for (size_t f = 0; f < programs.size(); ++f) {
    result.folds[f].intercepts.assign(k, 0.0);
    result.folds[f].loss_histories.assign(k, {});
    for (auto& h : result.folds[f].loss_histories) h.reserve(base.max_epochs);
  }

  // Hoisted epoch scratch: steady-state epochs allocate nothing.
  std::vector<double> lrs(k), losses(k), bias(k);

  for (size_t epoch = 0; epoch < base.max_epochs; ++epoch) {
    for (size_t c = 0; c < k; ++c) {
      lrs[c] = configs[c].learning_rate /
               (1.0 + configs[c].lr_decay * static_cast<double>(epoch));
    }
    for (FoldProgram& p : programs) {
      for (size_t c = 0; c < k; ++c) {
        p.step->At(0, c) = lrs[c] * p.inv_n;
        p.decay->At(0, c) = lrs[c] * configs[c].l2;
      }
    }

    // Phase A: every fold's score matrices from one wide plan — the shared
    // scan. The inter-node scheduler overlaps fold branches.
    DMML_ASSIGN_OR_RETURN(std::vector<const DenseMatrix*> scores,
                          executor.RunMany(score_roots));

    // Scalar middle: residuals, losses, bias gradients, intercepts.
    for (size_t f = 0; f < programs.size(); ++f) {
      FoldProgram& p = programs[f];
      SharedScanFold& out = result.folds[f];
      std::fill(losses.begin(), losses.end(), 0.0);
      std::fill(bias.begin(), bias.end(), 0.0);
      if (p.a_lo >= 0) {
        ConsumeScores(*scores[p.a_lo], y, 0, base.family, out.intercepts,
                      p.r_lo.get(), &losses, &bias);
      }
      if (p.a_hi >= 0) {
        ConsumeScores(*scores[p.a_hi], y, p.hi_begin, base.family,
                      out.intercepts, p.r_hi.get(), &losses, &bias);
      }
      if (base.fit_intercept) {
        for (size_t c = 0; c < k; ++c) {
          out.intercepts[c] -= lrs[c] * bias[c] * p.inv_n;
        }
      }
      for (size_t c = 0; c < k; ++c) {
        out.loss_histories[c].push_back(losses[c] * p.inv_n);
      }
    }

    // Phase B: every fold's weight update from one wide plan; copy W' back
    // into the W payloads the next epoch's phase A reads.
    DMML_ASSIGN_OR_RETURN(std::vector<const DenseMatrix*> updated,
                          executor.RunMany(update_roots));
    for (size_t f = 0; f < programs.size(); ++f) {
      FoldProgram& p = programs[f];
      std::copy(updated[f]->data(), updated[f]->data() + d * k,
                p.w->data());
      // The L2 term of the reported loss uses the post-update weights,
      // matching the historical batched trainer.
      for (size_t c = 0; c < k; ++c) {
        if (configs[c].l2 > 0) {
          double w2 = 0;
          for (size_t j = 0; j < d; ++j) {
            w2 += p.w->At(j, c) * p.w->At(j, c);
          }
          result.folds[f].loss_histories[c].back() += 0.5 * configs[c].l2 * w2;
        }
      }
    }
  }

  for (size_t f = 0; f < programs.size(); ++f) {
    result.folds[f].weights = std::move(*programs[f].w);
  }
  return result;
}

Result<std::vector<double>> ScoreConfigsOnWindow(
    const Operand& x, const DenseMatrix& y, size_t row_begin, size_t row_end,
    const DenseMatrix& weights, const std::vector<double>& intercepts,
    GlmFamily family, FoldMetric metric, ThreadPool* pool) {
  if (!x.bound()) return Status::InvalidArgument("score window: unbound X");
  if (row_begin >= row_end || row_end > x.rows()) {
    return Status::InvalidArgument("score window: bad row range");
  }
  const size_t range = row_end - row_begin, k = weights.cols();
  if (weights.rows() != x.cols() || intercepts.size() != k) {
    return Status::InvalidArgument("score window: shape mismatch");
  }
  if (family != GlmFamily::kBinomial && metric != FoldMetric::kNegRmse) {
    return Status::InvalidArgument("score window: metric requires Binomial");
  }

  // One ranged X·W product scores every config on the window — no gather.
  const Operand v = x.Slice(row_begin, row_end);
  DenseMatrix scores;
  switch (v.repr()) {
    case Repr::kDense:
      la::MultiplyRangeInto(*v.dense(), v.window_begin(), v.window_end(),
                            weights, &scores, pool);
      break;
    case Repr::kSparse:
      la::SparseMultiplyDenseRangeInto(*v.sparse(), v.window_begin(),
                                       v.window_end(), weights, &scores, pool);
      break;
    case Repr::kCompressed:
      DMML_RETURN_IF_ERROR(v.compressed()->MultiplyMatrixRangeInto(
          weights, v.window_begin(), v.window_end(), &scores, pool));
      break;
    case Repr::kFactorized:
      // No ranged factorized kernels: materialize the window (ToDense slices
      // the row range) and score dense.
      la::MultiplyInto(v.ToDense(pool), weights, &scores, pool);
      break;
  }

  DenseMatrix yv(range, 1);
  for (size_t i = 0; i < range; ++i) yv.At(i, 0) = y.At(row_begin + i, 0);
  DenseMatrix pred(range, 1);
  std::vector<double> out(k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    for (size_t i = 0; i < range; ++i) {
      double s = scores.At(i, c) + intercepts[c];
      switch (metric) {
        case FoldMetric::kAccuracy:
          pred.At(i, 0) =
              ml::GlmInverseLink(s, family) >= 0.5 ? 1.0 : 0.0;
          break;
        case FoldMetric::kNegLogLoss:
          pred.At(i, 0) = ml::GlmInverseLink(s, family);
          break;
        case FoldMetric::kNegRmse:
          pred.At(i, 0) = s;
          break;
      }
    }
    switch (metric) {
      case FoldMetric::kAccuracy: {
        DMML_ASSIGN_OR_RETURN(out[c], ml::Accuracy(yv, pred));
        break;
      }
      case FoldMetric::kNegLogLoss: {
        DMML_ASSIGN_OR_RETURN(double loss, ml::LogLoss(yv, pred));
        out[c] = -loss;
        break;
      }
      case FoldMetric::kNegRmse: {
        DMML_ASSIGN_OR_RETURN(double rmse, ml::Rmse(yv, pred));
        out[c] = -rmse;
        break;
      }
    }
  }
  return out;
}

ContiguousFolds MakeContiguousFolds(const KFold& kf) {
  ContiguousFolds cf;
  cf.folds.reserve(kf.num_folds());
  for (size_t f = 0; f < kf.num_folds(); ++f) {
    const std::vector<size_t>& val = kf.ValidationIndices(f);
    FoldRange range;
    range.begin = cf.order.size();
    cf.order.insert(cf.order.end(), val.begin(), val.end());
    range.end = cf.order.size();
    cf.folds.push_back(range);
  }
  return cf;
}

}  // namespace dmml::modelsel
