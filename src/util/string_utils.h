/// \file string_utils.h
/// \brief Small string helpers shared by the CSV reader and the catalog.
#ifndef DMML_UTIL_STRING_UTILS_H_
#define DMML_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace dmml {

/// \brief Splits `s` on `delim`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// \brief Case-sensitive prefix test.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief Parses a double, rejecting trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// \brief Parses an int64, rejecting trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace dmml

#endif  // DMML_UTIL_STRING_UTILS_H_
