/// \file csv.h
/// \brief RFC-4180-ish CSV reading and writing.
///
/// Supports quoted fields with embedded delimiters, escaped quotes ("")
/// and newlines inside quoted fields. Used by the storage layer to load
/// tables and by the bench harnesses to emit result series.
#ifndef DMML_UTIL_CSV_H_
#define DMML_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace dmml {

/// \brief Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
};

/// \brief A fully-parsed CSV file: optional header plus rows of string cells.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// \brief Parses CSV text into a document. Rows may have ragged widths; the
/// caller validates against its schema.
Result<CsvDocument> ParseCsv(const std::string& text, const CsvOptions& options = {});

/// \brief Reads and parses a CSV file from disk.
Result<CsvDocument> ReadCsvFile(const std::string& path, const CsvOptions& options = {});

/// \brief Serializes rows (quoting where needed) and writes them to `path`.
Status WriteCsvFile(const std::string& path, const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows,
                    char delimiter = ',');

/// \brief Quotes a single CSV field if it contains the delimiter, quotes or
/// newlines.
std::string EscapeCsvField(const std::string& field, char delimiter = ',');

}  // namespace dmml

#endif  // DMML_UTIL_CSV_H_
