#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>

#include "obs/metrics.h"

namespace dmml {

namespace {

// Instrument pointers resolved once; the pool's hot path then pays only
// relaxed atomic updates (plus two clock reads per task).
struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Histogram* wait_us;
  obs::Histogram* run_us;

  static PoolMetrics& Get() {
    static PoolMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return PoolMetrics{
          reg.GetGauge("threadpool.queue_depth"),
          reg.GetHistogram("threadpool.task_wait_us",
                           obs::ExponentialBuckets(8, 4, 10)),
          reg.GetHistogram("threadpool.task_run_us",
                           obs::ExponentialBuckets(8, 4, 10)),
      };
    }();
    return m;
  }
};

// How long a cooperative waiter sleeps when the queue is momentarily empty
// but its WaitGroup has not drained. Running tasks wake it via Done(); the
// timeout only bounds the window where a running task enqueues *new* work
// without touching the waited-on group.
constexpr std::chrono::microseconds kCooperativeNapUs{200};

// Claims held by the calling thread (PoolClaimScope nesting depth). While
// nonzero, cooperative waits must not steal tasks outside their own group.
thread_local size_t t_claim_depth = 0;  // NOLINT(misc-use-internal-linkage)

}  // namespace

void PoolClaimScope::Acquire() {
  if (held_) return;
  held_ = true;
  ++t_claim_depth;
}

void PoolClaimScope::Release() {
  if (!held_) return;
  held_ = false;
  --t_claim_depth;
}

bool PoolClaimScope::Held() { return t_claim_depth > 0; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> fn, WaitGroup* wg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back({std::move(fn), obs::NowMicros(), wg});
    PoolMetrics::Get().queue_depth->Set(static_cast<double>(tasks_.size()));
  }
  cv_.notify_one();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  auto pt = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> fut = pt->get_future();
  Enqueue([pt] { (*pt)(); });
  return fut;
}

void ThreadPool::Submit(WaitGroup& wg, std::function<void()> task) {
  wg.Add(1);
  // Done() must run even when the body throws — a surviving waiter would
  // otherwise hang forever — and the exception must reach that waiter
  // instead of unwinding WorkerLoop into std::terminate: stash it in the
  // group; ThreadPool::Wait rethrows after the drain.
  Enqueue(
      [&wg, t = std::move(task)] {
        struct DoneGuard {
          WaitGroup& wg;
          ~DoneGuard() { wg.Done(); }
        } guard{wg};
        try {
          t();
        } catch (...) {
          wg.SetError(std::current_exception());
        }
      },
      &wg);
}

void ThreadPool::RunTask(QueuedTask& item) {
  PoolMetrics& metrics = PoolMetrics::Get();
  const uint64_t start_us = obs::NowMicros();
  metrics.wait_us->Observe(static_cast<double>(start_us - item.enqueue_us));
  item.fn();
  metrics.run_us->Observe(static_cast<double>(obs::NowMicros() - start_us));
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  idle_cv_.notify_all();
}

bool ThreadPool::TryRunOneTask(const WaitGroup* only) {
  QueuedTask item;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tasks_.begin();
    if (only != nullptr) {
      while (it != tasks_.end() && it->wg != only) ++it;
    }
    if (it == tasks_.end()) return false;
    item = std::move(*it);
    tasks_.erase(it);
    PoolMetrics::Get().queue_depth->Set(static_cast<double>(tasks_.size()));
    ++in_flight_;
  }
  RunTask(item);
  return true;
}

void ThreadPool::Wait(WaitGroup& wg) {
  // Cooperative wait: drain pending tasks on this thread; nap only when
  // nothing eligible is queued and the group still holds. Tasks in flight on
  // workers wake us through wg.Done(). A thread holding a claim other tasks
  // may block on (PoolClaimScope) must not steal arbitrary work — a stolen
  // task could wait on the very claim held lower on this stack and spin
  // forever — so it runs only tasks of `wg` itself (its own fan-out chunks).
  const WaitGroup* only = PoolClaimScope::Held() ? &wg : nullptr;
  while (!wg.TryWait()) {
    if (!TryRunOneTask(only)) {
      if (wg.WaitFor(kCooperativeNapUs)) break;
    }
  }
  wg.RethrowIfError();
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      item = std::move(tasks_.front());
      tasks_.pop_front();
      PoolMetrics::Get().queue_depth->Set(static_cast<double>(tasks_.size()));
      ++in_flight_;
    }
    RunTask(item);
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn) {
  ParallelForChunks(pool, n, /*grain=*/1,
                    [&fn](size_t, size_t begin, size_t end) { fn(begin, end); });
}

size_t ParallelChunkCount(const ThreadPool* pool, size_t n, size_t grain) {
  if (pool == nullptr || n == 0) return 1;
  const size_t threads = pool->num_threads();
  if (threads <= 1) return 1;
  if (grain == 0) grain = 1;
  // Floor division: a chunk never carries less than `grain` items, so an
  // input barely above the grain still runs inline instead of splitting
  // into two undersized tasks.
  const size_t by_grain = n / grain;
  if (by_grain <= 1) return 1;
  return std::min(threads, by_grain);
}

void ParallelForChunks(ThreadPool* pool, size_t n, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = ParallelChunkCount(pool, n, grain);
  if (chunks <= 1) {
    fn(0, 0, n);
    return;
  }
  const size_t chunk = (n + chunks - 1) / chunks;
  WaitGroup wg;
  size_t idx = 0;
  for (size_t begin = 0; begin < n; begin += chunk, ++idx) {
    const size_t end = std::min(begin + chunk, n);
    pool->Submit(wg, [&fn, idx, begin, end] { fn(idx, begin, end); });
  }
  pool->Wait(wg);
}

size_t DefaultThreadPoolSize() {
  for (const char* name : {"DMML_THREADS", "DMML_NUM_THREADS"}) {
    if (const char* env = std::getenv(name)) {  // NOLINT(concurrency-mt-unsafe)
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v > 0) return static_cast<size_t>(v);
    }
  }
  return static_cast<size_t>(std::max(1u, std::thread::hardware_concurrency()));
}

ThreadPool* GlobalThreadPool() {
  static ThreadPool pool(DefaultThreadPoolSize());
  return &pool;
}

}  // namespace dmml
