#include "util/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace dmml {

namespace {

// Instrument pointers resolved once; the pool's hot path then pays only
// relaxed atomic updates (plus two clock reads per task).
struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Histogram* wait_us;
  obs::Histogram* run_us;

  static PoolMetrics& Get() {
    static PoolMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return PoolMetrics{
          reg.GetGauge("threadpool.queue_depth"),
          reg.GetHistogram("threadpool.task_wait_us",
                           obs::ExponentialBuckets(8, 4, 10)),
          reg.GetHistogram("threadpool.task_run_us",
                           obs::ExponentialBuckets(8, 4, 10)),
      };
    }();
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push({std::move(pt), obs::NowMicros()});
    PoolMetrics::Get().queue_depth->Set(static_cast<double>(tasks_.size()));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    QueuedTask item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      item = std::move(tasks_.front());
      tasks_.pop();
      metrics.queue_depth->Set(static_cast<double>(tasks_.size()));
      ++in_flight_;
    }
    uint64_t start_us = obs::NowMicros();
    metrics.wait_us->Observe(static_cast<double>(start_us - item.enqueue_us));
    item.task();
    metrics.run_us->Observe(static_cast<double>(obs::NowMicros() - start_us));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    fn(0, n);
    return;
  }
  size_t num_chunks = std::min(n, pool->num_threads());
  size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(begin + chunk, n);
    futures.push_back(pool->Submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& f : futures) f.get();
}

ThreadPool* GlobalThreadPool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return &pool;
}

}  // namespace dmml
