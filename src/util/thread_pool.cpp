#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"

namespace dmml {

namespace {

// Instrument pointers resolved once; the pool's hot path then pays only
// relaxed atomic updates (plus two clock reads per task).
struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Histogram* wait_us;
  obs::Histogram* run_us;

  static PoolMetrics& Get() {
    static PoolMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return PoolMetrics{
          reg.GetGauge("threadpool.queue_depth"),
          reg.GetHistogram("threadpool.task_wait_us",
                           obs::ExponentialBuckets(8, 4, 10)),
          reg.GetHistogram("threadpool.task_run_us",
                           obs::ExponentialBuckets(8, 4, 10)),
      };
    }();
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push({std::move(pt), obs::NowMicros()});
    PoolMetrics::Get().queue_depth->Set(static_cast<double>(tasks_.size()));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    QueuedTask item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      item = std::move(tasks_.front());
      tasks_.pop();
      metrics.queue_depth->Set(static_cast<double>(tasks_.size()));
      ++in_flight_;
    }
    uint64_t start_us = obs::NowMicros();
    metrics.wait_us->Observe(static_cast<double>(start_us - item.enqueue_us));
    item.task();
    metrics.run_us->Observe(static_cast<double>(obs::NowMicros() - start_us));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn) {
  ParallelForChunks(pool, n, /*grain=*/1,
                    [&fn](size_t, size_t begin, size_t end) { fn(begin, end); });
}

size_t ParallelChunkCount(const ThreadPool* pool, size_t n, size_t grain) {
  if (pool == nullptr || n == 0) return 1;
  const size_t threads = pool->num_threads();
  if (threads <= 1) return 1;
  if (grain == 0) grain = 1;
  // Floor division: a chunk never carries less than `grain` items, so an
  // input barely above the grain still runs inline instead of splitting
  // into two undersized tasks.
  const size_t by_grain = n / grain;
  if (by_grain <= 1) return 1;
  return std::min(threads, by_grain);
}

void ParallelForChunks(ThreadPool* pool, size_t n, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = ParallelChunkCount(pool, n, grain);
  if (chunks <= 1) {
    fn(0, 0, n);
    return;
  }
  const size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  size_t idx = 0;
  for (size_t begin = 0; begin < n; begin += chunk, ++idx) {
    const size_t end = std::min(begin + chunk, n);
    futures.push_back(pool->Submit([&fn, idx, begin, end] { fn(idx, begin, end); }));
  }
  for (auto& f : futures) f.get();
}

ThreadPool* GlobalThreadPool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("DMML_NUM_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && v > 0) return static_cast<size_t>(v);
    }
    return static_cast<size_t>(std::max(1u, std::thread::hardware_concurrency()));
  }());
  return &pool;
}

}  // namespace dmml
