#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "obs/trace.h"

namespace dmml {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}

// DMML_LOG_LEVEL accepts a level name (debug|info|warn|warning|error|fatal,
// any case) or the numeric enum value; unset or unparsable means kInfo.
int LevelFromEnv() {
  const char* v = std::getenv("DMML_LOG_LEVEL");  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return static_cast<int>(LogLevel::kInfo);
  char lower[16] = {0};
  for (size_t i = 0; v[i] != '\0' && i + 1 < sizeof(lower); ++i) {
    lower[i] = static_cast<char>(std::tolower(static_cast<unsigned char>(v[i])));
  }
  if (std::strcmp(lower, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(lower, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(lower, "warn") == 0 || std::strcmp(lower, "warning") == 0) {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (std::strcmp(lower, "error") == 0) return static_cast<int>(LogLevel::kError);
  if (std::strcmp(lower, "fatal") == 0) return static_cast<int>(LogLevel::kFatal);
  if (lower[0] >= '0' && lower[0] <= '4' && lower[1] == '\0') return lower[0] - '0';
  return static_cast<int>(LogLevel::kInfo);
}

// Function-local static so the env read happens exactly once, on first use,
// regardless of static-initialization order across translation units.
std::atomic<int>& LevelVar() {
  static std::atomic<int> level{LevelFromEnv()};
  return level;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelVar().load()); }
void SetLogLevel(LogLevel level) { LevelVar().store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::time_t now = std::time(nullptr);
  std::tm tm_buf;
  localtime_r(&now, &tm_buf);
  char ts[16];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);
  stream_ << "[" << LevelName(level) << " " << ts << " t"
          << obs::ThisThreadId() << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    // The whole line (prefix, message, newline) goes out in one fwrite so
    // concurrent threads — pool workers, PS workers — never interleave
    // mid-line: fwrite locks the FILE stream.
    std::string line = stream_.str();
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace dmml
