/// \file status.h
/// \brief Status error model used across all dmml public APIs.
///
/// dmml does not throw exceptions across public API boundaries. Fallible
/// operations return a Status (or a Result<T>, see result.h). The idiom
/// follows Apache Arrow / RocksDB:
///
///   DMML_RETURN_IF_ERROR(DoThing());
///   DMML_ASSIGN_OR_RETURN(auto m, LoadMatrix(path));
#ifndef DMML_UTIL_STATUS_H_
#define DMML_UTIL_STATUS_H_

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace dmml {

/// Machine-readable category of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kFailedPrecondition = 8,
};

/// \brief Human-readable name of a StatusCode (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: either OK or an error code + message.
///
/// The OK status carries no allocation; error states allocate a small state
/// object. Statuses are cheap to move and to copy-on-OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  /// \brief Factory for the OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  /// \brief True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }

  /// \brief The error message ("" for OK).
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::ostringstream os;
    os << StatusCodeToString(state_->code) << ": " << state_->msg;
    return os.str();
  }

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // nullptr == OK
};

}  // namespace dmml

/// Propagates an error Status from the enclosing function.
#define DMML_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::dmml::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                      \
  } while (0)

#define DMML_CONCAT_IMPL(x, y) x##y
#define DMML_CONCAT(x, y) DMML_CONCAT_IMPL(x, y)

/// Unwraps a Result<T> into `lhs`, propagating errors.
#define DMML_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  DMML_ASSIGN_OR_RETURN_IMPL(DMML_CONCAT(_res_, __LINE__), lhs, rexpr)

#define DMML_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#endif  // DMML_UTIL_STATUS_H_
