/// \file stopwatch.h
/// \brief Wall-clock timing helper for benchmark harnesses.
#ifndef DMML_UTIL_STOPWATCH_H_
#define DMML_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace dmml {

/// \brief Simple wall-clock stopwatch (steady clock).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// \brief Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed seconds since construction or last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Elapsed milliseconds since construction or last Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// \brief Elapsed whole microseconds since construction or last Reset.
  /// Preferred over hand-rolled ElapsedSeconds()*1e6 conversions when feeding
  /// metrics counters and histograms.
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dmml

#endif  // DMML_UTIL_STOPWATCH_H_
