#include "util/string_utils.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace dmml {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty string is not a double");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty string is not an int");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("int64 out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an int64: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::ostringstream os;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) os << sep;
    os << parts[i];
  }
  return os.str();
}

}  // namespace dmml
