#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dmml {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  DMML_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DMML_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::Normal() {
  // Box–Muller; discards the second deviate for simplicity.
  double u1 = Uniform();
  double u2 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

bool Rng::Bernoulli(double p) { return Uniform() < p; }

uint64_t Rng::Zipf(uint64_t n, double s) {
  ZipfGenerator gen(n, s);
  return gen.Sample(this);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  DMML_CHECK_GT(total, 0);
  double r = Uniform() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Split() { return Rng(Next()); }

ZipfGenerator::ZipfGenerator(uint64_t n, double s) {
  DMML_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double acc = 0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

uint64_t ZipfGenerator::Sample(Rng* rng) const {
  double r = rng->Uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace dmml
