/// \file result.h
/// \brief Result<T>: a value or an error Status.
#ifndef DMML_UTIL_RESULT_H_
#define DMML_UTIL_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "util/status.h"

namespace dmml {

/// \brief Holds either a successfully-produced T or the Status explaining why
/// production failed.
///
/// A Result constructed from an OK status is a programming error and aborts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  /// \brief True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// \brief The error status (OK if a value is present).
  const Status& status() const { return status_; }

  /// \brief Access the value; aborts with the error message if not ok().
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  /// \brief The value, or `alt` if this Result holds an error.
  T ValueOr(T alt) const {
    return ok() ? *value_ : std::move(alt);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_.ToString() << "\n";
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace dmml

#endif  // DMML_UTIL_RESULT_H_
