/// \file thread_pool.h
/// \brief Fixed-size worker pool with a ParallelFor convenience.
#ifndef DMML_UTIL_THREAD_POOL_H_
#define DMML_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dmml {

/// \brief A fixed pool of worker threads executing submitted closures.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task; the returned future resolves on completion.
  std::future<void> Submit(std::function<void()> task);

  /// \brief Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// \brief Blocks until every submitted task has completed.
  void WaitAll();

 private:
  struct QueuedTask {
    std::packaged_task<void()> task;
    uint64_t enqueue_us = 0;  ///< For the task_wait_us latency histogram.
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// \brief Splits [0, n) into contiguous chunks and runs `fn(begin, end)` on
/// the pool, blocking until all chunks finish. With a null pool (or one
/// thread) runs inline.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn);

/// \brief Number of chunks ParallelForChunks will split [0, n) into: 1 when
/// the pool is null/single-threaded or fewer than 2*grain items exist (small
/// inputs stay inline and never pay pool latency), otherwise
/// min(num_threads, n / grain) so every chunk carries at least `grain` items.
size_t ParallelChunkCount(const ThreadPool* pool, size_t n, size_t grain);

/// \brief Grain-aware ParallelFor that also hands each chunk its index
/// (`fn(chunk, begin, end)`), so reduction kernels can give every chunk a
/// private partial buffer indexed by `chunk` (< ParallelChunkCount(...)).
/// Runs inline as `fn(0, 0, n)` when only one chunk is warranted.
void ParallelForChunks(ThreadPool* pool, size_t n, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn);

/// \brief Default process-wide pool. Sized by the DMML_NUM_THREADS environment
/// variable when set to a positive integer, else the hardware concurrency.
ThreadPool* GlobalThreadPool();

}  // namespace dmml

#endif  // DMML_UTIL_THREAD_POOL_H_
