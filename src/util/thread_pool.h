/// \file thread_pool.h
/// \brief Fixed-size worker pool with a ParallelFor convenience, a
/// WaitGroup completion primitive, and cooperative waiting.
///
/// Cooperative waiting is what lets nested submission share one pool: a
/// thread blocked in ThreadPool::Wait(WaitGroup&) drains pending pool tasks
/// instead of sleeping, so a task that itself submits subtasks (an executor
/// node whose kernel fans out morsel chunks, say) can never deadlock — even
/// on a single-thread pool — and multiple executors can share
/// GlobalThreadPool() without exclusive ownership.
#ifndef DMML_UTIL_THREAD_POOL_H_
#define DMML_UTIL_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dmml {

/// \brief Counts outstanding tasks; waiters block until the count drains to
/// zero. The Go-style alternative to collecting one std::future per task:
/// a fan-out of N tasks pays one Add/Done pair each instead of N
/// packaged_task + future allocations. Add before (or while) the count is
/// still nonzero from the waiter's perspective; Done strictly after the
/// matching Add.
class WaitGroup {
 public:
  /// \brief Registers `n` tasks that Wait must outlast.
  void Add(size_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }

  /// \brief Marks one task complete; wakes waiters when the count drains.
  void Done() {
    // Notify while still holding the lock: the moment a waiter can observe
    // count_ == 0 it may return and destroy this WaitGroup (it often lives
    // on the waiter's stack), so the broadcast must complete before the
    // decrement becomes visible.
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }

  /// \brief Blocks until every Add has been matched by a Done.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

  /// \brief True iff the count is currently zero (no blocking).
  bool TryWait() {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0;
  }

  /// \brief Waits up to `timeout` for the count to drain; true on drain.
  bool WaitFor(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_ = 0;
};

/// \brief A fixed pool of worker threads executing submitted closures.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task; the returned future resolves on completion.
  std::future<void> Submit(std::function<void()> task);

  /// \brief Enqueues a task tracked by `wg` (Add before enqueue, Done after
  /// the task body returns). No future is allocated — the hot-path fan-out
  /// primitive. `wg` must outlive the task; pair with Wait(wg).
  void Submit(WaitGroup& wg, std::function<void()> task);

  /// \brief Runs one pending task on the calling thread, if any. Returns
  /// false when the queue was empty. The building block of cooperative
  /// waiting: a blocked submitter makes progress instead of sleeping.
  bool TryRunOneTask();

  /// \brief Blocks until `wg` drains, cooperatively running pending pool
  /// tasks on this thread while it waits. Safe to call from inside a pool
  /// task (nested submission), including on a single-thread pool.
  void Wait(WaitGroup& wg);

  /// \brief Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// \brief Blocks until every submitted task has completed.
  void WaitAll();

 private:
  struct QueuedTask {
    std::function<void()> fn;
    uint64_t enqueue_us = 0;  ///< For the task_wait_us latency histogram.
  };

  void Enqueue(std::function<void()> fn);
  void RunTask(QueuedTask& item);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// \brief Splits [0, n) into contiguous chunks and runs `fn(begin, end)` on
/// the pool, blocking until all chunks finish. With a null pool (or one
/// thread) runs inline.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn);

/// \brief Number of chunks ParallelForChunks will split [0, n) into: 1 when
/// the pool is null/single-threaded or fewer than 2*grain items exist (small
/// inputs stay inline and never pay pool latency), otherwise
/// min(num_threads, n / grain) so every chunk carries at least `grain` items.
size_t ParallelChunkCount(const ThreadPool* pool, size_t n, size_t grain);

/// \brief Grain-aware ParallelFor that also hands each chunk its index
/// (`fn(chunk, begin, end)`), so reduction kernels can give every chunk a
/// private partial buffer indexed by `chunk` (< ParallelChunkCount(...)).
/// Runs inline as `fn(0, 0, n)` when only one chunk is warranted. The wait
/// is cooperative (see ThreadPool::Wait), so kernels may call this from
/// inside a pool task without deadlocking.
void ParallelForChunks(ThreadPool* pool, size_t n, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn);

/// \brief Pool size GlobalThreadPool() will use: the first of DMML_THREADS
/// and DMML_NUM_THREADS set to a positive integer, else the hardware
/// concurrency. Re-read on every call (the global pool samples it once).
size_t DefaultThreadPoolSize();

/// \brief Default process-wide pool, sized by DefaultThreadPoolSize() at
/// first use.
ThreadPool* GlobalThreadPool();

}  // namespace dmml

#endif  // DMML_UTIL_THREAD_POOL_H_
