/// \file thread_pool.h
/// \brief Fixed-size worker pool with a ParallelFor convenience, a
/// WaitGroup completion primitive, and cooperative waiting.
///
/// Cooperative waiting is what lets nested submission share one pool: a
/// thread blocked in ThreadPool::Wait(WaitGroup&) drains pending pool tasks
/// instead of sleeping, so a task that itself submits subtasks (an executor
/// node whose kernel fans out morsel chunks, say) can never deadlock — even
/// on a single-thread pool — and multiple executors can share
/// GlobalThreadPool() without exclusive ownership. A waiter that holds a
/// claim other tasks may block on declares it via PoolClaimScope, which
/// restricts its stealing to the waited-on group's own tasks.
#ifndef DMML_UTIL_THREAD_POOL_H_
#define DMML_UTIL_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace dmml {

/// \brief Counts outstanding tasks; waiters block until the count drains to
/// zero. The Go-style alternative to collecting one std::future per task:
/// a fan-out of N tasks pays one Add/Done pair each instead of N
/// packaged_task + future allocations. Add before (or while) the count is
/// still nonzero from the waiter's perspective; Done strictly after the
/// matching Add.
class WaitGroup {
 public:
  /// \brief Registers `n` tasks that Wait must outlast.
  void Add(size_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }

  /// \brief Marks one task complete; wakes waiters when the count drains.
  void Done() {
    // Notify while still holding the lock: the moment a waiter can observe
    // count_ == 0 it may return and destroy this WaitGroup (it often lives
    // on the waiter's stack), so the broadcast must complete before the
    // decrement becomes visible.
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) cv_.notify_all();
  }

  /// \brief Blocks until every Add has been matched by a Done.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

  /// \brief True iff the count is currently zero (no blocking).
  bool TryWait() {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0;
  }

  /// \brief Waits up to `timeout` for the count to drain; true on drain.
  bool WaitFor(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return count_ == 0; });
  }

  /// \brief Records a task-body failure; the first error wins. Called by the
  /// pool when a task tracked by this group throws (see ThreadPool::Submit).
  void SetError(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::move(e);
  }

  /// \brief Rethrows (and clears) the recorded error, if any. Call only
  /// after the group has drained; ThreadPool::Wait does this so a kernel
  /// chunk that threw surfaces in the ParallelForChunks caller instead of
  /// unwinding a worker into std::terminate.
  void RethrowIfError() {
    std::exception_ptr e;
    {
      std::lock_guard<std::mutex> lock(mu_);
      e = std::exchange(error_, nullptr);
    }
    if (e) std::rethrow_exception(e);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t count_ = 0;
  std::exception_ptr error_;  ///< First task-body exception; guarded by mu_.
};

/// \brief RAII marker: while engaged (Acquire), the calling thread holds a
/// claim that *other pool tasks may block on* — e.g. the executor's per-node
/// execution claim or a densify-fill claim. Cooperative waits on this thread
/// then run only tasks of the waited-on WaitGroup (the claim holder's own
/// kernel chunks) instead of stealing arbitrary queued tasks: a stolen
/// sibling task could block on the very claim held lower on this stack, and
/// since the lower frame can never resume while the thief runs above it, the
/// run would hang permanently (self-steal deadlock). Scopes nest; the claim
/// restriction lifts when the last scope on the thread releases.
class PoolClaimScope {
 public:
  PoolClaimScope() = default;
  ~PoolClaimScope() { Release(); }

  PoolClaimScope(const PoolClaimScope&) = delete;
  PoolClaimScope& operator=(const PoolClaimScope&) = delete;

  /// \brief Marks the claim held. At most once per scope.
  void Acquire();

  /// \brief Releases the claim if held (the destructor also does).
  void Release();

  /// \brief True when any scope on the calling thread holds a claim.
  static bool Held();

 private:
  bool held_ = false;
};

/// \brief A fixed pool of worker threads executing submitted closures.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task; the returned future resolves on completion.
  std::future<void> Submit(std::function<void()> task);

  /// \brief Enqueues a task tracked by `wg` (Add before enqueue, Done after
  /// the task body returns — guaranteed even if the body throws; the first
  /// exception is stashed in `wg` and rethrown by Wait(wg) after the drain).
  /// No future is allocated — the hot-path fan-out primitive. `wg` must
  /// outlive the task; pair with Wait(wg).
  void Submit(WaitGroup& wg, std::function<void()> task);

  /// \brief Runs one pending task on the calling thread, if any. With `only`
  /// set, runs only a task tracked by that WaitGroup (skipping unrelated
  /// queued work). Returns false when nothing eligible was queued. The
  /// building block of cooperative waiting: a blocked submitter makes
  /// progress instead of sleeping.
  bool TryRunOneTask(const WaitGroup* only = nullptr);

  /// \brief Blocks until `wg` drains, cooperatively running pending pool
  /// tasks on this thread while it waits. Safe to call from inside a pool
  /// task (nested submission), including on a single-thread pool. When the
  /// calling thread holds a PoolClaimScope claim, only tasks tracked by `wg`
  /// itself are run (see PoolClaimScope). Rethrows the first exception any
  /// of `wg`'s task bodies raised, after all of them have completed.
  void Wait(WaitGroup& wg);

  /// \brief Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// \brief Blocks until every submitted task has completed.
  void WaitAll();

 private:
  struct QueuedTask {
    std::function<void()> fn;
    uint64_t enqueue_us = 0;  ///< For the task_wait_us latency histogram.
    WaitGroup* wg = nullptr;  ///< Tracking group, for claim-restricted waits.
  };

  void Enqueue(std::function<void()> fn, WaitGroup* wg = nullptr);
  void RunTask(QueuedTask& item);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// \brief Splits [0, n) into contiguous chunks and runs `fn(begin, end)` on
/// the pool, blocking until all chunks finish. With a null pool (or one
/// thread) runs inline.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t)>& fn);

/// \brief Number of chunks ParallelForChunks will split [0, n) into: 1 when
/// the pool is null/single-threaded or fewer than 2*grain items exist (small
/// inputs stay inline and never pay pool latency), otherwise
/// min(num_threads, n / grain) so every chunk carries at least `grain` items.
size_t ParallelChunkCount(const ThreadPool* pool, size_t n, size_t grain);

/// \brief Grain-aware ParallelFor that also hands each chunk its index
/// (`fn(chunk, begin, end)`), so reduction kernels can give every chunk a
/// private partial buffer indexed by `chunk` (< ParallelChunkCount(...)).
/// Runs inline as `fn(0, 0, n)` when only one chunk is warranted. The wait
/// is cooperative (see ThreadPool::Wait), so kernels may call this from
/// inside a pool task without deadlocking.
void ParallelForChunks(ThreadPool* pool, size_t n, size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn);

/// \brief Pool size GlobalThreadPool() will use: the first of DMML_THREADS
/// and DMML_NUM_THREADS set to a positive integer, else the hardware
/// concurrency. Re-read on every call (the global pool samples it once).
size_t DefaultThreadPoolSize();

/// \brief Default process-wide pool, sized by DefaultThreadPoolSize() at
/// first use.
ThreadPool* GlobalThreadPool();

}  // namespace dmml

#endif  // DMML_UTIL_THREAD_POOL_H_
