/// \file logging.h
/// \brief Minimal leveled logging and check macros.
#ifndef DMML_UTIL_LOGGING_H_
#define DMML_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dmml {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Global log threshold; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dmml

#define DMML_LOG(level) \
  ::dmml::internal::LogMessage(::dmml::LogLevel::k##level, __FILE__, __LINE__)

/// Fatal-on-false invariant check (enabled in all build types).
#define DMML_CHECK(cond)                                              \
  if (!(cond))                                                        \
  ::dmml::internal::LogMessage(::dmml::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define DMML_CHECK_EQ(a, b) DMML_CHECK((a) == (b))
#define DMML_CHECK_NE(a, b) DMML_CHECK((a) != (b))
#define DMML_CHECK_LT(a, b) DMML_CHECK((a) < (b))
#define DMML_CHECK_LE(a, b) DMML_CHECK((a) <= (b))
#define DMML_CHECK_GT(a, b) DMML_CHECK((a) > (b))
#define DMML_CHECK_GE(a, b) DMML_CHECK((a) >= (b))

#endif  // DMML_UTIL_LOGGING_H_
