#include "util/status.h"

namespace dmml {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "Invalid argument";
    case StatusCode::kOutOfRange: return "Out of range";
    case StatusCode::kNotFound: return "Not found";
    case StatusCode::kAlreadyExists: return "Already exists";
    case StatusCode::kIOError: return "IO error";
    case StatusCode::kNotImplemented: return "Not implemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kFailedPrecondition: return "Failed precondition";
  }
  return "Unknown";
}

}  // namespace dmml
