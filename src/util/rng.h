/// \file rng.h
/// \brief Deterministic, seedable random number generation.
///
/// Every randomized component in dmml takes an explicit 64-bit seed so that
/// experiments and tests are reproducible. Rng wraps a SplitMix64-seeded
/// xoshiro256** generator with convenience distributions.
#ifndef DMML_UTIL_RNG_H_
#define DMML_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dmml {

/// \brief Deterministic pseudo-random generator (xoshiro256**).
class Rng {
 public:
  /// Constructs the generator from a 64-bit seed via SplitMix64 expansion.
  explicit Rng(uint64_t seed = 42);

  /// \brief Next raw 64-bit value.
  uint64_t Next();

  /// \brief Uniform double in [0, 1).
  double Uniform();

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// \brief Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Standard normal via Box–Muller.
  double Normal();

  /// \brief Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// \brief True with probability p.
  bool Bernoulli(double p);

  /// \brief Zipf-distributed integer in [0, n) with exponent s (s=0 → uniform).
  ///
  /// Uses inverse-CDF over precomputed weights for small n; for repeated draws
  /// construct a ZipfGenerator instead.
  uint64_t Zipf(uint64_t n, double s);

  /// \brief Samples an index from a discrete distribution given by weights.
  size_t Discrete(const std::vector<double>& weights);

  /// \brief Fisher–Yates shuffle of [first, first+n).
  template <typename T>
  void Shuffle(T* first, size_t n) {
    for (size_t i = n; i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap(first[i - 1], first[j]);
    }
  }

  template <typename T>
  void Shuffle(std::vector<T>* v) {
    Shuffle(v->data(), v->size());
  }

  /// \brief Spawns an independent child generator (for per-thread streams).
  Rng Split();

 private:
  uint64_t s_[4];
};

/// \brief Precomputed Zipf sampler for repeated draws from one distribution.
class ZipfGenerator {
 public:
  /// Prepares the CDF for Zipf(n, s) over ranks [0, n).
  ZipfGenerator(uint64_t n, double s);

  /// \brief Draws one rank using the supplied generator.
  uint64_t Sample(Rng* rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace dmml

#endif  // DMML_UTIL_RNG_H_
