#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace dmml {

namespace {

// Parses CSV text into rows of fields, handling quoted fields.
Result<std::vector<std::vector<std::string>>> ParseRows(const std::string& text,
                                                        char delim) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool row_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_started = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      row_started = true;
    } else if (c == delim) {
      end_field();
      row_started = true;
    } else if (c == '\r') {
      // Swallow; handled with the following \n (or treated as row end).
      if (i + 1 < text.size() && text[i + 1] == '\n') continue;
      if (row_started || field_started) end_row();
    } else if (c == '\n') {
      if (row_started || field_started) end_row();
    } else {
      field += c;
      field_started = true;
      row_started = true;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted CSV field");
  if (row_started || field_started) end_row();
  return rows;
}

}  // namespace

Result<CsvDocument> ParseCsv(const std::string& text, const CsvOptions& options) {
  DMML_ASSIGN_OR_RETURN(auto rows, ParseRows(text, options.delimiter));
  CsvDocument doc;
  if (options.has_header) {
    if (rows.empty()) return Status::InvalidArgument("CSV has no header row");
    doc.header = std::move(rows.front());
    rows.erase(rows.begin());
  }
  doc.rows = std::move(rows);
  return doc;
}

Result<CsvDocument> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), options);
}

std::string EscapeCsvField(const std::string& field, char delimiter) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

Status WriteCsvFile(const std::string& path, const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open file for write: " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << delimiter;
      out << EscapeCsvField(row[i], delimiter);
    }
    out << '\n';
  };
  if (!header.empty()) write_row(header);
  for (const auto& row : rows) write_row(row);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace dmml
