#include "storage/schema.h"

#include <sstream>
#include <unordered_set>

namespace dmml::storage {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

Result<Schema> Schema::Make(std::vector<Field> fields) {
  std::unordered_set<std::string> seen;
  for (const auto& f : fields) {
    if (!seen.insert(f.name).second) {
      return Status::InvalidArgument("duplicate field name: " + f.name);
    }
  }
  return Schema(std::move(fields));
}

std::optional<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::RequireField(const std::string& name) const {
  auto idx = FieldIndex(name);
  if (!idx) return Status::NotFound("no field named '" + name + "'");
  return *idx;
}

Schema Schema::Concat(const Schema& other, const std::string& clash_prefix) const {
  std::vector<Field> out = fields_;
  for (const auto& f : other.fields_) {
    Field g = f;
    if (FieldIndex(f.name)) g.name = clash_prefix + f.name;
    out.push_back(std::move(g));
  }
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << fields_[i].name << ":" << DataTypeToString(fields_[i].type);
  }
  return os.str();
}

}  // namespace dmml::storage
