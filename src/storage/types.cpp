#include "storage/types.h"

#include <algorithm>
#include <cctype>

namespace dmml::storage {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64: return "INT64";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "STRING";
    case DataType::kBool: return "BOOL";
  }
  return "UNKNOWN";
}

bool ParseDataType(const std::string& name, DataType* out) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "INT64" || upper == "INT" || upper == "BIGINT") {
    *out = DataType::kInt64;
  } else if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL") {
    *out = DataType::kDouble;
  } else if (upper == "STRING" || upper == "TEXT" || upper == "VARCHAR") {
    *out = DataType::kString;
  } else if (upper == "BOOL" || upper == "BOOLEAN") {
    *out = DataType::kBool;
  } else {
    return false;
  }
  return true;
}

}  // namespace dmml::storage
