/// \file table.h
/// \brief Columnar in-memory table plus matrix bridging.
#ifndef DMML_STORAGE_TABLE_H_
#define DMML_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "la/dense_matrix.h"
#include "storage/column.h"
#include "storage/schema.h"
#include "util/result.h"

namespace dmml::storage {

/// \brief An immutable-schema, append-only columnar table.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }

  /// \brief Column by name; Status error if absent.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// \brief Appends one row; the vector must match the schema arity and types
  /// (monostate = NULL, rejected for non-nullable fields).
  Status AppendRow(const std::vector<Value>& row);

  /// \brief Row i as generic values.
  std::vector<Value> GetRow(size_t i) const;

  /// \brief Projects the named numeric columns into a dense matrix
  /// (rows x columns.size()). NULLs become 0.0 unless `reject_nulls`.
  Result<la::DenseMatrix> ToMatrix(const std::vector<std::string>& columns,
                                   bool reject_nulls = false) const;

  /// \brief Single numeric column as an (n x 1) vector.
  Result<la::DenseMatrix> ColumnToVector(const std::string& name) const;

  /// \brief Loads a CSV file; column types are taken from `schema`.
  static Result<Table> FromCsvFile(const std::string& path, const Schema& schema,
                                   bool has_header = true);

  /// \brief Writes the table as CSV with a header row.
  Status ToCsvFile(const std::string& path) const;

  /// \brief Short "Table(N rows: schema)" description.
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace dmml::storage

#endif  // DMML_STORAGE_TABLE_H_
