#include "storage/catalog.h"

namespace dmml::storage {

Status Catalog::RegisterTable(const std::string& name, Table table) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table already registered: " + name);
  }
  tables_.emplace(name, std::make_shared<const Table>(std::move(table)));
  return Status::OK();
}

void Catalog::PutTable(const std::string& name, Table table) {
  tables_[name] = std::make_shared<const Table>(std::move(table));
}

Result<std::shared_ptr<const Table>> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named: " + name);
  return it->second;
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) return Status::NotFound("no table named: " + name);
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const { return tables_.count(name) > 0; }

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace dmml::storage
