#include "storage/column.h"

#include <sstream>

namespace dmml::storage {

bool ValueMatchesType(const Value& v, DataType type) {
  switch (type) {
    case DataType::kInt64: return std::holds_alternative<int64_t>(v);
    case DataType::kDouble: return std::holds_alternative<double>(v);
    case DataType::kString: return std::holds_alternative<std::string>(v);
    case DataType::kBool: return std::holds_alternative<bool>(v);
  }
  return false;
}

std::string ValueToString(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) return "";
  if (const auto* i = std::get_if<int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    std::ostringstream os;
    os << *d;
    return os.str();
  }
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  if (const auto* b = std::get_if<bool>(&v)) return *b ? "true" : "false";
  return "";
}

void Column::AppendSlot(bool valid) {
  valid_.push_back(valid ? 1 : 0);
  if (!valid) ++null_count_;
  // Keep the active buffer aligned with valid_; pad inactive types lazily only
  // for the active type to avoid 4x memory.
  switch (type_) {
    case DataType::kInt64:
      if (int64_data_.size() < valid_.size()) int64_data_.push_back(0);
      break;
    case DataType::kDouble:
      if (double_data_.size() < valid_.size()) double_data_.push_back(0.0);
      break;
    case DataType::kString:
      if (string_data_.size() < valid_.size()) string_data_.emplace_back();
      break;
    case DataType::kBool:
      if (bool_data_.size() < valid_.size()) bool_data_.push_back(0);
      break;
  }
}

Status Column::Append(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) {
    AppendNull();
    return Status::OK();
  }
  if (!ValueMatchesType(v, type_)) {
    return Status::InvalidArgument(std::string("value type does not match column (") +
                                   DataTypeToString(type_) + ")");
  }
  switch (type_) {
    case DataType::kInt64: AppendInt64(std::get<int64_t>(v)); break;
    case DataType::kDouble: AppendDouble(std::get<double>(v)); break;
    case DataType::kString: AppendString(std::get<std::string>(v)); break;
    case DataType::kBool: AppendBool(std::get<bool>(v)); break;
  }
  return Status::OK();
}

void Column::AppendNull() { AppendSlot(false); }

void Column::AppendInt64(int64_t v) {
  int64_data_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendDouble(double v) {
  double_data_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendString(std::string v) {
  string_data_.push_back(std::move(v));
  valid_.push_back(1);
}

void Column::AppendBool(bool v) {
  bool_data_.push_back(v ? 1 : 0);
  valid_.push_back(1);
}

Value Column::GetValue(size_t i) const {
  if (!IsValid(i)) return std::monostate{};
  switch (type_) {
    case DataType::kInt64: return int64_data_[i];
    case DataType::kDouble: return double_data_[i];
    case DataType::kString: return string_data_[i];
    case DataType::kBool: return bool_data_[i] != 0;
  }
  return std::monostate{};
}

Result<double> Column::GetNumeric(size_t i) const {
  if (!IsValid(i)) return Status::InvalidArgument("NULL value is not numeric");
  switch (type_) {
    case DataType::kInt64: return static_cast<double>(int64_data_[i]);
    case DataType::kDouble: return double_data_[i];
    case DataType::kBool: return bool_data_[i] ? 1.0 : 0.0;
    case DataType::kString:
      return Status::InvalidArgument("string column is not numeric");
  }
  return Status::Internal("unreachable");
}

}  // namespace dmml::storage
