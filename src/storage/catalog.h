/// \file catalog.h
/// \brief Named-table registry, the root object of the relational substrate.
#ifndef DMML_STORAGE_CATALOG_H_
#define DMML_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/result.h"

namespace dmml::storage {

/// \brief Owns tables by name. Single-threaded registry (workers read tables
/// through shared_ptr, which keeps them alive across catalog mutations).
class Catalog {
 public:
  /// \brief Registers a table; AlreadyExists if the name is taken.
  Status RegisterTable(const std::string& name, Table table);

  /// \brief Replaces or inserts a table.
  void PutTable(const std::string& name, Table table);

  /// \brief Looks up a table by name.
  Result<std::shared_ptr<const Table>> GetTable(const std::string& name) const;

  /// \brief Removes a table; NotFound if absent.
  Status DropTable(const std::string& name);

  /// \brief True iff `name` is registered.
  bool HasTable(const std::string& name) const;

  /// \brief Registered table names, sorted.
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::shared_ptr<const Table>> tables_;
};

}  // namespace dmml::storage

#endif  // DMML_STORAGE_CATALOG_H_
