/// \file schema.h
/// \brief Table schemas: ordered, named, typed fields.
#ifndef DMML_STORAGE_SCHEMA_H_
#define DMML_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "storage/types.h"
#include "util/result.h"

namespace dmml::storage {

/// \brief One named, typed field of a schema.
struct Field {
  std::string name;
  DataType type;
  bool nullable = true;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type && nullable == other.nullable;
  }
};

/// \brief Ordered collection of fields with unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// \brief Validates name uniqueness.
  static Result<Schema> Make(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// \brief Index of the field named `name`, if present.
  std::optional<size_t> FieldIndex(const std::string& name) const;

  /// \brief Result-returning variant of FieldIndex.
  Result<size_t> RequireField(const std::string& name) const;

  /// \brief Schema of this ⨝ other with `prefix` disambiguation on clashes.
  Schema Concat(const Schema& other, const std::string& clash_prefix) const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }

  /// \brief "name:TYPE, name:TYPE, ..." rendering.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace dmml::storage

#endif  // DMML_STORAGE_SCHEMA_H_
