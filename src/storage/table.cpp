#include "storage/table.h"

#include <sstream>

#include "util/csv.h"
#include "util/string_utils.h"

namespace dmml::storage {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) columns_.emplace_back(f.type);
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  DMML_ASSIGN_OR_RETURN(size_t idx, schema_.RequireField(name));
  return &columns_[idx];
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " does not match schema arity " +
                                   std::to_string(schema_.num_fields()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const bool is_null = std::holds_alternative<std::monostate>(row[i]);
    if (is_null && !schema_.field(i).nullable) {
      return Status::InvalidArgument("NULL in non-nullable field " +
                                     schema_.field(i).name);
    }
    if (!is_null && !ValueMatchesType(row[i], schema_.field(i).type)) {
      return Status::InvalidArgument("type mismatch in field " + schema_.field(i).name);
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    DMML_RETURN_IF_ERROR(columns_[i].Append(row[i]));
  }
  ++num_rows_;
  return Status::OK();
}

std::vector<Value> Table::GetRow(size_t i) const {
  std::vector<Value> row;
  row.reserve(columns_.size());
  for (const auto& col : columns_) row.push_back(col.GetValue(i));
  return row;
}

Result<la::DenseMatrix> Table::ToMatrix(const std::vector<std::string>& columns,
                                        bool reject_nulls) const {
  std::vector<const Column*> cols;
  cols.reserve(columns.size());
  for (const auto& name : columns) {
    DMML_ASSIGN_OR_RETURN(const Column* col, ColumnByName(name));
    if (col->type() == DataType::kString) {
      return Status::InvalidArgument("column '" + name +
                                     "' is a string column; encode it first");
    }
    if (reject_nulls && col->null_count() > 0) {
      return Status::InvalidArgument("column '" + name + "' contains NULLs");
    }
    cols.push_back(col);
  }
  la::DenseMatrix m(num_rows_, cols.size());
  for (size_t j = 0; j < cols.size(); ++j) {
    const Column& col = *cols[j];
    for (size_t i = 0; i < num_rows_; ++i) {
      if (!col.IsValid(i)) continue;  // NULL -> 0.0
      switch (col.type()) {
        case DataType::kInt64:
          m.At(i, j) = static_cast<double>(col.GetInt64(i));
          break;
        case DataType::kDouble:
          m.At(i, j) = col.GetDouble(i);
          break;
        case DataType::kBool:
          m.At(i, j) = col.GetBool(i) ? 1.0 : 0.0;
          break;
        case DataType::kString:
          break;  // Unreachable; rejected above.
      }
    }
  }
  return m;
}

Result<la::DenseMatrix> Table::ColumnToVector(const std::string& name) const {
  return ToMatrix({name});
}

Result<Table> Table::FromCsvFile(const std::string& path, const Schema& schema,
                                 bool has_header) {
  CsvOptions options;
  options.has_header = has_header;
  DMML_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsvFile(path, options));
  Table table(schema);
  for (size_t r = 0; r < doc.rows.size(); ++r) {
    const auto& cells = doc.rows[r];
    if (cells.size() != schema.num_fields()) {
      return Status::InvalidArgument("CSV row " + std::to_string(r) + " has " +
                                     std::to_string(cells.size()) + " cells, expected " +
                                     std::to_string(schema.num_fields()));
    }
    std::vector<Value> row;
    row.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      if (cell.empty()) {
        row.emplace_back(std::monostate{});
        continue;
      }
      switch (schema.field(c).type) {
        case DataType::kInt64: {
          DMML_ASSIGN_OR_RETURN(int64_t v, ParseInt64(cell));
          row.emplace_back(v);
          break;
        }
        case DataType::kDouble: {
          DMML_ASSIGN_OR_RETURN(double v, ParseDouble(cell));
          row.emplace_back(v);
          break;
        }
        case DataType::kString:
          row.emplace_back(cell);
          break;
        case DataType::kBool:
          row.emplace_back(cell == "true" || cell == "1" || cell == "TRUE");
          break;
      }
    }
    DMML_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Status Table::ToCsvFile(const std::string& path) const {
  std::vector<std::string> header;
  header.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) header.push_back(f.name);
  std::vector<std::vector<std::string>> rows;
  rows.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (const auto& col : columns_) cells.push_back(ValueToString(col.GetValue(i)));
    rows.push_back(std::move(cells));
  }
  return WriteCsvFile(path, header, rows);
}

std::string Table::ToString() const {
  std::ostringstream os;
  os << "Table(" << num_rows_ << " rows: " << schema_.ToString() << ")";
  return os.str();
}

}  // namespace dmml::storage
