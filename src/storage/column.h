/// \file column.h
/// \brief Typed columnar storage with null bitmap.
#ifndef DMML_STORAGE_COLUMN_H_
#define DMML_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "storage/types.h"
#include "util/result.h"

namespace dmml::storage {

/// \brief A dynamically-typed cell value. Monostate encodes NULL.
using Value = std::variant<std::monostate, int64_t, double, std::string, bool>;

/// \brief The DataType a Value carries, or nullopt-like false for NULL.
bool ValueMatchesType(const Value& v, DataType type);

/// \brief Renders a value for CSV output; NULL renders as "".
std::string ValueToString(const Value& v);

/// \brief A single typed column: contiguous values plus a validity bitmap.
///
/// All four physical vectors exist; only the one matching type() is used.
/// This trades a little space for a simple, cache-friendly accessor story.
class Column {
 public:
  explicit Column(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return valid_.size(); }

  /// \brief True iff row i holds a non-NULL value.
  bool IsValid(size_t i) const { return valid_[i]; }

  /// \brief Number of NULL entries.
  size_t null_count() const { return null_count_; }

  /// \brief Appends a typed value; Status error if the type mismatches.
  Status Append(const Value& v);

  /// \brief Appends a NULL.
  void AppendNull();

  // Typed appends (no validation; caller owns type discipline).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendBool(bool v);

  // Typed accessors; undefined for NULL rows or wrong type.
  int64_t GetInt64(size_t i) const { return int64_data_[i]; }
  double GetDouble(size_t i) const { return double_data_[i]; }
  const std::string& GetString(size_t i) const { return string_data_[i]; }
  bool GetBool(size_t i) const { return bool_data_[i] != 0; }

  /// \brief Generic accessor (allocates for strings).
  Value GetValue(size_t i) const;

  /// \brief Numeric view: int64/bool/double as double; Status error otherwise
  /// or for NULL.
  Result<double> GetNumeric(size_t i) const;

  /// \brief Direct access to the raw typed buffers (for vectorized readers).
  const std::vector<int64_t>& int64_data() const { return int64_data_; }
  const std::vector<double>& double_data() const { return double_data_; }
  const std::vector<std::string>& string_data() const { return string_data_; }
  const std::vector<uint8_t>& bool_data() const { return bool_data_; }

 private:
  DataType type_;
  std::vector<uint8_t> valid_;
  size_t null_count_ = 0;
  std::vector<int64_t> int64_data_;
  std::vector<double> double_data_;
  std::vector<std::string> string_data_;
  std::vector<uint8_t> bool_data_;

  void AppendSlot(bool valid);
};

}  // namespace dmml::storage

#endif  // DMML_STORAGE_COLUMN_H_
