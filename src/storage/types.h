/// \file types.h
/// \brief Logical column types of the storage layer.
#ifndef DMML_STORAGE_TYPES_H_
#define DMML_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

namespace dmml::storage {

/// Logical type of a column.
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kBool = 3,
};

/// \brief Human-readable type name ("INT64", "DOUBLE", ...).
const char* DataTypeToString(DataType type);

/// \brief Parses "INT64"/"DOUBLE"/"STRING"/"BOOL" (case-insensitive).
bool ParseDataType(const std::string& name, DataType* out);

}  // namespace dmml::storage

#endif  // DMML_STORAGE_TYPES_H_
