#include "relational/sort_merge_join.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace dmml::relational {

using storage::Column;
using storage::DataType;
using storage::Schema;
using storage::Table;

namespace {

// Sorted row ids of the non-NULL keys of `col`.
std::vector<size_t> SortedKeyOrder(const Column& col, size_t num_rows) {
  std::vector<size_t> order;
  order.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    if (col.IsValid(i)) order.push_back(i);
  }
  if (col.type() == DataType::kInt64) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return col.GetInt64(a) < col.GetInt64(b);
    });
  } else {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return col.GetString(a) < col.GetString(b);
    });
  }
  return order;
}

int CompareKeys(const Column& a, size_t i, const Column& b, size_t j) {
  if (a.type() == DataType::kInt64) {
    int64_t va = a.GetInt64(i), vb = b.GetInt64(j);
    return va < vb ? -1 : (va > vb ? 1 : 0);
  }
  int c = a.GetString(i).compare(b.GetString(j));
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

}  // namespace

Result<Table> SortMergeJoin(const Table& left, const Table& right,
                            const std::string& left_key, const std::string& right_key,
                            const std::string& clash_prefix) {
  DMML_ASSIGN_OR_RETURN(size_t lk, left.schema().RequireField(left_key));
  DMML_ASSIGN_OR_RETURN(size_t rk, right.schema().RequireField(right_key));
  const Column& lcol = left.column(lk);
  const Column& rcol = right.column(rk);
  if (lcol.type() != rcol.type()) {
    return Status::InvalidArgument("join key type mismatch");
  }
  if (lcol.type() != DataType::kInt64 && lcol.type() != DataType::kString) {
    return Status::InvalidArgument("join keys must be INT64 or STRING");
  }

  DMML_TRACE_SPAN("relational.sort_merge_join");
  Stopwatch sort_watch;
  auto lorder = SortedKeyOrder(lcol, left.num_rows());
  auto rorder = SortedKeyOrder(rcol, right.num_rows());
  DMML_COUNTER_ADD("relational.smj.sort_us", sort_watch.ElapsedMicros());

  Schema out_schema = left.schema().Concat(right.schema(), clash_prefix);
  Table out(out_schema);
  Stopwatch merge_watch;

  size_t li = 0, ri = 0;
  while (li < lorder.size() && ri < rorder.size()) {
    int cmp = CompareKeys(lcol, lorder[li], rcol, rorder[ri]);
    if (cmp < 0) {
      ++li;
    } else if (cmp > 0) {
      ++ri;
    } else {
      // Key group boundaries on both sides.
      size_t lend = li;
      while (lend + 1 < lorder.size() &&
             CompareKeys(lcol, lorder[lend + 1], lcol, lorder[li]) == 0) {
        ++lend;
      }
      size_t rend = ri;
      while (rend + 1 < rorder.size() &&
             CompareKeys(rcol, rorder[rend + 1], rcol, rorder[ri]) == 0) {
        ++rend;
      }
      for (size_t a = li; a <= lend; ++a) {
        for (size_t b = ri; b <= rend; ++b) {
          auto row = left.GetRow(lorder[a]);
          auto rrow = right.GetRow(rorder[b]);
          row.insert(row.end(), std::make_move_iterator(rrow.begin()),
                     std::make_move_iterator(rrow.end()));
          DMML_RETURN_IF_ERROR(out.AppendRow(row));
        }
      }
      li = lend + 1;
      ri = rend + 1;
    }
  }
  DMML_COUNTER_ADD("relational.smj.merge_us", merge_watch.ElapsedMicros());
  DMML_COUNTER_ADD("relational.smj.rows_emitted", out.num_rows());
  return out;
}

}  // namespace dmml::relational
