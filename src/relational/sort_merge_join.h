/// \file sort_merge_join.h
/// \brief Sort-merge equi-join — the classic alternative to the hash join in
/// operators.h, kept separate for ablation benchmarking.
#ifndef DMML_RELATIONAL_SORT_MERGE_JOIN_H_
#define DMML_RELATIONAL_SORT_MERGE_JOIN_H_

#include <string>

#include "relational/operators.h"
#include "storage/table.h"
#include "util/result.h"

namespace dmml::relational {

/// \brief Inner equi-join on one INT64 or STRING key per side, implemented
/// by sorting row ids on both sides and merging. Produces the same rows as
/// HashJoin but ordered by key (then by left/right row order within a key).
Result<storage::Table> SortMergeJoin(const storage::Table& left,
                                     const storage::Table& right,
                                     const std::string& left_key,
                                     const std::string& right_key,
                                     const std::string& clash_prefix = "r_");

}  // namespace dmml::relational

#endif  // DMML_RELATIONAL_SORT_MERGE_JOIN_H_
