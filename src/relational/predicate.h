/// \file predicate.h
/// \brief Row predicates for the Filter operator.
#ifndef DMML_RELATIONAL_PREDICATE_H_
#define DMML_RELATIONAL_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/result.h"

namespace dmml::relational {

struct TableStatistics;

/// Comparison operator of a leaf predicate.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Selectivity assumed when statistics cannot say anything sharper (the
/// System R magic constant for an arbitrary predicate).
inline constexpr double kDefaultSelectivity = 1.0 / 3.0;

/// \brief A boolean row predicate tree (leaf comparisons, AND/OR/NOT).
///
/// Predicates are evaluated column-at-a-time by Filter; Bind() resolves the
/// column name against a concrete schema once per table.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// \brief Evaluates the predicate for row `row` of `table`.
  /// NULL comparisons evaluate to false (SQL-ish three-valued collapse).
  virtual Result<bool> Evaluate(const storage::Table& table, size_t row) const = 0;

  /// \brief Checks the predicate is well-formed against `schema`.
  virtual Status Validate(const storage::Schema& schema) const = 0;

  /// \brief Estimated fraction of rows the predicate keeps, given collected
  /// statistics for the input table. Leaf comparisons use histogram/ndv
  /// estimates (relational/statistics.h); AND multiplies, OR adds with
  /// inclusion–exclusion, NOT complements — all under the textbook
  /// independence assumption. Defaults to kDefaultSelectivity when the
  /// statistics cannot say anything sharper.
  virtual double EstimateSelectivity(const TableStatistics& stats) const;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// \brief column <op> literal.
PredicatePtr Compare(std::string column, CompareOp op, storage::Value literal);

/// \brief Conjunction.
PredicatePtr And(PredicatePtr lhs, PredicatePtr rhs);

/// \brief Disjunction.
PredicatePtr Or(PredicatePtr lhs, PredicatePtr rhs);

/// \brief Negation (NULL-comparisons stay false, they do not become true).
PredicatePtr Not(PredicatePtr inner);

/// \brief column IS NULL.
PredicatePtr IsNull(std::string column);

}  // namespace dmml::relational

#endif  // DMML_RELATIONAL_PREDICATE_H_
