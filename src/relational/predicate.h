/// \file predicate.h
/// \brief Row predicates for the Filter operator.
#ifndef DMML_RELATIONAL_PREDICATE_H_
#define DMML_RELATIONAL_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"
#include "util/result.h"

namespace dmml::relational {

/// Comparison operator of a leaf predicate.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// \brief A boolean row predicate tree (leaf comparisons, AND/OR/NOT).
///
/// Predicates are evaluated column-at-a-time by Filter; Bind() resolves the
/// column name against a concrete schema once per table.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// \brief Evaluates the predicate for row `row` of `table`.
  /// NULL comparisons evaluate to false (SQL-ish three-valued collapse).
  virtual Result<bool> Evaluate(const storage::Table& table, size_t row) const = 0;

  /// \brief Checks the predicate is well-formed against `schema`.
  virtual Status Validate(const storage::Schema& schema) const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// \brief column <op> literal.
PredicatePtr Compare(std::string column, CompareOp op, storage::Value literal);

/// \brief Conjunction.
PredicatePtr And(PredicatePtr lhs, PredicatePtr rhs);

/// \brief Disjunction.
PredicatePtr Or(PredicatePtr lhs, PredicatePtr rhs);

/// \brief Negation (NULL-comparisons stay false, they do not become true).
PredicatePtr Not(PredicatePtr inner);

/// \brief column IS NULL.
PredicatePtr IsNull(std::string column);

}  // namespace dmml::relational

#endif  // DMML_RELATIONAL_PREDICATE_H_
