#include "relational/statistics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace dmml::relational {

using storage::Column;
using storage::DataType;
using storage::Table;

const ColumnStatistics* TableStatistics::Find(const std::string& name) const {
  for (const auto& col : columns) {
    if (col.name == name) return &col;
  }
  return nullptr;
}

Result<TableStatistics> CollectStatistics(const Table& table,
                                          size_t histogram_buckets) {
  if (histogram_buckets == 0) {
    return Status::InvalidArgument("histogram_buckets must be >= 1");
  }
  TableStatistics stats;
  stats.num_rows = table.num_rows();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    ColumnStatistics cs;
    cs.name = table.schema().field(c).name;
    cs.num_rows = table.num_rows();
    cs.null_count = col.null_count();

    if (col.type() == DataType::kString) {
      std::unordered_set<std::string> distinct;
      for (size_t i = 0; i < table.num_rows(); ++i) {
        if (col.IsValid(i)) distinct.insert(col.GetString(i));
      }
      cs.distinct_count = distinct.size();
    } else {
      std::unordered_set<double> distinct;
      double mn = std::numeric_limits<double>::infinity();
      double mx = -std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < table.num_rows(); ++i) {
        if (!col.IsValid(i)) continue;
        double v = *col.GetNumeric(i);
        distinct.insert(v);
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      cs.distinct_count = distinct.size();
      if (!distinct.empty()) {
        cs.min_value = mn;
        cs.max_value = mx;
        cs.histogram.assign(histogram_buckets, 0);
        double width = (mx - mn) / static_cast<double>(histogram_buckets);
        for (size_t i = 0; i < table.num_rows(); ++i) {
          if (!col.IsValid(i)) continue;
          double v = *col.GetNumeric(i);
          size_t bucket =
              width > 0 ? std::min(histogram_buckets - 1,
                                   static_cast<size_t>((v - mn) / width))
                        : 0;
          cs.histogram[bucket]++;
        }
      }
    }
    stats.columns.push_back(std::move(cs));
  }
  return stats;
}

Result<double> EstimateSelectivity(const TableStatistics& stats,
                                   const std::string& column, CompareOp op,
                                   double value) {
  const ColumnStatistics* cs = stats.Find(column);
  if (cs == nullptr) return Status::NotFound("no statistics for column " + column);
  if (cs->num_rows == 0) return 0.0;
  const double non_null_fraction =
      1.0 - static_cast<double>(cs->null_count) / static_cast<double>(cs->num_rows);
  if (!cs->min_value) return 0.0;  // All NULL (or string column).

  const double mn = *cs->min_value, mx = *cs->max_value;
  auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };

  double selectivity;
  switch (op) {
    case CompareOp::kEq:
      if (value < mn || value > mx) {
        selectivity = 0.0;
      } else {
        selectivity = cs->distinct_count > 0
                          ? 1.0 / static_cast<double>(cs->distinct_count)
                          : 0.0;
      }
      break;
    case CompareOp::kNe:
      selectivity = value < mn || value > mx
                        ? 1.0
                        : 1.0 - (cs->distinct_count > 0
                                     ? 1.0 / static_cast<double>(cs->distinct_count)
                                     : 0.0);
      break;
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: {
      // Histogram mass below `value` (linear interpolation within bucket).
      double below;
      if (mx == mn) {
        // Degenerate point mass: honor strict vs non-strict comparisons.
        bool inclusive = op == CompareOp::kLe || op == CompareOp::kGt;
        below = (inclusive ? value >= mx : value > mx) ? 1.0 : 0.0;
      } else if (cs->histogram.empty()) {
        below = clamp01((value - mn) / (mx - mn));
      } else {
        double width = (mx - mn) / static_cast<double>(cs->histogram.size());
        double mass = 0, total = 0;
        for (size_t b = 0; b < cs->histogram.size(); ++b) {
          total += static_cast<double>(cs->histogram[b]);
          double lo = mn + width * static_cast<double>(b);
          double hi = lo + width;
          if (value >= hi) {
            mass += static_cast<double>(cs->histogram[b]);
          } else if (value > lo) {
            mass += static_cast<double>(cs->histogram[b]) * (value - lo) / width;
          }
        }
        below = total > 0 ? mass / total : 0.0;
      }
      if (op == CompareOp::kLt || op == CompareOp::kLe) {
        selectivity = clamp01(below);
      } else {
        selectivity = clamp01(1.0 - below);
      }
      break;
    }
    default:
      return Status::Internal("unreachable compare op");
  }
  return selectivity * non_null_fraction;
}

Result<double> EstimateJoinCardinality(const TableStatistics& left,
                                       const std::string& left_column,
                                       const TableStatistics& right,
                                       const std::string& right_column) {
  const ColumnStatistics* lc = left.Find(left_column);
  const ColumnStatistics* rc = right.Find(right_column);
  if (lc == nullptr || rc == nullptr) {
    return Status::NotFound("missing join-column statistics");
  }
  size_t max_ndv = std::max(lc->distinct_count, rc->distinct_count);
  if (max_ndv == 0) return 0.0;
  return static_cast<double>(left.num_rows) * static_cast<double>(right.num_rows) /
         static_cast<double>(max_ndv);
}

}  // namespace dmml::relational
