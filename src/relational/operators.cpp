#include "relational/operators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace dmml::relational {

using storage::Column;
using storage::DataType;
using storage::Field;
using storage::Schema;
using storage::Table;
using storage::Value;

Result<Table> Filter(const Table& input, const PredicatePtr& pred) {
  DMML_RETURN_IF_ERROR(pred->Validate(input.schema()));
  Table out(input.schema());
  for (size_t i = 0; i < input.num_rows(); ++i) {
    DMML_ASSIGN_OR_RETURN(bool keep, pred->Evaluate(input, i));
    if (keep) DMML_RETURN_IF_ERROR(out.AppendRow(input.GetRow(i)));
  }
  return out;
}

Result<Table> Project(const Table& input, const std::vector<std::string>& columns) {
  std::vector<size_t> indices;
  std::vector<Field> fields;
  for (const auto& name : columns) {
    DMML_ASSIGN_OR_RETURN(size_t idx, input.schema().RequireField(name));
    indices.push_back(idx);
    fields.push_back(input.schema().field(idx));
  }
  DMML_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table out(schema);
  std::vector<Value> row(indices.size());
  for (size_t i = 0; i < input.num_rows(); ++i) {
    for (size_t j = 0; j < indices.size(); ++j) {
      row[j] = input.column(indices[j]).GetValue(i);
    }
    DMML_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

namespace {

// A join key: either int64 or string. NULL keys are skipped by callers.
struct JoinKey {
  bool is_string = false;
  int64_t ival = 0;
  std::string sval;

  bool operator==(const JoinKey& other) const {
    if (is_string != other.is_string) return false;
    return is_string ? sval == other.sval : ival == other.ival;
  }
};

struct JoinKeyHash {
  size_t operator()(const JoinKey& k) const {
    return k.is_string ? std::hash<std::string>()(k.sval)
                       : std::hash<int64_t>()(static_cast<int64_t>(k.ival));
  }
};

Result<JoinKey> MakeKey(const Column& col, size_t row) {
  JoinKey k;
  switch (col.type()) {
    case DataType::kInt64:
      k.is_string = false;
      k.ival = col.GetInt64(row);
      return k;
    case DataType::kString:
      k.is_string = true;
      k.sval = col.GetString(row);
      return k;
    default:
      return Status::InvalidArgument("join keys must be INT64 or STRING");
  }
}

}  // namespace

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_key, const std::string& right_key,
                       const JoinOptions& options) {
  DMML_ASSIGN_OR_RETURN(size_t lk, left.schema().RequireField(left_key));
  DMML_ASSIGN_OR_RETURN(size_t rk, right.schema().RequireField(right_key));
  const Column& lcol = left.column(lk);
  const Column& rcol = right.column(rk);
  if (lcol.type() != rcol.type()) {
    return Status::InvalidArgument("join key type mismatch: " +
                                   std::string(DataTypeToString(lcol.type())) + " vs " +
                                   DataTypeToString(rcol.type()));
  }

  DMML_TRACE_SPAN("relational.hash_join");

  // Build a hash table on the right input.
  Stopwatch build_watch;
  std::unordered_map<JoinKey, std::vector<size_t>, JoinKeyHash> build;
  build.reserve(right.num_rows());
  for (size_t i = 0; i < right.num_rows(); ++i) {
    if (!rcol.IsValid(i)) continue;
    DMML_ASSIGN_OR_RETURN(JoinKey key, MakeKey(rcol, i));
    build[std::move(key)].push_back(i);
  }
  DMML_COUNTER_ADD("relational.join.rows_built", right.num_rows());
  DMML_COUNTER_ADD("relational.join.build_us", build_watch.ElapsedMicros());

  Schema right_schema = right.schema();
  if (options.type == JoinType::kLeftOuter) {
    // Unmatched left rows are padded with NULLs on the right side, so every
    // right field must be nullable in the output schema.
    std::vector<Field> fields = right_schema.fields();
    for (auto& f : fields) f.nullable = true;
    right_schema = Schema(std::move(fields));
  }
  Schema out_schema = left.schema().Concat(right_schema, options.clash_prefix);
  Table out(out_schema);

  const size_t right_arity = right.schema().num_fields();
  Stopwatch probe_watch;
  std::vector<Value> row;
  row.reserve(out_schema.num_fields());
  for (size_t i = 0; i < left.num_rows(); ++i) {
    const std::vector<size_t>* matches = nullptr;
    if (lcol.IsValid(i)) {
      DMML_ASSIGN_OR_RETURN(JoinKey key, MakeKey(lcol, i));
      auto it = build.find(key);
      if (it != build.end()) matches = &it->second;
    }
    if (matches) {
      for (size_t r : *matches) {
        row = left.GetRow(i);
        auto rrow = right.GetRow(r);
        row.insert(row.end(), std::make_move_iterator(rrow.begin()),
                   std::make_move_iterator(rrow.end()));
        DMML_RETURN_IF_ERROR(out.AppendRow(row));
      }
    } else if (options.type == JoinType::kLeftOuter) {
      row = left.GetRow(i);
      row.resize(row.size() + right_arity, std::monostate{});
      DMML_RETURN_IF_ERROR(out.AppendRow(row));
    }
  }
  DMML_COUNTER_ADD("relational.join.rows_probed", left.num_rows());
  DMML_COUNTER_ADD("relational.join.rows_emitted", out.num_rows());
  DMML_COUNTER_ADD("relational.join.probe_us", probe_watch.ElapsedMicros());
  return out;
}

namespace {

struct AggState {
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  size_t count = 0;       // Rows in the group (for COUNT).
  size_t value_count = 0; // Non-NULL values seen (for AVG/MIN/MAX semantics).
};

}  // namespace

Result<Table> GroupBy(const Table& input, const std::vector<std::string>& keys,
                      const std::vector<AggSpec>& aggs) {
  std::vector<size_t> key_idx;
  for (const auto& k : keys) {
    DMML_ASSIGN_OR_RETURN(size_t idx, input.schema().RequireField(k));
    key_idx.push_back(idx);
  }
  std::vector<size_t> agg_idx(aggs.size(), SIZE_MAX);
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].func == AggFunc::kCount && aggs[a].column.empty()) continue;
    DMML_ASSIGN_OR_RETURN(size_t idx, input.schema().RequireField(aggs[a].column));
    const auto type = input.schema().field(idx).type;
    if (type == DataType::kString && aggs[a].func != AggFunc::kCount) {
      return Status::InvalidArgument("cannot aggregate string column " +
                                     aggs[a].column);
    }
    agg_idx[a] = idx;
  }

  // Group rows by stringified key tuple (simple and deterministic).
  std::map<std::vector<std::string>, std::vector<AggState>> groups;
  std::map<std::vector<std::string>, std::vector<Value>> group_keys;
  for (size_t i = 0; i < input.num_rows(); ++i) {
    std::vector<std::string> gk;
    std::vector<Value> kv;
    gk.reserve(key_idx.size());
    for (size_t idx : key_idx) {
      Value v = input.column(idx).GetValue(i);
      gk.push_back(storage::ValueToString(v) +
                   (std::holds_alternative<std::monostate>(v) ? "\x01NULL" : ""));
      kv.push_back(std::move(v));
    }
    auto [it, inserted] = groups.try_emplace(gk, aggs.size());
    if (inserted) group_keys.emplace(gk, std::move(kv));
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& st = it->second[a];
      st.count++;
      if (agg_idx[a] == SIZE_MAX) continue;
      const Column& col = input.column(agg_idx[a]);
      if (!col.IsValid(i)) continue;
      auto num = col.GetNumeric(i);
      if (!num.ok()) continue;
      double v = *num;
      st.sum += v;
      st.min = std::min(st.min, v);
      st.max = std::max(st.max, v);
      st.value_count++;
    }
  }

  // Output schema: key fields then aggregate fields.
  std::vector<Field> fields;
  for (size_t idx : key_idx) fields.push_back(input.schema().field(idx));
  for (const auto& a : aggs) {
    DataType t = a.func == AggFunc::kCount ? DataType::kInt64 : DataType::kDouble;
    fields.push_back({a.output_name, t, true});
  }
  DMML_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(fields)));
  Table out(schema);

  for (const auto& [gk, states] : groups) {
    std::vector<Value> row = group_keys[gk];
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggState& st = states[a];
      switch (aggs[a].func) {
        case AggFunc::kCount:
          row.emplace_back(static_cast<int64_t>(st.count));
          break;
        case AggFunc::kSum:
          if (st.value_count == 0) row.emplace_back(std::monostate{});
          else row.emplace_back(st.sum);
          break;
        case AggFunc::kAvg:
          if (st.value_count == 0) row.emplace_back(std::monostate{});
          else row.emplace_back(st.sum / static_cast<double>(st.value_count));
          break;
        case AggFunc::kMin:
          if (st.value_count == 0) row.emplace_back(std::monostate{});
          else row.emplace_back(st.min);
          break;
        case AggFunc::kMax:
          if (st.value_count == 0) row.emplace_back(std::monostate{});
          else row.emplace_back(st.max);
          break;
      }
    }
    DMML_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<Table> OrderBy(const Table& input, const std::string& column, bool ascending) {
  DMML_ASSIGN_OR_RETURN(size_t idx, input.schema().RequireField(column));
  const Column& col = input.column(idx);
  std::vector<size_t> order(input.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  auto less = [&](size_t a, size_t b) {
    bool va = col.IsValid(a), vb = col.IsValid(b);
    if (!va || !vb) return !va && vb;  // NULLs first.
    switch (col.type()) {
      case DataType::kInt64: return col.GetInt64(a) < col.GetInt64(b);
      case DataType::kDouble: return col.GetDouble(a) < col.GetDouble(b);
      case DataType::kString: return col.GetString(a) < col.GetString(b);
      case DataType::kBool: return col.GetBool(a) < col.GetBool(b);
    }
    return false;
  };
  std::stable_sort(order.begin(), order.end(), less);
  if (!ascending) std::reverse(order.begin(), order.end());

  Table out(input.schema());
  for (size_t i : order) DMML_RETURN_IF_ERROR(out.AppendRow(input.GetRow(i)));
  return out;
}

Result<Table> Union(const Table& a, const Table& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("UNION requires identical schemas");
  }
  Table out(a.schema());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    DMML_RETURN_IF_ERROR(out.AppendRow(a.GetRow(i)));
  }
  for (size_t i = 0; i < b.num_rows(); ++i) {
    DMML_RETURN_IF_ERROR(out.AppendRow(b.GetRow(i)));
  }
  return out;
}

Table Limit(const Table& input, size_t n) {
  Table out(input.schema());
  for (size_t i = 0; i < std::min(n, input.num_rows()); ++i) {
    out.AppendRow(input.GetRow(i));
  }
  return out;
}

}  // namespace dmml::relational
