#include "relational/logical_plan.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"

namespace dmml::relational {

using storage::Schema;
using storage::Table;

LogicalPlan LogicalNode::Scan(std::string table) {
  auto n = std::shared_ptr<LogicalNode>(new LogicalNode());
  n->op_ = LogicalOp::kScan;
  n->table_ = std::move(table);
  return n;
}

LogicalPlan LogicalNode::Filter(LogicalPlan input, PredicatePtr pred) {
  auto n = std::shared_ptr<LogicalNode>(new LogicalNode());
  n->op_ = LogicalOp::kFilter;
  n->inputs_ = {std::move(input)};
  n->predicate_ = std::move(pred);
  return n;
}

LogicalPlan LogicalNode::Project(LogicalPlan input,
                                 std::vector<std::string> columns) {
  auto n = std::shared_ptr<LogicalNode>(new LogicalNode());
  n->op_ = LogicalOp::kProject;
  n->inputs_ = {std::move(input)};
  n->columns_ = std::move(columns);
  return n;
}

LogicalPlan LogicalNode::Join(LogicalPlan left, LogicalPlan right,
                              std::string left_key, std::string right_key,
                              JoinOptions options) {
  auto n = std::shared_ptr<LogicalNode>(new LogicalNode());
  n->op_ = LogicalOp::kJoin;
  n->inputs_ = {std::move(left), std::move(right)};
  n->left_key_ = std::move(left_key);
  n->right_key_ = std::move(right_key);
  n->join_options_ = options;
  return n;
}

namespace {

// Name of the base table a filter/project chain sits on, for messages.
std::string BaseName(const LogicalNode& n) {
  const LogicalNode* cur = &n;
  while (cur->op() != LogicalOp::kScan) {
    if (cur->op() == LogicalOp::kJoin) return "join";
    cur = cur->input(0).get();
  }
  return cur->table();
}

}  // namespace

std::string LogicalNode::Describe() const {
  switch (op_) {
    case LogicalOp::kScan:
      return "Scan(" + table_ + ")";
    case LogicalOp::kFilter:
      return "Filter(" + BaseName(*this) + ")";
    case LogicalOp::kProject:
      return "Project(" + std::to_string(columns_.size()) + " cols)";
    case LogicalOp::kJoin:
      return "Join(" + BaseName(*input(0)) + "." + left_key_ + " = " +
             BaseName(*input(1)) + "." + right_key_ + ")";
  }
  return "?";
}

Result<std::shared_ptr<const TableStatistics>> StatisticsCache::Get(
    const std::string& table) {
  auto it = cache_.find(table);
  if (it != cache_.end()) return it->second;
  DMML_ASSIGN_OR_RETURN(std::shared_ptr<const Table> t,
                        catalog_->GetTable(table));
  DMML_ASSIGN_OR_RETURN(TableStatistics stats, CollectStatistics(*t));
  auto shared = std::make_shared<const TableStatistics>(std::move(stats));
  cache_.emplace(table, shared);
  return shared;
}

namespace {

Status StageError(const LogicalNode& node, const Status& cause) {
  return Status(cause.code(),
                "pipeline stage " + node.Describe() + ": " + cause.message());
}

}  // namespace

Result<Schema> OutputSchema(const LogicalNode& plan,
                            const storage::Catalog& catalog) {
  switch (plan.op()) {
    case LogicalOp::kScan: {
      Result<std::shared_ptr<const Table>> t = catalog.GetTable(plan.table());
      if (!t.ok()) return StageError(plan, t.status());
      return std::move(t).ValueOrDie()->schema();
    }
    case LogicalOp::kFilter: {
      DMML_ASSIGN_OR_RETURN(Schema in, OutputSchema(*plan.input(0), catalog));
      Status s = plan.predicate()->Validate(in);
      if (!s.ok()) return StageError(plan, s);
      return in;
    }
    case LogicalOp::kProject: {
      DMML_ASSIGN_OR_RETURN(Schema in, OutputSchema(*plan.input(0), catalog));
      std::vector<storage::Field> fields;
      fields.reserve(plan.columns().size());
      for (const std::string& c : plan.columns()) {
        Result<size_t> idx = in.RequireField(c);
        if (!idx.ok()) return StageError(plan, idx.status());
        fields.push_back(in.field(idx.ValueOrDie()));
      }
      return Schema(std::move(fields));
    }
    case LogicalOp::kJoin: {
      DMML_ASSIGN_OR_RETURN(Schema l, OutputSchema(*plan.input(0), catalog));
      DMML_ASSIGN_OR_RETURN(Schema r, OutputSchema(*plan.input(1), catalog));
      Result<size_t> lk = l.RequireField(plan.left_key());
      if (!lk.ok()) return StageError(plan, lk.status());
      Result<size_t> rk = r.RequireField(plan.right_key());
      if (!rk.ok()) return StageError(plan, rk.status());
      if (l.field(lk.ValueOrDie()).type != r.field(rk.ValueOrDie()).type) {
        return StageError(plan,
                          Status::InvalidArgument(
                              "join key type mismatch: " + plan.left_key() +
                              " vs " + plan.right_key()));
      }
      // Mirror HashJoin's output schema (left-outer makes right nullable).
      if (plan.join_options().type == JoinType::kLeftOuter) {
        std::vector<storage::Field> fields = r.fields();
        for (auto& f : fields) f.nullable = true;
        r = Schema(std::move(fields));
      }
      return l.Concat(r, plan.join_options().clash_prefix);
    }
  }
  return Status::Internal("unreachable logical op");
}

namespace {

// Cardinality estimate plus the statistics of the nearest base table under
// the node (carried through filters/projects; lost above joins), used for
// filter selectivity and join-key ndv lookups.
struct CardInfo {
  double rows = 0;
  std::shared_ptr<const TableStatistics> base;
};

Result<CardInfo> EstimateNode(const LogicalNode& n, StatisticsCache* stats) {
  switch (n.op()) {
    case LogicalOp::kScan: {
      DMML_ASSIGN_OR_RETURN(std::shared_ptr<const TableStatistics> s,
                            stats->Get(n.table()));
      return CardInfo{static_cast<double>(s->num_rows), s};
    }
    case LogicalOp::kFilter: {
      DMML_ASSIGN_OR_RETURN(CardInfo c, EstimateNode(*n.input(0), stats));
      const double sel = c.base != nullptr
                             ? n.predicate()->EstimateSelectivity(*c.base)
                             : kDefaultSelectivity;
      c.rows *= sel;
      return c;
    }
    case LogicalOp::kProject:
      return EstimateNode(*n.input(0), stats);
    case LogicalOp::kJoin: {
      DMML_ASSIGN_OR_RETURN(CardInfo l, EstimateNode(*n.input(0), stats));
      DMML_ASSIGN_OR_RETURN(CardInfo r, EstimateNode(*n.input(1), stats));
      double ndv = 0;
      if (l.base != nullptr) {
        if (const ColumnStatistics* c = l.base->Find(n.left_key())) {
          ndv = std::max(ndv, static_cast<double>(c->distinct_count));
        }
      }
      if (r.base != nullptr) {
        if (const ColumnStatistics* c = r.base->Find(n.right_key())) {
          ndv = std::max(ndv, static_cast<double>(c->distinct_count));
        }
      }
      // No key statistics (key produced by a join): assume the key is unique
      // on the larger side, the PK-FK default.
      if (ndv <= 0) ndv = std::max(l.rows, r.rows);
      double rows = l.rows * r.rows / std::max(ndv, 1.0);
      if (n.join_options().type == JoinType::kLeftOuter) {
        rows = std::max(rows, l.rows);
      }
      return CardInfo{rows, nullptr};
    }
  }
  return Status::Internal("unreachable logical op");
}

}  // namespace

Result<double> EstimateCardinality(const LogicalNode& plan,
                                   StatisticsCache* stats) {
  DMML_ASSIGN_OR_RETURN(CardInfo c, EstimateNode(plan, stats));
  return c.rows;
}

double OperatorObservation::MisestimatePct() const {
  const double actual = std::max<double>(static_cast<double>(actual_rows), 1.0);
  return std::abs(estimated_rows - static_cast<double>(actual_rows)) / actual *
         100.0;
}

namespace {

void RecordObservation(const LogicalNode& node, double estimated, size_t actual,
                       std::vector<OperatorObservation>* observations) {
  OperatorObservation obs{node.Describe(), estimated, actual};
  // Scans/projects estimate exactly by construction; only the operators whose
  // estimates can be wrong (selectivity, join formula) feed the counters.
  if (node.op() == LogicalOp::kFilter || node.op() == LogicalOp::kJoin) {
    DMML_COUNTER_ADD("relational.stats.estimated_rows",
                     static_cast<uint64_t>(std::llround(
                         std::max(0.0, obs.estimated_rows))));
    DMML_COUNTER_ADD("relational.stats.actual_rows",
                     static_cast<uint64_t>(actual));
    DMML_HISTOGRAM_OBSERVE("relational.stats.misestimate_pct",
                           obs::ExponentialBuckets(1, 4, 8),
                           obs.MisestimatePct());
  }
  if (observations != nullptr) observations->push_back(std::move(obs));
}

Result<Table> ExecuteNode(const LogicalNode& plan,
                          const storage::Catalog& catalog,
                          StatisticsCache* stats,
                          std::vector<OperatorObservation>* observations) {
  switch (plan.op()) {
    case LogicalOp::kScan: {
      Result<std::shared_ptr<const Table>> t = catalog.GetTable(plan.table());
      if (!t.ok()) return StageError(plan, t.status());
      Table out = *t.ValueOrDie();
      RecordObservation(plan, static_cast<double>(out.num_rows()),
                        out.num_rows(), observations);
      return out;
    }
    case LogicalOp::kFilter: {
      DMML_ASSIGN_OR_RETURN(
          Table in, ExecuteNode(*plan.input(0), catalog, stats, observations));
      Result<CardInfo> est = EstimateNode(plan, stats);
      Result<Table> out = relational::Filter(in, plan.predicate());
      if (!out.ok()) return StageError(plan, out.status());
      RecordObservation(plan, est.ok() ? est.ValueOrDie().rows : 0.0,
                        out.ValueOrDie().num_rows(), observations);
      return out;
    }
    case LogicalOp::kProject: {
      DMML_ASSIGN_OR_RETURN(
          Table in, ExecuteNode(*plan.input(0), catalog, stats, observations));
      Result<Table> out = relational::Project(in, plan.columns());
      if (!out.ok()) return StageError(plan, out.status());
      RecordObservation(plan, static_cast<double>(in.num_rows()),
                        out.ValueOrDie().num_rows(), observations);
      return out;
    }
    case LogicalOp::kJoin: {
      DMML_ASSIGN_OR_RETURN(
          Table l, ExecuteNode(*plan.input(0), catalog, stats, observations));
      DMML_ASSIGN_OR_RETURN(
          Table r, ExecuteNode(*plan.input(1), catalog, stats, observations));
      Result<CardInfo> est = EstimateNode(plan, stats);
      Result<Table> out =
          relational::HashJoin(l, r, plan.left_key(), plan.right_key(),
                               plan.join_options());
      if (!out.ok()) return StageError(plan, out.status());
      RecordObservation(plan, est.ok() ? est.ValueOrDie().rows : 0.0,
                        out.ValueOrDie().num_rows(), observations);
      return out;
    }
  }
  return Status::Internal("unreachable logical op");
}

}  // namespace

Result<Table> ExecutePlan(const LogicalNode& plan,
                          const storage::Catalog& catalog,
                          StatisticsCache* stats,
                          std::vector<OperatorObservation>* observations) {
  // Fail with a stage-named error before running anything.
  DMML_RETURN_IF_ERROR(OutputSchema(plan, catalog).status());
  StatisticsCache local(&catalog);
  return ExecuteNode(plan, catalog, stats != nullptr ? stats : &local,
                     observations);
}

}  // namespace dmml::relational
