/// \file logical_plan.h
/// \brief Composable logical plans over the eager relational operators.
///
/// The eager operators in relational/operators.h are Table -> Table calls: by
/// the time Filter runs you already hold its input materialized, so nothing
/// upstream can be planned. LogicalNode lifts the same four feature-query
/// operators (scan / filter / project / PK-FK join) into a build-then-run
/// tree: the pipeline front-end composes a plan, costs it with
/// EstimateCardinality (statistics.h selectivity and join formulas), picks a
/// physical route, and only then calls ExecutePlan — which runs the eager
/// operators bottom-up while recording estimated vs. actual cardinality per
/// operator (the relational.stats.* counters).
#ifndef DMML_RELATIONAL_LOGICAL_PLAN_H_
#define DMML_RELATIONAL_LOGICAL_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relational/operators.h"
#include "relational/predicate.h"
#include "relational/statistics.h"
#include "storage/catalog.h"
#include "storage/table.h"
#include "util/result.h"

namespace dmml::relational {

class LogicalNode;
/// Plans are immutable shared trees; subplans may be reused across plans.
using LogicalPlan = std::shared_ptr<const LogicalNode>;

/// Operator kind of a logical node.
enum class LogicalOp { kScan, kFilter, kProject, kJoin };

/// \brief One node of a logical feature-query plan.
///
/// Built via the static factories; fields beyond the active operator kind are
/// empty. Leaves are catalog scans, so a plan is executable against any
/// catalog that holds the named tables.
class LogicalNode {
 public:
  /// \brief Leaf: read the named catalog table.
  static LogicalPlan Scan(std::string table);

  /// \brief Rows of `input` satisfying `pred`.
  static LogicalPlan Filter(LogicalPlan input, PredicatePtr pred);

  /// \brief Keeps only the named columns, in the given order.
  static LogicalPlan Project(LogicalPlan input, std::vector<std::string> columns);

  /// \brief Equi-join on one key column per side (lowered to HashJoin).
  static LogicalPlan Join(LogicalPlan left, LogicalPlan right,
                          std::string left_key, std::string right_key,
                          JoinOptions options = {});

  LogicalOp op() const { return op_; }
  size_t num_inputs() const { return inputs_.size(); }
  const LogicalPlan& input(size_t i) const { return inputs_[i]; }

  /// Scan only: the catalog table name.
  const std::string& table() const { return table_; }
  /// Filter only.
  const PredicatePtr& predicate() const { return predicate_; }
  /// Project only.
  const std::vector<std::string>& columns() const { return columns_; }
  /// Join only.
  const std::string& left_key() const { return left_key_; }
  const std::string& right_key() const { return right_key_; }
  const JoinOptions& join_options() const { return join_options_; }

  /// \brief One-line operator description, e.g. "Join(s.fk = r.rid)".
  std::string Describe() const;

 private:
  LogicalNode() = default;

  LogicalOp op_ = LogicalOp::kScan;
  std::vector<LogicalPlan> inputs_;
  std::string table_;
  PredicatePtr predicate_;
  std::vector<std::string> columns_;
  std::string left_key_, right_key_;
  JoinOptions join_options_;
};

/// \brief Memoizes CollectStatistics per base table for one planning episode.
/// Collection is a full scan per column, so the chooser and the executor share
/// one cache instead of re-scanning per estimate.
class StatisticsCache {
 public:
  explicit StatisticsCache(const storage::Catalog* catalog)
      : catalog_(catalog) {}

  /// \brief Stats for the named catalog table (collected on first use).
  Result<std::shared_ptr<const TableStatistics>> Get(const std::string& table);

 private:
  const storage::Catalog* catalog_;
  std::map<std::string, std::shared_ptr<const TableStatistics>> cache_;
};

/// \brief Bottom-up schema check: verifies every referenced table, column and
/// key exists before anything executes. Errors name the offending stage
/// (e.g. "Filter over Scan(orders): ...").
Result<storage::Schema> OutputSchema(const LogicalNode& plan,
                                     const storage::Catalog& catalog);

/// \brief Pre-execution cardinality estimate for the plan's output:
///   * Scan: exact row count
///   * Filter: input estimate x Predicate::EstimateSelectivity
///   * Project: input estimate
///   * Join: |L| * |R| / max(ndv(L.key), ndv(R.key)), ndv from the nearest
///     base table under each side; falls back to / max(|L|, |R|) when a key's
///     base statistics are unavailable (e.g. key born from a join).
Result<double> EstimateCardinality(const LogicalNode& plan,
                                   StatisticsCache* stats);

/// \brief Estimated vs. observed cardinality of one executed operator.
struct OperatorObservation {
  std::string op_name;        ///< LogicalNode::Describe() of the operator.
  double estimated_rows = 0;  ///< Pre-execution estimate.
  size_t actual_rows = 0;     ///< Rows the operator actually emitted.

  /// |estimated - actual| / max(actual, 1), in percent.
  double MisestimatePct() const;
};

/// \brief Executes the plan bottom-up with the eager operators.
///
/// Every Filter and Join records its pre-execution estimate against the rows
/// it actually emitted: appended to `observations` (if given) and exported as
/// the `relational.stats.estimated_rows` / `relational.stats.actual_rows`
/// counters plus the `relational.stats.misestimate_pct` histogram. Scans and
/// projects append observations but do not bump the counters (their
/// "estimates" are exact by construction).
Result<storage::Table> ExecutePlan(
    const LogicalNode& plan, const storage::Catalog& catalog,
    StatisticsCache* stats = nullptr,
    std::vector<OperatorObservation>* observations = nullptr);

}  // namespace dmml::relational

#endif  // DMML_RELATIONAL_LOGICAL_PLAN_H_
