/// \file operators.h
/// \brief Materializing relational operators over storage::Table.
///
/// These implement the MADlib-style substrate: feature extraction queries
/// (select / project / PK–FK join / group-by) producing the tables that the
/// ML layer converts into matrices.
#ifndef DMML_RELATIONAL_OPERATORS_H_
#define DMML_RELATIONAL_OPERATORS_H_

#include <string>
#include <vector>

#include "relational/predicate.h"
#include "storage/table.h"
#include "util/result.h"

namespace dmml::relational {

/// \brief Rows of `input` satisfying `pred`.
Result<storage::Table> Filter(const storage::Table& input, const PredicatePtr& pred);

/// \brief Keeps only the named columns, in the given order.
Result<storage::Table> Project(const storage::Table& input,
                               const std::vector<std::string>& columns);

/// Join flavor.
enum class JoinType {
  kInner,
  kLeftOuter,  ///< Unmatched left rows padded with NULLs.
};

/// \brief Options for HashJoin.
struct JoinOptions {
  JoinType type = JoinType::kInner;
  /// Prefix applied to right-side columns whose names clash with the left.
  std::string clash_prefix = "r_";
};

/// \brief Equi-join on one key column per side (hash join, build on right).
///
/// Key columns may be kInt64 or kString. NULL keys never match.
Result<storage::Table> HashJoin(const storage::Table& left,
                                const storage::Table& right,
                                const std::string& left_key,
                                const std::string& right_key,
                                const JoinOptions& options = {});

/// Aggregate function of one group-by output.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

/// \brief One aggregate specification: func(column) AS name.
struct AggSpec {
  AggFunc func;
  std::string column;  ///< Ignored for kCount (may be empty).
  std::string output_name;
};

/// \brief Hash group-by over the named key columns with the given aggregates.
///
/// Numeric aggregates require numeric input columns; NULLs are skipped
/// (COUNT counts all rows in the group regardless).
Result<storage::Table> GroupBy(const storage::Table& input,
                               const std::vector<std::string>& keys,
                               const std::vector<AggSpec>& aggs);

/// \brief Stable sort by one column, ascending (NULLs first).
Result<storage::Table> OrderBy(const storage::Table& input, const std::string& column,
                               bool ascending = true);

/// \brief Concatenates tables with identical schemas.
Result<storage::Table> Union(const storage::Table& a, const storage::Table& b);

/// \brief Returns the first `n` rows.
storage::Table Limit(const storage::Table& input, size_t n);

}  // namespace dmml::relational

#endif  // DMML_RELATIONAL_OPERATORS_H_
