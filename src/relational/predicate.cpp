#include "relational/predicate.h"

#include <algorithm>

#include "relational/statistics.h"

namespace dmml::relational {

namespace {

double ClampSelectivity(double s) { return std::clamp(s, 0.0, 1.0); }

}  // namespace

double Predicate::EstimateSelectivity(const TableStatistics& /*stats*/) const {
  return kDefaultSelectivity;
}

namespace {

using storage::DataType;
using storage::Table;
using storage::Value;

// Three-way comparison of a column cell with a literal; nullopt means
// incomparable (NULL or type mismatch at runtime).
std::optional<int> CompareCell(const storage::Column& col, size_t row,
                               const Value& literal) {
  if (!col.IsValid(row)) return std::nullopt;
  switch (col.type()) {
    case DataType::kInt64: {
      // Allow comparing int columns against int or double literals.
      if (const auto* i = std::get_if<int64_t>(&literal)) {
        int64_t v = col.GetInt64(row);
        return v < *i ? -1 : (v > *i ? 1 : 0);
      }
      if (const auto* d = std::get_if<double>(&literal)) {
        double v = static_cast<double>(col.GetInt64(row));
        return v < *d ? -1 : (v > *d ? 1 : 0);
      }
      return std::nullopt;
    }
    case DataType::kDouble: {
      double v = col.GetDouble(row);
      double lit;
      if (const auto* d = std::get_if<double>(&literal)) lit = *d;
      else if (const auto* i = std::get_if<int64_t>(&literal)) lit = static_cast<double>(*i);
      else return std::nullopt;
      return v < lit ? -1 : (v > lit ? 1 : 0);
    }
    case DataType::kString: {
      const auto* s = std::get_if<std::string>(&literal);
      if (!s) return std::nullopt;
      int c = col.GetString(row).compare(*s);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kBool: {
      const auto* b = std::get_if<bool>(&literal);
      if (!b) return std::nullopt;
      int v = col.GetBool(row) ? 1 : 0;
      int lit = *b ? 1 : 0;
      return v < lit ? -1 : (v > lit ? 1 : 0);
    }
  }
  return std::nullopt;
}

class ComparePredicate : public Predicate {
 public:
  ComparePredicate(std::string column, CompareOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  Result<bool> Evaluate(const Table& table, size_t row) const override {
    DMML_ASSIGN_OR_RETURN(const storage::Column* col, table.ColumnByName(column_));
    auto cmp = CompareCell(*col, row, literal_);
    if (!cmp) return false;
    switch (op_) {
      case CompareOp::kEq: return *cmp == 0;
      case CompareOp::kNe: return *cmp != 0;
      case CompareOp::kLt: return *cmp < 0;
      case CompareOp::kLe: return *cmp <= 0;
      case CompareOp::kGt: return *cmp > 0;
      case CompareOp::kGe: return *cmp >= 0;
    }
    return Status::Internal("unreachable compare op");
  }

  Status Validate(const storage::Schema& schema) const override {
    return schema.RequireField(column_).ok()
               ? Status::OK()
               : Status::NotFound("predicate references unknown column: " + column_);
  }

  double EstimateSelectivity(const TableStatistics& stats) const override {
    double value = 0.0;
    bool numeric = false;
    if (const auto* d = std::get_if<double>(&literal_)) {
      value = *d;
      numeric = true;
    } else if (const auto* i = std::get_if<int64_t>(&literal_)) {
      value = static_cast<double>(*i);
      numeric = true;
    }
    if (numeric) {
      Result<double> s =
          relational::EstimateSelectivity(stats, column_, op_, value);
      if (s.ok()) return ClampSelectivity(std::move(s).ValueOrDie());
    }
    // String/bool literals: ndv-based equality estimate over non-NULL rows.
    const ColumnStatistics* col = stats.Find(column_);
    if (col != nullptr && col->num_rows > 0 && col->distinct_count > 0) {
      const double non_null =
          1.0 - static_cast<double>(col->null_count) / col->num_rows;
      if (op_ == CompareOp::kEq) {
        return ClampSelectivity(non_null / col->distinct_count);
      }
      if (op_ == CompareOp::kNe) {
        return ClampSelectivity(non_null * (1.0 - 1.0 / col->distinct_count));
      }
    }
    return kDefaultSelectivity;
  }

 private:
  std::string column_;
  CompareOp op_;
  Value literal_;
};

class BinaryPredicate : public Predicate {
 public:
  BinaryPredicate(PredicatePtr lhs, PredicatePtr rhs, bool is_and)
      : lhs_(std::move(lhs)), rhs_(std::move(rhs)), is_and_(is_and) {}

  Result<bool> Evaluate(const Table& table, size_t row) const override {
    DMML_ASSIGN_OR_RETURN(bool l, lhs_->Evaluate(table, row));
    if (is_and_ && !l) return false;
    if (!is_and_ && l) return true;
    return rhs_->Evaluate(table, row);
  }

  Status Validate(const storage::Schema& schema) const override {
    DMML_RETURN_IF_ERROR(lhs_->Validate(schema));
    return rhs_->Validate(schema);
  }

  double EstimateSelectivity(const TableStatistics& stats) const override {
    const double l = lhs_->EstimateSelectivity(stats);
    const double r = rhs_->EstimateSelectivity(stats);
    // Independence assumption: AND multiplies, OR inclusion–excludes.
    return ClampSelectivity(is_and_ ? l * r : l + r - l * r);
  }

 private:
  PredicatePtr lhs_, rhs_;
  bool is_and_;
};

class NotPredicate : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr inner) : inner_(std::move(inner)) {}

  Result<bool> Evaluate(const Table& table, size_t row) const override {
    DMML_ASSIGN_OR_RETURN(bool v, inner_->Evaluate(table, row));
    return !v;
  }

  Status Validate(const storage::Schema& schema) const override {
    return inner_->Validate(schema);
  }

  double EstimateSelectivity(const TableStatistics& stats) const override {
    return ClampSelectivity(1.0 - inner_->EstimateSelectivity(stats));
  }

 private:
  PredicatePtr inner_;
};

class IsNullPredicate : public Predicate {
 public:
  explicit IsNullPredicate(std::string column) : column_(std::move(column)) {}

  Result<bool> Evaluate(const Table& table, size_t row) const override {
    DMML_ASSIGN_OR_RETURN(const storage::Column* col, table.ColumnByName(column_));
    return !col->IsValid(row);
  }

  Status Validate(const storage::Schema& schema) const override {
    return schema.RequireField(column_).ok()
               ? Status::OK()
               : Status::NotFound("predicate references unknown column: " + column_);
  }

  double EstimateSelectivity(const TableStatistics& stats) const override {
    const ColumnStatistics* col = stats.Find(column_);
    if (col == nullptr || col->num_rows == 0) return kDefaultSelectivity;
    return ClampSelectivity(static_cast<double>(col->null_count) /
                            col->num_rows);
  }

 private:
  std::string column_;
};

}  // namespace

PredicatePtr Compare(std::string column, CompareOp op, storage::Value literal) {
  return std::make_shared<ComparePredicate>(std::move(column), op, std::move(literal));
}

PredicatePtr And(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_shared<BinaryPredicate>(std::move(lhs), std::move(rhs), true);
}

PredicatePtr Or(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_shared<BinaryPredicate>(std::move(lhs), std::move(rhs), false);
}

PredicatePtr Not(PredicatePtr inner) {
  return std::make_shared<NotPredicate>(std::move(inner));
}

PredicatePtr IsNull(std::string column) {
  return std::make_shared<IsNullPredicate>(std::move(column));
}

}  // namespace dmml::relational
