/// \file statistics.h
/// \brief Table/column statistics and cardinality estimation — the classic
/// DB-optimizer substrate, here feeding feature-query planning.
#ifndef DMML_RELATIONAL_STATISTICS_H_
#define DMML_RELATIONAL_STATISTICS_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/predicate.h"
#include "storage/table.h"
#include "util/result.h"

namespace dmml::relational {

/// \brief Statistics for one column.
struct ColumnStatistics {
  std::string name;
  size_t num_rows = 0;
  size_t null_count = 0;
  size_t distinct_count = 0;          ///< Exact (hash-based).
  std::optional<double> min_value;    ///< Numeric columns only.
  std::optional<double> max_value;
  /// Equi-width histogram over [min, max] for numeric columns (empty for
  /// strings or all-NULL columns).
  std::vector<size_t> histogram;
};

/// \brief Statistics for a whole table.
struct TableStatistics {
  size_t num_rows = 0;
  std::vector<ColumnStatistics> columns;

  /// \brief Stats of the named column, if collected.
  const ColumnStatistics* Find(const std::string& name) const;
};

/// \brief Collects exact statistics in one pass per column.
/// `histogram_buckets` controls numeric histogram resolution.
Result<TableStatistics> CollectStatistics(const storage::Table& table,
                                          size_t histogram_buckets = 16);

/// \brief Estimated selectivity (fraction of rows kept) of `column op value`
/// using the collected statistics:
///   * equality: 1 / distinct_count
///   * ranges: histogram mass of the qualifying interval
///   * NULLs never qualify: results are scaled by (1 - null fraction)
Result<double> EstimateSelectivity(const TableStatistics& stats,
                                   const std::string& column, CompareOp op,
                                   double value);

/// \brief Estimated output cardinality of an equi-join between two columns
/// using the standard |R| * |S| / max(ndv(R.a), ndv(S.b)) formula.
Result<double> EstimateJoinCardinality(const TableStatistics& left,
                                       const std::string& left_column,
                                       const TableStatistics& right,
                                       const std::string& right_column);

}  // namespace dmml::relational

#endif  // DMML_RELATIONAL_STATISTICS_H_
