/// \file server.h
/// \brief Minimal HTTP/1.1 exposition server for metrics, traces, profiles.
///
/// One background thread runs a blocking accept loop and serves each request
/// to completion before accepting the next — deliberately single-threaded:
/// scrape traffic is one Prometheus-style poller every few seconds, and a
/// serial loop cannot have handler races. Endpoints:
///
///   /metrics       text/plain   MetricsRegistry::TextSnapshot()
///   /metrics.json  JSON         MetricsRegistry::JsonSnapshot()
///   /trace         JSON         ChromeTraceJson() (load in Perfetto)
///   /profiles      JSON         ProfileRegistry::JsonSnapshot()
///
/// Lifecycle: `Start()` binds and spawns the thread; `Stop()` (or the
/// destructor) wakes the accept loop through a self-pipe and joins. Binding
/// port 0 picks an ephemeral port, readable via `port()` — tests use this to
/// avoid collisions. `StartFromEnv()` is the production entry: it reads
/// DMML_OBS_PORT and returns nullptr when unset so callers can
/// unconditionally hold the unique_ptr.
#ifndef DMML_OBS_SERVER_H_
#define DMML_OBS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

namespace dmml::obs {

/// \brief Serves the process's observability state over HTTP.
class ExpositionServer {
 public:
  struct Options {
    /// TCP port to bind; 0 picks an ephemeral port (see port()).
    uint16_t port = 0;
    /// Loopback by default: the endpoint exposes internal state and is not
    /// meant to face anything but a local scraper or an ssh tunnel.
    std::string bind_address = "127.0.0.1";
  };

  explicit ExpositionServer(Options options) : options_(std::move(options)) {}
  ~ExpositionServer() { Stop(); }

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// \brief Binds, listens, and spawns the serving thread. Returns false
  /// (with the reason in error()) on bind/listen failure or double start.
  bool Start();

  /// \brief Signals the accept loop, joins the thread, closes the socket.
  /// Idempotent; safe to call on a never-started server.
  void Stop();

  /// \brief True between a successful Start() and Stop().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// \brief The bound port (the chosen one when Options::port was 0).
  /// Valid after a successful Start().
  uint16_t port() const { return bound_port_; }

  /// \brief Why the last Start() failed; empty on success.
  const std::string& error() const { return error_; }

  /// \brief Starts a server on DMML_OBS_PORT. Returns nullptr when the
  /// variable is unset/empty; "0" binds an ephemeral port. On malformed
  /// values or bind failure, reports to stderr and returns nullptr — an
  /// observability endpoint must never take down the training process.
  static std::unique_ptr<ExpositionServer> StartFromEnv();

 private:
  void Serve();
  void HandleConnection(int fd);

  Options options_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // [0] read end polled by Serve, [1] Stop writes
  uint16_t bound_port_ = 0;
  std::string error_;
};

}  // namespace dmml::obs

#endif  // DMML_OBS_SERVER_H_
