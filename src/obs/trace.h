/// \file trace.h
/// \brief Scoped tracing into per-thread ring buffers.
///
/// `DMML_TRACE_SPAN("executor.matmult")` opens an RAII span; when tracing is
/// enabled the span's (name, start, duration, thread) is recorded into the
/// calling thread's ring buffer on scope exit. When tracing is disabled the
/// whole span costs one relaxed load and branch. Recorded events export as
/// Chrome trace-event JSON loadable in chrome://tracing or Perfetto.
///
/// Tracing starts disabled unless the DMML_TRACE environment variable is set
/// to a truthy value (anything except "", "0", "false") at process start.
#ifndef DMML_OBS_TRACE_H_
#define DMML_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"  // NowMicros

namespace dmml::obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// \brief The disabled-tracing fast path: one relaxed load.
inline bool TracingEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled);

/// \brief Small dense id for the calling thread (assigned on first use).
uint32_t ThisThreadId();

/// \brief One completed span. `name` must point at storage that outlives the
/// trace (string literals in practice — DMML_TRACE_SPAN enforces this shape).
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;
};

/// \brief Appends a completed span to the calling thread's ring buffer.
/// Rings hold a fixed number of events and overwrite the oldest.
void RecordSpan(const char* name, uint64_t start_us, uint64_t end_us);

/// \brief Max events retained per thread before the oldest are overwritten.
size_t TraceRingCapacity();

/// \brief Snapshot of every thread's ring, ordered by (tid, start time).
/// Includes events from threads that have already exited.
std::vector<TraceEvent> CollectTraceEvents();

/// \brief Drops all recorded events (rings stay registered).
void ClearTrace();

/// \brief Chrome trace-event JSON ("X" complete events, ts/dur in micros).
std::string ChromeTraceJson();

/// \brief Writes ChromeTraceJson() to `path`; false on I/O failure.
bool WriteChromeTraceFile(const std::string& path);

/// \brief RAII span; see DMML_TRACE_SPAN.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      start_us_ = NowMicros();
    }
  }
  ~TraceSpan() {
    if (name_) RecordSpan(name_, start_us_, NowMicros());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
};

}  // namespace dmml::obs

#define DMML_OBS_CONCAT_INNER(a, b) a##b
#define DMML_OBS_CONCAT(a, b) DMML_OBS_CONCAT_INNER(a, b)

/// Records a span covering the rest of the enclosing scope.
#define DMML_TRACE_SPAN(name) \
  ::dmml::obs::TraceSpan DMML_OBS_CONCAT(dmml_trace_span_, __COUNTER__)(name)

#endif  // DMML_OBS_TRACE_H_
