#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace dmml::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

uint64_t NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch)
          .count());
}

namespace internal {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace internal

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_.push_back(1.0);
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  size_t i = std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  // upper_bound yields the first bound > v, i.e. v <= bounds_[i] lands in
  // bucket i; past-the-end is the overflow bucket. Exact bound values must
  // stay in their bucket, so back off one slot when v == bounds_[i-1].
  if (i > 0 && v == bounds_[i - 1]) --i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    next = internal::DoubleBits(internal::BitsDouble(cur) + v);
  } while (!sum_bits_.compare_exchange_weak(cur, next, std::memory_order_relaxed));
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (size_t i = 0; i < num_buckets(); ++i) total += BucketCount(i);
  return total;
}

double Histogram::Sum() const {
  return internal::BitsDouble(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::Mean() const {
  uint64_t n = TotalCount();
  return n ? Sum() / static_cast<double>(n) : 0.0;
}

double Histogram::Percentile(double p) const {
  uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  double target = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < num_buckets(); ++i) {
    uint64_t c = BucketCount(i);
    if (static_cast<double>(seen + c) >= target && c > 0) {
      if (i >= bounds_.size()) return bounds_.back();  // overflow bucket
      double lo = i == 0 ? 0.0 : bounds_[i - 1];
      double hi = bounds_[i];
      double frac = (target - static_cast<double>(seen)) / static_cast<double>(c);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    seen += c;
  }
  return bounds_.back();
}

void Histogram::Reset() {
  for (size_t i = 0; i < num_buckets(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_bits_.store(0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBuckets(double start, double factor, size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrument pointers cached in function-local statics
  // must outlive every other static destructor.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::string MetricsRegistry::TextSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    uint64_t v = c->Value();
    if (v == 0) continue;
    os << "counter " << name << " " << v << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "gauge " << name << " " << FormatDouble(g->Value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    uint64_t n = h->TotalCount();
    if (n == 0) continue;
    os << "histogram " << name << " count=" << n << " sum="
       << FormatDouble(h->Sum()) << " mean=" << FormatDouble(h->Mean())
       << " p50=" << FormatDouble(h->Percentile(50))
       << " p95=" << FormatDouble(h->Percentile(95))
       << " p99=" << FormatDouble(h->Percentile(99)) << " buckets=[";
    for (size_t i = 0; i < h->num_buckets(); ++i) {
      if (i) os << " ";
      if (i < h->bounds().size()) {
        os << "le" << FormatDouble(h->bounds()[i]);
      } else {
        os << "inf";
      }
      os << ":" << h->BucketCount(i);
    }
    os << "]\n";
  }
  return os.str();
}

std::string MetricsRegistry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << c->Value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << FormatDouble(g->Value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":{\"count\":" << h->TotalCount()
       << ",\"sum\":" << FormatDouble(h->Sum())
       << ",\"mean\":" << FormatDouble(h->Mean())
       << ",\"p50\":" << FormatDouble(h->Percentile(50))
       << ",\"p95\":" << FormatDouble(h->Percentile(95))
       << ",\"p99\":" << FormatDouble(h->Percentile(99)) << ",\"bounds\":[";
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      if (i) os << ",";
      os << FormatDouble(h->bounds()[i]);
    }
    os << "],\"buckets\":[";
    for (size_t i = 0; i < h->num_buckets(); ++i) {
      if (i) os << ",";
      os << h->BucketCount(i);
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace dmml::obs
