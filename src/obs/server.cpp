#include "obs/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"
#include "obs/profile_registry.h"
#include "obs/trace.h"

namespace dmml::obs {

namespace {

constexpr size_t kMaxRequestBytes = 8192;

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Writes the whole buffer, riding out EINTR and short writes. The socket
/// stays blocking, so this only fails when the peer goes away.
bool WriteAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SendResponse(int fd, const char* status_line, const char* content_type,
                  const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status_line << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n";
  std::string head = os.str();
  if (WriteAll(fd, head.data(), head.size())) {
    WriteAll(fd, body.data(), body.size());
  }
}

/// Reads until the end of the request headers ("\r\n\r\n") or the size cap.
/// Returns false on socket error, timeout, or an oversized request.
bool ReadRequestHead(int fd, std::string* head) {
  char buf[1024];
  while (head->size() < kMaxRequestBytes) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer closed before finishing headers
    head->append(buf, static_cast<size_t>(n));
    if (head->find("\r\n\r\n") != std::string::npos) return true;
  }
  return false;
}

}  // namespace

bool ExpositionServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    error_ = "already running";
    return false;
  }
  error_.clear();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);  // NOLINT(concurrency-mt-unsafe)
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    error_ = "invalid bind address: " + options_.bind_address;
    CloseFd(listen_fd_);
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    error_ = std::string("bind: ") + std::strerror(errno);  // NOLINT(concurrency-mt-unsafe)
    CloseFd(listen_fd_);
    return false;
  }
  if (::listen(listen_fd_, 16) < 0) {
    error_ = std::string("listen: ") + std::strerror(errno);  // NOLINT(concurrency-mt-unsafe)
    CloseFd(listen_fd_);
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  if (::pipe(wake_pipe_) < 0) {
    error_ = std::string("pipe: ") + std::strerror(errno);  // NOLINT(concurrency-mt-unsafe)
    CloseFd(listen_fd_);
    return false;
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&ExpositionServer::Serve, this);
  return true;
}

void ExpositionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the poll in Serve(); the loop re-checks running_ and exits.
  char byte = 'q';
  ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  (void)ignored;
  if (thread_.joinable()) thread_.join();
  CloseFd(listen_fd_);
  CloseFd(wake_pipe_[0]);
  CloseFd(wake_pipe_[1]);
  bound_port_ = 0;
}

void ExpositionServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    // Bound how long one dead client can stall the serial loop.
    timeval tv{/*tv_sec=*/2, /*tv_usec=*/0};
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    HandleConnection(client);
    ::close(client);
  }
}

void ExpositionServer::HandleConnection(int fd) {
  DMML_COUNTER_INC("obs.server.requests");
  std::string head;
  if (!ReadRequestHead(fd, &head)) {
    DMML_COUNTER_INC("obs.server.errors");
    return;
  }
  std::istringstream request_line(head.substr(0, head.find("\r\n")));
  std::string method, path;
  request_line >> method >> path;
  if (method != "GET") {
    SendResponse(fd, "405 Method Not Allowed", "text/plain; charset=utf-8",
                 "only GET is supported\n");
    return;
  }
  // Scrapers commonly append query strings (?t=...); routing ignores them.
  size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (path == "/metrics") {
    SendResponse(fd, "200 OK", "text/plain; charset=utf-8",
                 MetricsRegistry::Global().TextSnapshot());
  } else if (path == "/metrics.json") {
    SendResponse(fd, "200 OK", "application/json",
                 MetricsRegistry::Global().JsonSnapshot());
  } else if (path == "/trace") {
    SendResponse(fd, "200 OK", "application/json", ChromeTraceJson());
  } else if (path == "/profiles") {
    SendResponse(fd, "200 OK", "application/json",
                 ProfileRegistry::Global().JsonSnapshot());
  } else if (path == "/" || path == "/index.html") {
    SendResponse(fd, "200 OK", "text/plain; charset=utf-8",
                 "dmml observability endpoints:\n"
                 "  /metrics       counters/gauges/histograms (text)\n"
                 "  /metrics.json  same, as JSON\n"
                 "  /trace         Chrome trace-event JSON\n"
                 "  /profiles      registered plan profiles (JSON)\n");
  } else {
    DMML_COUNTER_INC("obs.server.errors");
    SendResponse(fd, "404 Not Found", "text/plain; charset=utf-8",
                 "unknown path: " + path + "\n");
  }
}

std::unique_ptr<ExpositionServer> ExpositionServer::StartFromEnv() {
  const char* v = std::getenv("DMML_OBS_PORT");  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return nullptr;
  char* end = nullptr;
  long port = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || port < 0 || port > 65535) {
    std::fprintf(stderr, "dmml: ignoring malformed DMML_OBS_PORT=%s\n", v);
    return nullptr;
  }
  Options options;
  options.port = static_cast<uint16_t>(port);
  auto server = std::make_unique<ExpositionServer>(std::move(options));
  if (!server->Start()) {
    std::fprintf(stderr, "dmml: DMML_OBS_PORT=%s: %s\n", v,
                 server->error().c_str());
    return nullptr;
  }
  return server;
}

}  // namespace dmml::obs
