#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

namespace dmml::obs {

namespace {

constexpr size_t kRingCapacity = 1 << 15;  // 32768 events per thread

// One thread's span storage. The owner thread appends under the ring mutex
// (uncontended except while an exporter drains), so snapshots are coherent
// and TSan-clean without any lock-free subtlety on the hot path — spans are
// coarse (operator granularity), not per-element.
class TraceRing {
 public:
  explicit TraceRing(uint32_t tid) : tid_(tid) { events_.reserve(256); }

  void Record(const char* name, uint64_t start_us, uint64_t end_us) {
    std::lock_guard<std::mutex> lock(mu_);
    TraceEvent e{name, start_us, end_us - start_us, tid_};
    if (events_.size() < kRingCapacity) {
      events_.push_back(e);
    } else {
      events_[head_ % kRingCapacity] = e;
      ++head_;
    }
  }

  void AppendTo(std::vector<TraceEvent>* out) const {
    std::lock_guard<std::mutex> lock(mu_);
    // Oldest-first: the slots at [head_, size) predate the wrapped prefix.
    for (size_t i = head_ % kRingCapacity; i < events_.size(); ++i) {
      out->push_back(events_[i]);
    }
    for (size_t i = 0; i < head_ % kRingCapacity; ++i) out->push_back(events_[i]);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    head_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t head_ = 0;  // Next overwrite slot once the ring is full.
  uint32_t tid_;
};

struct RingDirectory {
  std::mutex mu;
  // shared_ptr keeps rings (and their events) alive after thread exit.
  std::vector<std::shared_ptr<TraceRing>> rings;
};

RingDirectory& Directory() {
  static RingDirectory* dir = new RingDirectory();
  return *dir;
}

TraceRing& ThisThreadRing() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    auto r = std::make_shared<TraceRing>(ThisThreadId());
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> lock(dir.mu);
    dir.rings.push_back(r);
    return r;
  }();
  return *ring;
}

bool EnvTruthy(const char* name) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return false;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "false") != 0 &&
         std::strcmp(v, "FALSE") != 0 && std::strcmp(v, "off") != 0;
}

}  // namespace

namespace internal {
std::atomic<bool> g_trace_enabled{EnvTruthy("DMML_TRACE")};
}  // namespace internal

void SetTracingEnabled(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void RecordSpan(const char* name, uint64_t start_us, uint64_t end_us) {
  ThisThreadRing().Record(name, start_us, end_us);
}

size_t TraceRingCapacity() { return kRingCapacity; }

std::vector<TraceEvent> CollectTraceEvents() {
  std::vector<TraceEvent> out;
  RingDirectory& dir = Directory();
  std::lock_guard<std::mutex> lock(dir.mu);
  for (const auto& ring : dir.rings) ring->AppendTo(&out);
  std::stable_sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.start_us < b.start_us;
  });
  return out;
}

void ClearTrace() {
  RingDirectory& dir = Directory();
  std::lock_guard<std::mutex> lock(dir.mu);
  for (const auto& ring : dir.rings) ring->Clear();
}

std::string ChromeTraceJson() {
  std::vector<TraceEvent> events = CollectTraceEvents();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i) os << ",";
    os << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\"dmml\",\"ph\":\"X\",\"ts\":"
       << e.start_us << ",\"dur\":" << e.dur_us << ",\"pid\":0,\"tid\":" << e.tid
       << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

bool WriteChromeTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = ChromeTraceJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace dmml::obs
