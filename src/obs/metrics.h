/// \file metrics.h
/// \brief Process-wide metrics registry: counters, gauges, histograms.
///
/// The registry hands out stable pointers to named instruments; hot paths
/// cache the pointer in a function-local static (see DMML_COUNTER_ADD) so the
/// name lookup happens once per call site. Increments are relaxed atomics —
/// counters additionally shard across cache lines so concurrent writers from
/// the thread pool or PS workers never contend on one line. Snapshots are
/// exported as aligned text (for bench #METRICS blocks) or JSON.
#ifndef DMML_OBS_METRICS_H_
#define DMML_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dmml::obs {

/// Shards per counter; writers pick a stable per-thread shard.
inline constexpr size_t kCounterShards = 16;

/// \brief Stable per-thread shard index in [0, kCounterShards).
size_t ThisThreadShard();

/// \brief Monotonic microseconds since process start (trace timebase).
uint64_t NowMicros();

/// \brief Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by every obs JSON exporter —
/// metric names, trace span names, profile payloads.
std::string JsonEscape(const std::string& s);

/// \brief A monotonically increasing sum, sharded to keep concurrent
/// increments off each other's cache lines.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    shards_[ThisThreadShard()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  /// \brief Sum over all shards (approximate under concurrent writes).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kCounterShards];
};

namespace internal {
/// Bit-casts between double and uint64_t so doubles can live in atomics.
uint64_t DoubleBits(double v);
double BitsDouble(uint64_t bits);
}  // namespace internal

/// \brief A last-written double value (e.g. compression ratio, queue depth).
class Gauge {
 public:
  void Set(double v) {
    bits_.store(internal::DoubleBits(v), std::memory_order_relaxed);
  }

  void Add(double delta) {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        cur, internal::DoubleBits(internal::BitsDouble(cur) + delta),
        std::memory_order_relaxed)) {
    }
  }

  /// Monotonic max update: raises the gauge to `v` unless it already holds a
  /// larger value. The CAS loop makes concurrent peak recording safe — a
  /// Value()-compare-Set() pair in the caller can move the peak backwards.
  void SetMax(double v) {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (internal::BitsDouble(cur) < v &&
           !bits_.compare_exchange_weak(cur, internal::DoubleBits(v),
                                        std::memory_order_relaxed)) {
    }
  }

  double Value() const {
    return internal::BitsDouble(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// \brief Fixed-bucket histogram. Bucket i counts observations v <=
/// bounds[i] (first matching bound); one overflow bucket counts v >
/// bounds.back(). Observation is two relaxed increments plus a CAS-add for
/// the running sum.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  size_t num_buckets() const { return bounds_.size() + 1; }
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t TotalCount() const;
  double Sum() const;
  double Mean() const;

  /// \brief Bucket-interpolated percentile, p in [0, 100]. Returns 0 when
  /// empty; values in the overflow bucket report the last finite bound.
  double Percentile(double p) const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> sum_bits_{0};  // double bit-cast, CAS-accumulated
};

/// \brief `count` ascending bounds: start, start*factor, start*factor^2, ...
std::vector<double> ExponentialBuckets(double start, double factor, size_t count);

/// \brief Named-instrument registry. Get* is create-or-lookup: the first
/// call registers, later calls (even with different bucket bounds) return
/// the existing instrument. Pointers stay valid for the process lifetime.
class MetricsRegistry {
 public:
  /// \brief Process-wide registry (never destroyed, safe during exit).
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  /// \brief "TYPE name value" lines, sorted by name within each type.
  std::string TextSnapshot() const;

  /// \brief One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string JsonSnapshot() const;

  /// \brief Zeroes every instrument; registrations (and handed-out
  /// pointers) stay valid. Counters with value 0 are skipped by snapshots.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// \brief Adds elapsed wall micros to a counter when it leaves scope.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Counter* c) : counter_(c), start_(NowMicros()) {}
  ~ScopedTimerUs() { counter_->Add(NowMicros() - start_); }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Counter* counter_;
  uint64_t start_;
};

}  // namespace dmml::obs

/// Hot-path helpers: the registry lookup runs once per call site (name must
/// be a string literal or otherwise stable across calls).
#define DMML_COUNTER_ADD(name, delta)                                \
  do {                                                               \
    static ::dmml::obs::Counter* dmml_obs_counter =                  \
        ::dmml::obs::MetricsRegistry::Global().GetCounter(name);     \
    dmml_obs_counter->Add(delta);                                    \
  } while (0)

#define DMML_COUNTER_INC(name) DMML_COUNTER_ADD(name, 1)

#define DMML_GAUGE_SET(name, value)                                  \
  do {                                                               \
    static ::dmml::obs::Gauge* dmml_obs_gauge =                      \
        ::dmml::obs::MetricsRegistry::Global().GetGauge(name);       \
    dmml_obs_gauge->Set(value);                                      \
  } while (0)

#define DMML_HISTOGRAM_OBSERVE(name, bounds, value)                  \
  do {                                                               \
    static ::dmml::obs::Histogram* dmml_obs_hist =                   \
        ::dmml::obs::MetricsRegistry::Global().GetHistogram(name,    \
                                                            bounds); \
    dmml_obs_hist->Observe(value);                                   \
  } while (0)

#endif  // DMML_OBS_METRICS_H_
