#include "obs/profile_registry.h"

#include <sstream>
#include <vector>

#include "obs/metrics.h"  // JsonEscape

namespace dmml::obs {

ProfileRegistry& ProfileRegistry::Global() {
  // Leaked on purpose: scoped registrations may unregister during static
  // destruction, after a function-local static would already be gone.
  static ProfileRegistry* registry = new ProfileRegistry();
  return *registry;
}

void ProfileRegistry::Register(const std::string& name, Provider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_[name] = std::move(provider);
}

void ProfileRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.erase(name);
}

size_t ProfileRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return providers_.size();
}

std::string ProfileRegistry::JsonSnapshot() const {
  std::vector<std::pair<std::string, Provider>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.assign(providers_.begin(), providers_.end());
  }
  std::ostringstream os;
  os << "{\"profiles\":{";
  bool first = true;
  for (const auto& [name, provider] : snapshot) {
    if (!first) os << ",";
    first = false;
    std::string value = provider ? provider() : std::string();
    if (value.empty()) value = "null";
    os << "\"" << JsonEscape(name) << "\":" << value;
  }
  os << "}}";
  return os.str();
}

}  // namespace dmml::obs
