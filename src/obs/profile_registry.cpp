#include "obs/profile_registry.h"

#include <sstream>
#include <vector>

#include "obs/metrics.h"  // JsonEscape

namespace dmml::obs {

/// One live registration. `in_flight` counts JsonSnapshot invocations of the
/// provider currently running; Unregister waits for it to reach zero (both
/// guarded by the registry mutex) before letting the registrant tear down
/// whatever the provider references.
class ProfileRegistry::Entry {
 public:
  Provider provider;
  int in_flight = 0;
};

ProfileRegistry& ProfileRegistry::Global() {
  // Leaked on purpose: scoped registrations may unregister during static
  // destruction, after a function-local static would already be gone.
  static ProfileRegistry* registry = new ProfileRegistry();
  return *registry;
}

ProfileRegistry::Registration ProfileRegistry::Register(const std::string& name,
                                                        Provider provider) {
  auto entry = std::make_shared<Entry>();
  entry->provider = std::move(provider);
  std::lock_guard<std::mutex> lock(mu_);
  providers_[name] = entry;
  return entry;
}

void ProfileRegistry::Unregister(const std::string& name,
                                 const Registration& registration) {
  if (registration == nullptr) return;
  std::unique_lock<std::mutex> lock(mu_);
  auto it = providers_.find(name);
  if (it != providers_.end() && it->second == registration) {
    providers_.erase(it);
  }
  // Even when the name was already replaced (or never present), a scrape may
  // still be inside *this* entry's provider — wait it out so the caller can
  // safely destroy the provider's referents.
  cv_.wait(lock, [&] { return registration->in_flight == 0; });
}

size_t ProfileRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return providers_.size();
}

std::string ProfileRegistry::JsonSnapshot() const {
  std::vector<std::pair<std::string, Registration>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(providers_.size());
    for (const auto& [name, entry] : providers_) {
      entry->in_flight++;  // Pins the entry against Unregister until invoked.
      snapshot.emplace_back(name, entry);
    }
  }
  std::ostringstream os;
  os << "{\"profiles\":{";
  bool first = true;
  for (const auto& [name, entry] : snapshot) {
    if (!first) os << ",";
    first = false;
    std::string value = entry->provider ? entry->provider() : std::string();
    {
      std::lock_guard<std::mutex> lock(mu_);
      entry->in_flight--;
    }
    cv_.notify_all();
    if (value.empty()) value = "null";
    os << "\"" << JsonEscape(name) << "\":" << value;
  }
  os << "}}";
  return os.str();
}

}  // namespace dmml::obs
