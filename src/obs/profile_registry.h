/// \file profile_registry.h
/// \brief Named JSON-profile providers for the exposition endpoint.
///
/// Higher layers (laopt plan profiles, future serving stats) register a
/// closure that renders their current state as a JSON value; the obs layer
/// never sees their types, so the dependency arrow stays pointing down.
/// `ExpositionServer` snapshots the registry on every `/profiles` request,
/// invoking each provider outside the registry lock so a slow renderer
/// cannot block registration or other scrapes. Teardown is safe in both
/// directions: `Unregister` blocks until every in-flight invocation of that
/// provider has returned, so after it the registrant may destroy whatever
/// the provider references.
#ifndef DMML_OBS_PROFILE_REGISTRY_H_
#define DMML_OBS_PROFILE_REGISTRY_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace dmml::obs {

/// \brief Process-wide map from profile name to a JSON-rendering closure.
class ProfileRegistry {
 public:
  /// Renders the provider's current state as one JSON *value* (object,
  /// array, ...). Must be callable from any thread; an empty result is
  /// exported as JSON null.
  using Provider = std::function<std::string()>;

  /// Token identifying one Register() call. Opaque to callers; pass it back
  /// to Unregister so a stale scope can never remove a newer registration
  /// that reused its name.
  class Entry;
  using Registration = std::shared_ptr<Entry>;

  /// \brief Process-wide registry (never destroyed, safe during exit).
  static ProfileRegistry& Global();

  /// \brief Registers `provider` under `name`, replacing any previous entry
  /// (the replaced registrant's token stays valid to pass to Unregister).
  Registration Register(const std::string& name, Provider provider);

  /// \brief Removes `name` if it still holds `registration` (a newer entry
  /// under the same name is left alone), then BLOCKS until every in-flight
  /// JsonSnapshot invocation of this provider has returned — after this call
  /// the registrant may destroy anything the provider references. Must not
  /// be called from inside a provider (it would deadlock on itself). No-op
  /// for a null token.
  void Unregister(const std::string& name, const Registration& registration);

  size_t size() const;

  /// \brief {"profiles":{"name":<value>,...}} over all registered providers.
  /// Providers run outside the registry lock; each entry is pinned against
  /// Unregister for exactly the duration of its own invocation.
  std::string JsonSnapshot() const;

 private:
  ProfileRegistry() = default;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;  ///< Signals in-flight count drops.
  std::map<std::string, Registration> providers_;
};

/// \brief RAII registration in ProfileRegistry::Global(); movable so callers
/// can stash it in scopes that outlive the registering statement. A
/// default-constructed instance owns nothing. Destruction blocks until any
/// scrape currently invoking the provider returns (see Unregister).
class ScopedProfileRegistration {
 public:
  ScopedProfileRegistration() = default;
  ScopedProfileRegistration(std::string name, ProfileRegistry::Provider provider)
      : name_(std::move(name)),
        registration_(
            ProfileRegistry::Global().Register(name_, std::move(provider))) {}
  ~ScopedProfileRegistration() { Release(); }

  ScopedProfileRegistration(ScopedProfileRegistration&& other) noexcept
      : name_(std::move(other.name_)),
        registration_(std::move(other.registration_)) {
    other.name_.clear();
  }
  ScopedProfileRegistration& operator=(ScopedProfileRegistration&& other) noexcept {
    if (this != &other) {
      Release();
      name_ = std::move(other.name_);
      registration_ = std::move(other.registration_);
      other.name_.clear();
    }
    return *this;
  }
  ScopedProfileRegistration(const ScopedProfileRegistration&) = delete;
  ScopedProfileRegistration& operator=(const ScopedProfileRegistration&) = delete;

  const std::string& name() const { return name_; }

 private:
  void Release() {
    if (registration_ != nullptr) {
      ProfileRegistry::Global().Unregister(name_, registration_);
      registration_.reset();
    }
    name_.clear();
  }

  std::string name_;
  ProfileRegistry::Registration registration_;
};

}  // namespace dmml::obs

#endif  // DMML_OBS_PROFILE_REGISTRY_H_
