/// \file profile_registry.h
/// \brief Named JSON-profile providers for the exposition endpoint.
///
/// Higher layers (laopt plan profiles, future serving stats) register a
/// closure that renders their current state as a JSON value; the obs layer
/// never sees their types, so the dependency arrow stays pointing down.
/// `ExpositionServer` snapshots the registry on every `/profiles` request,
/// invoking each provider outside the registry lock so a slow renderer
/// cannot block registration or other scrapes.
#ifndef DMML_OBS_PROFILE_REGISTRY_H_
#define DMML_OBS_PROFILE_REGISTRY_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace dmml::obs {

/// \brief Process-wide map from profile name to a JSON-rendering closure.
class ProfileRegistry {
 public:
  /// Renders the provider's current state as one JSON *value* (object,
  /// array, ...). Must be callable from any thread; an empty result is
  /// exported as JSON null.
  using Provider = std::function<std::string()>;

  /// \brief Process-wide registry (never destroyed, safe during exit).
  static ProfileRegistry& Global();

  /// \brief Registers `provider` under `name`, replacing any previous entry.
  void Register(const std::string& name, Provider provider);

  /// \brief Removes `name`; no-op when absent.
  void Unregister(const std::string& name);

  size_t size() const;

  /// \brief {"profiles":{"name":<value>,...}} over all registered providers.
  /// Providers run outside the registry lock.
  std::string JsonSnapshot() const;

 private:
  ProfileRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, Provider> providers_;
};

/// \brief RAII registration in ProfileRegistry::Global(); movable so callers
/// can stash it in scopes that outlive the registering statement. A
/// default-constructed instance owns nothing.
class ScopedProfileRegistration {
 public:
  ScopedProfileRegistration() = default;
  ScopedProfileRegistration(std::string name, ProfileRegistry::Provider provider)
      : name_(std::move(name)) {
    ProfileRegistry::Global().Register(name_, std::move(provider));
  }
  ~ScopedProfileRegistration() { Release(); }

  ScopedProfileRegistration(ScopedProfileRegistration&& other) noexcept
      : name_(std::move(other.name_)) {
    other.name_.clear();
  }
  ScopedProfileRegistration& operator=(ScopedProfileRegistration&& other) noexcept {
    if (this != &other) {
      Release();
      name_ = std::move(other.name_);
      other.name_.clear();
    }
    return *this;
  }
  ScopedProfileRegistration(const ScopedProfileRegistration&) = delete;
  ScopedProfileRegistration& operator=(const ScopedProfileRegistration&) = delete;

  const std::string& name() const { return name_; }

 private:
  void Release() {
    if (!name_.empty()) {
      ProfileRegistry::Global().Unregister(name_);
      name_.clear();
    }
  }

  std::string name_;
};

}  // namespace dmml::obs

#endif  // DMML_OBS_PROFILE_REGISTRY_H_
