/// \file factorized_gramian.h
/// \brief Gramian (TᵀT) and normal-equation solving over normalized data —
/// the Orion "cofactor" computation.
///
/// For T = [XS | XR₁[fk₁] | XR₂[fk₂] | ...] the Gramian decomposes into
/// blocks that never require materializing T:
///
///   * XSᵀXS                 — O(nS·dS²) over the entity table
///   * XSᵀ(K_t R_t)          — group-accumulate XS rows by fk_t (nR_t×dS),
///                             then multiply with XR_t: O(nS·dS + nR_t·dS·dR_t)
///   * R_tᵀK_tᵀK_t R_t       — K_tᵀK_t = diag(fk counts):
///                             O(nR_t·dR_t²)
///   * R_sᵀK_sᵀK_t R_t (s≠t) — K_sᵀK_t is the sparse fk co-occurrence matrix
///                             with ≤ nS nonzeros.
///
/// With the Gramian and Tᵀy in hand, ridge regression solves in closed form
/// without ever touching an nS×d materialized matrix.
#ifndef DMML_FACTORIZED_FACTORIZED_GRAMIAN_H_
#define DMML_FACTORIZED_FACTORIZED_GRAMIAN_H_

#include "factorized/normalized_matrix.h"
#include "ml/glm.h"
#include "util/result.h"

namespace dmml::factorized {

/// \brief Computes TᵀT (d x d) without materializing T.
la::DenseMatrix FactorizedGramian(const NormalizedMatrix& t);

/// \brief Computes Tᵀ1 (column sums as d x 1) without materializing T.
la::DenseMatrix FactorizedColumnSums(const NormalizedMatrix& t);

/// \brief Closed-form ridge regression over the normalized design matrix:
/// solves (TᵀT + λnI) w = Tᵀy (with an optional intercept row/column
/// appended), entirely from factorized statistics.
Result<ml::GlmModel> TrainFactorizedNormalEquations(const NormalizedMatrix& t,
                                                    const la::DenseMatrix& y,
                                                    double l2 = 0.0,
                                                    bool fit_intercept = true);

}  // namespace dmml::factorized

#endif  // DMML_FACTORIZED_FACTORIZED_GRAMIAN_H_
