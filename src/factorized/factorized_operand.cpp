#include "factorized/factorized_operand.h"

#include <utility>

#include "factorized/factorized_gramian.h"

namespace dmml::factorized {

Result<la::DenseMatrix> NormalizedOperand::Multiply(const la::DenseMatrix& m,
                                                    ThreadPool* /*pool*/) const {
  return m_->Multiply(m);
}

Result<la::DenseMatrix> NormalizedOperand::TransposeMultiply(
    const la::DenseMatrix& m, ThreadPool* /*pool*/) const {
  return m_->TransposeMultiply(m);
}

Result<la::DenseMatrix> NormalizedOperand::Gram(ThreadPool* /*pool*/) const {
  return FactorizedGramian(*m_);
}

Result<la::DenseMatrix> NormalizedOperand::RowSquaredNorms(
    ThreadPool* /*pool*/) const {
  return m_->RowSquaredNorms();
}

Result<la::DenseMatrix> NormalizedOperand::ColumnSums(
    ThreadPool* /*pool*/) const {
  // FactorizedColumnSums yields d x 1; the executor's colSums contract is a
  // 1 x d row vector (identical contiguous storage).
  la::DenseMatrix sums = FactorizedColumnSums(*m_);
  sums.Reshape(1, sums.rows());
  return sums;
}

la::DenseMatrix NormalizedOperand::Materialize(ThreadPool* /*pool*/) const {
  return m_->Materialize();
}

uint64_t NormalizedOperand::SizeInBytes() const {
  // Cells actually stored in normalized form: the entity block plus each
  // attribute table's features and its fk column.
  uint64_t bytes = static_cast<uint64_t>(m_->entity_features().rows()) *
                   m_->entity_features().cols() * sizeof(double);
  for (const AttributeTable& t : m_->tables()) {
    bytes += static_cast<uint64_t>(t.features.rows()) * t.features.cols() *
             sizeof(double);
    bytes += t.fk.size() * sizeof(uint32_t);
  }
  return bytes;
}

laopt::Operand MakeFactorizedOperand(
    std::shared_ptr<const NormalizedMatrix> m) {
  return laopt::Operand(std::shared_ptr<const laopt::LinearOperator>(
      std::make_shared<const NormalizedOperand>(std::move(m))));
}

laopt::Operand MakeFactorizedOperand(NormalizedMatrix m) {
  return MakeFactorizedOperand(
      std::make_shared<const NormalizedMatrix>(std::move(m)));
}

}  // namespace dmml::factorized
