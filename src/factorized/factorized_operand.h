/// \file factorized_operand.h
/// \brief laopt::Operand binding for the normalized (factorized) design
/// matrix: one trainer program, two physical routes.
///
/// NormalizedOperand implements laopt::LinearOperator over a
/// factorized::NormalizedMatrix, so the representation-polymorphic trainers
/// in ml/unified_trainers run their laopt programs (X·w, Xᵀ·r, XᵀX,
/// rowSums(X⊙X), colSums(X), X·Cᵀ, Xᵀ·A) against the *join* without ever
/// materializing it — the executor dispatches each product to the
/// factorized LMM/RMM/Gramian primitives (Orion, Morpheus). This is what
/// lets the pipeline chooser flip between a materialized Operand and a
/// factorized one while the trainer program stays byte-identical.
#ifndef DMML_FACTORIZED_FACTORIZED_OPERAND_H_
#define DMML_FACTORIZED_FACTORIZED_OPERAND_H_

#include <memory>

#include "factorized/normalized_matrix.h"
#include "laopt/operand.h"

namespace dmml::factorized {

/// \brief LinearOperator over a NormalizedMatrix. Holds shared ownership of
/// the normalized tables; Operands wrapping it are cheap shared handles.
class NormalizedOperand : public laopt::LinearOperator {
 public:
  explicit NormalizedOperand(std::shared_ptr<const NormalizedMatrix> m)
      : m_(std::move(m)) {}

  size_t rows() const override { return m_->rows(); }
  size_t cols() const override { return m_->cols(); }

  /// T·m — factorized LMM (per-table products gathered through the keys).
  Result<la::DenseMatrix> Multiply(const la::DenseMatrix& m,
                                   ThreadPool* pool) const override;
  /// Tᵀ·m — factorized RMM (group-accumulate by fk, then per-table).
  Result<la::DenseMatrix> TransposeMultiply(const la::DenseMatrix& m,
                                            ThreadPool* pool) const override;
  /// TᵀT — the Orion cofactor block decomposition.
  Result<la::DenseMatrix> Gram(ThreadPool* pool) const override;
  /// rowSums(T⊙T) computed factorized (k-means distance expansion).
  Result<la::DenseMatrix> RowSquaredNorms(ThreadPool* pool) const override;
  /// colSums(T) as 1 x d via the per-table block sums.
  Result<la::DenseMatrix> ColumnSums(ThreadPool* pool) const override;

  la::DenseMatrix Materialize(ThreadPool* pool) const override;
  uint64_t SizeInBytes() const override;
  const char* Name() const override { return "normalized_matrix"; }

  const NormalizedMatrix& matrix() const { return *m_; }

 private:
  std::shared_ptr<const NormalizedMatrix> m_;
};

/// \brief Wraps a NormalizedMatrix in an Operand with Repr::kFactorized —
/// bindable to any laopt leaf exactly like a dense/CSR/CLA matrix.
laopt::Operand MakeFactorizedOperand(std::shared_ptr<const NormalizedMatrix> m);

/// \brief Convenience overload taking the matrix by value.
laopt::Operand MakeFactorizedOperand(NormalizedMatrix m);

}  // namespace dmml::factorized

#endif  // DMML_FACTORIZED_FACTORIZED_OPERAND_H_
