/// \file factorized_kmeans.h
/// \brief Lloyd's k-means pushed through the join (Morpheus-style).
///
/// The two expensive steps of Lloyd's algorithm are linear-algebra ops over
/// the design matrix T:
///   * distances:  D = rownorms(T) · 1ᵀ − 2 T Cᵀ + 1 · colnorms(C)ᵀ
///   * update:     C' = (Aᵀ T) / counts, A the n x k assignment indicator
/// Both reduce to NormalizedMatrix::Multiply / TransposeMultiply, so k-means
/// runs on normalized data without materializing the join.
#ifndef DMML_FACTORIZED_FACTORIZED_KMEANS_H_
#define DMML_FACTORIZED_FACTORIZED_KMEANS_H_

#include "factorized/normalized_matrix.h"
#include "ml/kmeans.h"
#include "util/result.h"

namespace dmml::factorized {

/// \brief Runs Lloyd's k-means on the logical join output of `t` using only
/// factorized operators. Initial centers are sampled logical rows.
Result<ml::KMeansModel> TrainFactorizedKMeans(const NormalizedMatrix& t,
                                              const ml::KMeansConfig& config);

/// \brief Baseline: materializes the join and delegates to ml::TrainKMeans.
/// Uses the same initialization rule for comparability.
Result<ml::KMeansModel> TrainMaterializedKMeans(const NormalizedMatrix& t,
                                                const ml::KMeansConfig& config);

}  // namespace dmml::factorized

#endif  // DMML_FACTORIZED_FACTORIZED_KMEANS_H_
