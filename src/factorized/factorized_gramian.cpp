#include "factorized/factorized_gramian.h"

#include <algorithm>
#include <unordered_map>

#include "la/kernels.h"
#include "la/ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::factorized {

using la::DenseMatrix;

DenseMatrix FactorizedGramian(const NormalizedMatrix& t) {
  DMML_TRACE_SPAN("factorized.gramian");
  const size_t n = t.rows();
  const auto& entity = t.entity_features();
  const size_t ds = entity.cols();
  const auto& tables = t.tables();
  const size_t d = t.cols();
  DenseMatrix g(d, d);

  // Per-table column offsets within T.
  std::vector<size_t> offsets(tables.size());
  {
    size_t off = ds;
    for (size_t ti = 0; ti < tables.size(); ++ti) {
      offsets[ti] = off;
      off += tables[ti].features.cols();
    }
  }

  // Block XSᵀXS via the blocked SYRK kernel.
  if (ds > 0) {
    DenseMatrix gs = la::Gram(entity);
    for (size_t a = 0; a < ds; ++a) {
      std::copy(gs.Row(a), gs.Row(a) + ds, g.Row(a));
    }
  }

  for (size_t ti = 0; ti < tables.size(); ++ti) {
    const auto& tab = tables[ti];
    const size_t nr = tab.features.rows();
    const size_t dr = tab.features.cols();
    const size_t off = offsets[ti];

    // fk histogram: counts[r] = |{i : fk[i] = r}| (this is KᵀK's diagonal).
    std::vector<double> counts(nr, 0.0);
    for (size_t i = 0; i < n; ++i) counts[tab.fk[i]] += 1.0;

    // Block XSᵀ(K R): group-accumulate XS rows by fk (nR x dS), then fold
    // against XR.
    if (ds > 0) {
      DenseMatrix grouped(nr, ds);
      for (size_t i = 0; i < n; ++i) {
        la::Axpy(1.0, entity.Row(i), grouped.Row(tab.fk[i]), ds);
      }
      for (size_t r = 0; r < nr; ++r) {
        const double* gs = grouped.Row(r);
        const double* xr = tab.features.Row(r);
        for (size_t a = 0; a < ds; ++a) {
          if (gs[a] == 0.0) continue;
          la::Axpy(gs[a], xr, g.Row(a) + off, dr);
        }
      }
    }

    // Block RᵀKᵀKR = Rᵀ diag(counts) R.
    for (size_t r = 0; r < nr; ++r) {
      if (counts[r] == 0.0) continue;
      const double* xr = tab.features.Row(r);
      for (size_t a = 0; a < dr; ++a) {
        double scaled = counts[r] * xr[a];
        if (scaled == 0.0) continue;
        la::Axpy(scaled, xr, g.Row(off + a) + off, dr);
      }
    }

    // Cross-table blocks R_sᵀK_sᵀK_t R_t for s < t: accumulate the sparse
    // co-occurrence counts C[r_s][r_t], then fold both dictionaries.
    for (size_t si = 0; si < ti; ++si) {
      const auto& stab = tables[si];
      const size_t soff = offsets[si];
      const size_t sdr = stab.features.cols();
      std::unordered_map<uint64_t, double> cooc;
      cooc.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        uint64_t key = (static_cast<uint64_t>(stab.fk[i]) << 32) | tab.fk[i];
        cooc[key] += 1.0;
      }
      for (const auto& [key, count] : cooc) {
        uint32_t rs = static_cast<uint32_t>(key >> 32);
        uint32_t rt = static_cast<uint32_t>(key & 0xffffffffu);
        const double* xs_row = stab.features.Row(rs);
        const double* xt_row = tab.features.Row(rt);
        for (size_t a = 0; a < sdr; ++a) {
          double scaled = count * xs_row[a];
          if (scaled == 0.0) continue;
          la::Axpy(scaled, xt_row, g.Row(soff + a) + off, dr);
        }
      }
    }
  }

  // Mirror the upper blocks into the lower triangle.
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a + 1; b < d; ++b) g.At(b, a) = g.At(a, b);
  }

  // Materialized TᵀT is 2·n·d²; the factorized blocks touch each attribute
  // row once, so the gap is the redundancy the rewrite avoided.
  {
    double materialized =
        2.0 * static_cast<double>(n) * static_cast<double>(d) * static_cast<double>(d);
    double factorized = 2.0 * static_cast<double>(n) * static_cast<double>(ds) *
                        static_cast<double>(ds);
    for (const auto& tab : tables) {
      double nr = static_cast<double>(tab.features.rows());
      double dr = static_cast<double>(tab.features.cols());
      factorized += 2.0 * (static_cast<double>(n) * static_cast<double>(ds) +
                           nr * static_cast<double>(ds) * dr + nr * dr * dr);
    }
    if (materialized > factorized) {
      DMML_COUNTER_ADD("factorized.flops_avoided",
                       static_cast<uint64_t>(materialized - factorized));
    }
  }
  return g;
}

DenseMatrix FactorizedColumnSums(const NormalizedMatrix& t) {
  const size_t n = t.rows();
  const auto& entity = t.entity_features();
  const size_t ds = entity.cols();
  DenseMatrix sums(t.cols(), 1);
  for (size_t i = 0; i < n; ++i) {
    const double* xs = entity.Row(i);
    for (size_t j = 0; j < ds; ++j) sums.At(j, 0) += xs[j];
  }
  size_t off = ds;
  for (const auto& tab : t.tables()) {
    const size_t nr = tab.features.rows();
    const size_t dr = tab.features.cols();
    std::vector<double> counts(nr, 0.0);
    for (size_t i = 0; i < n; ++i) counts[tab.fk[i]] += 1.0;
    for (size_t r = 0; r < nr; ++r) {
      if (counts[r] == 0.0) continue;
      la::Axpy(counts[r], tab.features.Row(r), &sums.At(off, 0), dr);
    }
    off += dr;
  }
  return sums;
}

Result<ml::GlmModel> TrainFactorizedNormalEquations(const NormalizedMatrix& t,
                                                    const la::DenseMatrix& y,
                                                    double l2, bool fit_intercept) {
  const size_t n = t.rows();
  const size_t d = t.cols();
  if (y.rows() != n || y.cols() != 1) {
    return Status::InvalidArgument("factorized normal equations: y must be n x 1");
  }
  const size_t da = fit_intercept ? d + 1 : d;

  DenseMatrix gram = FactorizedGramian(t);
  DMML_ASSIGN_OR_RETURN(DenseMatrix xty, t.TransposeMultiply(y));

  DenseMatrix a(da, da);
  DenseMatrix b(da, 1);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) a.At(i, j) = gram.At(i, j);
    b.At(i, 0) = xty.At(i, 0);
  }
  if (fit_intercept) {
    DenseMatrix col_sums = FactorizedColumnSums(t);
    for (size_t j = 0; j < d; ++j) {
      a.At(d, j) = col_sums.At(j, 0);
      a.At(j, d) = col_sums.At(j, 0);
    }
    a.At(d, d) = static_cast<double>(n);
    b.At(d, 0) = la::Sum(y);
  }
  if (l2 > 0) {
    for (size_t j = 0; j < d; ++j) a.At(j, j) += l2 * static_cast<double>(n);
  }
  DMML_ASSIGN_OR_RETURN(DenseMatrix sol, la::Solve(a, b));

  ml::GlmModel model;
  model.family = ml::GlmFamily::kGaussian;
  model.weights = DenseMatrix(d, 1);
  for (size_t j = 0; j < d; ++j) model.weights.At(j, 0) = sol.At(j, 0);
  model.intercept = fit_intercept ? sol.At(d, 0) : 0.0;
  model.epochs_run = 1;
  return model;
}

}  // namespace dmml::factorized
