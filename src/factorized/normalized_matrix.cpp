#include "factorized/normalized_matrix.h"

#include "la/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dmml::factorized {

using la::DenseMatrix;

namespace {

// Multiplying through the normalized form touches each attribute row once
// instead of once per referencing entity row; the difference against the
// materialized product is the redundancy the factorization avoided.
void RecordAvoidedFlops(const NormalizedMatrix& t, size_t k) {
  double materialized = 2.0 * static_cast<double>(t.rows()) *
                        static_cast<double>(t.cols()) * static_cast<double>(k);
  double factorized = 2.0 * static_cast<double>(t.rows()) *
                      static_cast<double>(t.entity_features().cols()) *
                      static_cast<double>(k);
  for (const auto& tab : t.tables()) {
    factorized += 2.0 * static_cast<double>(tab.features.rows()) *
                  static_cast<double>(tab.features.cols()) *
                  static_cast<double>(k);
    // The per-row gather/scatter of the (nS x k) partials.
    factorized += 2.0 * static_cast<double>(t.rows()) * static_cast<double>(k);
  }
  if (materialized > factorized) {
    DMML_COUNTER_ADD("factorized.flops_avoided",
                     static_cast<uint64_t>(materialized - factorized));
  }
}

}  // namespace

Result<NormalizedMatrix> NormalizedMatrix::Make(DenseMatrix entity_features,
                                                std::vector<AttributeTable> tables) {
  const size_t ns = entity_features.rows();
  if (ns == 0) return Status::InvalidArgument("NormalizedMatrix: zero rows");
  if (tables.empty()) {
    return Status::InvalidArgument("NormalizedMatrix needs >= 1 attribute table");
  }
  size_t cols = entity_features.cols();
  for (size_t t = 0; t < tables.size(); ++t) {
    const auto& tab = tables[t];
    if (tab.fk.size() != ns) {
      return Status::InvalidArgument("table " + std::to_string(t) +
                                     ": fk length does not match entity rows");
    }
    const size_t nr = tab.features.rows();
    if (nr == 0 || tab.features.cols() == 0) {
      return Status::InvalidArgument("table " + std::to_string(t) +
                                     ": empty attribute features");
    }
    for (uint32_t key : tab.fk) {
      if (key >= nr) {
        return Status::OutOfRange("table " + std::to_string(t) +
                                  ": foreign key out of range");
      }
    }
    cols += tab.features.cols();
  }
  NormalizedMatrix nm;
  nm.rows_ = ns;
  nm.cols_ = cols;
  nm.entity_ = std::move(entity_features);
  nm.tables_ = std::move(tables);
  return nm;
}

Result<DenseMatrix> NormalizedMatrix::Multiply(const DenseMatrix& m) const {
  if (m.rows() != cols_) {
    return Status::InvalidArgument("Multiply: operand has " + std::to_string(m.rows()) +
                                   " rows, expected " + std::to_string(cols_));
  }
  const size_t k = m.cols();
  DMML_TRACE_SPAN("factorized.multiply");
  DMML_COUNTER_INC("factorized.multiply_calls");
  RecordAvoidedFlops(*this, k);
  DenseMatrix out(rows_, k);

  // Entity block: XS * M_S (standard dense product).
  size_t offset = 0;
  const size_t ds = entity_.cols();
  if (ds > 0) {
    DenseMatrix ms = m.SliceRows(0, ds);
    out = la::Multiply(entity_, ms);
    offset = ds;
  }

  // Attribute blocks: compute XR_i * M_i once per distinct rid, then gather.
  for (const auto& tab : tables_) {
    const size_t dr = tab.features.cols();
    DenseMatrix mi = m.SliceRows(offset, offset + dr);
    DenseMatrix partial = la::Multiply(tab.features, mi);  // nR x k
    for (size_t i = 0; i < rows_; ++i) {
      la::Axpy(1.0, partial.Row(tab.fk[i]), out.Row(i), k);
    }
    offset += dr;
  }
  return out;
}

Result<DenseMatrix> NormalizedMatrix::TransposeMultiply(const DenseMatrix& m) const {
  if (m.rows() != rows_) {
    return Status::InvalidArgument("TransposeMultiply: operand has " +
                                   std::to_string(m.rows()) + " rows, expected " +
                                   std::to_string(rows_));
  }
  const size_t k = m.cols();
  DMML_TRACE_SPAN("factorized.transpose_multiply");
  DMML_COUNTER_INC("factorized.multiply_calls");
  RecordAvoidedFlops(*this, k);
  DenseMatrix out(cols_, k);

  // Entity block: XSᵀ * M.
  size_t offset = 0;
  const size_t ds = entity_.cols();
  if (ds > 0) {
    for (size_t i = 0; i < rows_; ++i) {
      const double* xs = entity_.Row(i);
      const double* mrow = m.Row(i);
      for (size_t j = 0; j < ds; ++j) {
        la::Axpy(xs[j], mrow, out.Row(j), k);
      }
    }
    offset = ds;
  }

  // Attribute blocks: group-accumulate m by fk, then XR_iᵀ * grouped.
  for (const auto& tab : tables_) {
    const size_t nr = tab.features.rows();
    const size_t dr = tab.features.cols();
    DenseMatrix grouped(nr, k);
    for (size_t i = 0; i < rows_; ++i) {
      la::Axpy(1.0, m.Row(i), grouped.Row(tab.fk[i]), k);
    }
    // XR_iᵀ (dr x nr) * grouped (nr x k) without forming the transpose.
    for (size_t r = 0; r < nr; ++r) {
      const double* xr = tab.features.Row(r);
      const double* g = grouped.Row(r);
      for (size_t j = 0; j < dr; ++j) {
        la::Axpy(xr[j], g, out.Row(offset + j), k);
      }
    }
    offset += dr;
  }
  return out;
}

DenseMatrix NormalizedMatrix::RowSquaredNorms() const {
  DenseMatrix out(rows_, 1);
  const size_t ds = entity_.cols();
  for (size_t i = 0; i < rows_; ++i) {
    out.At(i, 0) = la::Dot(entity_.Row(i), entity_.Row(i), ds);
  }
  for (const auto& tab : tables_) {
    const size_t nr = tab.features.rows();
    const size_t dr = tab.features.cols();
    // Per-rid squared norms, computed once.
    std::vector<double> norms(nr);
    for (size_t r = 0; r < nr; ++r) {
      norms[r] = la::Dot(tab.features.Row(r), tab.features.Row(r), dr);
    }
    for (size_t i = 0; i < rows_; ++i) out.At(i, 0) += norms[tab.fk[i]];
  }
  return out;
}

DenseMatrix NormalizedMatrix::Materialize() const {
  DenseMatrix out(rows_, cols_);
  const size_t ds = entity_.cols();
  for (size_t i = 0; i < rows_; ++i) {
    double* row = out.Row(i);
    const double* xs = entity_.Row(i);
    for (size_t j = 0; j < ds; ++j) row[j] = xs[j];
    size_t offset = ds;
    for (const auto& tab : tables_) {
      const size_t dr = tab.features.cols();
      const double* xr = tab.features.Row(tab.fk[i]);
      for (size_t j = 0; j < dr; ++j) row[offset + j] = xr[j];
      offset += dr;
    }
  }
  return out;
}

double NormalizedMatrix::RedundancyRatio() const {
  double materialized = static_cast<double>(rows_) * static_cast<double>(cols_);
  double normalized = static_cast<double>(entity_.size());
  for (const auto& tab : tables_) {
    normalized += static_cast<double>(tab.features.size());
    normalized += static_cast<double>(tab.fk.size());  // Key column storage.
  }
  return materialized / normalized;
}

}  // namespace dmml::factorized
