/// \file factorized_glm.h
/// \brief GLM training over a NormalizedMatrix (factorized) and over its
/// materialized join (baseline), with identical numerics.
///
/// Both paths run the same batch-gradient iteration
///
///   scores = T w + b;  g = invlink(scores) - y
///   w -= lr * (Tᵀ g / n + λ w);  b -= lr * mean(g)
///
/// differing only in how T·v and Tᵀ·v are evaluated, so their outputs agree
/// to floating-point reordering. This mirrors the Orion experiment design.
#ifndef DMML_FACTORIZED_FACTORIZED_GLM_H_
#define DMML_FACTORIZED_FACTORIZED_GLM_H_

#include "factorized/normalized_matrix.h"
#include "ml/glm.h"
#include "util/result.h"

namespace dmml::factorized {

/// \brief Trains a GLM with batch gradient descent using factorized
/// multiplies (never materializing the join).
Result<ml::GlmModel> TrainFactorizedGlm(const NormalizedMatrix& t,
                                        const la::DenseMatrix& y,
                                        const ml::GlmConfig& config);

/// \brief Baseline: materializes the join once, then runs the *same*
/// matrix-formulated batch-gradient loop on the dense result.
Result<ml::GlmModel> TrainMaterializedGlm(const NormalizedMatrix& t,
                                          const la::DenseMatrix& y,
                                          const ml::GlmConfig& config);

/// \brief The shared iteration on an explicit dense design matrix; exposed so
/// tests can verify both paths agree and so benches can time it excluding
/// materialization.
Result<ml::GlmModel> TrainDenseGlmMatrixForm(const la::DenseMatrix& x,
                                             const la::DenseMatrix& y,
                                             const ml::GlmConfig& config);

}  // namespace dmml::factorized

#endif  // DMML_FACTORIZED_FACTORIZED_GLM_H_
