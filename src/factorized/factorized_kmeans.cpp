#include "factorized/factorized_kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "la/kernels.h"
#include "util/rng.h"

namespace dmml::factorized {

using la::DenseMatrix;
using ml::KMeansConfig;
using ml::KMeansModel;

namespace {

// Samples k distinct-ish logical row indices as initial centers (uniform;
// matches the non-k-means++ init of ml::TrainKMeans for comparability).
std::vector<size_t> SampleInitRows(size_t n, size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> rows(k);
  for (size_t c = 0; c < k; ++c) rows[c] = rng.UniformInt(static_cast<uint64_t>(n));
  return rows;
}

// Extracts logical row `i` of the normalized matrix into `out` (length cols).
void GatherRow(const NormalizedMatrix& t, size_t i, double* out) {
  const auto& entity = t.entity_features();
  const size_t ds = entity.cols();
  for (size_t j = 0; j < ds; ++j) out[j] = entity.At(i, j);
  size_t offset = ds;
  for (const auto& tab : t.tables()) {
    const size_t dr = tab.features.cols();
    const double* xr = tab.features.Row(tab.fk[i]);
    for (size_t j = 0; j < dr; ++j) out[offset + j] = xr[j];
    offset += dr;
  }
}

}  // namespace

Result<KMeansModel> TrainFactorizedKMeans(const NormalizedMatrix& t,
                                          const KMeansConfig& config) {
  const size_t n = t.rows(), d = t.cols(), k = config.k;
  if (k == 0 || k > n) return Status::InvalidArgument("k must be in [1, n]");

  KMeansModel model;
  model.centers = DenseMatrix(k, d);
  auto init_rows = SampleInitRows(n, k, config.seed);
  for (size_t c = 0; c < k; ++c) GatherRow(t, init_rows[c], model.centers.Row(c));
  model.labels.assign(n, 0);

  // Row squared norms are join-invariant: compute once, factorized.
  DenseMatrix row_norms = t.RowSquaredNorms();

  // Per-iteration scratch, hoisted so the loop reuses its allocations.
  DenseMatrix ct;
  DenseMatrix a(n, k);
  std::vector<double> center_norms(k);
  std::vector<size_t> counts(k);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < config.max_iters; ++iter) {
    // Cross terms T · Cᵀ in one factorized multiply (n x k).
    la::TransposeInto(model.centers, &ct);
    DMML_ASSIGN_OR_RETURN(DenseMatrix cross, t.Multiply(ct));

    for (size_t c = 0; c < k; ++c) {
      center_norms[c] = la::Dot(model.centers.Row(c), model.centers.Row(c), d);
    }

    // Assignment + inertia from the distance decomposition.
    double inertia = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        double dist = row_norms.At(i, 0) - 2.0 * cross.At(i, c) + center_norms[c];
        if (dist < best_d) {
          best_d = dist;
          best = c;
        }
      }
      model.labels[i] = static_cast<int>(best);
      inertia += std::max(0.0, best_d);
    }

    // Update step: C' = (Aᵀ T)ᵀ scaled by cluster sizes, where A is the
    // assignment indicator — one factorized transpose-multiply.
    a.Fill(0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      a.At(i, static_cast<size_t>(model.labels[i])) = 1.0;
      counts[static_cast<size_t>(model.labels[i])]++;
    }
    DMML_ASSIGN_OR_RETURN(DenseMatrix sums, t.TransposeMultiply(a));  // d x k
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with a random logical row.
        Rng rng(config.seed + iter * 7919 + c);
        GatherRow(t, rng.UniformInt(static_cast<uint64_t>(n)), model.centers.Row(c));
        continue;
      }
      double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t j = 0; j < d; ++j) model.centers.At(c, j) = sums.At(j, c) * inv;
    }

    model.inertia = inertia;
    model.inertia_history.push_back(inertia);
    model.iters_run = iter + 1;
    if (std::isfinite(prev_inertia) &&
        std::fabs(prev_inertia - inertia) <=
        config.tolerance * std::max(1.0, prev_inertia)) {
      break;
    }
    prev_inertia = inertia;
  }
  return model;
}

Result<KMeansModel> TrainMaterializedKMeans(const NormalizedMatrix& t,
                                            const KMeansConfig& config) {
  DenseMatrix x = t.Materialize();
  return ml::TrainKMeans(x, config);
}

}  // namespace dmml::factorized
