/// \file normalized_matrix.h
/// \brief Factorized ("normalized") matrix: learn over joins without
/// materializing them.
///
/// A NormalizedMatrix represents the design matrix of a star-schema join
///
///     T = [ XS | XR_1[fk_1] | XR_2[fk_2] | ... ]
///
/// where XS (nS x dS) holds entity-table features and each attribute table
/// contributes XR_i (nR_i x dR_i) gathered through a foreign-key column
/// fk_i (length nS). Rather than materializing T (nS x (dS + Σ dR_i)), the
/// factorized operators push computation through the join:
///
///   * Multiply (T · M):  per-table products XR_i · M_i are computed once per
///     *distinct* rid (nR_i rows) and gathered — O(nR·dR·k) instead of
///     O(nS·dR·k) for that block.
///   * TransposeMultiply (Tᵀ · M): rows of M are group-accumulated by fk
///     (scatter-add into nR_i buckets) before hitting XR_i.
///
/// These two primitives are exactly what batch-gradient GLM training and
/// Lloyd's k-means need, which is how Orion (Kumar et al., SIGMOD'15) and
/// Morpheus (Chen et al., VLDB'17) avoid join materialization. The speedup
/// grows with the *tuple ratio* (nS/nR) and *feature ratio* (dR/dS).
#ifndef DMML_FACTORIZED_NORMALIZED_MATRIX_H_
#define DMML_FACTORIZED_NORMALIZED_MATRIX_H_

#include <cstdint>
#include <vector>

#include "la/dense_matrix.h"
#include "util/result.h"

namespace dmml::factorized {

/// \brief One attribute (dimension) table joined into the design matrix.
struct AttributeTable {
  la::DenseMatrix features;  ///< nR x dR.
  std::vector<uint32_t> fk;  ///< nS foreign keys into [0, nR).
};

/// \brief A logically-joined design matrix kept in normalized form.
class NormalizedMatrix {
 public:
  /// \brief Builds from entity features (nS x dS; dS may be 0 via a nS x 0
  /// matrix) and one or more attribute tables. Validates key ranges.
  static Result<NormalizedMatrix> Make(la::DenseMatrix entity_features,
                                       std::vector<AttributeTable> tables);

  /// \brief Logical row count nS.
  size_t rows() const { return rows_; }

  /// \brief Logical column count dS + Σ dR_i.
  size_t cols() const { return cols_; }

  const la::DenseMatrix& entity_features() const { return entity_; }
  const std::vector<AttributeTable>& tables() const { return tables_; }

  /// \brief T · m for m of shape (cols() x k). Factorized LMM.
  Result<la::DenseMatrix> Multiply(const la::DenseMatrix& m) const;

  /// \brief Tᵀ · m for m of shape (rows() x k). Factorized RMM.
  Result<la::DenseMatrix> TransposeMultiply(const la::DenseMatrix& m) const;

  /// \brief Per-row sums of squared entries (rows() x 1), computed
  /// factorized — needed by k-means distance computations.
  la::DenseMatrix RowSquaredNorms() const;

  /// \brief Materializes the full join output (the baseline the factorized
  /// path is compared against).
  la::DenseMatrix Materialize() const;

  /// \brief Cells of the materialized matrix divided by cells stored in
  /// normalized form — the redundancy the factorized path avoids.
  double RedundancyRatio() const;

 private:
  NormalizedMatrix() = default;

  size_t rows_ = 0;
  size_t cols_ = 0;
  la::DenseMatrix entity_;
  std::vector<AttributeTable> tables_;
};

}  // namespace dmml::factorized

#endif  // DMML_FACTORIZED_NORMALIZED_MATRIX_H_
