#include "factorized/factorized_glm.h"

#include <cmath>
#include <functional>
#include <limits>

#include "la/kernels.h"

namespace dmml::factorized {

using la::DenseMatrix;
using ml::GlmConfig;
using ml::GlmFamily;
using ml::GlmModel;

namespace {

// Generic batch-gradient loop over an abstract linear operator T given by
// `mult` (T·v) and `tmult` (Tᵀ·v). Both concrete paths instantiate this.
Result<GlmModel> RunMatrixFormBgd(
    size_t n, size_t d, const la::DenseMatrix& y, const GlmConfig& config,
    const std::function<Result<DenseMatrix>(const DenseMatrix&)>& mult,
    const std::function<Result<DenseMatrix>(const DenseMatrix&)>& tmult) {
  if (y.rows() != n || y.cols() != 1) {
    return Status::InvalidArgument("factorized GLM: y must be n x 1");
  }
  if (config.family == GlmFamily::kBinomial) {
    for (size_t i = 0; i < n; ++i) {
      double v = y.At(i, 0);
      if (v != 0.0 && v != 1.0) {
        return Status::InvalidArgument("Binomial family requires 0/1 labels");
      }
    }
  }
  if (config.learning_rate <= 0) {
    return Status::InvalidArgument("learning_rate must be positive");
  }

  GlmModel model;
  model.family = config.family;
  model.weights = DenseMatrix(d, 1);

  const double inv_n = 1.0 / static_cast<double>(n);
  double prev_loss = std::numeric_limits<double>::infinity();
  for (size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    DMML_ASSIGN_OR_RETURN(DenseMatrix scores, mult(model.weights));
    // Residual g = invlink(score + b) - y, and loss in the same pass.
    double loss = 0;
    double bias_grad = 0;
    for (size_t i = 0; i < n; ++i) {
      double s = scores.At(i, 0) + model.intercept;
      double yi = y.At(i, 0);
      if (config.family == GlmFamily::kGaussian) {
        double r = s - yi;
        loss += 0.5 * r * r;
        scores.At(i, 0) = r;
      } else {
        double sign_y = yi > 0.5 ? 1.0 : -1.0;
        double m = sign_y * s;
        loss += m > 0 ? std::log1p(std::exp(-m)) : -m + std::log1p(std::exp(m));
        scores.At(i, 0) = ml::GlmInverseLink(s, config.family) - yi;
      }
      bias_grad += scores.At(i, 0);
    }
    loss *= inv_n;
    if (config.l2 > 0) {
      double w2 = 0;
      for (size_t j = 0; j < d; ++j) w2 += model.weights.At(j, 0) * model.weights.At(j, 0);
      loss += 0.5 * config.l2 * w2;
    }

    DMML_ASSIGN_OR_RETURN(DenseMatrix grad, tmult(scores));
    double lr =
        config.learning_rate / (1.0 + config.lr_decay * static_cast<double>(epoch));
    for (size_t j = 0; j < d; ++j) {
      model.weights.At(j, 0) -=
          lr * (grad.At(j, 0) * inv_n + config.l2 * model.weights.At(j, 0));
    }
    if (config.fit_intercept) model.intercept -= lr * bias_grad * inv_n;

    model.loss_history.push_back(loss);
    model.epochs_run = epoch + 1;
    if (std::isfinite(prev_loss) &&
        std::fabs(prev_loss - loss) <= config.tolerance * std::max(1.0, prev_loss)) {
      break;
    }
    prev_loss = loss;
  }
  return model;
}

}  // namespace

Result<GlmModel> TrainFactorizedGlm(const NormalizedMatrix& t, const DenseMatrix& y,
                                    const GlmConfig& config) {
  return RunMatrixFormBgd(
      t.rows(), t.cols(), y, config,
      [&t](const DenseMatrix& v) { return t.Multiply(v); },
      [&t](const DenseMatrix& v) { return t.TransposeMultiply(v); });
}

Result<GlmModel> TrainDenseGlmMatrixForm(const DenseMatrix& x, const DenseMatrix& y,
                                         const GlmConfig& config) {
  return RunMatrixFormBgd(
      x.rows(), x.cols(), y, config,
      [&x](const DenseMatrix& v) -> Result<DenseMatrix> { return la::Multiply(x, v); },
      [&x](const DenseMatrix& v) -> Result<DenseMatrix> {
        // Xᵀ v without forming the transpose.
        DenseMatrix out(x.cols(), v.cols());
        for (size_t i = 0; i < x.rows(); ++i) {
          const double* xi = x.Row(i);
          const double* vi = v.Row(i);
          for (size_t j = 0; j < x.cols(); ++j) {
            la::Axpy(xi[j], vi, out.Row(j), v.cols());
          }
        }
        return out;
      });
}

Result<GlmModel> TrainMaterializedGlm(const NormalizedMatrix& t, const DenseMatrix& y,
                                      const GlmConfig& config) {
  DenseMatrix x = t.Materialize();
  return TrainDenseGlmMatrixForm(x, y, config);
}

}  // namespace dmml::factorized
