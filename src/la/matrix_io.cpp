#include "la/matrix_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/csv.h"
#include "util/string_utils.h"

namespace dmml::la {

namespace {

constexpr char kDenseMagic[4] = {'D', 'M', 'M', '1'};
constexpr char kSparseMagic[4] = {'D', 'M', 'S', '1'};

Status WriteExact(std::ofstream& out, const void* data, size_t bytes) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  if (!out) return Status::IOError("matrix write failed");
  return Status::OK();
}

Status ReadExact(std::ifstream& in, void* data, size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (in.gcount() != static_cast<std::streamsize>(bytes)) {
    return Status::IOError("matrix file truncated");
  }
  return Status::OK();
}

}  // namespace

Status SaveDenseMatrix(const DenseMatrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  DMML_RETURN_IF_ERROR(WriteExact(out, kDenseMagic, 4));
  uint64_t dims[2] = {m.rows(), m.cols()};
  DMML_RETURN_IF_ERROR(WriteExact(out, dims, sizeof(dims)));
  return WriteExact(out, m.data(), m.size() * sizeof(double));
}

Result<DenseMatrix> LoadDenseMatrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  char magic[4];
  DMML_RETURN_IF_ERROR(ReadExact(in, magic, 4));
  if (std::memcmp(magic, kDenseMagic, 4) != 0) {
    return Status::InvalidArgument("not a DMM1 dense-matrix file: " + path);
  }
  uint64_t dims[2];
  DMML_RETURN_IF_ERROR(ReadExact(in, dims, sizeof(dims)));
  if (dims[0] > (1ull << 32) || dims[1] > (1ull << 32)) {
    return Status::InvalidArgument("implausible matrix dimensions");
  }
  DenseMatrix m(static_cast<size_t>(dims[0]), static_cast<size_t>(dims[1]));
  DMML_RETURN_IF_ERROR(ReadExact(in, m.data(), m.size() * sizeof(double)));
  return m;
}

Status SaveSparseMatrix(const SparseMatrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  DMML_RETURN_IF_ERROR(WriteExact(out, kSparseMagic, 4));
  uint64_t header[3] = {m.rows(), m.cols(), m.nnz()};
  DMML_RETURN_IF_ERROR(WriteExact(out, header, sizeof(header)));
  // row_ptr as u64 for portability across size_t widths.
  std::vector<uint64_t> row_ptr(m.row_ptr().begin(), m.row_ptr().end());
  DMML_RETURN_IF_ERROR(
      WriteExact(out, row_ptr.data(), row_ptr.size() * sizeof(uint64_t)));
  DMML_RETURN_IF_ERROR(
      WriteExact(out, m.col_idx().data(), m.col_idx().size() * sizeof(uint32_t)));
  return WriteExact(out, m.values().data(), m.values().size() * sizeof(double));
}

Result<SparseMatrix> LoadSparseMatrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  char magic[4];
  DMML_RETURN_IF_ERROR(ReadExact(in, magic, 4));
  if (std::memcmp(magic, kSparseMagic, 4) != 0) {
    return Status::InvalidArgument("not a DMS1 sparse-matrix file: " + path);
  }
  uint64_t header[3];
  DMML_RETURN_IF_ERROR(ReadExact(in, header, sizeof(header)));
  const size_t rows = static_cast<size_t>(header[0]);
  const size_t cols = static_cast<size_t>(header[1]);
  const size_t nnz = static_cast<size_t>(header[2]);
  if (rows > (1ull << 32) || cols > (1ull << 32) || nnz > rows * cols) {
    return Status::InvalidArgument("implausible sparse matrix header");
  }
  std::vector<uint64_t> row_ptr(rows + 1);
  DMML_RETURN_IF_ERROR(
      ReadExact(in, row_ptr.data(), row_ptr.size() * sizeof(uint64_t)));
  std::vector<uint32_t> col_idx(nnz);
  DMML_RETURN_IF_ERROR(ReadExact(in, col_idx.data(), nnz * sizeof(uint32_t)));
  std::vector<double> values(nnz);
  DMML_RETURN_IF_ERROR(ReadExact(in, values.data(), nnz * sizeof(double)));

  // Rebuild through the validating triplet path.
  std::vector<Triplet> triplets;
  triplets.reserve(nnz);
  for (size_t r = 0; r < rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1] || row_ptr[r + 1] > nnz) {
      return Status::InvalidArgument("corrupt row_ptr in sparse matrix file");
    }
    for (uint64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col_idx[k] >= cols) {
        return Status::InvalidArgument("corrupt col_idx in sparse matrix file");
      }
      triplets.push_back({r, col_idx[k], values[k]});
    }
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

Status SaveDenseMatrixCsv(const DenseMatrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.precision(17);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      if (j) out << ',';
      out << m.At(i, j);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("matrix CSV write failed");
  return Status::OK();
}

Result<DenseMatrix> LoadDenseMatrixCsv(const std::string& path) {
  CsvOptions options;
  options.has_header = false;
  DMML_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsvFile(path, options));
  if (doc.rows.empty()) return DenseMatrix();
  const size_t cols = doc.rows.front().size();
  DenseMatrix m(doc.rows.size(), cols);
  for (size_t i = 0; i < doc.rows.size(); ++i) {
    if (doc.rows[i].size() != cols) {
      return Status::InvalidArgument("ragged CSV row " + std::to_string(i));
    }
    for (size_t j = 0; j < cols; ++j) {
      DMML_ASSIGN_OR_RETURN(double v, ParseDouble(doc.rows[i][j]));
      m.At(i, j) = v;
    }
  }
  return m;
}

}  // namespace dmml::la
