#include "la/ops.h"

#include <cmath>
#include <sstream>

namespace dmml::la {

namespace {
std::string ShapeError(const char* op, const DenseMatrix& a, const DenseMatrix& b) {
  std::ostringstream os;
  os << op << ": incompatible shapes " << a.rows() << "x" << a.cols() << " and "
     << b.rows() << "x" << b.cols();
  return os.str();
}
}  // namespace

Result<DenseMatrix> CheckedMultiply(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(ShapeError("multiply", a, b));
  }
  return Multiply(a, b);
}

Result<DenseMatrix> CheckedAdd(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument(ShapeError("add", a, b));
  }
  return Add(a, b);
}

Result<DenseMatrix> CheckedSubtract(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument(ShapeError("subtract", a, b));
  }
  return Subtract(a, b);
}

Result<DenseMatrix> CheckedElementwiseMultiply(const DenseMatrix& a,
                                               const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument(ShapeError("elementwise multiply", a, b));
  }
  return ElementwiseMultiply(a, b);
}

Result<DenseMatrix> Solve(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Solve: A must be square");
  }
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument(ShapeError("solve", a, b));
  }
  const size_t n = a.rows();
  const size_t m = b.cols();
  DenseMatrix lu = a;  // Working copy, destroyed by elimination.
  DenseMatrix x = b;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::fabs(lu.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(lu.At(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition("Solve: matrix is singular to precision");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(lu.At(col, j), lu.At(pivot, j));
      for (size_t j = 0; j < m; ++j) std::swap(x.At(col, j), x.At(pivot, j));
    }
    const double d = lu.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      double f = lu.At(r, col) / d;
      if (f == 0.0) continue;
      for (size_t j = col; j < n; ++j) lu.At(r, j) -= f * lu.At(col, j);
      for (size_t j = 0; j < m; ++j) x.At(r, j) -= f * x.At(col, j);
    }
  }
  // Back substitution.
  for (size_t col = n; col-- > 0;) {
    const double d = lu.At(col, col);
    for (size_t j = 0; j < m; ++j) x.At(col, j) /= d;
    for (size_t r = 0; r < col; ++r) {
      double f = lu.At(r, col);
      if (f == 0.0) continue;
      for (size_t j = 0; j < m; ++j) x.At(r, j) -= f * x.At(col, j);
    }
  }
  return x;
}

Result<DenseMatrix> Inverse(const DenseMatrix& a) {
  return Solve(a, DenseMatrix::Identity(a.rows()));
}

}  // namespace dmml::la
