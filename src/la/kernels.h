/// \file kernels.h
/// \brief Blocked, multicore BLAS-like kernels over DenseMatrix / SparseMatrix.
///
/// All kernels are free functions; shape mismatches are surfaced as Status
/// errors by the checked wrappers in ops.h, while the kernels here assume
/// validated shapes (checked with DMML_CHECK in debug spirit).
///
/// The dense engine is organised in three layers:
///
///  * **Blocked compute kernels.** `Multiply` is a cache-blocked GEMM: the B
///    operand is packed per (k, j) panel into register-tile-friendly slivers
///    and consumed by a kMr x kNr micro-kernel that keeps the C tile in
///    registers; row blocks fan out across the thread pool. `Gram` (SYRK,
///    XᵀX), `TransposeMultiply` (XᵀM) and `MultiplyTransposeB` (ABᵀ) never
///    materialize a transpose. `Transpose` itself is tile-blocked.
///
///  * **Parallel reductions.** Accumulating kernels (`Gevm`, `SparseGevm`,
///    `ColumnSums`, `Sum`, `FrobeniusNorm`, `Gram`, `TransposeMultiply`) give
///    each chunk a private partial buffer and reduce at the end, so they
///    parallelize without atomics or locks.
///
///  * **Output-reuse ("Into") variants.** Every shape-producing kernel has a
///    `...Into(args, DenseMatrix* out)` form that reshapes `out` in place,
///    reusing its allocation when the capacity already fits. Steady-state
///    iterative callers (laopt executor, GLM/k-means loops) thus allocate
///    nothing per iteration. Reuse/alloc totals are observable as the
///    `la.inplace.reuses` / `la.inplace.allocs` counters.
///
/// Every parallel kernel takes an optional ThreadPool and applies a grain
/// heuristic: inputs with too little work for a pool round-trip run inline
/// (see ParallelChunkCount). Passing a null pool always runs serial.
///
/// The `reference` namespace keeps the original naive serial kernels; parity
/// tests and benches compare the blocked engine against them.
#ifndef DMML_LA_KERNELS_H_
#define DMML_LA_KERNELS_H_

#include <functional>

#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "util/thread_pool.h"

namespace dmml::la {

// ---------------------------------------------------------------------------
// Dense kernels (allocating forms)
// ---------------------------------------------------------------------------

/// \brief C = A * B (cache-blocked GEMM). Optionally parallel over row blocks.
DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b,
                     ThreadPool* pool = nullptr);

/// \brief C = A * Bᵀ for row-major A (m x k) and B (n x k); returns (m x n).
/// Row-dot-product based — both operands stream contiguously, no transpose is
/// materialized. The k-means assignment kernel.
DenseMatrix MultiplyTransposeB(const DenseMatrix& a, const DenseMatrix& b,
                               ThreadPool* pool = nullptr);

/// \brief G = Xᵀ X (SYRK / Gramian) for X (n x d); returns (d x d).
/// Accumulates 4-row rank-1 update bundles into the upper triangle (per-chunk
/// partial Gramians reduced at the end when parallel), then mirrors — half
/// the FLOPs of Multiply(Transpose(X), X) and no materialized transpose.
DenseMatrix Gram(const DenseMatrix& x, ThreadPool* pool = nullptr);

/// \brief Xᵀ M for X (n x d) and M (n x k); returns (d x k) without
/// materializing Xᵀ (per-chunk partials + reduction when parallel).
DenseMatrix TransposeMultiply(const DenseMatrix& x, const DenseMatrix& m,
                              ThreadPool* pool = nullptr);

/// \brief y = A * x with x an (n x 1) vector; returns (m x 1).
DenseMatrix Gemv(const DenseMatrix& a, const DenseMatrix& x,
                 ThreadPool* pool = nullptr);

/// \brief y = x^T * A with x an (m x 1) vector; returns (1 x n).
DenseMatrix Gevm(const DenseMatrix& x, const DenseMatrix& a,
                 ThreadPool* pool = nullptr);

/// \brief A^T (tile-blocked; parallel over output row blocks).
DenseMatrix Transpose(const DenseMatrix& a, ThreadPool* pool = nullptr);

/// \brief A + B.
DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b);

/// \brief A - B.
DenseMatrix Subtract(const DenseMatrix& a, const DenseMatrix& b);

/// \brief Element-wise (Hadamard) product.
DenseMatrix ElementwiseMultiply(const DenseMatrix& a, const DenseMatrix& b);

/// \brief alpha * A.
DenseMatrix Scale(const DenseMatrix& a, double alpha);

/// \brief A + alpha (element-wise scalar add).
DenseMatrix AddScalar(const DenseMatrix& a, double alpha);

/// \brief Applies `fn` to every element.
DenseMatrix Map(const DenseMatrix& a, const std::function<double(double)>& fn);

/// \brief In-place y += alpha * x over raw buffers of length n.
void Axpy(double alpha, const double* x, double* y, size_t n);

/// \brief Dot product of raw buffers of length n.
double Dot(const double* x, const double* y, size_t n);

/// \brief Dot product of two vectors (either orientation, same length).
double Dot(const DenseMatrix& x, const DenseMatrix& y);

/// \brief Sum of all elements (parallel tree reduction for large inputs).
double Sum(const DenseMatrix& a, ThreadPool* pool = nullptr);

/// \brief Per-column sums as a 1 x cols row vector.
DenseMatrix ColumnSums(const DenseMatrix& a, ThreadPool* pool = nullptr);

/// \brief Per-row sums as a rows x 1 column vector.
DenseMatrix RowSums(const DenseMatrix& a, ThreadPool* pool = nullptr);

/// \brief Frobenius norm (parallel reduction for large inputs).
double FrobeniusNorm(const DenseMatrix& a, ThreadPool* pool = nullptr);

/// \brief Squared L2 distance between row `r1` of a and row `r2` of b.
double RowSquaredDistance(const DenseMatrix& a, size_t r1, const DenseMatrix& b,
                          size_t r2);

// ---------------------------------------------------------------------------
// Output-reuse variants
// ---------------------------------------------------------------------------
//
// Each reshapes *out in place (capacity permitting: no allocation) and fully
// overwrites it. `out` must not alias an input.

void MultiplyInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out,
                  ThreadPool* pool = nullptr);
void MultiplyTransposeBInto(const DenseMatrix& a, const DenseMatrix& b,
                            DenseMatrix* out, ThreadPool* pool = nullptr);
void GramInto(const DenseMatrix& x, DenseMatrix* out, ThreadPool* pool = nullptr);
void TransposeMultiplyInto(const DenseMatrix& x, const DenseMatrix& m,
                           DenseMatrix* out, ThreadPool* pool = nullptr);
void GemvInto(const DenseMatrix& a, const DenseMatrix& x, DenseMatrix* out,
              ThreadPool* pool = nullptr);
void GevmInto(const DenseMatrix& x, const DenseMatrix& a, DenseMatrix* out,
              ThreadPool* pool = nullptr);
void TransposeInto(const DenseMatrix& a, DenseMatrix* out,
                   ThreadPool* pool = nullptr);
void AddInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out);
void SubtractInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out);
void ElementwiseMultiplyInto(const DenseMatrix& a, const DenseMatrix& b,
                             DenseMatrix* out);
void ScaleInto(const DenseMatrix& a, double alpha, DenseMatrix* out);
void AddScalarInto(const DenseMatrix& a, double alpha, DenseMatrix* out);
void MapInto(const DenseMatrix& a, const std::function<double(double)>& fn,
             DenseMatrix* out);
void ColumnSumsInto(const DenseMatrix& a, DenseMatrix* out,
                    ThreadPool* pool = nullptr);
void RowSumsInto(const DenseMatrix& a, DenseMatrix* out,
                 ThreadPool* pool = nullptr);

/// \brief Y += alpha * X for same-shape matrices (no reshape; Y must already
/// conform).
void AxpyInto(double alpha, const DenseMatrix& x, DenseMatrix* y);

/// \brief out(i, j) = a(i, j) * s(0, j): scales every column of A by the
/// matching entry of the 1 x cols row vector `s`. The shared-scan trainer
/// uses this to apply per-configuration learning rates / L2 strengths to a
/// stacked gradient matrix in one pass.
void ScaleColumnsInto(const DenseMatrix& a, const DenseMatrix& s,
                      DenseMatrix* out);

/// \brief Allocating form of ScaleColumnsInto.
DenseMatrix ScaleColumns(const DenseMatrix& a, const DenseMatrix& s);

// ---------------------------------------------------------------------------
// Row-windowed variants
// ---------------------------------------------------------------------------
//
// Operate on rows [row_begin, row_end) of the *left* operand without copying
// them out; outputs (and the M operand of the transpose forms) are
// window-relative. These back contiguous-fold cross-validation: a fold is a
// row range, not a gathered copy. Kernel choice and chunk grain are
// independent of the output width so a k-wide pass is bit-equal per column
// to k separate 1-wide passes over the same window.

/// \brief out = A[row_begin:row_end) * B; out becomes (row_end-row_begin) x n.
void MultiplyRangeInto(const DenseMatrix& a, size_t row_begin, size_t row_end,
                       const DenseMatrix& b, DenseMatrix* out,
                       ThreadPool* pool = nullptr);

/// \brief out = X[row_begin:row_end)ᵀ * M with M window-relative
/// ((row_end-row_begin) x k); out becomes (d x k).
void TransposeMultiplyRangeInto(const DenseMatrix& x, size_t row_begin,
                                size_t row_end, const DenseMatrix& m,
                                DenseMatrix* out, ThreadPool* pool = nullptr);

// ---------------------------------------------------------------------------
// Sparse kernels
// ---------------------------------------------------------------------------

/// \brief y = A * x for CSR A and dense (n x 1) x.
DenseMatrix SparseGemv(const SparseMatrix& a, const DenseMatrix& x,
                       ThreadPool* pool = nullptr);

/// \brief y = x^T * A for CSR A; returns (1 x n). Parallel via per-chunk
/// private dense accumulators plus a reduction.
DenseMatrix SparseGevm(const DenseMatrix& x, const SparseMatrix& a,
                       ThreadPool* pool = nullptr);

/// \brief C = A * B for CSR A and dense B.
DenseMatrix SparseMultiplyDense(const SparseMatrix& a, const DenseMatrix& b,
                                ThreadPool* pool = nullptr);

/// \brief A^T for CSR A (returns CSR). Two-pass counting transpose: O(nnz)
/// with no sort.
SparseMatrix SparseTranspose(const SparseMatrix& a);

// Output-reuse variants and CSR reductions, consumed by the laopt executor's
// representation dispatch. The Into forms reshape `*out` (counting
// la.inplace.reuses / la.inplace.allocs) and fully overwrite it.

/// \brief y = A * x into `*out` for CSR A and dense (n x 1) x.
void SparseGemvInto(const SparseMatrix& a, const DenseMatrix& x,
                    DenseMatrix* out, ThreadPool* pool = nullptr);

/// \brief y = x^T * A into `*out` (1 x n) for CSR A.
void SparseGevmInto(const DenseMatrix& x, const SparseMatrix& a,
                    DenseMatrix* out, ThreadPool* pool = nullptr);

/// \brief C = A * B into `*out` for CSR A and dense B.
void SparseMultiplyDenseInto(const SparseMatrix& a, const DenseMatrix& b,
                             DenseMatrix* out, ThreadPool* pool = nullptr);

/// \brief Sum of all stored values (== full sum; zeros contribute nothing).
double SparseSum(const SparseMatrix& a);

/// \brief Per-row sums into `*out` (rows x 1). O(nnz).
void SparseRowSumsInto(const SparseMatrix& a, DenseMatrix* out);

/// \brief Per-column sums into `*out` (1 x cols). O(nnz).
void SparseColumnSumsInto(const SparseMatrix& a, DenseMatrix* out);

/// \brief Per-row squared L2 norms into `*out` (rows x 1) — the fused
/// rowSums(A ⊙ A) the k-means distance expansion needs. O(nnz).
void SparseRowSquaredNormsInto(const SparseMatrix& a, DenseMatrix* out);

/// \brief out = A[row_begin:row_end) * B for CSR A; out is window-relative
/// ((row_end-row_begin) x b.cols()). CSR row offsets make the row window a
/// positional slice — no scan from row 0.
void SparseMultiplyDenseRangeInto(const SparseMatrix& a, size_t row_begin,
                                  size_t row_end, const DenseMatrix& b,
                                  DenseMatrix* out, ThreadPool* pool = nullptr);

/// \brief out = A[row_begin:row_end)ᵀ * M for CSR A with M window-relative
/// ((row_end-row_begin) x k); out becomes (cols x k). Per-chunk private
/// partials + reduction, like SparseGevm.
void SparseTransposeMultiplyRangeInto(const SparseMatrix& a, size_t row_begin,
                                      size_t row_end, const DenseMatrix& m,
                                      DenseMatrix* out,
                                      ThreadPool* pool = nullptr);

// ---------------------------------------------------------------------------
// Naive reference kernels
// ---------------------------------------------------------------------------
//
// The original unblocked serial implementations, kept as the ground truth
// for parity tests and as the bench baseline the blocked engine is measured
// against. Not for production call sites.
namespace reference {

DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b);
DenseMatrix Transpose(const DenseMatrix& a);
DenseMatrix Gram(const DenseMatrix& x);
DenseMatrix TransposeMultiply(const DenseMatrix& x, const DenseMatrix& m);
DenseMatrix MultiplyTransposeB(const DenseMatrix& a, const DenseMatrix& b);
DenseMatrix Gevm(const DenseMatrix& x, const DenseMatrix& a);
DenseMatrix ColumnSums(const DenseMatrix& a);
double Sum(const DenseMatrix& a);
double FrobeniusNorm(const DenseMatrix& a);
DenseMatrix SparseGevm(const DenseMatrix& x, const SparseMatrix& a);
SparseMatrix SparseTranspose(const SparseMatrix& a);

}  // namespace reference

}  // namespace dmml::la

#endif  // DMML_LA_KERNELS_H_
