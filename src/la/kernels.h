/// \file kernels.h
/// \brief BLAS-like computational kernels over DenseMatrix / SparseMatrix.
///
/// All kernels are free functions; shape mismatches are surfaced as Status
/// errors by the checked wrappers in ops.h, while the kernels here assume
/// validated shapes (checked with DMML_CHECK in debug spirit).
#ifndef DMML_LA_KERNELS_H_
#define DMML_LA_KERNELS_H_

#include <functional>

#include "la/dense_matrix.h"
#include "la/sparse_matrix.h"
#include "util/thread_pool.h"

namespace dmml::la {

// ---------------------------------------------------------------------------
// Dense kernels
// ---------------------------------------------------------------------------

/// \brief C = A * B (dense GEMM, ikj loop order). Optionally parallel over rows.
DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b,
                     ThreadPool* pool = nullptr);

/// \brief y = A * x with x an (n x 1) vector; returns (m x 1).
DenseMatrix Gemv(const DenseMatrix& a, const DenseMatrix& x,
                 ThreadPool* pool = nullptr);

/// \brief y = x^T * A with x an (m x 1) vector; returns (1 x n).
DenseMatrix Gevm(const DenseMatrix& x, const DenseMatrix& a,
                 ThreadPool* pool = nullptr);

/// \brief A^T.
DenseMatrix Transpose(const DenseMatrix& a);

/// \brief A + B.
DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b);

/// \brief A - B.
DenseMatrix Subtract(const DenseMatrix& a, const DenseMatrix& b);

/// \brief Element-wise (Hadamard) product.
DenseMatrix ElementwiseMultiply(const DenseMatrix& a, const DenseMatrix& b);

/// \brief alpha * A.
DenseMatrix Scale(const DenseMatrix& a, double alpha);

/// \brief A + alpha (element-wise scalar add).
DenseMatrix AddScalar(const DenseMatrix& a, double alpha);

/// \brief Applies `fn` to every element.
DenseMatrix Map(const DenseMatrix& a, const std::function<double(double)>& fn);

/// \brief In-place y += alpha * x over raw buffers of length n.
void Axpy(double alpha, const double* x, double* y, size_t n);

/// \brief Dot product of raw buffers of length n.
double Dot(const double* x, const double* y, size_t n);

/// \brief Dot product of two vectors (either orientation, same length).
double Dot(const DenseMatrix& x, const DenseMatrix& y);

/// \brief Sum of all elements.
double Sum(const DenseMatrix& a);

/// \brief Per-column sums as a 1 x cols row vector.
DenseMatrix ColumnSums(const DenseMatrix& a);

/// \brief Per-row sums as a rows x 1 column vector.
DenseMatrix RowSums(const DenseMatrix& a);

/// \brief Frobenius norm.
double FrobeniusNorm(const DenseMatrix& a);

/// \brief Squared L2 distance between row `r1` of a and row `r2` of b.
double RowSquaredDistance(const DenseMatrix& a, size_t r1, const DenseMatrix& b,
                          size_t r2);

// ---------------------------------------------------------------------------
// Sparse kernels
// ---------------------------------------------------------------------------

/// \brief y = A * x for CSR A and dense (n x 1) x.
DenseMatrix SparseGemv(const SparseMatrix& a, const DenseMatrix& x,
                       ThreadPool* pool = nullptr);

/// \brief y = x^T * A for CSR A; returns (1 x n).
DenseMatrix SparseGevm(const DenseMatrix& x, const SparseMatrix& a);

/// \brief C = A * B for CSR A and dense B.
DenseMatrix SparseMultiplyDense(const SparseMatrix& a, const DenseMatrix& b,
                                ThreadPool* pool = nullptr);

/// \brief A^T for CSR A (returns CSR).
SparseMatrix SparseTranspose(const SparseMatrix& a);

}  // namespace dmml::la

#endif  // DMML_LA_KERNELS_H_
