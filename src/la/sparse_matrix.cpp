#include "la/sparse_matrix.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dmml::la {

SparseMatrix SparseMatrix::FromTriplets(size_t rows, size_t cols,
                                        std::vector<Triplet> triplets) {
  for (const auto& t : triplets) {
    DMML_CHECK_LT(t.row, rows);
    DMML_CHECK_LT(t.col, cols);
  }
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);

  // Coalesce duplicates.
  std::vector<Triplet> merged;
  merged.reserve(triplets.size());
  for (const auto& t : triplets) {
    if (!merged.empty() && merged.back().row == t.row && merged.back().col == t.col) {
      merged.back().value += t.value;
    } else {
      merged.push_back(t);
    }
  }

  for (const auto& t : merged) {
    if (t.value == 0.0) continue;
    m.col_idx_.push_back(static_cast<uint32_t>(t.col));
    m.values_.push_back(t.value);
    m.row_ptr_[t.row + 1]++;
  }
  for (size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::FromCsr(size_t rows, size_t cols,
                                   std::vector<size_t> row_ptr,
                                   std::vector<uint32_t> col_idx,
                                   std::vector<double> values) {
  DMML_CHECK_EQ(row_ptr.size(), rows + 1);
  DMML_CHECK_EQ(col_idx.size(), values.size());
  DMML_CHECK_EQ(row_ptr[rows], col_idx.size());
  for (size_t r = 0; r < rows; ++r) {
    DMML_CHECK_LE(row_ptr[r], row_ptr[r + 1]);
    for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      DMML_CHECK_LT(col_idx[k], cols);
      if (k > row_ptr[r]) DMML_CHECK_LT(col_idx[k - 1], col_idx[k]);
    }
  }
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

SparseMatrix SparseMatrix::FromDense(const DenseMatrix& dense, double tol) {
  SparseMatrix m;
  m.rows_ = dense.rows();
  m.cols_ = dense.cols();
  m.row_ptr_.assign(m.rows_ + 1, 0);
  for (size_t r = 0; r < m.rows_; ++r) {
    const double* row = dense.Row(r);
    for (size_t c = 0; c < m.cols_; ++c) {
      if (std::fabs(row[c]) > tol) {
        m.col_idx_.push_back(static_cast<uint32_t>(c));
        m.values_.push_back(row[c]);
      }
    }
    m.row_ptr_[r + 1] = m.values_.size();
  }
  return m;
}

double SparseMatrix::At(size_t r, size_t c) const {
  DMML_CHECK_LT(r, rows_);
  DMML_CHECK_LT(c, cols_);
  auto begin = col_idx_.begin() + row_ptr_[r];
  auto end = col_idx_.begin() + row_ptr_[r + 1];
  auto it = std::lower_bound(begin, end, static_cast<uint32_t>(c));
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.At(r, col_idx_[k]) = values_[k];
    }
  }
  return out;
}

}  // namespace dmml::la
