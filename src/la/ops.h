/// \file ops.h
/// \brief Shape-checked, Status-returning wrappers over the LA kernels.
///
/// These are the public entry points for callers that cannot guarantee
/// conforming shapes (e.g. user-provided matrices); internal code on a hot
/// path calls the kernels directly.
#ifndef DMML_LA_OPS_H_
#define DMML_LA_OPS_H_

#include "la/dense_matrix.h"
#include "la/kernels.h"
#include "la/sparse_matrix.h"
#include "util/result.h"

namespace dmml::la {

/// \brief C = A * B, validating inner dimensions.
Result<DenseMatrix> CheckedMultiply(const DenseMatrix& a, const DenseMatrix& b);

/// \brief A + B, validating shapes.
Result<DenseMatrix> CheckedAdd(const DenseMatrix& a, const DenseMatrix& b);

/// \brief A - B, validating shapes.
Result<DenseMatrix> CheckedSubtract(const DenseMatrix& a, const DenseMatrix& b);

/// \brief Hadamard product, validating shapes.
Result<DenseMatrix> CheckedElementwiseMultiply(const DenseMatrix& a,
                                               const DenseMatrix& b);

/// \brief Solves A x = b for square A via partial-pivot Gaussian elimination.
///
/// Returns FailedPrecondition for singular (to working precision) systems.
Result<DenseMatrix> Solve(const DenseMatrix& a, const DenseMatrix& b);

/// \brief Inverse of square A (via Solve against the identity).
Result<DenseMatrix> Inverse(const DenseMatrix& a);

}  // namespace dmml::la

#endif  // DMML_LA_OPS_H_
